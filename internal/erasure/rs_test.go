package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestGFFieldAxioms(t *testing.T) {
	// Inverses and division round-trip for every non-zero element.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
		for b := 1; b < 256; b++ {
			q := gfDiv(byte(a), byte(b))
			if back := gfMul(q, byte(b)); back != byte(a) {
				t.Fatalf("(%d/%d)*%d = %d", a, b, b, back)
			}
		}
	}
	// mulAdd agrees with scalar gfMul.
	src := []byte{0, 1, 2, 0x53, 0xca, 0xff}
	for c := 0; c < 256; c++ {
		dst := make([]byte, len(src))
		mulAdd(dst, src, byte(c))
		for i, s := range src {
			if dst[i] != gfMul(byte(c), s) {
				t.Fatalf("mulAdd c=%d src=%d: got %d want %d", c, s, dst[i], gfMul(byte(c), s))
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {-1, 2}, {4, -1}, {200, 100}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if _, err := New(1, 0); err != nil {
		t.Errorf("New(1,0): %v", err)
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		// Random Cauchy matrices are always invertible.
		m := newMatrix(n, n)
		xs := rng.Perm(255)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m[i][j] = gfInv(byte(xs[i]+1) ^ byte(xs[n+j]+1))
			}
		}
		inv, err := m.invert()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// m·inv must be the identity.
		cols := make([][]byte, n)
		for j := range cols {
			col := make([]byte, n)
			for i := 0; i < n; i++ {
				col[i] = inv[i][j]
			}
			cols[j] = col
		}
		for j := 0; j < n; j++ {
			prod := make([][]byte, n)
			for i := range prod {
				prod[i] = make([]byte, 1)
			}
			in := make([][]byte, n)
			for i := range in {
				in[i] = []byte{cols[j][i]}
			}
			m.mulVec(prod, in)
			for i := 0; i < n; i++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if prod[i][0] != want {
					t.Fatalf("n=%d: (m·inv)[%d][%d] = %d", n, i, j, prod[i][0])
				}
			}
		}
	}
	// Singular matrices must be rejected.
	s := matrix{{1, 2}, {1, 2}}
	if _, err := s.invert(); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

// eraseSubsets enumerates every subset of {0..n-1} with ≤ max elements.
func eraseSubsets(n, max int) [][]int {
	var out [][]int
	var walk func(start int, cur []int)
	walk = func(start int, cur []int) {
		out = append(out, append([]int(nil), cur...))
		if len(cur) == max {
			return
		}
		for i := start; i < n; i++ {
			walk(i+1, append(cur, i))
		}
	}
	walk(0, nil)
	return out
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, km := range [][2]int{{1, 0}, {1, 2}, {2, 1}, {3, 2}, {4, 2}, {5, 3}} {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 1+rng.Intn(200))
		rng.Read(data)
		frags, err := c.Encode(c.Split(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, erase := range eraseSubsets(k+m, m) {
			work := make([][]byte, len(frags))
			for i, f := range frags {
				work[i] = append([]byte(nil), f...)
			}
			for _, e := range erase {
				work[e] = nil
			}
			if err := c.Reconstruct(work); err != nil {
				t.Fatalf("k=%d m=%d erase=%v: %v", k, m, erase, err)
			}
			for i := range frags {
				if !bytes.Equal(work[i], frags[i]) {
					t.Fatalf("k=%d m=%d erase=%v: fragment %d differs", k, m, erase, i)
				}
			}
			got, err := c.Join(work[:k], len(data))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("k=%d m=%d erase=%v: payload differs", k, m, erase)
			}
		}
	}
}

func TestReconstructBeyondBudgetFails(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the stripe that did not make it")
	frags, err := c.Encode(c.Split(data))
	if err != nil {
		t.Fatal(err)
	}
	work := make([][]byte, len(frags))
	for i, f := range frags {
		work[i] = append([]byte(nil), f...)
	}
	work[0], work[2], work[4] = nil, nil, nil // 3 erasures > m=2
	if err := c.Reconstruct(work); !errors.Is(err, ErrTooManyErasures) {
		t.Fatalf("got %v, want ErrTooManyErasures", err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 3, 4, 5, 16, 17, 1023} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 31)
		}
		got, err := c.Join(c.Split(data), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: round trip differs", n)
		}
	}
}

func TestEncodeShapeErrors(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Encode([][]byte{{1}}); err == nil {
		t.Error("short shard set accepted")
	}
	if _, err := c.Encode([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged shards accepted")
	}
	if err := c.Reconstruct(make([][]byte, 2)); err == nil {
		t.Error("wrong fragment count accepted")
	}
}
