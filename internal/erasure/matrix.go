package erasure

import "fmt"

// matrix is a dense row-major byte matrix over GF(2^8).
type matrix [][]byte

// newMatrix allocates a rows×cols zero matrix.
func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// invert returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting (row swaps only — every non-zero
// element of GF(2^8) is a unit, so any non-zero pivot works). It returns
// an error when the matrix is singular.
func (m matrix) invert() (matrix, error) {
	n := len(m)
	// Work on [m | I] in place.
	work := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot row at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("erasure: singular matrix (column %d)", col)
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Scale the pivot row so the pivot becomes 1.
		if p := work[col][col]; p != 1 {
			inv := gfInv(p)
			row := work[col]
			for j := range row {
				row[j] = gfMul(row[j], inv)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			mulAdd(work[r], work[col], work[r][col])
		}
	}
	out := newMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out[i], work[i][n:])
	}
	return out, nil
}

// mulVec computes dst = m · shards, where shards is a column of byte
// slices (one per matrix column) and dst has one slice per matrix row.
// All slices must share a length.
func (m matrix) mulVec(dst, shards [][]byte) {
	for i, row := range m {
		d := dst[i]
		for j := range d {
			d[j] = 0
		}
		for j, c := range row {
			mulAdd(d, shards[j], c)
		}
	}
}
