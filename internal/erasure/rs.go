package erasure

import (
	"errors"
	"fmt"
)

// ErrTooManyErasures is returned by Reconstruct when fewer than k
// fragments survive: the stripe is information-theoretically gone and no
// amount of decoding recovers it.
var ErrTooManyErasures = errors.New("erasure: too many erasures, stripe unrecoverable")

// Codec is a systematic Reed-Solomon code with k data and m parity
// shards. Fragments 0..k-1 are the data shards verbatim; fragments
// k..k+m-1 are parity. Safe for concurrent use (immutable after New).
type Codec struct {
	k, m int
	// gen is the (k+m)×k generator: identity over Cauchy.
	gen matrix
}

// New builds a codec. k must be ≥1, m ≥0, and k+m ≤ 255 (the field has
// only 255 non-zero evaluation points).
func New(k, m int) (*Codec, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: k=%d data shards, need at least 1", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("erasure: m=%d parity shards, cannot be negative", m)
	}
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: k+m=%d exceeds the 255 fragments GF(2^8) supports", k+m)
	}
	gen := newMatrix(k+m, k)
	for i := 0; i < k; i++ {
		gen[i][i] = 1
	}
	// Cauchy block: rows x_i = k+i, columns y_j = j. The x and y sets are
	// disjoint, so every entry 1/(x_i ⊕ y_j) is defined and every square
	// submatrix is invertible (the Cauchy determinant is a product of
	// non-zero differences) — which, together with the identity rows,
	// makes any k of the k+m fragments sufficient to decode.
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			gen[k+i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return &Codec{k: k, m: m, gen: gen}, nil
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Codec) ParityShards() int { return c.m }

// TotalShards returns k+m.
func (c *Codec) TotalShards() int { return c.k + c.m }

// ShardLen returns the per-shard length used for a payload of dataLen
// bytes: ceil(dataLen/k), minimum 1 so zero-length payloads still
// produce well-formed fragments.
func (c *Codec) ShardLen(dataLen int) int {
	n := (dataLen + c.k - 1) / c.k
	if n < 1 {
		n = 1
	}
	return n
}

// Split pads data to k equal shards of ShardLen(len(data)) bytes. The
// shards copy the input; mutating data afterwards is safe.
func (c *Codec) Split(data []byte) [][]byte {
	shardLen := c.ShardLen(len(data))
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			copy(shards[i], data[lo:])
		}
	}
	return shards
}

// Join reassembles the original payload of dataLen bytes from k data
// shards (the inverse of Split).
func (c *Codec) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) != c.k {
		return nil, fmt.Errorf("erasure: Join wants %d data shards, got %d", c.k, len(shards))
	}
	shardLen := c.ShardLen(dataLen)
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.k && len(out) < dataLen; i++ {
		if len(shards[i]) != shardLen {
			return nil, fmt.Errorf("erasure: shard %d is %d bytes, want %d", i, len(shards[i]), shardLen)
		}
		take := dataLen - len(out)
		if take > shardLen {
			take = shardLen
		}
		out = append(out, shards[i][:take]...)
	}
	return out, nil
}

// Encode computes the full fragment set (k data + m parity) from k data
// shards of equal length. The returned slice aliases the input data
// shards in positions 0..k-1 and holds fresh parity in k..k+m-1.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: Encode wants %d data shards, got %d", c.k, len(data))
	}
	shardLen := len(data[0])
	for i, s := range data {
		if len(s) != shardLen {
			return nil, fmt.Errorf("erasure: shard %d is %d bytes, want %d", i, len(s), shardLen)
		}
	}
	frags := make([][]byte, c.k+c.m)
	copy(frags, data)
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, shardLen)
	}
	c.gen[c.k:].mulVec(parity, data)
	copy(frags[c.k:], parity)
	return frags, nil
}

// Reconstruct fills in missing fragments. frags must have length k+m;
// nil entries are erasures. If at least k fragments are present, every
// nil entry (data and parity alike) is recomputed in place and the full
// set returned; with fewer than k survivors it returns
// ErrTooManyErasures. Present fragments are trusted — corrupted ones
// must be nil-ed (erased) by the caller first, which is what the peer
// shelter's per-fragment checksums are for.
func (c *Codec) Reconstruct(frags [][]byte) error {
	if len(frags) != c.k+c.m {
		return fmt.Errorf("erasure: Reconstruct wants %d fragments, got %d", c.k+c.m, len(frags))
	}
	present := make([]int, 0, c.k)
	shardLen := -1
	for i, f := range frags {
		if f == nil {
			continue
		}
		if shardLen < 0 {
			shardLen = len(f)
		} else if len(f) != shardLen {
			return fmt.Errorf("erasure: fragment %d is %d bytes, want %d", i, len(f), shardLen)
		}
		if len(present) < c.k {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: %d of %d fragments survive, need %d",
			ErrTooManyErasures, len(present), c.k+c.m, c.k)
	}
	// Fast path: all data shards intact ⇒ recompute only missing parity.
	dataIntact := true
	for i := 0; i < c.k; i++ {
		if frags[i] == nil {
			dataIntact = false
			break
		}
	}
	if !dataIntact {
		// Build the k×k submatrix of generator rows for the chosen
		// survivors, invert it, and multiply to recover the data shards.
		sub := newMatrix(c.k, c.k)
		in := make([][]byte, c.k)
		for r, fi := range present {
			copy(sub[r], c.gen[fi])
			in[r] = frags[fi]
		}
		dec, err := sub.invert()
		if err != nil {
			// Unreachable for a Cauchy-systematic generator; guard anyway.
			return err
		}
		data := make([][]byte, c.k)
		for i := range data {
			data[i] = make([]byte, shardLen)
		}
		dec.mulVec(data, in)
		for i := 0; i < c.k; i++ {
			if frags[i] == nil {
				frags[i] = data[i]
			}
		}
	}
	// Recompute any missing parity from the (now complete) data shards.
	for i := 0; i < c.m; i++ {
		if frags[c.k+i] != nil {
			continue
		}
		par := make([]byte, shardLen)
		for j := 0; j < c.k; j++ {
			mulAdd(par, frags[j], c.gen[c.k+i][j])
		}
		frags[c.k+i] = par
	}
	return nil
}
