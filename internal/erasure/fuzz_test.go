package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzReedSolomon drives random (k, m, payload, erasure-set) round trips:
// any ≤m erasures must decode to exactly the original bytes, and >m
// erasures must return an error — never silently wrong data.
func FuzzReedSolomon(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), []byte("hello stripe"))
	f.Add(int64(2), uint8(4), uint8(2), []byte{0})
	f.Add(int64(3), uint8(1), uint8(3), []byte{})
	f.Add(int64(4), uint8(7), uint8(0), bytes.Repeat([]byte{0xa5}, 300))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, mRaw uint8, data []byte) {
		k := 1 + int(kRaw)%12
		m := int(mRaw) % 6
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, m, err)
		}
		frags, err := c.Encode(c.Split(data))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		rng := rand.New(rand.NewSource(seed))

		// ≤ m erasures: exact recovery.
		nerase := rng.Intn(m + 1)
		work := make([][]byte, len(frags))
		for i, fr := range frags {
			work[i] = append([]byte(nil), fr...)
		}
		for _, e := range rng.Perm(k + m)[:nerase] {
			work[e] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("k=%d m=%d erase=%d: %v", k, m, nerase, err)
		}
		for i := range frags {
			if !bytes.Equal(work[i], frags[i]) {
				t.Fatalf("k=%d m=%d: fragment %d reconstructed wrong", k, m, i)
			}
		}
		got, err := c.Join(work[:k], len(data))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d: payload mismatch after decode", k, m)
		}

		// > m erasures: must error, never fabricate bytes.
		over := make([][]byte, len(frags))
		for i, fr := range frags {
			over[i] = append([]byte(nil), fr...)
		}
		for _, e := range rng.Perm(k + m)[:m+1] {
			over[e] = nil
		}
		if err := c.Reconstruct(over); !errors.Is(err, ErrTooManyErasures) {
			t.Fatalf("k=%d m=%d with %d erasures: got %v, want ErrTooManyErasures", k, m, m+1, err)
		}
	})
}
