// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(2^8), stdlib-only. A stripe of k data shards is extended with m
// parity shards such that the original data is recoverable from *any* k
// of the k+m fragments — the MDS property the peer shelter leans on to
// turn "replica present" into "reconstructable".
//
// The generator is the k×k identity stacked over an m×k Cauchy block
// (rows 1/(x_i ⊕ y_j) with x and y drawn from disjoint field subsets):
// every square submatrix of a Cauchy matrix is invertible, and combined
// with the identity rows this makes every k-row subset of the full
// (k+m)×k matrix invertible — decode is a single k×k inversion over
// GF(2^8) applied to any k surviving fragments.
package erasure

// gf256 carries the log/exp tables for the field GF(2^8) with the
// conventional AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d) and generator 2.
var (
	gfExp [512]byte // exp table doubled so mul needs no mod
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b (b must be non-zero).
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: zero has no inverse in GF(2^8)")
	}
	return gfExp[255-gfLog[a]]
}

// mulRowTable returns the 256-entry product table for a constant c, so
// shard-sized multiply-accumulate loops do one lookup per byte instead of
// two log lookups and an add.
func mulRowTable(c byte) *[256]byte {
	var t [256]byte
	if c == 0 {
		return &t
	}
	lc := gfLog[c]
	for b := 1; b < 256; b++ {
		t[b] = gfExp[lc+gfLog[b]]
	}
	return &t
}

// mulAdd accumulates dst[i] ^= c*src[i] over a shard.
func mulAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	t := mulRowTable(c)
	for i, s := range src {
		dst[i] ^= t[s]
	}
}
