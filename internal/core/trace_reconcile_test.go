package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// reconciled runs cfg under the recorder and asserts the scalar
// accounting agrees with the trace: useful + wasted == wall time, the
// traced core/run span has the same duration, and the wasted fraction is
// a valid fraction.
func reconciled(t *testing.T, cfg JobConfig) (*RunResult, *trace.Query) {
	t.Helper()
	res, q := checkedRun(t, cfg)
	if err := trace.ReconcileAccounting(q, res.Accounting.Useful, res.Accounting.Wasted(), res.WallTime); err != nil {
		t.Fatalf("reconcile: %v (%s)", err, res.Accounting.String())
	}
	if wf := res.Accounting.WastedFraction(); wf < 0 || wf > 1 {
		t.Fatalf("wasted fraction %v outside [0,1]", wf)
	}
	return res, q
}

// TestAccountingReconcilesWithTrace checks, for one representative
// scenario per policy family, that the run's wasted-work accounting is
// exactly the traced wall time minus useful time — nothing is counted
// twice and nothing falls between the categories.
func TestAccountingReconcilesWithTrace(t *testing.T) {
	wl := testWL()
	const iters = 12
	cases := []struct {
		name string
		cfg  JobConfig
	}{
		{"none-failure-free", JobConfig{
			WL: wl, Policy: PolicyNone, Iters: iters, Seed: 1,
		}},
		{"pc_disk-hard", JobConfig{
			WL: wl, Policy: PolicyPCDisk, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			CkptInterval: 5 * wl.Minibatch,
			IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
		}},
		{"userjit-hard", JobConfig{
			WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.3, 1, failure.GPUHard),
		}},
		{"transparent-hang", JobConfig{
			WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
			HangTimeout:  2 * vclock.Second,
			IterFailures: injectAt(wl, 5.3, 1, failure.NetworkHang),
		}},
		{"transparent-hard", JobConfig{
			WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.3, 1, failure.GPUHard),
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, _ := reconciled(t, tc.cfg)
			if !res.Completed {
				t.Fatal("did not complete")
			}
		})
	}
}

// TestAccountingReconcilesRandomized is the property form: across seeded
// random failure placements (kind, rank, sub-iteration timing all drawn
// from the seed), accounting must reconcile exactly with the trace for
// every run that terminates — completed or not.
func TestAccountingReconcilesRandomized(t *testing.T) {
	wl := testWL()
	const iters = 14
	kinds := []failure.Kind{
		failure.NetworkHang, failure.GPUSticky, failure.DriverCorrupt, failure.GPUHard,
	}
	n := 8
	if testing.Short() {
		n = 3
	}
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(i)*7919 + 13))
			inj := IterInjection{
				Iter: 2 + rng.Intn(iters-4),
				Frac: 0.05 + 0.9*rng.Float64(),
				Rank: 1 + rng.Intn(wl.Topo.World()-1),
				Kind: kinds[rng.Intn(len(kinds))],
			}
			res, _ := reconciled(t, JobConfig{
				WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
				HangTimeout: 2 * vclock.Second, SpareNodes: 3,
				IterFailures: []IterInjection{inj},
			})
			if !res.Completed {
				t.Fatalf("did not complete (injection %+v)", inj)
			}
		})
	}
}

// TestTable7PhasesMatchTraceSpans reconciles the Table 7 recovery
// breakdown with the trace: the report's per-phase durations are the
// exemplar healthy rank's phase-timer marks, each of which is also
// emitted as a "phase"-category span on that rank's lane — so some rank's
// per-lane span sums must reproduce the report exactly.
func TestTable7PhasesMatchTraceSpans(t *testing.T) {
	wl := testWL()
	const iters = 12
	for _, tc := range []struct {
		name string
		kind failure.Kind
	}{
		{"transient", failure.NetworkHang},
		{"sticky", failure.GPUSticky},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, q := reconciled(t, JobConfig{
				WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
				HangTimeout: 2 * vclock.Second, SpareNodes: 2,
				IterFailures: injectAt(wl, 5.3, 1, tc.kind),
			})
			if !res.Completed || len(res.Reports) != 1 {
				t.Fatalf("completed=%v reports=%d", res.Completed, len(res.Reports))
			}
			rep := res.Reports[0]
			if len(rep.Phases) == 0 {
				t.Fatal("report has no phase breakdown")
			}
			matched := false
			for r := 0; r < wl.Topo.World(); r++ {
				sums := q.SpanSums("phase", trace.Rank(r))
				ok := len(sums) > 0
				for _, ph := range rep.Phases {
					if sums[ph.Name] != ph.Dur {
						ok = false
						break
					}
				}
				if ok {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("no rank's traced phase spans reproduce the report %+v", rep.Phases)
			}
		})
	}
}
