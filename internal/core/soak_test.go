package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
)

// TestSoakRandomFailures is the randomized endurance test: several
// failures per run with kinds, phases, and target ranks drawn from a
// seeded RNG, across multiple seeds. Every run must finish with a loss
// trajectory bit-identical to the failure-free reference — the paper's
// determinism claim under arbitrary failure placement.
func TestSoakRandomFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	wl := testWL()
	const iters = 24
	ref := referenceLoss(t, wl, iters)

	kinds := []failure.Kind{
		failure.NetworkHang, failure.GPUSticky, failure.DriverCorrupt, failure.GPUHard,
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed * 977))
		var injections []IterInjection
		hardCount := 0
		iterAt := 3
		for len(injections) < 3 && iterAt < iters-4 {
			kind := kinds[rng.Intn(len(kinds))]
			if kind == failure.GPUHard {
				hardCount++
				if hardCount > 2 {
					kind = failure.GPUSticky // spare pool is finite
				}
			}
			injections = append(injections, IterInjection{
				Iter: iterAt,
				Frac: 0.1 + 0.8*rng.Float64(),
				Rank: 1 + rng.Intn(wl.Topo.World()-1), // never the reference rank
				Kind: kind,
			})
			iterAt += 4 + rng.Intn(4)
		}
		t.Run(t.Name()+string(rune('A'+seed-1)), func(t *testing.T) {
			res := mustRun(t, JobConfig{
				WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
				CollectLoss: true, HangTimeout: 2 * vclock.Second, SpareNodes: 3,
				IterFailures: injections,
			})
			if !res.Completed {
				t.Fatalf("seed %d: did not complete (%d recoveries, injections %+v)",
					seed, len(res.Reports), injections)
			}
			if len(res.Reports) != len(injections) {
				t.Fatalf("seed %d: %d recoveries for %d injections", seed, len(res.Reports), len(injections))
			}
			if !lossTracesEqual(t, ref, res.Loss, iters) {
				t.Fatalf("seed %d: loss diverged (injections %+v)", seed, injections)
			}
		})
	}
}

// TestChaosSoak is the randomized chaos endurance suite: every shared
// store (and peer shelter) write passes through a seeded random fault
// hook, and two fault injections per run draw their kind, timing, and
// target from the seed — across the four policies the paper's comparison
// covers. Whatever the chaos layer does, every completed run must be
// bit-identical to the failure-free reference: corruption may cost redo
// work (generation fallback) or an extra incarnation, never state.
func TestChaosSoak(t *testing.T) {
	wl := testWL()
	const iters = 18
	ref := referenceLoss(t, wl, iters)

	seeds := []int64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	kinds := []failure.Kind{
		failure.GPUHard, failure.GPUSticky, failure.NetworkHang,
		failure.NodeDown, failure.StorageFault,
	}
	for _, policy := range []Policy{PolicyPCDisk, PolicyUserJIT, PolicyPeerShelter, PolicyJITWithPeer} {
		for _, seed := range seeds {
			policy, seed := policy, seed
			t.Run(fmt.Sprintf("%v/seed%d", policy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 131))
				var injections []IterInjection
				hard := 0
				for _, at := range []int{iters / 3, 2 * iters / 3} {
					kind := kinds[rng.Intn(len(kinds))]
					if kind == failure.GPUHard || kind == failure.NodeDown {
						hard++
						if hard > 2 {
							kind = failure.GPUSticky
						}
					}
					rank := 1 + rng.Intn(wl.Topo.World()-1) // never the reference rank
					if kind == failure.NodeDown {
						rank = 2 + rng.Intn(2) // keep the reference rank's node up
					}
					injections = append(injections, IterInjection{
						Iter: at, Frac: 0.1 + 0.8*rng.Float64(), Rank: rank, Kind: kind,
					})
				}
				cfg := JobConfig{
					WL: wl, Policy: policy, Iters: iters, Seed: 1, CollectLoss: true,
					HangTimeout: 2 * vclock.Second, SpareNodes: 4,
					IterFailures: injections,
					Chaos: &ChaosConfig{
						DiskChaos:    checkpoint.RandomChaos(rand.New(rand.NewSource(seed*17)), 0.12),
						ShelterChaos: checkpoint.RandomChaos(rand.New(rand.NewSource(seed*29)), 0.12),
					},
				}
				if _, ok := policy.PeriodicKind(); ok {
					cfg.CkptInterval = 4 * wl.Minibatch
				}
				res := mustRun(t, cfg)
				if !res.Completed {
					t.Fatalf("did not complete (injections %+v)", injections)
				}
				if !lossTracesEqual(t, ref, res.Loss, iters) {
					t.Fatalf("loss diverged under chaos (injections %+v)", injections)
				}
			})
		}
	}
}

// TestSoakUserJITRepeatedHardFailures restarts a user-level job through
// two successive hard failures; the redo bound stays at one minibatch per
// failure.
func TestSoakUserJITRepeatedHardFailures(t *testing.T) {
	wl := testWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 4,
		IterFailures: []IterInjection{
			{Iter: 6, Frac: 0.5, Rank: 1, Kind: failure.GPUHard},
			{Iter: 14, Frac: 0.3, Rank: 2, Kind: failure.GPUHard},
		},
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 3 {
		t.Fatalf("incarnations = %d, want 3", res.Incarnations)
	}
	if res.ItersExecuted > iters+2 {
		t.Fatalf("redid %d minibatches across 2 failures, bound is 2", res.ItersExecuted-iters)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged across two restarts")
	}
}

// TestSoakPoissonPlanLongRun drives a periodic-checkpointing job with a
// true Poisson failure plan over a long virtual horizon, checking the
// harness survives arbitrary arrival times (failures may land during
// setup, steady state, or checkpointing).
func TestSoakPoissonPlanLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	wl := testWL()
	const iters = 60
	// A ludicrous per-GPU rate so a handful of failures land within the
	// few-minute virtual run.
	plan := failure.PoissonPlan(rand.New(rand.NewSource(5)), wl.Topo.World(),
		400, // failures per GPU-day
		10*vclock.Minute, map[failure.Kind]float64{failure.GPUHard: 1})
	if len(plan.Injections) == 0 {
		t.Fatal("plan sampled no failures")
	}
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPCDisk, Iters: iters, Seed: 1,
		CkptInterval: 8 * wl.Minibatch,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   8,
		Failures:     plan,
		Horizon:      2 * vclock.Hour,
	})
	// The job either completes (enough spares) or runs out of nodes; in
	// both cases the harness must terminate cleanly and account sanely.
	if res.Completed {
		if res.ItersExecuted < iters {
			t.Fatalf("completed but executed only %d/%d", res.ItersExecuted, iters)
		}
	}
	if res.Accounting.WastedFraction() < 0 || res.Accounting.WastedFraction() >= 1 {
		t.Fatalf("nonsense accounting: %+v", res.Accounting)
	}
}
