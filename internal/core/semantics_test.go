package core

import (
	"fmt"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// TestSemanticsPhaseSweep validates the paper's central correctness claim
// (§6.2: "we validate exact floating point match of training losses with
// and without JIT-checkpointing") across the failure phases of a minibatch
// — forward, backward, all-reduce, optimizer — for each transient fault
// kind and for hard failures, under the transparent policy.
func TestSemanticsPhaseSweep(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)

	phases := []struct {
		name string
		frac float64
	}{
		{"forward", 0.10},
		{"backward", 0.50},
		{"allreduce", 0.88},
		{"optimizer", 0.96},
	}
	kinds := []failure.Kind{failure.NetworkHang, failure.GPUSticky, failure.DriverCorrupt, failure.GPUHard}

	for _, ph := range phases {
		for _, kind := range kinds {
			if kind == failure.NetworkHang && ph.frac > 0.9 {
				// A network fault injected after the collectives of the
				// iteration completed only bites at the next iteration's
				// collectives — covered by the earlier-phase cases.
				continue
			}
			name := fmt.Sprintf("%s/%s", kind, ph.name)
			t.Run(name, func(t *testing.T) {
				res := mustRun(t, JobConfig{
					WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
					HangTimeout: 2 * vclock.Second, SpareNodes: 2,
					IterFailures: []IterInjection{{Iter: 6, Frac: ph.frac, Rank: 2, Kind: kind}},
				})
				if !res.Completed {
					t.Fatalf("job did not complete; reports=%d", len(res.Reports))
				}
				if len(res.Reports) == 0 {
					t.Fatal("no recovery happened — injection missed")
				}
				if !lossTracesEqual(t, ref, res.Loss, iters) {
					t.Fatalf("loss trace diverged (%s)", name)
				}
			})
		}
	}
}

// TestSemanticsOptimizerRollForward pins the §4.2.2 path: a sticky error
// in the optimizer window must produce an optimizer-roll-forward episode
// and still finish with an exact loss trace.
func TestSemanticsOptimizerRollForward(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: []IterInjection{{Iter: 6, Frac: 0.97, Rank: 3, Kind: failure.GPUSticky}},
	})
	if !res.Completed || len(res.Reports) != 1 {
		t.Fatalf("completed=%v reports=%d", res.Completed, len(res.Reports))
	}
	if res.Reports[0].Kind != "optimizer-roll-forward" {
		t.Fatalf("kind = %q, want optimizer-roll-forward", res.Reports[0].Kind)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after roll-forward")
	}
	// JIT's headline: at most one minibatch redone (here: none, since
	// recovery rolled forward).
	if res.ItersExecuted > iters {
		t.Fatalf("executed %d iters, roll-forward should redo none", res.ItersExecuted)
	}
}

// TestSemanticsTwoSequentialFailures exercises repeated recovery: two
// independent faults in one run.
func TestSemanticsTwoSequentialFailures(t *testing.T) {
	wl := testWL()
	const iters = 16
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: []IterInjection{
			{Iter: 4, Frac: 0.4, Rank: 1, Kind: failure.NetworkHang},
			{Iter: 10, Frac: 0.5, Rank: 2, Kind: failure.GPUSticky},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%d", len(res.Reports))
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(res.Reports))
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after two recoveries")
	}
}

// TestSemanticsFSDPRecovery checks hybrid-sharded FSDP jobs recover via
// the cross-group replica (§3.1's FSDP requirement).
func TestSemanticsFSDPRecovery(t *testing.T) {
	wl := testWL()
	wl.Name = "tiny-fsdp"
	wl.Topo = train.Topology{D: 4, P: 1, T: 1, FSDPShard: 2}
	const iters = 10
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: []IterInjection{{Iter: 5, Frac: 0.5, Rank: 1, Kind: failure.GPUSticky}},
	})
	if !res.Completed {
		t.Fatalf("FSDP job did not complete; reports=%d", len(res.Reports))
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("FSDP loss diverged after recovery")
	}
}

// TestSemantics3DHardError: hard GPU failure in a 2D-2P-2T job must
// migrate and preserve semantics.
func TestSemantics3DHardError(t *testing.T) {
	wl := testWL3D()
	const iters = 10
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: []IterInjection{{Iter: 4, Frac: 0.5, Rank: 5, Kind: failure.GPUHard}},
	})
	if !res.Completed {
		t.Fatalf("3D hard-error job did not complete; reports=%d", len(res.Reports))
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("3D loss diverged after hard-error migration")
	}
}

// TestSemanticsUserJITPhaseSweep: the user-level solution must also
// preserve the loss trajectory for failures in any phase.
func TestSemanticsUserJITPhaseSweep(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	for _, frac := range []float64{0.1, 0.5, 0.96} {
		frac := frac
		t.Run(fmt.Sprintf("frac=%.2f", frac), func(t *testing.T) {
			res := mustRun(t, JobConfig{
				WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1, CollectLoss: true,
				HangTimeout: 2 * vclock.Second, SpareNodes: 2,
				IterFailures: []IterInjection{{Iter: 6, Frac: frac, Rank: 1, Kind: failure.GPUHard}},
			})
			if !res.Completed {
				t.Fatal("user-level job did not complete")
			}
			if res.Incarnations != 2 {
				t.Fatalf("incarnations = %d", res.Incarnations)
			}
			if !lossTracesEqual(t, ref, res.Loss, iters) {
				t.Fatal("user-level loss diverged")
			}
			if res.ItersExecuted > iters+1 {
				t.Fatalf("redid %d minibatches, JIT allows at most 1", res.ItersExecuted-iters)
			}
		})
	}
}

// TestSemanticsReplayValidation runs the §4.1 correctness verification
// inside live transparent jobs at a configured iteration: every rank
// checksums its buffers at end-of-backward, re-executes its minibatch's
// logged device APIs (including the cross-rank collectives, which
// rendezvous against the other ranks' validation replays), and compares
// checksums. This is the paper's proof that the replay log captures every
// input that influences GPU state.
func TestSemanticsReplayValidation(t *testing.T) {
	for _, wl := range []struct {
		name string
		wl   func() workloadT
	}{
		{"DP", func() workloadT { return testWL() }},
		{"3D", func() workloadT { return testWL3D() }},
	} {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			w := wl.wl()
			res := mustRun(t, JobConfig{
				WL: w, Policy: PolicyTransparentJIT, Iters: 12, Seed: 1,
				// The paper validates at the 5th minibatch and then every
				// N minibatches.
				ValidateAt: 5, ValidateEvery: 3,
			})
			if !res.Completed {
				t.Fatal("job did not complete")
			}
			if res.ValidationFailures != 0 {
				t.Fatalf("%d ranks failed replay validation", res.ValidationFailures)
			}
			// Validations at iterations 5, 8, 11 on every rank.
			if want := 3 * w.Topo.World(); res.Validations != want {
				t.Fatalf("validations = %d, want %d", res.Validations, want)
			}
		})
	}
}

// workloadT aliases the workload type for the table above.
type workloadT = workload.Workload
