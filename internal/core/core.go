// Package core implements the paper's contribution: just-in-time
// checkpointing and recovery for deep-learning training failures.
//
// It provides the three recovery solutions of Table 1:
//
//  1. User-level JIT checkpointing (§3, UserLevelRank): training scripts
//     that can change code register a save-checkpoint function; on any
//     rank's failure, the healthy data-parallel replicas detect the hang
//     through the interception watchdog, steal the interpreter lock from
//     the wedged main thread, checkpoint their GPU state through a fresh
//     stream, and notify the scheduler, which restarts the job from the
//     just-written checkpoint — losing at most one minibatch.
//
//  2. Transparent JIT recovery for recoverable errors (§4.2,
//     Coordinator): transient network faults, sticky CUDA errors and
//     driver corruption are repaired underneath the application. GPU
//     state is reset to the start of the minibatch (retaining buffers, or
//     restoring them from the host or a replica), communicators are
//     re-created under a fresh generation, the logged device APIs are
//     replayed, and the application's parked threads resume as if nothing
//     happened.
//
//  3. Transparent JIT recovery for hard errors (§4.3, Coordinator):
//     healthy ranks JIT-checkpoint their GPU state, every worker's CPU
//     state is CRIU-checkpointed, the job migrates to replacement nodes,
//     and GPU state is rebuilt from the replay log plus the checkpoint
//     files — the failed rank reading its replica's file via the stable
//     tensor naming.
//
// The package also provides the evaluation harness (Run) that executes a
// Table 2 workload under any checkpointing policy with injected failures
// and accounts useful versus wasted GPU time — the machinery behind
// Tables 3–8.
package core

import (
	"fmt"
	"strings"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/vclock"
)

// Policy selects the failure-handling strategy a job runs under.
type Policy int

const (
	// PolicyNone runs with no checkpointing: a failure loses everything.
	PolicyNone Policy = iota
	// PolicyPCDisk is periodic checkpointing to persistent storage in the
	// critical path.
	PolicyPCDisk
	// PolicyPCMem is periodic checkpointing to tmpfs with async drain.
	PolicyPCMem
	// PolicyCheckFreq is overlapped-snapshot periodic checkpointing.
	PolicyCheckFreq
	// PolicyPCDaily is low-frequency (once-a-day-class) periodic
	// checkpointing, the optional companion to JIT.
	PolicyPCDaily
	// PolicyUserJIT is user-level just-in-time checkpointing (§3).
	PolicyUserJIT
	// PolicyTransparentJIT is transparent just-in-time recovery (§4).
	PolicyTransparentJIT
	// PolicyJITWithDaily combines user-level JIT checkpointing with
	// low-frequency periodic checkpointing — the paper's recommended
	// companion configuration (§6.3): JIT handles common failures with
	// one-minibatch loss; the rare catastrophic failure that destroys
	// every replica of some position falls back to the most recent
	// periodic checkpoint.
	PolicyJITWithDaily
	// PolicyPeerShelter replicates every iteration's post-optimizer state
	// into peer CPU memory in other failure domains (internal/peerckpt),
	// overlapped with the next minibatch. Failure-time JIT flushes also go
	// to the shelter instead of disk, so recovery never touches remote
	// storage and any failure — including one destroying every replica of
	// a shard — rolls back at most one minibatch.
	PolicyPeerShelter
	// PolicyJITWithPeer combines user-level JIT checkpointing to disk
	// (the common-case path) with per-iteration peer-shelter replication
	// replacing the daily-disk catastrophic fallback of
	// PolicyJITWithDaily: when every replica of a position is lost, the
	// sheltered copy is at most one iteration old, versus up to a day.
	PolicyJITWithPeer
	// PolicyElasticJIT is PolicyUserJIT plus elastic degraded-mode
	// recovery (internal/elastic): when spares run out and no full
	// placement exists, the job shrinks to the largest viable topology
	// (dropping only data-parallel replicas, raising gradient accumulation
	// to preserve the global batch), keeps training, and re-expands once
	// the failure plan marks nodes repaired.
	PolicyElasticJIT
	// PolicyElasticPeer is PolicyJITWithPeer plus elastic degraded-mode
	// recovery: the peer shelter keeps per-iteration replicas while the
	// job runs degraded, so even a catastrophic loss at reduced width
	// rolls back at most one iteration.
	PolicyElasticPeer
	// PolicyMultiStepDisk is gradient-reconciled multi-step overlapped disk
	// checkpointing (GoCkpt-style): one logical snapshot is split into
	// per-iteration shard slices written concurrently with compute, each
	// stamped with its capture iteration; restore replays retained gradient
	// deltas to advance stale slices to the generation's target iteration.
	PolicyMultiStepDisk
	// PolicyJITWithMultiStep combines user-level JIT checkpointing (the
	// common-case, one-minibatch-loss path) with the multi-step overlapped
	// disk writer as the catastrophic fallback — fresher than PC_1/day at a
	// fraction of PC_disk's critical-path stall.
	PolicyJITWithMultiStep
	// PolicyPipeFree is checkpoint-free pipeline-stage recovery
	// (internal/pipefree): each stage's optimizer redundancy is retained in
	// neighbor stages' host RAM every iteration, and a lost stage is rebuilt
	// from a surviving neighbor with zero checkpoint reads. A double fault
	// that also kills the redundancy neighbor falls back to the multi-step
	// disk tier's newest valid generation.
	PolicyPipeFree
)

// String renders the policy as the paper names it.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyPCDisk:
		return "PC_disk"
	case PolicyPCMem:
		return "PC_mem"
	case PolicyCheckFreq:
		return "CheckFreq"
	case PolicyPCDaily:
		return "PC_1/day"
	case PolicyUserJIT:
		return "UserJIT"
	case PolicyTransparentJIT:
		return "TransparentJIT"
	case PolicyJITWithDaily:
		return "UserJIT+PC_1/day"
	case PolicyPeerShelter:
		return "PeerShelter"
	case PolicyJITWithPeer:
		return "UserJIT+Peer"
	case PolicyElasticJIT:
		return "UserJIT+Elastic"
	case PolicyElasticPeer:
		return "UserJIT+Peer+Elastic"
	case PolicyMultiStepDisk:
		return "MultiStepDisk"
	case PolicyJITWithMultiStep:
		return "UserJIT+MultiStep"
	case PolicyPipeFree:
		return "PipeFree"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PeriodicKind maps a periodic policy to its checkpoint implementation.
func (p Policy) PeriodicKind() (checkpoint.PeriodicKind, bool) {
	switch p {
	case PolicyPCDisk:
		return checkpoint.PCDisk, true
	case PolicyPCMem:
		return checkpoint.PCMem, true
	case PolicyCheckFreq:
		return checkpoint.CheckFreq, true
	case PolicyPCDaily, PolicyJITWithDaily:
		return checkpoint.PCDaily, true
	default:
		return 0, false
	}
}

// UserLevelJIT reports whether the policy includes the user-level JIT
// library (§3).
func (p Policy) UserLevelJIT() bool {
	return p == PolicyUserJIT || p == PolicyJITWithDaily ||
		p == PolicyPeerShelter || p == PolicyJITWithPeer ||
		p == PolicyElasticJIT || p == PolicyElasticPeer ||
		p == PolicyJITWithMultiStep
}

// DiskJIT reports whether the policy's failure-time JIT flush targets
// persistent storage (versus the peer shelter).
func (p Policy) DiskJIT() bool {
	return p == PolicyUserJIT || p == PolicyJITWithDaily || p == PolicyJITWithPeer ||
		p == PolicyElasticJIT || p == PolicyElasticPeer ||
		p == PolicyJITWithMultiStep
}

// UsesPeerShelter reports whether the policy runs the peer-to-peer
// in-memory checkpoint tier (internal/peerckpt).
func (p Policy) UsesPeerShelter() bool {
	return p == PolicyPeerShelter || p == PolicyJITWithPeer || p == PolicyElasticPeer
}

// UsesMultiStep reports whether the policy runs the gradient-reconciled
// multi-step overlapped disk writer (internal/checkpoint.MultiStep) —
// either as its primary tier or as the pipe-free family's disk fallback.
func (p Policy) UsesMultiStep() bool {
	return p == PolicyMultiStepDisk || p == PolicyJITWithMultiStep || p == PolicyPipeFree
}

// UsesPipeFree reports whether the policy runs the checkpoint-free
// pipeline-stage redundancy tier (internal/pipefree).
func (p Policy) UsesPipeFree() bool {
	return p == PolicyPipeFree
}

// Elastic reports whether the policy may shrink the job to a degraded
// topology when spares run out, and re-expand after repairs.
func (p Policy) Elastic() bool {
	return p == PolicyElasticJIT || p == PolicyElasticPeer
}

// IsJIT reports whether the policy is one of the paper's contributions.
func (p Policy) IsJIT() bool {
	return p == PolicyUserJIT || p == PolicyTransparentJIT || p == PolicyJITWithDaily ||
		p == PolicyPeerShelter || p == PolicyJITWithPeer ||
		p == PolicyElasticJIT || p == PolicyElasticPeer ||
		p == PolicyJITWithMultiStep
}

// PolicyInfo is one row of the shared policy registry: the policy, its
// presentation name (Policy.String), its canonical CLI key, and any extra
// accepted spellings. Every front end — jitsim -policy, jitbench
// -policies, the fleet simulator's job specs, and the golden-trace and
// stream-diff suites — resolves names through this one table, so a new
// recovery family added here is immediately runnable everywhere.
type PolicyInfo struct {
	Policy  Policy
	Name    string
	Key     string
	Aliases []string
}

// Policies returns the registry, one entry per runnable policy, in
// presentation order.
func Policies() []PolicyInfo {
	return []PolicyInfo{
		{PolicyNone, PolicyNone.String(), "none", nil},
		{PolicyPCDisk, PolicyPCDisk.String(), "pc_disk", nil},
		{PolicyPCMem, PolicyPCMem.String(), "pc_mem", nil},
		{PolicyCheckFreq, PolicyCheckFreq.String(), "checkfreq", nil},
		{PolicyPCDaily, PolicyPCDaily.String(), "pc_daily", nil},
		{PolicyUserJIT, PolicyUserJIT.String(), "userjit", nil},
		// "jit" is the historical alias for the paper's headline mode.
		{PolicyTransparentJIT, PolicyTransparentJIT.String(), "transparent", []string{"jit"}},
		{PolicyJITWithDaily, PolicyJITWithDaily.String(), "jit+daily", nil},
		{PolicyPeerShelter, PolicyPeerShelter.String(), "peer", nil},
		{PolicyJITWithPeer, PolicyJITWithPeer.String(), "jit+peer", nil},
		{PolicyElasticJIT, PolicyElasticJIT.String(), "jit+elastic", nil},
		{PolicyElasticPeer, PolicyElasticPeer.String(), "peer+elastic", nil},
		{PolicyMultiStepDisk, PolicyMultiStepDisk.String(), "multistep", nil},
		{PolicyJITWithMultiStep, PolicyJITWithMultiStep.String(), "jit+multistep", nil},
		{PolicyPipeFree, PolicyPipeFree.String(), "pipefree", nil},
	}
}

// ParsePolicy resolves a policy by presentation name, CLI key, or alias,
// case-insensitively.
func ParsePolicy(name string) (Policy, bool) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, pi := range Policies() {
		if strings.ToLower(pi.Name) == want || pi.Key == want {
			return pi.Policy, true
		}
		for _, a := range pi.Aliases {
			if a == want {
				return pi.Policy, true
			}
		}
	}
	return 0, false
}

// PolicyKeys returns every accepted spelling (key and aliases) mapped to
// its policy — the map front ends hand to spec parsers like
// cluster.ParseJobsSpec.
func PolicyKeys() map[string]Policy {
	out := make(map[string]Policy)
	for _, pi := range Policies() {
		out[pi.Key] = pi.Policy
		for _, a := range pi.Aliases {
			out[a] = pi.Policy
		}
	}
	return out
}

// Solution is a row of the paper's Table 1.
type Solution struct {
	Num            int
	Name           string
	ErrorsHandled  string
	UserCodeChange bool
}

// Solutions returns Table 1.
func Solutions() []Solution {
	return []Solution{
		{1, "User-level", "Single/multiple errors in node/GPU/network", true},
		{2, "Transparent; recoverable errors", "Transient single/multiple errors in GPU/network", false},
		{3, "Transparent; hard errors", "Single/multiple errors in node/GPU/network", false},
	}
}

// JITPolicyName is the checkpoint-store namespace for JIT checkpoints.
const JITPolicyName = "jit"

// ElasticPolicyName is the checkpoint-store namespace for the planned
// saves an elastic job takes at shrink/expand boundaries.
const ElasticPolicyName = "elastic"

// MultiStepPolicyName is the checkpoint-store namespace for multi-step
// overlapped generations (checkpoint.MultiStepNamespace's policy alias).
const MultiStepPolicyName = "multistep"

// RecoveryReport records one failure-recovery episode for the evaluation
// tables.
type RecoveryReport struct {
	// Kind is "transient", "optimizer-roll-forward", or "hard".
	Kind string
	// DetectedAt is when the coordinator saw the first fault;
	// CompletedAt is when the last rank resumed.
	DetectedAt  vclock.Time
	CompletedAt vclock.Time
	// PerRank is each rank's individual recovery duration.
	PerRank map[int]vclock.Time
	// HealthyAvg and FailedAvg split recovery time by whether the rank's
	// GPU failed (Table 6's two columns).
	HealthyAvg vclock.Time
	FailedAvg  vclock.Time
	// Phases is the representative healthy rank's step breakdown
	// (Table 7).
	Phases []PhaseDur
	// Attempts counts recovery attempts for the episode; >1 means a fault
	// arrived mid-recovery and the coordinator restarted it.
	Attempts int
}

// PhaseDur is one named recovery step duration.
type PhaseDur struct {
	Name string
	Dur  vclock.Time
}

// Total returns end-to-end recovery time.
func (r *RecoveryReport) Total() vclock.Time { return r.CompletedAt - r.DetectedAt }

// KindNoViablePlacement is the report kind for a recovery episode that
// determined eagerly — before spending JIT-checkpoint, CRIU, or quorum
// time — that no placement can be assembled from healthy plus spare
// nodes. It is terminal for fixed-width policies and the trigger for an
// elastic shrink.
const KindNoViablePlacement = "hard-failed:no-viable-placement"

// Terminal reports whether the episode ended in a state retrying cannot
// fix (no spare capacity, no assemblable checkpoint).
func (r *RecoveryReport) Terminal() bool { return strings.HasPrefix(r.Kind, "hard-failed:") }

// ElasticEligible reports whether the terminal condition is exactly
// capacity exhaustion — the one failure class an elastic shrink can
// convert back into forward progress. Checkpoint-loss terminality
// (nothing assemblable) is not shrinkable: a narrower job still needs
// every pipeline/tensor position's state.
func (r *RecoveryReport) ElasticEligible() bool {
	return r.Kind == KindNoViablePlacement ||
		strings.HasPrefix(r.Kind, "hard-failed: scheduler: not enough healthy free nodes")
}

// Phase returns the duration of a named phase (0 if absent).
func (r *RecoveryReport) Phase(name string) vclock.Time {
	for _, ph := range r.Phases {
		if ph.Name == name {
			return ph.Dur
		}
	}
	return 0
}
