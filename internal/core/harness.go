package core

import (
	"errors"
	"fmt"
	"strings"

	"jitckpt/internal/analysis"
	"jitckpt/internal/checkpoint"
	"jitckpt/internal/cuda"
	"jitckpt/internal/elastic"
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/intercept"
	"jitckpt/internal/metrics"
	"jitckpt/internal/nccl"
	"jitckpt/internal/peerckpt"
	"jitckpt/internal/pipefree"
	"jitckpt/internal/proxy"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// JobConfig configures one simulated training job run.
type JobConfig struct {
	WL     workload.Workload
	Policy Policy
	// Iters is the number of useful minibatches to complete.
	Iters int
	Seed  int64
	// Horizon bounds the simulation (0 = generous default).
	Horizon vclock.Time
	// Failures is the absolute-time injection plan (empty = failure-free).
	Failures failure.Plan
	// IterFailures inject relative to training progress: when the
	// reference rank starts iteration Iter, the fault fires Frac
	// minibatches later. This is how the evaluation places failures in
	// specific phases (forward ≈ 0.1, backward ≈ 0.5, all-reduce ≈ 0.85,
	// optimizer ≈ 0.95).
	IterFailures []IterInjection
	// FailureRatePerGPUDay feeds the optimal-frequency computation for
	// periodic policies (default: the OPT job's ≈2/day over 992 GPUs).
	FailureRatePerGPUDay float64
	// CkptInterval overrides the periodic interval (0 = optimal c*, or
	// 24 h for PC_1/day).
	CkptInterval vclock.Time
	// SpareNodes adds standby nodes for hard-error migration.
	SpareNodes int
	// Accum forces a gradient-accumulation factor from iteration 0 (see
	// train.Config.Accum). Oracle runs use it to replay a degraded-mode
	// trajectory from the start at reduced width; 0 or 1 = off.
	Accum int
	// DiskStore, when set, replaces the run's own shared checkpoint store.
	// Oracle runs pass the store of a prior run so they restore from its
	// checkpoints; the harness then does not create a fresh store.
	DiskStore *checkpoint.Store
	// RestoreWriterWorld bounds the writer ranks admitted during
	// checkpoint assembly (0 = the larger of the full and current world).
	// Oracle runs restoring another job's store set it to that job's full
	// world so checkpoints written by its wider eras are admitted.
	RestoreWriterWorld int
	// HangTimeout configures the watchdog (0 = 10 s, short for fast
	// simulations; the paper's deployments use larger values).
	HangTimeout vclock.Time
	// CollectLoss records per-iteration losses from the reference rank.
	CollectLoss bool
	// ValidateAt runs the §4.1 replay-log correctness verification on
	// every rank at the end of the given iteration's backward pass
	// (0 = off). ValidateEvery re-validates every N iterations after
	// that, "to detect any change of behavior as training progresses"
	// (§4.1). Transparent policy only.
	ValidateAt    int
	ValidateEvery int
	// Chaos configures storage-fault and recovery-phase fault injection
	// (nil = none).
	Chaos *ChaosConfig
	// RecoveryAttemptTimeout bounds one transparent-recovery attempt
	// before the coordinator restarts it (0 = derived default).
	RecoveryAttemptTimeout vclock.Time
	// Trace, when set, receives the simulation trace.
	Trace func(at vclock.Time, format string, args ...interface{})
	// Recorder, when set, is attached to the run's environment and
	// receives the structured event trace (spans and instants from every
	// instrumented layer). One Recorder may be shared across sequential
	// Run calls: each run is recorded under a fresh run ID.
	Recorder *trace.Recorder
	// Stream, when set, receives the event trace live (the tracestream
	// aggregator behind `jitsim -serve`): the run's recorder streams into
	// it via trace.Recorder.SetSink. With no Recorder configured, a
	// retention-free recorder is created internally, so long-running
	// serving pays only the stream's bounded memory, not an unbounded
	// post-hoc log. Streaming never perturbs the run (the differential
	// suite pins byte-identical trajectories).
	Stream *tracestream.Stream
	// Peer overrides the peer-shelter tier's parameters (UsesPeerShelter
	// policies only; nil = defaults). Setting DataShards/ParityShards
	// switches the shelter from whole-entry replication to Reed-Solomon
	// striping: each rank's state splits into k data + m parity fragments
	// spread across distinct failure domains, and restore reconstructs
	// missing data from parity. A zero LinkBandwidth inherits the
	// workload's peer-link bandwidth.
	Peer *peerckpt.Params
	// MultiStepSlices sets how many per-iteration shard slices the
	// multi-step overlapped disk writer splits each logical snapshot into
	// (UsesMultiStep policies only; 0 = 4). The writer's generation
	// interval is CkptInterval (0 = optimal c*).
	MultiStepSlices int
	// PipeFree overrides the checkpoint-free stage-redundancy tier's
	// parameters (PolicyPipeFree only; nil = defaults).
	PipeFree *pipefree.Params
	// RackSize overrides the failure-domain width for single-job runs
	// (nodes n and n' share a rack iff n/RackSize == n'/RackSize;
	// 0 = the default of 2). Shared (fleet) runs take the cluster's
	// value instead.
	RackSize int
	// Shared, when set, runs the job inside a cluster-owned simulation
	// (StartJob) instead of a private one: the cluster owns the
	// environment, nodes and allocator, and the job leases capacity
	// through it. Run rejects configs with Shared set.
	Shared *SharedSim
}

// RunResult reports what the job did.
type RunResult struct {
	Policy     Policy
	Completed  bool
	WallTime   vclock.Time
	Accounting metrics.Accounting
	// Minibatch is the measured steady-state minibatch time.
	Minibatch vclock.Time
	// Loss maps iteration to loss on the reference (last-stage, d=0)
	// rank; re-executed iterations keep the first recorded value.
	Loss map[int]float32
	// Reports are transparent-recovery episodes.
	Reports []*RecoveryReport
	// Incarnations counts job (re)starts (1 = never restarted).
	Incarnations int
	// JITCheckpointTime and RestoreTime are per-episode measurements for
	// Table 4 (user-level policy only).
	JITCheckpointTime vclock.Time
	RestoreTime       vclock.Time
	// Validations counts ranks whose §4.1 replay validation passed;
	// ValidationFailures counts ranks where it did not.
	Validations        int
	ValidationFailures int
	// ItersExecuted counts every minibatch executed, including redone
	// ones.
	ItersExecuted int
	// Peer summarizes the peer-shelter tier's replication activity
	// (UsesPeerShelter policies only).
	Peer peerckpt.Stats
	// Pipe summarizes the checkpoint-free stage-redundancy tier's activity
	// (PolicyPipeFree only).
	Pipe pipefree.Stats
	// MultiStepCommits counts multi-step generations the reference rank
	// committed (UsesMultiStep policies only).
	MultiStepCommits int
	// CkptReadBytes is the total modelled bytes read from checkpoint
	// stores (disk, tmpfs, and peer-shelter hosts) during restores — the
	// counter auditing the pipe-free family's zero-checkpoint-read claim.
	CkptReadBytes int64
	// Disk is the run's shared checkpoint store; oracle runs pass it back
	// in via JobConfig.DiskStore to restore from this run's checkpoints.
	Disk *checkpoint.Store
	// SimStats are the simulation kernel's event counters for the run
	// (process dispatches, timer fires, event triggers, spawns) — the
	// denominator-free raw material for events/sec benchmarking. In a
	// shared (fleet) simulation these are the cluster-wide counters at
	// the time this job finished.
	SimStats vclock.Stats
	// RecoveryLatencies is one entry per recovery episode: the time from
	// failure detection to the reference rank's first subsequent
	// minibatch start (for the transparent policy, each episode's
	// reported total). The fleet aggregation builds its per-tenant
	// recovery-latency distribution from these.
	RecoveryLatencies []vclock.Time
	// SkippedInjections counts planned injections that never fired
	// because their target was already lost when they came due.
	SkippedInjections int
	// Yields counts arbiter-requested preemption yields the job honored
	// (elastic fleet jobs only).
	Yields int
}

// OptimalInterval computes the periodic-checkpoint interval 1/c* for a
// workload from the §5.2 model, using the measured checkpoint cost.
func OptimalInterval(wl workload.Workload, fPerGPUDay float64) vclock.Time {
	o := wl.CkptTarget.Sec()
	if o <= 0 {
		o = float64(wl.StateBytesPerGPU()) / wl.CkptBandwidth()
	}
	c := analysis.OptimalFrequency(analysis.Params{O: o, F: analysis.PerDay(fPerGPUDay), N: wl.GPUs()})
	if c <= 0 {
		return vclock.Hour
	}
	return vclock.Seconds(1 / c)
}

// Run executes the job and returns its result.
func Run(cfg JobConfig) (*RunResult, error) {
	if cfg.Shared != nil {
		return nil, errors.New("core: Run with JobConfig.Shared set; use StartJob")
	}
	if err := prepare(&cfg); err != nil {
		return nil, err
	}
	h := newHarness(cfg)
	if err := h.setup(); err != nil {
		return nil, err
	}
	if err := h.launch(); err != nil {
		return h.res, err
	}
	if err := h.env.RunUntil(h.cfg.Horizon); err != nil {
		return h.res, err
	}
	h.finish()
	return h.res, nil
}

// prepare validates the config and applies defaults.
func prepare(cfg *JobConfig) error {
	if cfg.Iters <= 0 {
		return errors.New("core: Iters must be positive")
	}
	world := cfg.WL.Topo.World()
	if err := cfg.Failures.Validate(world); err != nil {
		return err
	}
	for i, inj := range cfg.IterFailures {
		if inj.Rank < 0 || inj.Rank >= world {
			return fmt.Errorf("core: IterFailures[%d] (%v at iter %d) targets rank %d outside world [0,%d)",
				i, inj.Kind, inj.Iter, inj.Rank, world)
		}
	}
	if cfg.FailureRatePerGPUDay <= 0 {
		cfg.FailureRatePerGPUDay = 2.0 / 992
	}
	if cfg.HangTimeout <= 0 {
		cfg.HangTimeout = 10 * vclock.Second
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = vclock.Time(cfg.Iters+20)*cfg.WL.Minibatch*4 +
			vclock.Time(len(cfg.Failures.Injections)+1)*10*vclock.Minute + vclock.Hour
	}
	return nil
}

func newHarness(cfg JobConfig) *harness {
	h := &harness{cfg: cfg, shared: cfg.Shared, yieldAt: -1, label: "job"}
	if h.shared != nil && h.shared.Label != "" {
		h.label = h.shared.Label
	}
	h.rackSize = 2
	if cfg.RackSize > 0 {
		h.rackSize = cfg.RackSize
	}
	if h.shared != nil && h.shared.RackSize > 0 {
		h.rackSize = h.shared.RackSize
	}
	return h
}

// IterInjection is a failure anchored to training progress.
type IterInjection struct {
	Iter int
	Frac float64
	Rank int
	Kind failure.Kind
}

// harness holds the run's mutable state.
type harness struct {
	cfg     JobConfig
	env     *vclock.Env
	cluster *gpu.Cluster
	nodes   []*gpu.Node // the node set failure/shelter bookkeeping resolves against
	engine  *nccl.Engine
	pool    Capacity
	monitor *scheduler.Monitor
	disk    *checkpoint.Store
	tmpfs   *checkpoint.Store
	kernels cuda.Registry

	// Shared-simulation (fleet) state.
	shared   *SharedSim
	handle   *JobHandle
	label    string
	rackSize int
	startAt  vclock.Time
	finished bool
	yieldAt  int // iteration to stop at for an arbiter-requested yield; -1 if none
	yields   int

	placement scheduler.Placement
	shelter   *peerckpt.Shelter
	peerPlan  map[int][]int
	pipeguard *pipefree.Guard
	gen       int

	// Elastic degraded-mode state: topo/accum are the CURRENT shape every
	// incarnation builds workers from (equal to the workload's full shape
	// unless an elastic shrink narrowed it).
	elastic       *elastic.Controller
	topo          train.Topology
	accum         int
	heldNodes     int // nodes the running incarnation occupies
	maxIter       int // highest iteration any rank has started
	waitCap       vclock.Time
	degradedIters int
	degradedExtra int // sum of (accum-1) over degraded iteration starts

	res        *RunResult
	iterStarts map[int]vclock.Time // reference rank's StartMinibatch times
	refRank    int
	doneRanks  map[int]bool
	lastBeat   map[int]vclock.Time
	ckptStall  vclock.Time
	ckptCount  int
	execIters  int
	recovering bool        // a detected failure has not yet been followed by progress
	recoverAt  vclock.Time // when the current episode was detected

	genReader      func() int
	collectReports func()
	injector       *failure.Injector
	pendingIter    []IterInjection
	deviceOf       func(rank int) *gpu.Device
	runSpan        trace.Span
}

// setup builds the job's stacks: environment (private, unless a shared
// one is supplied), cluster and pool (private, or leased), engine,
// stores, elastic controller, and the failure injector. It performs no
// simulated work; launch starts the job's processes.
func (h *harness) setup() error {
	cfg := h.cfg
	wl := cfg.WL
	if h.shared != nil {
		h.env = h.shared.Env
		h.startAt = h.env.Now()
		h.nodes = h.shared.Nodes
		h.pool = h.shared.Capacity
		h.runSpan = trace.Of(h.env).Begin(h.env.Now(), "core", trace.LaneSim, "run",
			"job", h.label, "policy", cfg.Policy, "gpus", wl.GPUs(), "iters", cfg.Iters)
		h.engine = nccl.NewEngine(h.env, wl.NCCLParams())
	} else {
		h.env = vclock.NewEnv(cfg.Seed)
		if cfg.Trace != nil {
			h.env.SetTracer(cfg.Trace)
		}
		rec := cfg.Recorder
		if cfg.Stream != nil && rec == nil {
			// Live streaming without a post-hoc log: bounded memory.
			rec = trace.New()
			rec.SetRetain(false)
		}
		if cfg.Stream != nil {
			rec.SetSink(cfg.Stream)
		}
		if rec != nil {
			rec.BeginRun(fmt.Sprintf("%v seed=%d", cfg.Policy, cfg.Seed))
			trace.Attach(h.env, rec)
			h.runSpan = rec.Begin(0, "core", trace.LaneSim, "run",
				"job", h.label, "policy", cfg.Policy, "gpus", wl.GPUs(),
				"iters", cfg.Iters, "seed", cfg.Seed)
		}
		h.engine = nccl.NewEngine(h.env, wl.NCCLParams())
		h.cluster = gpu.NewCluster(h.env, wl.Nodes+cfg.SpareNodes, wl.PerNode, 1<<40)
		h.nodes = h.cluster.Nodes
		h.pool = scheduler.NewPool(h.env, h.cluster.Nodes)
	}
	h.monitor = scheduler.NewMonitor(h.env)
	if cfg.DiskStore != nil {
		h.disk = cfg.DiskStore
	} else {
		h.disk = checkpoint.NewStore(h.env, "shared", wl.CkptStoreParams())
	}
	h.tmpfs = checkpoint.NewStore(h.env, "tmpfs", checkpoint.TmpfsParams())
	h.kernels = train.Kernels()
	h.res = &RunResult{Policy: cfg.Policy, Loss: make(map[int]float32), Disk: h.disk}
	h.iterStarts = make(map[int]vclock.Time)
	// The reference rank (d=0, last stage, t=0) has the same rank number
	// at every data-parallel width, so it survives elastic shrinks.
	h.refRank = wl.Topo.Rank(0, wl.Topo.P-1, 0)
	h.topo = wl.Topo
	h.accum = maxInt(cfg.Accum, 1)
	if cfg.Policy.Elastic() {
		h.elastic = elastic.New(wl.Topo, wl.Nodes)
	}

	if cfg.Policy.UsesPeerShelter() {
		if wl.Nodes < 2 {
			return errors.New("core: peer-shelter policies need at least 2 nodes (no peer failure domain otherwise)")
		}
		params := peerckpt.Params{LinkBandwidth: wl.PeerLinkBandwidth()}
		if cfg.Peer != nil {
			params = *cfg.Peer
			if params.LinkBandwidth == 0 {
				params.LinkBandwidth = wl.PeerLinkBandwidth()
			}
		}
		shelter, err := peerckpt.NewShelter(h.env, "job", params, peerckpt.Availability{
			Nodes:          len(h.nodes),
			FailureDomains: h.failureDomains(),
		})
		if err != nil {
			return err
		}
		h.shelter = shelter
		// Peer replication rides along with the gradient all-reduce traffic
		// (Checkmate-style piggybacking): record each all-reduce window so
		// the shelter can report its relative bandwidth cost.
		h.engine.SetObserver(func(cd nccl.CollectiveDone) {
			if cd.Kind == "allreduce" {
				h.shelter.NotePiggyback(cd.Bytes)
			}
		})
	}

	if cfg.Policy.UsesPipeFree() {
		params := pipefree.DefaultParams()
		if cfg.PipeFree != nil {
			params = *cfg.PipeFree
		}
		guard, err := pipefree.New(h.env, "job", params, wl.Topo, func(rank int) int {
			var dev *gpu.Device
			if h.deviceOf != nil {
				dev = h.deviceOf(rank)
			} else {
				dev = h.placement[rank]
			}
			if dev == nil {
				return -1
			}
			return dev.NodeID
		})
		if err != nil {
			return err
		}
		h.pipeguard = guard
	}

	// nodeOf resolves the node currently hosting a rank (for whole-host
	// failure injection and shelter bookkeeping).
	nodeOf := func(rank int) *gpu.Node {
		var dev *gpu.Device
		if h.deviceOf != nil {
			dev = h.deviceOf(rank)
		} else {
			dev = h.placement[rank]
		}
		if dev == nil {
			return nil
		}
		for _, n := range h.nodes {
			if n.ID == dev.NodeID {
				return n
			}
		}
		return nil
	}

	// Failure injector resolves targets against the current placement.
	injector := &failure.Injector{
		Env: h.env,
		DeviceOf: func(rank int) *gpu.Device {
			if h.deviceOf != nil {
				return h.deviceOf(rank) // live mapping: survives migration
			}
			return h.placement[rank]
		},
		Engine: h.engine,
		CommKeyOf: func(rank int) string {
			_, p, t := wl.Topo.Coords(rank)
			if wl.Topo.FSDP() {
				s := 0
				return train.FSDPRepCommKey("job", s, p)
			}
			return train.DPCommKey("job", p, t)
		},
		GenOf: func(string) int {
			if h.genReader != nil {
				return h.genReader()
			}
			return h.gen
		},
		NodeOf: nodeOf,
	}
	// Rack affinity: consecutive node groups share a failure domain
	// (rack = node.ID/rackSize, rackSize=2 unless the cluster says
	// otherwise), matching the shelter's placement assumption that
	// distinct nodes suffice; RackDown is precisely the adversary that
	// breaks the weaker assumption.
	injector.RackNodesOf = func(rank int) []*gpu.Node {
		n := nodeOf(rank)
		if n == nil {
			return nil
		}
		var out []*gpu.Node
		for _, cand := range h.nodes {
			if cand.ID/h.rackSize == n.ID/h.rackSize {
				out = append(out, cand)
			}
		}
		return out
	}
	// A StorageFault opens a short window during which shared-store
	// writes fail transiently; the writers' bounded retry-with-backoff is
	// what absorbs it. Chaos-plan write outcomes compose underneath.
	var storageFaultWindow int
	var baseChaos func(string) checkpoint.WriteOutcome
	if cfg.Chaos != nil {
		baseChaos = cfg.Chaos.DiskChaos
	}
	h.disk.SetChaos(func(path string) checkpoint.WriteOutcome {
		if storageFaultWindow > 0 {
			storageFaultWindow--
			return checkpoint.WriteFailTransient
		}
		if baseChaos != nil {
			return baseChaos(path)
		}
		return checkpoint.WriteOK
	})
	injector.OnStorageFault = func(failure.Injection) { storageFaultWindow += 2 }
	if h.shelter != nil || h.pipeguard != nil || (h.shared != nil && h.shared.OnInject != nil) {
		injector.OnInject = func(inj failure.Injection) {
			if (h.shelter != nil || h.pipeguard != nil) &&
				(inj.Kind == failure.NodeDown || inj.Kind == failure.RackDown) {
				// A whole-host failure takes its sheltered entries (and
				// retained stage-redundancy bundles) with it the instant it
				// happens — not at incarnation teardown. RackDown fails
				// several nodes at once, so sweep rather than resolve one
				// rank.
				for _, n := range h.nodes {
					if !n.Failed {
						continue
					}
					if h.shelter != nil {
						h.shelter.MarkNodeLost(n.ID)
					}
					if h.pipeguard != nil {
						h.pipeguard.MarkNodeLost(n.ID)
					}
				}
			}
			if h.shared != nil && h.shared.OnInject != nil {
				h.shared.OnInject(inj)
			}
		}
	}
	if h.shelter != nil && cfg.Chaos != nil && cfg.Chaos.ShelterChaos != nil {
		h.shelter.SetStoreChaos(cfg.Chaos.ShelterChaos)
	}
	if cfg.Chaos != nil {
		injector.ArmPhase(cfg.Chaos.PhaseInjections...)
	}
	// Repair events re-admit failed hardware. When the job is running
	// degraded and the repaired capacity again covers the full width,
	// schedule a mid-run expand: degraded workers stop (and checkpoint) a
	// couple of iterations ahead, and the next incarnation restarts at
	// full width.
	injector.AllNodes = h.nodes
	injector.OnRepair = func(node *gpu.Node) {
		h.pool.MarkRepaired(node.ID)
		h.noteRepairCapacity()
	}
	plannedRepairs := 0
	for _, inj := range cfg.IterFailures {
		if inj.Kind == failure.NodeRepaired {
			plannedRepairs++
		}
	}
	if plannedRepairs > 0 {
		injector.NotePlannedRepairs(plannedRepairs)
	}
	injector.Start(cfg.Failures)
	h.injector = injector
	if h.shelter != nil {
		// Stripe encode and parity reconstruction are fault-injection
		// phases of their own: chaos plans can land failures mid-encode or
		// mid-reconstruction.
		h.shelter.NotePhase = func(rank int, ph failure.Phase) {
			h.injector.NotePhase(rank, ph)
		}
	}
	if h.pipeguard != nil {
		// Stage rebuilds are a fault-injection phase: chaos plans can land
		// failures mid-reconstruction.
		h.pipeguard.NotePhase = func(rank int, ph failure.Phase) {
			h.injector.NotePhase(rank, ph)
		}
	}
	// Communicator (re-)initialization under a fresh generation is a
	// recovery phase; generation 0 is initial job setup and is not.
	h.engine.SetOnCommInit(func(key string, gen, rank int) {
		if gen > 0 {
			h.injector.NotePhase(rank, failure.PhaseCommInit)
		}
	})
	h.pendingIter = append([]IterInjection(nil), cfg.IterFailures...)
	return nil
}

// failureDomains counts the distinct racks the run's nodes span
// (rack = node.ID / rackSize); the shelter validates stripe geometry
// against it at construction.
func (h *harness) failureDomains() int {
	racks := make(map[int]bool)
	for _, n := range h.nodes {
		racks[n.ID/h.rackSize] = true
	}
	return len(racks)
}

// launch starts the job's simulated processes; the caller (Run or the
// cluster) drives the environment forward.
func (h *harness) launch() error {
	if h.cfg.Policy == PolicyTransparentJIT {
		return h.runTransparent()
	}
	return h.runIncarnations()
}

// noteRepairCapacity reacts to restored capacity: a job running degraded
// schedules a mid-run expand when the repaired (or arbiter-granted)
// capacity again covers the full width — degraded workers stop (and
// checkpoint) a couple of iterations ahead, and the next incarnation
// restarts at full width. The single-job injector calls it after every
// repair; the cluster calls it through the job handle.
func (h *harness) noteRepairCapacity() {
	if h.finished || h.elastic == nil || !h.elastic.Degraded() {
		return
	}
	if h.pool.FreeHealthy()+h.heldNodes >= h.elastic.Full().Nodes {
		at := h.maxIter + 2
		if at < h.cfg.Iters {
			h.elastic.RequestExpand(at)
			h.env.Tracef("harness: repairs restored full capacity; expand scheduled at iter %d", at)
		}
	}
}

// noteNodesLost drops peer-sheltered entries on cluster-destroyed nodes
// the moment they die (the workers themselves fail organically through
// their dead devices). Cluster-scoped injections bypass the job's own
// injector, so its OnInject sweep never sees them.
func (h *harness) noteNodesLost(nodeIDs []int) {
	if h.finished || (h.shelter == nil && h.pipeguard == nil) {
		return
	}
	for _, id := range nodeIDs {
		if h.shelter != nil {
			h.shelter.MarkNodeLost(id)
		}
		if h.pipeguard != nil {
			h.pipeguard.MarkNodeLost(id)
		}
	}
}

// requestYield asks the job to stop cleanly a couple of iterations ahead
// so the arbiter can hand its nodes to a higher-priority tenant. Only
// elastic jobs that can actually run narrower honor it; everyone else
// (including jobs already yielding or nearly done) reports false and the
// arbiter moves to the next victim.
func (h *harness) requestYield() bool {
	if h.finished || h.elastic == nil || h.yieldAt >= 0 {
		return false
	}
	cur := h.elastic.Plan()
	minNodes := 1
	if h.shelter != nil {
		minNodes = 2
	}
	if _, ok := elastic.Shrink(cur.Topo, h.cfg.WL.PerNode, cur.Nodes-1, minNodes); !ok {
		return false
	}
	at := h.maxIter + 2
	if at >= h.cfg.Iters {
		return false // finishing frees the nodes sooner than yielding would
	}
	h.yieldAt = at
	h.elastic.CancelExpand()
	h.env.Tracef("harness: yield requested; stopping at iter %d", at)
	return true
}

// workerConfig builds the common per-rank training configuration.
func (h *harness) workerConfig(rank int, api cuda.API, gil *vclock.Mutex, layer *intercept.Layer) train.Config {
	wl := h.cfg.WL
	tc := train.Config{
		Name:     fmt.Sprintf("w%d", rank),
		JobKey:   "job",
		Rank:     rank,
		Topo:     h.topo,
		Model:    wl.TrainModel(),
		Opt:      wl.Optimizer(),
		Step:     wl.StepTime(),
		API:      api,
		DataSeed: 7,
		Accum:    h.accum,
		GIL:      gil,
	}
	if layer != nil {
		tc.Hooks = train.Hooks{
			StartMinibatch: func(iter int) {
				layer.StartMinibatch(iter)
				h.noteIterStart(rank, iter)
			},
			PreOptimizer: func(p *vclock.Proc, iter int) {
				if h.shouldValidate(iter) {
					res, err := layer.Validate(p)
					if err == nil && res.OK {
						h.res.Validations++
					} else {
						h.res.ValidationFailures++
						h.env.Tracef("rank %d: replay validation FAILED: %+v err=%v", rank, res, err)
					}
				}
				layer.PreOptimizerStep()
			},
			PostOptimizer: layer.PostOptimizerStep,
		}
	} else {
		tc.Hooks = train.Hooks{StartMinibatch: func(iter int) { h.noteIterStart(rank, iter) }}
	}
	if h.cfg.CollectLoss && rank == h.refRank {
		tc.OnLoss = func(iter int, loss float32) {
			if _, seen := h.res.Loss[iter]; !seen {
				h.res.Loss[iter] = loss
			}
		}
	}
	return tc
}

// shouldValidate reports whether the §4.1 verification runs at iter.
func (h *harness) shouldValidate(iter int) bool {
	if h.cfg.Policy != PolicyTransparentJIT || h.cfg.ValidateAt <= 0 {
		return false
	}
	if iter == h.cfg.ValidateAt {
		return true
	}
	return h.cfg.ValidateEvery > 0 && iter > h.cfg.ValidateAt &&
		(iter-h.cfg.ValidateAt)%h.cfg.ValidateEvery == 0
}

func (h *harness) noteIterStart(rank, iter int) {
	if h.lastBeat != nil {
		h.lastBeat[rank] = h.env.Now()
	}
	if iter > h.maxIter {
		h.maxIter = iter
	}
	if rank != h.refRank {
		return
	}
	if h.recovering {
		h.res.RecoveryLatencies = append(h.res.RecoveryLatencies, h.env.Now()-h.recoverAt)
		h.recovering = false
	}
	if _, seen := h.iterStarts[iter]; !seen {
		h.iterStarts[iter] = h.env.Now()
		// Fire iteration-anchored failures.
		remain := h.pendingIter[:0]
		for _, inj := range h.pendingIter {
			if inj.Iter != iter {
				remain = append(remain, inj)
				continue
			}
			inj := inj
			delay := vclock.Time(inj.Frac * float64(h.cfg.WL.Minibatch))
			h.env.Go("iter-injector", func(p *vclock.Proc) {
				if delay > 0 {
					p.Sleep(delay)
				}
				h.injector.Apply(failure.Injection{At: p.Now(), Rank: inj.Rank, Kind: inj.Kind})
			})
		}
		h.pendingIter = remain
	}
	h.execIters++
	if h.accum > 1 {
		h.degradedIters++
		h.degradedExtra += h.accum - 1
	}
}

// measuredMinibatch estimates the clean minibatch time from early
// iteration start gaps.
func (h *harness) measuredMinibatch() vclock.Time {
	best := vclock.Time(0)
	for i := 1; i <= 5; i++ {
		a, okA := h.iterStarts[i]
		b, okB := h.iterStarts[i+1]
		if okA && okB {
			gap := b - a
			if best == 0 || gap < best {
				best = gap
			}
		}
	}
	if best == 0 {
		best = h.cfg.WL.Minibatch
	}
	return best
}

// finish computes the accounting from the run's observations.
func (h *harness) finish() {
	res := h.res
	res.WallTime = h.env.Now() - h.startAt
	res.SimStats = h.env.Stats()
	res.Minibatch = h.measuredMinibatch()
	res.ItersExecuted = h.execIters
	res.SkippedInjections = h.injector.SkippedCount()
	res.Yields = h.yields
	// The final incarnation's world size: an elastic run that finished in
	// degraded mode completed with fewer ranks than the full workload.
	res.Completed = len(h.doneRanks) == h.topo.World()
	if h.elastic != nil && h.elastic.Degraded() {
		// Trace invariant 6: a run that closes while degraded must say so
		// explicitly — every shrink is followed by an expand or this.
		trace.Of(h.env).Instant(h.env.Now(), "elastic", trace.LaneSim, "end-degraded",
			"world", h.topo.World(), "completed", res.Completed)
	}

	if h.collectReports != nil {
		h.collectReports()
	}
	// Transparent recovery episodes report their own detection-to-resume
	// totals; surface them in the same per-episode latency series the
	// incarnation policies record through noteIterStart.
	if len(res.Reports) > 0 && len(res.RecoveryLatencies) == 0 {
		for _, rep := range res.Reports {
			res.RecoveryLatencies = append(res.RecoveryLatencies, rep.Total())
		}
	}
	if h.shelter != nil {
		res.Peer = h.shelter.Stats()
	}
	if h.pipeguard != nil {
		res.Pipe = h.pipeguard.Stats()
	}
	mb := res.Minibatch
	acct := metrics.Accounting{N: h.cfg.WL.GPUs()}
	acct.Checkpoints = h.ckptCount
	// A degraded iteration runs Accum microbatches and makes the forward
	// progress of Accum full-width iterations' worth of samples: credit it
	// with Accum×mb of useful time (DegradedUseful reports the total).
	useful := vclock.Time(minInt(h.execIters, h.cfg.Iters))*mb +
		vclock.Time(h.degradedExtra)*mb
	redoIters := h.execIters - minInt(h.execIters, h.cfg.Iters)
	acct.Useful = useful
	acct.RedoWork = vclock.Time(redoIters) * mb
	acct.CkptStall = h.ckptStall
	acct.WaitingForCapacity = h.waitCap
	acct.DegradedIters = h.degradedIters
	acct.DegradedUseful = vclock.Time(h.degradedIters+h.degradedExtra) * mb
	acct.Recoveries = maxInt(res.Incarnations-1, len(res.Reports))
	// Whatever the run spent that no bucket claims is recovery overhead —
	// for a completed run the fixed recovery costs, for a stalled or
	// failed one the time burnt before it gave up. Charging it keeps
	// useful + wasted == wall exact at every terminal state.
	fixed := res.WallTime - acct.Useful - acct.RedoWork - acct.CkptStall - acct.WaitingForCapacity
	if fixed < 0 {
		// Degraded-iteration credit can slightly overestimate progress
		// rate; shave Useful rather than break useful+wasted == wall.
		acct.Useful += fixed
		fixed = 0
	}
	acct.RecoveryFixed = fixed
	res.Accounting = acct
	// The authoritative accounting instant: the streaming aggregator's
	// final per-job rollup is parsed from these args, emitted from the
	// very struct RunResult carries, so live and post-hoc numbers cannot
	// diverge (streaming is a view, never a second source of truth).
	// Durations are integer nanoseconds: %v's "1.500s" formatting would
	// lose the exactness the differential suite asserts.
	trace.Of(h.env).Instant(h.env.Now(), "core", trace.LaneSim, "acct",
		"job", h.label, "n", acct.N,
		"useful", int64(acct.Useful),
		"ckpt_stall", int64(acct.CkptStall),
		"recovery_fixed", int64(acct.RecoveryFixed),
		"redo", int64(acct.RedoWork),
		"wait_capacity", int64(acct.WaitingForCapacity),
		"recoveries", acct.Recoveries,
		"checkpoints", acct.Checkpoints,
		"degraded_iters", acct.DegradedIters,
		"degraded_useful", int64(acct.DegradedUseful),
		"wall", int64(res.WallTime),
		"completed", res.Completed,
		"incarnations", res.Incarnations,
		"episodes", len(res.RecoveryLatencies))
	h.runSpan.End(h.env.Now(), "completed", res.Completed,
		"incarnations", res.Incarnations, "recoveries", acct.Recoveries)
}

// jobDone finalizes a fleet job exactly once: accounting closes at the
// current virtual time and the cluster's OnDone observer fires. Single-job
// runs finalize through Run; fleet jobs through their supervisor exit,
// transparent completion, or ForceFinish at the cluster horizon.
func (h *harness) jobDone() {
	if h.finished {
		return
	}
	h.finished = true
	h.finish()
	if h.shared != nil && h.shared.OnDone != nil {
		h.shared.OnDone(h.res)
	}
}

// noteDetected emits the failure-detection instant trace invariants key
// on: every JIT checkpoint and every recovery-then-resume must be
// anchored to one of these. It also opens a recovery-latency episode:
// the episode closes at the reference rank's next minibatch start.
func (h *harness) noteDetected(t vclock.Time, rank int, by string) {
	if !h.recovering {
		h.recovering = true
		h.recoverAt = t
	}
	lane := trace.LaneSim
	if rank >= 0 {
		lane = trace.Rank(rank)
	}
	trace.Of(h.env).Instant(t, "fail", lane, "detected", "by", by)
}

// ---------------------------------------------------------------------
// Transparent policy: one incarnation, coordinator-driven recovery.
// ---------------------------------------------------------------------

func (h *harness) runTransparent() error {
	wl := h.cfg.WL
	if h.shared != nil {
		// Fleet admission: wait (in simulated time) until the arbiter's
		// lease grants the full width, then start. Transparent jobs are
		// fixed-width, so admission is all-or-nothing.
		h.env.Go(h.label+".admit", func(p *vclock.Proc) {
			nodes, err := h.pool.Allocate(wl.Nodes, nil)
			for err != nil {
				timeout := h.cfg.Horizon - p.Now()
				if timeout <= 0 {
					h.jobDone()
					return
				}
				wait0 := p.Now()
				h.shared.AwaitCapacity(p, timeout)
				h.waitCap += p.Now() - wait0
				nodes, err = h.pool.Allocate(wl.Nodes, nil)
			}
			if serr := h.startTransparent(nodes); serr != nil {
				h.env.Tracef("%s: transparent start failed: %v", h.label, serr)
				h.pool.Release(nodes)
				h.jobDone()
			}
		})
		return nil
	}
	nodes, err := h.pool.Allocate(wl.Nodes, nil)
	if err != nil {
		return err
	}
	return h.startTransparent(nodes)
}

// startTransparent builds the coordinator and rank stacks on allocated
// nodes and launches the workers.
func (h *harness) startTransparent(nodes []*gpu.Node) error {
	cfg := h.cfg
	wl := cfg.WL
	placement, err := scheduler.Place(nodes, wl.Topo.World())
	if err != nil {
		return err
	}
	h.placement = placement
	h.doneRanks = make(map[int]bool)

	ranks := make([]*TransparentRank, wl.Topo.World())
	coord := NewCoordinator(h.env, CoordinatorConfig{
		Job:            "job",
		Topo:           wl.Topo,
		Teardown:       wl.Teardown,
		Minibatch:      wl.Minibatch,
		StateBytes:     wl.StateBytesPerGPU(),
		SerializeBW:    wl.SerializeBW(),
		Store:          h.disk,
		Monitor:        h.monitor,
		Pool:           h.pool,
		CRIU:           scheduler.CRIU{SnapshotTime: wl.CRIU * 2 / 3, RestoreTime: wl.CRIU / 3},
		Kernels:        h.kernels,
		CUDAParams:     wl.CUDAParams(),
		ProxyParams:    proxy.DefaultParams(),
		AttemptTimeout: cfg.RecoveryAttemptTimeout,
	}, ranks)
	// The injector and coordinator share the generation counter.
	genRead := func() int { return coord.Generation() }
	h.genReader = genRead

	for r := 0; r < wl.Topo.World(); r++ {
		server, err := proxy.NewServer(h.env, placement[r], h.engine, h.kernels, wl.CUDAParams(), proxy.DefaultParams())
		if err != nil {
			return err
		}
		client := proxy.NewClient(h.env, server)
		layer := intercept.New(h.env, client, fmt.Sprintf("rank%d", r), intercept.Config{
			Mode:        intercept.ModeTransparent,
			HangTimeout: cfg.HangTimeout,
			OnFault:     coord.Hook(r),
		})
		worker, err := train.NewWorker(h.workerConfig(r, layer, nil, layer))
		if err != nil {
			return err
		}
		ranks[r] = &TransparentRank{Rank: r, Layer: layer, Client: client, Server: server, Worker: worker}
	}
	coord.Start()
	// Resolve failure targets through the live rank stacks: a hard-error
	// migration moves ranks to new devices.
	h.deviceOf = func(rank int) *gpu.Device { return ranks[rank].Server.Device() }

	for r := 0; r < wl.Topo.World(); r++ {
		r := r
		h.env.Go(fmt.Sprintf("worker%d", r), func(p *vclock.Proc) {
			w := ranks[r].Worker
			if err := w.Setup(p, 0); err != nil {
				h.env.Tracef("rank %d setup failed: %v", r, err)
				return
			}
			if err := w.RunIters(p, cfg.Iters); err != nil {
				h.env.Tracef("rank %d training failed: %v", r, err)
				return
			}
			h.doneRanks[r] = true
			if len(h.doneRanks) == wl.Topo.World() {
				// Job complete: stop the watchdogs so their poll timers
				// do not keep the simulation alive until the horizon.
				for _, tr := range ranks {
					tr.Layer.StopWatchdog()
				}
				if h.shared != nil {
					// Return the leased nodes (post-migration placements
					// included: resolve through the live rank stacks) and
					// close the job's fleet accounting.
					seen := make(map[int]bool)
					var ids []int
					for _, tr := range ranks {
						if dev := tr.Server.Device(); dev != nil && !seen[dev.NodeID] {
							seen[dev.NodeID] = true
							ids = append(ids, dev.NodeID)
						}
					}
					h.pool.ReleaseByID(ids...)
					h.jobDone()
				}
			}
		})
	}
	h.res.Incarnations = 1
	h.collectReports = func() { h.res.Reports = coord.Reports() }
	return nil
}

// ---------------------------------------------------------------------
// Incarnation-based policies: none, periodic, user-level JIT.
// ---------------------------------------------------------------------

// incarnation runs one job incarnation; it reports how it ended.
type incarnationEnd int

const (
	endCompleted incarnationEnd = iota
	endFailed
	endHorizon
	// endExpand: degraded workers stopped and checkpointed so the next
	// incarnation can restart at full width on repaired nodes.
	endExpand
	// endYield: workers stopped and checkpointed for an arbiter-requested
	// preemption; the next incarnation re-allocates under the arbiter's
	// reservations (and typically takes the elastic shrink path).
	endYield
)

func (e incarnationEnd) String() string {
	switch e {
	case endCompleted:
		return "completed"
	case endFailed:
		return "failed"
	case endExpand:
		return "expand"
	case endYield:
		return "yield"
	default:
		return "horizon"
	}
}

func (h *harness) runIncarnations() error {
	// The whole incarnation loop runs inside a supervisor process.
	h.doneRanks = make(map[int]bool)
	name := "supervisor"
	if h.shared != nil {
		name = h.label + ".supervisor"
	}
	h.env.Go(name, func(p *vclock.Proc) {
		if h.shared != nil {
			defer h.jobDone()
		}
		for {
			end := h.runOneIncarnation(p)
			h.res.Incarnations++
			if end == endCompleted || end == endHorizon {
				return
			}
			if h.res.Incarnations > 50 {
				h.env.Tracef("harness: too many incarnations, giving up")
				return
			}
		}
	})
	h.collectReports = func() {}
	return nil
}

func (h *harness) runOneIncarnation(p *vclock.Proc) (end incarnationEnd) {
	cfg := h.cfg
	wl := cfg.WL

	// Elastic re-expand at the incarnation boundary: a degraded job
	// returns to full width as soon as the repaired capacity exists. The
	// rejoining ranks bootstrap from the degraded era's checkpoints —
	// position keys are width-invariant, so cross-world assembly hands
	// every new rank a surviving replica's state.
	if h.elastic != nil && h.elastic.Degraded() && h.pool.FreeHealthy() >= h.elastic.Full().Nodes {
		plan := h.elastic.Expand()
		h.topo, h.accum = plan.Topo, maxInt(cfg.Accum, 1)
		trace.Of(h.env).Instant(p.Now(), "elastic", trace.LaneSim, "expand",
			"world", plan.Topo.World(), "nodes", plan.Nodes)
		h.env.Tracef("harness: elastic expand back to full width D=%d on %d nodes",
			plan.Topo.D, plan.Nodes)
	}

	// Allocate, shrinking — or waiting for a planned repair — when no full
	// placement exists. Fixed-width policies keep the old behavior (give
	// up until the horizon); elastic policies degrade instead of dying.
	wantNodes := wl.Nodes
	if h.elastic != nil {
		wantNodes = h.elastic.Plan().Nodes
	}
	nodes, err := h.pool.Allocate(wantNodes, nil)
	for err != nil {
		if h.elastic == nil && h.shared == nil {
			h.env.Tracef("harness: allocation failed: %v", err)
			return endHorizon
		}
		if h.elastic != nil {
			minNodes := 0
			if h.shelter != nil {
				minNodes = 2 // peer shelter needs a second failure domain
			}
			if plan, ok := h.elastic.Shrink(wl.PerNode, h.pool.FreeHealthy(), minNodes); ok {
				h.topo = plan.Topo
				h.accum = plan.Accum * maxInt(cfg.Accum, 1)
				wantNodes = plan.Nodes
				trace.Of(h.env).Instant(p.Now(), "elastic", trace.LaneSim, "shrink",
					"world", plan.Topo.World(), "accum", h.accum, "nodes", plan.Nodes)
				h.env.Tracef("harness: elastic shrink to D=%d accum=%d on %d nodes",
					plan.Topo.D, h.accum, plan.Nodes)
				nodes, err = h.pool.Allocate(wantNodes, nil)
				continue
			}
			if h.injector.RepairsPending() {
				timeout := cfg.Horizon - p.Now()
				if timeout <= 0 {
					return endHorizon
				}
				wait0 := p.Now()
				h.injector.AwaitRepair(p, timeout)
				h.waitCap += p.Now() - wait0
				nodes, err = h.pool.Allocate(wantNodes, nil)
				continue
			}
		}
		if h.shared != nil {
			// Fleet job: block until cluster capacity may have changed
			// (a release, repair, or reservation shift), then retry.
			timeout := cfg.Horizon - p.Now()
			if timeout <= 0 {
				return endHorizon
			}
			wait0 := p.Now()
			h.shared.AwaitCapacity(p, timeout)
			h.waitCap += p.Now() - wait0
			nodes, err = h.pool.Allocate(wantNodes, nil)
			continue
		}
		h.env.Tracef("harness: allocation failed, no viable shrink, no repairs pending: %v", err)
		return endHorizon
	}
	// A pending yield is consumed by re-allocation: the job now holds
	// exactly what the arbiter's reservations allow; a still-unsatisfied
	// arbiter will simply request another yield.
	h.yieldAt = -1
	h.heldNodes = wantNodes
	defer func() { h.heldNodes = 0 }()
	defer h.pool.Release(nodes)

	world := h.topo.World()
	isp := trace.Of(h.env).Begin(p.Now(), "core", trace.LaneSim, "incarnation",
		"gen", h.gen, "world", world)
	defer func() { isp.End(p.Now(), "end", end) }()

	placement, err := scheduler.Place(nodes, world)
	if err != nil {
		return endHorizon
	}
	h.placement = placement
	// Completion is judged against the CURRENT world: stale done-marks
	// from a wider incarnation must not count.
	h.doneRanks = make(map[int]bool)
	if h.shelter != nil {
		// Failure-domain-aware shelter placement: each rank's state goes to
		// host nodes outside its own (and, when possible, outside every
		// data-parallel replica's) failure domain. Striped shelters spread
		// the k+m fragments across distinct racks instead; re-running the
		// plan every incarnation means elastic shrinks re-stripe for free.
		pp := h.shelter.Params()
		var plan map[int][]int
		if pp.Striped() {
			plan, err = scheduler.StripePlan(placement, h.topo, pp.DataShards, pp.ParityShards,
				func(node int) int { return node / h.rackSize },
				func(format string, args ...interface{}) {
					trace.Of(h.env).Instant(p.Now(), "peer", trace.LaneSim, "stripe-degraded",
						"msg", fmt.Sprintf(format, args...))
					h.env.Tracef(format, args...)
				})
		} else {
			plan, err = scheduler.PeerPlan(placement, h.topo, pp.Copies)
		}
		if err != nil {
			h.env.Tracef("harness: peer plan failed: %v", err)
			return endHorizon
		}
		h.peerPlan = plan
	}
	// lastBeat entries appear when a rank starts its first minibatch;
	// the heartbeat watchdog ignores ranks still in setup (communicator
	// rendezvous and checkpoint restore legitimately take tens of
	// seconds).
	h.lastBeat = make(map[int]vclock.Time)

	interval := cfg.CkptInterval
	if kind, isPeriodic := cfg.Policy.PeriodicKind(); isPeriodic && interval == 0 {
		if kind == checkpoint.PCDaily {
			interval = vclock.Day
		} else {
			interval = OptimalInterval(wl, cfg.FailureRatePerGPUDay)
		}
	}
	// The multi-step writer paces its generations like a periodic policy
	// but overlaps the slice writes with compute.
	msInterval := cfg.CkptInterval
	if cfg.Policy.UsesMultiStep() && msInterval == 0 {
		msInterval = OptimalInterval(wl, cfg.FailureRatePerGPUDay)
	}
	msSlices := cfg.MultiStepSlices
	if msSlices <= 0 {
		msSlices = 4
	}

	type rankStack struct {
		worker *train.Worker
		layer  *intercept.Layer
		ujit   *UserLevelRank
		pc     *checkpoint.Periodic
		rep    *peerckpt.Replicator
		msw    *checkpoint.MultiStep
		keeper *pipefree.Keeper
		proc   *vclock.Proc
	}
	stacks := make([]*rankStack, world)
	failed := h.env.NewEvent(fmt.Sprintf("job.failed.g%d", h.gen))
	doneCount := 0
	allDone := h.env.NewEvent(fmt.Sprintf("job.done.g%d", h.gen))
	// expandStop fires when every degraded worker has reached the expand
	// iteration and checkpointed; the next incarnation restarts full-width.
	expandCount := 0
	expandStop := h.env.NewEvent(fmt.Sprintf("job.expand.g%d", h.gen))
	// yieldStop fires when every worker has reached an arbiter-requested
	// yield iteration and checkpointed; the next incarnation re-allocates
	// under the arbiter's reservations.
	yieldCount := 0
	yieldStop := h.env.NewEvent(fmt.Sprintf("job.yield.g%d", h.gen))

	for r := 0; r < world; r++ {
		drv, err := cuda.NewDriver(placement[r], h.engine, h.kernels, wl.CUDAParams())
		if err != nil {
			return endHorizon
		}
		st := &rankStack{}
		var api cuda.API = drv
		var gil *vclock.Mutex
		if cfg.Policy.UserLevelJIT() {
			gil = vclock.NewMutex(h.env, fmt.Sprintf("gil%d", r))
			layer := intercept.New(h.env, drv, fmt.Sprintf("rank%d", r), intercept.Config{
				Mode:        intercept.ModeUserLevel,
				HangTimeout: cfg.HangTimeout,
			})
			st.layer = layer
			api = layer
		}
		worker, err := train.NewWorker(h.workerConfig(r, api, gil, st.layer))
		if err != nil {
			return endHorizon
		}
		st.worker = worker
		if cfg.Policy.UserLevelJIT() {
			rr := r
			st.ujit = &UserLevelRank{
				Rank: r, Job: "job", Layer: st.layer, Worker: worker, GIL: gil,
				Store: h.disk, Monitor: h.monitor,
				StateBytes: wl.StateBytesPerGPU(), SerializeBW: wl.SerializeBW(),
				NotePhase: func() { h.injector.NotePhase(rr, failure.PhaseCheckpoint) },
			}
			if cfg.Policy == PolicyPeerShelter {
				// The failure-time JIT flush also goes to peer CPU memory:
				// recovery never touches remote storage.
				ownNode := placement[r].NodeID
				hosts := h.peerPlan[r]
				st.ujit.Namespace = peerckpt.PolicyName
				st.ujit.PickStore = func() *checkpoint.Store {
					return h.shelter.FlushStore(ownNode, hosts)
				}
			}
			st.layer.SetOnFault(st.ujit.Hook())
		}
		if h.shelter != nil {
			st.rep = h.shelter.NewReplicator(r, placement[r], h.peerPlan[r],
				wl.StateBytesPerGPU(), wl.CUDAParams().D2HBandwidth)
		}
		if kind, isPeriodic := cfg.Policy.PeriodicKind(); isPeriodic {
			store := h.disk
			mem := h.tmpfs
			st.pc = &checkpoint.Periodic{
				Kind: kind, Interval: interval, Disk: store, Mem: mem,
				HideFraction: 0.5, Job: "job",
				SerializeBW: wl.SerializeBW(), StateBytes: wl.StateBytesPerGPU(),
			}
		}
		if cfg.Policy.UsesMultiStep() {
			// The gradient ring must retain enough deltas to reconcile the
			// oldest slice (staleness up to slices-1 iterations).
			worker.EnableGradRing(msSlices)
			rr := r
			st.msw = &checkpoint.MultiStep{
				Slices: msSlices, Interval: msInterval, Disk: h.disk, Job: "job",
				StateBytes: wl.StateBytesPerGPU(), SerializeBW: wl.SerializeBW(),
				D2HBandwidth: wl.CUDAParams().D2HBandwidth,
				NoteSliceWrite: func(p *vclock.Proc) {
					h.injector.NotePhase(rr, failure.PhaseSliceWrite)
				},
			}
		}
		if h.pipeguard != nil {
			st.keeper = h.pipeguard.NewKeeper(r, placement[r],
				wl.StateBytesPerGPU(), wl.CUDAParams().D2HBandwidth)
		}
		stacks[r] = st
	}

	// Launch workers.
	for r := 0; r < world; r++ {
		r := r
		st := stacks[r]
		st.proc = h.env.Go(fmt.Sprintf("worker%d.g%d", r, h.gen), func(wp *vclock.Proc) {
			if st.ujit != nil {
				st.ujit.MainProc = wp
			}
			if err := st.worker.Setup(wp, h.gen); err != nil {
				h.noteDetected(wp.Now(), r, "setup")
				h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: err})
				failed.Trigger()
				return
			}
			// Restore from the newest usable checkpoint, if any.
			if h.res.Incarnations > 0 || h.hasCheckpoint(wp) {
				restored, rerr := h.restoreRank(wp, st.worker, r)
				if rerr != nil {
					// A checkpoint was assembled but could not be read or
					// loaded (e.g. a fault mid-restore): fail the
					// incarnation rather than silently restarting this one
					// rank at iteration 0 while its peers resume at N.
					h.noteDetected(wp.Now(), r, "restore")
					h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: rerr})
					failed.Trigger()
					return
				}
				if !restored {
					// No checkpoint: PolicyNone restarts from scratch.
					st.worker.SetIter(0)
				}
			}
			for st.worker.Iter() < cfg.Iters {
				if h.elastic != nil {
					// Mid-run expand: stop at the scheduled iteration after
					// persisting state so the full-width restart can restore
					// it. The per-iteration all-reduce keeps every rank in
					// lockstep, so all world workers stop at the same iter.
					if at, ok := h.elastic.ExpandRequested(); ok && st.worker.Iter() >= at {
						if err := h.elasticSave(wp, st.worker, r); err != nil {
							h.noteDetected(wp.Now(), r, "elastic-save")
							h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: err})
							failed.Trigger()
							return
						}
						expandCount++
						if expandCount == world {
							expandStop.Trigger()
						}
						return
					}
					// Arbiter-requested preemption yield: stop cleanly at
					// the agreed iteration with state persisted, exactly
					// like a mid-run expand stop but in the other
					// direction — the next incarnation's allocation runs
					// under reservations and shrinks.
					if h.yieldAt >= 0 && st.worker.Iter() >= h.yieldAt {
						if err := h.elasticSave(wp, st.worker, r); err != nil {
							h.noteDetected(wp.Now(), r, "yield-save")
							h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: err})
							failed.Trigger()
							return
						}
						yieldCount++
						if yieldCount == world {
							yieldStop.Trigger()
						}
						return
					}
				}
				if _, err := st.worker.RunIter(wp); err != nil {
					h.noteDetected(wp.Now(), r, "iter-error")
					h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Iter: st.worker.Iter(), Err: err})
					failed.Trigger()
					return
				}
				if st.rep != nil && st.worker.Iter() < cfg.Iters {
					// Stream the post-optimizer state to the shelter hosts,
					// overlapped with the next minibatch's compute.
					st.rep.Offer(st.worker)
				}
				if st.keeper != nil && st.worker.Iter() < cfg.Iters {
					// Retain this stage's redundancy bundle in neighbor
					// stages' host RAM, overlapped with the next minibatch.
					st.keeper.Offer(st.worker)
				}
				if st.msw != nil {
					stall, err := st.msw.Step(wp, st.worker)
					if err != nil {
						h.noteDetected(wp.Now(), r, "ms-checkpoint")
						h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: err})
						failed.Trigger()
						return
					}
					if r == h.refRank && stall > 0 {
						h.ckptStall += stall
						h.ckptCount++
					}
				}
				if st.pc != nil && st.pc.Due(wp.Now()) {
					h.injector.NotePhase(r, failure.PhaseCheckpoint)
					stall, err := st.pc.Run(wp, st.worker)
					if err != nil {
						h.noteDetected(wp.Now(), r, "checkpoint")
						h.monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: r, Err: err})
						failed.Trigger()
						return
					}
					if r == h.refRank {
						h.ckptStall += stall
						h.ckptCount++
					}
				}
			}
			h.doneRanks[r] = true
			doneCount++
			if doneCount == world {
				allDone.Trigger()
			}
		})
	}

	// Heartbeat watchdog: declares failure when progress stalls (the
	// periodic baselines have no interception layer to detect hangs).
	hbStop := h.env.NewEvent(fmt.Sprintf("hb.stop.g%d", h.gen))
	h.env.Go(fmt.Sprintf("heartbeat.g%d", h.gen), func(hp *vclock.Proc) {
		// A degraded iteration runs accum microbatches, so heartbeats
		// legitimately arrive accum× further apart.
		mbEff := wl.Minibatch * vclock.Time(maxInt(h.accum, 1))
		threshold := 3*mbEff + cfg.HangTimeout + interval
		// Ranks with no beat yet are normally in legitimate setup
		// (communicator rendezvous, checkpoint restore) and are skipped —
		// but a fault during setup can wedge or kill every rank before any
		// first beat, in which case the per-rank staleness check would
		// never fire and the incarnation would hang until the horizon.
		// Bound setup by a grace period generous enough for rendezvous
		// plus restore at the modelled bandwidths.
		np := wl.NCCLParams()
		setupGrace := threshold + wl.RestoreInit() +
			np.CommInitBase + vclock.Time(world)*np.CommInitPerRank +
			4*gpu.TransferTime(wl.StateBytesPerGPU(), wl.CkptStoreParams().ReadBW) +
			30*vclock.Second
		incStart := hp.Now()
		for {
			if hp.WaitTimeout(hbStop, 2*vclock.Second) {
				return
			}
			if allDone.Triggered() || failed.Triggered() || expandStop.Triggered() || yieldStop.Triggered() {
				return
			}
			stale := false
			for r := 0; r < world; r++ {
				if h.doneRanks[r] {
					continue
				}
				beat, started := h.lastBeat[r]
				if !started {
					if hp.Now()-incStart > setupGrace {
						stale = true
						break
					}
					continue
				}
				if hp.Now()-beat > threshold {
					stale = true
					break
				}
			}
			if stale {
				h.noteDetected(hp.Now(), -1, "heartbeat")
				h.monitor.Notify(scheduler.Event{Kind: scheduler.EvFailureDetected, Rank: -1})
				failed.Trigger()
				return
			}
		}
	})

	// Supervisor waits for completion or failure.
	waitDone := h.env.NewEvent(fmt.Sprintf("sup.wait.g%d", h.gen))
	h.env.Go(fmt.Sprintf("sup.select.g%d", h.gen), func(sp *vclock.Proc) {
		defer waitDone.Trigger()
		for !allDone.Triggered() && !failed.Triggered() && !expandStop.Triggered() && !yieldStop.Triggered() {
			ev := h.env.NewEvent("tick")
			h.env.Go("sel.done", func(q *vclock.Proc) { q.Wait(allDone); ev.Trigger() })
			h.env.Go("sel.fail", func(q *vclock.Proc) { q.Wait(failed); ev.Trigger() })
			h.env.Go("sel.expand", func(q *vclock.Proc) { q.Wait(expandStop); ev.Trigger() })
			h.env.Go("sel.yield", func(q *vclock.Proc) { q.Wait(yieldStop); ev.Trigger() })
			sp.Wait(ev)
		}
	})
	p.Wait(waitDone)

	if st := stacks[h.refRank]; st != nil && st.msw != nil {
		h.res.MultiStepCommits += st.msw.Count()
	}
	if allDone.Triggered() {
		hbStop.Trigger()
		// Stop the interception watchdogs so their poll timers do not
		// keep the simulation alive until the horizon.
		for _, st := range stacks {
			if st.layer != nil {
				st.layer.StopWatchdog()
			}
		}
		return endCompleted
	}
	if expandStop.Triggered() && !failed.Triggered() {
		// Every degraded worker stopped cleanly at the expand iteration
		// with its state persisted; restart the next incarnation at full
		// width (the expand itself happens at the incarnation boundary).
		hbStop.Trigger()
		for _, st := range stacks {
			if st.layer != nil {
				st.layer.StopWatchdog()
			}
		}
		h.gen++
		return endExpand
	}
	if yieldStop.Triggered() && !failed.Triggered() {
		// Every worker stopped cleanly at the yield iteration with its
		// state persisted; the next incarnation re-allocates under the
		// arbiter's reservations (usually taking the elastic shrink path).
		hbStop.Trigger()
		for _, st := range stacks {
			if st.layer != nil {
				st.layer.StopWatchdog()
			}
		}
		h.gen++
		h.yields++
		trace.Of(h.env).Instant(p.Now(), "elastic", trace.LaneSim, "yield",
			"world", world, "iter", h.yieldAt)
		return endYield
	}
	// Failure path: for user-level JIT, wait for the checkpoint quorum
	// before killing the job (§3.3). A catastrophic failure that killed
	// every replica of some position never forms a quorum; the timeout
	// hands recovery to the periodic fallback, if configured. With a peer
	// shelter, positions whose state survives in peer CPU memory count as
	// covered up front — a catastrophic failure that destroyed every live
	// replica of a shard needs no fresh JIT checkpoint for it, so the
	// quorum forms (often instantly) instead of burning the timeout.
	if cfg.Policy.UserLevelJIT() {
		var pre map[string]bool
		if h.shelter != nil {
			pre = h.shelter.CoveredPositions(h.topo)
		}
		h.monitor.WaitCheckpointQuorumCovered(p, h.topo, 2*vclock.Minute, pre)
	}
	if h.elastic != nil {
		// A failure mid-expand-window invalidates the scheduled stop: the
		// incarnation boundary re-evaluates capacity from scratch.
		h.elastic.CancelExpand()
	}
	hbStop.Trigger()
	for _, st := range stacks {
		if st.layer != nil {
			st.layer.StopWatchdog()
		}
		if st.ujit != nil && st.ujit.CheckpointDone && st.ujit.SaveDuration > h.res.JITCheckpointTime {
			h.res.JITCheckpointTime = st.ujit.SaveDuration
		}
		st.proc.Kill()
	}
	// Exclude nodes whose devices are unhealthy.
	for r := 0; r < world; r++ {
		if placement[r].Health() != gpu.Healthy {
			h.pool.MarkFailed(placement[r].NodeID)
		}
	}
	// Whole-host failures take their sheltered entries and retained
	// stage-redundancy bundles with them (the injector already marked
	// injection-driven ones; this sweep catches any other path that failed
	// a node).
	if h.shelter != nil || h.pipeguard != nil {
		for _, n := range h.nodes {
			if !n.Failed {
				continue
			}
			if h.shelter != nil {
				h.shelter.MarkNodeLost(n.ID)
			}
			if h.pipeguard != nil {
				h.pipeguard.MarkNodeLost(n.ID)
			}
		}
	}
	h.gen++
	// A failure supersedes any pending yield: the incarnation boundary
	// re-allocates from scratch under current reservations anyway.
	h.yieldAt = -1
	return endFailed
}

// hasCheckpoint reports whether any checkpoint exists for this policy.
func (h *harness) hasCheckpoint(p *vclock.Proc) bool {
	for _, ns := range h.policyNamespaces() {
		if len(h.disk.List(fmt.Sprintf("job/ckpt/%s/", ns))) > 0 {
			return true
		}
	}
	if h.cfg.Policy.UsesMultiStep() &&
		len(h.disk.List("job/ckpt/"+checkpoint.MultiStepNamespace+"/")) > 0 {
		return true
	}
	if h.pipeguard != nil && h.pipeguard.Any() {
		return true
	}
	return h.shelter != nil && h.shelter.Any()
}

// policyNamespaces lists the disk checkpoint namespaces the policy may
// restore from. The combined policies restore from whichever of the JIT
// and periodic checkpoints is newest (§6.3: "the most recent checkpoint
// will be used"); shelter entries are separate sources (restoreSources).
func (h *harness) policyNamespaces() []string {
	var out []string
	if h.cfg.Policy.DiskJIT() {
		out = append(out, JITPolicyName)
	}
	if kind, ok := h.cfg.Policy.PeriodicKind(); ok {
		out = append(out, kind.PolicyName())
	}
	if h.cfg.Policy.Elastic() {
		out = append(out, ElasticPolicyName)
	}
	return out
}

// elasticSave persists a degraded worker's state to disk under the
// elastic namespace so the full-width restart (or an oracle run sharing
// the store) can restore it. It runs in the worker's own process at a
// clean iteration boundary — this is a planned, user-level save, not a
// failure-time JIT flush, so trace invariant 3 does not apply to it.
func (h *harness) elasticSave(p *vclock.Proc, w *train.Worker, rank int) error {
	wl := h.cfg.WL
	sp := trace.Of(h.env).Begin(p.Now(), "ckpt", trace.Rank(rank), "elastic-save", "iter", w.Iter())
	ms, err := w.SaveModelState(p)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	if bw := wl.SerializeBW(); bw > 0 {
		p.Sleep(vclock.Time(float64(wl.StateBytesPerGPU()) / bw * float64(vclock.Second)))
	}
	dir := checkpoint.RankDir("job", ElasticPolicyName, ms.Iter, rank)
	if err := checkpoint.WriteRankRetry(p, h.disk, dir, ms, wl.StateBytesPerGPU(), checkpoint.DefaultRetry()); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	h.monitor.Notify(scheduler.Event{Kind: scheduler.EvCheckpointDone, Rank: rank, Iter: ms.Iter})
	sp.End(p.Now(), "iter", ms.Iter)
	return nil
}

// restoreSources lists every store the restore path may assemble from:
// the policy's disk namespaces first, then the surviving peer-shelter
// hosts. Cross-tier assembly is valid because every tier records the same
// invariant — ms.Iter = N means "state at the start of minibatch N".
func (h *harness) restoreSources() []checkpoint.Source {
	var srcs []checkpoint.Source
	for _, ns := range h.policyNamespaces() {
		srcs = append(srcs, checkpoint.Source{Store: h.disk, Policy: ns})
	}
	if h.shelter != nil {
		srcs = append(srcs, h.shelter.Sources()...)
	}
	return srcs
}

// restoreRank loads the newest assembled checkpoint (across the policy's
// disk namespaces and any surviving peer-shelter hosts) into a worker and
// charges the fixed job-initialization cost. restored=false with a nil
// error means there is nothing to restore from (fresh start); a non-nil
// error means a checkpoint was assembled but this rank failed to load it —
// restarting at iteration 0 would diverge from its peers, so the caller
// must fail the incarnation instead.
func (h *harness) restoreRank(p *vclock.Proc, w *train.Worker, rank int) (bool, error) {
	h.injector.NotePhase(rank, failure.PhaseRestore)
	t0 := p.Now()
	sp := trace.Of(h.env).Begin(t0, "ckpt", trace.Rank(rank), "restore")
	// Cross-width assembly: checkpoints may have been written by a wider
	// (or, for an oracle run, narrower) era than the topology restoring
	// now; position keys are width-invariant, so bound the writer scan by
	// the larger of the two worlds.
	writerWorld := maxInt(h.cfg.WL.Topo.World(), h.topo.World())
	if h.cfg.RestoreWriterWorld > 0 {
		writerWorld = h.cfg.RestoreWriterWorld
	}
	// Striped shelters add reconstructable stripes as extra candidates:
	// the assembler prefers complete replica entries at the same
	// iteration, but an entry whose only survivors are ≥k fragments is
	// still restorable — Load decodes parity on the fly.
	var extras []checkpoint.Candidate
	if h.shelter != nil {
		extras = h.shelter.RestoreCandidates()
	}
	if h.pipeguard != nil {
		// Checkpoint-free first: a surviving stage bundle beats any disk
		// generation on freshness, and loses nothing if it doesn't.
		extras = append(extras, h.pipeguard.RestoreCandidates()...)
	}
	if h.cfg.Policy.UsesMultiStep() {
		extras = append(extras, checkpoint.MultiStepCandidates(h.disk, "job", checkpoint.MultiStepParams{
			Opt:         h.cfg.WL.Optimizer(),
			Scale:       w.GradScale(),
			ReconcileBW: msReconcileBW,
			NoteReconcile: func(p *vclock.Proc) {
				h.injector.NotePhase(rank, failure.PhaseReconcile)
			},
		})...)
	}
	plan, err := checkpoint.AssembleRestore(p, "job", h.restoreSources(), extras, h.topo, writerWorld)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return false, nil
	}
	cand := plan.For[rank]
	readBefore := h.storeReadBytes()
	ms, err := cand.Load(p)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return false, fmt.Errorf("core: rank %d restore read: %w", rank, err)
	}
	readBytes := h.storeReadBytes() - readBefore
	h.res.CkptReadBytes += readBytes
	p.Sleep(h.cfg.WL.RestoreInit())
	if err := w.LoadModelState(p, ms); err != nil {
		sp.End(p.Now(), "err", err)
		return false, fmt.Errorf("core: rank %d restore load: %w", rank, err)
	}
	w.SetIter(plan.Iter)
	if rank == h.refRank && h.res.RestoreTime == 0 {
		h.res.RestoreTime = p.Now() - t0
	}
	// Desc is "<tier>:<dir>"; the trace pins just the tier so the label
	// stays stable across iteration renumbering.
	src := cand.Desc
	if i := strings.IndexByte(src, ':'); i >= 0 {
		src = src[:i]
	}
	trace.Of(h.env).Instant(p.Now(), "ckpt", trace.Rank(rank), "restore-done",
		"valid", true, "iter", plan.Iter, "src", src, "read_bytes", readBytes)
	sp.End(p.Now(), "iter", plan.Iter)
	return true, nil
}

// msReconcileBW is the modelled gradient-replay throughput during a
// multi-step reconciled restore (state bytes advanced per second).
const msReconcileBW = 40e9

// storeReadBytes sums the modelled bytes every checkpoint store involved
// in this run has served: the shared disk, tmpfs, and any peer-shelter
// host stores. Diffing it around a restore's Load yields that recovery's
// checkpoint-read traffic.
func (h *harness) storeReadBytes() int64 {
	total := h.disk.ReadBytes() + h.tmpfs.ReadBytes()
	if h.shelter != nil {
		seen := map[*checkpoint.Store]bool{h.disk: true, h.tmpfs: true}
		for _, src := range h.shelter.Sources() {
			if !seen[src.Store] {
				seen[src.Store] = true
				total += src.Store.ReadBytes()
			}
		}
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
