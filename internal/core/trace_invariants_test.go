package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// checkedRun executes cfg with a fresh recorder and asserts the trace
// invariants of trace.CheckInvariants over the resulting log.
func checkedRun(t *testing.T, cfg JobConfig) (*RunResult, *trace.Query) {
	t.Helper()
	rec := trace.New()
	cfg.Recorder = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := trace.NewQuery(rec)
	if err := trace.CheckInvariants(q); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return res, q
}

// TestTraceInvariantsChaosSoak replays the chaos-soak grid (the four
// comparison policies under store corruption plus two seeded fault
// injections per run) with the recorder attached and asserts, per run,
// the trace invariants: mutation/checkpoint exclusion, every recovery
// episode ending in a valid restore, just-in-time checkpoints beginning
// only after detection, and well-formed span nesting.
func TestTraceInvariantsChaosSoak(t *testing.T) {
	wl := testWL()
	const iters = 18

	seeds := []int64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	kinds := []failure.Kind{
		failure.GPUHard, failure.GPUSticky, failure.NetworkHang,
		failure.NodeDown, failure.StorageFault,
	}
	for _, policy := range []Policy{PolicyPCDisk, PolicyUserJIT, PolicyPeerShelter, PolicyJITWithPeer, PolicyMultiStepDisk} {
		for _, seed := range seeds {
			policy, seed := policy, seed
			t.Run(fmt.Sprintf("%v/seed%d", policy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 131))
				var injections []IterInjection
				hard := 0
				for _, at := range []int{iters / 3, 2 * iters / 3} {
					kind := kinds[rng.Intn(len(kinds))]
					if kind == failure.GPUHard || kind == failure.NodeDown {
						hard++
						if hard > 2 {
							kind = failure.GPUSticky
						}
					}
					rank := 1 + rng.Intn(wl.Topo.World()-1)
					if kind == failure.NodeDown {
						rank = 2 + rng.Intn(2)
					}
					injections = append(injections, IterInjection{
						Iter: at, Frac: 0.1 + 0.8*rng.Float64(), Rank: rank, Kind: kind,
					})
				}
				cfg := JobConfig{
					WL: wl, Policy: policy, Iters: iters, Seed: 1,
					HangTimeout: 2 * vclock.Second, SpareNodes: 4,
					IterFailures: injections,
					Chaos: &ChaosConfig{
						DiskChaos:    checkpoint.RandomChaos(rand.New(rand.NewSource(seed*17)), 0.12),
						ShelterChaos: checkpoint.RandomChaos(rand.New(rand.NewSource(seed*29)), 0.12),
					},
				}
				if _, ok := policy.PeriodicKind(); ok {
					cfg.CkptInterval = 4 * wl.Minibatch
				}
				res, q := checkedRun(t, cfg)
				if !res.Completed {
					t.Fatalf("did not complete (injections %+v)", injections)
				}
				// The failure plan is visible in the trace: every applied
				// injection left an instant.
				applied := len(q.Instants("fail", "inject")) + len(q.Instants("fail", "inject-skip"))
				if applied != len(injections) {
					t.Fatalf("trace shows %d injections, plan had %d", applied, len(injections))
				}
			})
		}
	}
}

// TestTraceInvariantsTransparentSoak runs the transparent-mode soak (the
// same seeded multi-failure draws as TestSoakRandomFailures) under the
// invariant checker: recovery episodes must each contain a valid restore
// even when three faults land in one run.
func TestTraceInvariantsTransparentSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	wl := testWL()
	const iters = 24
	kinds := []failure.Kind{
		failure.NetworkHang, failure.GPUSticky, failure.DriverCorrupt, failure.GPUHard,
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed * 977))
		var injections []IterInjection
		hardCount := 0
		iterAt := 3
		for len(injections) < 3 && iterAt < iters-4 {
			kind := kinds[rng.Intn(len(kinds))]
			if kind == failure.GPUHard {
				hardCount++
				if hardCount > 2 {
					kind = failure.GPUSticky
				}
			}
			injections = append(injections, IterInjection{
				Iter: iterAt,
				Frac: 0.1 + 0.8*rng.Float64(),
				Rank: 1 + rng.Intn(wl.Topo.World()-1),
				Kind: kind,
			})
			iterAt += 4 + rng.Intn(4)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, q := checkedRun(t, JobConfig{
				WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
				HangTimeout: 2 * vclock.Second, SpareNodes: 3,
				IterFailures: injections,
			})
			if !res.Completed {
				t.Fatalf("did not complete (injections %+v)", injections)
			}
			// Every recovery episode the harness reported appears in the
			// trace as a closed core/recovery span.
			eps := q.Spans("core", "recovery")
			if len(eps) != len(res.Reports) {
				t.Fatalf("trace has %d recovery episodes, result reported %d", len(eps), len(res.Reports))
			}
			for _, ep := range eps {
				if ep.Open {
					t.Fatalf("recovery episode left open: %+v", ep)
				}
			}
		})
	}
}

// TestTraceInvariantsMidRecovery drives the mid-recovery chaos scenarios
// (a second fault landing while a restore, a communicator re-init, or a
// transparent recovery attempt is already in flight) under the invariant
// checker. These are exactly the timelines where a naive "restore happens
// right after detection" model breaks; the per-episode invariants must
// still hold.
func TestTraceInvariantsMidRecovery(t *testing.T) {
	wl := testWL()
	const iters = 14
	cases := []struct {
		name string
		cfg  JobConfig
	}{
		{"userjit-fault-during-restore", JobConfig{
			WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 3,
			IterFailures: injectAt(wl, 6.5, 1, failure.GPUHard),
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseRestore,
					Rank:       -1,
					Occurrence: 1,
					Delay:      200 * vclock.Millisecond,
					Target:     2,
					Kind:       failure.GPUHard,
				}},
			},
		}},
		{"jitpeer-fault-during-comm-reinit", JobConfig{
			WL: wl, Policy: PolicyJITWithPeer, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 3,
			IterFailures: injectAt(wl, 6.5, 1, failure.GPUHard),
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseCommInit,
					Rank:       -1,
					Occurrence: 1,
					Target:     -1,
					Kind:       failure.NetworkHang,
				}},
			},
		}},
		{"transparent-reentrant-recovery", JobConfig{
			WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
			HangTimeout:            2 * vclock.Second,
			RecoveryAttemptTimeout: 10 * vclock.Second,
			IterFailures:           injectAt(wl, 5.3, 1, failure.NetworkHang),
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseCommInit,
					Rank:       -1,
					Occurrence: 1,
					Target:     -1,
					Kind:       failure.NetworkHang,
				}},
			},
		}},
		{"multistep-fault-during-slice-write", JobConfig{
			WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 4,
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseSliceWrite,
					Rank:       -1,
					Occurrence: 6,
					Target:     -1,
					Kind:       failure.GPUHard,
				}},
			},
		}},
		{"multistep-fault-during-reconcile", JobConfig{
			WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 3,
			CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 2,
			IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseReconcile,
					Rank:       -1,
					Occurrence: 1,
					Target:     2,
					Kind:       failure.GPUHard,
				}},
			},
		}},
		{"pipefree-fault-during-stage-rebuild", JobConfig{
			WL: pipeWL(), Policy: PolicyPipeFree, Iters: iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 3,
			CkptInterval: 3 * pipeWL().Minibatch, MultiStepSlices: 2,
			IterFailures: injectAt(pipeWL(), 5.5, 1, failure.NodeDown),
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseStageRebuild,
					Rank:       -1,
					Occurrence: 1,
					Target:     3,
					Kind:       failure.GPUHard,
				}},
			},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, _ := checkedRun(t, tc.cfg)
			if !res.Completed {
				t.Fatal("did not complete")
			}
		})
	}
}
