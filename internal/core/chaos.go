package core

import (
	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
)

// ChaosConfig is the harness's chaos layer: storage-tier write faults and
// recovery-phase-aware fault injections. It exists so the soak suite (and
// jitsim -chaos) can break checkpoint writes and recovery paths on purpose
// and assert the hardened consumers still converge bit-identically.
type ChaosConfig struct {
	// DiskChaos decides the outcome of each shared-store write (torn
	// write, silent bit-flip, transient error, disk-full). Nil means all
	// writes succeed. StorageFault injections compose with it: they
	// preempt DiskChaos for the duration of their fault window.
	DiskChaos func(path string) checkpoint.WriteOutcome
	// ShelterChaos is DiskChaos for the peer-shelter tier's per-node
	// stores (UsesPeerShelter policies only).
	ShelterChaos func(path string) checkpoint.WriteOutcome
	// PhaseInjections arm faults that fire while ranks are inside a
	// recovery phase — checkpointing, restoring, or re-initializing
	// communicators — rather than at an absolute time.
	PhaseInjections []failure.PhaseInjection
}
