package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/intercept"
	"jitckpt/internal/metrics"
	"jitckpt/internal/proxy"
	"jitckpt/internal/replay"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// TransparentRank is one rank's transparent-recovery stack: the
// application (Worker) programs against Layer, which wraps a proxy Client
// talking to the Server that owns the device.
type TransparentRank struct {
	Rank   int
	Layer  *intercept.Layer
	Client *proxy.Client
	Server *proxy.Server
	Worker *train.Worker
}

// CoordinatorConfig configures the job-level recovery coordinator.
type CoordinatorConfig struct {
	Job  string
	Topo train.Topology
	// Teardown is the per-rank driver-cleanup cost (Table 7's "delete
	// communicators and GPU handles").
	Teardown vclock.Time
	// Minibatch is the workload's minibatch time; the coordinator lets
	// healthy GPUs drain in-flight work for ~1.5 minibatches before
	// classifying the episode.
	Minibatch vclock.Time
	// StateBytes is the modelled per-rank parameter+optimizer size.
	StateBytes int64
	// SerializeBW is the CPU serialization throughput for checkpoint
	// writes on the hard-error path.
	SerializeBW float64
	// Store is the shared checkpoint store (hard-error path).
	Store *checkpoint.Store
	// Monitor receives checkpoint/failure notifications.
	Monitor *scheduler.Monitor
	// Pool, CRIU, Kernels, CUDAParams, ProxyParams serve the hard-error
	// migration path.
	Pool        Capacity
	CRIU        scheduler.CRIU
	Kernels     cuda.Registry
	CUDAParams  cuda.Params
	ProxyParams proxy.Params
	// InitialGen is the communicator generation the job started with.
	InitialGen int
	// OnReport observes completed recoveries.
	OnReport func(*RecoveryReport)
	// AttemptTimeout bounds one recovery attempt: if any rank's recovery
	// has not finished by then (a second fault wedged it mid-recovery),
	// the coordinator kills the stragglers and restarts recovery under a
	// fresh communicator generation. Zero derives a default from the
	// modelled state size.
	AttemptTimeout vclock.Time
	// MaxAttempts bounds recovery restarts per episode (default 3).
	MaxAttempts int
}

// rankFault is a fault notification from one rank's interception layer.
type rankFault struct {
	rank int
	f    intercept.Fault
}

// Coordinator is the transparent JIT recovery controller for one job. In
// the paper this logic lives in the device-proxy interception layer plus
// the cluster control plane; here it is one object whose Hook feeds it
// fault notifications and whose background process drives recoveries.
type Coordinator struct {
	env    *vclock.Env
	cfg    CoordinatorConfig
	ranks  []*TransparentRank
	faultQ *vclock.Queue[rankFault]
	gen    int

	reports []*RecoveryReport
	started bool
}

// NewCoordinator creates a coordinator for the given ranks.
func NewCoordinator(env *vclock.Env, cfg CoordinatorConfig, ranks []*TransparentRank) *Coordinator {
	return &Coordinator{
		env:    env,
		cfg:    cfg,
		ranks:  ranks,
		faultQ: vclock.NewQueue[rankFault](env, cfg.Job+".faults"),
		gen:    cfg.InitialGen,
	}
}

// Hook returns the OnFault callback for a rank's interception layer. It
// only enqueues: recovery runs in the coordinator's process.
func (c *Coordinator) Hook(rank int) func(p *vclock.Proc, f intercept.Fault) {
	return func(_ *vclock.Proc, f intercept.Fault) {
		trace.Of(c.env).Instant(c.env.Now(), "fail", trace.Rank(rank), "detected",
			"by", "intercept", "iter", f.Iter)
		c.faultQ.Push(rankFault{rank: rank, f: f})
	}
}

// Generation returns the current communicator generation.
func (c *Coordinator) Generation() int { return c.gen }

// Reports returns completed recovery reports.
func (c *Coordinator) Reports() []*RecoveryReport { return c.reports }

// Start launches the coordinator process.
func (c *Coordinator) Start() {
	if c.started {
		return
	}
	c.started = true
	c.env.Go(c.cfg.Job+".coordinator", func(p *vclock.Proc) {
		for {
			first := c.faultQ.Pop(p)
			report := c.recover(p, first)
			c.reports = append(c.reports, report)
			if c.cfg.OnReport != nil {
				c.cfg.OnReport(report)
			}
			// Faults raised before or during this recovery are stale.
			c.faultQ.Drain()
		}
	})
}

// recover drives one recovery episode end to end. The episode is
// re-entrant: a fault arriving mid-recovery (a second GPU failing while
// ranks replay, a network hang during communicator re-init) makes the
// attempt time out or error, after which the coordinator kills any
// straggling per-rank recovery processes, re-gates every rank, drains the
// stale fault queue, and restarts recovery from classification under a
// fresh communicator generation — instead of wedging on an unbounded wait.
func (c *Coordinator) recover(p *vclock.Proc, first rankFault) *RecoveryReport {
	detected := p.Now()
	rsp := trace.Of(c.env).Begin(detected, "core", trace.LaneSim, "recovery",
		"rank", first.rank, "fault", first.f.Kind)
	maxAttempts := c.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	var report *RecoveryReport
	// lost tracks ranks whose device state became suspect during a failed
	// attempt (buffers re-allocated, restore or replay cut short): on the
	// next attempt they must restore from a replica or checkpoint even if
	// their device now looks healthy — otherwise a retry would resume
	// training from fabricated state.
	lost := make(map[int]bool)
	// The advanced/baseIter classification describes the pre-episode state
	// of the parked hosts, which a failed attempt cannot change — but the
	// attempt's own teardown destroys the device-side evidence (drained
	// devices, aborted ops), so it is computed once and carried across
	// attempts.
	var cls *episodeClass
	var ok bool
	for attempt := 1; ; attempt++ {
		report, ok, cls = c.attemptRecovery(p, first, attempt, lost, cls)
		report.Attempts = attempt
		if ok || attempt >= maxAttempts || report.Terminal() {
			if !ok {
				c.env.Tracef("%s: recovery gave up after %d attempts (%s)", c.cfg.Job, attempt, report.Kind)
			}
			break
		}
		c.env.Tracef("%s: recovery attempt %d failed, restarting recovery", c.cfg.Job, attempt)
		// Faults raised by the failed attempt itself are stale: the next
		// attempt re-classifies every rank from current device health.
		c.faultQ.Drain()
	}
	report.DetectedAt = detected
	report.CompletedAt = p.Now()
	c.env.Tracef("%s: recovery complete in %v", c.cfg.Job, report.Total())
	rsp.End(p.Now(), "ok", ok, "attempts", report.Attempts, "kind", report.Kind)
	return report
}

// attemptTimeout is the per-attempt recovery deadline.
func (c *Coordinator) attemptTimeout() vclock.Time {
	if c.cfg.AttemptTimeout > 0 {
		return c.cfg.AttemptTimeout
	}
	// Generous default: base coordination slack plus several end-to-end
	// state copies at a conservative 1 GB/s (covers PCIe copies, store
	// writes/reads and serialization on the hard path without ever firing
	// during a healthy recovery).
	t := 2 * vclock.Minute
	if c.cfg.StateBytes > 0 {
		t += 8 * gpu.TransferTime(c.cfg.StateBytes, 1e9)
	}
	return t
}

// episodeClass is the once-per-episode classification of the failed
// minibatch: whether the optimizer step completed (§4.2.2 roll-forward)
// and which iteration the surviving state belongs to.
type episodeClass struct {
	advanced bool
	baseIter int
}

// attemptRecovery runs one recovery attempt: gate, quiesce, classify,
// dispatch. It reports whether every rank recovered, and returns the
// episode classification for reuse by later attempts.
func (c *Coordinator) attemptRecovery(p *vclock.Proc, first rankFault, attempt int, lost map[int]bool, cls *episodeClass) (*RecoveryReport, bool, *episodeClass) {
	c.env.Tracef("%s: recovery attempt %d begins (rank %d, fault %v)", c.cfg.Job, attempt, first.rank, first.f.Kind)

	// Let concurrently-detected faults land, then gate every rank:
	// in-flight proxy calls abort, application threads park at the
	// interception layer on their next call.
	p.Sleep(50 * vclock.Millisecond)
	faults := map[int]intercept.Fault{first.rank: first.f}
	for {
		rf, ok := c.faultQ.TryPop()
		if !ok {
			break
		}
		if _, seen := faults[rf.rank]; !seen {
			faults[rf.rank] = rf.f
		}
	}
	for _, r := range c.ranks {
		r.Layer.BeginRecovery()
		r.Client.AbortPending()
	}
	p.Yield() // let released threads park
	_ = faults

	// Quiesce: healthy GPUs keep executing already-enqueued work while
	// the hosts are parked. Give them ~1.5 minibatches to either drain
	// completely or wedge at the hung collective.
	if c.cfg.Minibatch > 0 {
		p.Sleep(c.cfg.Minibatch * 3 / 2)
	}

	// Classify the episode. A healthy device with zero pending
	// operations has executed everything the host issued — including
	// the optimizer step, since the pre-optimizer world barrier (the
	// global grad-norm all-reduce) means either no rank's optimizer ran
	// or every healthy rank's did (§4.2.2). baseIter is the failed
	// minibatch i; when advanced, surviving state is start-of-(i+1).
	// Two advance signals: (a) a fully-drained healthy device — its host
	// parks only at end-of-iteration sync points, so zero pending ops
	// means the whole minibatch, optimizer included, executed; (b) host
	// iteration skew — a host past baseIter proves the world barrier of
	// baseIter completed.
	if cls == nil {
		advanced := false
		baseIter := -1
		maxIter := -1
		for _, r := range c.ranks {
			it := r.Layer.Iter()
			if baseIter < 0 || it < baseIter {
				baseIter = it
			}
			if it > maxIter {
				maxIter = it
			}
		}
		for _, r := range c.ranks {
			d := r.Server.Device()
			if d.Health() == gpu.Healthy && d.PendingOps() == 0 {
				advanced = true
			}
		}
		if maxIter > baseIter {
			advanced = true
		}
		cls = &episodeClass{advanced: advanced, baseIter: baseIter}
		c.env.Tracef("%s: episode classified advanced=%v baseIter=%d", c.cfg.Job, advanced, baseIter)
	}

	var hard []int
	for _, r := range c.ranks {
		if r.Server.Device().Health() == gpu.Hard {
			hard = append(hard, r.Rank)
		}
	}
	if len(hard) > 0 {
		rep, ok := c.recoverHard(p, hard, cls.advanced, cls.baseIter, lost)
		return rep, ok, cls
	}
	rep, ok := c.recoverTransient(p, cls.advanced, cls.baseIter, lost)
	return rep, ok, cls
}

// strategyOf classifies a rank's transient recovery strategy per §4.2:
// 1 = GPU fine, retain buffers; 2 = driver corruption suspected, copy
// state to host around a proxy restart; 3 = GPU state inaccessible, reset
// and copy from a replica.
func strategyOf(r *TransparentRank) int {
	switch r.Server.Device().Health() {
	case gpu.Sticky:
		return 3
	case gpu.DriverCorrupt:
		return 2
	default:
		return 1
	}
}

// rankRecovery is the per-rank recovery state shared across phases.
type rankRecovery struct {
	r     *TransparentRank
	strat int
	// skipReplay: the rank's device state is already at the target
	// minibatch boundary; do not re-execute the minibatch log.
	skipReplay bool
	// ignoreMut: swallow the host's remaining state-mutating calls for
	// the current minibatch (§4.2.2 roll-forward).
	ignoreMut bool
	tr        *replay.Translator
	saved     map[string]tensor.Vector
	timer     *metrics.PhaseTimer
	started   vclock.Time
	done      *vclock.Event
	proc      *vclock.Proc
	// mutated marks the point of no return within an attempt: the rank's
	// device state has been re-allocated, partially restored, or is being
	// replayed. If the attempt dies after this point the state is suspect
	// and the next attempt must restore it from elsewhere.
	mutated bool
	err     error
}

// awaitRecs waits for every per-rank recovery to finish, bounded by the
// attempt deadline. A recovery that misses the deadline (wedged by a fault
// injected mid-recovery) is killed and marked errored so the episode can
// restart. Ranks that failed after mutating their device state are added
// to lost; ranks that fully recovered are removed from it. It reports
// whether every rank recovered cleanly.
func (c *Coordinator) awaitRecs(p *vclock.Proc, recs []*rankRecovery, deadline vclock.Time, lost map[int]bool) bool {
	ok := true
	for _, rec := range recs {
		remaining := deadline - p.Now()
		if remaining <= 0 || !p.WaitTimeout(rec.done, remaining) {
			if rec.proc != nil {
				rec.proc.Kill()
			}
			if rec.err == nil {
				rec.err = fmt.Errorf("core: rank %d recovery timed out mid-attempt", rec.r.Rank)
			}
			c.env.Tracef("%s: rank %d recovery killed: %v", c.cfg.Job, rec.r.Rank, rec.err)
		}
		if rec.err != nil {
			ok = false
			if rec.mutated {
				lost[rec.r.Rank] = true
			}
		} else {
			delete(lost, rec.r.Rank)
		}
	}
	return ok
}

// recoverTransient implements §4.2 for all ranks concurrently. The
// communicator re-initialization rendezvous acts as the natural barrier
// between handle reconstruction and cross-rank state copies.
func (c *Coordinator) recoverTransient(p *vclock.Proc, advanced bool, baseIter int, lost map[int]bool) (*RecoveryReport, bool) {
	c.gen++
	newGen := c.gen
	deadline := p.Now() + c.attemptTimeout()
	recs := make([]*rankRecovery, len(c.ranks))
	for i, r := range c.ranks {
		strat := strategyOf(r)
		if lost[r.Rank] && strat == 1 {
			// A prior attempt corrupted this rank's state even though its
			// device is healthy: reset and copy from a replica.
			strat = 3
		}
		rec := &rankRecovery{
			r:     r,
			strat: strat,
			done:  c.env.NewEvent(fmt.Sprintf("recover.r%d", r.Rank)),
		}
		if rec.strat == 1 {
			// Healthy rank: skip replay when its GPU already holds the
			// target boundary state (host still inside minibatch i);
			// a host that advanced into i+1 replays its partial log.
			rec.skipReplay = advanced && r.Layer.Iter() == baseIter
		} else {
			rec.skipReplay = advanced
			rec.ignoreMut = advanced
		}
		recs[i] = rec
	}
	for _, rec := range recs {
		rec := rec
		rec.proc = c.env.Go(fmt.Sprintf("%s.recover.r%d", c.cfg.Job, rec.r.Rank), func(pr *vclock.Proc) {
			defer rec.done.Trigger()
			rec.started = pr.Now()
			rec.timer = metrics.NewPhaseTimerLane(c.env, trace.Rank(rec.r.Rank))
			if err := c.recoverRankTransient(pr, rec, recs, newGen); err != nil {
				rec.err = err
				c.env.Tracef("%s: rank %d recovery failed: %v", c.cfg.Job, rec.r.Rank, err)
			}
		})
	}
	ok := c.awaitRecs(p, recs, deadline, lost)
	return c.buildReport(recs, "transient", advanced), ok
}

func (c *Coordinator) recoverRankTransient(pr *vclock.Proc, rec *rankRecovery, all []*rankRecovery, newGen int) error {
	r := rec.r
	layer := r.Layer
	client := r.Client

	// Strategy 2 first reads GPU state to the host through the proxy
	// server's context, which still serves reads while the driver is
	// corrupt. All buffers are copied — the device memory is complete
	// and intact, only the driver software state is suspect.
	if rec.strat == 2 {
		saved, err := c.readTensors(pr, rec.r, nil, true)
		if err != nil {
			return fmt.Errorf("core: rank %d copy-to-host: %w", r.Rank, err)
		}
		rec.saved = saved
		rec.timer.Mark("copy-to-host")
	}

	// Teardown: delete communicators and GPU handles (Table 7 step 1).
	if rec.strat == 1 {
		// Abort in-flight server-side operations wedged in hung device
		// calls, then dismantle handles through the live driver.
		r.Server.ResetThreads()
		c.teardownViaAPI(pr, layer, client)
	} else {
		// Restarting the device proxy server clears corrupted driver and
		// network state (§4.2); device buffers are lost with the context.
		rec.mutated = true
		r.Server.Stop()
		client.AbortPending()
		if err := r.Server.Restart(); err != nil {
			return fmt.Errorf("core: rank %d proxy restart: %w", r.Rank, err)
		}
	}
	pr.Sleep(c.cfg.Teardown)
	rec.timer.Mark("teardown")

	// Rebuild: new default stream, buffers (if lost), GPU handles, then
	// communicators under the fresh generation.
	tr := layer.SeedTranslator()
	rec.tr = tr
	newDefault, err := client.StreamCreate(pr)
	if err != nil {
		return fmt.Errorf("core: rank %d new default stream: %w", r.Rank, err)
	}
	tr.Streams[cuda.DefaultStream] = newDefault

	mallocs, handles, comms := splitCreationLog(layer.Log().Creation)
	if rec.strat != 1 {
		if err := replay.Apply(pr, client, mallocs, tr, replay.Options{}); err != nil {
			return fmt.Errorf("core: rank %d buffer realloc: %w", r.Rank, err)
		}
	}
	rec.timer.Mark("reset-buffers")
	if err := replay.Apply(pr, client, handles, tr, replay.Options{}); err != nil {
		return fmt.Errorf("core: rank %d handle recreate: %w", r.Rank, err)
	}
	rec.timer.Mark("recreate-handles")
	genFor := func(string, int) int { return newGen }
	if err := replay.Apply(pr, client, comms, tr, replay.Options{GenFor: genFor}); err != nil {
		return fmt.Errorf("core: rank %d comm re-init: %w", r.Rank, err)
	}
	rec.timer.Mark("comm-init")

	// Restore parameter/optimizer contents. The comm rendezvous above
	// guarantees every rank has finished re-allocating buffers, so
	// replica reads are safe now.
	switch {
	case rec.strat == 3:
		if err := c.copyFromReplica(pr, rec, all); err != nil {
			return err
		}
		rec.timer.Mark("replica-copy")
	case rec.strat == 2:
		if err := writeTensors(pr, layer, client, tr, rec.saved, true); err != nil {
			return fmt.Errorf("core: rank %d restore-from-host: %w", r.Rank, err)
		}
		rec.timer.Mark("restore-from-host")
	}

	// Replay the minibatch's device APIs (§4.2.1), unless the rank's
	// state is already at the target boundary. A rolled-forward failed
	// rank additionally swallows the rest of its optimizer step (§4.2.2).
	if rec.ignoreMut {
		layer.IgnoreMutationsUntilNextMinibatch()
	}
	if !rec.skipReplay {
		rec.mutated = true
		c.env.Tracef("rank %d: replaying %d minibatch calls (strat %d)", r.Rank, len(layer.Log().Minibatch), rec.strat)
		if err := replay.Apply(pr, client, layer.Log().Minibatch, tr, replay.Options{GenFor: genFor}); err != nil {
			return fmt.Errorf("core: rank %d minibatch replay: %w", r.Rank, err)
		}
	}
	rec.timer.Mark("replay")

	src := [4]string{1: "device", 2: "host", 3: "replica"}[rec.strat]
	trace.Of(c.env).Instant(pr.Now(), "ckpt", trace.Rank(r.Rank), "restore-done",
		"valid", true, "iter", layer.Iter(), "src", src)
	layer.EndRecovery(tr)
	return nil
}

// teardownViaAPI destroys communicators, streams and events through the
// live driver — strategy 1 keeps the proxy (and device memory) intact.
func (c *Coordinator) teardownViaAPI(pr *vclock.Proc, layer *intercept.Layer, client *proxy.Client) {
	// Destroy in reverse dependency order; errors are non-fatal (objects
	// may be wedged, which is exactly why we are here).
	for _, call := range layer.Log().Creation {
		switch call.Kind {
		case replay.CallCommInit:
			if phys, ok := layerCommPhys(layer, call.RComm); ok {
				client.CommDestroy(pr, phys)
			}
		}
	}
	for _, call := range layer.Log().Creation {
		switch call.Kind {
		case replay.CallStreamCreate:
			if phys, ok := layer.PhysStream(call.RStream); ok {
				client.StreamDestroy(pr, phys)
			}
		case replay.CallEventCreate:
			if phys, ok := layerEventPhys(layer, call.REvent); ok {
				client.EventDestroy(pr, phys)
			}
		}
	}
	// The wedged physical default stream is replaced rather than reused.
	if phys, ok := layer.PhysStream(cuda.DefaultStream); ok && phys == cuda.DefaultStream {
		client.StreamDestroy(pr, cuda.DefaultStream)
	}
}

// copyFromReplica restores a rank's parameter and optimizer buffers from a
// healthy data-parallel replica's device memory (§4.2's replica copy).
func (c *Coordinator) copyFromReplica(pr *vclock.Proc, rec *rankRecovery, all []*rankRecovery) error {
	rep := c.pickReplica(rec, all)
	if rep == nil {
		return fmt.Errorf("core: rank %d has no healthy replica to recover from", rec.r.Rank)
	}
	// Read from the replica's device (its buffers were retained), then
	// write into this rank's re-allocated buffers.
	data, err := c.readModelTensors(pr, rep.r, rep.tr)
	if err != nil {
		return fmt.Errorf("core: rank %d read replica %d: %w", rec.r.Rank, rep.r.Rank, err)
	}
	if err := writeModelTensors(pr, rec.r.Layer, rec.r.Client, rec.tr, data); err != nil {
		return fmt.Errorf("core: rank %d write replica state: %w", rec.r.Rank, err)
	}
	return nil
}

// pickReplica chooses a healthy, buffer-retaining replica of rec.
func (c *Coordinator) pickReplica(rec *rankRecovery, all []*rankRecovery) *rankRecovery {
	for _, repRank := range c.cfg.Topo.ReplicaRanks(rec.r.Rank) {
		for _, cand := range all {
			if cand.r.Rank == repRank && cand.strat == 1 {
				return cand
			}
		}
	}
	return nil
}

// rankWorkTime returns a rank's recovery work time: the wall span of its
// recovery minus time spent waiting for other ranks at the communicator
// rendezvous (the paper's Tables 5–6 exclude "the wait time for ranks to
// detect errors in other ranks"). The wait is replaced by the analytic
// bootstrap cost every rank pays after the rendezvous releases.
func (c *Coordinator) rankWorkTime(rec *rankRecovery) vclock.Time {
	if rec.timer == nil {
		// The recovery proc was killed before it started (failed attempt).
		return 0
	}
	total := rec.timer.Sum()
	commPhase := rec.timer.Get("comm-init")
	if commPhase == 0 {
		return total
	}
	params := rec.r.Server.Driver().Engine().Params()
	var bootstrap vclock.Time
	for _, call := range rec.r.Layer.Log().Creation {
		if call.Kind == replay.CallCommInit {
			bootstrap += params.CommInitBase + vclock.Time(call.NRanks)*params.CommInitPerRank
		}
	}
	if commPhase > bootstrap {
		total -= commPhase - bootstrap
	}
	return total
}

// buildReport assembles the episode report from per-rank recoveries.
func (c *Coordinator) buildReport(recs []*rankRecovery, kind string, advanced bool) *RecoveryReport {
	if advanced && kind == "transient" {
		kind = "optimizer-roll-forward"
	}
	rep := &RecoveryReport{Kind: kind, PerRank: make(map[int]vclock.Time)}
	var healthySum, failedSum vclock.Time
	var healthyN, failedN int
	var exemplar *rankRecovery
	for _, rec := range recs {
		dur := c.rankWorkTime(rec)
		rep.PerRank[rec.r.Rank] = dur
		if rec.strat == 1 {
			healthySum += dur
			healthyN++
			if exemplar == nil {
				exemplar = rec
			}
		} else {
			failedSum += dur
			failedN++
		}
	}
	if healthyN > 0 {
		rep.HealthyAvg = healthySum / vclock.Time(healthyN)
	}
	if failedN > 0 {
		rep.FailedAvg = failedSum / vclock.Time(failedN)
	}
	if exemplar == nil {
		exemplar = recs[0]
	}
	if exemplar.timer != nil {
		for _, ph := range exemplar.timer.Phases() {
			rep.Phases = append(rep.Phases, PhaseDur{Name: ph.Name, Dur: ph.Dur})
		}
	}
	return rep
}

// splitCreationLog partitions creation calls into buffer allocations, GPU
// handle creations, and communicator inits, preserving relative order.
func splitCreationLog(creation []replay.Call) (mallocs, handles, comms []replay.Call) {
	for _, call := range creation {
		switch call.Kind {
		case replay.CallMalloc:
			mallocs = append(mallocs, call)
		case replay.CallCommInit:
			comms = append(comms, call)
		default:
			handles = append(handles, call)
		}
	}
	return
}

// readModelTensors reads every parameter/optimizer buffer of a rank to
// the host directly through the proxy server's device context (no streams
// involved, so it works while the driver is corrupt or streams are
// wedged), charging PCIe transfer time per buffer.
func (c *Coordinator) readModelTensors(pr *vclock.Proc, rec *TransparentRank, tr *replay.Translator) (map[string]tensor.Vector, error) {
	return c.readTensors(pr, rec, tr, false)
}

// readTensors is readModelTensors, optionally including every buffer (the
// strategy-2 full-device copy).
func (c *Coordinator) readTensors(pr *vclock.Proc, rec *TransparentRank, tr *replay.Translator, all bool) (map[string]tensor.Vector, error) {
	layer := rec.Layer
	out := make(map[string]tensor.Vector)
	for _, info := range layer.VirtualBufs() {
		if !all && !train.IsModelState(info.Tag) {
			continue
		}
		var phys cuda.Buf
		if tr != nil {
			phys = tr.Buf(info.Handle)
		} else {
			var ok bool
			phys, ok = layer.PhysBuf(info.Handle)
			if !ok {
				return nil, fmt.Errorf("core: no physical buffer for %v", info.Handle)
			}
		}
		data, err := rec.Server.Driver().BufData(phys)
		if err != nil {
			return nil, fmt.Errorf("core: read %s: %w", info.Tag, err)
		}
		pr.Sleep(gpu.TransferTime(info.Bytes, c.cfg.CUDAParams.D2HBandwidth))
		out[train.TensorName(info.Tag, info.Seq)] = data
	}
	return out, nil
}

// writeModelTensors writes host tensors back into a rank's re-created
// buffers, resolving virtual handles through tr.
func writeModelTensors(pr *vclock.Proc, layer *intercept.Layer, api cuda.API, tr *replay.Translator, data map[string]tensor.Vector) error {
	return writeTensors(pr, layer, api, tr, data, false)
}

// writeTensors is writeModelTensors, optionally covering every buffer.
func writeTensors(pr *vclock.Proc, layer *intercept.Layer, api cuda.API, tr *replay.Translator, data map[string]tensor.Vector, all bool) error {
	s := tr.Stream(cuda.DefaultStream)
	for _, info := range layer.VirtualBufs() {
		if !all && !train.IsModelState(info.Tag) {
			continue
		}
		name := train.TensorName(info.Tag, info.Seq)
		d, ok := data[name]
		if !ok {
			return fmt.Errorf("core: replica state missing tensor %s", name)
		}
		if err := api.MemcpyH2D(pr, tr.Buf(info.Handle), d, s); err != nil {
			return fmt.Errorf("core: write %s: %w", name, err)
		}
	}
	return api.StreamSynchronize(pr, s)
}

// layerCommPhys and layerEventPhys resolve virtual comm/event handles.
func layerCommPhys(layer *intercept.Layer, virt cuda.Comm) (cuda.Comm, bool) {
	tr := layer.SeedTranslator()
	phys, ok := tr.Comms[virt]
	return phys, ok
}

func layerEventPhys(layer *intercept.Layer, virt cuda.Event) (cuda.Event, bool) {
	tr := layer.SeedTranslator()
	phys, ok := tr.Events[virt]
	return phys, ok
}

// criuPayload is what the CRIU snapshot captures per worker: the worker's
// CPU state plus its replay log — everything needed to resume on a new
// host.
type criuPayload struct {
	Snapshot train.Snapshot
	Log      []byte
}

func encodeCRIUPayload(w *train.Worker, layer *intercept.Layer) ([]byte, error) {
	logBytes, err := layer.Log().Bytes()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(criuPayload{Snapshot: w.Snapshot(), Log: logBytes}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCRIUPayload(raw []byte) (*criuPayload, error) {
	var pl criuPayload
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&pl); err != nil {
		return nil, err
	}
	return &pl, nil
}

// recoverHard implements §4.3: healthy ranks JIT-checkpoint, every worker
// is CRIU-checkpointed, the job migrates to replacement nodes, GPU state
// is rebuilt from the replay log, and parameter/optimizer buffers are
// restored from the checkpoint files — the failed rank reading a
// replica's file through the stable tensor naming.
func (c *Coordinator) recoverHard(p *vclock.Proc, hard []int, advanced bool, baseIter int, lost map[int]bool) (*RecoveryReport, bool) {
	c.gen++
	newGen := c.gen
	deadline := p.Now() + c.attemptTimeout()
	hardSet := make(map[int]bool, len(hard))
	for _, r := range hard {
		hardSet[r] = true
	}
	// stateIter labels the checkpoint files: the iteration whose start
	// the surviving GPU state corresponds to.
	stateIter := baseIter
	if advanced {
		stateIter = baseIter + 1
	}

	recs := make([]*rankRecovery, len(c.ranks))
	for i, r := range c.ranks {
		rec := &rankRecovery{
			r: r, strat: 1,
			done: c.env.NewEvent(fmt.Sprintf("hard.r%d", r.Rank)),
		}
		if hardSet[r.Rank] || r.Server.Device().Health() != gpu.Healthy || lost[r.Rank] {
			rec.strat = 4 // lost or unusable device, or state corrupted by a failed attempt
			rec.skipReplay = advanced
			rec.ignoreMut = advanced
		} else {
			rec.skipReplay = advanced && r.Layer.Iter() == baseIter
		}
		recs[i] = rec
	}

	// Eager no-viable-placement check, before any Phase A+B expense: if
	// the job's surviving nodes plus free spares cannot host it, no amount
	// of JIT checkpointing, CRIU snapshotting, or quorum waiting changes
	// the outcome — the episode is terminal now. (Without this, the
	// coordinator burned its bounded recovery attempts re-running the full
	// hard path against an allocation that can never succeed.) A node is
	// reusable only if none of its ranks is strategy-4: Phase C marks any
	// node hosting a lost/unusable rank permanently failed.
	jobNodes := make(map[int]bool)
	badNodes := make(map[int]bool)
	for _, rec := range recs {
		nid := rec.r.Server.Device().NodeID
		jobNodes[nid] = true
		if rec.strat == 4 {
			badNodes[nid] = true
		}
	}
	nNodes := nodeCount(c.ranks)
	if avail := c.cfg.Pool.FreeHealthy() + len(jobNodes) - len(badNodes); avail < nNodes {
		c.env.Tracef("%s: hard recovery: no viable placement (%d nodes available, need %d)",
			c.cfg.Job, avail, nNodes)
		rep := c.buildReport(recs, "hard", advanced)
		rep.Kind = KindNoViablePlacement
		return rep, false
	}

	// Phase A+B per rank: JIT checkpoint (healthy only) + CRIU snapshot.
	images := make([]scheduler.Image, len(recs))
	for i, rec := range recs {
		i, rec := i, rec
		rec.proc = c.env.Go(fmt.Sprintf("%s.hardckpt.r%d", c.cfg.Job, rec.r.Rank), func(pr *vclock.Proc) {
			defer rec.done.Trigger()
			rec.started = pr.Now()
			rec.timer = metrics.NewPhaseTimerLane(c.env, trace.Rank(rec.r.Rank))
			if rec.strat != 4 {
				jsp := trace.Of(c.env).Begin(pr.Now(), "ckpt", trace.Rank(rec.r.Rank), "jit-save",
					"iter", stateIter)
				ms := &train.ModelState{Iter: stateIter, Rank: rec.r.Rank}
				tensors, err := c.readModelTensors(pr, rec.r, nil)
				if err != nil {
					rec.err = err
					jsp.End(pr.Now(), "err", err)
					return
				}
				ms.Tensors = tensors
				if c.cfg.SerializeBW > 0 {
					pr.Sleep(vclock.Time(float64(c.cfg.StateBytes) / c.cfg.SerializeBW * float64(vclock.Second)))
				}
				dir := checkpoint.RankDir(c.cfg.Job, JITPolicyName, ms.Iter, rec.r.Rank)
				if err := checkpoint.WriteRankRetry(pr, c.cfg.Store, dir, ms, c.cfg.StateBytes, checkpoint.DefaultRetry()); err != nil {
					rec.err = err
					jsp.End(pr.Now(), "err", err)
					return
				}
				jsp.End(pr.Now())
				c.cfg.Monitor.Notify(scheduler.Event{Kind: scheduler.EvCheckpointDone, Rank: rec.r.Rank, Iter: ms.Iter})
			}
			rec.timer.Mark("jit-checkpoint")
			payload, err := encodeCRIUPayload(rec.r.Worker, rec.r.Layer)
			if err != nil {
				rec.err = err
				return
			}
			images[i] = c.cfg.CRIU.Take(pr, rec.r.Rank, payload)
			rec.timer.Mark("criu-snapshot")
		})
	}
	if !c.awaitRecs(p, recs, deadline, lost) {
		// A checkpoint/snapshot wedged or errored (e.g. a device dying
		// mid-read): restart the episode before any node churn happens.
		return c.buildReport(recs, "hard", advanced), false
	}
	for _, rec := range recs {
		rec.done = c.env.NewEvent(fmt.Sprintf("hard2.r%d", rec.r.Rank))
		rec.proc = nil
	}

	// Quorum: at least one replica per position checkpointed (§3.3).
	if _, ok := c.cfg.Monitor.WaitCheckpointQuorum(p, c.cfg.Topo, vclock.Minute); !ok {
		c.env.Tracef("%s: WARNING: checkpoint quorum not reached", c.cfg.Job)
	}

	// Phase C: release the job's current nodes back to the pool, exclude
	// the failed ones permanently, and allocate a replacement set.
	for _, rec := range recs {
		c.cfg.Pool.ReleaseByID(rec.r.Server.Device().NodeID)
	}
	for _, rec := range recs {
		if rec.strat == 4 {
			c.cfg.Pool.MarkFailed(rec.r.Server.Device().NodeID)
		}
	}
	nodes, err := c.cfg.Pool.Allocate(nNodes, nil)
	if err != nil {
		// No spare capacity: recovery cannot proceed transparently.
		c.env.Tracef("%s: hard recovery failed: %v", c.cfg.Job, err)
		rep := c.buildReport(recs, "hard", advanced)
		rep.Kind = "hard-failed:" + err.Error()
		return rep, false
	}
	placement, err := scheduler.Place(nodes, len(c.ranks))
	if err != nil {
		rep := c.buildReport(recs, "hard", advanced)
		rep.Kind = "hard-failed:" + err.Error()
		return rep, false
	}

	// Phase D–F per rank: restore CPU image on the new host, rebuild GPU
	// state, restore tensors from checkpoint files, replay.
	asmDone := c.env.NewEvent("hard.assembly")
	var asm *checkpoint.Assembly
	c.env.Go(c.cfg.Job+".assemble", func(pr *vclock.Proc) {
		defer asmDone.Trigger()
		a, err := checkpoint.Assemble(pr, c.cfg.Store, c.cfg.Job, JITPolicyName, c.cfg.Topo)
		if err != nil {
			c.env.Tracef("%s: assemble failed: %v", c.cfg.Job, err)
			return
		}
		asm = a
	})
	p.Wait(asmDone)
	if asm == nil {
		rep := c.buildReport(recs, "hard", advanced)
		rep.Kind = "hard-failed:no-checkpoint-assembly"
		return rep, false
	}

	for i, rec := range recs {
		i, rec := i, rec
		rec.proc = c.env.Go(fmt.Sprintf("%s.hardrestore.r%d", c.cfg.Job, rec.r.Rank), func(pr *vclock.Proc) {
			defer rec.done.Trigger()
			if rec.err != nil {
				return
			}
			// The rank is about to be re-attached to a new device and
			// rebuilt; dying partway leaves its state suspect.
			rec.mutated = true
			rec.timer.Skip() // exclude the coordination barrier
			// Attach the worker to its replacement GPU: fresh proxy
			// server and client on the new device.
			newDev := placement[rec.r.Rank]
			server, err := proxy.NewServer(c.env, newDev, rec.r.Server.Driver().Engine(), c.cfg.Kernels, c.cfg.CUDAParams, c.cfg.ProxyParams)
			if err != nil {
				rec.err = err
				return
			}
			client := proxy.NewClient(c.env, server)
			rec.r.Server = server
			rec.r.Client = client
			rec.r.Layer.SetInner(client)

			// CRIU restore: the worker's CPU state arrives intact.
			payload := c.cfg.CRIU.Restore(pr, images[i])
			if pl, err := decodeCRIUPayload(payload); err != nil || pl.Snapshot.Iter != rec.r.Worker.Iter() {
				rec.err = fmt.Errorf("core: rank %d CRIU payload mismatch (err=%v)", rec.r.Rank, err)
				return
			}
			rec.timer.Mark("criu-restore")

			// Rebuild all GPU objects from the creation log. The virtual
			// default stream maps onto a fresh stream of the new server
			// (prior recoveries may have remapped it to a handle that
			// does not exist on this driver).
			tr := rec.r.Layer.SeedTranslator()
			rec.tr = tr
			newDefault, err := client.StreamCreate(pr)
			if err != nil {
				rec.err = err
				return
			}
			tr.Streams[cuda.DefaultStream] = newDefault
			mallocs, handles, comms := splitCreationLog(rec.r.Layer.Log().Creation)
			if err := replay.Apply(pr, client, mallocs, tr, replay.Options{}); err != nil {
				rec.err = err
				return
			}
			rec.timer.Mark("reset-buffers")
			if err := replay.Apply(pr, client, handles, tr, replay.Options{}); err != nil {
				rec.err = err
				return
			}
			rec.timer.Mark("recreate-handles")
			genFor := func(string, int) int { return newGen }
			if err := replay.Apply(pr, client, comms, tr, replay.Options{GenFor: genFor}); err != nil {
				rec.err = err
				return
			}
			rec.timer.Mark("comm-init")

			// Restore parameter/optimizer buffers from the assembled
			// checkpoint (own file, or a replica's for the failed rank).
			ms, err := checkpoint.ReadRank(pr, c.cfg.Store, asm.Dir[rec.r.Rank])
			if err != nil {
				rec.err = err
				return
			}
			if err := writeModelTensors(pr, rec.r.Layer, client, tr, ms.Tensors); err != nil {
				rec.err = err
				return
			}
			rec.timer.Mark("restore-state")

			if rec.ignoreMut {
				rec.r.Layer.IgnoreMutationsUntilNextMinibatch()
			}
			if !rec.skipReplay {
				if err := replay.Apply(pr, client, rec.r.Layer.Log().Minibatch, tr, replay.Options{GenFor: genFor}); err != nil {
					rec.err = err
					return
				}
			}
			rec.timer.Mark("replay")
			trace.Of(c.env).Instant(pr.Now(), "ckpt", trace.Rank(rec.r.Rank), "restore-done",
				"valid", true, "iter", stateIter, "src", "ckpt")
			rec.r.Layer.EndRecovery(tr)
		})
	}
	ok := c.awaitRecs(p, recs, deadline, lost)

	rep := c.buildReport(recs, "hard", advanced)
	// Table 6 semantics: "healthy" ranks checkpointed their GPU state,
	// "failed" ranks could not.
	var hSum, fSum vclock.Time
	var hN, fN int
	for _, rec := range recs {
		if rec.strat == 4 {
			fSum += c.rankWorkTime(rec)
			fN++
		} else {
			hSum += c.rankWorkTime(rec)
			hN++
		}
	}
	if hN > 0 {
		rep.HealthyAvg = hSum / vclock.Time(hN)
	}
	if fN > 0 {
		rep.FailedAvg = fSum / vclock.Time(fN)
	}
	return rep, ok
}

// nodeCount counts distinct nodes hosting the job's ranks.
func nodeCount(ranks []*TransparentRank) int {
	seen := make(map[int]bool)
	for _, r := range ranks {
		seen[r.Server.Device().NodeID] = true
	}
	return len(seen)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// encodePayloadForTest exposes criuPayload encoding for tests.
func encodePayloadForTest(pl criuPayload) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pl); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
