package core

import (
	"fmt"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/intercept"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// UserLevelRank wires one rank's user-level just-in-time checkpointing
// (§3). The training script's only obligations, exactly as in the paper,
// are (a) initializing the library — constructing this object and passing
// its Hook as the interception layer's OnFault — and (b) providing a
// save-checkpoint function free of collective operations; here that is the
// worker's SaveModelState, which uses only device-to-host copies.
type UserLevelRank struct {
	// Rank is this worker's global rank.
	Rank int
	// Job names the checkpoint namespace.
	Job string
	// Layer is the rank's interception layer (ModeUserLevel).
	Layer *intercept.Layer
	// Worker is the training worker whose state gets checkpointed.
	Worker *train.Worker
	// GIL is the interpreter lock the worker holds across device calls.
	GIL *vclock.Mutex
	// Store is the shared checkpoint store.
	Store *checkpoint.Store
	// Namespace overrides the checkpoint namespace the JIT flush writes
	// under; empty means JITPolicyName ("jit").
	Namespace string
	// PickStore, when set, selects the flush target at save time instead
	// of Store — the peer-shelter policy uses it to route the failure-time
	// flush to a surviving host outside this rank's failure domain. A nil
	// result means no eligible target survives and the save fails.
	PickStore func() *checkpoint.Store
	// Monitor is the scheduler's notification sink.
	Monitor *scheduler.Monitor
	// StateBytes is the modelled size of the rank's checkpointable state.
	StateBytes int64
	// SerializeBW is the CPU serialization throughput charged before the
	// store write (torch.save-class pickling).
	SerializeBW float64
	// MainProc is the worker's main process; the checkpoint handler kills
	// it after a successful save ("the watchdog thread exits the process
	// immediately after the checkpoint", §3.2).
	MainProc *vclock.Proc
	// NotePhase, when set, is invoked as the JIT save begins — the chaos
	// injector's failure.PhaseCheckpoint entry point.
	NotePhase func()
	// Retry bounds retries of the checkpoint store write on transient
	// faults; zero value means checkpoint.DefaultRetry.
	Retry checkpoint.RetryPolicy

	// CheckpointDone reports the completed JIT checkpoint, if any.
	CheckpointDone bool
	CheckpointIter int
	// SaveDuration is how long the JIT checkpoint took (Table 4's
	// "Checkpoint" column).
	SaveDuration vclock.Time
	// SaveErr records a failed save attempt.
	SaveErr error
}

// Hook returns the OnFault callback to install in the interception layer.
//
// On an API error (the failing rank itself): the error is surfaced to the
// training script, which will crash; the handler only notifies the
// scheduler. On a hang (a healthy replica): the handler performs the §3.2
// sequence in the watchdog's thread — signal-release the GIL held by the
// wedged main thread, take it, enter checkpoint mode so device-to-host
// copies avoid the blocked default stream, save, commit the rank
// checkpoint with the metadata-last protocol, notify the scheduler, and
// kill the worker process.
func (u *UserLevelRank) Hook() func(p *vclock.Proc, f intercept.Fault) {
	return func(p *vclock.Proc, f intercept.Fault) {
		trace.Of(p.Env()).Instant(p.Now(), "fail", trace.Rank(u.Rank), "detected",
			"by", "intercept", "iter", f.Iter)
		u.Monitor.Notify(scheduler.Event{Kind: scheduler.EvFailureDetected, Rank: u.Rank, Iter: f.Iter, Err: f.Err})
		if f.Kind == intercept.FaultError {
			// This rank's own GPU failed: it cannot save state; its
			// replicas will. The error propagates to the script.
			return
		}
		if err := u.saveCheckpoint(p); err != nil {
			u.SaveErr = err
			u.Monitor.Notify(scheduler.Event{Kind: scheduler.EvRankExited, Rank: u.Rank, Err: err})
		}
		if u.MainProc != nil {
			u.MainProc.Kill()
		}
	}
}

// saveCheckpoint is the library-side half of the user's save_checkpoint
// call path.
func (u *UserLevelRank) saveCheckpoint(p *vclock.Proc) (err error) {
	start := p.Now()
	sp := trace.Of(p.Env()).Begin(start, "ckpt", trace.Rank(u.Rank), "jit-save")
	defer func() {
		u.SaveDuration = p.Now() - start
		if err != nil {
			sp.End(p.Now(), "err", err)
		} else {
			sp.End(p.Now(), "iter", u.CheckpointIter)
		}
	}()
	if u.NotePhase != nil {
		u.NotePhase()
	}
	// The wedged main thread may hold the GIL inside a hung device call
	// (§3.2's footnote); steal it the way the SIGUSR1 handler does.
	if u.GIL != nil {
		if u.GIL.Owner() != p {
			u.GIL.ForceRelease()
			u.GIL.Lock(p)
		}
		defer u.GIL.Unlock(p)
	}
	if err := u.Layer.EnterCheckpointMode(p); err != nil {
		return fmt.Errorf("core: enter checkpoint mode: %w", err)
	}
	defer u.Layer.ExitCheckpointMode()

	ms, err := u.Worker.SaveModelState(p)
	if err != nil {
		return fmt.Errorf("core: rank %d JIT save: %w", u.Rank, err)
	}
	if u.SerializeBW > 0 {
		p.Sleep(vclock.Time(float64(u.StateBytes) / u.SerializeBW * float64(vclock.Second)))
	}
	ns := u.Namespace
	if ns == "" {
		ns = JITPolicyName
	}
	st := u.Store
	if u.PickStore != nil {
		if st = u.PickStore(); st == nil {
			return fmt.Errorf("core: rank %d JIT flush: no surviving peer host", u.Rank)
		}
	}
	rp := u.Retry
	if rp.Attempts == 0 {
		rp = checkpoint.DefaultRetry()
	}
	dir := checkpoint.RankDir(u.Job, ns, ms.Iter, u.Rank)
	if err := checkpoint.WriteRankRetry(p, st, dir, ms, u.StateBytes, rp); err != nil {
		return fmt.Errorf("core: rank %d JIT write: %w", u.Rank, err)
	}
	u.CheckpointDone = true
	u.CheckpointIter = ms.Iter
	u.Monitor.Notify(scheduler.Event{Kind: scheduler.EvCheckpointDone, Rank: u.Rank, Iter: ms.Iter})
	return nil
}

// JITCheckpointPath is the library's jit_get_checkpoint_path (§3.3): it
// assembles, for every rank of the restarted job, the directory of a valid
// checkpoint — the rank's own if it saved one, otherwise any healthy
// data-parallel replica's.
func JITCheckpointPath(p *vclock.Proc, store *checkpoint.Store, job string, topo train.Topology) (*checkpoint.Assembly, error) {
	return checkpoint.Assemble(p, store, job, JITPolicyName, topo)
}
