package core

import (
	"math"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// testWL returns a small fast workload: 4 GPUs data-parallel, 50 ms
// minibatches, aggressive timeouts, so whole failure-recovery episodes
// complete in a second of virtual time.
func testWL() workload.Workload {
	return workload.Workload{
		Name: "tiny", GPU: "A100-80GB", ParamsB: 0.004, Nodes: 2, PerNode: 2,
		Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "test",
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 2, Hidden: 8,
	}
}

// testWL3D is an 8-GPU 2D-2P-2T variant.
func testWL3D() workload.Workload {
	wl := testWL()
	wl.Name = "tiny-3d"
	wl.Nodes, wl.PerNode = 2, 4
	wl.Topo = train.Topology{D: 2, P: 2, T: 2}
	wl.Layers = 4
	return wl
}

// injectAt builds a single iteration-anchored failure: at iteration
// int(k), frac(k) of a minibatch in.
func injectAt(_ workload.Workload, k float64, rank int, kind failure.Kind) []IterInjection {
	iter := int(k)
	return []IterInjection{{Iter: iter, Frac: k - float64(iter), Rank: rank, Kind: kind}}
}

func mustRun(t *testing.T, cfg JobConfig) *RunResult {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestFailureFreeTransparentRun(t *testing.T) {
	res := mustRun(t, JobConfig{
		WL: testWL(), Policy: PolicyTransparentJIT, Iters: 12, Seed: 1, CollectLoss: true,
	})
	if !res.Completed {
		t.Fatalf("job did not complete: %+v", res.Accounting)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("spurious recoveries: %d", len(res.Reports))
	}
	if len(res.Loss) != 12 {
		t.Fatalf("loss trace has %d entries", len(res.Loss))
	}
	if res.Minibatch <= 0 || res.Minibatch > 4*testWL().Minibatch {
		t.Fatalf("measured minibatch %v implausible", res.Minibatch)
	}
}

func TestFailureFreeUserJITRun(t *testing.T) {
	res := mustRun(t, JobConfig{
		WL: testWL(), Policy: PolicyUserJIT, Iters: 12, Seed: 1, CollectLoss: true,
	})
	if !res.Completed || res.Incarnations != 1 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
}

// lossTracesEqual compares two loss maps bit for bit over [0, n).
func lossTracesEqual(t *testing.T, a, b map[int]float32, n int) bool {
	t.Helper()
	for i := 0; i < n; i++ {
		av, aok := a[i]
		bv, bok := b[i]
		if !aok || !bok {
			t.Logf("iter %d missing: %v %v", i, aok, bok)
			return false
		}
		if math.Float32bits(av) != math.Float32bits(bv) {
			t.Logf("iter %d: %v vs %v", i, av, bv)
			return false
		}
	}
	return true
}

// referenceLoss runs a failure-free job and returns its loss trace.
func referenceLoss(t *testing.T, wl workload.Workload, iters int) map[int]float32 {
	t.Helper()
	res := mustRun(t, JobConfig{WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true})
	if !res.Completed {
		t.Fatal("reference run did not complete")
	}
	return res.Loss
}

func TestTransparentNetworkHangRecovery(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: injectAt(wl, 5.3, 1, failure.NetworkHang),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%d", len(res.Reports))
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	rep := res.Reports[0]
	if rep.Kind != "transient" {
		t.Fatalf("kind = %s", rep.Kind)
	}
	// §6.2: exact loss match with the failure-free run.
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss trace diverged after network-hang recovery")
	}
	// Table 7 structure: comm re-init dominates.
	if rep.Phase("comm-init") <= rep.Phase("replay") {
		t.Fatalf("comm-init (%v) should dominate replay (%v)", rep.Phase("comm-init"), rep.Phase("replay"))
	}
}

func TestTransparentStickyErrorRecovery(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: injectAt(wl, 5.3, 2, failure.GPUSticky),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%+v", res.Reports)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss trace diverged after sticky-error recovery")
	}
}

func TestTransparentDriverCorruptRecovery(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: injectAt(wl, 5.3, 0, failure.DriverCorrupt),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%+v", res.Reports)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss trace diverged after driver-corruption recovery")
	}
}

func TestTransparentHardErrorMigration(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: injectAt(wl, 5.3, 1, failure.GPUHard),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%+v", res.Reports)
	}
	if len(res.Reports) != 1 || res.Reports[0].Kind != "hard" {
		t.Fatalf("reports = %+v", res.Reports)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss trace diverged after hard-error migration")
	}
	// Table 6: healthy ranks (which checkpoint GPU state) take longer
	// than the failed rank (which does not).
	rep := res.Reports[0]
	if rep.HealthyAvg <= rep.FailedAvg {
		t.Fatalf("healthy avg %v should exceed failed avg %v", rep.HealthyAvg, rep.FailedAvg)
	}
}

func TestUserJITRecoversFromHardError(t *testing.T) {
	wl := testWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: injectAt(wl, 5.3, 1, failure.GPUHard),
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", res.Incarnations)
	}
	if res.JITCheckpointTime <= 0 {
		t.Fatal("JIT checkpoint time not measured")
	}
	if res.RestoreTime <= 0 {
		t.Fatal("restore time not measured")
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss trace diverged after user-level JIT recovery")
	}
	// At most one minibatch of work redone per failure.
	if res.ItersExecuted > iters+1 {
		t.Fatalf("executed %d iters for %d useful: more than one minibatch redone", res.ItersExecuted, iters)
	}
}

func TestPeriodicPolicyRestartsAndRedoesWork(t *testing.T) {
	wl := testWL()
	const iters = 20
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPCDisk, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 5 * wl.Minibatch, // checkpoint every ~5 iterations
		SpareNodes:   2,
		IterFailures: injectAt(wl, 14.5, 1, failure.GPUHard),
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d", res.Incarnations)
	}
	if res.Accounting.Checkpoints == 0 {
		t.Fatal("no periodic checkpoints taken")
	}
	// Redo: failure at ~iter 14 with last checkpoint around iter 10-14:
	// several minibatches redone, more than JIT would redo.
	if res.ItersExecuted <= iters {
		t.Fatalf("expected redone work, executed=%d", res.ItersExecuted)
	}
	if res.Accounting.CkptStall <= 0 {
		t.Fatal("periodic policy should have checkpoint stalls")
	}
}

func TestPolicyNoneLosesEverything(t *testing.T) {
	wl := testWL()
	const iters = 10
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyNone, Iters: iters, Seed: 1,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: injectAt(wl, 6.5, 0, failure.GPUHard),
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d", res.Incarnations)
	}
	// All pre-failure iterations redone.
	if res.ItersExecuted < iters+6 {
		t.Fatalf("executed %d, expected ≥ %d (restart from scratch)", res.ItersExecuted, iters+6)
	}
}

func Test3DTransparentRecovery(t *testing.T) {
	wl := testWL3D()
	const iters = 10
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: injectAt(wl, 4.3, 3, failure.GPUSticky),
	})
	if !res.Completed {
		t.Fatalf("3D job did not complete; reports=%+v", res.Reports)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("3D loss trace diverged after recovery")
	}
}

func TestOptimalIntervalShrinksWithScale(t *testing.T) {
	wl := testWL()
	small := OptimalInterval(wl, 2.0/992)
	wl.Nodes = 200 // 400 GPUs
	big := OptimalInterval(wl, 2.0/992)
	if big >= small {
		t.Fatalf("interval should shrink with more GPUs: %v -> %v", small, big)
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicyNone: "none", PolicyPCDisk: "PC_disk", PolicyPCMem: "PC_mem",
		PolicyCheckFreq: "CheckFreq", PolicyPCDaily: "PC_1/day",
		PolicyUserJIT: "UserJIT", PolicyTransparentJIT: "TransparentJIT",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d = %q want %q", p, p.String(), s)
		}
	}
	if !PolicyUserJIT.IsJIT() || PolicyPCDisk.IsJIT() {
		t.Error("IsJIT wrong")
	}
	if len(Solutions()) != 3 {
		t.Error("Table 1 should have 3 rows")
	}
}
