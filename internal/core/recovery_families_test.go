package core

import (
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// pipeWL is a pure-pipeline geometry: four stages, one rank (and one node)
// per stage, so losing a node loses exactly one stage and checkpoint-free
// neighbor redundancy is the only thing standing between the job and a
// disk read.
func pipeWL() workload.Workload {
	wl := testWL()
	wl.Name = "tiny-pipe"
	wl.Nodes, wl.PerNode = 4, 1
	wl.Topo = train.Topology{D: 1, P: 4, T: 1}
	wl.Layers = 4
	return wl
}

// TestFailureFreeMultiStepRun pins the overlapped writer's steady state:
// generations commit in the background while the job trains, and the loss
// trace is untouched by the slice machinery.
func TestFailureFreeMultiStepRun(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1, CollectLoss: true,
		CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 2,
	})
	if !res.Completed || res.Incarnations != 1 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if res.MultiStepCommits < 2 {
		t.Fatalf("multi-step commits = %d, want ≥2", res.MultiStepCommits)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged under overlapped multi-step checkpointing")
	}
}

// TestMultiStepDiskRecovery is the tentpole acceptance for GoCkpt: a hard
// fault forces a restart, restore merges slices captured at different
// iterations and replays retained gradient deltas — and the post-recovery
// loss curve is bit-identical to the failure-free run.
func TestMultiStepDiskRecovery(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 2,
		SpareNodes:   2,
		IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", res.Incarnations)
	}
	if res.CkptReadBytes == 0 {
		t.Fatal("restore read no checkpoint bytes — multi-step generation not used")
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after gradient-reconciled restore")
	}
}

// TestMultiStepFaultMidSliceWrite lands the fault exactly while a shard
// slice is flushing: the generation in flight is partial and must never be
// restored — recovery falls back to the newest fully-committed one, still
// bit-exact.
func TestMultiStepFaultMidSliceWrite(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 4,
		SpareNodes: 2,
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseSliceWrite,
				Rank:       -1,
				Occurrence: 6, // mid-generation: slices 1..4 of gen 1, then into gen 2
				Target:     -1,
				Kind:       failure.GPUHard,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations < 2 {
		t.Fatalf("incarnations = %d, want ≥2", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after mid-slice-write fault")
	}
}

// TestMultiStepFaultMidReconcile hits the restarted incarnation while a
// rank is replaying gradient deltas: the half-reconciled incarnation must
// fail loudly and the next one complete bit-identically.
func TestMultiStepFaultMidReconcile(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyMultiStepDisk, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 2,
		SpareNodes:   3,
		IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseReconcile,
				Rank:       -1,
				Occurrence: 1,
				Target:     2,
				Kind:       failure.GPUHard,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations != 3 {
		t.Fatalf("incarnations = %d, want 3 (restart + failed reconcile + clean restart)", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after fault-during-reconcile")
	}
}

// TestFailureFreePipeFreeRun: the redundancy tier retains bundles in the
// background without perturbing training.
func TestFailureFreePipeFreeRun(t *testing.T) {
	wl := pipeWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPipeFree, Iters: iters, Seed: 1, CollectLoss: true,
	})
	if !res.Completed || res.Incarnations != 1 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if res.Pipe.Commits == 0 {
		t.Fatal("no redundancy bundles committed")
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged under pipe-free retention")
	}
}

// TestPipeFreeSingleStageLossZeroCkptReads is the tentpole acceptance for
// checkpoint-free recovery: a node loss takes out one pipeline stage, the
// stage is rebuilt from its neighbor's retained bundle, and the entire
// recovery reads zero bytes from any checkpoint store.
func TestPipeFreeSingleStageLossZeroCkptReads(t *testing.T) {
	wl := pipeWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPipeFree, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: injectAt(wl, 5.5, 1, failure.NodeDown),
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", res.Incarnations)
	}
	if res.CkptReadBytes != 0 {
		t.Fatalf("recovery read %d checkpoint bytes, want 0 (checkpoint-free)", res.CkptReadBytes)
	}
	if res.Pipe.Rebuilds < 1 {
		t.Fatalf("rebuilds = %d, want ≥1 (the lost stage must be rebuilt from a neighbor)", res.Pipe.Rebuilds)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after checkpoint-free stage rebuild")
	}
}

// TestPipeFreeDoubleFaultFallsBackToDisk kills a stage AND the neighbor
// hosting its redundancy bundle in the same instant: the stage's position
// is uncovered in the pipe-free tier, so recovery must fall back to the
// newest fully-valid multi-step disk generation.
func TestPipeFreeDoubleFaultFallsBackToDisk(t *testing.T) {
	wl := pipeWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPipeFree, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 3 * wl.Minibatch, MultiStepSlices: 2,
		SpareNodes: 2,
		IterFailures: []IterInjection{
			{Iter: 6, Frac: 0.5, Rank: 1, Kind: failure.NodeDown},
			{Iter: 6, Frac: 0.5, Rank: 2, Kind: failure.NodeDown},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.CkptReadBytes == 0 {
		t.Fatal("double fault recovered with zero checkpoint reads — fallback to disk did not happen")
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after double-fault disk fallback")
	}
}

// TestPipeFreeFaultMidStageRebuild hits the restarted incarnation while a
// stage is being rebuilt from a neighbor bundle: the episode must end in a
// failed incarnation followed by a verified restore, never a silent
// half-rebuilt stage.
func TestPipeFreeFaultMidStageRebuild(t *testing.T) {
	wl := pipeWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPipeFree, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 3 * wl.Minibatch, MultiStepSlices: 2,
		SpareNodes:   3,
		IterFailures: injectAt(wl, 5.5, 1, failure.NodeDown),
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseStageRebuild,
				Rank:       -1,
				Occurrence: 1,
				Target:     3,
				Kind:       failure.GPUHard,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations < 3 {
		t.Fatalf("incarnations = %d, want ≥3 (the mid-rebuild fault must cost an incarnation)", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after fault-during-stage-rebuild")
	}
}
