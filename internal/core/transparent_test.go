package core

import (
	"strings"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/replay"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func TestSplitCreationLog(t *testing.T) {
	calls := []replay.Call{
		{Kind: replay.CallCommInit, Key: "w"},
		{Kind: replay.CallStreamCreate, RStream: 1},
		{Kind: replay.CallMalloc, RBuf: 1},
		{Kind: replay.CallEventCreate, REvent: 1},
		{Kind: replay.CallMalloc, RBuf: 2},
		{Kind: replay.CallCommInit, Key: "dp"},
	}
	mallocs, handles, comms := splitCreationLog(calls)
	if len(mallocs) != 2 || mallocs[0].RBuf != 1 || mallocs[1].RBuf != 2 {
		t.Fatalf("mallocs = %+v", mallocs)
	}
	if len(handles) != 2 || handles[0].Kind != replay.CallStreamCreate {
		t.Fatalf("handles = %+v", handles)
	}
	if len(comms) != 2 || comms[0].Key != "w" || comms[1].Key != "dp" {
		t.Fatalf("comms = %+v", comms)
	}
}

func TestCRIUPayloadRoundTrip(t *testing.T) {
	raw, err := decodeCRIUPayload([]byte("garbage"))
	if err == nil || raw != nil {
		t.Fatal("garbage payload decoded")
	}
	pl := criuPayload{Snapshot: train.Snapshot{Iter: 7, Gen: 2}, Log: []byte{1, 2, 3}}
	enc, err := encodePayloadForTest(pl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCRIUPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot.Iter != 7 || got.Snapshot.Gen != 2 || len(got.Log) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

// TestTransparentNoReplicaFailsLoudly: a single-replica job (D=1) hit by
// a sticky error has no healthy copy of its parameter state; transparent
// recovery must fail with a clear report rather than fabricating state.
func TestTransparentNoReplicaFailsLoudly(t *testing.T) {
	wl := testWL()
	wl.Name = "tiny-noreplica"
	wl.Nodes, wl.PerNode = 1, 2
	wl.Topo = train.Topology{D: 2, P: 1, T: 1}
	const iters = 12
	// Kill BOTH replicas with sticky errors at the same instant: strategy
	// 3 for both, and neither has a healthy replica to copy from.
	res, err := Run(JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1,
		HangTimeout: 2 * vclock.Second,
		IterFailures: []IterInjection{
			{Iter: 5, Frac: 0.4, Rank: 0, Kind: failure.GPUSticky},
			{Iter: 5, Frac: 0.4, Rank: 1, Kind: failure.GPUSticky},
		},
		Horizon: 10 * vclock.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("job completed despite losing every copy of its state")
	}
	if len(res.Reports) == 0 {
		t.Fatal("no recovery attempt recorded")
	}
	// Per-rank recovery errors surface in the trace; the job-level
	// outcome is an incomplete run, not corrupted training.
}

// TestRecoveryReportPhases exercises the report accessors.
func TestRecoveryReportPhases(t *testing.T) {
	rep := &RecoveryReport{
		Kind:        "transient",
		DetectedAt:  vclock.Second,
		CompletedAt: 3 * vclock.Second,
		Phases: []PhaseDur{
			{Name: "teardown", Dur: vclock.Second},
			{Name: "comm-init", Dur: vclock.Second},
		},
	}
	if rep.Total() != 2*vclock.Second {
		t.Fatalf("Total = %v", rep.Total())
	}
	if rep.Phase("comm-init") != vclock.Second || rep.Phase("nope") != 0 {
		t.Fatal("Phase lookup wrong")
	}
}

// TestCoordinatorGenerationMonotonic: each recovery bumps the
// communicator generation, so stale rendezvous arrivals can never satisfy
// a post-recovery initialization.
func TestCoordinatorGenerationMonotonic(t *testing.T) {
	wl := testWL()
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: 16, Seed: 1,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: []IterInjection{
			{Iter: 4, Frac: 0.4, Rank: 1, Kind: failure.NetworkHang},
			{Iter: 10, Frac: 0.4, Rank: 2, Kind: failure.NetworkHang},
		},
	})
	if !res.Completed || len(res.Reports) != 2 {
		t.Fatalf("completed=%v reports=%d", res.Completed, len(res.Reports))
	}
	// Two distinct successful recoveries imply two distinct generations:
	// if the generation had been reused, the second rendezvous would have
	// been satisfied by the first recovery's stale arrivals and the
	// replayed collectives would have mismatched (caught by the loss
	// checks elsewhere); here we assert the episodes at least completed
	// in order.
	if res.Reports[1].DetectedAt <= res.Reports[0].CompletedAt {
		t.Fatal("second recovery overlapped the first")
	}
}

// TestPolicyNamesIncludeCombined keeps jitsim's policy table honest.
func TestPolicyNamesIncludeCombined(t *testing.T) {
	if !strings.Contains(PolicyJITWithDaily.String(), "UserJIT") {
		t.Fatalf("combined policy name = %q", PolicyJITWithDaily)
	}
	if kind, ok := PolicyJITWithDaily.PeriodicKind(); !ok || kind.PolicyName() != "pc_mem" {
		t.Fatal("combined policy must carry a periodic companion")
	}
	if !PolicyJITWithDaily.UserLevelJIT() || !PolicyJITWithDaily.IsJIT() {
		t.Fatal("combined policy classification wrong")
	}
}
