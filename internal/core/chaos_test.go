package core

import (
	"strings"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
)

// TestGenerationFallbackEndToEnd pins the acceptance criterion end to end:
// every JIT checkpoint written at failure time is silently bit-flipped, so
// restore-time deep validation must reject the newest generation and fall
// back to the older (clean) periodic checkpoint — and the job must still
// converge bit-identically to the failure-free run.
func TestGenerationFallbackEndToEnd(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithDaily, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 5 * wl.Minibatch, // periodic fallback every ~5 iters
		SpareNodes:   2,
		IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
		Chaos: &ChaosConfig{
			// Corrupt every JIT-namespace data file: the whole failure-time
			// generation is poisoned. Periodic-namespace writes stay clean.
			DiskChaos: func(path string) checkpoint.WriteOutcome {
				if strings.Contains(path, "/"+JITPolicyName+"/") && strings.Contains(path, "model.bin") {
					return checkpoint.WriteBitFlip
				}
				return checkpoint.WriteOK
			},
		},
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after generation fallback")
	}
	// The fallback is observable in the redo bound: restoring from the
	// (corrupt) JIT generation would redo at most 1 minibatch; falling back
	// to the periodic checkpoint at ~iter 5 redoes several.
	if res.ItersExecuted <= iters+1 {
		t.Fatalf("executed %d iters: JIT-level redo bound, corrupt generation was not skipped", res.ItersExecuted)
	}
}

// TestUserJITFaultDuringRestore is the mid-recovery acceptance test for the
// user-level policy: the first incarnation restart is itself hit by a hard
// fault while a rank is restoring. The harness must fail that incarnation
// loudly (not let the half-restored rank diverge) and the next incarnation
// must complete bit-identically.
func TestUserJITFaultDuringRestore(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 3,
		IterFailures: injectAt(wl, 6.5, 1, failure.GPUHard),
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseRestore,
				Rank:       -1, // the first rank to start restoring
				Occurrence: 1,
				Delay:      200 * vclock.Millisecond, // mid-restore, not at its edge
				Target:     2,
				Kind:       failure.GPUHard,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations != 3 {
		t.Fatalf("incarnations = %d, want 3 (restart + failed restore + clean restart)", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after fault-during-restore")
	}
}

// TestJITWithPeerFaultDuringCommReinit is the second mid-recovery
// acceptance case: a network hang lands while the restarted incarnation is
// re-initializing its communicators. The setup-phase heartbeat grace must
// detect the wedged rendezvous and restart again rather than hanging until
// the horizon.
func TestJITWithPeerFaultDuringCommReinit(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithPeer, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 3,
		IterFailures: injectAt(wl, 6.5, 1, failure.GPUHard),
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseCommInit,
				Rank:       -1,
				Occurrence: 1,
				Target:     -1, // whichever rank is re-initializing
				Kind:       failure.NetworkHang,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job wedged instead of recovering; incarnations=%d", res.Incarnations)
	}
	if res.Incarnations < 3 {
		t.Fatalf("incarnations = %d, want ≥3 (the comm-init hang must cost an incarnation)", res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after fault-during-comm-reinit")
	}
}

// TestTransparentReentrantRecovery pins the re-entrant coordinator: a
// network hang during transparent recovery's communicator re-init wedges
// the first attempt; the per-attempt deadline must kill it and the retry —
// under a fresh generation, with pre-mutation ranks keeping their cheap
// strategy — must succeed, still bit-identically.
func TestTransparentReentrantRecovery(t *testing.T) {
	wl := testWL()
	const iters = 14
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:            2 * vclock.Second,
		RecoveryAttemptTimeout: 10 * vclock.Second,
		IterFailures:           injectAt(wl, 5.3, 1, failure.NetworkHang),
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseCommInit,
				Rank:       -1,
				Occurrence: 1,
				Target:     -1,
				Kind:       failure.NetworkHang,
			}},
		},
	})
	if !res.Completed {
		t.Fatalf("job did not complete; reports=%+v", res.Reports)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 episode", len(res.Reports))
	}
	if res.Reports[0].Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥2 (the mid-recovery hang must cost an attempt)", res.Reports[0].Attempts)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after re-entrant recovery")
	}
}

// TestStorageFaultAbsorbedByRetry: a StorageFault injection opens a window
// of transient shared-store write failures exactly when the periodic
// checkpointer runs; the bounded retry must absorb it with no incarnation
// lost.
func TestStorageFaultAbsorbedByRetry(t *testing.T) {
	wl := testWL()
	const iters = 14
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPCDisk, Iters: iters, Seed: 1,
		HangTimeout:  2 * vclock.Second,
		CkptInterval: 4 * wl.Minibatch,
		Chaos: &ChaosConfig{
			PhaseInjections: []failure.PhaseInjection{{
				Phase:      failure.PhaseCheckpoint,
				Rank:       -1,
				Occurrence: 1,
				Target:     -1,
				Kind:       failure.StorageFault,
			}},
		},
	})
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Incarnations != 1 {
		t.Fatalf("incarnations = %d: transient storage fault cost a restart", res.Incarnations)
	}
	if res.Accounting.Checkpoints == 0 {
		t.Fatal("no periodic checkpoints recorded")
	}
}
