package core

import (
	"bytes"
	"reflect"
	"testing"

	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
)

// stripDisk clears the shared-store pointer so results can be compared
// structurally (the store's identity differs between runs by design).
func stripDisk(res *RunResult) RunResult {
	cp := *res
	cp.Disk = nil
	return cp
}

// TestStreamingDifferential runs every golden scenario twice — once
// post-hoc (recorder only) and once with a live tracestream sink
// attached — and requires:
//
//	(a) zero perturbation: the complete, unfiltered virtual-time
//	    timelines and the final RunResults are identical, so leaving
//	    the streaming layer on costs nothing in fidelity;
//	(b) exactness: the stream's final per-job rollup equals the
//	    post-hoc accounting bit for bit, and reconciles against the
//	    trace the same way ReconcileAccounting holds post-hoc.
//
// Together these pin the package doc's claim that streaming is a view,
// never a second source of truth.
func TestStreamingDifferential(t *testing.T) {
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Post-hoc leg.
			cfgA := sc.cfg()
			recA := trace.New()
			cfgA.Recorder = recA
			resA, err := Run(cfgA)
			if err != nil {
				t.Fatalf("post-hoc Run: %v", err)
			}

			// Streaming leg: same recorder setup plus a live sink.
			cfgB := sc.cfg()
			recB := trace.New()
			cfgB.Recorder = recB
			st := tracestream.New(tracestream.Options{})
			cfgB.Stream = st
			resB, err := Run(cfgB)
			if err != nil {
				t.Fatalf("streaming Run: %v", err)
			}

			// (a) Byte-identical trajectories and identical results.
			if a, b := fullText(t, recA), fullText(t, recB); !bytes.Equal(a, b) {
				t.Fatalf("streaming perturbed the timeline:\n%s", firstDiff(a, b))
			}
			if a, b := stripDisk(resA), stripDisk(resB); !reflect.DeepEqual(a, b) {
				t.Fatalf("streaming perturbed the result:\npost-hoc:  %+v\nstreaming: %+v", a, b)
			}

			// (b) Stream finals equal post-hoc accounting exactly.
			js, ok := st.Job("job")
			if !ok {
				t.Fatal("stream did not register the job")
			}
			if !js.Done || !js.HaveFinal {
				t.Fatalf("job not finalized in stream: done=%v haveFinal=%v", js.Done, js.HaveFinal)
			}
			if js.Completed != resB.Completed {
				t.Errorf("stream Completed=%v, result %v", js.Completed, resB.Completed)
			}
			if js.Final != resB.Accounting {
				t.Errorf("stream final rollup differs from post-hoc accounting:\nstream:   %+v\npost-hoc: %+v",
					js.Final, resB.Accounting)
			}
			if js.Wall != resB.WallTime {
				t.Errorf("stream wall %v, result %v", js.Wall, resB.WallTime)
			}
			if js.Incarnations != resB.Incarnations {
				t.Errorf("stream counted %d incarnations, result %d", js.Incarnations, resB.Incarnations)
			}
			if js.Episodes != len(resB.RecoveryLatencies) {
				t.Errorf("stream counted %d episodes, result measured %d", js.Episodes, len(resB.RecoveryLatencies))
			}

			// The streamed numbers must reconcile against the trace just
			// like the post-hoc ones do.
			q := trace.NewQuery(recB)
			if err := trace.CheckInvariants(q); err != nil {
				t.Fatal(err)
			}
			if err := trace.ReconcileAccounting(q, js.Final.Useful, js.Final.Wasted(), js.Wall); err != nil {
				t.Errorf("streamed rollup does not reconcile: %v", err)
			}

			// Retain-off leg: streaming with no post-hoc log at all (the
			// long-running -serve configuration) is just as undisturbed.
			cfgC := sc.cfg()
			stC := tracestream.New(tracestream.Options{})
			cfgC.Stream = stC
			resC, err := Run(cfgC)
			if err != nil {
				t.Fatalf("retain-off Run: %v", err)
			}
			if a, c := stripDisk(resA), stripDisk(resC); !reflect.DeepEqual(a, c) {
				t.Fatalf("retain-off streaming perturbed the result:\npost-hoc:   %+v\nretain-off: %+v", a, c)
			}
			jc, ok := stC.Job("job")
			if !ok || jc.Final != resC.Accounting || jc.Wall != resC.WallTime {
				t.Errorf("retain-off stream rollup differs: ok=%v\nstream:   %+v\npost-hoc: %+v",
					ok, jc.Final, resC.Accounting)
			}
		})
	}
}
