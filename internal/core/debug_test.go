package core

import (
	"fmt"
	"os"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
)

// TestDebugNetworkHang is a tracing harness for recovery debugging; run
// with -run TestDebugNetworkHang -v and JITDEBUG=1.
func TestDebugNetworkHang(t *testing.T) {
	if os.Getenv("JITDEBUG") == "" {
		t.Skip("set JITDEBUG=1 to run")
	}
	wl := testWL()
	cfg := JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: 8, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		IterFailures: injectAt(wl, 5.3, 1, failure.NetworkHang),
		Horizon:      2 * vclock.Minute,
		Trace: func(at vclock.Time, format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "[%v] %s\n", at, fmt.Sprintf(format, args...))
		},
	}
	res, err := Run(cfg)
	t.Logf("err=%v completed=%v reports=%d iters=%d", err, res.Completed, len(res.Reports), res.ItersExecuted)
}
