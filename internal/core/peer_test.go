package core

import (
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// peerWL is a 4-node, 1-GPU-per-node, 2D×2P workload: every rank is its
// own failure domain, so a whole-node loss takes exactly one rank — and
// taking nodes 0 and 2 together destroys BOTH data-parallel replicas of
// pipeline stage 0 (ranks 0 and 2) at once, the catastrophic case JIT
// checkpointing alone cannot survive.
func peerWL() workload.Workload {
	wl := testWL()
	wl.Name = "tiny-peer"
	wl.Nodes, wl.PerNode = 4, 1
	wl.Topo = train.Topology{D: 2, P: 2, T: 1}
	wl.Layers = 4
	return wl
}

func TestFailureFreePeerShelterRun(t *testing.T) {
	wl := peerWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	base := mustRun(t, JobConfig{WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1})
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
	})
	if !res.Completed || res.Incarnations != 1 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged under peer replication")
	}
	// Replication ran: every rank offers after every non-final iteration.
	wantOffers := wl.Topo.World() * (iters - 1)
	if res.Peer.Offers != wantOffers {
		t.Fatalf("offers = %d, want %d", res.Peer.Offers, wantOffers)
	}
	if res.Peer.Commits == 0 || res.Peer.BytesSheltered == 0 {
		t.Fatalf("nothing sheltered: %+v", res.Peer)
	}
	// Replication is overlapped with the next minibatch: no added
	// critical-path time versus plain user-level JIT.
	if res.WallTime > base.WallTime+vclock.Millisecond {
		t.Fatalf("peer replication stalled training: %v vs %v", res.WallTime, base.WallTime)
	}
	// The piggyback accounting saw the per-iteration gradient all-reduces.
	if res.Peer.PiggybackWaves == 0 || res.Peer.PiggybackBytes == 0 {
		t.Fatalf("no piggyback windows observed: %+v", res.Peer)
	}
}

// killBothReplicasOfStage0 downs nodes 0 and 2 — the hosts of ranks 0 and
// 2, the two data-parallel replicas of pipeline stage 0 — half way through
// iteration 14. Host RAM on those nodes dies too, taking any sheltered
// entries they held.
func killBothReplicasOfStage0() []IterInjection {
	return []IterInjection{
		{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.NodeDown},
		{Iter: 14, Frac: 0.5, Rank: 2, Kind: failure.NodeDown},
	}
}

// TestPeerShelterSurvivesTotalReplicaLoss is the tier's reason to exist:
// a node-level failure destroys every live replica of a shard (no healthy
// rank holds stage 0, so no JIT checkpoint of it can be taken), yet the
// job recovers from the peer-sheltered copies with at most one minibatch
// redone and a bit-identical loss trace.
func TestPeerShelterSurvivesTotalReplicaLoss(t *testing.T) {
	wl := peerWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	for _, policy := range []Policy{PolicyPeerShelter, PolicyJITWithPeer} {
		t.Run(policy.String(), func(t *testing.T) {
			res := mustRun(t, JobConfig{
				WL: wl, Policy: policy, Iters: iters, Seed: 1, CollectLoss: true,
				HangTimeout:  2 * vclock.Second,
				SpareNodes:   2,
				IterFailures: killBothReplicasOfStage0(),
			})
			if !res.Completed {
				t.Fatalf("total replica loss not survived (incarnations=%d)", res.Incarnations)
			}
			if res.Incarnations != 2 {
				t.Fatalf("incarnations = %d, want 2", res.Incarnations)
			}
			if res.ItersExecuted > iters+1 {
				t.Fatalf("redid %d minibatches, want <= 1 (shelter should hold iteration-fresh state)",
					res.ItersExecuted-iters)
			}
			if !lossTracesEqual(t, ref, res.Loss, iters) {
				t.Fatal("loss diverged after peer-shelter recovery")
			}
		})
	}
}

// TestJITWithPeerBeatsDailyFallback pins the headline comparison: after a
// catastrophic failure, UserJIT+PC_1/day rolls back to its last periodic
// checkpoint — with the paper's 1/day cadence, up to a training-day of
// work (here: no periodic checkpoint was due yet, so all progress since
// job start) — while UserJIT+Peer rolls back at most one minibatch.
func TestJITWithPeerBeatsDailyFallback(t *testing.T) {
	wl := peerWL()
	const iters = 20
	daily := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithDaily, Iters: iters, Seed: 1,
		HangTimeout: 2 * vclock.Second,
		SpareNodes:  2,
		// "Daily" scaled to simulation length: longer than the entire job,
		// so — as with a real 24 h cadence early in the day — no periodic
		// checkpoint exists when the catastrophe strikes. (The true 1-day
		// interval would also push the heartbeat watchdog's stall threshold
		// past the horizon; see runOneIncarnation.)
		CkptInterval: vclock.Time(3 * iters * int(wl.Minibatch)),
		IterFailures: killBothReplicasOfStage0(),
	})
	peer := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithPeer, Iters: iters, Seed: 1,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   2,
		IterFailures: killBothReplicasOfStage0(),
	})
	if !daily.Completed || !peer.Completed {
		t.Fatalf("completed: daily=%v peer=%v", daily.Completed, peer.Completed)
	}
	// The daily fallback's interval (24 h) never elapsed in this short
	// job, so the rollback is the full 14 completed iterations — the
	// scaled-down version of "losing up to a day".
	if redo := daily.ItersExecuted - iters; redo < 14 {
		t.Fatalf("UserJIT+PC_1/day redid only %d minibatches — where did stage 0's state come from?", redo)
	}
	if redo := peer.ItersExecuted - iters; redo > 1 {
		t.Fatalf("UserJIT+Peer redid %d minibatches, want <= 1", redo)
	}
}

// TestPeerShelterSurvivesPlainGPUFailure: an ordinary single-GPU hard
// failure under the pure-shelter policy (no disk at all): healthy ranks
// flush to peer memory and recovery costs one minibatch.
func TestPeerShelterSurvivesPlainGPUFailure(t *testing.T) {
	wl := peerWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   1,
		IterFailures: injectAt(wl, 14.5, 3, failure.GPUHard),
	})
	if !res.Completed || res.Incarnations != 2 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if res.ItersExecuted > iters+1 {
		t.Fatalf("redid %d minibatches, want <= 1", res.ItersExecuted-iters)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged")
	}
}

// TestPeerShelterRejectsSingleNode: with one node there is no peer
// failure domain to shelter into; the config is invalid, not silently
// unsafe.
func TestPeerShelterRejectsSingleNode(t *testing.T) {
	wl := testWL()
	wl.Nodes, wl.PerNode = 1, 4
	if _, err := Run(JobConfig{WL: wl, Policy: PolicyPeerShelter, Iters: 2, Seed: 1}); err == nil {
		t.Fatal("single-node peer-shelter config accepted")
	}
}
