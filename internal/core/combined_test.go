package core

import (
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
)

// TestCombinedPolicyJITHandlesCommonFailure: under the combined policy, an
// ordinary single-GPU failure is handled by JIT (one minibatch redone),
// even though periodic checkpoints also exist.
func TestCombinedPolicyJITHandlesCommonFailure(t *testing.T) {
	wl := testWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithDaily, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		// "Daily" scaled to simulation length: every ~6 minibatches.
		CkptInterval: 6 * wl.Minibatch,
		IterFailures: []IterInjection{{Iter: 14, Frac: 0.5, Rank: 3, Kind: failure.GPUHard}},
	})
	if !res.Completed || res.Incarnations != 2 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	// The JIT checkpoint (taken at the failure, iter 14) is newer than
	// the periodic one (~iter 12), so only one minibatch is redone.
	if res.ItersExecuted > iters+1 {
		t.Fatalf("redid %d minibatches; JIT should have won the restore", res.ItersExecuted-iters)
	}
	if res.Accounting.Checkpoints == 0 {
		t.Fatal("periodic companion checkpoints were never taken")
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged")
	}
}

// TestCombinedPolicySurvivesCatastrophicFailure: every replica dies
// simultaneously — the case JIT alone cannot handle (no healthy replica
// remains to checkpoint). The combined policy falls back to the most
// recent periodic checkpoint and completes, redoing the interval since.
func TestCombinedPolicySurvivesCatastrophicFailure(t *testing.T) {
	wl := testWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	kill := make([]IterInjection, wl.Topo.World())
	for r := range kill {
		kill[r] = IterInjection{Iter: 14, Frac: 0.5, Rank: r, Kind: failure.GPUHard}
	}
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyJITWithDaily, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   2, // replaces both lost nodes
		CkptInterval: 6 * wl.Minibatch,
		IterFailures: kill,
	})
	if !res.Completed {
		t.Fatalf("catastrophic failure not survived (incarnations=%d)", res.Incarnations)
	}
	if res.Incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", res.Incarnations)
	}
	// Recovery came from the periodic checkpoint: several minibatches
	// redone (more than JIT's one).
	if redo := res.ItersExecuted - iters; redo < 2 {
		t.Fatalf("redid only %d minibatches — did a JIT checkpoint survive a total loss?", redo)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after periodic-fallback recovery")
	}
}

// TestPlainJITDiesOnCatastrophicFailure: without the periodic companion,
// losing every replica is unrecoverable — the job cannot complete. This
// is the failure mode that motivates the combined configuration.
func TestPlainJITDiesOnCatastrophicFailure(t *testing.T) {
	wl := testWL()
	const iters = 20
	kill := make([]IterInjection, wl.Topo.World())
	for r := range kill {
		kill[r] = IterInjection{Iter: 14, Frac: 0.5, Rank: r, Kind: failure.GPUHard}
	}
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   2,
		IterFailures: kill,
		Horizon:      30 * vclock.Minute,
	})
	if res.Completed && res.ItersExecuted <= iters+1 {
		t.Fatal("plain JIT claimed to survive total replica loss with one-minibatch redo")
	}
	// Acceptable outcomes: the job restarts from scratch (redoing
	// everything) or gives up; either way the one-minibatch JIT guarantee
	// is gone.
	if res.Completed && res.ItersExecuted < iters+14 {
		t.Fatalf("completed having redone only %d minibatches — where did the state come from?",
			res.ItersExecuted-iters)
	}
}
