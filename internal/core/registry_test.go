package core

import (
	"strings"
	"testing"
)

// TestPolicyRegistryComplete pins the shared registry against the enum:
// every runnable policy has exactly one row, every spelling is unique,
// and every front-end resolution path (name, key, alias) round-trips.
func TestPolicyRegistryComplete(t *testing.T) {
	rows := Policies()
	byPolicy := make(map[Policy]int)
	spellings := make(map[string]Policy)
	for _, pi := range rows {
		byPolicy[pi.Policy]++
		if pi.Name != pi.Policy.String() {
			t.Errorf("%v: registry name %q != String %q", pi.Policy, pi.Name, pi.Policy.String())
		}
		for _, s := range append([]string{strings.ToLower(pi.Name), pi.Key}, pi.Aliases...) {
			if prev, dup := spellings[s]; dup && prev != pi.Policy {
				t.Errorf("spelling %q claimed by both %v and %v", s, prev, pi.Policy)
			}
			spellings[s] = pi.Policy
		}
	}
	// The enum is dense from PolicyNone: every value up to the last
	// registry row must appear exactly once.
	for p := PolicyNone; int(p) < len(rows); p++ {
		if byPolicy[p] != 1 {
			t.Errorf("policy %v has %d registry rows, want 1", p, byPolicy[p])
		}
	}
	// Resolution paths agree.
	for _, pi := range rows {
		for _, s := range append([]string{pi.Name, strings.ToUpper(pi.Key)}, pi.Aliases...) {
			got, ok := ParsePolicy(s)
			if !ok || got != pi.Policy {
				t.Errorf("ParsePolicy(%q) = %v,%v, want %v", s, got, ok, pi.Policy)
			}
		}
	}
	if _, ok := ParsePolicy("definitely-not-a-policy"); ok {
		t.Error("ParsePolicy accepted garbage")
	}
	keys := PolicyKeys()
	if keys["jit"] != PolicyTransparentJIT {
		t.Error("historical alias \"jit\" lost")
	}
	aliases := 0
	for _, pi := range rows {
		aliases += len(pi.Aliases)
	}
	if len(keys) != len(rows)+aliases {
		t.Errorf("PolicyKeys has %d entries, want %d (one per key plus aliases)", len(keys), len(rows)+aliases)
	}
	// The two new recovery families are present and runnable by key.
	for key, want := range map[string]Policy{
		"multistep": PolicyMultiStepDisk, "jit+multistep": PolicyJITWithMultiStep, "pipefree": PolicyPipeFree,
	} {
		if keys[key] != want {
			t.Errorf("keys[%q] = %v, want %v", key, keys[key], want)
		}
	}
}
