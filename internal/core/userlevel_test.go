package core

import (
	"fmt"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/intercept"
	"jitckpt/internal/nccl"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// userLevelRig wires a 2-rank user-level stack where rank 1's device can
// be killed to wedge rank 0 at the gradient all-reduce.
type userLevelRig struct {
	env     *vclock.Env
	engine  *nccl.Engine
	devs    [2]*gpu.Device
	layers  [2]*intercept.Layer
	workers [2]*train.Worker
	gils    [2]*vclock.Mutex
	ranks   [2]*UserLevelRank
	store   *checkpoint.Store
	monitor *scheduler.Monitor
}

func newUserLevelRig(t *testing.T) *userLevelRig {
	t.Helper()
	r := &userLevelRig{env: vclock.NewEnv(1)}
	r.engine = nccl.NewEngine(r.env, nccl.DefaultParams())
	r.store = checkpoint.NewStore(r.env, "shared", checkpoint.TmpfsParams())
	r.monitor = scheduler.NewMonitor(r.env)
	topo := train.Topology{D: 2, P: 1, T: 1}
	for i := 0; i < 2; i++ {
		r.devs[i] = gpu.NewDevice(r.env, 0, i, 1<<34)
		drv, err := cuda.NewDriver(r.devs[i], r.engine, train.Kernels(), cuda.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		r.layers[i] = intercept.New(r.env, drv, fmt.Sprintf("rank%d", i), intercept.Config{
			Mode:        intercept.ModeUserLevel,
			HangTimeout: 2 * vclock.Second,
		})
		r.gils[i] = vclock.NewMutex(r.env, fmt.Sprintf("gil%d", i))
		w, err := train.NewWorker(train.Config{
			Name: fmt.Sprintf("w%d", i), JobKey: "job", Rank: i, Topo: topo,
			Model: train.ModelSpec{Layers: 2, Hidden: 8, Seed: 42, ParamBytesPerGPU: 1 << 20, OptBytesPerGPU: 1 << 21},
			Opt:   train.DefaultOptimizer(),
			Step:  train.Uniform(20*vclock.Millisecond, 2),
			API:   r.layers[i], DataSeed: 7, GIL: r.gils[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		r.workers[i] = w
		r.ranks[i] = &UserLevelRank{
			Rank: i, Job: "job", Layer: r.layers[i], Worker: w, GIL: r.gils[i],
			Store: r.store, Monitor: r.monitor, StateBytes: 1 << 21,
		}
		r.layers[i].SetOnFault(r.ranks[i].Hook())
	}
	return r
}

// TestUserLevelHangCheckpointSequence drives §3.2 end to end with explicit
// components: rank 1's GPU dies hard mid-minibatch; rank 0's watchdog
// detects the hung all-reduce while rank 0's main thread is blocked in a
// device call *holding the GIL*; the handler steals the GIL, saves through
// checkpoint mode, commits with metadata, notifies the scheduler, and
// kills the main process.
func TestUserLevelHangCheckpointSequence(t *testing.T) {
	r := newUserLevelRig(t)
	for i := 0; i < 2; i++ {
		i := i
		proc := r.env.Go(fmt.Sprintf("main%d", i), func(p *vclock.Proc) {
			if err := r.workers[i].Setup(p, 0); err != nil {
				t.Errorf("rank %d setup: %v", i, err)
				return
			}
			r.workers[i].RunIters(p, 200) // will not finish
		})
		r.ranks[i].MainProc = proc
	}
	r.env.Go("injector", func(p *vclock.Proc) {
		p.Sleep(vclock.Seconds(2.2)) // a few iterations in
		r.devs[1].InjectHard()
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}

	u0 := r.ranks[0]
	if !u0.CheckpointDone {
		t.Fatalf("healthy rank did not checkpoint (err=%v)", u0.SaveErr)
	}
	if u0.SaveDuration <= 0 {
		t.Fatal("save duration not measured")
	}
	// The checkpoint is complete and readable.
	var valid bool
	var ms *train.ModelState
	r.env.Go("verify", func(p *vclock.Proc) {
		dir := checkpoint.RankDir("job", JITPolicyName, u0.CheckpointIter, 0)
		valid = checkpoint.Valid(p, r.store, dir)
		ms, _ = checkpoint.ReadRank(p, r.store, dir)
	})
	if err := r.env.RunUntil(2 * vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if !valid || ms == nil {
		t.Fatal("JIT checkpoint invalid or unreadable")
	}
	if ms.Iter != u0.CheckpointIter {
		t.Fatalf("checkpoint iter %d != recorded %d", ms.Iter, u0.CheckpointIter)
	}
	// Scheduler saw failure detection and checkpoint completion.
	var sawFail, sawCkpt bool
	for _, ev := range r.monitor.Log() {
		switch ev.Kind {
		case scheduler.EvFailureDetected:
			sawFail = true
		case scheduler.EvCheckpointDone:
			sawCkpt = true
		}
	}
	if !sawFail || !sawCkpt {
		t.Fatalf("monitor events incomplete: fail=%v ckpt=%v", sawFail, sawCkpt)
	}
	// The GIL ends up free (the handler released it after stealing).
	if r.gils[0].Owner() != nil {
		t.Fatalf("GIL still held by %v", r.gils[0].Owner().Name())
	}
}

// TestUserLevelFailingRankDoesNotCheckpoint: the rank whose own GPU died
// must not attempt a save; it only notifies.
func TestUserLevelFailingRankDoesNotCheckpoint(t *testing.T) {
	r := newUserLevelRig(t)
	for i := 0; i < 2; i++ {
		i := i
		proc := r.env.Go(fmt.Sprintf("main%d", i), func(p *vclock.Proc) {
			if err := r.workers[i].Setup(p, 0); err != nil {
				return
			}
			r.workers[i].RunIters(p, 200)
		})
		r.ranks[i].MainProc = proc
	}
	r.env.Go("injector", func(p *vclock.Proc) {
		p.Sleep(vclock.Seconds(2.2))
		r.devs[1].InjectSticky() // rank 1 sees API errors directly
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if r.ranks[1].CheckpointDone {
		t.Fatal("failing rank checkpointed despite a dead GPU")
	}
	if !r.ranks[0].CheckpointDone {
		t.Fatalf("healthy rank did not checkpoint (err=%v)", r.ranks[0].SaveErr)
	}
}

// TestJITCheckpointPathAssembly: the library-side jit_get_checkpoint_path
// resolves the failed rank to its replica's directory.
func TestJITCheckpointPathAssembly(t *testing.T) {
	r := newUserLevelRig(t)
	topo := train.Topology{D: 2, P: 1, T: 1}
	var asm *checkpoint.Assembly
	r.env.Go("seed-and-assemble", func(p *vclock.Proc) {
		ms := &train.ModelState{Iter: 9, Rank: 0, Tensors: nil}
		dir := checkpoint.RankDir("job", JITPolicyName, 9, 0)
		if err := checkpoint.WriteRank(p, r.store, dir, ms, 1<<20); err != nil {
			t.Error(err)
			return
		}
		a, err := JITCheckpointPath(p, r.store, "job", topo)
		if err != nil {
			t.Error(err)
			return
		}
		asm = a
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if asm == nil || asm.Iter != 9 {
		t.Fatalf("assembly = %+v", asm)
	}
	if asm.Dir[1] != checkpoint.RankDir("job", JITPolicyName, 9, 0) {
		t.Fatalf("rank 1 should restore from rank 0's checkpoint: %s", asm.Dir[1])
	}
}
