package core

import (
	"math"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// TestJobLevelDeterminism: two complete runs of the same configuration —
// including a failure and a transparent recovery — must agree on every
// observable: wall time, recovery timings, executed iterations, and the
// full loss trace. This is the property that makes the repository's
// experiments reproducible byte for byte.
func TestJobLevelDeterminism(t *testing.T) {
	wl := testWL()
	cfg := JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: 14, Seed: 9, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: []IterInjection{
			{Iter: 6, Frac: 0.5, Rank: 2, Kind: failure.GPUSticky},
		},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !a.Completed || !b.Completed {
		t.Fatal("runs did not complete")
	}
	if a.WallTime != b.WallTime {
		t.Fatalf("wall time diverged: %v vs %v", a.WallTime, b.WallTime)
	}
	if a.ItersExecuted != b.ItersExecuted {
		t.Fatalf("iterations diverged: %d vs %d", a.ItersExecuted, b.ItersExecuted)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("report counts diverged")
	}
	for i := range a.Reports {
		if a.Reports[i].Total() != b.Reports[i].Total() ||
			a.Reports[i].DetectedAt != b.Reports[i].DetectedAt {
			t.Fatalf("report %d timing diverged", i)
		}
	}
	for it, la := range a.Loss {
		if math.Float32bits(la) != math.Float32bits(b.Loss[it]) {
			t.Fatalf("loss diverged at iter %d", it)
		}
	}
}

// TestFullScaleWorkloadsRun drives the two largest Table 2 configurations
// — GPT2-18B (32 ranks, 2D-4P-4T across 4 nodes) and GPT2-8B (16 ranks)
// — through a transparent recovery each, end to end.
func TestFullScaleWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	for _, name := range []string{"GPT2-8B", "GPT2-18B"} {
		name := name
		t.Run(name, func(t *testing.T) {
			wl, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res := mustRun(t, JobConfig{
				WL: wl, Policy: PolicyTransparentJIT, Iters: 8, Seed: 1, CollectLoss: true,
				IterFailures: []IterInjection{{Iter: 4, Frac: 0.5, Rank: 3, Kind: failure.GPUSticky}},
			})
			if !res.Completed {
				t.Fatalf("%s did not complete; reports=%d", name, len(res.Reports))
			}
			if len(res.Reports) != 1 {
				t.Fatalf("reports = %d", len(res.Reports))
			}
			if len(res.Loss) != 8 {
				t.Fatalf("loss entries = %d", len(res.Loss))
			}
		})
	}
}
