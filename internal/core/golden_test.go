package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files in testdata/")

// goldenCats filters the golden timelines to the recovery narrative:
// run/incarnation/recovery structure, checkpoint activity, failure
// injection/detection, peer sheltering, and recovery phase breakdowns.
// Per-kernel gpu/cuda/nccl noise is covered by the determinism check
// (which uses the unfiltered log) but kept out of the checked-in files.
var goldenCats = []string{"core", "ckpt", "fail", "peer", "pipe", "phase", "elastic"}

// goldenScenarios pin one representative failure-recovery timeline per
// policy family. Each must stay byte-identical across runs and across
// code changes that do not intentionally alter event ordering.
var goldenScenarios = []struct {
	name string
	cfg  func() JobConfig
}{
	{"pc_disk", func() JobConfig {
		wl := testWL()
		return JobConfig{
			WL: wl, Policy: PolicyPCDisk, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			CkptInterval: 5 * wl.Minibatch,
			IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
		}
	}},
	{"userjit", func() JobConfig {
		wl := testWL()
		return JobConfig{
			WL: wl, Policy: PolicyUserJIT, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.3, 1, failure.GPUHard),
		}
	}},
	{"peer", func() JobConfig {
		wl := peerWL()
		return JobConfig{
			WL: wl, Policy: PolicyPeerShelter, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.5, 3, failure.NodeDown),
		}
	}},
	{"jit_peer", func() JobConfig {
		wl := peerWL()
		return JobConfig{
			WL: wl, Policy: PolicyJITWithPeer, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.5, 3, failure.NodeDown),
		}
	}},
	{"peer_rs", func() JobConfig {
		// Erasure-coded shelter: RS(2,1) striping, one node per failure
		// domain; the node loss erases one fragment host, so recovery
		// reconstructs from the surviving data+parity fragments.
		wl := peerWL()
		return JobConfig{
			WL: wl, Policy: PolicyPeerShelter, Iters: 12, Seed: 1,
			Peer: rsParams(), RackSize: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.5, 3, failure.NodeDown),
		}
	}},
	{"multistep", func() JobConfig {
		// Gradient-reconciled multi-step overlapped disk checkpointing:
		// the restore merges slices captured at different iterations and
		// replays retained gradient deltas to the generation target.
		wl := testWL()
		return JobConfig{
			WL: wl, Policy: PolicyMultiStepDisk, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			CkptInterval: 4 * wl.Minibatch, MultiStepSlices: 2,
			IterFailures: injectAt(wl, 8.5, 1, failure.GPUHard),
		}
	}},
	{"pipefree", func() JobConfig {
		// Checkpoint-free pipeline recovery: the node loss takes out one
		// stage, rebuilt from a neighbor's retained bundle with zero
		// checkpoint reads.
		wl := pipeWL()
		return JobConfig{
			WL: wl, Policy: PolicyPipeFree, Iters: 12, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 2,
			IterFailures: injectAt(wl, 5.5, 1, failure.NodeDown),
		}
	}},
	{"transparent", func() JobConfig {
		wl := testWL()
		return JobConfig{
			WL: wl, Policy: PolicyTransparentJIT, Iters: 12, Seed: 1,
			HangTimeout:  2 * vclock.Second,
			IterFailures: injectAt(wl, 5.3, 1, failure.NetworkHang),
		}
	}},
	{"elastic", func() JobConfig {
		// Zero spares: the node failure forces a shrink to half width, the
		// repair at iteration 9 triggers the mid-run expand back to full.
		wl := testWL()
		return JobConfig{
			WL: wl, Policy: PolicyElasticJIT, Iters: 14, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: 0,
			IterFailures: append(injectAt(wl, 5.5, 1, failure.NodeDown),
				IterInjection{Iter: 9, Frac: 0.5, Rank: 0, Kind: failure.NodeRepaired}),
		}
	}},
}

// tracedRun executes cfg with a fresh recorder and returns the recorder
// plus the filtered text timeline.
func tracedRun(t *testing.T, cfg JobConfig) (*trace.Recorder, []byte) {
	t.Helper()
	rec := trace.New()
	cfg.Recorder = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res.Accounting)
	}
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, rec, trace.TextOptions{Cats: goldenCats}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return rec, buf.Bytes()
}

// fullText renders the unfiltered timeline (every category).
func fullText(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, rec, trace.TextOptions{}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTraces runs each pinned scenario twice in-process and
// requires (a) the two complete, unfiltered timelines to be
// byte-identical — tracing itself is deterministic and does not perturb
// virtual time — and (b) the filtered timeline to match the checked-in
// golden in testdata/. Regenerate goldens with:
//
//	go test ./internal/core -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			rec1, filtered := tracedRun(t, sc.cfg())
			rec2, filtered2 := tracedRun(t, sc.cfg())
			if full1, full2 := fullText(t, rec1), fullText(t, rec2); !bytes.Equal(full1, full2) {
				t.Fatalf("two in-process runs produced different traces (%d vs %d bytes):\n%s",
					len(full1), len(full2), firstDiff(full1, full2))
			}
			if !bytes.Equal(filtered, filtered2) {
				t.Fatal("filtered timelines differ between identical runs")
			}

			golden := filepath.Join("testdata", sc.name+".trace")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, filtered, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", golden, len(filtered))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden %s (run with -update to create): %v", golden, err)
			}
			if !bytes.Equal(filtered, want) {
				t.Errorf("trace differs from golden %s (re-run with -update if the change is intentional):\n%s",
					golden, firstDiff(want, filtered))
			}
		})
	}
}

// firstDiff reports the first differing line between two timelines.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}
