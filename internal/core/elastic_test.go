package core

import (
	"fmt"
	"math"
	"testing"

	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// degradedWL is testWL reshaped to the degraded topology an elastic
// shrink of testWL produces: half the data-parallel width on one node.
func degradedWL() workload.Workload {
	wl := testWL()
	wl.Name = "tiny-degraded"
	wl.Nodes, wl.PerNode = 1, 2
	wl.Topo = train.Topology{D: 2, P: 1, T: 1}
	return wl
}

// TestElasticDegradedBitExact is the acceptance scenario: with zero
// spares and a permanent node failure, an elastic job shrinks to half
// width and completes in degraded mode — and its degraded-era losses are
// bit-identical to an oracle job launched at the reduced world size from
// the same restored checkpoint (same store, same step, same
// gradient-accumulation factor).
func TestElasticDegradedBitExact(t *testing.T) {
	const iters = 12
	wl := testWL()
	res, q := reconciled(t, JobConfig{
		WL: wl, Policy: PolicyElasticJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 0,
		IterFailures: injectAt(wl, 5.3, 1, failure.NodeDown),
	})
	if !res.Completed {
		t.Fatalf("elastic job did not complete; incarnations=%d", res.Incarnations)
	}
	if res.Accounting.DegradedIters == 0 {
		t.Fatal("no degraded iterations recorded — the job never shrank")
	}
	if n := len(q.Instants("elastic", "shrink")); n != 1 {
		t.Fatalf("shrink instants = %d, want 1", n)
	}
	// The shrink must have happened inside a recovery episode: after the
	// failure was detected, before the degraded incarnation began (trace
	// invariant 5 checks the ordering; here we check it exists at all).
	if len(q.Instants("fail", "detected")) == 0 {
		t.Fatal("no detection instant before the shrink")
	}

	// Oracle: a job whose FULL shape is the degraded one, with the same
	// accumulation factor, restoring from the elastic run's store.
	oracle := mustRun(t, JobConfig{
		WL: degradedWL(), Policy: PolicyUserJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second,
		Accum:       2,
		DiskStore:   res.Disk,
		// Admit the elastic run's full-width writers during assembly.
		RestoreWriterWorld: wl.Topo.World(),
	})
	if !oracle.Completed || oracle.Incarnations != 1 {
		t.Fatalf("oracle did not complete cleanly; incarnations=%d", oracle.Incarnations)
	}
	// The oracle's first executed iteration is the restore point both runs
	// resumed from.
	restored := iters
	for i := range oracle.Loss {
		if i < restored {
			restored = i
		}
	}
	if restored >= iters-3 {
		t.Fatalf("restore point %d leaves too little degraded era to compare", restored)
	}
	// Compare strictly after the restore point: the elastic run may have
	// recorded the restore iteration's loss at full width before the
	// failure killed the reference rank.
	for i := restored + 1; i < iters; i++ {
		ev, eok := res.Loss[i]
		ov, ook := oracle.Loss[i]
		if !eok || !ook {
			t.Fatalf("iter %d: loss missing (elastic=%v oracle=%v)", i, eok, ook)
		}
		if math.Float32bits(ev) != math.Float32bits(ov) {
			t.Fatalf("iter %d: elastic loss %v != oracle loss %v (not bit-exact)", i, ev, ov)
		}
	}
}

// TestElasticExpandAfterRepair drives the full state machine: shrink on a
// permanent node failure with no spares, run degraded, then re-expand to
// full width when the failure plan repairs the node mid-run.
func TestElasticExpandAfterRepair(t *testing.T) {
	const iters = 20
	wl := testWL()
	inj := append(injectAt(wl, 5.3, 1, failure.NodeDown),
		IterInjection{Iter: 9, Frac: 0.5, Rank: 0, Kind: failure.NodeRepaired})
	res, q := reconciled(t, JobConfig{
		WL: wl, Policy: PolicyElasticJIT, Iters: iters, Seed: 1, CollectLoss: true,
		HangTimeout: 2 * vclock.Second, SpareNodes: 0,
		IterFailures: inj,
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if n := len(q.Instants("elastic", "shrink")); n != 1 {
		t.Fatalf("shrink instants = %d, want 1", n)
	}
	if n := len(q.Instants("elastic", "expand")); n != 1 {
		t.Fatalf("expand instants = %d, want 1", n)
	}
	if res.Accounting.DegradedIters == 0 {
		t.Fatal("no degraded iterations recorded")
	}
	// Completion at full width: three incarnations (full, degraded,
	// re-expanded), and every loss iteration present.
	if res.Incarnations != 3 {
		t.Fatalf("incarnations = %d, want 3 (full, degraded, expanded)", res.Incarnations)
	}
	for i := 0; i < iters; i++ {
		if _, ok := res.Loss[i]; !ok {
			t.Fatalf("iter %d: no loss recorded", i)
		}
	}
}

// TestTransparentNoViablePlacementEager is the satellite fix: with spares
// exhausted, the transparent hard-error path must classify the episode as
// no-viable-placement eagerly — before burning JIT-checkpoint, CRIU, and
// restore time on attempts that can never assemble a placement — and mark
// it elastic-eligible.
func TestTransparentNoViablePlacementEager(t *testing.T) {
	wl := testWL()
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyTransparentJIT, Iters: 12, Seed: 1,
		HangTimeout: 2 * vclock.Second, SpareNodes: 0,
		IterFailures: injectAt(wl, 5.3, 1, failure.NodeDown),
	})
	if res.Completed {
		t.Fatal("job completed despite an unrecoverable capacity loss")
	}
	if len(res.Reports) == 0 {
		t.Fatal("no recovery reports")
	}
	last := res.Reports[len(res.Reports)-1]
	if last.Kind != KindNoViablePlacement {
		t.Fatalf("kind = %q, want %q", last.Kind, KindNoViablePlacement)
	}
	if !last.Terminal() || !last.ElasticEligible() {
		t.Fatalf("no-viable-placement must be terminal and elastic-eligible: %+v", last)
	}
	if last.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (eager classification, no retries)", last.Attempts)
	}
}

// TestElasticChaosSoakGrid is the chaos-soak variant for the elastic
// path: zero spares, a permanent node failure, and a RackDown striking
// mid-restore of the degraded incarnation — nested shrinks. Every run
// must satisfy the trace invariants (checkedRun) and reconcile its
// accounting exactly against the trace at whatever world size it ends at;
// the repaired variants must additionally re-expand and complete at full
// width.
func TestElasticChaosSoakGrid(t *testing.T) {
	const iters = 18
	wl := testWL()
	wl.Name = "tiny-4n"
	wl.Nodes, wl.PerNode = 4, 1

	// Iteration-anchored repairs exercise the mid-run expand request; the
	// absolute-time plan exercises AwaitRepair (the peer variant cannot
	// shrink below two failure domains, so it waits for capacity instead
	// of training through the repair iteration).
	repairIter := []IterInjection{
		{Iter: 11, Frac: 0.3, Rank: 0, Kind: failure.NodeRepaired},
		{Iter: 11, Frac: 0.6, Rank: 0, Kind: failure.NodeRepaired},
		{Iter: 12, Frac: 0.3, Rank: 0, Kind: failure.NodeRepaired},
	}
	// The three repairs land close together so full capacity returns while
	// the degraded restart still has iterations left to train through.
	repairPlan := failure.Plan{Injections: []failure.Injection{
		{At: 300 * vclock.Second, Rank: 0, Kind: failure.NodeRepaired},
		{At: 300*vclock.Second + 200*vclock.Millisecond, Rank: 0, Kind: failure.NodeRepaired},
		{At: 300*vclock.Second + 400*vclock.Millisecond, Rank: 0, Kind: failure.NodeRepaired},
	}}
	cases := []struct {
		name    string
		policy  Policy
		repairs []IterInjection
		plan    failure.Plan
		// wantFull: the run must re-expand and complete at full width.
		// Otherwise it must either complete degraded or stall waiting at
		// the horizon — both with exact accounting.
		wantFull bool
	}{
		{"jit-degraded-finish", PolicyElasticJIT, nil, failure.Plan{}, false},
		{"jit-repair-expand", PolicyElasticJIT, repairIter, failure.Plan{}, true},
		{"peer-degraded", PolicyElasticPeer, nil, failure.Plan{}, false},
		{"peer-repair-expand", PolicyElasticPeer, nil, repairPlan, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inj := append(injectAt(wl, float64(iters)/3, 3, failure.NodeDown), tc.repairs...)
			res, q := reconciled(t, JobConfig{
				WL: wl, Policy: tc.policy, Iters: iters, Seed: 1, CollectLoss: true,
				HangTimeout: 2 * vclock.Second, SpareNodes: 0,
				IterFailures: inj,
				Failures:     tc.plan,
				Chaos: &ChaosConfig{
					PhaseInjections: []failure.PhaseInjection{{
						Phase:      failure.PhaseRestore,
						Rank:       -1, // first rank restoring in the degraded incarnation
						Occurrence: 2,  // occurrence 1 is the degraded restore wave's start
						Delay:      100 * vclock.Millisecond,
						Target:     -1,
						Kind:       failure.RackDown,
					}},
				},
			})
			shrinks := len(q.Instants("elastic", "shrink"))
			expands := len(q.Instants("elastic", "expand"))
			if shrinks == 0 {
				t.Fatal("no elastic shrink recorded")
			}
			if tc.wantFull {
				if !res.Completed {
					t.Fatalf("repaired run did not complete; incarnations=%d shrinks=%d expands=%d",
						res.Incarnations, shrinks, expands)
				}
				if expands == 0 {
					t.Fatal("repaired run never re-expanded")
				}
				for i := 0; i < iters; i++ {
					if _, ok := res.Loss[i]; !ok {
						t.Fatalf("iter %d: no loss recorded", i)
					}
				}
			}
			if res.Completed && res.Accounting.DegradedIters == 0 {
				t.Fatal("completed without any degraded iterations despite capacity loss")
			}
			t.Logf("%s: completed=%v incarnations=%d shrinks=%d expands=%d acct=%s",
				tc.name, res.Completed, res.Incarnations, shrinks, expands, res.Accounting.String())
		})
	}
}

// TestElasticPolicyNamespaceIsolated ensures the planned elastic saves
// land in their own namespace and the combined restore path prefers the
// newest assemblable iteration across namespaces.
func TestElasticPolicyNamespaceIsolated(t *testing.T) {
	const iters = 20
	wl := testWL()
	inj := append(injectAt(wl, 5.3, 1, failure.NodeDown),
		IterInjection{Iter: 9, Frac: 0.5, Rank: 0, Kind: failure.NodeRepaired})
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyElasticJIT, Iters: iters, Seed: 1,
		HangTimeout: 2 * vclock.Second, SpareNodes: 0,
		IterFailures: inj,
	})
	if !res.Completed {
		t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
	}
	if len(res.Disk.List(fmt.Sprintf("job/ckpt/%s/", ElasticPolicyName))) == 0 {
		t.Fatal("no elastic-namespace checkpoints written by the expand stop")
	}
	if len(res.Disk.List(fmt.Sprintf("job/ckpt/%s/", JITPolicyName))) == 0 {
		t.Fatal("JIT-namespace checkpoints missing")
	}
}
