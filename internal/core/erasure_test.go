package core

import (
	"strings"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/peerckpt"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// rsParams returns the headline stripe geometry: RS(2,1) shelters each
// rank at 1.5× overhead and survives any single fragment-host loss on
// top of the owner's own domain.
func rsParams() *peerckpt.Params {
	return &peerckpt.Params{DataShards: 2, ParityShards: 1}
}

// rsWL is an 8-node, 1-GPU-per-node, 2D×4P workload. Stage 0's two
// data-parallel replicas are ranks 0 and 4 (nodes 0 and 4): taking both
// nodes destroys every live copy of stage 0, and the six remaining nodes
// leave room for a stripe to lose fragment hosts while staying ≥ k.
func rsWL() workload.Workload {
	wl := testWL()
	wl.Name = "tiny-rs"
	wl.Nodes, wl.PerNode = 8, 1
	wl.Topo = train.Topology{D: 2, P: 4, T: 1}
	wl.Layers = 4
	return wl
}

// TestFailureFreeStripedRun: striping must be pure overhead-accounting in
// the happy path — bit-identical loss, no critical-path stall versus
// plain user-level JIT, and sheltered bytes exactly (k+m)/k× the
// protected bytes (the whole point versus replication's Copies×).
func TestFailureFreeStripedRun(t *testing.T) {
	wl := peerWL()
	const iters = 12
	ref := referenceLoss(t, wl, iters)
	base := mustRun(t, JobConfig{WL: wl, Policy: PolicyUserJIT, Iters: iters, Seed: 1})
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
		Peer: rsParams(), RackSize: 1,
	})
	if !res.Completed || res.Incarnations != 1 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged under striped sheltering")
	}
	if res.Peer.Encodes == 0 || res.Peer.EncodeTime == 0 {
		t.Fatalf("no stripe encodes recorded: %+v", res.Peer)
	}
	if res.Peer.Decodes != 0 {
		t.Fatalf("failure-free run decoded parity: %+v", res.Peer)
	}
	if res.Peer.BytesProtected == 0 {
		t.Fatalf("nothing protected: %+v", res.Peer)
	}
	overhead := float64(res.Peer.BytesSheltered) / float64(res.Peer.BytesProtected)
	if overhead > 1.6 {
		t.Fatalf("stripe overhead %.2f× exceeds 1.6× (RS(2,1) should be ≤1.5×)", overhead)
	}
	if res.WallTime > base.WallTime+vclock.Millisecond {
		t.Fatalf("striping stalled training: %v vs %v", res.WallTime, base.WallTime)
	}
}

// TestStripedSurvivesExactlyMDomainLosses is the acceptance soak: nodes
// 0 and 4 (both replicas of stage 0) and node 2 (a data-fragment host of
// rank 0's stripe) die at once — three whole failure domains. Stage 0's
// state survives only as stripe fragments, one of which must be decoded
// from parity. The run is checked against the trace invariants and must
// reconcile its accounting exactly.
func TestStripedSurvivesExactlyMDomainLosses(t *testing.T) {
	wl := rsWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	res, q := reconciled(t, JobConfig{
		WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
		Peer: rsParams(), RackSize: 1,
		HangTimeout: 2 * vclock.Second,
		SpareNodes:  3,
		IterFailures: []IterInjection{
			{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.NodeDown},
			{Iter: 14, Frac: 0.5, Rank: 4, Kind: failure.NodeDown},
			{Iter: 14, Frac: 0.5, Rank: 2, Kind: failure.NodeDown},
		},
	})
	if !res.Completed || res.Incarnations != 2 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if res.ItersExecuted > iters+1 {
		t.Fatalf("redid %d minibatches, want <= 1 (stripes hold iteration-fresh state)",
			res.ItersExecuted-iters)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after reconstruction")
	}
	if res.Peer.Decodes == 0 || res.Peer.DecodeTime == 0 {
		t.Fatalf("recovery never decoded parity: %+v", res.Peer)
	}
	if len(q.Spans("peer", "reconstruct")) == 0 {
		t.Fatal("no reconstruct span traced")
	}
}

// TestStripedFragmentCorruptionDecodes: storage chaos bit-flips rank 0's
// data fragment 0 at write time. The per-fragment checksum must feed the
// erasure list — the probe still passes on the surviving k fragments,
// and the load decodes the missing data shard from parity.
func TestStripedFragmentCorruptionDecodes(t *testing.T) {
	wl := rsWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)
	res := mustRun(t, JobConfig{
		WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
		Peer: rsParams(), RackSize: 1,
		HangTimeout: 2 * vclock.Second,
		SpareNodes:  2,
		IterFailures: []IterInjection{
			{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.NodeDown},
			{Iter: 14, Frac: 0.5, Rank: 4, Kind: failure.NodeDown},
		},
		Chaos: &ChaosConfig{
			ShelterChaos: func(path string) checkpoint.WriteOutcome {
				if strings.Contains(path, "rank0000") && strings.Contains(path, "frag000.bin") {
					return checkpoint.WriteBitFlip
				}
				return checkpoint.WriteOK
			},
		},
	})
	if !res.Completed || res.Incarnations != 2 {
		t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
	}
	if res.ItersExecuted > iters+1 {
		t.Fatalf("redid %d minibatches, want <= 1", res.ItersExecuted-iters)
	}
	if !lossTracesEqual(t, ref, res.Loss, iters) {
		t.Fatal("loss diverged after corrupt-fragment decode")
	}
	if res.Peer.FragErasures == 0 {
		t.Fatalf("corrupt fragment never hit the erasure list: %+v", res.Peer)
	}
	if res.Peer.Decodes == 0 {
		t.Fatalf("no parity decode recorded: %+v", res.Peer)
	}
}

// TestStripedRackDown drives whole-rack losses against a rack-aware
// stripe layout (rackSize=2, four racks): a RackDown plus a NodeDown
// that together destroy both stage-0 replicas cost each surviving stripe
// at most m fragment domains, so recovery still comes from fragments;
// adding a second RackDown exceeds every stripe's parity budget, the
// entries classify peer-unrecoverable, and the run must fall back to the
// newest valid disk generation (the JIT checkpoints from an earlier
// failure) instead of wedging.
func TestStripedRackDown(t *testing.T) {
	wl := rsWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)

	t.Run("exactly-m", func(t *testing.T) {
		res := mustRun(t, JobConfig{
			WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
			Peer:        rsParams(), // default RackSize 2: racks {0,1}..{6,7}
			HangTimeout: 2 * vclock.Second,
			SpareNodes:  3,
			IterFailures: []IterInjection{
				{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.RackDown},
				{Iter: 14, Frac: 0.5, Rank: 4, Kind: failure.NodeDown},
			},
		})
		if !res.Completed || res.Incarnations != 2 {
			t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
		}
		if res.ItersExecuted > iters+1 {
			t.Fatalf("redid %d minibatches, want <= 1", res.ItersExecuted-iters)
		}
		if !lossTracesEqual(t, ref, res.Loss, iters) {
			t.Fatal("loss diverged after rack-loss recovery")
		}
	})

	t.Run("beyond-m-disk-fallback", func(t *testing.T) {
		// Rack-down ranks 0, 1, 3 and 5 together level four of the five
		// racks the restarted placement spans: every stripe keeps at most
		// one fragment (< k), beyond any parity budget.
		inj := append(injectAt(wl, 8.5, 1, failure.GPUHard), // forces a full JIT generation to disk
			IterInjection{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.RackDown},
			IterInjection{Iter: 14, Frac: 0.5, Rank: 1, Kind: failure.RackDown},
			IterInjection{Iter: 14, Frac: 0.5, Rank: 3, Kind: failure.RackDown},
			IterInjection{Iter: 14, Frac: 0.5, Rank: 5, Kind: failure.RackDown},
		)
		res := mustRun(t, JobConfig{
			WL: wl, Policy: PolicyJITWithPeer, Iters: iters, Seed: 1, CollectLoss: true,
			Peer:         rsParams(),
			HangTimeout:  2 * vclock.Second,
			SpareNodes:   8,
			IterFailures: inj,
		})
		if !res.Completed {
			t.Fatalf("beyond-budget rack loss not survived (incarnations=%d)", res.Incarnations)
		}
		if !lossTracesEqual(t, ref, res.Loss, iters) {
			t.Fatal("loss diverged after disk-generation fallback")
		}
		// Restoring from stripes would redo ≤ 1 minibatch; the disk
		// generation from the iteration-8 failure is several older.
		if redo := res.ItersExecuted - iters; redo < 4 {
			t.Fatalf("redid only %d minibatches — where did stage 0's post-iter-8 state come from?", redo)
		}
	})
}

// TestStripedPhaseFaults lands hard faults inside the two new
// fault-injection phases: mid-encode (the background stripe encode) and
// mid-reconstruction (the restore-path parity decode). Both must cost at
// most an incarnation, never state.
func TestStripedPhaseFaults(t *testing.T) {
	wl := rsWL()
	const iters = 20
	ref := referenceLoss(t, wl, iters)

	t.Run("mid-encode", func(t *testing.T) {
		res := mustRun(t, JobConfig{
			WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
			Peer: rsParams(), RackSize: 1,
			HangTimeout: 2 * vclock.Second,
			SpareNodes:  2,
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseEncode,
					Rank:       -1, // the first rank to start encoding
					Occurrence: 8,  // well into steady state
					Delay:      vclock.Millisecond,
					Target:     -1,
					Kind:       failure.GPUHard,
				}},
			},
		})
		if !res.Completed || res.Incarnations < 2 {
			t.Fatalf("completed=%v incarnations=%d", res.Completed, res.Incarnations)
		}
		if !lossTracesEqual(t, ref, res.Loss, iters) {
			t.Fatal("loss diverged after mid-encode fault")
		}
	})

	t.Run("mid-reconstruction", func(t *testing.T) {
		res := mustRun(t, JobConfig{
			WL: wl, Policy: PolicyPeerShelter, Iters: iters, Seed: 1, CollectLoss: true,
			Peer: rsParams(), RackSize: 1,
			HangTimeout: 2 * vclock.Second,
			SpareNodes:  4,
			IterFailures: []IterInjection{
				{Iter: 14, Frac: 0.5, Rank: 0, Kind: failure.NodeDown},
				{Iter: 14, Frac: 0.5, Rank: 4, Kind: failure.NodeDown},
				{Iter: 14, Frac: 0.5, Rank: 2, Kind: failure.NodeDown},
			},
			Chaos: &ChaosConfig{
				PhaseInjections: []failure.PhaseInjection{{
					Phase:      failure.PhaseReconstruct,
					Rank:       -1, // whoever reconstructs first
					Occurrence: 1,
					Delay:      vclock.Millisecond, // mid-decode, before restore completes
					Target:     -1,
					Kind:       failure.GPUHard,
				}},
			},
		})
		if !res.Completed {
			t.Fatalf("job did not complete; incarnations=%d", res.Incarnations)
		}
		if res.Incarnations < 3 {
			t.Fatalf("incarnations = %d, want ≥3 (the mid-reconstruction fault must cost one)", res.Incarnations)
		}
		if !lossTracesEqual(t, ref, res.Loss, iters) {
			t.Fatal("loss diverged after mid-reconstruction fault")
		}
	})
}

// TestElasticStripedShrinkRestripes: when spares run out the elastic
// peer policy shrinks, and the next incarnation's StripePlan re-stripes
// over the smaller placement — with too few nodes to keep fragments in
// distinct domains, it degrades with a traced warning rather than
// refusing to shelter.
func TestElasticStripedShrinkRestripes(t *testing.T) {
	wl := testWL()
	wl.Name = "tiny-4n"
	wl.Nodes, wl.PerNode = 4, 1
	const iters = 18
	res, q := reconciled(t, JobConfig{
		WL: wl, Policy: PolicyElasticPeer, Iters: iters, Seed: 1, CollectLoss: true,
		Peer: rsParams(), RackSize: 1,
		HangTimeout:  2 * vclock.Second,
		SpareNodes:   0,
		IterFailures: injectAt(wl, 6.4, 3, failure.NodeDown),
	})
	if !res.Completed {
		t.Fatalf("degraded run did not complete; incarnations=%d", res.Incarnations)
	}
	if len(q.Instants("elastic", "shrink")) == 0 {
		t.Fatal("no elastic shrink recorded")
	}
	// The shrunken incarnation kept striping: encodes continued after the
	// shrink, and the thinner placement produced a degradation warning.
	if res.Peer.Encodes == 0 {
		t.Fatalf("no encodes recorded: %+v", res.Peer)
	}
	if len(q.Instants("peer", "stripe-degraded")) == 0 {
		t.Fatal("no stripe-degraded warning traced for the narrow placement")
	}
	for i := 0; i < iters; i++ {
		if _, ok := res.Loss[i]; !ok {
			t.Fatalf("iter %d: no loss recorded", i)
		}
	}
}
