package core

import (
	"errors"

	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
)

// Capacity is the node-allocation surface a job runs against. A
// single-job run owns a whole scheduler.Pool; a fleet job holds a lease
// from the cluster arbiter, which satisfies the same interface but
// arbitrates the shared pool across tenants (priority reservations,
// preemption pressure, fleet accounting). The harness and the transparent
// coordinator are indifferent to which one they get.
type Capacity interface {
	// Allocate reserves n healthy free nodes, skipping excluded IDs.
	Allocate(n int, exclude map[int]bool) ([]*gpu.Node, error)
	// Release returns nodes to the free pool.
	Release(nodes []*gpu.Node)
	// ReleaseByID returns nodes by ID (migration paths hold IDs).
	ReleaseByID(ids ...int)
	// MarkFailed permanently excludes a node (until repaired).
	MarkFailed(nodeID int)
	// MarkRepaired re-admits a previously failed node.
	MarkRepaired(nodeID int)
	// FreeHealthy reports how many nodes remain allocatable — for a
	// lease, net of capacity reserved for higher-priority tenants.
	FreeHealthy() int
}

var _ Capacity = (*scheduler.Pool)(nil)

// SharedSim plugs a job into a cluster-owned simulation instead of a
// private one. The ownership inversion of the fleet model lives here:
// the cluster owns the vclock environment, the nodes and the allocator;
// the job merely leases capacity through it. Everything else a job needs
// (collective engine, checkpoint stores, monitor, failure injector)
// remains private per job.
type SharedSim struct {
	// Env is the cluster's simulation environment. The job must not call
	// RunUntil on it; the cluster drives time.
	Env *vclock.Env
	// Nodes is the cluster's node set — the job's failure-injection and
	// shelter bookkeeping resolve against it.
	Nodes []*gpu.Node
	// Capacity is the job's lease on the cluster allocator.
	Capacity Capacity
	// AwaitCapacity blocks until cluster capacity may have changed (a
	// release, repair, or demand change) or the timeout elapses. The
	// harness calls it instead of giving up when an allocation is denied.
	AwaitCapacity func(p *vclock.Proc, timeout vclock.Time) bool
	// RackSize is the failure-domain width in nodes (0 = 2, the
	// single-job harness convention rack = nodeID/2).
	RackSize int
	// Label names the job in traces and debug logs.
	Label string
	// OnDone observes the job's final result (called once, inside the
	// simulation, at the virtual time the job finished or gave up).
	OnDone func(res *RunResult)
	// OnInject observes the job's applied failure injections, letting the
	// cluster account for node state changed behind the allocator's back
	// (a per-job NodeDown plan fails shared hardware directly).
	OnInject func(inj failure.Injection)
	// Stream, when set, serves the shared simulation live: StartJob
	// attaches it as the environment recorder's streaming sink (idempotent
	// — cluster.Run already does this when its Config.Stream is set), so
	// every tenant admitted through this SharedSim is observable over
	// `jitsim -serve` while the fleet is still running.
	Stream *tracestream.Stream
}

// JobHandle is the cluster's control surface for one running fleet job.
// All methods must be called from inside the shared simulation.
type JobHandle struct {
	h *harness
}

// StartJob launches a job inside a shared cluster simulation and returns
// its handle. The job runs concurrently with every other job in the
// cluster; its result becomes available (and Shared.OnDone fires) when it
// completes, gives up, or ForceFinish is called at the cluster horizon.
func StartJob(cfg JobConfig) (*JobHandle, error) {
	if cfg.Shared == nil {
		return nil, errors.New("core: StartJob requires JobConfig.Shared (use Run for single-job simulations)")
	}
	s := cfg.Shared
	if s.Env == nil || s.Capacity == nil || len(s.Nodes) == 0 || s.AwaitCapacity == nil {
		return nil, errors.New("core: SharedSim needs Env, Nodes, Capacity and AwaitCapacity")
	}
	if s.Stream != nil {
		if rec := trace.Of(s.Env); rec != nil {
			rec.SetSink(s.Stream)
		}
	}
	if err := prepare(&cfg); err != nil {
		return nil, err
	}
	h := newHarness(cfg)
	if err := h.setup(); err != nil {
		return nil, err
	}
	hd := &JobHandle{h: h}
	h.handle = hd
	if err := h.launch(); err != nil {
		return nil, err
	}
	return hd, nil
}

// Done reports whether the job has finished (result available).
func (hd *JobHandle) Done() bool { return hd.h.finished }

// Result returns the job's final result, or nil while it is running.
func (hd *JobHandle) Result() *RunResult {
	if !hd.h.finished {
		return nil
	}
	return hd.h.res
}

// Label returns the job's fleet label.
func (hd *JobHandle) Label() string { return hd.h.label }

// RequestYield asks an elastic job to shrink so a higher-priority tenant
// can claim its nodes: the job stops cleanly a couple of iterations ahead
// (persisting state under the elastic namespace) and its next incarnation
// re-allocates under the arbiter's reservations — which deny it the full
// width, taking the normal elastic shrink path. It reports false when the
// job cannot yield: not elastic, already yielding, no narrower viable
// shape, or close enough to completion that finishing frees the nodes
// sooner.
func (hd *JobHandle) RequestYield() bool { return hd.h.requestYield() }

// NoteRepairCapacity tells a degraded job that cluster repairs may have
// restored enough capacity to re-expand; the job schedules a mid-run
// expand if so. The cluster calls it after NodeRepaired events (the
// single-job harness wires the same logic to its own injector).
func (hd *JobHandle) NoteRepairCapacity() { hd.h.noteRepairCapacity() }

// NoteNodesLost tells the job that cluster-scoped failures destroyed
// nodes it leases: peer-sheltered entries on them are gone immediately.
// The workers themselves notice organically (their devices are dead).
func (hd *JobHandle) NoteNodesLost(nodeIDs ...int) { hd.h.noteNodesLost(nodeIDs) }

// ForceFinish finalizes a job that is still running at the cluster
// horizon (accounting closes exactly at the current virtual time, with
// Completed=false). No-op on a finished job.
func (hd *JobHandle) ForceFinish() { hd.h.jobDone() }
