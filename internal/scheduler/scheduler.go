// Package scheduler models the cluster control plane the paper's recovery
// flows lean on: a node pool with spares and failure exclusion, rank
// placement, the monitor that healthy ranks notify after JIT checkpoints
// (§3.3: the scheduler waits for at least one data-parallel replica of
// every pipeline stage and model-parallel partition before restarting),
// and the CRIU-style process checkpoint used to migrate worker CPU state
// to replacement nodes (§4.3).
package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"jitckpt/internal/gpu"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// ErrNoCapacity is returned when the pool cannot satisfy an allocation.
var ErrNoCapacity = errors.New("scheduler: not enough healthy free nodes")

// Pool manages nodes, including spares and failed-node exclusion.
//
// The pool keeps a sorted free index (positions into nodes of every node
// that is neither leased out nor excluded), so Allocate and FreeHealthy
// scan only the free set instead of the whole cluster — on a fleet-scale
// pool where most nodes are held by other jobs, the old full scan made
// every allocation O(cluster) and thousand-job admission quadratic.
// Nodes are still handed out in slice order (lowest position first),
// preserving the historical allocation order exactly.
type Pool struct {
	env    *vclock.Env
	nodes  []*gpu.Node
	inUse  map[int]bool
	failed map[int]bool
	pos    map[int]int // node ID -> index into nodes
	free   []int       // sorted indices of nodes neither inUse nor failed
	inFree []bool      // by index: membership in free
}

// NewPool wraps a cluster's nodes.
func NewPool(env *vclock.Env, nodes []*gpu.Node) *Pool {
	p := &Pool{
		env:    env,
		nodes:  nodes,
		inUse:  make(map[int]bool),
		failed: make(map[int]bool),
		pos:    make(map[int]int, len(nodes)),
		free:   make([]int, len(nodes)),
		inFree: make([]bool, len(nodes)),
	}
	for i, n := range nodes {
		p.pos[n.ID] = i
		p.free[i] = i
		p.inFree[i] = true
	}
	return p
}

// hasHardDevice reports whether any of the node's GPUs is hard-failed.
func hasHardDevice(node *gpu.Node) bool {
	for _, d := range node.Devices {
		if d.Health() == gpu.Hard {
			return true
		}
	}
	return false
}

// compactFree drops entries whose inFree flag was cleared, keeping the
// index sorted. O(free), allocation-free.
func (p *Pool) compactFree() {
	w := 0
	for _, idx := range p.free {
		if p.inFree[idx] {
			p.free[w] = idx
			w++
		}
	}
	p.free = p.free[:w]
}

// insertFree re-admits a node to the free index (no-op if it is already
// there, still leased, or still excluded).
func (p *Pool) insertFree(nodeID int) {
	idx, ok := p.pos[nodeID]
	if !ok || p.inFree[idx] || p.inUse[nodeID] || p.failed[nodeID] {
		return
	}
	p.inFree[idx] = true
	i := sort.SearchInts(p.free, idx)
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = idx
}

// Allocate reserves n healthy free nodes, skipping excluded IDs.
func (p *Pool) Allocate(n int, exclude map[int]bool) ([]*gpu.Node, error) {
	got := make([]*gpu.Node, 0, n)
	removed := false
	for _, idx := range p.free {
		if len(got) == n {
			break
		}
		node := p.nodes[idx]
		if exclude[node.ID] || node.Failed {
			// node.Failed is set by failure injectors behind the pool's
			// back and cleared again on repair: skip, but keep the node in
			// the free index so a repair re-admits it for free.
			continue
		}
		// A node with any hard-failed GPU is not schedulable: lazy
		// discovery excludes it permanently (until MarkRepaired).
		if hasHardDevice(node) {
			p.failed[node.ID] = true
			p.inFree[idx] = false
			removed = true
			continue
		}
		got = append(got, node)
	}
	if len(got) < n {
		if removed {
			p.compactFree()
		}
		return nil, fmt.Errorf("%w: want %d, have %d", ErrNoCapacity, n, len(got))
	}
	for _, node := range got {
		p.inUse[node.ID] = true
		p.inFree[p.pos[node.ID]] = false
	}
	p.compactFree()
	return got, nil
}

// Release returns nodes to the free pool.
func (p *Pool) Release(nodes []*gpu.Node) {
	for _, n := range nodes {
		delete(p.inUse, n.ID)
		p.insertFree(n.ID)
	}
}

// ReleaseByID returns nodes to the free pool by ID (migration paths hold
// node IDs, not node pointers).
func (p *Pool) ReleaseByID(ids ...int) {
	for _, id := range ids {
		delete(p.inUse, id)
		p.insertFree(id)
	}
}

// MarkFailed permanently excludes a node.
func (p *Pool) MarkFailed(nodeID int) {
	p.failed[nodeID] = true
	delete(p.inUse, nodeID)
	if idx, ok := p.pos[nodeID]; ok && p.inFree[idx] {
		p.inFree[idx] = false
		p.compactFree()
	}
	p.env.Tracef("scheduler: node %d marked failed", nodeID)
}

// MarkRepaired re-admits a previously failed node after its hardware was
// replaced. Callers must repair the node's devices first (gpu.Device
// Repair), or Allocate will immediately re-exclude it.
func (p *Pool) MarkRepaired(nodeID int) {
	delete(p.failed, nodeID)
	p.insertFree(nodeID)
	p.env.Tracef("scheduler: node %d repaired and re-admitted", nodeID)
}

// FreeHealthy returns how many nodes remain allocatable.
func (p *Pool) FreeHealthy() int {
	n := 0
	for _, idx := range p.free {
		if !p.nodes[idx].Failed {
			n++
		}
	}
	return n
}

// Placement maps ranks to devices.
type Placement map[int]*gpu.Device

// Place assigns world ranks to devices across nodes, rank-major.
func Place(nodes []*gpu.Node, world int) (Placement, error) {
	pl := make(Placement, world)
	r := 0
	for _, node := range nodes {
		for _, d := range node.Devices {
			if r == world {
				return pl, nil
			}
			pl[r] = d
			r++
		}
	}
	if r < world {
		return nil, fmt.Errorf("scheduler: %d devices for %d ranks", r, world)
	}
	return pl, nil
}

// NodeOf returns the node ID hosting a rank.
func (pl Placement) NodeOf(rank int) int { return pl[rank].NodeID }

// ErrNoPeerHost is returned when a rank cannot be assigned any shelter
// host outside its own failure domain.
var ErrNoPeerHost = errors.New("scheduler: no peer host outside the rank's failure domain")

// PeerPlan assigns each rank the nodes that will shelter its peer-replicated
// checkpoint entries in CPU memory: `copies` hosts per rank, walking the
// job's nodes ring-wise from the rank's own node. Placement is
// failure-domain aware at two strengths: a shelter host is *never* the
// rank's own node (losing one host must not take a rank's state and its
// shelter copy together), and when enough nodes exist it also avoids every
// node hosting a data-parallel replica of the rank's position — so a burst
// of node losses that destroys all replicas of a shard still leaves a
// sheltered copy elsewhere. It fails with ErrNoPeerHost when the job spans
// too few nodes to place even the weaker guarantee.
func PeerPlan(pl Placement, topo train.Topology, copies int) (map[int][]int, error) {
	if copies <= 0 {
		copies = 1
	}
	nodeSet := make(map[int]bool)
	for r := 0; r < topo.World(); r++ {
		nodeSet[pl.NodeOf(r)] = true
	}
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	idx := make(map[int]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}

	plan := make(map[int][]int, topo.World())
	for r := 0; r < topo.World(); r++ {
		own := pl.NodeOf(r)
		avoid := map[int]bool{own: true}
		for _, rr := range topo.ReplicaRanks(r) {
			avoid[pl.NodeOf(rr)] = true
		}
		var hosts []int
		taken := make(map[int]bool)
		for pass := 0; pass < 2 && len(hosts) < copies; pass++ {
			for i := 1; i <= len(nodes) && len(hosts) < copies; i++ {
				n := nodes[(idx[own]+i)%len(nodes)]
				if n == own || taken[n] {
					continue
				}
				if pass == 0 && avoid[n] {
					continue
				}
				taken[n] = true
				hosts = append(hosts, n)
			}
		}
		if len(hosts) < copies {
			return nil, fmt.Errorf("%w: rank %d on node %d, %d nodes total",
				ErrNoPeerHost, r, own, len(nodes))
		}
		plan[r] = hosts
	}
	return plan, nil
}

// StripePlan assigns each rank the k+m nodes that will host its
// erasure-coded shelter fragments (fragment i of rank r's stripe lands
// on plan[r][i]). Placement walks the job's nodes ring-wise from the
// rank's own node and is failure-domain aware in tiers:
//
//   - A fragment host is never the rank's own node (pass 3 is the only
//     relaxation that reuses nodes, and it too excludes the own node).
//   - Pass 0 prefers nodes in unused racks that hold neither the rank
//     nor any data-parallel replica of its position.
//   - Pass 1 drops the replica-avoidance, still one fragment per rack.
//   - Pass 2 allows rack reuse (two fragments of one stripe co-located
//     in a rack) when the cluster has fewer racks than fragments.
//   - Pass 3 allows node reuse on very small clusters.
//
// Whenever a stripe ends up spread over fewer than m+1 distinct racks —
// a single RackDown could then erase more than m fragments — the
// degradation is reported through warn (traced by the caller) instead
// of failing: a thinner guarantee beats no shelter. rackOf maps node ID
// to failure domain. It fails with ErrNoPeerHost only when no eligible
// host exists at all.
func StripePlan(pl Placement, topo train.Topology, k, m int, rackOf func(node int) int, warn func(format string, args ...any)) (map[int][]int, error) {
	frags := k + m
	if frags < 1 {
		return nil, fmt.Errorf("scheduler: stripe of %d fragments", frags)
	}
	if warn == nil {
		warn = func(string, ...any) {}
	}
	nodeSet := make(map[int]bool)
	for r := 0; r < topo.World(); r++ {
		nodeSet[pl.NodeOf(r)] = true
	}
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	idx := make(map[int]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}

	plan := make(map[int][]int, topo.World())
	for r := 0; r < topo.World(); r++ {
		own := pl.NodeOf(r)
		ownRack := rackOf(own)
		avoid := map[int]bool{own: true}
		for _, rr := range topo.ReplicaRanks(r) {
			avoid[pl.NodeOf(rr)] = true
		}
		hosts := make([]int, 0, frags)
		taken := make(map[int]bool)
		rackUsed := map[int]bool{ownRack: true}
		for pass := 0; pass < 4 && len(hosts) < frags; pass++ {
			// Pass 3 may need several laps of the ring on very small
			// clusters (fewer non-own nodes than fragments).
			for {
				added := false
				for i := 1; i <= len(nodes) && len(hosts) < frags; i++ {
					n := nodes[(idx[own]+i)%len(nodes)]
					if n == own {
						continue
					}
					if pass < 3 && taken[n] {
						continue
					}
					if pass < 2 && rackUsed[rackOf(n)] {
						continue
					}
					if pass == 0 && avoid[n] {
						continue
					}
					taken[n] = true
					rackUsed[rackOf(n)] = true
					hosts = append(hosts, n)
					added = true
				}
				if pass < 3 || !added || len(hosts) >= frags {
					break
				}
			}
		}
		if len(hosts) < frags {
			return nil, fmt.Errorf("%w: rank %d on node %d needs %d fragment hosts, %d nodes total",
				ErrNoPeerHost, r, own, frags, len(nodes))
		}
		racks := make(map[int]bool)
		for _, n := range hosts {
			racks[rackOf(n)] = true
		}
		if len(racks) < m+1 {
			warn("scheduler: rank %d stripe spans %d racks < m+1=%d: a rack loss may erase >m fragments",
				r, len(racks), m+1)
		}
		plan[r] = hosts
	}
	return plan, nil
}

// EventKind classifies monitor notifications.
type EventKind int

const (
	// EvFailureDetected: a rank's watchdog detected a failure.
	EvFailureDetected EventKind = iota
	// EvCheckpointDone: a rank completed its JIT checkpoint at Iter.
	EvCheckpointDone
	// EvRankExited: a rank's process exited (crash or kill).
	EvRankExited
)

// Event is one monitor notification.
type Event struct {
	Kind EventKind
	Rank int
	Iter int
	Err  error
}

// Monitor is the scheduler's notification sink.
type Monitor struct {
	env    *vclock.Env
	events *vclock.Queue[Event]
	log    []Event
}

// NewMonitor creates a monitor.
func NewMonitor(env *vclock.Env) *Monitor {
	return &Monitor{env: env, events: vclock.NewQueue[Event](env, "sched.monitor")}
}

// Notify records an event and wakes waiters.
func (m *Monitor) Notify(ev Event) {
	m.log = append(m.log, ev)
	m.events.Push(ev)
	m.env.Tracef("scheduler: event kind=%d rank=%d iter=%d err=%v", ev.Kind, ev.Rank, ev.Iter, ev.Err)
}

// Log returns all events received so far.
func (m *Monitor) Log() []Event { return m.log }

// WaitCheckpointQuorum blocks until, for some iteration, at least one
// replica of every position (pipeline stage × tensor partition × shard
// slot) has reported EvCheckpointDone — the §3.3 restart precondition. It
// returns the quorum iteration, or ok=false on timeout.
func (m *Monitor) WaitCheckpointQuorum(p *vclock.Proc, topo train.Topology, timeout vclock.Time) (iter int, ok bool) {
	return m.WaitCheckpointQuorumCovered(p, topo, timeout, nil)
}

// WaitCheckpointQuorumCovered is WaitCheckpointQuorum with a set of
// positions that count as already covered at every iteration — positions
// whose state is held by a surviving peer-shelter entry and therefore
// needs no fresh JIT checkpoint. When the pre-covered set alone spans all
// positions the wait returns immediately.
func (m *Monitor) WaitCheckpointQuorumCovered(p *vclock.Proc, topo train.Topology, timeout vclock.Time, pre map[string]bool) (iter int, ok bool) {
	need := topo.PositionCount()
	if len(pre) >= need {
		return 0, true
	}
	cover := make(map[int]map[string]bool) // iter -> positions covered
	check := func(ev Event) (int, bool) {
		if ev.Kind != EvCheckpointDone {
			return 0, false
		}
		if cover[ev.Iter] == nil {
			cover[ev.Iter] = make(map[string]bool)
			for pos := range pre {
				cover[ev.Iter][pos] = true
			}
		}
		cover[ev.Iter][topo.PositionKey(ev.Rank)] = true
		if len(cover[ev.Iter]) == need {
			return ev.Iter, true
		}
		return 0, false
	}
	// Replay anything already logged, then wait for fresh events.
	for _, ev := range m.log {
		if it, done := check(ev); done {
			return it, true
		}
	}
	deadline := p.Now() + timeout
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			return 0, false
		}
		ev, got := m.events.PopTimeout(p, remain)
		if !got {
			return 0, false
		}
		if it, done := check(ev); done {
			return it, true
		}
	}
}

// CRIU models checkpoint/restore of worker CPU processes. The payload is
// opaque bytes (in this simulation, the worker's serialized Snapshot plus
// its replay log); Take and Restore charge the measured process
// checkpoint costs.
type CRIU struct {
	SnapshotTime vclock.Time
	RestoreTime  vclock.Time
}

// Image is a captured process image.
type Image struct {
	Rank    int
	Payload []byte
}

// Take checkpoints a process image, charging snapshot time.
func (c CRIU) Take(p *vclock.Proc, rank int, payload []byte) Image {
	p.Sleep(c.SnapshotTime)
	return Image{Rank: rank, Payload: append([]byte(nil), payload...)}
}

// Restore restores a process image on (conceptually) a new host, charging
// restore time, and returns the payload.
func (c CRIU) Restore(p *vclock.Proc, img Image) []byte {
	p.Sleep(c.RestoreTime)
	return append([]byte(nil), img.Payload...)
}

// SortedNodeIDs is a test/debug helper listing pool node IDs in order.
func (p *Pool) SortedNodeIDs() []int {
	ids := make([]int, 0, len(p.nodes))
	for _, n := range p.nodes {
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)
	return ids
}
