package scheduler

import (
	"errors"
	"fmt"
	"testing"

	"jitckpt/internal/gpu"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func TestPoolAllocateExcludesFailedAndBusy(t *testing.T) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 4, 2, 1<<30)
	pool := NewPool(env, c.Nodes)
	first, err := pool.Allocate(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].ID != 0 || first[1].ID != 1 {
		t.Fatalf("allocated %v %v", first[0].ID, first[1].ID)
	}
	// Node 2 has a hard-failed GPU: it must be skipped.
	c.Device(2, 0).InjectHard()
	second, err := pool.Allocate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].ID != 3 {
		t.Fatalf("allocated node %d, want 3 (2 is failed)", second[0].ID)
	}
	if _, err := pool.Allocate(1, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want no capacity", err)
	}
	pool.Release(first)
	if pool.FreeHealthy() != 2 {
		t.Fatalf("free = %d, want 2", pool.FreeHealthy())
	}
}

func TestPoolExplicitExclusion(t *testing.T) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 3, 1, 1<<30)
	pool := NewPool(env, c.Nodes)
	got, err := pool.Allocate(1, map[int]bool{0: true, 1: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 2 {
		t.Fatalf("allocated %d, want 2", got[0].ID)
	}
}

func TestPlacement(t *testing.T) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 2, 4, 1<<30)
	pl, err := Place(c.Nodes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NodeOf(0) != 0 || pl.NodeOf(4) != 1 {
		t.Fatalf("placement wrong: rank0@%d rank4@%d", pl.NodeOf(0), pl.NodeOf(4))
	}
	if _, err := Place(c.Nodes[:1], 8); err == nil {
		t.Fatal("expected placement failure with too few devices")
	}
}

func TestWaitCheckpointQuorum(t *testing.T) {
	// 2D-2P job: quorum needs one checkpoint per pipeline stage, from any
	// replica. Rank 0 (d0,p0) and rank 3 (d1,p1) suffice.
	env := vclock.NewEnv(1)
	topo := train.Topology{D: 2, P: 2, T: 1}
	m := NewMonitor(env)
	var iter int
	var ok bool
	env.Go("scheduler", func(p *vclock.Proc) {
		iter, ok = m.WaitCheckpointQuorum(p, topo, vclock.Minute)
	})
	env.Go("ranks", func(p *vclock.Proc) {
		p.Sleep(vclock.Second)
		m.Notify(Event{Kind: EvFailureDetected, Rank: 1})
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 0, Iter: 7})
		p.Sleep(vclock.Second)
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 3, Iter: 7})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || iter != 7 {
		t.Fatalf("quorum = %v iter %d, want iter 7", ok, iter)
	}
}

func TestQuorumRequiresMatchingIteration(t *testing.T) {
	env := vclock.NewEnv(1)
	topo := train.Topology{D: 2, P: 2, T: 1}
	m := NewMonitor(env)
	var ok bool
	env.Go("scheduler", func(p *vclock.Proc) {
		_, ok = m.WaitCheckpointQuorum(p, topo, vclock.Seconds(10))
	})
	env.Go("ranks", func(p *vclock.Proc) {
		// Stage 0 checkpoints iter 7, stage 1 checkpoints iter 8: torn —
		// no quorum forms at either iteration.
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 0, Iter: 7})
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 3, Iter: 8})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("quorum formed from mismatched iterations")
	}
}

func TestQuorumSeesEventsLoggedBeforeWait(t *testing.T) {
	env := vclock.NewEnv(1)
	topo := train.Topology{D: 2, P: 1, T: 1}
	m := NewMonitor(env)
	m.Notify(Event{Kind: EvCheckpointDone, Rank: 1, Iter: 3})
	var ok bool
	env.Go("late-scheduler", func(p *vclock.Proc) {
		_, ok = m.WaitCheckpointQuorum(p, topo, vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pre-logged checkpoint not counted toward quorum")
	}
}

func TestQuorumFSDPNeedsEveryShardSlot(t *testing.T) {
	env := vclock.NewEnv(1)
	topo := train.Topology{D: 4, P: 1, T: 1, FSDPShard: 2}
	m := NewMonitor(env)
	var ok bool
	env.Go("scheduler", func(p *vclock.Proc) {
		_, ok = m.WaitCheckpointQuorum(p, topo, vclock.Seconds(5))
	})
	env.Go("ranks", func(p *vclock.Proc) {
		// Ranks 0 and 2 are both shard slot 0: slot 1 never reports.
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 0, Iter: 1})
		m.Notify(Event{Kind: EvCheckpointDone, Rank: 2, Iter: 1})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("quorum must require every shard slot")
	}
}

func TestCRIUChargesTime(t *testing.T) {
	env := vclock.NewEnv(1)
	criu := CRIU{SnapshotTime: 10 * vclock.Second, RestoreTime: 5 * vclock.Second}
	env.Go("w", func(p *vclock.Proc) {
		t0 := p.Now()
		img := criu.Take(p, 3, []byte("worker-state"))
		if p.Now()-t0 != 10*vclock.Second {
			t.Errorf("snapshot took %v", p.Now()-t0)
		}
		t0 = p.Now()
		payload := criu.Restore(p, img)
		if p.Now()-t0 != 5*vclock.Second {
			t.Errorf("restore took %v", p.Now()-t0)
		}
		if string(payload) != "worker-state" || img.Rank != 3 {
			t.Error("payload lost")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// peerPlanPlacement builds a placement of world ranks over nodes with
// perNode devices each, rank-major — the harness's layout.
func peerPlanPlacement(t *testing.T, nodes, perNode, world int) Placement {
	t.Helper()
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, nodes, perNode, 1<<30)
	pl, err := Place(c.Nodes, world)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPeerPlanNeverOwnFailureDomain(t *testing.T) {
	cases := []struct {
		nodes, perNode int
		topo           train.Topology
		copies         int
	}{
		{4, 1, train.Topology{D: 2, P: 2, T: 1}, 1},
		{2, 2, train.Topology{D: 4, P: 1, T: 1}, 1},
		{4, 2, train.Topology{D: 2, P: 2, T: 2}, 2},
		{3, 4, train.Topology{D: 3, P: 2, T: 2}, 2},
	}
	for _, tc := range cases {
		pl := peerPlanPlacement(t, tc.nodes, tc.perNode, tc.topo.World())
		plan, err := PeerPlan(pl, tc.topo, tc.copies)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for r := 0; r < tc.topo.World(); r++ {
			hosts := plan[r]
			if len(hosts) != tc.copies {
				t.Fatalf("%+v rank %d: %d hosts, want %d", tc, r, len(hosts), tc.copies)
			}
			seen := map[int]bool{}
			for _, n := range hosts {
				if n == pl.NodeOf(r) {
					t.Errorf("%+v rank %d sheltered in its own failure domain (node %d)", tc, r, n)
				}
				if seen[n] {
					t.Errorf("%+v rank %d: duplicate host %d", tc, r, n)
				}
				seen[n] = true
			}
		}
	}
}

// TestPeerPlanAvoidsReplicaDomainsWhenPossible: with one rank per node,
// a rank's shelter host must also differ from every node hosting a
// data-parallel replica of its position — so losing ALL replica nodes at
// once still leaves the sheltered copy standing.
func TestPeerPlanAvoidsReplicaDomainsWhenPossible(t *testing.T) {
	topo := train.Topology{D: 2, P: 2, T: 1}
	pl := peerPlanPlacement(t, 4, 1, topo.World())
	plan, err := PeerPlan(pl, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.World(); r++ {
		bad := map[int]bool{pl.NodeOf(r): true}
		for _, rr := range topo.ReplicaRanks(r) {
			bad[pl.NodeOf(rr)] = true
		}
		for _, n := range plan[r] {
			if bad[n] {
				t.Errorf("rank %d sheltered on replica-domain node %d", r, n)
			}
		}
	}
}

func TestPeerPlanSingleNodeFails(t *testing.T) {
	topo := train.Topology{D: 4, P: 1, T: 1}
	pl := peerPlanPlacement(t, 1, 4, topo.World())
	if _, err := PeerPlan(pl, topo, 1); !errors.Is(err, ErrNoPeerHost) {
		t.Fatalf("err = %v, want ErrNoPeerHost", err)
	}
}

// TestPeerPlanDegradesGracefully: when replica domains cannot all be
// avoided (2 nodes, replicas on both), the plan still never picks the
// rank's own node.
func TestPeerPlanDegradesGracefully(t *testing.T) {
	topo := train.Topology{D: 4, P: 1, T: 1}
	pl := peerPlanPlacement(t, 2, 2, topo.World())
	plan, err := PeerPlan(pl, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.World(); r++ {
		for _, n := range plan[r] {
			if n == pl.NodeOf(r) {
				t.Errorf("rank %d sheltered on own node %d", r, n)
			}
		}
	}
}

func TestStripePlanSpreadsAcrossRacks(t *testing.T) {
	// 8 nodes, 1 rank each, rack = node/2 → 4 racks. RS(2,1): 3 fragments
	// must land on 3 distinct nodes in 3 distinct racks ≠ the own rack
	// only when capacity allows; here m+1 = 2 racks is the floor and 3
	// distinct racks are available outside the owner's.
	topo := train.Topology{D: 4, P: 2, T: 1}
	pl := peerPlanPlacement(t, 8, 1, topo.World())
	rackOf := func(n int) int { return n / 2 }
	var warns []string
	plan, err := StripePlan(pl, topo, 2, 1, rackOf, func(f string, a ...any) {
		warns = append(warns, fmt.Sprintf(f, a...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected degradation warnings: %v", warns)
	}
	for r := 0; r < topo.World(); r++ {
		hosts := plan[r]
		if len(hosts) != 3 {
			t.Fatalf("rank %d: %d hosts, want 3", r, len(hosts))
		}
		racks := map[int]bool{}
		for _, n := range hosts {
			if n == pl.NodeOf(r) {
				t.Errorf("rank %d fragment on own node", r)
			}
			if rackOf(n) == rackOf(pl.NodeOf(r)) {
				t.Errorf("rank %d fragment in own rack", r)
			}
			if racks[rackOf(n)] {
				t.Errorf("rank %d co-located two fragments in rack %d", r, rackOf(n))
			}
			racks[rackOf(n)] = true
		}
	}
}

func TestStripePlanDegradesWithWarning(t *testing.T) {
	// 4 nodes in 2 racks, RS(2,2): 4 fragments but only 3 eligible nodes
	// in ≤2 racks → rack (and node) reuse with a warning, never the own
	// node.
	topo := train.Topology{D: 2, P: 2, T: 1}
	pl := peerPlanPlacement(t, 4, 1, topo.World())
	rackOf := func(n int) int { return n / 2 }
	var warns int
	plan, err := StripePlan(pl, topo, 2, 2, rackOf, func(string, ...any) { warns++ })
	if err != nil {
		t.Fatal(err)
	}
	if warns == 0 {
		t.Fatal("no degradation warning for a stripe wider than the rack count")
	}
	for r := 0; r < topo.World(); r++ {
		if len(plan[r]) != 4 {
			t.Fatalf("rank %d: %d hosts, want 4", r, len(plan[r]))
		}
		for _, n := range plan[r] {
			if n == pl.NodeOf(r) {
				t.Errorf("rank %d fragment on own node even under degradation", r)
			}
		}
	}
}

func TestStripePlanSingleNodeFails(t *testing.T) {
	topo := train.Topology{D: 4, P: 1, T: 1}
	pl := peerPlanPlacement(t, 1, 4, topo.World())
	if _, err := StripePlan(pl, topo, 2, 1, func(n int) int { return n }, nil); !errors.Is(err, ErrNoPeerHost) {
		t.Fatalf("err = %v, want ErrNoPeerHost", err)
	}
}

func TestStripePlanDeterministic(t *testing.T) {
	topo := train.Topology{D: 4, P: 2, T: 1}
	pl := peerPlanPlacement(t, 8, 1, topo.World())
	rackOf := func(n int) int { return n / 2 }
	a, err := StripePlan(pl, topo, 4, 2, rackOf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := StripePlan(pl, topo, 4, 2, rackOf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("plan not deterministic: %v vs %v", a, b)
		}
	}
}

// TestStripePlanTwoNodesLapsRing: a 2-node placement (an elastic shrink
// floor) must still produce a full stripe by lapping the single peer,
// never the own node — with the co-location warning, not an error.
func TestStripePlanTwoNodesLapsRing(t *testing.T) {
	env := vclock.NewEnv(1)
	cl := gpu.NewCluster(env, 2, 1, 1<<30)
	topo := train.Topology{D: 2, P: 1, T: 1}
	pl, err := Place(cl.Nodes, topo.World())
	if err != nil {
		t.Fatal(err)
	}
	var warns int
	plan, err := StripePlan(pl, topo, 2, 1, func(n int) int { return n }, func(string, ...any) { warns++ })
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.World(); r++ {
		hosts := plan[r]
		if len(hosts) != 3 {
			t.Fatalf("rank %d: %d hosts, want 3", r, len(hosts))
		}
		own := pl.NodeOf(r)
		for _, n := range hosts {
			if n == own {
				t.Fatalf("rank %d: fragment on own node %d", r, own)
			}
		}
	}
	if warns == 0 {
		t.Fatal("no degradation warning despite full co-location")
	}
}
