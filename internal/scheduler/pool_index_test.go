package scheduler

import (
	"errors"
	"math/rand"
	"testing"

	"jitckpt/internal/gpu"
	"jitckpt/internal/vclock"
)

// refPool is the pre-index reference implementation of the pool's
// allocation semantics: a full linear scan over the node slice. The
// randomized equivalence test drives it in lockstep with Pool to pin that
// the free index changed the complexity, not the behavior.
type refPool struct {
	nodes  []*gpu.Node
	inUse  map[int]bool
	failed map[int]bool
}

func newRefPool(nodes []*gpu.Node) *refPool {
	return &refPool{nodes: nodes, inUse: make(map[int]bool), failed: make(map[int]bool)}
}

func (p *refPool) Allocate(n int, exclude map[int]bool) ([]*gpu.Node, error) {
	var got []*gpu.Node
	for _, node := range p.nodes {
		if len(got) == n {
			break
		}
		if p.inUse[node.ID] || p.failed[node.ID] || exclude[node.ID] || node.Failed {
			continue
		}
		if hasHardDevice(node) {
			p.failed[node.ID] = true
			continue
		}
		got = append(got, node)
	}
	if len(got) < n {
		return nil, ErrNoCapacity
	}
	for _, node := range got {
		p.inUse[node.ID] = true
	}
	return got, nil
}

func (p *refPool) Release(nodes []*gpu.Node) {
	for _, n := range nodes {
		delete(p.inUse, n.ID)
	}
}

func (p *refPool) MarkFailed(id int) {
	p.failed[id] = true
	delete(p.inUse, id)
}

func (p *refPool) MarkRepaired(id int) { delete(p.failed, id) }

func (p *refPool) FreeHealthy() int {
	n := 0
	for _, node := range p.nodes {
		if !p.inUse[node.ID] && !p.failed[node.ID] && !node.Failed {
			n++
		}
	}
	return n
}

// TestPoolIndexMatchesLinearScan drives the indexed pool and the reference
// linear-scan pool through the same randomized program — allocations of
// varying sizes, releases, external node failures and repairs, hard-GPU
// injections discovered lazily, explicit exclusions — and requires
// identical allocation results (same node IDs in the same order), errors,
// and FreeHealthy counts at every step.
func TestPoolIndexMatchesLinearScan(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := vclock.NewEnv(seed)
		c := gpu.NewCluster(env, 40, 2, 1<<30)
		pool := NewPool(env, c.Nodes)
		ref := newRefPool(c.Nodes)

		held := make(map[int][]*gpu.Node) // allocation handle -> nodes
		next := 0
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // allocate
				n := 1 + rng.Intn(4)
				var exclude map[int]bool
				if rng.Intn(3) == 0 {
					exclude = map[int]bool{rng.Intn(40): true}
				}
				got, err := pool.Allocate(n, exclude)
				rgot, rerr := ref.Allocate(n, exclude)
				if (err == nil) != (rerr == nil) {
					t.Fatalf("seed %d step %d: alloc err %v vs ref %v", seed, step, err, rerr)
				}
				if err == nil {
					if len(got) != len(rgot) {
						t.Fatalf("seed %d step %d: %d nodes vs ref %d", seed, step, len(got), len(rgot))
					}
					for i := range got {
						if got[i].ID != rgot[i].ID {
							t.Fatalf("seed %d step %d: node[%d]=%d vs ref %d",
								seed, step, i, got[i].ID, rgot[i].ID)
						}
					}
					held[next] = got
					next++
				}
			case op < 6: // release one held allocation
				for h, nodes := range held {
					pool.Release(nodes)
					ref.Release(nodes)
					delete(held, h)
					break
				}
			case op < 7: // external whole-node failure (bypasses the pool)
				c.Nodes[rng.Intn(40)].Failed = true
			case op < 8: // hard GPU (discovered lazily by Allocate)
				c.Device(rng.Intn(40), rng.Intn(2)).InjectHard()
			case op < 9: // MarkFailed
				id := rng.Intn(40)
				pool.MarkFailed(id)
				ref.MarkFailed(id)
			default: // repair: hardware replaced, node re-admitted
				id := rng.Intn(40)
				node := c.Nodes[id]
				node.Failed = false
				for _, d := range node.Devices {
					if d.Health() != gpu.Healthy {
						d.Repair()
					}
				}
				pool.MarkRepaired(id)
				ref.MarkRepaired(id)
			}
			if got, want := pool.FreeHealthy(), ref.FreeHealthy(); got != want {
				t.Fatalf("seed %d step %d: FreeHealthy %d vs ref %d", seed, step, got, want)
			}
		}
	}
}

// TestPoolAllocateAllocs is the alloc/op benchmark guard: one Allocate
// must allocate only its result slice (the free index itself is
// maintained without per-call allocation), so fleet-scale admission churn
// does not turn into GC churn.
func TestPoolAllocateAllocs(t *testing.T) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 64, 2, 1<<30)
	pool := NewPool(env, c.Nodes)
	var nodes []*gpu.Node
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		nodes, err = pool.Allocate(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		pool.Release(nodes)
	})
	if allocs > 1 {
		t.Fatalf("Allocate+Release allocates %.1f objects/op, want <=1 (the result slice)", allocs)
	}
}

// TestPoolFreeHealthySkipsExternallyFailed pins that a node failed behind
// the pool's back (node.Failed, no MarkFailed call) stays in the free
// index — invisible to FreeHealthy and Allocate while down, allocatable
// again the moment the failure flag clears.
func TestPoolFreeHealthySkipsExternallyFailed(t *testing.T) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 3, 1, 1<<30)
	pool := NewPool(env, c.Nodes)
	c.Nodes[1].Failed = true
	if got := pool.FreeHealthy(); got != 2 {
		t.Fatalf("FreeHealthy = %d, want 2", got)
	}
	got, err := pool.Allocate(2, nil)
	if err != nil || got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("Allocate = %v, %v; want nodes 0,2", got, err)
	}
	if _, err := pool.Allocate(1, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	c.Nodes[1].Failed = false
	more, err := pool.Allocate(1, nil)
	if err != nil || more[0].ID != 1 {
		t.Fatalf("Allocate after un-fail = %v, %v; want node 1", more, err)
	}
}

// BenchmarkPoolAllocate measures allocation cost on a fleet-scale pool
// where nearly every node is already leased — the regime the free index
// exists for (the old linear scan was O(cluster) per call here).
func BenchmarkPoolAllocate(b *testing.B) {
	env := vclock.NewEnv(1)
	c := gpu.NewCluster(env, 2048, 2, 1<<30)
	pool := NewPool(env, c.Nodes)
	if _, err := pool.Allocate(2040, nil); err != nil { // most of the fleet is busy
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes, err := pool.Allocate(4, nil)
		if err != nil {
			b.Fatal(err)
		}
		pool.Release(nodes)
	}
}
