package pipefree

import (
	"errors"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/gpu"
	"jitckpt/internal/tensor"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// pipeTopo is the canonical test geometry: four pipeline stages, one rank
// (and one node) per stage.
var pipeTopo = train.Topology{D: 1, P: 4, T: 1}

func testState(iter, rank int) *train.ModelState {
	rng := tensor.NewRNG(uint64(iter*100 + rank + 1))
	v := tensor.NewVector(16)
	rng.FillUniform(v, 1)
	return &train.ModelState{
		Iter: iter, Rank: rank,
		Tensors: map[string]tensor.Vector{train.ParamTensorName(rank): v},
	}
}

// fakePeeker serves successive iterations' states for one rank.
type fakePeeker struct {
	rank int
	iter int
}

func (f *fakePeeker) PeekModelState() (*train.ModelState, error) {
	return testState(f.iter, f.rank), nil
}

func testParams() Params {
	return Params{Redundancy: 1, LinkBandwidth: 1e9, Latency: vclock.Millisecond, RebuildBW: 2e9, Retain: 2}
}

// mustGuard builds the tier over pipeTopo with rank == node placement.
func mustGuard(t *testing.T, env *vclock.Env, params Params) *Guard {
	t.Helper()
	g, err := New(env, "job", params, pipeTopo, func(rank int) int { return rank })
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// offerAll drives every rank's keeper through iters boundaries with ample
// idle time between offers.
func offerAll(t *testing.T, env *vclock.Env, g *Guard, iters int) []*Keeper {
	t.Helper()
	keepers := make([]*Keeper, pipeTopo.World())
	for r := range keepers {
		keepers[r] = g.NewKeeper(r, nil, 1e6, 2e9)
	}
	env.Go("drive", func(p *vclock.Proc) {
		for it := 1; it <= iters; it++ {
			for r, k := range keepers {
				k.Offer(&fakePeeker{rank: r, iter: it})
			}
			p.Sleep(vclock.Second)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return keepers
}

func TestValidation(t *testing.T) {
	env := vclock.NewEnv(1)
	if _, err := New(env, "job", testParams(), train.Topology{D: 2, P: 1, T: 1}, func(int) int { return 0 }); err == nil {
		t.Error("single-stage topology must be rejected")
	}
	p := testParams()
	p.Redundancy = 4 // only 3 neighbor stages exist
	if _, err := New(env, "job", p, pipeTopo, func(int) int { return 0 }); err == nil {
		t.Error("redundancy beyond neighbor count must be rejected")
	}
}

func TestHostRanksWrapAround(t *testing.T) {
	env := vclock.NewEnv(1)
	p := testParams()
	p.Redundancy = 2
	g := mustGuard(t, env, p)
	got := g.HostRanks(3)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("HostRanks(3) = %v, want [0 1]", got)
	}
}

func TestRetainRebuildZeroReadsBitExact(t *testing.T) {
	env := vclock.NewEnv(1)
	g := mustGuard(t, env, testParams())
	st := checkpoint.NewStore(env, "disk", checkpoint.DiskParams())
	offerAll(t, env, g, 3)
	// Each offer commits a self-bundle plus one neighbor bundle.
	if s := g.Stats(); s.Commits != 24 || s.Skips != 0 {
		t.Fatalf("stats = %+v, want 24 commits / 0 skips", s)
	}
	if !g.Any() {
		t.Fatal("Any() = false after commits")
	}
	if cov := g.CoveredPositions(pipeTopo); len(cov) != pipeTopo.PositionCount() {
		t.Fatalf("covered %d positions, want %d", len(cov), pipeTopo.PositionCount())
	}

	// Stage 1's node dies: its bundle on node 2 survives and rebuilds it.
	g.MarkNodeLost(1)
	env.Go("restore", func(p *vclock.Proc) {
		plan, err := checkpoint.AssembleRestore(p, "job", nil, g.RestoreCandidates(), pipeTopo, pipeTopo.World())
		if err != nil {
			t.Error(err)
			return
		}
		if plan.Iter != 3 {
			t.Errorf("plan iter = %d, want newest 3", plan.Iter)
		}
		for r := 0; r < pipeTopo.World(); r++ {
			t0 := p.Now()
			got, err := plan.For[r].Load(p)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if p.Now() == t0 {
				t.Errorf("rank %d load charged no virtual time", r)
			}
			want := testState(3, r)
			for name, wv := range want.Tensors {
				if !got.Tensors[name].Equal(wv) {
					t.Errorf("rank %d tensor %s not bit-exact after rebuild", r, name)
				}
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if st.ReadBytes() != 0 {
		t.Fatalf("checkpoint store served %d bytes during checkpoint-free recovery", st.ReadBytes())
	}
	s := g.Stats()
	if s.Rebuilds+s.SelfReloads != 4 || s.Rebuilds < 1 || s.RebuildTime == 0 {
		t.Fatalf("stats = %+v, want 4 loads incl. ≥1 neighbor rebuild with time charged", s)
	}
}

// TestDoubleFaultUncoversStage is the fallback precondition: with
// redundancy 1, losing a stage AND its hosting neighbor leaves the stage's
// position uncovered, so assembly over the pipe-free tier alone fails and
// the harness must fall back to disk.
func TestDoubleFaultUncoversStage(t *testing.T) {
	env := vclock.NewEnv(1)
	g := mustGuard(t, env, testParams())
	offerAll(t, env, g, 2)
	g.MarkNodeLost(1) // stage 1 dies...
	g.MarkNodeLost(2) // ...and so does the node hosting its bundle
	cov := g.CoveredPositions(pipeTopo)
	if cov[pipeTopo.PositionKey(1)] {
		t.Fatal("stage 1 still covered after double fault")
	}
	if !cov[pipeTopo.PositionKey(2)] {
		t.Fatal("stage 2 uncovered: its neighbor bundle on node 3 should survive")
	}
	env.Go("restore", func(p *vclock.Proc) {
		_, err := checkpoint.AssembleRestore(p, "job", nil, g.RestoreCandidates(), pipeTopo, pipeTopo.World())
		if !errors.Is(err, checkpoint.ErrUnassembled) {
			t.Errorf("assembly over uncovered tier: err = %v, want ErrUnassembled", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRedundancyTwoSurvivesHostLoss shows the configurable redundancy
// factor working: with two hosting neighbors, losing one still leaves the
// stage recoverable.
func TestRedundancyTwoSurvivesHostLoss(t *testing.T) {
	env := vclock.NewEnv(1)
	p := testParams()
	p.Redundancy = 2
	g := mustGuard(t, env, p)
	offerAll(t, env, g, 2)
	g.MarkNodeLost(1)
	g.MarkNodeLost(2) // first host of stage 1 — bundle on node 3 remains
	if !g.CoveredPositions(pipeTopo)[pipeTopo.PositionKey(1)] {
		t.Fatal("stage 1 uncovered despite redundancy 2")
	}
	env.Go("restore", func(pp *vclock.Proc) {
		plan, err := checkpoint.AssembleRestore(pp, "job", nil, g.RestoreCandidates(), pipeTopo, pipeTopo.World())
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := plan.For[1].Load(pp); err != nil {
			t.Errorf("rebuild from second host: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOfferIsAsyncBusySkipsAndRetention(t *testing.T) {
	env := vclock.NewEnv(1)
	p := testParams()
	p.LinkBandwidth = 1e9
	g := mustGuard(t, env, p)
	// 1 GB bundle over a 1 GB/s link: ~1 s in flight.
	k := g.NewKeeper(0, nil, 1e9, 2e9)
	env.Go("drive", func(pp *vclock.Proc) {
		t0 := pp.Now()
		k.Offer(&fakePeeker{rank: 0, iter: 1})
		if pp.Now() != t0 {
			t.Error("Offer charged time on the caller")
		}
		pp.Sleep(100 * vclock.Millisecond)
		k.Offer(&fakePeeker{rank: 0, iter: 2}) // in flight: skipped
		pp.Sleep(10 * vclock.Second)
		for it := 3; it <= 6; it++ {
			k.Offer(&fakePeeker{rank: 0, iter: it})
			pp.Sleep(10 * vclock.Second)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Skips != 1 || s.Commits != 10 {
		t.Fatalf("stats = %+v, want 1 skip / 10 commits (5 offers × self+neighbor)", s)
	}
	if k.LastIter() != 6 {
		t.Fatalf("LastIter = %d, want 6", k.LastIter())
	}
	// Retention: only the newest Retain=2 iters remain as candidates.
	iters := map[int]bool{}
	for _, c := range g.RestoreCandidates() {
		iters[c.Iter] = true
	}
	if len(iters) != 2 || !iters[5] || !iters[6] {
		t.Fatalf("retained iters = %v, want {5, 6}", iters)
	}
	if s.BytesRetained != 4e9 {
		t.Fatalf("BytesRetained = %d, want 4e9 (2 iters × self+neighbor × 1 GB)", s.BytesRetained)
	}
}

func TestCaptureAbortsWhenDeviceDies(t *testing.T) {
	env := vclock.NewEnv(1)
	g := mustGuard(t, env, testParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	// 1 GB at 2 GB/s D2H: 500 ms staging — the device dies at 100 ms.
	k := g.NewKeeper(0, dev, 1e9, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		k.Offer(&fakePeeker{rank: 0, iter: 1})
		p.Sleep(100 * vclock.Millisecond)
		dev.InjectHard()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.AbortedCaptures != 1 || s.Commits != 0 {
		t.Fatalf("stats = %+v, want 1 aborted / 0 commits", s)
	}
}

// TestOfferSelfOnlyWhenHostsLost: with every hosting neighbor's node lost,
// offers still retain the local self-bundle (the stage stays restorable on
// its own node) but nothing ships over the link.
func TestOfferSelfOnlyWhenHostsLost(t *testing.T) {
	env := vclock.NewEnv(1)
	g := mustGuard(t, env, testParams())
	g.MarkNodeLost(1) // rank 0's only neighbor host (redundancy 1)
	k := g.NewKeeper(0, nil, 1e6, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		k.Offer(&fakePeeker{rank: 0, iter: 1})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if s := g.Stats(); s.Skips != 0 || s.Commits != 1 {
		t.Fatalf("stats = %+v, want 0 skips / 1 self-only commit", s)
	}
	if !g.CoveredPositions(pipeTopo)[pipeTopo.PositionKey(0)] {
		t.Fatal("stage 0 should stay covered by its self-bundle")
	}
}
