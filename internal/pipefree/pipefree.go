// Package pipefree implements checkpoint-free pipeline-stage recovery
// ("All is Not Lost"-style): each pipeline stage continuously retains a
// redundancy bundle — its optimizer state plus the boundary activations
// needed to rebuild its weights — in the CPU memory of the next
// Redundancy stages' host nodes (same data/tensor coordinates). When a
// stage's node dies, the harness rebuilds that stage's weights and
// optimizer state from a surviving neighbor's bundle: the neighbor streams
// the optimizer redundancy back over the interconnect and the stage
// recomputes its parameters, both charged to virtual time — a recovery
// with zero checkpoint reads, disk or otherwise.
//
// The bundles live in host RAM, so they survive GPU failures and job
// restarts but die with their hosting node. A double fault that kills both
// a stage and every neighbor holding its bundle leaves the position
// uncovered; restore then falls back to the newest valid disk generation
// (the multi-step writer the PipeFree policy pairs with).
package pipefree

import (
	"fmt"
	"sort"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// Params model the stage-redundancy tier.
type Params struct {
	// Redundancy is how many downstream neighbor stages retain each
	// stage's bundle (default 1).
	Redundancy int
	// LinkBandwidth is the stage→neighbor-CPU-memory streaming bandwidth,
	// bytes/second; Latency the fixed per-transfer cost.
	LinkBandwidth float64
	Latency       vclock.Time
	// RebuildBW is the modelled reconstruction throughput — how fast a
	// stage's weights re-materialize from retained activations plus the
	// streamed optimizer redundancy, in state bytes/second.
	RebuildBW float64
	// Retain is how many iterations of bundles each neighbor keeps per
	// stage (≥2, so an in-flight offer never leaves a stage uncovered).
	Retain int
}

// DefaultParams returns the standard configuration: one redundancy
// neighbor over a 100 Gb/s-class link, rebuild at 25 GB/s, two retained
// iterations.
func DefaultParams() Params {
	return Params{
		Redundancy:    1,
		LinkBandwidth: 12.5e9,
		Latency:       200 * vclock.Microsecond,
		RebuildBW:     25e9,
		Retain:        2,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Redundancy <= 0 {
		p.Redundancy = d.Redundancy
	}
	if p.LinkBandwidth <= 0 {
		p.LinkBandwidth = d.LinkBandwidth
	}
	if p.Latency <= 0 {
		p.Latency = d.Latency
	}
	if p.RebuildBW <= 0 {
		p.RebuildBW = d.RebuildBW
	}
	if p.Retain < 2 {
		p.Retain = d.Retain
	}
	return p
}

// bundle is one retained stage-redundancy image: an owner rank's cloned
// model/optimizer state held in a neighbor stage's host RAM, or — when
// self is set — in the owner's own node's host RAM (the cheap local copy
// that lets a SURVIVING stage rejoin a rolled-back restart without any
// checkpoint read; reload is an H2D copy, not a reconstruction).
type bundle struct {
	owner    int
	hostRank int
	hostNode int
	iter     int
	state    *train.ModelState
	bytes    int64
	self     bool
	reloadBW float64 // H2D bandwidth for self-bundle reload
}

// Guard is the job-wide stage-redundancy tier. It persists across job
// incarnations (host RAM outlives restarts) until hosting nodes are lost.
type Guard struct {
	env    *vclock.Env
	job    string
	params Params
	topo   train.Topology
	nodeOf func(rank int) int
	lost   map[int]bool

	// bundles[owner][hostNode], each list iter-ascending.
	bundles map[int]map[int][]*bundle

	// NotePhase, when set, fires as a rank enters a stage rebuild
	// (failure.PhaseStageRebuild) so phase-armed fault injection can land
	// mid-reconstruction.
	NotePhase func(rank int, ph failure.Phase)

	offers      int
	skips       int
	commits     int
	aborted     int
	rebuilds    int
	selfReloads int
	bytesKept   int64
	rebuildTime vclock.Time
}

// New creates the tier for a job. nodeOf maps a rank to its hosting node
// (the harness's placement); topo must have at least two pipeline stages —
// a single-stage job has no neighbor to retain redundancy.
func New(env *vclock.Env, job string, params Params, topo train.Topology, nodeOf func(rank int) int) (*Guard, error) {
	if topo.P < 2 {
		return nil, fmt.Errorf("pipefree: needs ≥2 pipeline stages, topology has %d", topo.P)
	}
	params = params.withDefaults()
	if params.Redundancy > topo.P-1 {
		return nil, fmt.Errorf("pipefree: redundancy %d exceeds the %d neighbor stages available", params.Redundancy, topo.P-1)
	}
	return &Guard{
		env:     env,
		job:     job,
		params:  params,
		topo:    topo,
		nodeOf:  nodeOf,
		lost:    make(map[int]bool),
		bundles: make(map[int]map[int][]*bundle),
	}, nil
}

// Params returns the tier's effective configuration.
func (g *Guard) Params() Params { return g.params }

// HostRanks returns the neighbor ranks that retain a rank's bundle: the
// next Redundancy pipeline stages at the same (d, t) coordinates.
func (g *Guard) HostRanks(rank int) []int {
	d, p, t := g.topo.Coords(rank)
	out := make([]int, 0, g.params.Redundancy)
	for i := 1; i <= g.params.Redundancy; i++ {
		out = append(out, g.topo.Rank(d, (p+i)%g.topo.P, t))
	}
	return out
}

// MarkNodeLost drops every bundle hosted on a node: a whole-host failure
// takes its retained redundancy with it. GPU failures must NOT be reported
// here — host RAM survives them.
func (g *Guard) MarkNodeLost(node int) {
	if g.lost[node] {
		return
	}
	g.lost[node] = true
	dropped := 0
	for owner, hosts := range g.bundles {
		if _, ok := hosts[node]; ok {
			dropped += len(hosts[node])
			delete(hosts, node)
			if len(hosts) == 0 {
				delete(g.bundles, owner)
			}
		}
	}
	if dropped > 0 {
		g.env.Tracef("pipefree: node %d lost, %d retained bundles gone", node, dropped)
	}
	trace.Of(g.env).Instant(g.env.Now(), "pipe", trace.LaneSim, "node-lost",
		"node", node, "dropped", dropped)
}

// store retains one bundle, pruning the (owner, host) pair's history to the
// retention window.
func (g *Guard) store(b *bundle) {
	hosts, ok := g.bundles[b.owner]
	if !ok {
		hosts = make(map[int][]*bundle)
		g.bundles[b.owner] = hosts
	}
	list := hosts[b.hostNode]
	// Replace an entry at the same iteration (re-offer after restore).
	replaced := false
	for i, old := range list {
		if old.iter == b.iter {
			list[i] = b
			replaced = true
			break
		}
	}
	if !replaced {
		list = append(list, b)
		sort.Slice(list, func(i, j int) bool { return list[i].iter < list[j].iter })
	}
	for len(list) > g.params.Retain {
		g.bytesKept -= list[0].bytes
		list = list[1:]
	}
	hosts[b.hostNode] = list
	g.commits++
	g.bytesKept += b.bytes
}

// owners returns the owner ranks with any retained bundle, sorted.
func (g *Guard) owners() []int {
	out := make([]int, 0, len(g.bundles))
	for o := range g.bundles {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// Any reports whether the tier holds any bundle on a surviving host.
func (g *Guard) Any() bool {
	for _, hosts := range g.bundles {
		for node := range hosts {
			if !g.lost[node] && len(hosts[node]) > 0 {
				return true
			}
		}
	}
	return false
}

// CoveredPositions returns the positions a surviving bundle can rebuild,
// keyed by train.Topology.PositionKey (zero-time scan).
func (g *Guard) CoveredPositions(topo train.Topology) map[string]bool {
	out := make(map[string]bool)
	for owner, hosts := range g.bundles {
		if owner >= topo.World() {
			continue
		}
		for node, list := range hosts {
			if !g.lost[node] && len(list) > 0 {
				out[topo.PositionKey(owner)] = true
			}
		}
	}
	return out
}

// RestoreCandidates offers every surviving bundle to the restore assembler.
// A candidate's Load performs the stage rebuild: the neighbor streams the
// optimizer redundancy back over the interconnect and the stage recomputes
// its weights from retained activations — link transfer plus rebuild
// compute charged to virtual time, zero checkpoint (store) reads.
func (g *Guard) RestoreCandidates() []checkpoint.Candidate {
	var out []checkpoint.Candidate
	for _, owner := range g.owners() {
		hosts := g.bundles[owner]
		nodes := make([]int, 0, len(hosts))
		for n := range hosts {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, node := range nodes {
			if g.lost[node] {
				continue
			}
			for _, b := range hosts[node] {
				b := b
				out = append(out, checkpoint.Candidate{
					Iter: b.iter,
					Rank: b.owner,
					Probe: func(p *vclock.Proc) bool {
						return !g.lost[b.hostNode]
					},
					Load: func(p *vclock.Proc) (*train.ModelState, error) {
						return g.rebuild(p, b)
					},
					Desc: b.desc(),
				})
			}
		}
	}
	return out
}

func (b *bundle) desc() string {
	if b.self {
		return fmt.Sprintf("pipefree:self/rank%04d/iter%08d", b.owner, b.iter)
	}
	return fmt.Sprintf("pipefree:n%d/rank%04d/iter%08d", b.hostNode, b.owner, b.iter)
}

// rebuild reconstructs a stage's state from a retained bundle. A neighbor
// bundle charges the link streaming plus reconstruction compute; a
// self-bundle is a local H2D reload. Neither touches a checkpoint store.
func (g *Guard) rebuild(p *vclock.Proc, b *bundle) (*train.ModelState, error) {
	if g.lost[b.hostNode] {
		return nil, fmt.Errorf("pipefree: host node %d lost", b.hostNode)
	}
	start := p.Now()
	if b.self {
		sp := trace.Of(g.env).Begin(start, "pipe", trace.Rank(b.owner), "self-reload", "iter", b.iter)
		p.Sleep(g.params.Latency + gpu.TransferTime(b.bytes, b.reloadBW))
		g.selfReloads++
		sp.End(p.Now())
		return cloneModelState(b.state), nil
	}
	if g.NotePhase != nil {
		g.NotePhase(b.owner, failure.PhaseStageRebuild)
	}
	sp := trace.Of(g.env).Begin(start, "pipe", trace.Rank(b.owner), "stage-rebuild",
		"host", b.hostNode, "iter", b.iter)
	p.Sleep(g.params.Latency + gpu.TransferTime(b.bytes, g.params.LinkBandwidth))
	p.Sleep(gpu.TransferTime(b.bytes, g.params.RebuildBW))
	g.rebuilds++
	g.rebuildTime += p.Now() - start
	sp.End(p.Now())
	return cloneModelState(b.state), nil
}

func cloneModelState(ms *train.ModelState) *train.ModelState {
	out := &train.ModelState{Iter: ms.Iter, Rank: ms.Rank, Tensors: make(map[string]tensor.Vector, len(ms.Tensors))}
	for n, v := range ms.Tensors {
		out.Tensors[n] = v.Clone()
	}
	return out
}

// Stats is a snapshot of the tier's counters.
type Stats struct {
	// Offers counts per-boundary retention attempts; Skips those dropped
	// because the previous transfer was in flight or no host survives;
	// Commits retained bundles; AbortedCaptures transfers abandoned because
	// the owner device died mid-staging.
	Offers, Skips, Commits, AbortedCaptures int
	// Rebuilds counts neighbor-bundle stage reconstructions, SelfReloads
	// local self-bundle reloads; RebuildTime is the virtual time rebuilds
	// charged; BytesRetained the bundle volume currently held.
	Rebuilds      int
	SelfReloads   int
	RebuildTime   vclock.Time
	BytesRetained int64
}

// Stats returns the current counters.
func (g *Guard) Stats() Stats {
	return Stats{
		Offers: g.offers, Skips: g.skips, Commits: g.commits,
		AbortedCaptures: g.aborted,
		Rebuilds:        g.rebuilds,
		SelfReloads:     g.selfReloads,
		RebuildTime:     g.rebuildTime,
		BytesRetained:   g.bytesKept,
	}
}

// StatePeeker is the slice of train.Worker the keeper needs.
type StatePeeker interface {
	PeekModelState() (*train.ModelState, error)
}

// Keeper drives one rank's per-boundary redundancy offers to its neighbor
// stages.
type Keeper struct {
	g     *Guard
	rank  int
	dev   *gpu.Device
	hosts []int
	bytes int64
	d2hBW float64

	busy     bool
	lastIter int
}

// NewKeeper creates the keeper for one rank. dev may be nil (no
// owner-death staging check); stateBytes is the bundle's modelled size;
// d2hBW the PCIe staging bandwidth.
func (g *Guard) NewKeeper(rank int, dev *gpu.Device, stateBytes int64, d2hBW float64) *Keeper {
	return &Keeper{
		g:        g,
		rank:     rank,
		dev:      dev,
		hosts:    g.HostRanks(rank),
		bytes:    stateBytes,
		d2hBW:    d2hBW,
		lastIter: -1,
	}
}

// LastIter returns the newest iteration this keeper has retained (-1
// before the first offer).
func (k *Keeper) LastIter() int { return k.lastIter }

// Offer captures the rank's post-optimizer state and streams it to the
// neighbor stages' host RAM in a background process, returning immediately
// — retention overlaps the next minibatch. Call it right after RunIter
// returns (compute stream synchronized). The capture clones at the
// boundary so the shipped image is exactly the boundary state even though
// the transfer overlaps the next minibatch's buffer mutation. If the
// previous transfer is still in flight the offer is skipped (the bundle
// ages one iteration rather than stalling training).
func (k *Keeper) Offer(w StatePeeker) {
	g := k.g
	g.offers++
	if k.busy {
		g.skips++
		return
	}
	ms, err := w.PeekModelState()
	if err != nil {
		g.skips++
		g.env.Tracef("pipefree: rank %d peek failed: %v", k.rank, err)
		return
	}
	frozen := cloneModelState(ms) // boundary image, immune to next-iter mutation
	k.busy = true
	iter := frozen.Iter
	g.env.Go(fmt.Sprintf("pipekeep.r%d", k.rank), func(p *vclock.Proc) {
		defer func() { k.busy = false }()
		sp := trace.Of(g.env).Begin(p.Now(), "pipe", trace.Rank(k.rank), "retain", "iter", iter)
		defer func() { sp.End(p.Now()) }()
		if k.d2hBW > 0 {
			p.Sleep(gpu.TransferTime(k.bytes, k.d2hBW))
		}
		if k.dev != nil && !k.dev.Accessible() {
			g.aborted++
			trace.Of(g.env).Instant(p.Now(), "pipe", trace.Rank(k.rank), "capture-abort", "iter", iter)
			return
		}
		// Local copy first: survivors of someone else's failure rejoin a
		// rolled-back restart from this, with no checkpoint read.
		ownNode := g.nodeOf(k.rank)
		if !g.lost[ownNode] {
			g.store(&bundle{
				owner: k.rank, hostRank: k.rank, hostNode: ownNode,
				iter: iter, state: frozen, bytes: k.bytes,
				self: true, reloadBW: k.d2hBW,
			})
		}
		for _, hr := range k.hosts {
			node := g.nodeOf(hr)
			if g.lost[node] {
				continue
			}
			p.Sleep(g.params.Latency + gpu.TransferTime(k.bytes, g.params.LinkBandwidth))
			g.store(&bundle{
				owner: k.rank, hostRank: hr, hostNode: node,
				iter: iter, state: frozen, bytes: k.bytes,
			})
		}
		k.lastIter = iter
	})
}
