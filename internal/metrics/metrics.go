// Package metrics provides the measurement utilities the evaluation
// harness uses: wasted-GPU-time accounting (the quantity §5 analyzes and
// Table 8 reports), phase timers for recovery breakdowns (Table 7), and a
// plain-text table renderer for paper-style output.
package metrics

import (
	"fmt"
	"strings"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Accounting accumulates useful vs wasted GPU time for a job of N GPUs.
// Durations are wall time; GPU-time aggregates multiply by N.
type Accounting struct {
	N int
	// Useful is wall time spent making forward progress.
	Useful vclock.Time
	// CkptStall is wall time stalled on steady-state checkpointing.
	CkptStall vclock.Time
	// RecoveryFixed is wall time in fixed recovery work (init, restore,
	// rendezvous, CRIU).
	RecoveryFixed vclock.Time
	// RedoWork is wall time re-executing minibatches lost to a failure.
	RedoWork vclock.Time
	// WaitingForCapacity is wall time the job sat idle because no viable
	// placement existed — spares exhausted, waiting for a repair (or for an
	// elastic shrink decision). Previously folded into RecoveryFixed; split
	// out because degraded-mode policy choices trade exactly this bucket
	// against DegradedUseful throughput.
	WaitingForCapacity vclock.Time
	// Recoveries counts failure-recovery episodes.
	Recoveries int
	// Checkpoints counts checkpoints taken.
	Checkpoints int
	// DegradedIters counts iterations executed at reduced data-parallel
	// width (elastic degraded mode).
	DegradedIters int
	// DegradedUseful is the portion of Useful spent at reduced width. It is
	// an informational sub-bucket of Useful, not an additional wasted
	// bucket: degraded iterations still make full forward progress.
	DegradedUseful vclock.Time
}

// Wasted returns total wasted wall time.
func (a *Accounting) Wasted() vclock.Time {
	return a.CkptStall + a.RecoveryFixed + a.RedoWork + a.WaitingForCapacity
}

// WastedFraction returns wasted/(useful+wasted), the paper's w_f.
func (a *Accounting) WastedFraction() float64 {
	total := a.Useful + a.Wasted()
	if total <= 0 {
		return 0
	}
	return float64(a.Wasted()) / float64(total)
}

// WastedGPUHours returns wasted time summed across GPUs, in hours.
func (a *Accounting) WastedGPUHours() float64 {
	return a.Wasted().Sec() / 3600 * float64(a.N)
}

// String summarizes the accounting.
func (a *Accounting) String() string {
	s := fmt.Sprintf("useful=%v ckpt=%v fixed=%v redo=%v wait=%v (wf=%.3f%%, %d recoveries, %d ckpts)",
		a.Useful, a.CkptStall, a.RecoveryFixed, a.RedoWork, a.WaitingForCapacity,
		100*a.WastedFraction(), a.Recoveries, a.Checkpoints)
	if a.DegradedIters > 0 {
		s += fmt.Sprintf(" degraded=%d iters/%v", a.DegradedIters, a.DegradedUseful)
	}
	return s
}

// Phase is one named step of a breakdown (a Table 7 row).
type Phase struct {
	Name string
	Dur  vclock.Time
}

// PhaseTimer records a sequence of named phases against a virtual clock.
// When the environment carries a trace recorder, every marked phase is
// also emitted as a "phase"-category span on the timer's lane, so Table 7
// breakdowns are reconcilable against the trace.
type PhaseTimer struct {
	env    *vclock.Env
	lane   string
	start  vclock.Time
	last   vclock.Time
	phases []Phase
}

// NewPhaseTimer starts a timer at the current virtual time.
func NewPhaseTimer(env *vclock.Env) *PhaseTimer {
	return NewPhaseTimerLane(env, trace.LaneSim)
}

// NewPhaseTimerLane starts a timer whose traced phase spans land on the
// given lane (e.g. a per-rank lane for recovery breakdowns).
func NewPhaseTimerLane(env *vclock.Env, lane string) *PhaseTimer {
	return &PhaseTimer{env: env, lane: lane, start: env.Now(), last: env.Now()}
}

// Mark closes the current phase under name.
func (t *PhaseTimer) Mark(name string) {
	now := t.env.Now()
	t.phases = append(t.phases, Phase{Name: name, Dur: now - t.last})
	if rec := trace.Of(t.env); rec != nil {
		rec.Begin(t.last, "phase", t.lane, name).End(now)
	}
	t.last = now
}

// Skip discards time since the last mark without recording a phase (used
// to exclude coordination barriers from per-rank work measurements).
func (t *PhaseTimer) Skip() { t.last = t.env.Now() }

// Sum returns the total of recorded phase durations (excluding skipped
// intervals).
func (t *PhaseTimer) Sum() vclock.Time {
	var d vclock.Time
	for _, ph := range t.phases {
		d += ph.Dur
	}
	return d
}

// Phases returns the recorded phases in order.
func (t *PhaseTimer) Phases() []Phase { return t.phases }

// Total returns time from construction to the last mark.
func (t *PhaseTimer) Total() vclock.Time { return t.last - t.start }

// Get returns the duration of a named phase (0 if absent); if the name
// repeats, durations sum.
func (t *PhaseTimer) Get(name string) vclock.Time {
	var d vclock.Time
	for _, ph := range t.phases {
		if ph.Name == name {
			d += ph.Dur
		}
	}
	return d
}

// Table renders paper-style fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case vclock.Time:
			row[i] = fmt.Sprintf("%.2f", v.Sec())
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < cols && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
