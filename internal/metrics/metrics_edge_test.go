package metrics

import (
	"strings"
	"testing"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// TestTableRenderRaggedRows pins Render's handling of rows that are
// shorter or longer than the header: short rows pad with empty cells,
// extra cells beyond the header columns are dropped, and column widths
// grow to the widest cell.
func TestTableRenderRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.Row("only-a")
	tb.Row("x", "y", "overflow-ignored")
	tb.Row("a-very-wide-first-cell", "b")
	out := tb.Render()
	if strings.Contains(out, "overflow-ignored") {
		t.Fatalf("cells beyond the header leaked:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, separator, 3 rows (no title line)
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Every rendered line is equally wide: widths come from the widest cell.
	width := len(lines[0])
	for _, ln := range lines {
		if len(ln) != width {
			t.Fatalf("ragged render widths:\n%s", out)
		}
	}
	if !strings.Contains(lines[1], "-") {
		t.Fatalf("separator missing:\n%s", out)
	}
}

// TestTableRenderEmpty renders a table with no rows and no title.
func TestTableRenderEmpty(t *testing.T) {
	tb := NewTable("", "H1", "H2")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("empty table should render header+separator only:\n%s", out)
	}
	if tb.Rows() != 0 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

// TestTableRowFormatting pins the cell formatters: float64 as %.4g,
// vclock.Time as seconds with two decimals, everything else via %v.
func TestTableRowFormatting(t *testing.T) {
	tb := NewTable("", "C")
	tb.Row(0.000123456)
	tb.Row(1234567.8)
	tb.Row(1500 * vclock.Millisecond)
	tb.Row(42)
	tb.Row("str")
	out := tb.Render()
	for _, want := range []string{"0.0001235", "1.235e+06", "1.50", "42", "str"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPhaseTimerSkip: skipped intervals are excluded from phases, Sum,
// and Get, but Total still runs construction-to-last-mark.
func TestPhaseTimerSkip(t *testing.T) {
	env := vclock.NewEnv(1)
	env.Go("w", func(p *vclock.Proc) {
		pt := NewPhaseTimer(env)
		p.Sleep(vclock.Second)
		pt.Skip() // barrier: not a phase
		p.Sleep(2 * vclock.Second)
		pt.Mark("work")
		if got := pt.Sum(); got != 2*vclock.Second {
			t.Errorf("Sum = %v, want 2s", got)
		}
		if got := pt.Total(); got != 3*vclock.Second {
			t.Errorf("Total = %v, want 3s", got)
		}
		if len(pt.Phases()) != 1 {
			t.Errorf("phases = %+v", pt.Phases())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseTimerZeroMarks: a timer that never marks has zero Sum, zero
// Total, no phases, and Get returns 0 for anything.
func TestPhaseTimerZeroMarks(t *testing.T) {
	env := vclock.NewEnv(1)
	env.Go("w", func(p *vclock.Proc) {
		pt := NewPhaseTimer(env)
		p.Sleep(vclock.Second)
		if pt.Sum() != 0 || pt.Total() != 0 || len(pt.Phases()) != 0 || pt.Get("x") != 0 {
			t.Errorf("fresh timer not empty: sum=%v total=%v", pt.Sum(), pt.Total())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseTimerEmitsTraceSpans: with a recorder attached, every Mark
// becomes a "phase" span on the timer's lane covering [last, now] — the
// bridge the Table 7 reconciliation tests depend on.
func TestPhaseTimerEmitsTraceSpans(t *testing.T) {
	env := vclock.NewEnv(1)
	rec := trace.New()
	trace.Attach(env, rec)
	env.Go("w", func(p *vclock.Proc) {
		pt := NewPhaseTimerLane(env, trace.Rank(3))
		p.Sleep(vclock.Second)
		pt.Mark("restore")
		p.Sleep(2 * vclock.Second)
		pt.Mark("replay")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	q := trace.NewQuery(rec)
	sums := q.SpanSums("phase", trace.Rank(3))
	if sums["restore"] != vclock.Second || sums["replay"] != 2*vclock.Second {
		t.Fatalf("traced phase sums: %v", sums)
	}
	spans := q.Spans("phase", "restore")
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End != vclock.Second {
		t.Fatalf("restore span: %+v", spans)
	}
}
