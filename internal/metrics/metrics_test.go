package metrics

import (
	"strings"
	"testing"

	"jitckpt/internal/vclock"
)

func TestAccountingFractions(t *testing.T) {
	a := &Accounting{N: 8, Useful: 90 * vclock.Second, CkptStall: 5 * vclock.Second,
		RecoveryFixed: 3 * vclock.Second, RedoWork: 2 * vclock.Second}
	if a.Wasted() != 10*vclock.Second {
		t.Fatalf("Wasted = %v", a.Wasted())
	}
	if wf := a.WastedFraction(); wf < 0.099 || wf > 0.101 {
		t.Fatalf("wf = %v, want 0.1", wf)
	}
	gpuHours := a.WastedGPUHours()
	want := 10.0 / 3600 * 8
	if gpuHours < want*0.99 || gpuHours > want*1.01 {
		t.Fatalf("WastedGPUHours = %v, want %v", gpuHours, want)
	}
}

func TestAccountingEmpty(t *testing.T) {
	a := &Accounting{N: 4}
	if a.WastedFraction() != 0 {
		t.Fatal("empty accounting should be zero")
	}
}

func TestPhaseTimer(t *testing.T) {
	env := vclock.NewEnv(1)
	var phases []Phase
	var total vclock.Time
	env.Go("w", func(p *vclock.Proc) {
		pt := NewPhaseTimer(env)
		p.Sleep(vclock.Second)
		pt.Mark("teardown")
		p.Sleep(2 * vclock.Second)
		pt.Mark("comm-init")
		p.Sleep(500 * vclock.Millisecond)
		pt.Mark("teardown") // repeated names sum in Get
		phases = pt.Phases()
		total = pt.Total()
		if pt.Get("teardown") != 1500*vclock.Millisecond {
			t.Errorf("Get(teardown) = %v", pt.Get("teardown"))
		}
		if pt.Get("missing") != 0 {
			t.Error("missing phase should be zero")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 || phases[1].Dur != 2*vclock.Second {
		t.Fatalf("phases = %+v", phases)
	}
	if total != 3500*vclock.Millisecond {
		t.Fatalf("total = %v", total)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X", "Model", "Overhead", "Time")
	tb.Row("GPT2-S", 0.0024, 3*vclock.Second)
	tb.Row("BERT-L", 0.0076, 5*vclock.Second)
	out := tb.Render()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "GPT2-S") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.0024") || !strings.Contains(out, "3.00") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}
