package train

import (
	"fmt"
	"strings"
)

// Topology describes how a job's world of workers is factored into
// parallelism dimensions (Table 2's "2D-4P-2T" notation).
type Topology struct {
	// D is the data-parallel degree (replicas).
	D int
	// P is the pipeline-parallel degree (stages).
	P int
	// T is the tensor-parallel degree (within-layer sharding).
	T int
	// FSDPShard is the hybrid-sharding group size K: parameters and
	// optimizer state are sharded across K consecutive data-parallel
	// ranks and replicated across the D/K groups (§3.1 "hybrid sharding";
	// required for JIT checkpointing of FSDP jobs). 0 or 1 disables FSDP.
	// Requires T == 1 and D divisible by K.
	FSDPShard int
}

// Validate checks the topology for consistency.
func (t Topology) Validate() error {
	if t.D < 1 || t.P < 1 || t.T < 1 {
		return fmt.Errorf("train: topology degrees must be >= 1, got %+v", t)
	}
	if t.FSDPShard > 1 {
		if t.T != 1 {
			return fmt.Errorf("train: FSDP sharding requires T=1, got T=%d", t.T)
		}
		if t.D%t.FSDPShard != 0 {
			return fmt.Errorf("train: D=%d not divisible by FSDP shard size %d", t.D, t.FSDPShard)
		}
	}
	return nil
}

// World returns the total number of worker ranks.
func (t Topology) World() int { return t.D * t.P * t.T }

// Coords maps a global rank to (d, p, tt) coordinates.
func (t Topology) Coords(rank int) (d, p, tt int) {
	d = rank / (t.P * t.T)
	p = (rank / t.T) % t.P
	tt = rank % t.T
	return
}

// Rank maps (d, p, tt) coordinates to the global rank.
func (t Topology) Rank(d, p, tt int) int { return d*t.P*t.T + p*t.T + tt }

// FSDP reports whether hybrid sharding is enabled.
func (t Topology) FSDP() bool { return t.FSDPShard > 1 }

// FSDPGroups returns the number of replica groups under hybrid sharding.
func (t Topology) FSDPGroups() int {
	if !t.FSDP() {
		return 0
	}
	return t.D / t.FSDPShard
}

// ReplicaRanks returns the global ranks holding a byte-identical copy of
// rank's parameter and optimizer state — the ranks a JIT checkpoint can be
// recovered from. Under plain DP that is every rank with the same (p, t);
// under hybrid sharding it is the same shard slot in every other replica
// group.
func (t Topology) ReplicaRanks(rank int) []int {
	d, p, tt := t.Coords(rank)
	var out []int
	if t.FSDP() {
		k := t.FSDPShard
		s := d % k
		for g := 0; g < t.FSDPGroups(); g++ {
			r := t.Rank(g*k+s, p, tt)
			if r != rank {
				out = append(out, r)
			}
		}
		return out
	}
	for dd := 0; dd < t.D; dd++ {
		if dd == d {
			continue
		}
		out = append(out, t.Rank(dd, p, tt))
	}
	return out
}

// PositionKey identifies the (pipeline stage × tensor partition × shard
// slot) position whose ranks hold interchangeable parameter and optimizer
// state. Checkpoint assembly, the §3.3 restart quorum, and peer-shelter
// coverage all key on it.
func (t Topology) PositionKey(rank int) string {
	d, p, tt := t.Coords(rank)
	if t.FSDP() {
		return fmt.Sprintf("p%d.t%d.s%d", p, tt, d%t.FSDPShard)
	}
	return fmt.Sprintf("p%d.t%d", p, tt)
}

// PositionCount returns how many distinct positions the topology has — the
// number of PositionKey values that must be covered for a full restore.
func (t Topology) PositionCount() int {
	if t.FSDP() {
		return t.P * t.T * t.FSDPShard
	}
	return t.P * t.T
}

// HasReplica reports whether JIT recovery is possible for this topology
// (at least one data-parallel replica of every rank's state exists).
func (t Topology) HasReplica() bool {
	if t.FSDP() {
		return t.FSDPGroups() >= 2
	}
	return t.D >= 2
}

// String renders the topology in the paper's notation.
func (t Topology) String() string {
	var parts []string
	if t.FSDP() {
		parts = append(parts, fmt.Sprintf("FSDP(%dx%d)", t.FSDPGroups(), t.FSDPShard))
	} else {
		parts = append(parts, fmt.Sprintf("%dD", t.D))
	}
	if t.P > 1 {
		parts = append(parts, fmt.Sprintf("%dP", t.P))
	}
	if t.T > 1 {
		parts = append(parts, fmt.Sprintf("%dT", t.T))
	}
	return strings.Join(parts, "-")
}

// Communicator keys. The generation argument to CommInit, not the key,
// distinguishes re-initializations after recovery.

// DPCommKey is the gradient-allreduce group for position (p, tt).
func DPCommKey(job string, p, tt int) string { return fmt.Sprintf("%s.dp.p%d.t%d", job, p, tt) }

// TPCommKey is the tensor-parallel group for replica d, stage p.
func TPCommKey(job string, d, p int) string { return fmt.Sprintf("%s.tp.d%d.p%d", job, d, p) }

// PPCommKey is the pipeline chain for replica d, tensor slice tt.
func PPCommKey(job string, d, tt int) string { return fmt.Sprintf("%s.pp.d%d.t%d", job, d, tt) }

// FSDPShardCommKey is the within-group sharding communicator.
func FSDPShardCommKey(job string, g, p int) string { return fmt.Sprintf("%s.fs.g%d.p%d", job, g, p) }

// FSDPRepCommKey is the cross-group replica communicator for shard slot s.
func FSDPRepCommKey(job string, s, p int) string { return fmt.Sprintf("%s.fr.s%d.p%d", job, s, p) }

// Tag prefixes classifying buffer roles. Recovery decisions key off these:
// model state is retained/checkpointed, everything else is discardable.
const (
	TagParamPrefix = "param."
	TagOptPrefix   = "opt."
	TagActPrefix   = "act."
	TagGradPrefix  = "grad."
	TagIOPrefix    = "io."
)

// IsModelState reports whether a buffer tag is parameter or optimizer
// state — the state JIT checkpoints save and recovery must preserve.
func IsModelState(tag string) bool {
	return strings.HasPrefix(tag, TagParamPrefix) || strings.HasPrefix(tag, TagOptPrefix)
}
