package train

import (
	"fmt"
	"math"

	"jitckpt/internal/tensor"
)

// ParamTensorName returns the checkpoint name of a layer's weight shard.
func ParamTensorName(layer int) string {
	return TensorName(fmt.Sprintf("%sL%d.w", TagParamPrefix, layer), 0)
}

// OptMTensorName returns the checkpoint name of a layer's first-moment
// (momentum) optimizer shard.
func OptMTensorName(layer int) string {
	return TensorName(fmt.Sprintf("%sL%d.m", TagOptPrefix, layer), 0)
}

// OptVTensorName returns the checkpoint name of a layer's second-moment
// optimizer shard (Adam only).
func OptVTensorName(layer int) string {
	return TensorName(fmt.Sprintf("%sL%d.v", TagOptPrefix, layer), 0)
}

// GradRing is a bounded host-side ring of synchronized minibatch gradients.
// Entry i holds the post-all-reduce (summed, unscaled) gradient shards of
// minibatch i, keyed by the owning layer's parameter tensor name — exactly
// what the optimizer kernel consumed for that step. The multi-step
// overlapped checkpoint writer reads it back to reconcile snapshot slices
// captured at different iterations (GoCkpt-style): replaying the retained
// gradients through the optimizer update advances a stale slice to the
// generation's target iteration bit-exactly.
type gradRingEntry struct {
	iter  int
	grads map[string]tensor.Vector
}

// GradRing retains the last Capacity minibatch gradients of one rank.
type GradRing struct {
	capacity int
	entries  []gradRingEntry // ordered oldest → newest
}

// NewGradRing returns a ring retaining up to capacity minibatch gradients.
func NewGradRing(capacity int) *GradRing {
	if capacity < 1 {
		capacity = 1
	}
	return &GradRing{capacity: capacity}
}

// Capacity returns the ring's bound.
func (r *GradRing) Capacity() int { return r.capacity }

// Len returns the number of retained iterations.
func (r *GradRing) Len() int { return len(r.entries) }

// Push retains the gradients of one minibatch, evicting the oldest entry
// when full. Re-pushing an iteration already present replaces it (recovery
// re-executes minibatches deterministically, so the payload is identical).
func (r *GradRing) Push(iter int, grads map[string]tensor.Vector) {
	for i := range r.entries {
		if r.entries[i].iter == iter {
			r.entries[i].grads = grads
			return
		}
	}
	r.entries = append(r.entries, gradRingEntry{iter: iter, grads: grads})
	if len(r.entries) > r.capacity {
		r.entries = r.entries[1:]
	}
}

// GradAt returns the retained gradient map of a minibatch, if present.
func (r *GradRing) GradAt(iter int) (map[string]tensor.Vector, bool) {
	for i := range r.entries {
		if r.entries[i].iter == iter {
			return r.entries[i].grads, true
		}
	}
	return nil, false
}

// Reset drops every retained entry (restore paths: the post-restore replay
// re-pushes identical gradients as it re-executes).
func (r *GradRing) Reset() { r.entries = r.entries[:0] }

// EnableGradRing attaches a gradient ring retaining the last capacity
// minibatch gradients; each RunIter pushes its synchronized gradients after
// the optimizer step retires. Requires a device API with the privileged
// zero-time buffer read (statePeeker); the push is free on the virtual
// clock — the gradients were just materialized on-device, and the ring
// models the framework keeping a host-side reference alive.
func (w *Worker) EnableGradRing(capacity int) {
	w.gradRing = NewGradRing(capacity)
}

// GradRing returns the worker's gradient ring (nil when not enabled).
func (w *Worker) GradRing() *GradRing { return w.gradRing }

// GradScale returns the factor the optimizer kernel applies to the summed
// gradient: 1/(D·accum), turning the all-reduced sum into the mean.
func (w *Worker) GradScale() float32 {
	return float32(1) / float32(w.cfg.Topo.D*w.accumFactor())
}

// pushGradRing clones the synchronized gradient shards of the minibatch
// that just retired into the ring. Runs at the minibatch boundary, after
// the compute stream synchronized, so ls.g holds the all-reduced gradient
// the optimizer consumed.
func (w *Worker) pushGradRing(iter int) {
	pk, ok := w.cfg.API.(statePeeker)
	if !ok {
		return
	}
	grads := make(map[string]tensor.Vector, len(w.layers))
	for _, ls := range w.layers {
		data, err := pk.BufData(ls.g)
		if err != nil {
			return
		}
		grads[ParamTensorName(ls.global)] = data.Clone()
	}
	w.gradRing.Push(iter, grads)
}

// LayerGlobals returns the global indices of the layers this rank owns, in
// pipeline order.
func (w *Worker) LayerGlobals() []int {
	out := make([]int, len(w.layers))
	for i, ls := range w.layers {
		out[i] = ls.global
	}
	return out
}

// ReconcileTensors advances the parameter/optimizer tensors of the given
// global layers inside ms from fromIter to targetIter by replaying retained
// gradients through the exact optimizer update the device kernels run —
// the same float32 operation order, so the reconciled state is bit-exact
// against a run that never went stale. grads(iter) must return the
// synchronized (summed, unscaled) gradient map of that minibatch, keyed by
// parameter tensor name; scale is the worker's GradScale. The tensors are
// mutated in place, so callers pass an owned (cloned/decoded) ModelState.
// It errors cleanly when a needed iteration fell out of the ring.
func ReconcileTensors(ms *ModelState, layers []int, fromIter, targetIter int,
	opt OptimizerSpec, scale float32,
	grads func(iter int) (map[string]tensor.Vector, bool)) error {
	if fromIter > targetIter {
		return fmt.Errorf("train: reconcile backwards %d -> %d", fromIter, targetIter)
	}
	for t := fromIter; t < targetIter; t++ {
		gm, ok := grads(t)
		if !ok {
			return fmt.Errorf("train: gradient ring missing iter %d (cannot reconcile %d -> %d: retained window too short)",
				t, fromIter, targetIter)
		}
		lr := opt.LRAt(t)
		for _, l := range layers {
			g, ok := gm[ParamTensorName(l)]
			if !ok {
				return fmt.Errorf("train: gradient ring iter %d missing layer %d", t, l)
			}
			w := ms.Tensors[ParamTensorName(l)]
			m := ms.Tensors[OptMTensorName(l)]
			if w == nil || m == nil {
				return fmt.Errorf("train: reconcile: state missing layer %d tensors", l)
			}
			switch opt.Kind {
			case Adam:
				v := ms.Tensors[OptVTensorName(l)]
				if v == nil {
					return fmt.Errorf("train: reconcile: state missing layer %d Adam second moment", l)
				}
				// Mirror the adam.step kernel bit for bit (1-based step count).
				b1, b2, eps := opt.Momentum, opt.Beta2, opt.Eps
				tt := float64(t + 1)
				c1 := float32(1 - math.Pow(float64(b1), tt))
				c2 := float32(1 - math.Pow(float64(b2), tt))
				for i := range w {
					gi := g[i] * scale
					m[i] = b1*m[i] + (1-b1)*gi
					v[i] = b2*v[i] + (1-b2)*gi*gi
					mh := m[i] / c1
					vh := v[i] / c2
					w[i] -= lr * mh / (float32(math.Sqrt(float64(vh))) + eps)
				}
			default:
				// Mirror the sgd.step kernel bit for bit.
				beta := opt.Momentum
				for i := range w {
					m[i] = beta*m[i] + g[i]*scale
					w[i] -= lr * m[i]
				}
			}
		}
	}
	return nil
}
