package train

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"jitckpt/internal/cuda"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

// ModelState is the checkpointable training state of one rank: parameter
// and optimizer tensors keyed by their stable names, plus the host CPU
// state (iteration number) needed to resume. Two ranks at the same
// pipeline/tensor/shard position produce interchangeable ModelStates —
// the replica redundancy JIT checkpointing exploits.
type ModelState struct {
	Iter    int
	Rank    int
	Tensors map[string]tensor.Vector
}

// TensorName builds the stable checkpoint name of a buffer: its
// interception-layer tag plus sequence. It is identical across replicas
// and across re-allocations (§4.3's call-stack-hash naming).
func TensorName(tag string, seq int) string { return fmt.Sprintf("%s#%d", tag, seq) }

// SaveModelState copies every parameter and optimizer buffer to the host.
// It uses only D2H memcpys — deliberately no collectives, per §3.2's rule
// for checkpoint functions called during failure handling.
func (w *Worker) SaveModelState(p *vclock.Proc) (*ModelState, error) {
	ms := &ModelState{Iter: w.iter, Rank: w.cfg.Rank, Tensors: make(map[string]tensor.Vector)}
	save := func(b cuda.Buf, tag string) error {
		if b == 0 {
			return nil
		}
		data, err := w.cfg.API.MemcpyD2H(p, b, w.compute)
		if err != nil {
			return fmt.Errorf("train: save %s: %w", tag, err)
		}
		ms.Tensors[TensorName(tag, 0)] = data
		return nil
	}
	for _, ls := range w.layers {
		if err := save(ls.w, fmt.Sprintf("%sL%d.w", TagParamPrefix, ls.global)); err != nil {
			return nil, err
		}
		if err := save(ls.m, fmt.Sprintf("%sL%d.m", TagOptPrefix, ls.global)); err != nil {
			return nil, err
		}
		if err := save(ls.v, fmt.Sprintf("%sL%d.v", TagOptPrefix, ls.global)); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// statePeeker is the privileged zero-time buffer read some device APIs
// expose outside the cuda.API interface (cuda.Driver.BufData, and the
// interception layer's virtual-handle passthrough). The peer-replication
// path uses it to capture state at a minibatch boundary without touching
// the worker's streams; the caller charges transfer time separately.
type statePeeker interface {
	BufData(b cuda.Buf) (tensor.Vector, error)
}

// PeekModelState captures the rank's parameter and optimizer state through
// the privileged BufData path, without issuing stream work or charging
// virtual time. It is only meaningful at a minibatch boundary (after
// RunIter returns, the compute stream is synchronized, so buffer contents
// are the post-optimizer state of the iteration just finished and Iter
// names the next minibatch). Callers model the actual D2H staging cost
// themselves — that is what lets replication overlap the next minibatch.
func (w *Worker) PeekModelState() (*ModelState, error) {
	pk, ok := w.cfg.API.(statePeeker)
	if !ok {
		return nil, fmt.Errorf("train: device API %T has no privileged buffer read", w.cfg.API)
	}
	ms := &ModelState{Iter: w.iter, Rank: w.cfg.Rank, Tensors: make(map[string]tensor.Vector)}
	peek := func(b cuda.Buf, tag string) error {
		if b == 0 {
			return nil
		}
		data, err := pk.BufData(b)
		if err != nil {
			return fmt.Errorf("train: peek %s: %w", tag, err)
		}
		ms.Tensors[TensorName(tag, 0)] = data
		return nil
	}
	for _, ls := range w.layers {
		if err := peek(ls.w, fmt.Sprintf("%sL%d.w", TagParamPrefix, ls.global)); err != nil {
			return nil, err
		}
		if err := peek(ls.m, fmt.Sprintf("%sL%d.m", TagOptPrefix, ls.global)); err != nil {
			return nil, err
		}
		if err := peek(ls.v, fmt.Sprintf("%sL%d.v", TagOptPrefix, ls.global)); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// LoadModelState restores parameter and optimizer buffers from a saved
// state (typically a replica's) and fast-forwards the iteration counter.
func (w *Worker) LoadModelState(p *vclock.Proc, ms *ModelState) error {
	load := func(b cuda.Buf, tag string) error {
		if b == 0 {
			return nil
		}
		data, ok := ms.Tensors[TensorName(tag, 0)]
		if !ok {
			return fmt.Errorf("train: checkpoint missing tensor %s", tag)
		}
		return w.cfg.API.MemcpyH2D(p, b, data, w.compute)
	}
	for _, ls := range w.layers {
		if err := load(ls.w, fmt.Sprintf("%sL%d.w", TagParamPrefix, ls.global)); err != nil {
			return err
		}
		if err := load(ls.m, fmt.Sprintf("%sL%d.m", TagOptPrefix, ls.global)); err != nil {
			return err
		}
		if err := load(ls.v, fmt.Sprintf("%sL%d.v", TagOptPrefix, ls.global)); err != nil {
			return err
		}
	}
	if err := w.cfg.API.StreamSynchronize(p, w.compute); err != nil {
		return err
	}
	w.iter = ms.Iter
	if w.gradRing != nil {
		w.gradRing.Reset()
	}
	return nil
}

// Encode serializes a ModelState for a checkpoint store.
func (ms *ModelState) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ms); err != nil {
		return nil, fmt.Errorf("train: encode model state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModelState deserializes a ModelState written by Encode.
func DecodeModelState(b []byte) (*ModelState, error) {
	var ms ModelState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ms); err != nil {
		return nil, fmt.Errorf("train: decode model state: %w", err)
	}
	return &ms, nil
}

// Checksum returns a content hash of the state, name-ordered, for
// comparing replicas and validating recovery.
func (ms *ModelState) Checksum() uint64 {
	names := make([]string, 0, len(ms.Tensors))
	for n := range ms.Tensors {
		names = append(names, n)
	}
	sort.Strings(names)
	var sum uint64 = 1469598103934665603
	for _, n := range names {
		sum ^= ms.Tensors[n].Checksum()
		sum *= 1099511628211
	}
	return sum
}

// ModelStateBytes returns the modelled byte size of the rank's parameter
// plus optimizer state — the volume a checkpoint must move.
func (w *Worker) ModelStateBytes() int64 {
	return w.cfg.Model.ParamBytesPerGPU + w.cfg.Model.OptBytesPerGPU
}

// Snapshot is the worker's host CPU state captured by the CRIU-style
// process checkpoint: everything needed to resume the loop at a minibatch
// boundary. GPU-side state travels separately (JIT checkpoint files).
type Snapshot struct {
	Iter int
	Gen  int
}

// Snapshot captures the worker's CPU-side state.
func (w *Worker) Snapshot() Snapshot { return Snapshot{Iter: w.iter, Gen: w.gen} }

// RestoreSnapshot reinstates captured CPU-side state.
func (w *Worker) RestoreSnapshot(s Snapshot) {
	w.iter = s.Iter
	w.gen = s.Gen
}

// ParamBufs returns the virtual handles of parameter and optimizer
// buffers, with their tags, for controller-side replica copies (§4.2.2).
func (w *Worker) ParamBufs() map[string]cuda.Buf {
	out := make(map[string]cuda.Buf)
	for _, ls := range w.layers {
		out[TensorName(fmt.Sprintf("%sL%d.w", TagParamPrefix, ls.global), 0)] = ls.w
		out[TensorName(fmt.Sprintf("%sL%d.m", TagOptPrefix, ls.global), 0)] = ls.m
		if ls.v != 0 {
			out[TensorName(fmt.Sprintf("%sL%d.v", TagOptPrefix, ls.global), 0)] = ls.v
		}
	}
	return out
}
