package train

import (
	"fmt"

	"jitckpt/internal/cuda"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Hooks are the framework callbacks the interception layer needs (§4.2.2:
// "pre-optimizer-step and post-optimizer-step callback hooks in the ML
// framework"), plus the minibatch boundary that rolls the replay log.
type Hooks struct {
	StartMinibatch func(iter int)
	// PreOptimizer receives the worker's process and the iteration: the
	// interception layer's §4.1 validation runs here (it must execute in
	// the worker's own thread, at the end of backward, on every rank at
	// the same iteration).
	PreOptimizer  func(p *vclock.Proc, iter int)
	PostOptimizer func()
}

// Config configures one worker rank.
type Config struct {
	// Name is a diagnostic label; JobKey prefixes communicator keys.
	Name   string
	JobKey string
	Rank   int
	Topo   Topology
	Model  ModelSpec
	Opt    OptimizerSpec
	Step   StepTime
	// API is the device API the worker programs against: a local driver,
	// a proxy client, or an interception layer — the worker cannot tell.
	API   cuda.API
	Hooks Hooks
	// DataSeed drives the synthetic dataset.
	DataSeed uint64
	// Accum is the gradient-accumulation factor: each RunIter executes
	// Accum microbatches, accumulating local gradients, and performs one
	// data-parallel all-reduce and optimizer step over the sum. 0 or 1
	// means the plain single-microbatch step. Elastic degraded mode sets
	// Accum = D_full/D_degraded so the global batch (and therefore the
	// step semantics) is preserved at reduced width: iteration i consumes
	// exactly the samples [i*D*Accum, (i+1)*D*Accum).
	Accum int
	// GIL, when set, is held across each minibatch's device calls —
	// reproducing the interpreter-lock behaviour (§3.2, including the
	// footnote's "violations of best practice") that the user-level
	// checkpoint path must work around.
	GIL *vclock.Mutex
	// OnLoss receives the minibatch loss (last pipeline stage only).
	OnLoss func(iter int, loss float32)
}

// layerState holds the device buffers of one locally-owned layer.
type layerState struct {
	global int // global layer index
	rows   int // owned weight rows (shard height)
	rowOff int

	w, g, m, v cuda.Buf // weight shard, gradient shard, optimizer state
	gacc       cuda.Buf // accumulated gradient across microbatches (Accum > 1)
	zFull      cuda.Buf // pre-activation, full width
	dzFull     cuda.Buf
	zPart      cuda.Buf // TP only: this rank's pre-activation rows
	dzPart     cuda.Buf
	wFull      cuda.Buf // FSDP only: allgathered weights
	gFull      cuda.Buf // FSDP only: full gradient before reduce-scatter

	// Prebuilt launch parameters for this layer's kernels, constructed once
	// by buildLaunchParams so steady-state iterations reuse the argument
	// slices instead of allocating fresh ones per launch. Safe because every
	// device API captures argument values at call time; only the optimizer
	// entry mutates (learning rate, Adam step count), in place.
	fwdLin, fwdAct          cuda.LaunchParams
	bwdAct, bwdSlice        cuda.LaunchParams
	bwdDw, bwdDx            cuda.LaunchParams
	accSeed, accAdd, accOut cuda.LaunchParams
	opt                     cuda.LaunchParams
}

// Worker is one training rank: it owns that rank's buffers, streams and
// communicators, and runs the minibatch loop.
type Worker struct {
	cfg     Config
	d, p, t int

	layers []*layerState
	acts   []cuda.Buf // activation chain, len(layers)+1
	dacts  []cuda.Buf
	yBuf   cuda.Buf
	lossB  cuda.Buf

	compute cuda.Stream
	comm    cuda.Stream
	bwdEv   cuda.Event // backward-done, waited on by the comm stream
	arEv    cuda.Event // allreduce-done, waited on by the compute stream

	dpComm    cuda.Comm // plain DP gradient group
	tpComm    cuda.Comm
	ppComm    cuda.Comm
	fsComm    cuda.Comm // FSDP within-group shard comm
	frComm    cuda.Comm // FSDP cross-group replica comm
	worldComm cuda.Comm // all ranks: the pre-optimizer flush barrier
	normBuf   cuda.Buf  // global grad-norm scalar

	lossLP             cuda.LaunchParams // mse.loss (last stage only)
	ds                 Dataset
	xScratch, yScratch tensor.Vector // reused sample buffers
	rankLane           string        // trace lane label, computed once

	gradRing *GradRing // bounded retained-gradient ring (multi-step ckpt)

	gen   int // communicator generation currently in use
	iter  int // next minibatch to execute
	ready bool
}

// NewWorker validates the configuration and returns an un-setup worker.
func NewWorker(cfg Config) (*Worker, error) {
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model.Layers%cfg.Topo.P != 0 {
		return nil, fmt.Errorf("train: %d layers not divisible by %d pipeline stages", cfg.Model.Layers, cfg.Topo.P)
	}
	if cfg.Topo.T > 1 && cfg.Model.Hidden%cfg.Topo.T != 0 {
		return nil, fmt.Errorf("train: hidden %d not divisible by T=%d", cfg.Model.Hidden, cfg.Topo.T)
	}
	if cfg.Topo.FSDP() && cfg.Model.Hidden%cfg.Topo.FSDPShard != 0 {
		return nil, fmt.Errorf("train: hidden %d not divisible by FSDP shard %d", cfg.Model.Hidden, cfg.Topo.FSDPShard)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Topo.World() {
		return nil, fmt.Errorf("train: rank %d out of world %d", cfg.Rank, cfg.Topo.World())
	}
	w := &Worker{cfg: cfg}
	w.d, w.p, w.t = cfg.Topo.Coords(cfg.Rank)
	w.rankLane = trace.Rank(cfg.Rank)
	return w, nil
}

// Rank returns the worker's global rank.
func (w *Worker) Rank() int { return w.cfg.Rank }

// Coords returns the worker's (d, p, t) coordinates.
func (w *Worker) Coords() (d, p, t int) { return w.d, w.p, w.t }

// Iter returns the next minibatch iteration to execute.
func (w *Worker) Iter() int { return w.iter }

// SetIter overrides the next iteration (restore paths).
func (w *Worker) SetIter(i int) { w.iter = i }

// Generation returns the communicator generation in use.
func (w *Worker) Generation() int { return w.gen }

// API returns the device API the worker runs on.
func (w *Worker) API() cuda.API { return w.cfg.API }

// IsLastStage reports whether this rank computes the loss.
func (w *Worker) IsLastStage() bool { return w.p == w.cfg.Topo.P-1 }

// localLayerCount returns layers per pipeline stage.
func (w *Worker) localLayerCount() int { return w.cfg.Model.Layers / w.cfg.Topo.P }

// shard returns this rank's weight-shard geometry.
func (w *Worker) shard() (rows, rowOff int) {
	h := w.cfg.Model.Hidden
	switch {
	case w.cfg.Topo.T > 1:
		rows = h / w.cfg.Topo.T
		return rows, w.t * rows
	case w.cfg.Topo.FSDP():
		rows = h / w.cfg.Topo.FSDPShard
		s := w.d % w.cfg.Topo.FSDPShard
		return rows, s * rows
	default:
		return h, 0
	}
}

// Setup creates communicators (under generation gen), allocates all device
// buffers, and loads the deterministic initial parameters. It must run in
// the worker's process. Re-invoking Setup after a full restart is the
// user-level job-initialization path.
func (w *Worker) Setup(p *vclock.Proc, gen int) error {
	cfg := w.cfg
	api := cfg.API
	topo := cfg.Topo
	w.gen = gen

	// Communicators, in an order uniform across ranks so rendezvous
	// waves cannot deadlock. The world communicator carries the global
	// gradient-norm all-reduce that real frameworks run before the
	// optimizer (Megatron's clip_grad_norm): it is the whole-job barrier
	// that guarantees either no rank has entered the optimizer step or
	// every rank's gradients are fully synchronized — the invariant the
	// §3.3 checkpoint-consistency argument rests on.
	var err error
	if topo.World() > 1 {
		if w.worldComm, err = api.CommInit(p, cfg.JobKey+".world", gen, topo.World(), cfg.Rank); err != nil {
			return fmt.Errorf("train: world comm: %w", err)
		}
	}
	if topo.FSDP() {
		k := topo.FSDPShard
		g, s := w.d/k, w.d%k
		if w.fsComm, err = api.CommInit(p, FSDPShardCommKey(cfg.JobKey, g, w.p), gen, k, s); err != nil {
			return fmt.Errorf("train: fsdp shard comm: %w", err)
		}
		if topo.FSDPGroups() > 1 {
			if w.frComm, err = api.CommInit(p, FSDPRepCommKey(cfg.JobKey, s, w.p), gen, topo.FSDPGroups(), g); err != nil {
				return fmt.Errorf("train: fsdp replica comm: %w", err)
			}
		}
	} else if topo.D > 1 {
		if w.dpComm, err = api.CommInit(p, DPCommKey(cfg.JobKey, w.p, w.t), gen, topo.D, w.d); err != nil {
			return fmt.Errorf("train: dp comm: %w", err)
		}
	}
	if topo.T > 1 {
		if w.tpComm, err = api.CommInit(p, TPCommKey(cfg.JobKey, w.d, w.p), gen, topo.T, w.t); err != nil {
			return fmt.Errorf("train: tp comm: %w", err)
		}
	}
	if topo.P > 1 {
		if w.ppComm, err = api.CommInit(p, PPCommKey(cfg.JobKey, w.d, w.t), gen, topo.P, w.p); err != nil {
			return fmt.Errorf("train: pp comm: %w", err)
		}
	}

	if w.compute, err = api.StreamCreate(p); err != nil {
		return err
	}
	if w.comm, err = api.StreamCreate(p); err != nil {
		return err
	}
	if w.bwdEv, err = api.EventCreate(p); err != nil {
		return err
	}
	if w.arEv, err = api.EventCreate(p); err != nil {
		return err
	}

	if err := w.allocBuffers(p); err != nil {
		return err
	}
	w.buildLaunchParams()
	if err := w.initParams(p); err != nil {
		return err
	}
	if err := api.StreamSynchronize(p, w.compute); err != nil {
		return err
	}
	w.ready = true
	return nil
}

// allocBuffers allocates every device buffer this rank owns.
func (w *Worker) allocBuffers(p *vclock.Proc) error {
	cfg := w.cfg
	api := cfg.API
	h := cfg.Model.Hidden
	n := w.localLayerCount()
	rows, rowOff := w.shard()

	paramBytes := cfg.Model.ParamBytesPerGPU / int64(n)
	optBytes := cfg.Model.OptBytesPerGPU / int64(n)
	if cfg.Opt.Kind == Adam {
		optBytes /= 2
	}
	actBytes := cfg.Model.ParamBytesPerGPU / int64(4*(n+1))
	if actBytes <= 0 {
		actBytes = 1 << 10
	}

	alloc := func(bytes int64, elems int, tag string) (cuda.Buf, error) {
		b, err := api.Malloc(p, bytes, elems, tag)
		if err != nil {
			return 0, fmt.Errorf("train: alloc %s: %w", tag, err)
		}
		return b, nil
	}

	for li := 0; li < n; li++ {
		gl := w.p*n + li
		ls := &layerState{global: gl, rows: rows, rowOff: rowOff}
		var err error
		if ls.w, err = alloc(paramBytes, rows*h, fmt.Sprintf("%sL%d.w", TagParamPrefix, gl)); err != nil {
			return err
		}
		if ls.g, err = alloc(paramBytes, rows*h, fmt.Sprintf("%sL%d.dw", TagGradPrefix, gl)); err != nil {
			return err
		}
		if cfg.Accum > 1 {
			if ls.gacc, err = alloc(paramBytes, rows*h, fmt.Sprintf("%sL%d.dwacc", TagGradPrefix, gl)); err != nil {
				return err
			}
		}
		if ls.m, err = alloc(optBytes, rows*h, fmt.Sprintf("%sL%d.m", TagOptPrefix, gl)); err != nil {
			return err
		}
		if cfg.Opt.Kind == Adam {
			if ls.v, err = alloc(optBytes, rows*h, fmt.Sprintf("%sL%d.v", TagOptPrefix, gl)); err != nil {
				return err
			}
		}
		if ls.zFull, err = alloc(actBytes, h, fmt.Sprintf("%sL%d.z", TagActPrefix, gl)); err != nil {
			return err
		}
		if ls.dzFull, err = alloc(actBytes, h, fmt.Sprintf("%sL%d.dz", TagGradPrefix, gl)); err != nil {
			return err
		}
		if cfg.Topo.T > 1 {
			if ls.zPart, err = alloc(actBytes, rows, fmt.Sprintf("%sL%d.zp", TagActPrefix, gl)); err != nil {
				return err
			}
			if ls.dzPart, err = alloc(actBytes, rows, fmt.Sprintf("%sL%d.dzp", TagGradPrefix, gl)); err != nil {
				return err
			}
		}
		if cfg.Topo.FSDP() {
			if ls.wFull, err = alloc(paramBytes*int64(cfg.Topo.FSDPShard), h*h, fmt.Sprintf("%sL%d.wfull", TagActPrefix, gl)); err != nil {
				return err
			}
			if ls.gFull, err = alloc(paramBytes*int64(cfg.Topo.FSDPShard), h*h, fmt.Sprintf("%sL%d.gfull", TagGradPrefix, gl)); err != nil {
				return err
			}
		}
		w.layers = append(w.layers, ls)
	}

	w.acts = make([]cuda.Buf, n+1)
	w.dacts = make([]cuda.Buf, n+1)
	for i := 0; i <= n; i++ {
		var err error
		if w.acts[i], err = alloc(actBytes, h, fmt.Sprintf("%sh%d", TagActPrefix, i)); err != nil {
			return err
		}
		if w.dacts[i], err = alloc(actBytes, h, fmt.Sprintf("%sdh%d", TagGradPrefix, i)); err != nil {
			return err
		}
	}
	var err error
	if w.yBuf, err = alloc(1<<10, h, TagIOPrefix+"y"); err != nil {
		return err
	}
	if w.lossB, err = alloc(64, 1, TagIOPrefix+"loss"); err != nil {
		return err
	}
	if w.normBuf, err = alloc(64, 1, TagIOPrefix+"gradnorm"); err != nil {
		return err
	}
	return nil
}

// buildLaunchParams precomputes every kernel's launch parameters from the
// freshly allocated buffers, so steady-state iterations launch with the
// same argument slices every time instead of building fresh composite
// literals per call. The device APIs capture argument values at call time,
// which also makes the in-place optimizer mutation (learning rate, Adam
// step count) safe.
func (w *Worker) buildLaunchParams() {
	cfg := w.cfg
	h := cfg.Model.Hidden
	st := cfg.Step
	n := len(w.layers)

	for li, ls := range w.layers {
		in, out := w.acts[li], w.acts[li+1]
		switch {
		case cfg.Topo.FSDP():
			ls.fwdLin = cuda.LaunchParams{
				Kernel: "linear.fwd", Dur: st.FwdPerLayer * 7 / 10,
				Bufs: []cuda.Buf{ls.wFull, in, ls.zFull}, IArgs: []int64{int64(h), int64(h)},
			}
			ls.bwdDw = cuda.LaunchParams{
				Kernel: "linear.bwd.dw", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.dzFull, in, ls.gFull}, IArgs: []int64{int64(h), int64(h)},
			}
			ls.bwdDx = cuda.LaunchParams{
				Kernel: "linear.bwd.dx", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.wFull, ls.dzFull, w.dacts[li]}, IArgs: []int64{int64(h), int64(h)},
			}
		case cfg.Topo.T > 1:
			ls.fwdLin = cuda.LaunchParams{
				Kernel: "linear.fwd", Dur: st.FwdPerLayer * 7 / 10,
				Bufs: []cuda.Buf{ls.w, in, ls.zPart}, IArgs: []int64{int64(ls.rows), int64(h)},
			}
			ls.bwdSlice = cuda.LaunchParams{
				Kernel: "slice.copy", Dur: st.BwdPerLayer / 20,
				Bufs: []cuda.Buf{ls.dzFull, ls.dzPart}, IArgs: []int64{int64(ls.rowOff)},
			}
			ls.bwdDw = cuda.LaunchParams{
				Kernel: "linear.bwd.dw", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.dzPart, in, ls.g}, IArgs: []int64{int64(ls.rows), int64(h)},
			}
			ls.bwdDx = cuda.LaunchParams{
				Kernel: "linear.bwd.dx", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.w, ls.dzPart, w.dacts[li]}, IArgs: []int64{int64(ls.rows), int64(h)},
			}
		default:
			ls.fwdLin = cuda.LaunchParams{
				Kernel: "linear.fwd", Dur: st.FwdPerLayer * 7 / 10,
				Bufs: []cuda.Buf{ls.w, in, ls.zFull}, IArgs: []int64{int64(h), int64(h)},
			}
			ls.bwdDw = cuda.LaunchParams{
				Kernel: "linear.bwd.dw", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.dzFull, in, ls.g}, IArgs: []int64{int64(h), int64(h)},
			}
			ls.bwdDx = cuda.LaunchParams{
				Kernel: "linear.bwd.dx", Dur: st.BwdPerLayer * 45 / 100,
				Bufs: []cuda.Buf{ls.w, ls.dzFull, w.dacts[li]}, IArgs: []int64{int64(h), int64(h)},
			}
		}
		ls.fwdAct = cuda.LaunchParams{
			Kernel: "tanh.fwd", Dur: st.FwdPerLayer * 1 / 10,
			Bufs: []cuda.Buf{ls.zFull, out},
		}
		ls.bwdAct = cuda.LaunchParams{
			Kernel: "tanh.bwd", Dur: st.BwdPerLayer / 10,
			Bufs: []cuda.Buf{w.dacts[li+1], w.acts[li+1], ls.dzFull},
		}
		if cfg.Accum > 1 {
			dur := st.BwdPerLayer / 20
			ls.accSeed = cuda.LaunchParams{
				Kernel: "slice.copy", Dur: dur,
				Bufs: []cuda.Buf{ls.g, ls.gacc}, IArgs: []int64{0},
			}
			ls.accAdd = cuda.LaunchParams{
				Kernel: "acc.add", Dur: dur,
				Bufs: []cuda.Buf{ls.gacc, ls.g},
			}
			ls.accOut = cuda.LaunchParams{
				Kernel: "slice.copy", Dur: dur,
				Bufs: []cuda.Buf{ls.gacc, ls.g}, IArgs: []int64{0},
			}
		}
		scale := float32(1) / float32(cfg.Topo.D*w.accumFactor())
		switch cfg.Opt.Kind {
		case Adam:
			ls.opt = cuda.LaunchParams{
				Kernel: "adam.step", Dur: st.OptPerLayer,
				Bufs:  []cuda.Buf{ls.w, ls.g, ls.m, ls.v},
				FArgs: []float32{0, cfg.Opt.Momentum, cfg.Opt.Beta2, cfg.Opt.Eps, scale},
				IArgs: []int64{0},
			}
		default:
			ls.opt = cuda.LaunchParams{
				Kernel: "sgd.step", Dur: st.OptPerLayer,
				Bufs:  []cuda.Buf{ls.w, ls.g, ls.m},
				FArgs: []float32{0, cfg.Opt.Momentum, scale},
			}
		}
	}

	if w.IsLastStage() {
		w.lossLP = cuda.LaunchParams{
			Kernel: "mse.loss", Dur: st.BwdPerLayer / 10,
			Bufs: []cuda.Buf{w.acts[n], w.yBuf, w.dacts[n], w.lossB},
		}
	}
	w.ds = Dataset{Seed: cfg.DataSeed, Hidden: h}
	if w.xScratch == nil {
		w.xScratch = tensor.NewVector(h)
		w.yScratch = tensor.NewVector(h)
	}
}

// initParams loads the deterministic initial weight shards; optimizer
// state starts zeroed (fresh allocations are zeroed).
func (w *Worker) initParams(p *vclock.Proc) error {
	for _, ls := range w.layers {
		data := InitShard(w.cfg.Model, ls.global, ls.rowOff, ls.rows)
		if err := w.cfg.API.MemcpyH2D(p, ls.w, data, w.compute); err != nil {
			return err
		}
	}
	return nil
}

// RunIter executes one full minibatch: data load, forward, backward,
// gradient synchronization, optimizer step. It returns the loss on the
// last pipeline stage (zero elsewhere).
func (w *Worker) RunIter(p *vclock.Proc) (float32, error) {
	if !w.ready {
		return 0, fmt.Errorf("train: worker %d not set up", w.cfg.Rank)
	}
	// The iter span closes on return (with err on failure); a kill mid-
	// minibatch unwinds past this frame and leaves it open, which is how
	// the trace marks an interrupted iteration. The nil-recorder guard
	// keeps the untraced hot path free of interface boxing.
	var sp trace.Span
	if rec := trace.Of(p.Env()); rec != nil {
		sp = rec.Begin(p.Now(), "train", w.rankLane, "iter", "iter", w.iter)
	}
	loss, err := w.runIter(p)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return loss, err
	}
	sp.End(p.Now())
	return loss, nil
}

func (w *Worker) runIter(p *vclock.Proc) (float32, error) {
	cfg := w.cfg
	api := cfg.API
	iter := w.iter

	if cfg.Hooks.StartMinibatch != nil {
		cfg.Hooks.StartMinibatch(iter)
	}
	if cfg.GIL != nil {
		cfg.GIL.Lock(p)
		defer func() {
			if cfg.GIL.Owner() == p {
				cfg.GIL.Unlock(p)
			}
		}()
	}

	acc := w.accumFactor()
	for m := 0; m < acc; m++ {
		if err := w.loadData(p, iter, m); err != nil {
			return 0, err
		}
		if err := w.forward(p); err != nil {
			return 0, err
		}
		if err := w.lossAndBackward(p); err != nil {
			return 0, err
		}
		if acc > 1 {
			if err := w.accumulateGrads(p, m, acc); err != nil {
				return 0, err
			}
		}
	}
	if err := w.syncGradients(p); err != nil {
		return 0, err
	}

	if cfg.Hooks.PreOptimizer != nil {
		cfg.Hooks.PreOptimizer(p, iter)
	}
	// The opt-step span covers launch through stream drain — the window in
	// which parameter buffers mutate on the device. It closes only once the
	// synchronize confirms the kernels retired; an error or kill leaves it
	// open (the mutation never completed, so trace invariants skip it).
	var osp trace.Span
	if rec := trace.Of(p.Env()); rec != nil {
		osp = rec.Begin(p.Now(), "train", w.rankLane, "opt-step", "iter", iter)
	}
	if err := w.optimizerStep(p, iter); err != nil {
		return 0, err
	}
	if cfg.Hooks.PostOptimizer != nil {
		cfg.Hooks.PostOptimizer()
	}

	if err := api.StreamSynchronize(p, w.compute); err != nil {
		return 0, err
	}
	osp.End(p.Now())
	if w.gradRing != nil {
		w.pushGradRing(iter)
	}
	var loss float32
	if w.IsLastStage() {
		lv, err := api.MemcpyD2H(p, w.lossB, w.compute)
		if err != nil {
			return 0, err
		}
		loss = lv[0]
		if cfg.OnLoss != nil {
			cfg.OnLoss(iter, loss)
		}
	}
	w.iter = iter + 1
	return loss, nil
}

// accumFactor returns the effective gradient-accumulation factor (≥1).
func (w *Worker) accumFactor() int {
	if w.cfg.Accum > 1 {
		return w.cfg.Accum
	}
	return 1
}

// loadData feeds microbatch m of minibatch iter: x into the first stage
// and y into the last. The sample index walks the dataset so that a job
// at width D with accumulation factor A consumes exactly the samples
// [i*D*A, (i+1)*D*A) in iteration i — the same global batch a job at
// width D*A without accumulation would consume.
func (w *Worker) loadData(p *vclock.Proc, iter, m int) error {
	cfg := w.cfg
	sample := (iter*w.accumFactor()+m)*cfg.Topo.D + w.d
	if w.p == 0 || w.IsLastStage() {
		w.ds.SampleInto(sample, w.xScratch, w.yScratch)
	}
	if w.p == 0 {
		if err := cfg.API.MemcpyH2D(p, w.acts[0], w.xScratch, w.compute); err != nil {
			return err
		}
	}
	if w.IsLastStage() {
		if err := cfg.API.MemcpyH2D(p, w.yBuf, w.yScratch, w.compute); err != nil {
			return err
		}
	}
	return nil
}

// forward runs the local layers, receiving/sending stage boundaries.
func (w *Worker) forward(p *vclock.Proc) error {
	cfg := w.cfg
	api := cfg.API

	if cfg.Topo.P > 1 && w.p > 0 {
		if err := api.Recv(p, w.ppComm, w.acts[0], w.p-1, w.compute); err != nil {
			return err
		}
	}
	for _, ls := range w.layers {
		switch {
		case cfg.Topo.FSDP():
			if err := api.AllGather(p, w.fsComm, ls.w, ls.wFull, w.compute); err != nil {
				return err
			}
			if err := api.Launch(p, ls.fwdLin, w.compute); err != nil {
				return err
			}
		case cfg.Topo.T > 1:
			if err := api.Launch(p, ls.fwdLin, w.compute); err != nil {
				return err
			}
			if err := api.AllGather(p, w.tpComm, ls.zPart, ls.zFull, w.compute); err != nil {
				return err
			}
		default:
			if err := api.Launch(p, ls.fwdLin, w.compute); err != nil {
				return err
			}
		}
		if err := api.Launch(p, ls.fwdAct, w.compute); err != nil {
			return err
		}
	}
	if cfg.Topo.P > 1 && !w.IsLastStage() {
		n := len(w.layers)
		if err := api.Send(p, w.ppComm, w.acts[n], w.p+1, w.compute); err != nil {
			return err
		}
	}
	return nil
}

// lossAndBackward computes the loss gradient (last stage) or receives it
// (other stages), then runs the local backward pass.
func (w *Worker) lossAndBackward(p *vclock.Proc) error {
	cfg := w.cfg
	api := cfg.API
	n := len(w.layers)

	if w.IsLastStage() {
		if err := api.Launch(p, w.lossLP, w.compute); err != nil {
			return err
		}
	} else if cfg.Topo.P > 1 {
		if err := api.Recv(p, w.ppComm, w.dacts[n], w.p+1, w.compute); err != nil {
			return err
		}
	}

	for li := n - 1; li >= 0; li-- {
		ls := w.layers[li]
		if err := api.Launch(p, ls.bwdAct, w.compute); err != nil {
			return err
		}
		switch {
		case cfg.Topo.FSDP():
			if err := api.Launch(p, ls.bwdDw, w.compute); err != nil {
				return err
			}
			if err := api.Launch(p, ls.bwdDx, w.compute); err != nil {
				return err
			}
			if err := api.ReduceScatter(p, w.fsComm, ls.gFull, ls.g, w.compute); err != nil {
				return err
			}
		case cfg.Topo.T > 1:
			if err := api.Launch(p, ls.bwdSlice, w.compute); err != nil {
				return err
			}
			if err := api.Launch(p, ls.bwdDw, w.compute); err != nil {
				return err
			}
			if err := api.Launch(p, ls.bwdDx, w.compute); err != nil {
				return err
			}
			// Each TP rank computed a partial input gradient: sum them.
			if err := api.AllReduce(p, w.tpComm, w.dacts[li], w.compute); err != nil {
				return err
			}
		default:
			if err := api.Launch(p, ls.bwdDw, w.compute); err != nil {
				return err
			}
			if err := api.Launch(p, ls.bwdDx, w.compute); err != nil {
				return err
			}
		}
	}
	if cfg.Topo.P > 1 && w.p > 0 {
		if err := api.Send(p, w.ppComm, w.dacts[0], w.p-1, w.compute); err != nil {
			return err
		}
	}
	return nil
}

// accumulateGrads folds microbatch m's local gradients into the
// accumulation buffers (Accum > 1 only). The first microbatch seeds the
// accumulator by copy; after the last, the sum is copied back into the
// regular gradient buffers so gradient synchronization and the optimizer
// are oblivious to accumulation.
func (w *Worker) accumulateGrads(p *vclock.Proc, m, acc int) error {
	api := w.cfg.API
	for _, ls := range w.layers {
		lp := ls.accAdd
		if m == 0 {
			lp = ls.accSeed
		}
		if err := api.Launch(p, lp, w.compute); err != nil {
			return err
		}
	}
	if m == acc-1 {
		for _, ls := range w.layers {
			if err := api.Launch(p, ls.accOut, w.compute); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncGradients performs the data-parallel gradient all-reduce on the
// communication stream, wired to the compute stream exactly as Figure 3
// shows: record backward-done on compute, make the comm stream wait for
// it, all-reduce every gradient buffer, record allreduce-done, and make
// the compute stream wait on that before the optimizer runs.
func (w *Worker) syncGradients(p *vclock.Proc) error {
	cfg := w.cfg
	api := cfg.API
	gradComm := w.dpComm
	if cfg.Topo.FSDP() {
		gradComm = w.frComm // cross-group replica all-reduce
	}
	if gradComm == 0 && w.worldComm == 0 {
		return nil // single rank: nothing to synchronize
	}
	if err := api.EventRecord(p, w.bwdEv, w.compute); err != nil {
		return err
	}
	if err := api.StreamWaitEvent(p, w.comm, w.bwdEv); err != nil {
		return err
	}
	if gradComm != 0 {
		for _, ls := range w.layers {
			if err := api.AllReduce(p, gradComm, ls.g, w.comm); err != nil {
				return err
			}
		}
	}
	// Global gradient-norm all-reduce: the whole-world flush barrier
	// before any rank may run its optimizer step.
	if w.worldComm != 0 {
		if err := api.AllReduce(p, w.worldComm, w.normBuf, w.comm); err != nil {
			return err
		}
	}
	if err := api.EventRecord(p, w.arEv, w.comm); err != nil {
		return err
	}
	return api.StreamWaitEvent(p, w.compute, w.arEv)
}

// optimizerStep updates parameters from (averaged) gradients. The Adam
// step count is a pure function of the iteration so recovery replays
// cannot double-count it.
func (w *Worker) optimizerStep(p *vclock.Proc, iter int) error {
	cfg := w.cfg
	api := cfg.API
	lr := cfg.Opt.LRAt(iter)
	for _, ls := range w.layers {
		// In-place mutation of the prebuilt params: the device APIs capture
		// argument values at call time, so the previous launch cannot see it.
		ls.opt.FArgs[0] = lr
		if cfg.Opt.Kind == Adam {
			ls.opt.IArgs[0] = int64(iter + 1)
		}
		if err := api.Launch(p, ls.opt, w.compute); err != nil {
			return err
		}
	}
	return nil
}

// RunIters runs n minibatches, stopping at the first error.
func (w *Worker) RunIters(p *vclock.Proc, n int) error {
	for i := 0; i < n; i++ {
		if _, err := w.RunIter(p); err != nil {
			return fmt.Errorf("train: %s iter %d: %w", w.cfg.Name, w.iter, err)
		}
	}
	return nil
}
