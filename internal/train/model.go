// Package train implements the deep-learning training framework substrate:
// a small but real multi-layer model (every kernel does actual float32
// math), SGD-with-momentum and Adam optimizers, a deterministic synthetic
// data pipeline, and the parallelism schemes the paper's workloads use —
// data parallelism, tensor parallelism, pipeline parallelism, their 3D
// combination, and FSDP-style hybrid sharding (§3.1, Table 2).
//
// The framework is written against cuda.API only, so the same training
// loop runs over a local driver, a device-proxy client, or the
// interception layer — which is precisely the property that makes
// transparent just-in-time checkpointing possible without changing this
// "application" code.
//
// Determinism is load-bearing: two runs with the same seeds produce
// bit-identical parameter and loss trajectories, so the recovery paths can
// be validated against failure-free runs exactly as the paper validates
// "exact floating point match of training losses" (§6.2).
package train

import (
	"fmt"
	"math"

	"jitckpt/internal/cuda"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

// ModelSpec describes the model being trained.
type ModelSpec struct {
	// Layers is the total number of linear+tanh layers.
	Layers int
	// Hidden is the width of every layer (activations are Hidden-long).
	Hidden int
	// Seed drives deterministic parameter initialization; every
	// data-parallel replica initializes identically from it.
	Seed uint64
	// ParamBytesPerGPU is the modelled per-GPU size of parameter state in
	// bytes (paper-scale timing); the real float payload stays small.
	ParamBytesPerGPU int64
	// OptBytesPerGPU is the modelled per-GPU optimizer state size.
	OptBytesPerGPU int64
}

// Validate checks the spec for consistency.
func (m ModelSpec) Validate() error {
	if m.Layers <= 0 || m.Hidden <= 0 {
		return fmt.Errorf("train: model needs positive layers/hidden, got %d/%d", m.Layers, m.Hidden)
	}
	return nil
}

// OptimizerKind selects the parameter update rule.
type OptimizerKind int

const (
	// SGDMomentum is SGD with classical momentum.
	SGDMomentum OptimizerKind = iota
	// Adam is the Adam optimizer (the paper's jobs overwhelmingly use it).
	Adam
)

// OptimizerSpec configures the optimizer.
type OptimizerSpec struct {
	Kind OptimizerKind
	LR   float32
	// Momentum is β for SGDMomentum, β1 for Adam.
	Momentum float32
	// Beta2 and Eps are Adam-only.
	Beta2 float32
	Eps   float32
	// WarmupIters linearly ramps the learning rate from zero (a stand-in
	// for the LR schedulers real jobs run; it is host CPU state that a
	// checkpoint must capture).
	WarmupIters int
}

// DefaultOptimizer returns Adam with common hyperparameters.
func DefaultOptimizer() OptimizerSpec {
	return OptimizerSpec{Kind: Adam, LR: 1e-2, Momentum: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// LRAt returns the learning rate for an iteration (the scheduler).
func (o OptimizerSpec) LRAt(iter int) float32 {
	if o.WarmupIters > 0 && iter < o.WarmupIters {
		return o.LR * float32(iter+1) / float32(o.WarmupIters)
	}
	return o.LR
}

// StepTime models per-layer GPU compute durations, calibrated per workload
// so simulated minibatch times match Table 2's models.
type StepTime struct {
	FwdPerLayer vclock.Time
	BwdPerLayer vclock.Time
	OptPerLayer vclock.Time
}

// Uniform builds a StepTime that splits a target minibatch compute time
// across layers with the usual 1:2:0.3 forward:backward:optimizer ratio.
func Uniform(minibatch vclock.Time, layers int) StepTime {
	unit := float64(minibatch) / float64(layers) / 3.3
	return StepTime{
		FwdPerLayer: vclock.Time(unit),
		BwdPerLayer: vclock.Time(2 * unit),
		OptPerLayer: vclock.Time(0.3 * unit),
	}
}

// Kernels returns the kernel registry shared by client and device-proxy
// server: every mathematical operation the training loop launches.
// All kernels are deterministic and write (rather than accumulate) their
// outputs, so a §4.1 validation replay is idempotent.
func Kernels() cuda.Registry {
	return cuda.Registry{
		// linear.fwd: z[r] = W(r×c) · h(c). IArgs: rows, cols.
		"linear.fwd": func(a cuda.KernelArgs) error {
			w, h, z := a.Bufs[0], a.Bufs[1], a.Bufs[2]
			rows, cols := int(a.IArgs[0]), int(a.IArgs[1])
			if len(w) < rows*cols || len(h) < cols || len(z) < rows {
				return fmt.Errorf("linear.fwd: shape mismatch w=%d h=%d z=%d r=%d c=%d", len(w), len(h), len(z), rows, cols)
			}
			for r := 0; r < rows; r++ {
				var s float32
				row := w[r*cols : (r+1)*cols]
				for c := 0; c < cols; c++ {
					s += row[c] * h[c]
				}
				z[r] = s
			}
			return nil
		},
		// tanh.fwd: h[i] = tanh(z[i]).
		"tanh.fwd": func(a cuda.KernelArgs) error {
			z, h := a.Bufs[0], a.Bufs[1]
			for i := range z {
				h[i] = tensor.Tanh(z[i])
			}
			return nil
		},
		// tanh.bwd: dz[i] = dh[i] * (1 - h[i]^2).
		"tanh.bwd": func(a cuda.KernelArgs) error {
			dh, h, dz := a.Bufs[0], a.Bufs[1], a.Bufs[2]
			for i := range dz {
				dz[i] = dh[i] * tensor.TanhPrime(h[i])
			}
			return nil
		},
		// linear.bwd.dw: dW(r×c) = dz(r) ⊗ h(c) (write, not accumulate).
		"linear.bwd.dw": func(a cuda.KernelArgs) error {
			dz, h, dw := a.Bufs[0], a.Bufs[1], a.Bufs[2]
			rows, cols := int(a.IArgs[0]), int(a.IArgs[1])
			for r := 0; r < rows; r++ {
				out := dw[r*cols : (r+1)*cols]
				dzr := dz[r]
				for c := 0; c < cols; c++ {
					out[c] = dzr * h[c]
				}
			}
			return nil
		},
		// linear.bwd.dx: dhIn(c) = W(r×c)ᵀ · dz(r).
		"linear.bwd.dx": func(a cuda.KernelArgs) error {
			w, dz, dhIn := a.Bufs[0], a.Bufs[1], a.Bufs[2]
			rows, cols := int(a.IArgs[0]), int(a.IArgs[1])
			for c := 0; c < cols; c++ {
				dhIn[c] = 0
			}
			for r := 0; r < rows; r++ {
				row := w[r*cols : (r+1)*cols]
				dzr := dz[r]
				for c := 0; c < cols; c++ {
					dhIn[c] += row[c] * dzr
				}
			}
			return nil
		},
		// mse.loss: loss[0] = mean((h-y)^2); dh[i] = 2(h[i]-y[i])/n.
		"mse.loss": func(a cuda.KernelArgs) error {
			h, y, dh, loss := a.Bufs[0], a.Bufs[1], a.Bufs[2], a.Bufs[3]
			n := float32(len(h))
			var sum float32
			for i := range h {
				d := h[i] - y[i]
				sum += d * d
				dh[i] = 2 * d / n
			}
			loss[0] = sum / n
			return nil
		},
		// slice.copy: part = full[off : off+len(part)]. IArgs: off.
		"slice.copy": func(a cuda.KernelArgs) error {
			full, part := a.Bufs[0], a.Bufs[1]
			off := int(a.IArgs[0])
			copy(part, full[off:off+len(part)])
			return nil
		},
		// sgd.step: m = β·m + g·scale; w -= lr·m. FArgs: lr, β, scale.
		"sgd.step": func(a cuda.KernelArgs) error {
			w, g, m := a.Bufs[0], a.Bufs[1], a.Bufs[2]
			lr, beta, scale := a.FArgs[0], a.FArgs[1], a.FArgs[2]
			for i := range w {
				m[i] = beta*m[i] + g[i]*scale
				w[i] -= lr * m[i]
			}
			return nil
		},
		// adam.step: standard Adam with bias correction.
		// FArgs: lr, β1, β2, eps, scale. IArgs: t (1-based step).
		"adam.step": func(a cuda.KernelArgs) error {
			w, g, m, v := a.Bufs[0], a.Bufs[1], a.Bufs[2], a.Bufs[3]
			lr, b1, b2, eps, scale := a.FArgs[0], a.FArgs[1], a.FArgs[2], a.FArgs[3], a.FArgs[4]
			t := float64(a.IArgs[0])
			c1 := float32(1 - math.Pow(float64(b1), t))
			c2 := float32(1 - math.Pow(float64(b2), t))
			for i := range w {
				gi := g[i] * scale
				m[i] = b1*m[i] + (1-b1)*gi
				v[i] = b2*v[i] + (1-b2)*gi*gi
				mh := m[i] / c1
				vh := v[i] / c2
				w[i] -= lr * mh / (float32(math.Sqrt(float64(vh))) + eps)
			}
			return nil
		},
		// acc.add: dst[i] += src[i]. Gradient accumulation across
		// microbatches (elastic degraded mode). This is the one kernel that
		// accumulates rather than writes; the accumulator is seeded by copy
		// on the first microbatch, and the elastic policies that use it run
		// user-level JIT checkpointing, never the transparent replay path,
		// so §4.1 validation idempotence is unaffected.
		"acc.add": func(a cuda.KernelArgs) error {
			dst, src := a.Bufs[0], a.Bufs[1]
			for i := range dst {
				dst[i] += src[i]
			}
			return nil
		},
		// zero: fill with zeros.
		"zero": func(a cuda.KernelArgs) error {
			for i := range a.Bufs[0] {
				a.Bufs[0][i] = 0
			}
			return nil
		},
	}
}

// Dataset is the deterministic synthetic data pipeline: sample i is a pure
// function of (seed, i), so any rank can regenerate any sample — which is
// how a restarted job resumes mid-epoch with no data-state checkpointing
// beyond the iteration number.
type Dataset struct {
	Seed   uint64
	Hidden int
}

// Sample returns input x and target y for global sample index idx.
func (ds Dataset) Sample(idx int) (x, y tensor.Vector) {
	x = tensor.NewVector(ds.Hidden)
	y = tensor.NewVector(ds.Hidden)
	ds.SampleInto(idx, x, y)
	return x, y
}

// SampleInto writes sample idx into the caller-provided x and y vectors
// (each of length Hidden), letting steady-state data loading reuse one
// scratch pair instead of allocating per microbatch.
func (ds Dataset) SampleInto(idx int, x, y tensor.Vector) {
	rng := tensor.NewRNG(ds.Seed ^ (uint64(idx+1) * 0x9E3779B97F4A7C15))
	rng.FillUniform(x, 1)
	for i := range y {
		// A fixed smooth target function keeps the regression learnable.
		y[i] = tensor.Tanh(x[i]*0.7 + 0.1*x[(i+1)%len(x)])
	}
}

// InitShard deterministically initializes the weight shard for a layer:
// rows [rowOff, rowOff+rows) of layer l's Hidden×Hidden matrix. Every
// data-parallel replica computes identical values, which is the state
// redundancy JIT checkpointing recovers from.
func InitShard(spec ModelSpec, layer, rowOff, rows int) tensor.Vector {
	out := tensor.NewVector(rows * spec.Hidden)
	scale := float32(1.0 / math.Sqrt(float64(spec.Hidden)))
	for r := 0; r < rows; r++ {
		globalRow := rowOff + r
		rng := tensor.NewRNG(spec.Seed ^ (uint64(layer+1) << 32) ^ uint64(globalRow+1)*0x2545F4914F6CDD1D)
		row := out[r*spec.Hidden : (r+1)*spec.Hidden]
		rng.FillUniform(row, scale)
	}
	return out
}
