package train

import (
	"fmt"
	"testing"

	"jitckpt/internal/vclock"
)

// TestIterationAllocBudget pins the steady-state allocation budget of one
// data-parallel training iteration (2 ranks). Launch parameters are built
// once in Setup, minibatch samples land in per-worker scratch vectors, and
// the driver/NCCL layers serve requests from pools — so the marginal cost
// of an iteration is a small constant, not proportional to layers × ranks.
// Measured as a long-minus-short complete-run delta because a finished Env
// cannot be resumed; the fixed setup cost cancels.
func TestIterationAllocBudget(t *testing.T) {
	measure := func(iters int) float64 {
		return testing.AllocsPerRun(5, func() {
			j := newJob(t, Topology{D: 2, P: 1, T: 1}, defaultModel(), DefaultOptimizer())
			for i, w := range j.workers {
				i, w := i, w
				j.env.Go(fmt.Sprintf("rank%d", i), func(p *vclock.Proc) {
					if err := w.Setup(p, 0); err != nil {
						t.Errorf("rank %d setup: %v", i, err)
						return
					}
					if err := w.RunIters(p, iters); err != nil {
						t.Errorf("rank %d: %v", i, err)
					}
				})
			}
			if err := j.env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	const short, long = 20, 120
	perIter := (measure(long) - measure(short)) / (long - short)
	t.Logf("%.2f allocs per 2-rank training iteration", perIter)
	// Measured ~90 for 2 ranks (forward + backward + allreduce +
	// optimizer across 2 layers): collective/launch request objects and
	// op completion events. Down from thousands before launch-parameter
	// prebuilding; the guard catches regressions back in that direction.
	const budget = 120.0
	if perIter > budget {
		t.Errorf("one 2-rank training iteration allocates %.2f objects, budget is %.0f", perIter, budget)
	}
}
