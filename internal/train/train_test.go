package train

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/vclock"
)

// job is a test harness running one worker per rank on local drivers.
type job struct {
	env     *vclock.Env
	engine  *nccl.Engine
	workers []*Worker
	losses  map[int]map[int]float32 // rank -> iter -> loss
}

func defaultModel() ModelSpec {
	return ModelSpec{Layers: 2, Hidden: 8, Seed: 42, ParamBytesPerGPU: 1 << 24, OptBytesPerGPU: 1 << 25}
}

func newJob(t *testing.T, topo Topology, model ModelSpec, opt OptimizerSpec) *job {
	t.Helper()
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	j := &job{env: env, engine: engine, losses: make(map[int]map[int]float32)}
	for r := 0; r < topo.World(); r++ {
		dev := gpu.NewDevice(env, r/8, r%8, 1<<34)
		drv, err := cuda.NewDriver(dev, engine, Kernels(), cuda.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		rank := r
		j.losses[rank] = make(map[int]float32)
		w, err := NewWorker(Config{
			Name:     fmt.Sprintf("w%d", rank),
			JobKey:   "job",
			Rank:     rank,
			Topo:     topo,
			Model:    model,
			Opt:      opt,
			Step:     Uniform(10*vclock.Millisecond, model.Layers),
			API:      drv,
			DataSeed: 7,
			OnLoss:   func(iter int, loss float32) { j.losses[rank][iter] = loss },
		})
		if err != nil {
			t.Fatal(err)
		}
		j.workers = append(j.workers, w)
	}
	return j
}

// trainFor runs every worker for n iterations and returns per-rank model
// states.
func (j *job) trainFor(t *testing.T, n int) []*ModelState {
	t.Helper()
	states := make([]*ModelState, len(j.workers))
	for i, w := range j.workers {
		i, w := i, w
		j.env.Go(fmt.Sprintf("rank%d", i), func(p *vclock.Proc) {
			if err := w.Setup(p, 0); err != nil {
				t.Errorf("rank %d setup: %v", i, err)
				return
			}
			if err := w.RunIters(p, n); err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			ms, err := w.SaveModelState(p)
			if err != nil {
				t.Errorf("rank %d save: %v", i, err)
				return
			}
			states[i] = ms
		})
	}
	if err := j.env.Run(); err != nil {
		t.Fatal(err)
	}
	return states
}

// lossTrace returns the iter-ordered losses of a last-stage rank.
func (j *job) lossTrace(rank, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = j.losses[rank][i]
	}
	return out
}

func TestSingleWorkerLossDecreases(t *testing.T) {
	j := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), DefaultOptimizer())
	j.trainFor(t, 60)
	tr := j.lossTrace(0, 60)
	if tr[0] <= 0 {
		t.Fatalf("first loss = %v", tr[0])
	}
	if tr[59] >= tr[0]*0.7 {
		t.Fatalf("loss did not decrease: %v -> %v", tr[0], tr[59])
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	run := func() ([]float32, uint64) {
		j := newJob(t, Topology{D: 2, P: 1, T: 1}, defaultModel(), DefaultOptimizer())
		states := j.trainFor(t, 20)
		return j.lossTrace(0, 20), states[0].Checksum()
	}
	l1, c1 := run()
	l2, c2 := run()
	for i := range l1 {
		if math.Float32bits(l1[i]) != math.Float32bits(l2[i]) {
			t.Fatalf("loss diverged at iter %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("model checksums diverged: %#x vs %#x", c1, c2)
	}
}

func TestDataParallelReplicasStayIdentical(t *testing.T) {
	// The core redundancy property JIT checkpointing relies on: after any
	// number of iterations, all DP replicas hold bit-identical parameter
	// and optimizer state.
	j := newJob(t, Topology{D: 4, P: 1, T: 1}, defaultModel(), DefaultOptimizer())
	states := j.trainFor(t, 15)
	base := states[0].Checksum()
	for r := 1; r < 4; r++ {
		if states[r].Checksum() != base {
			t.Fatalf("replica %d diverged from replica 0", r)
		}
	}
}

func TestTensorParallelMatchesSingleGPU(t *testing.T) {
	model := defaultModel()
	single := newJob(t, Topology{D: 1, P: 1, T: 1}, model, DefaultOptimizer())
	sStates := single.trainFor(t, 12)
	sharded := newJob(t, Topology{D: 1, P: 1, T: 2}, model, DefaultOptimizer())
	tStates := sharded.trainFor(t, 12)

	// Reassemble the sharded layer-0 weights (rank 0 rows then rank 1
	// rows) and compare with the single-GPU weights bit for bit.
	full := sStates[0].Tensors[TensorName(TagParamPrefix+"L0.w", 0)]
	top := tStates[0].Tensors[TensorName(TagParamPrefix+"L0.w", 0)]
	bottom := tStates[1].Tensors[TensorName(TagParamPrefix+"L0.w", 0)]
	if len(top)+len(bottom) != len(full) {
		t.Fatalf("shard sizes %d+%d != %d", len(top), len(bottom), len(full))
	}
	// TP groups the input-gradient reduction differently than a single
	// GPU (partial sums per shard, then all-reduce), so results agree
	// numerically but not bit-for-bit — exactly as on real hardware.
	recombined := append(append([]float32{}, top...), bottom...)
	for i := range full {
		if diff := math.Abs(float64(full[i] - recombined[i])); diff > 1e-4 {
			t.Fatalf("TP weights diverge from single-GPU at %d: %v vs %v", i, full[i], recombined[i])
		}
	}
	ls, lt := single.lossTrace(0, 12), sharded.lossTrace(0, 12)
	for i := range ls {
		if diff := math.Abs(float64(ls[i] - lt[i])); diff > 1e-4*math.Max(1, math.Abs(float64(ls[i]))) {
			t.Fatalf("TP loss diverges at iter %d: %v vs %v", i, ls[i], lt[i])
		}
	}
}

func TestPipelineParallelMatchesSingleGPU(t *testing.T) {
	model := defaultModel() // 2 layers -> 2 stages of 1 layer
	single := newJob(t, Topology{D: 1, P: 1, T: 1}, model, DefaultOptimizer())
	single.trainFor(t, 12)
	piped := newJob(t, Topology{D: 1, P: 2, T: 1}, model, DefaultOptimizer())
	piped.trainFor(t, 12)
	// Loss lives on the last stage (rank 1).
	ls, lp := single.lossTrace(0, 12), piped.lossTrace(1, 12)
	for i := range ls {
		if math.Float32bits(ls[i]) != math.Float32bits(lp[i]) {
			t.Fatalf("PP loss diverges at iter %d: %v vs %v", i, ls[i], lp[i])
		}
	}
}

func Test3DParallelJobRunsAndReplicasAgree(t *testing.T) {
	model := ModelSpec{Layers: 4, Hidden: 8, Seed: 42, ParamBytesPerGPU: 1 << 20, OptBytesPerGPU: 1 << 21}
	topo := Topology{D: 2, P: 2, T: 2} // 8 ranks
	j := newJob(t, topo, model, DefaultOptimizer())
	states := j.trainFor(t, 8)
	// Every rank's state must match its data-parallel replica.
	for r := 0; r < topo.World(); r++ {
		for _, rep := range topo.ReplicaRanks(r) {
			if states[r].Checksum() != states[rep].Checksum() {
				t.Fatalf("rank %d and replica %d diverged", r, rep)
			}
		}
	}
}

func TestFSDPHybridShardingRunsAndReplicasAgree(t *testing.T) {
	model := defaultModel()
	topo := Topology{D: 4, P: 1, T: 1, FSDPShard: 2} // 2 groups x 2 shards
	j := newJob(t, topo, model, DefaultOptimizer())
	states := j.trainFor(t, 10)
	// Shard s of group 0 must equal shard s of group 1 bit for bit.
	for r := 0; r < 4; r++ {
		for _, rep := range topo.ReplicaRanks(r) {
			if states[r].Checksum() != states[rep].Checksum() {
				t.Fatalf("FSDP rank %d and replica %d diverged", r, rep)
			}
		}
	}
	// And learning should still happen.
	tr := j.lossTrace(0, 10)
	if !(tr[9] < tr[0]) {
		t.Fatalf("FSDP loss did not decrease: %v -> %v", tr[0], tr[9])
	}
}

func TestFSDPApproximatesPlainDP(t *testing.T) {
	model := defaultModel()
	plain := newJob(t, Topology{D: 4, P: 1, T: 1}, model, DefaultOptimizer())
	plain.trainFor(t, 10)
	fsdp := newJob(t, Topology{D: 4, P: 1, T: 1, FSDPShard: 2}, model, DefaultOptimizer())
	fsdp.trainFor(t, 10)
	lp, lf := plain.lossTrace(0, 10), fsdp.lossTrace(0, 10)
	for i := range lp {
		diff := math.Abs(float64(lp[i] - lf[i]))
		if diff > 1e-4*math.Max(1, math.Abs(float64(lp[i]))) {
			t.Fatalf("FSDP loss differs from DP at iter %d: %v vs %v", i, lp[i], lf[i])
		}
	}
}

func TestModelStateEncodeDecode(t *testing.T) {
	j := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), DefaultOptimizer())
	states := j.trainFor(t, 3)
	raw, err := states[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModelState(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != states[0].Checksum() || got.Iter != states[0].Iter {
		t.Fatal("model state round trip lost content")
	}
}

func TestLoadModelStateRestoresTraining(t *testing.T) {
	// Train 10 iters, snapshot at 5, restore into a fresh worker, train 5
	// more: final state must match bit for bit.
	model := defaultModel()
	ref := newJob(t, Topology{D: 1, P: 1, T: 1}, model, DefaultOptimizer())
	refStates := ref.trainFor(t, 10)

	mid := newJob(t, Topology{D: 1, P: 1, T: 1}, model, DefaultOptimizer())
	midStates := mid.trainFor(t, 5)

	resumed := newJob(t, Topology{D: 1, P: 1, T: 1}, model, DefaultOptimizer())
	var finalSum uint64
	w := resumed.workers[0]
	resumed.env.Go("resume", func(p *vclock.Proc) {
		if err := w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		if err := w.LoadModelState(p, midStates[0]); err != nil {
			t.Error(err)
			return
		}
		if w.Iter() != 5 {
			t.Errorf("iter after load = %d", w.Iter())
		}
		if err := w.RunIters(p, 5); err != nil {
			t.Error(err)
			return
		}
		ms, err := w.SaveModelState(p)
		if err != nil {
			t.Error(err)
			return
		}
		finalSum = ms.Checksum()
	})
	if err := resumed.env.Run(); err != nil {
		t.Fatal(err)
	}
	if finalSum != refStates[0].Checksum() {
		t.Fatal("resume-from-checkpoint diverged from continuous run")
	}
}

func TestGILHeldDuringHungIteration(t *testing.T) {
	// Reproduce §3.2's deadlock precondition: the worker's thread hangs
	// inside a device call while holding the GIL; a watchdog must be able
	// to steal it via ForceRelease.
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	drv, err := cuda.NewDriver(dev, engine, Kernels(), cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gil := vclock.NewMutex(env, "gil")
	w, err := NewWorker(Config{
		Name: "w0", JobKey: "job", Rank: 0,
		Topo:  Topology{D: 2, P: 1, T: 1}, // rank 1 never shows up
		Model: defaultModel(), Opt: DefaultOptimizer(),
		Step: Uniform(10*vclock.Millisecond, 2), API: drv,
		DataSeed: 7, GIL: gil,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stolen bool
	env.Go("worker", func(p *vclock.Proc) {
		// Rank 1 joins the rendezvous (via a helper) then vanishes, so
		// the gradient all-reduce hangs and RunIter blocks forever while
		// holding the GIL.
		if err := w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		w.RunIter(p)
	})
	env.Go("ghost-rank1", func(p *vclock.Proc) {
		// Join both rendezvous points so rank 0's Setup completes, then
		// vanish without ever issuing collectives.
		engine.CommInitRank(p, "job.world", 0, 2, 1, nil)
		engine.CommInitRank(p, DPCommKey("job", 0, 0), 0, 2, 1, nil)
	})
	env.Go("watchdog", func(p *vclock.Proc) {
		p.Sleep(vclock.Minute)
		holder := gil.ForceRelease()
		if holder == nil {
			t.Error("GIL was not held by the hung worker")
			return
		}
		gil.Lock(p)
		stolen = true
		gil.Unlock(p)
	})
	if err := env.RunUntil(2 * vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if !stolen {
		t.Fatal("watchdog could not take the GIL")
	}
}

func TestDatasetDeterministicAndDistinct(t *testing.T) {
	ds := Dataset{Seed: 5, Hidden: 16}
	x1, y1 := ds.Sample(3)
	x2, y2 := ds.Sample(3)
	if !x1.Equal(x2) || !y1.Equal(y2) {
		t.Fatal("same index produced different samples")
	}
	x3, _ := ds.Sample(4)
	if x1.Equal(x3) {
		t.Fatal("different indices produced identical samples")
	}
}

func TestInitShardConsistency(t *testing.T) {
	spec := ModelSpec{Layers: 2, Hidden: 8, Seed: 9}
	full := InitShard(spec, 1, 0, 8)
	top := InitShard(spec, 1, 0, 4)
	bottom := InitShard(spec, 1, 4, 4)
	for i := 0; i < 32; i++ {
		if full[i] != top[i] || full[32+i] != bottom[i] {
			t.Fatal("shard init does not tile the full init")
		}
	}
}

func TestTopologyCoordsRoundTripProperty(t *testing.T) {
	f := func(dRaw, pRaw, tRaw, rRaw uint8) bool {
		topo := Topology{D: int(dRaw%4) + 1, P: int(pRaw%4) + 1, T: int(tRaw%4) + 1}
		rank := int(rRaw) % topo.World()
		d, p, tt := topo.Coords(rank)
		return topo.Rank(d, p, tt) == rank &&
			d >= 0 && d < topo.D && p >= 0 && p < topo.P && tt >= 0 && tt < topo.T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaRanks(t *testing.T) {
	topo := Topology{D: 3, P: 2, T: 2}
	reps := topo.ReplicaRanks(topo.Rank(1, 1, 0))
	want := []int{topo.Rank(0, 1, 0), topo.Rank(2, 1, 0)}
	if len(reps) != 2 || reps[0] != want[0] || reps[1] != want[1] {
		t.Fatalf("replicas = %v, want %v", reps, want)
	}
	fs := Topology{D: 4, P: 1, T: 1, FSDPShard: 2}
	reps = fs.ReplicaRanks(1) // group 0 shard 1 -> group 1 shard 1 = rank 3
	if len(reps) != 1 || reps[0] != 3 {
		t.Fatalf("FSDP replicas = %v, want [3]", reps)
	}
	if !fs.HasReplica() {
		t.Fatal("4-rank 2-shard FSDP has replicas")
	}
	if (Topology{D: 2, P: 1, T: 1, FSDPShard: 2}).HasReplica() {
		t.Fatal("single-group FSDP must report no replicas")
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []Topology{
		{D: 0, P: 1, T: 1},
		{D: 2, P: 1, T: 2, FSDPShard: 2},
		{D: 3, P: 1, T: 1, FSDPShard: 2},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("topology %+v should be invalid", c)
		}
	}
	if err := (Topology{D: 4, P: 2, T: 2}).Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestTopologyString(t *testing.T) {
	if s := (Topology{D: 2, P: 4, T: 2}).String(); s != "2D-4P-2T" {
		t.Fatalf("String = %q", s)
	}
	if s := (Topology{D: 4, P: 1, T: 1, FSDPShard: 2}).String(); s != "FSDP(2x2)" {
		t.Fatalf("FSDP String = %q", s)
	}
}

func TestLRWarmup(t *testing.T) {
	o := OptimizerSpec{LR: 1, WarmupIters: 4}
	if o.LRAt(0) != 0.25 || o.LRAt(3) != 1 || o.LRAt(10) != 1 {
		t.Fatalf("warmup schedule wrong: %v %v %v", o.LRAt(0), o.LRAt(3), o.LRAt(10))
	}
}

func TestIsModelState(t *testing.T) {
	if !IsModelState("param.L0.w") || !IsModelState("opt.L3.m") {
		t.Fatal("model state tags not recognized")
	}
	if IsModelState("act.h0") || IsModelState("grad.L0.dw") || IsModelState("io.y") {
		t.Fatal("non-model tags misclassified")
	}
}

func TestUniformStepTime(t *testing.T) {
	st := Uniform(vclock.Seconds(3.3), 10)
	total := 10 * (st.FwdPerLayer + st.BwdPerLayer + st.OptPerLayer)
	if total < vclock.Seconds(3.2) || total > vclock.Seconds(3.4) {
		t.Fatalf("step time budget off: %v", total)
	}
	if st.BwdPerLayer < st.FwdPerLayer {
		t.Fatal("backward should cost more than forward")
	}
}

func BenchmarkMinibatch8RankDP(b *testing.B) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	topo := Topology{D: 8, P: 1, T: 1}
	model := ModelSpec{Layers: 2, Hidden: 8, Seed: 42, ParamBytesPerGPU: 1 << 20, OptBytesPerGPU: 1 << 21}
	for r := 0; r < 8; r++ {
		dev := gpu.NewDevice(env, 0, r, 1<<34)
		drv, err := cuda.NewDriver(dev, engine, Kernels(), cuda.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(Config{
			Name: fmt.Sprintf("w%d", r), JobKey: "job", Rank: r, Topo: topo,
			Model: model, Opt: DefaultOptimizer(),
			Step: Uniform(vclock.Millisecond, 2), API: drv, DataSeed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		rr := r
		env.Go(fmt.Sprintf("rank%d", rr), func(p *vclock.Proc) {
			if err := w.Setup(p, 0); err != nil {
				b.Error(err)
				return
			}
			if err := w.RunIters(p, b.N); err != nil {
				b.Error(err)
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestSGDMomentumTrains(t *testing.T) {
	opt := OptimizerSpec{Kind: SGDMomentum, LR: 0.05, Momentum: 0.9}
	j := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), opt)
	j.trainFor(t, 60)
	tr := j.lossTrace(0, 60)
	if !(tr[59] < tr[0]*0.8) {
		t.Fatalf("SGD+momentum did not learn: %v -> %v", tr[0], tr[59])
	}
}

func TestSGDHasNoSecondMoment(t *testing.T) {
	opt := OptimizerSpec{Kind: SGDMomentum, LR: 0.05, Momentum: 0.9}
	j := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), opt)
	states := j.trainFor(t, 2)
	for name := range states[0].Tensors {
		if name == TensorName(TagOptPrefix+"L0.v", 0) {
			t.Fatal("SGD state should not contain Adam's second moment")
		}
	}
	if _, ok := states[0].Tensors[TensorName(TagOptPrefix+"L0.m", 0)]; !ok {
		t.Fatal("momentum buffer missing from checkpointable state")
	}
}

func TestWarmupChangesEarlyTrajectory(t *testing.T) {
	base := DefaultOptimizer()
	warm := base
	warm.WarmupIters = 8
	j1 := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), base)
	j1.trainFor(t, 10)
	j2 := newJob(t, Topology{D: 1, P: 1, T: 1}, defaultModel(), warm)
	j2.trainFor(t, 10)
	// Identical at iter 0 input, but the scheduler must alter updates:
	// by iteration 3 the losses diverge.
	if j1.lossTrace(0, 10)[3] == j2.lossTrace(0, 10)[3] {
		t.Fatal("warmup schedule had no effect — is the LR scheduler wired?")
	}
}
