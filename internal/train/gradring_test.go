package train

import (
	"fmt"
	"strings"
	"testing"

	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

func cloneState(ms *ModelState) *ModelState {
	out := &ModelState{Iter: ms.Iter, Rank: ms.Rank, Tensors: make(map[string]tensor.Vector, len(ms.Tensors))}
	for n, v := range ms.Tensors {
		out.Tensors[n] = v.Clone()
	}
	return out
}

// ringRun trains one job with a gradient ring on every worker, saving each
// rank's state at iteration mid and at iteration end.
func ringRun(t *testing.T, topo Topology, opt OptimizerSpec, ringCap, mid, end int) (stale, final []*ModelState, rings []*GradRing, scale float32) {
	t.Helper()
	j := newJob(t, topo, defaultModel(), opt)
	stale = make([]*ModelState, len(j.workers))
	final = make([]*ModelState, len(j.workers))
	rings = make([]*GradRing, len(j.workers))
	for i, w := range j.workers {
		i, w := i, w
		w.EnableGradRing(ringCap)
		j.env.Go(fmt.Sprintf("rank%d", i), func(p *vclock.Proc) {
			if err := w.Setup(p, 0); err != nil {
				t.Errorf("rank %d setup: %v", i, err)
				return
			}
			if err := w.RunIters(p, mid); err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			ms, err := w.SaveModelState(p)
			if err != nil {
				t.Errorf("rank %d save: %v", i, err)
				return
			}
			stale[i] = cloneState(ms)
			if err := w.RunIters(p, end-mid); err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			if final[i], err = w.SaveModelState(p); err != nil {
				t.Errorf("rank %d save: %v", i, err)
			}
			rings[i] = w.GradRing()
		})
	}
	if err := j.env.Run(); err != nil {
		t.Fatal(err)
	}
	return stale, final, rings, j.workers[0].GradScale()
}

// TestGradRingReconcileBitExact is the gradient-ring property test: for
// every staleness k ∈ {1..ring capacity}, replaying k retained gradients
// through ReconcileTensors advances a k-iterations-old state to bit-exact
// equality with the oracle (continuously trained) state.
func TestGradRingReconcileBitExact(t *testing.T) {
	const ringCap, end = 6, 14
	opts := map[string]OptimizerSpec{
		"adam":        DefaultOptimizer(),
		"adam-warmup": {Kind: Adam, LR: 1e-2, Momentum: 0.9, Beta2: 0.999, Eps: 1e-8, WarmupIters: 10},
		"sgd":         {Kind: SGDMomentum, LR: 0.05, Momentum: 0.9},
	}
	for name, opt := range opts {
		opt := opt
		t.Run(name, func(t *testing.T) {
			for k := 1; k <= ringCap; k++ {
				stale, final, rings, scale := ringRun(t, Topology{D: 2, P: 1, T: 1}, opt, ringCap, end-k, end)
				for r := range stale {
					got := cloneState(stale[r])
					layers := []int{0, 1}
					if err := ReconcileTensors(got, layers, end-k, end, opt, scale, rings[r].GradAt); err != nil {
						t.Fatalf("k=%d rank %d: %v", k, r, err)
					}
					for tn, want := range final[r].Tensors {
						if !got.Tensors[tn].Equal(want) {
							t.Fatalf("k=%d rank %d tensor %s not bit-exact after reconcile", k, r, tn)
						}
					}
				}
			}
		})
	}
}

// TestGradRingTooShortErrorsCleanly checks that reconciling across more
// steps than the ring retains fails with a clear error naming the missing
// iteration, instead of producing silently wrong state.
func TestGradRingTooShortErrorsCleanly(t *testing.T) {
	const ringCap, end = 3, 12
	k := ringCap + 2
	stale, _, rings, scale := ringRun(t, Topology{D: 1, P: 1, T: 1}, DefaultOptimizer(), ringCap, end-k, end)
	got := cloneState(stale[0])
	err := ReconcileTensors(got, []int{0, 1}, end-k, end, DefaultOptimizer(), scale, rings[0].GradAt)
	if err == nil {
		t.Fatal("reconciling beyond the ring window must fail")
	}
	if !strings.Contains(err.Error(), "gradient ring missing iter") {
		t.Fatalf("unclear error: %v", err)
	}
}

// TestGradRingEvictionAndReplace covers the ring mechanics directly.
func TestGradRingEvictionAndReplace(t *testing.T) {
	r := NewGradRing(2)
	mk := func(x float32) map[string]tensor.Vector {
		return map[string]tensor.Vector{"g": {x}}
	}
	r.Push(0, mk(0))
	r.Push(1, mk(1))
	r.Push(2, mk(2))
	if _, ok := r.GradAt(0); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if g, ok := r.GradAt(1); !ok || g["g"][0] != 1 {
		t.Fatal("iter 1 lost")
	}
	r.Push(2, mk(7))
	if g, _ := r.GradAt(2); g["g"][0] != 7 {
		t.Fatal("re-push did not replace")
	}
	if r.Len() != 2 || r.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Capacity())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if NewGradRing(0).Capacity() != 1 {
		t.Fatal("capacity floor missing")
	}
}
