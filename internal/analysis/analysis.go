// Package analysis implements the paper's §5 failure-overhead model:
// optimal periodic-checkpointing frequency (eq. 3), wasted GPU work for
// periodic checkpointing at that frequency (eqs. 4–6), wasted work for
// user-level and transparent just-in-time checkpointing (eqs. 7–8), the
// §5.1 dollar-cost estimate, and the BERT-L-PT worked example (eqs. 9–10).
//
// All quantities use seconds and per-second rates; converters to and from
// simulated time live with the callers.
package analysis

import (
	"fmt"
	"math"
)

// Params are the model inputs of §5.2.
type Params struct {
	// O is the overhead time of one checkpoint on one GPU, seconds.
	O float64
	// F is the failure rate of one GPU, failures per second.
	F float64
	// R is the fixed recovery cost per failure per GPU, seconds
	// (checkpoint download, process and GPU init, data preparation).
	R float64
	// N is the number of GPUs.
	N int
	// M is the minibatch time, seconds (JIT models only).
	M float64
	// OJit is the steady-state JIT overhead per GPU per unit time
	// (dimensionless; measured near zero in §6).
	OJit float64
}

// PerDay converts a per-day rate to per-second.
func PerDay(x float64) float64 { return x / 86400 }

// OptimalFrequency returns c* = sqrt(N·f / 2o), checkpoints per second
// (eq. 3).
func OptimalFrequency(p Params) float64 {
	if p.O <= 0 || p.F <= 0 || p.N <= 0 {
		return 0
	}
	return math.Sqrt(float64(p.N) * p.F / (2 * p.O))
}

// WastedPeriodicAt returns the wasted GPU time per GPU per unit useful
// time for periodic checkpointing at frequency c (eq. 1 divided by N·t):
// w(c) = c·o + N·f·r + N·f/(2c).
func WastedPeriodicAt(p Params, c float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	nf := float64(p.N) * p.F
	return c*p.O + nf*p.R + nf/(2*c)
}

// WastedPeriodicOptimal returns w* at the optimal frequency (eq. 5):
// w* = sqrt(N·f·o/2) + N·f·r + sqrt(N·f·o/2).
func WastedPeriodicOptimal(p Params) float64 {
	nf := float64(p.N) * p.F
	term := math.Sqrt(nf * p.O / 2)
	return term + nf*p.R + term
}

// WastedFraction converts wasted-per-useful time w into the wasted time
// fraction w_f = w / (1 + w) (eq. 6).
func WastedFraction(w float64) float64 {
	if math.IsInf(w, 1) {
		return 1
	}
	return w / (1 + w)
}

// WastedUserJIT returns wasted time per GPU per unit useful time for
// user-level JIT checkpointing (eq. 7 divided by N·t):
// w = f·o + o_jit + N·f·r + N·f·m/2.
func WastedUserJIT(p Params) float64 {
	nf := float64(p.N) * p.F
	return p.F*p.O + p.OJit + nf*p.R + nf*p.M/2
}

// WastedTransparentJIT returns wasted time per GPU per unit useful time
// for transparent JIT checkpointing of transient errors (eq. 8):
// w = o_jit + N·f·m/2. The fixed cost r vanishes because the CPU process
// survives, and no checkpoint copy happens at all.
func WastedTransparentJIT(p Params) float64 {
	return p.OJit + float64(p.N)*p.F*p.M/2
}

// FallbackParams extend the §5.2 model to the catastrophic failures JIT
// checkpointing cannot handle by itself: failures that destroy every
// healthy replica of some position simultaneously, so no JIT checkpoint
// of it can be taken and recovery falls back to a second tier.
type FallbackParams struct {
	// FCat is the rate of catastrophic (all-replica-loss) failures for
	// the whole job, per second. It is a small fraction of N·f: most
	// failures hit a single GPU or node.
	FCat float64
	// MeanRollback is the expected work redone per catastrophic failure,
	// seconds: half the fallback tier's checkpoint interval for a daily
	// disk checkpoint (43200 s), versus at most one minibatch m for a
	// per-iteration peer shelter.
	MeanRollback float64
}

// DailyFallback returns the fallback term for a 1/day periodic disk
// companion: mean rollback is half a day.
func DailyFallback(fCat float64) FallbackParams {
	return FallbackParams{FCat: fCat, MeanRollback: 43200}
}

// PeerFallback returns the fallback term for a per-iteration peer
// shelter: mean rollback is at most one minibatch (the previous
// iteration's replication may still be in flight, so the sheltered state
// is at most one iteration old).
func PeerFallback(fCat float64, p Params) FallbackParams {
	return FallbackParams{FCat: fCat, MeanRollback: p.M}
}

// WastedJITWithFallback returns wasted time per GPU per unit useful time
// for user-level JIT checkpointing combined with a catastrophic fallback
// tier: eq. 7's terms plus f_cat·(rollback + r) — each catastrophic
// failure redoes the expected rollback and pays the fixed recovery cost
// once more.
func WastedJITWithFallback(p Params, fb FallbackParams) float64 {
	return WastedUserJIT(p) + fb.FCat*(fb.MeanRollback+p.R)
}

// PeerReplicationOverhead returns the critical-path overhead per unit
// useful time of streaming `bytes` of post-optimizer state at `linkBW`
// bytes/second every minibatch of length m seconds. Replication overlaps
// the next minibatch's compute, so the overhead is zero while the
// transfer fits inside a minibatch; only the excess, if any, stalls
// training. (The bandwidth itself rides along with the gradient
// all-reduce window — Checkmate-style piggybacking.)
func PeerReplicationOverhead(bytes int64, linkBW, m float64) float64 {
	if linkBW <= 0 || m <= 0 {
		return math.Inf(1)
	}
	repl := float64(bytes) / linkBW
	if repl <= m {
		return 0
	}
	return (repl - m) / m
}

// MultiStepParams extend the §5.2 model to gradient-reconciled multi-step
// overlapped disk checkpointing: one logical generation is split into
// per-iteration shard slices whose serialization largely overlaps compute,
// and restore replays retained gradient deltas to advance stale slices to
// the generation target.
type MultiStepParams struct {
	// Slices is the number of per-iteration shard slices one generation
	// is split into (≥1; 1 degenerates to plain periodic checkpointing).
	Slices int
	// Hide is the fraction of each slice's serialization hidden behind
	// the next minibatch's compute, in [0,1). The simulator's writer
	// defaults to 0.5.
	Hide float64
	// RReconcile is the extra per-failure recovery cost of replaying the
	// retained gradient ring over the generation's stale slices, seconds
	// per GPU.
	RReconcile float64
}

// WastedMultiStepAt returns wasted time per GPU per unit useful time for
// multi-step overlapped checkpointing at generation frequency c:
//
//	w(c) = c·o·(1−hide) + N·f·(r + r_rec) + N·f/(2c)
//
// The rollback term is unchanged from eq. 1 — reconciliation restores the
// generation to its target iteration, so a multi-step generation loses no
// freshness to its slicing. Relative to WastedPeriodicAt at the same c,
// the overhead term shrinks by c·o·hide at the price of N·f·r_rec; the
// former dominates whenever c·o·hide > N·f·r_rec, which holds for any
// realistic failure rate (failures are rare, checkpoints are not).
func WastedMultiStepAt(p Params, ms MultiStepParams, c float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	hide := ms.Hide
	if ms.Slices <= 1 {
		hide = 0 // a single slice has no next-slice compute to hide behind
	}
	nf := float64(p.N) * p.F
	return c*p.O*(1-hide) + nf*(p.R+ms.RReconcile) + nf/(2*c)
}

// PipeFreeParams model checkpoint-free pipeline-stage recovery: each
// stage's state is retained in a neighbor stage's host memory every
// iteration, and a lost stage is rebuilt from that bundle with zero
// checkpoint reads.
type PipeFreeParams struct {
	// ORetain is the steady-state critical-path overhead of retention per
	// GPU per unit useful time (dimensionless; zero while the bundle
	// transfer fits inside a minibatch, like PeerReplicationOverhead).
	ORetain float64
	// RRebuild is the per-failure cost of rebuilding the lost stage from
	// a neighbor's bundle (link transfer + rebuild compute), seconds.
	RRebuild float64
	// FUncovered is the rate of double faults that kill a stage together
	// with every neighbor hosting its bundle, per second — the only case
	// that touches the disk fallback.
	FUncovered float64
	// FallbackRollback is the expected work redone per uncovered double
	// fault, seconds (half the fallback tier's checkpoint interval).
	FallbackRollback float64
}

// WastedPipeFree returns wasted time per GPU per unit useful time for
// checkpoint-free pipeline recovery:
//
//	w = o_retain + N·f·(r + r_rebuild + m/2) + f_unc·(rollback + r)
//
// There is no checkpoint-write term at all — nothing is ever written to
// storage in the common path — and rollback for a covered failure is at
// most one minibatch, because bundles are refreshed every iteration.
func WastedPipeFree(p Params, pf PipeFreeParams) float64 {
	nf := float64(p.N) * p.F
	return pf.ORetain + nf*(p.R+pf.RRebuild+p.M/2) + pf.FUncovered*(pf.FallbackRollback+p.R)
}

// DollarCost estimates the monthly cost of failure-wasted GPU time under
// periodic checkpointing (§5.1): N GPUs, errorsPerDay failures/day for the
// whole job, each wasting lostHours across all N GPUs, at $/GPU-hour.
func DollarCost(n int, errorsPerDay, lostHoursPerError, dollarPerGPUHour float64) float64 {
	return float64(n) * errorsPerDay * 30 * lostHoursPerError * dollarPerGPUHour
}

// Scaling is one row of the paper's Table 8 for one model and one N.
type Scaling struct {
	N int
	// CStarPerHour is the optimal periodic frequency, checkpoints/hour.
	CStarPerHour float64
	// WfPeriodic, WfUserJIT, WfTransparentJIT are wasted time fractions.
	WfPeriodic       float64
	WfUserJIT        float64
	WfTransparentJIT float64
}

// ScaleModel evaluates the three policies across GPU counts for one
// model's measured constants (o, r, m from Tables 4–5, the failure rate
// from the OPT job).
func ScaleModel(base Params, ns []int) []Scaling {
	out := make([]Scaling, 0, len(ns))
	for _, n := range ns {
		p := base
		p.N = n
		out = append(out, Scaling{
			N:                n,
			CStarPerHour:     OptimalFrequency(p) * 3600,
			WfPeriodic:       WastedFraction(WastedPeriodicOptimal(p)),
			WfUserJIT:        WastedFraction(WastedUserJIT(p)),
			WfTransparentJIT: WastedFraction(WastedTransparentJIT(p)),
		})
	}
	return out
}

// BertExample reproduces the §6.5 worked example for BERT-L-PT
// (o = 5 s, r = 9.9 s, f ≈ 2×10⁻³ per GPU per day): it returns c* in
// checkpoints/hour and w* for the given N, matching eqs. 9–10.
func BertExample(n int) (cStarPerHour, wStar float64) {
	p := Params{O: 5, R: 9.9, F: PerDay(2.0 / 1000), N: n}
	return OptimalFrequency(p) * 3600, WastedPeriodicOptimal(p)
}

// CrossoverN finds the smallest N (by doubling then bisection) at which
// user-level JIT's wasted fraction beats optimal periodic checkpointing.
// It returns 0 if JIT already wins at n=1, and -1 if it never wins below
// the limit.
func CrossoverN(base Params, limit int) int {
	wins := func(n int) bool {
		p := base
		p.N = n
		return WastedUserJIT(p) < WastedPeriodicOptimal(p)
	}
	if wins(1) {
		return 0
	}
	lo, hi := 1, 2
	for !wins(hi) {
		hi *= 2
		if hi > limit {
			return -1
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if wins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// String renders a scaling row like the paper's Table 8 cells.
func (s Scaling) String() string {
	return fmt.Sprintf("N=%d c*=%.2f/hr wf(PC)=%.2f%% wf(UJIT)=%.2f%% wf(TJIT)=%.2f%%",
		s.N, s.CStarPerHour, 100*s.WfPeriodic, 100*s.WfUserJIT, 100*s.WfTransparentJIT)
}
