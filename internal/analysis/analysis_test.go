package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalFrequencyMinimizesWaste(t *testing.T) {
	// Property: W(c*) <= W(c* ± ε) for any positive parameters (eq. 3 is
	// the argmin of eq. 1).
	f := func(oRaw, fRaw, rRaw uint16, nRaw uint8) bool {
		p := Params{
			O: float64(oRaw%1000)/10 + 0.1,
			F: PerDay(float64(fRaw%100)/1000 + 1e-5),
			R: float64(rRaw % 300),
			N: int(nRaw)%4096 + 1,
		}
		c := OptimalFrequency(p)
		if c <= 0 {
			return false
		}
		w := WastedPeriodicAt(p, c)
		return w <= WastedPeriodicAt(p, c*1.01)+1e-12 &&
			w <= WastedPeriodicAt(p, c*0.99)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWastedAtOptimalMatchesClosedForm(t *testing.T) {
	p := Params{O: 5, F: PerDay(0.002), R: 9.9, N: 1024}
	direct := WastedPeriodicAt(p, OptimalFrequency(p))
	closed := WastedPeriodicOptimal(p)
	if math.Abs(direct-closed) > 1e-12 {
		t.Fatalf("closed form %v != direct %v", closed, direct)
	}
}

func TestBertWorkedExample(t *testing.T) {
	// Eq. 9: c* ≈ sqrt(N)/6hr. For N=4 that is one checkpoint every ~3
	// hours (0.33/hr); for N=1024, ~5.54/hr (§6.5).
	c4, _ := BertExample(4)
	if c4 < 0.30 || c4 > 0.37 {
		t.Fatalf("c*(4) = %v/hr, want ~0.33", c4)
	}
	c1024, _ := BertExample(1024)
	if c1024 < 5.2 || c1024 > 5.9 {
		t.Fatalf("c*(1024) = %v/hr, want ~5.54", c1024)
	}
	// Eq. 10: w* = 4.8e-4 sqrt(N) + 2.3e-7 N.
	for _, n := range []int{4, 64, 1024, 8192} {
		_, w := BertExample(n)
		want := 4.8e-4*math.Sqrt(float64(n)) + 2.3e-7*float64(n)
		if math.Abs(w-want)/want > 0.03 {
			t.Fatalf("w*(%d) = %v, want ~%v", n, w, want)
		}
	}
	// §6.5 wasted fractions: 0.1% at N=4, ~1.53% at N=1024.
	_, w4 := BertExample(4)
	if wf := WastedFraction(w4); wf < 0.0008 || wf > 0.0012 {
		t.Fatalf("wf(4) = %v, want ~0.096%%", wf)
	}
	_, w1024 := BertExample(1024)
	if wf := WastedFraction(w1024); wf < 0.014 || wf > 0.017 {
		t.Fatalf("wf(1024) = %v, want ~1.53%%", wf)
	}
}

func TestJITBeatsPeriodicAtScale(t *testing.T) {
	// The headline analytical claim: JIT wasted work grows much slower
	// with N, so it wins for large jobs.
	base := Params{O: 5, F: PerDay(0.002), R: 9.9, M: 0.418, OJit: 0}
	for _, n := range []int{1024, 8192} {
		p := base
		p.N = n
		if WastedUserJIT(p) >= WastedPeriodicOptimal(p) {
			t.Fatalf("user JIT does not beat periodic at N=%d", n)
		}
		if WastedTransparentJIT(p) >= WastedUserJIT(p) {
			t.Fatalf("transparent JIT should beat user JIT at N=%d", n)
		}
	}
}

func TestTransparentJITFlatInN(t *testing.T) {
	// Table 8: transparent JIT's wasted fraction stays nearly flat
	// because only N·f·m/2 grows, and m is sub-second.
	base := Params{O: 5, F: PerDay(0.002), R: 9.9, M: 0.279, OJit: 0.0069}
	p4, p8192 := base, base
	p4.N = 4
	p8192.N = 8192
	w4 := WastedFraction(WastedTransparentJIT(p4))
	w8192 := WastedFraction(WastedTransparentJIT(p8192))
	if w8192 > w4*1.2 {
		t.Fatalf("transparent JIT not flat: %v -> %v", w4, w8192)
	}
}

func TestDollarCost(t *testing.T) {
	// §5.1: 1000 GPUs, 1 error/day, 15 min lost, $4/hr -> $30,000/month;
	// 10,000 GPUs at 10/day -> $3M (quadratic).
	if got := DollarCost(1000, 1, 0.25, 4); math.Abs(got-30000) > 1 {
		t.Fatalf("1000-GPU cost = %v, want 30000", got)
	}
	if got := DollarCost(10000, 10, 0.25, 4); math.Abs(got-3e6) > 1 {
		t.Fatalf("10000-GPU cost = %v, want 3e6", got)
	}
}

func TestScaleModelMonotonicity(t *testing.T) {
	base := Params{O: 5, F: PerDay(0.002), R: 9.9, M: 0.418}
	rows := ScaleModel(base, []int{4, 1024, 8192})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CStarPerHour <= rows[i-1].CStarPerHour {
			t.Fatal("c* must grow with N")
		}
		if rows[i].WfPeriodic <= rows[i-1].WfPeriodic {
			t.Fatal("periodic wf must grow with N")
		}
	}
	// At N=8192 periodic must lose to both JIT variants.
	last := rows[2]
	if last.WfPeriodic <= last.WfUserJIT || last.WfPeriodic <= last.WfTransparentJIT {
		t.Fatalf("periodic should lose at 8192: %+v", last)
	}
}

func TestCrossover(t *testing.T) {
	base := Params{O: 5, F: PerDay(0.002), R: 9.9, M: 0.418, OJit: 0.002}
	n := CrossoverN(base, 1<<20)
	if n < 0 {
		t.Fatal("JIT never wins, which contradicts the paper")
	}
	// Verify it is a true crossover point.
	if n > 1 {
		p := base
		p.N = n - 1
		if WastedUserJIT(p) < WastedPeriodicOptimal(p) {
			t.Fatalf("JIT already wins at %d", n-1)
		}
	}
	p := base
	p.N = n + 1
	if WastedUserJIT(p) >= WastedPeriodicOptimal(p) {
		t.Fatalf("JIT does not win just past crossover %d", n)
	}
}

func TestDegenerateParams(t *testing.T) {
	if OptimalFrequency(Params{}) != 0 {
		t.Fatal("zero params should give zero frequency")
	}
	if !math.IsInf(WastedPeriodicAt(Params{N: 4, F: 1, O: 1}, 0), 1) {
		t.Fatal("zero frequency means unbounded redo work")
	}
	if WastedFraction(math.Inf(1)) != 1 {
		t.Fatal("infinite waste fraction should clamp to 1")
	}
}

func TestWastedFractionBoundsProperty(t *testing.T) {
	f := func(w uint32) bool {
		v := WastedFraction(float64(w) / 1000)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScaleModel(b *testing.B) {
	base := Params{O: 5, F: PerDay(0.002), R: 9.9, M: 0.418}
	ns := []int{4, 16, 64, 256, 1024, 4096, 8192}
	for i := 0; i < b.N; i++ {
		ScaleModel(base, ns)
	}
}

// TestPeerFallbackBeatsDailyFallback: for the same catastrophic failure
// rate, the peer-shelter fallback's wasted time is far below the
// daily-disk fallback's — rollback shrinks from half a day to one
// minibatch.
func TestPeerFallbackBeatsDailyFallback(t *testing.T) {
	p := Params{O: 5, F: PerDay(0.002), R: 9.9, N: 992, M: 0.418}
	fCat := 0.01 * float64(p.N) * p.F // 1% of failures destroy all replicas
	base := WastedUserJIT(p)
	daily := WastedJITWithFallback(p, DailyFallback(fCat))
	peer := WastedJITWithFallback(p, PeerFallback(fCat, p))
	if daily <= base || peer <= base {
		t.Fatalf("fallback terms not additive: base=%g daily=%g peer=%g", base, daily, peer)
	}
	if peer >= daily {
		t.Fatalf("peer fallback (%g) not cheaper than daily (%g)", peer, daily)
	}
	// The gap is the rollback ratio: half a day versus one minibatch.
	if ratio := (daily - base) / (peer - base); ratio < 1000 {
		t.Fatalf("daily/peer excess-waste ratio = %.0f, want >= 1000x", ratio)
	}
	// Zero catastrophic rate degenerates to plain user-level JIT.
	if got := WastedJITWithFallback(p, FallbackParams{}); got != base {
		t.Fatalf("zero-rate fallback = %g, want %g", got, base)
	}
}

// TestPeerReplicationOverheadHiddenByOverlap: replication that fits
// inside one minibatch is free; only the excess stalls training.
func TestPeerReplicationOverheadHiddenByOverlap(t *testing.T) {
	// 30 GB state at 12.5 GB/s = 2.4 s transfer.
	if got := PeerReplicationOverhead(30e9, 12.5e9, 3.0); got != 0 {
		t.Fatalf("overlapped replication charged %g", got)
	}
	// Minibatch 1.2 s: 1.2 s of the 2.4 s transfer is exposed -> 100%.
	got := PeerReplicationOverhead(30e9, 12.5e9, 1.2)
	if got < 0.99 || got > 1.01 {
		t.Fatalf("exposed overhead = %g, want ~1.0", got)
	}
	if !math.IsInf(PeerReplicationOverhead(1e9, 0, 1), 1) {
		t.Fatal("zero bandwidth should be infinite overhead")
	}
}

// TestMultiStepStrictlyCheaperThanPeriodic pins the tentpole inequality:
// at equal checkpoint frequency, overlapped multi-step checkpointing is
// strictly cheaper than plain periodic checkpointing whenever the hidden
// overhead outweighs the reconciliation surcharge — which it does across
// the whole realistic parameter range.
func TestMultiStepStrictlyCheaperThanPeriodic(t *testing.T) {
	f := func(oRaw, fRaw, rRaw uint16, nRaw uint8, sRaw uint8) bool {
		p := Params{
			O: float64(oRaw%1000)/10 + 0.5,
			F: PerDay(float64(fRaw%100)/1000 + 1e-5),
			R: float64(rRaw % 300),
			N: int(nRaw)%4096 + 1,
		}
		ms := MultiStepParams{
			Slices: int(sRaw)%7 + 2, // ≥2: slicing is the point
			Hide:   0.5,
			// Gradient replay is host-side vector math: far below o.
			RReconcile: p.O / 100,
		}
		c := OptimalFrequency(p)
		return WastedMultiStepAt(p, ms, c) < WastedPeriodicAt(p, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiStepDegeneratesToPeriodic: one slice hides nothing, and with a
// free reconcile the model collapses to eq. 1 exactly.
func TestMultiStepDegeneratesToPeriodic(t *testing.T) {
	p := Params{O: 5, F: PerDay(0.002), R: 9.9, N: 1024}
	c := OptimalFrequency(p)
	got := WastedMultiStepAt(p, MultiStepParams{Slices: 1, Hide: 0.9}, c)
	if want := WastedPeriodicAt(p, c); got != want {
		t.Fatalf("single-slice model = %g, want periodic %g", got, want)
	}
	if !math.IsInf(WastedMultiStepAt(p, MultiStepParams{Slices: 2, Hide: 0.5}, 0), 1) {
		t.Fatal("zero frequency should be infinite waste")
	}
}

// TestPipeFreeHasNoCheckpointWriteTerm: pipe-free waste is independent of
// the checkpoint overhead o (nothing is ever written), so inflating o by
// 1000x moves periodic waste but not pipe-free waste — and at realistic
// constants pipe-free beats optimal periodic checkpointing.
func TestPipeFreeHasNoCheckpointWriteTerm(t *testing.T) {
	p := Params{O: 5, F: PerDay(0.002), R: 9.9, N: 1024, M: 0.418}
	pf := PipeFreeParams{
		RRebuild:         2.5,
		FUncovered:       0.01 * float64(p.N) * p.F,
		FallbackRollback: 600,
	}
	w := WastedPipeFree(p, pf)
	big := p
	big.O *= 1000
	if got := WastedPipeFree(big, pf); got != w {
		t.Fatalf("pipe-free waste depends on o: %g vs %g", got, w)
	}
	if w >= WastedPeriodicOptimal(p) {
		t.Fatalf("pipe-free (%g) not cheaper than optimal periodic (%g)",
			w, WastedPeriodicOptimal(p))
	}
	// The double-fault term is additive and vanishes at rate zero.
	noDF := pf
	noDF.FUncovered = 0
	if WastedPipeFree(p, noDF) >= w {
		t.Fatal("double-fault term not additive")
	}
}
