package intercept

import (
	"sort"

	"jitckpt/internal/cuda"
	"jitckpt/internal/vclock"
)

// noteEventRecord tracks which events were last recorded on an identified
// NCCL stream. Only those events become watch-list candidates: they
// trigger exactly when the collectives ahead of them complete (§3.1).
func (l *Layer) noteEventRecord(ev cuda.Event, s cuda.Stream) {
	if l.eventsOnNCCL == nil {
		l.eventsOnNCCL = make(map[cuda.Event]bool)
	}
	l.eventsOnNCCL[ev] = l.ncclStreams[s]
}

// noteStreamWaitEvent adds an NCCL-recorded event to the watch-list when a
// StreamWaitEvent starts waiting on it, and starts the watchdog on the
// first such call (§3.1: "we start a watchdog thread at the first
// intercepted cudaStreamWaitEvent").
func (l *Layer) noteStreamWaitEvent(ev cuda.Event) {
	l.startWatchdog()
	if !l.eventsOnNCCL[ev] {
		return
	}
	if _, ok := l.watch[ev]; !ok {
		l.watch[ev] = &watchEntry{event: ev, addedAt: l.env.Now()}
	}
}

// startWatchdog launches the watchdog process once.
func (l *Layer) startWatchdog() {
	if l.watchdogOn {
		return
	}
	l.watchdogOn = true
	l.watchdogProc = l.env.Go(l.name+".watchdog", l.watchdogLoop)
}

// WatchdogRunning reports whether the watchdog process has been started.
func (l *Layer) WatchdogRunning() bool { return l.watchdogOn }

// StopWatchdog kills the watchdog process. The job-restart path uses it
// when an incarnation's processes are torn down.
func (l *Layer) StopWatchdog() {
	if l.watchdogProc != nil {
		l.watchdogProc.Kill()
		l.watchdogProc = nil
		l.watchdogOn = false
	}
}

// WatchedEvents returns the virtual events currently on the watch-list.
func (l *Layer) WatchedEvents() []cuda.Event {
	out := make([]cuda.Event, 0, len(l.watch))
	for ev := range l.watch {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WatchdogStats reports the adaptive watchdog's learning state.
type WatchdogStats struct {
	// EffectiveTimeout is the current escalated base timeout (equals the
	// configured HangTimeout until a false positive occurs).
	EffectiveTimeout vclock.Time
	// Suspects counts entries whose deadline was extended at least once.
	Suspects int
	// FalsePositives counts suspects that completed before their extended
	// deadline — stragglers, not hangs.
	FalsePositives int
}

// Watchdog returns the adaptive watchdog's statistics.
func (l *Layer) Watchdog() WatchdogStats {
	return WatchdogStats{
		EffectiveTimeout: l.effTimeout,
		Suspects:         l.suspects,
		FalsePositives:   l.falsePositives,
	}
}

// noteFalsePositive records that a suspected hang completed: the workload
// has stragglers slower than the current threshold, so the effective base
// timeout doubles (capped at HangTimeoutMax) to stop tripping on them.
func (l *Layer) noteFalsePositive() {
	l.falsePositives++
	if next := 2 * l.effTimeout; next <= l.cfg.HangTimeoutMax {
		l.effTimeout = next
	} else {
		l.effTimeout = l.cfg.HangTimeoutMax
	}
	l.env.Tracef("%s: watchdog false positive #%d, base timeout now %v",
		l.name, l.falsePositives, l.effTimeout)
}

// finishInflight removes p's in-flight record when its blocking call
// returns, counting a completed suspect as a false positive.
func (l *Layer) finishInflight(p *vclock.Proc) {
	if c, ok := l.inflight[p]; ok {
		if c.suspected {
			l.noteFalsePositive()
		}
		delete(l.inflight, p)
	}
}

// overdue implements the escalation shared by watched events and in-flight
// calls. Fixed mode: hung once age exceeds HangTimeout. Adaptive mode: the
// first missed deadline marks the entry suspect and doubles its window
// (capped at HangTimeoutMax); only a suspect that misses the extended
// deadline is a true hang. It returns the updated deadline/suspected state
// and whether to raise a hang now.
func (l *Layer) overdue(now, started, deadline vclock.Time, suspected bool) (vclock.Time, bool, bool) {
	if !l.cfg.Adaptive {
		return deadline, suspected, now-started > l.cfg.HangTimeout
	}
	if deadline == 0 {
		deadline = started + l.effTimeout
	}
	if now <= deadline {
		return deadline, suspected, false
	}
	if !suspected {
		span := 2 * (deadline - started)
		if span > l.cfg.HangTimeoutMax {
			span = l.cfg.HangTimeoutMax
		}
		deadline = started + span
		l.suspects++
		if now <= deadline {
			l.env.Tracef("%s: watchdog suspects a hang, extending deadline to %v", l.name, deadline)
			return deadline, true, false
		}
		// Even the maximal window has already passed: a true hang.
		return deadline, true, true
	}
	return deadline, suspected, true
}

// watchdogLoop polls watched events with EventQuery and checks the ages of
// in-flight blocking calls. Completed events leave the watch-list; an
// event or blocking call pending longer than the hang timeout — escalated
// per overdue when adaptive mode is on — raises a hang fault (§3.1, §4.2).
// The watchdog idles during recovery.
func (l *Layer) watchdogLoop(p *vclock.Proc) {
	for {
		p.Sleep(l.cfg.WatchdogPoll)
		if l.inRecovery || l.faultRaised {
			continue
		}
		now := p.Now()

		for _, ev := range l.WatchedEvents() {
			we, ok := l.watch[ev]
			if !ok {
				continue
			}
			pe, ok := l.events[ev]
			if !ok {
				delete(l.watch, ev) // event destroyed or remapped away
				continue
			}
			done, err := l.inner.EventQuery(p, pe)
			if err != nil {
				if isInfraFault(err) {
					l.raiseFault(p, FaultError, err)
					break
				}
				delete(l.watch, ev)
				continue
			}
			if done {
				if we.suspected {
					l.noteFalsePositive()
				}
				delete(l.watch, ev)
				continue
			}
			var hung bool
			we.deadline, we.suspected, hung = l.overdue(now, we.addedAt, we.deadline, we.suspected)
			if hung {
				l.raiseFault(p, FaultHang, nil)
				break
			}
		}
		if l.faultRaised {
			continue
		}

		// Blocking device calls that never return are the other hang
		// signal (§4.2: "detect hangs when device APIs never return").
		procs := make([]*vclock.Proc, 0, len(l.inflight))
		for proc := range l.inflight {
			procs = append(procs, proc)
		}
		sort.Slice(procs, func(i, j int) bool {
			return l.inflight[procs[i]].started < l.inflight[procs[j]].started
		})
		for _, proc := range procs {
			c := l.inflight[proc]
			var hung bool
			c.deadline, c.suspected, hung = l.overdue(now, c.started, c.deadline, c.suspected)
			if hung {
				l.raiseFault(p, FaultHang, nil)
				break
			}
		}
	}
}
