// Package intercept implements the domain-aware device-API interception
// layer (§2, §3.1, §4): every device call the training worker makes passes
// through it, which is what enables hang detection, steady-state replay
// logging, virtual handles, and transparent error masking — all without the
// "application" (the training loop) changing or even noticing.
//
// Responsibilities, mapped to the paper:
//
//   - Virtual handles (§4.2): the application receives virtual Buf / Stream
//     / Event / Comm handles. After recovery re-creates GPU objects, the
//     virtual handles are remapped to the new physical handles; the
//     handles stored in application variables keep working.
//
//   - Watchdog hang detection (§3.1): the layer identifies the NCCL stream
//     (the stream collectives are issued on), tracks cudaEvents recorded on
//     it that have StreamWaitEvents waiting on them, and polls them with
//     EventQuery from a watchdog process started at the first intercepted
//     StreamWaitEvent. An event pending longer than the hang timeout, or a
//     blocking call that never returns, raises a fault.
//
//   - Replay logging (§4.1): in transparent mode, every state-mutating call
//     is recorded with its inputs; the log is cleared at each minibatch
//     boundary via StartMinibatch.
//
//   - Fault gate (§4.2): in transparent mode, infrastructure errors
//     (sticky, driver-corrupt, network, proxy-down) are never surfaced to
//     the application. The calling thread parks at the interception layer
//     until the recovery controller finishes, then the call is retried
//     against the recovered state.
//
//   - Checkpoint-time memcpy rerouting (§3.2): while checkpoint mode is
//     active, MemcpyD2H calls are rerouted from the (possibly wedged)
//     default stream to a private fresh stream.
package intercept

import (
	"errors"
	"fmt"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/proxy"
	"jitckpt/internal/replay"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Mode selects which solution the layer supports.
type Mode int

const (
	// ModeUserLevel (§3): hang detection and checkpoint support only.
	// Errors surface to the application; no replay logging (near-zero
	// steady-state overhead).
	ModeUserLevel Mode = iota
	// ModeTransparent (§4): full replay logging, error masking, virtual
	// handle remapping.
	ModeTransparent
)

// FaultKind classifies a detected fault.
type FaultKind int

const (
	// FaultHang means a watched collective or blocking call stopped making
	// progress.
	FaultHang FaultKind = iota
	// FaultError means a device API returned an infrastructure error.
	FaultError
)

// Fault describes a detected failure, delivered to the OnFault callback.
type Fault struct {
	Kind FaultKind
	Err  error
	Iter int
	// InOptimizerStep reports whether the worker was inside the optimizer
	// step when the fault was detected — the §4.2.2 case where state must
	// roll forward to the next minibatch instead of back.
	InOptimizerStep bool
}

// Config configures an interception layer.
type Config struct {
	Mode Mode
	// WatchdogPoll is the EventQuery polling period (default 50 ms).
	WatchdogPoll vclock.Time
	// HangTimeout is how long a watched event or blocking call may pend
	// before it is declared hung (default 30 s).
	HangTimeout vclock.Time
	// Adaptive enables straggler discrimination: instead of raising a hang
	// at the fixed HangTimeout, the watchdog first marks the entry suspect
	// and doubles its deadline (up to HangTimeoutMax). A suspect that
	// completes is a false positive — counted, and the effective base
	// timeout escalates so persistent stragglers stop tripping the
	// watchdog — while a suspect that also misses its extended deadline is
	// declared a true hang.
	Adaptive bool
	// HangTimeoutMax caps the escalated timeout (default 8× HangTimeout).
	HangTimeoutMax vclock.Time
	// OnFault is invoked exactly once per fault episode, with the
	// simulation process that detected the fault (the watchdog process
	// for hangs, the calling thread for API errors). Transparent-mode
	// controllers should signal a recovery process and return quickly;
	// the user-level handler may block in p to take its checkpoint (§3.2
	// runs the save inside the watchdog thread).
	OnFault func(p *vclock.Proc, f Fault)
	// LogReplay enables replay logging (defaults on in transparent mode).
	LogReplay bool
}

// Layer is the interception layer for one worker rank.
type Layer struct {
	env   *vclock.Env
	inner cuda.API
	cfg   Config
	name  string

	log *replay.Log

	// Virtual -> physical handle maps.
	bufs    map[cuda.Buf]cuda.Buf
	streams map[cuda.Stream]cuda.Stream
	events  map[cuda.Event]cuda.Event
	comms   map[cuda.Comm]cuda.Comm
	nextBuf cuda.Buf
	nextStr cuda.Stream
	nextEvt cuda.Event
	nextCom cuda.Comm

	// Virtual buffer metadata: the layer owns tag sequence numbering so
	// checkpoint tensor names stay identical across replicas and across
	// re-allocations during recovery (§4.3).
	bufMeta map[cuda.Buf]cuda.BufInfo
	tagSeq  map[string]int

	// Watchdog state.
	ncclStreams  map[cuda.Stream]bool // virtual streams collectives run on
	eventsOnNCCL map[cuda.Event]bool  // events last recorded on an NCCL stream
	watch        map[cuda.Event]*watchEntry
	watchdogOn   bool
	watchdogProc *vclock.Proc
	inflight     map[*vclock.Proc]*inflightCall

	// Adaptive-watchdog state.
	effTimeout     vclock.Time // current escalated base timeout
	suspects       int
	falsePositives int

	// Fault/recovery state.
	faultRaised bool
	inRecovery  bool
	gate        *vclock.Event
	iter        int
	inOptimizer bool
	ignoreMut   bool

	// Checkpoint mode: reroute D2H copies away from wedged streams.
	ckptMode   bool
	ckptStream cuda.Stream // physical; 0 = not yet created
}

type watchEntry struct {
	event     cuda.Event // virtual
	addedAt   vclock.Time
	deadline  vclock.Time // adaptive mode: current hang deadline (0 = unset)
	suspected bool        // adaptive mode: deadline already extended once
}

type inflightCall struct {
	name      string
	started   vclock.Time
	deadline  vclock.Time
	suspected bool
}

var _ cuda.API = (*Layer)(nil)

// New creates an interception layer wrapping inner.
func New(env *vclock.Env, inner cuda.API, name string, cfg Config) *Layer {
	if cfg.WatchdogPoll <= 0 {
		cfg.WatchdogPoll = 50 * vclock.Millisecond
	}
	if cfg.HangTimeout <= 0 {
		cfg.HangTimeout = 30 * vclock.Second
	}
	if cfg.HangTimeoutMax <= 0 {
		cfg.HangTimeoutMax = 8 * cfg.HangTimeout
	}
	if cfg.Mode == ModeTransparent {
		cfg.LogReplay = true
	}
	return &Layer{
		env:         env,
		inner:       inner,
		cfg:         cfg,
		name:        name,
		effTimeout:  cfg.HangTimeout,
		log:         replay.NewLog(),
		bufs:        make(map[cuda.Buf]cuda.Buf),
		streams:     map[cuda.Stream]cuda.Stream{cuda.DefaultStream: cuda.DefaultStream},
		events:      make(map[cuda.Event]cuda.Event),
		comms:       make(map[cuda.Comm]cuda.Comm),
		nextBuf:     1,
		nextStr:     1,
		nextEvt:     1,
		nextCom:     1,
		bufMeta:     make(map[cuda.Buf]cuda.BufInfo),
		tagSeq:      make(map[string]int),
		ncclStreams: make(map[cuda.Stream]bool),
		watch:       make(map[cuda.Event]*watchEntry),
		inflight:    make(map[*vclock.Proc]*inflightCall),
	}
}

// Inner returns the wrapped API (the recovery controller needs it to issue
// calls that bypass interception).
func (l *Layer) Inner() cuda.API { return l.inner }

// SetOnFault installs the fault callback after construction (the
// user-level library wires its handler once the worker objects exist).
func (l *Layer) SetOnFault(fn func(p *vclock.Proc, f Fault)) { l.cfg.OnFault = fn }

// SetInner repoints the layer at a different device API. The hard-error
// migration path uses it after attaching the worker to a replacement GPU
// (§4.3): parked application threads retry their calls against the new
// API. Only call between BeginRecovery and EndRecovery.
func (l *Layer) SetInner(api cuda.API) { l.inner = api }

// Log returns the replay log.
func (l *Layer) Log() *replay.Log { return l.log }

// Iter returns the current minibatch iteration.
func (l *Layer) Iter() int { return l.iter }

// InOptimizerStep reports whether the worker is inside the optimizer step.
func (l *Layer) InOptimizerStep() bool { return l.inOptimizer }

// StartMinibatch marks a minibatch boundary: the replay log rolls over and
// any "ignore mutations" state from an optimizer-step recovery ends.
func (l *Layer) StartMinibatch(iter int) {
	l.iter = iter
	l.inOptimizer = false
	l.ignoreMut = false
	if l.cfg.LogReplay {
		l.log.StartMinibatch(iter)
	}
}

// PreOptimizerStep is the framework hook marking optimizer-step entry
// (§4.2.2): it tells the layer which recovery path applies to faults from
// here until PostOptimizerStep.
func (l *Layer) PreOptimizerStep() { l.inOptimizer = true }

// PostOptimizerStep marks optimizer-step exit.
func (l *Layer) PostOptimizerStep() { l.inOptimizer = false }

// IgnoreMutationsUntilNextMinibatch makes the layer swallow state-mutating
// calls (returning success) until StartMinibatch. The §4.2.2 recovery uses
// it: after rolling a failed rank forward to next-minibatch state copied
// from a replica, the remaining optimizer-step device calls of the current
// minibatch must not re-modify parameters.
func (l *Layer) IgnoreMutationsUntilNextMinibatch() { l.ignoreMut = true }

// EnterCheckpointMode reroutes subsequent MemcpyD2H calls to a private
// fresh stream (§3.2). It is safe to call while the default stream is
// wedged.
func (l *Layer) EnterCheckpointMode(p *vclock.Proc) error {
	l.ckptMode = true
	if l.ckptStream == 0 {
		s, err := l.inner.StreamCreate(p)
		if err != nil {
			return err
		}
		l.ckptStream = s
	}
	return nil
}

// ExitCheckpointMode restores normal memcpy routing.
func (l *Layer) ExitCheckpointMode() { l.ckptMode = false }

// BufMeta returns the layer's metadata for a virtual buffer handle.
func (l *Layer) BufMeta(b cuda.Buf) (cuda.BufInfo, bool) {
	m, ok := l.bufMeta[b]
	return m, ok
}

// VirtualBufs returns all live virtual buffer handles in creation order.
func (l *Layer) VirtualBufs() []cuda.BufInfo {
	out := make([]cuda.BufInfo, 0, len(l.bufMeta))
	for h := cuda.Buf(1); h < l.nextBuf; h++ {
		if m, ok := l.bufMeta[h]; ok {
			out = append(out, m)
		}
	}
	return out
}

// PhysBuf resolves a virtual buffer handle (for controller-side copies).
func (l *Layer) PhysBuf(b cuda.Buf) (cuda.Buf, bool) {
	pb, ok := l.bufs[b]
	return pb, ok
}

// BufData is the privileged zero-time buffer read, lifted through the
// interception layer: the virtual handle is translated and the read is
// delegated to the wrapped API when it supports one (cuda.Driver does).
// The peer-replication path uses it to capture post-optimizer state at a
// minibatch boundary without issuing stream work, so the streaming of that
// state to peer CPU memory can overlap the next minibatch (§3.1's
// interception transparency extended to the shelter tier).
func (l *Layer) BufData(b cuda.Buf) (tensor.Vector, error) {
	pb, ok := l.bufs[b]
	if !ok {
		return nil, badVirtual("buf", b)
	}
	type peeker interface {
		BufData(b cuda.Buf) (tensor.Vector, error)
	}
	in, ok := l.inner.(peeker)
	if !ok {
		return nil, fmt.Errorf("intercept: wrapped API %T has no privileged buffer read", l.inner)
	}
	return in.BufData(pb)
}

// PhysStream resolves a virtual stream handle.
func (l *Layer) PhysStream(s cuda.Stream) (cuda.Stream, bool) {
	ps, ok := l.streams[s]
	return ps, ok
}

// NCCLStreams returns the virtual streams identified as carrying
// collectives.
func (l *Layer) NCCLStreams() []cuda.Stream {
	var out []cuda.Stream
	for s := cuda.Stream(0); s <= l.nextStr; s++ {
		if l.ncclStreams[s] {
			out = append(out, s)
		}
	}
	return out
}

// isInfraFault classifies errors the transparent mode must mask.
func isInfraFault(err error) bool {
	return errors.Is(err, gpu.ErrSticky) ||
		errors.Is(err, gpu.ErrCorrupt) ||
		errors.Is(err, gpu.ErrDeviceLost) ||
		errors.Is(err, nccl.ErrNetwork) ||
		errors.Is(err, proxy.ErrProxyDown)
}

// raiseFault reports a fault once per episode.
func (l *Layer) raiseFault(p *vclock.Proc, kind FaultKind, err error) {
	if l.faultRaised {
		return
	}
	l.faultRaised = true
	l.env.Tracef("%s: fault raised: kind=%d err=%v iter=%d opt=%v", l.name, kind, err, l.iter, l.inOptimizer)
	trace.Of(l.env).Instant(p.Now(), "dog", trace.LaneSim, "fault",
		"layer", l.name, "kind", int(kind), "err", err, "iter", l.iter, "opt", l.inOptimizer)
	if l.cfg.OnFault != nil {
		l.cfg.OnFault(p, Fault{Kind: kind, Err: err, Iter: l.iter, InOptimizerStep: l.inOptimizer})
	}
}

// BeginRecovery closes the gate: application threads entering (or
// retrying) calls park until EndRecovery.
func (l *Layer) BeginRecovery() {
	l.inRecovery = true
	if l.gate == nil || l.gate.Triggered() {
		l.gate = l.env.NewEvent(l.name + ".recovery-gate")
	}
}

// EndRecovery adopts the handle translations produced by recovery replay
// (virtual handles whose objects were re-created get new physical handles;
// others keep their old mapping), clears watchdog and fault state, and
// releases parked threads.
func (l *Layer) EndRecovery(tr *replay.Translator) {
	if tr != nil {
		for virt := range l.bufs {
			if np, ok := tr.Bufs[virt]; ok {
				l.bufs[virt] = np
			}
		}
		for virt := range l.streams {
			if np, ok := tr.Streams[virt]; ok {
				l.streams[virt] = np
			}
		}
		for virt := range l.events {
			if np, ok := tr.Events[virt]; ok {
				l.events[virt] = np
			}
		}
		for virt := range l.comms {
			if np, ok := tr.Comms[virt]; ok {
				l.comms[virt] = np
			}
		}
	}
	l.watch = make(map[cuda.Event]*watchEntry)
	l.inflight = make(map[*vclock.Proc]*inflightCall)
	l.ckptStream = 0 // private stream may be gone after a proxy restart
	l.faultRaised = false
	l.inRecovery = false
	if l.gate != nil {
		l.gate.Trigger()
	}
	l.env.Tracef("%s: recovery ended, threads released", l.name)
}

// parkWhileRecovering blocks p while a recovery is in progress.
func (l *Layer) parkWhileRecovering(p *vclock.Proc) {
	for l.inRecovery {
		p.Wait(l.gate)
	}
}

// guard wraps a call in transparent-mode fault masking: infrastructure
// errors raise a fault and the thread parks, then retries. In user-level
// mode errors pass through (the user script sees the exception, §3).
// While the §4.2.2 ignore window is active, state-mutating calls are
// swallowed (returning success); read-only calls still execute.
func (l *Layer) guard(p *vclock.Proc, name string, blocking bool, do func() error) error {
	return l.guardMut(p, name, blocking, true, do)
}

// guardRead is guard for read-only calls, which execute even inside the
// ignore-mutations window.
func (l *Layer) guardRead(p *vclock.Proc, name string, blocking bool, do func() error) error {
	return l.guardMut(p, name, blocking, false, do)
}

func (l *Layer) guardMut(p *vclock.Proc, name string, blocking, mutating bool, do func() error) error {
	for {
		l.parkWhileRecovering(p)
		if l.ignoreMut && mutating {
			return nil
		}
		if blocking {
			l.inflight[p] = &inflightCall{name: name, started: p.Now()}
		}
		err := do()
		if blocking {
			l.finishInflight(p)
		}
		if err == nil || !isInfraFault(err) {
			return err
		}
		if l.cfg.Mode == ModeUserLevel {
			l.raiseFault(p, FaultError, err)
			return err
		}
		l.raiseFault(p, FaultError, err)
		// Park until the controller finishes recovery, then retry the
		// call against the recovered state.
		l.waitRecovered(p)
		l.env.Tracef("%s: retrying %s after recovery", l.name, name)
	}
}

// waitRecovered parks until a recovery that was (or is about to be)
// triggered by a raised fault completes.
func (l *Layer) waitRecovered(p *vclock.Proc) {
	for l.faultRaised || l.inRecovery {
		if l.inRecovery {
			p.Wait(l.gate)
			continue
		}
		// Fault raised but controller hasn't begun recovery yet: yield.
		p.Sleep(vclock.Millisecond)
	}
}

func (l *Layer) record(c replay.Call) {
	if l.cfg.LogReplay && !l.ignoreMut {
		l.log.Record(c)
	}
}

func badVirtual(kind string, h any) error {
	return fmt.Errorf("%w: virtual %s %v", cuda.ErrBadHandle, kind, h)
}
