package intercept

import (
	"fmt"

	"jitckpt/internal/cuda"
	"jitckpt/internal/replay"
	"jitckpt/internal/vclock"
)

// SeedTranslator returns a translator pre-loaded with the layer's current
// virtual-to-physical mappings. Recovery replay starts from it: creation
// calls overwrite the entries for re-created objects, retained objects
// keep their old physical handles (§4.2 strategy 1).
func (l *Layer) SeedTranslator() *replay.Translator {
	tr := replay.NewTranslator()
	for v, ph := range l.bufs {
		tr.Bufs[v] = ph
	}
	for v, ph := range l.streams {
		tr.Streams[v] = ph
	}
	for v, ph := range l.events {
		tr.Events[v] = ph
	}
	for v, ph := range l.comms {
		tr.Comms[v] = ph
	}
	return tr
}

// ValidationResult reports the outcome of a replay-log correctness check.
type ValidationResult struct {
	OK        bool
	Buffers   int
	Mismatch  []cuda.Buf // virtual handles whose checksums diverged
	CallCount int
}

// Validate performs the §4.1 replay-log correctness verification: it
// checksums every GPU buffer, re-executes the current minibatch's recorded
// device APIs, checksums again, and compares. A match proves the replay
// log captures every input that influences GPU state (no implicit
// host-to-device communication bypassed the interception).
//
// It must be called at the end of the backward pass, just before the
// optimizer step, on every rank of the job at the same iteration — the
// replayed collectives rendezvous across ranks exactly like the originals.
// Kernels in this repository are deterministic and write (not accumulate)
// their outputs, which is the moral equivalent of the paper configuring
// CUDA for deterministic operations during the validation minibatch.
func (l *Layer) Validate(p *vclock.Proc) (ValidationResult, error) {
	res := ValidationResult{CallCount: len(l.log.Minibatch)}
	// The host issues the whole minibatch ahead of the GPU; drain the
	// device so the "before" checksums reflect the end-of-backward state
	// the paper's validation compares (the optimizer launches have not
	// been issued yet at the pre-optimizer hook).
	if err := l.DeviceSynchronize(p); err != nil {
		return res, fmt.Errorf("intercept: pre-validation sync: %w", err)
	}
	before := make(map[cuda.Buf]uint64, len(l.bufs))
	for _, info := range l.VirtualBufs() {
		sum, err := l.BufChecksum(p, info.Handle)
		if err != nil {
			return res, fmt.Errorf("intercept: pre-replay checksum of %v: %w", info.Handle, err)
		}
		before[info.Handle] = sum
	}
	res.Buffers = len(before)

	// Re-execute the minibatch log against the inner API with the current
	// mappings. The replayed calls are not re-recorded.
	tr := l.SeedTranslator()
	if err := replay.Apply(p, l.inner, l.log.Minibatch, tr, replay.Options{}); err != nil {
		return res, fmt.Errorf("intercept: validation replay: %w", err)
	}
	if err := l.inner.DeviceSynchronize(p); err != nil {
		return res, fmt.Errorf("intercept: validation sync: %w", err)
	}

	for _, info := range l.VirtualBufs() {
		sum, err := l.BufChecksum(p, info.Handle)
		if err != nil {
			return res, fmt.Errorf("intercept: post-replay checksum of %v: %w", info.Handle, err)
		}
		if sum != before[info.Handle] {
			res.Mismatch = append(res.Mismatch, info.Handle)
		}
	}
	res.OK = len(res.Mismatch) == 0
	return res, nil
}
