package intercept

import (
	"jitckpt/internal/cuda"
	"jitckpt/internal/replay"
	"jitckpt/internal/vclock"
)

// Malloc allocates device memory and returns a virtual handle. The layer
// assigns the (tag, seq) tensor name so it is stable across replicas and
// across re-allocations during recovery (§4.3). See cuda.API.
func (l *Layer) Malloc(p *vclock.Proc, bytes int64, elems int, tag string) (cuda.Buf, error) {
	var virt cuda.Buf
	err := l.guard(p, "Malloc", true, func() error {
		pb, err := l.inner.Malloc(p, bytes, elems, tag)
		if err != nil {
			return err
		}
		virt = l.nextBuf
		l.nextBuf++
		l.bufs[virt] = pb
		seq := l.tagSeq[tag]
		l.tagSeq[tag]++
		l.bufMeta[virt] = cuda.BufInfo{Handle: virt, Bytes: bytes, Elems: elems, Tag: tag, Seq: seq}
		l.record(replay.Call{Kind: replay.CallMalloc, Bytes: bytes, Elems: elems, Tag: tag, RBuf: virt})
		return nil
	})
	return virt, err
}

// Free releases a virtual buffer. See cuda.API.
func (l *Layer) Free(p *vclock.Proc, b cuda.Buf) error {
	return l.guard(p, "Free", true, func() error {
		pb, ok := l.bufs[b]
		if !ok {
			return badVirtual("buf", b)
		}
		if err := l.inner.Free(p, pb); err != nil {
			return err
		}
		delete(l.bufs, b)
		delete(l.bufMeta, b)
		l.record(replay.Call{Kind: replay.CallFree, Buf: b})
		return nil
	})
}

// MemcpyH2D copies host data to a virtual buffer asynchronously. See
// cuda.API.
func (l *Layer) MemcpyH2D(p *vclock.Proc, dst cuda.Buf, src []float32, s cuda.Stream) error {
	return l.guard(p, "MemcpyH2D", false, func() error {
		pb, ok := l.bufs[dst]
		if !ok {
			return badVirtual("buf", dst)
		}
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		if err := l.inner.MemcpyH2D(p, pb, src, ps); err != nil {
			return err
		}
		l.record(replay.Call{Kind: replay.CallMemcpyH2D, Buf: dst, Data: append([]float32(nil), src...), Stream: s})
		return nil
	})
}

// MemcpyD2H copies a virtual buffer to the host. In checkpoint mode the
// copy is rerouted to a private fresh stream so it cannot deadlock behind
// a StreamWaitEvent on a hung collective (§3.2). See cuda.API.
func (l *Layer) MemcpyD2H(p *vclock.Proc, src cuda.Buf, s cuda.Stream) ([]float32, error) {
	var out []float32
	err := l.guardRead(p, "MemcpyD2H", true, func() error {
		pb, ok := l.bufs[src]
		if !ok {
			return badVirtual("buf", src)
		}
		var ps cuda.Stream
		if l.ckptMode && l.ckptStream != 0 {
			ps = l.ckptStream
		} else {
			var okS bool
			ps, okS = l.streams[s]
			if !okS {
				return badVirtual("stream", s)
			}
		}
		data, err := l.inner.MemcpyD2H(p, pb, ps)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	return out, err
}

// MemcpyD2D copies between virtual buffers asynchronously. See cuda.API.
func (l *Layer) MemcpyD2D(p *vclock.Proc, dst, src cuda.Buf, s cuda.Stream) error {
	return l.guard(p, "MemcpyD2D", false, func() error {
		pd, ok := l.bufs[dst]
		if !ok {
			return badVirtual("buf", dst)
		}
		psrc, ok := l.bufs[src]
		if !ok {
			return badVirtual("buf", src)
		}
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		if err := l.inner.MemcpyD2D(p, pd, psrc, ps); err != nil {
			return err
		}
		l.record(replay.Call{Kind: replay.CallMemcpyD2D, Buf: dst, Buf2: src, Stream: s})
		return nil
	})
}

// StreamCreate creates a stream and returns a virtual handle. See cuda.API.
func (l *Layer) StreamCreate(p *vclock.Proc) (cuda.Stream, error) {
	var virt cuda.Stream
	err := l.guard(p, "StreamCreate", true, func() error {
		ps, err := l.inner.StreamCreate(p)
		if err != nil {
			return err
		}
		virt = l.nextStr
		l.nextStr++
		l.streams[virt] = ps
		l.record(replay.Call{Kind: replay.CallStreamCreate, RStream: virt})
		return nil
	})
	return virt, err
}

// StreamDestroy destroys a virtual stream. See cuda.API.
func (l *Layer) StreamDestroy(p *vclock.Proc, s cuda.Stream) error {
	return l.guard(p, "StreamDestroy", true, func() error {
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		if err := l.inner.StreamDestroy(p, ps); err != nil {
			return err
		}
		delete(l.streams, s)
		delete(l.ncclStreams, s)
		l.record(replay.Call{Kind: replay.CallStreamDestroy, Stream: s})
		return nil
	})
}

// StreamSynchronize blocks until a virtual stream drains. The call is
// tracked by the watchdog: if it never returns, a hang is raised. See
// cuda.API.
func (l *Layer) StreamSynchronize(p *vclock.Proc, s cuda.Stream) error {
	return l.guardRead(p, "StreamSynchronize", true, func() error {
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		return l.inner.StreamSynchronize(p, ps)
	})
}

// StreamWaitEvent orders a virtual stream behind an event. If the event
// was recorded on the NCCL stream, it joins the watchdog's watch-list
// (§3.1), and the watchdog starts on the first such call. See cuda.API.
func (l *Layer) StreamWaitEvent(p *vclock.Proc, s cuda.Stream, ev cuda.Event) error {
	return l.guard(p, "StreamWaitEvent", false, func() error {
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		pe, ok := l.events[ev]
		if !ok {
			return badVirtual("event", ev)
		}
		if err := l.inner.StreamWaitEvent(p, ps, pe); err != nil {
			return err
		}
		l.record(replay.Call{Kind: replay.CallStreamWaitEvent, Stream: s, Event: ev})
		l.noteStreamWaitEvent(ev)
		return nil
	})
}

// EventCreate creates an event and returns a virtual handle. See cuda.API.
func (l *Layer) EventCreate(p *vclock.Proc) (cuda.Event, error) {
	var virt cuda.Event
	err := l.guard(p, "EventCreate", true, func() error {
		pe, err := l.inner.EventCreate(p)
		if err != nil {
			return err
		}
		virt = l.nextEvt
		l.nextEvt++
		l.events[virt] = pe
		l.record(replay.Call{Kind: replay.CallEventCreate, REvent: virt})
		return nil
	})
	return virt, err
}

// EventRecord records an event on a virtual stream. Events recorded on an
// identified NCCL stream become watch-list candidates (§3.1). See cuda.API.
func (l *Layer) EventRecord(p *vclock.Proc, ev cuda.Event, s cuda.Stream) error {
	return l.guard(p, "EventRecord", false, func() error {
		pe, ok := l.events[ev]
		if !ok {
			return badVirtual("event", ev)
		}
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		if err := l.inner.EventRecord(p, pe, ps); err != nil {
			return err
		}
		l.record(replay.Call{Kind: replay.CallEventRecord, Event: ev, Stream: s})
		l.noteEventRecord(ev, s)
		return nil
	})
}

// EventQuery queries a virtual event. See cuda.API.
func (l *Layer) EventQuery(p *vclock.Proc, ev cuda.Event) (bool, error) {
	var done bool
	err := l.guardRead(p, "EventQuery", false, func() error {
		pe, ok := l.events[ev]
		if !ok {
			return badVirtual("event", ev)
		}
		d, err := l.inner.EventQuery(p, pe)
		done = d
		return err
	})
	return done, err
}

// EventSynchronize blocks on a virtual event, watchdog-tracked. See
// cuda.API.
func (l *Layer) EventSynchronize(p *vclock.Proc, ev cuda.Event) error {
	return l.guardRead(p, "EventSynchronize", true, func() error {
		pe, ok := l.events[ev]
		if !ok {
			return badVirtual("event", ev)
		}
		return l.inner.EventSynchronize(p, pe)
	})
}

// EventDestroy destroys a virtual event. See cuda.API.
func (l *Layer) EventDestroy(p *vclock.Proc, ev cuda.Event) error {
	return l.guard(p, "EventDestroy", true, func() error {
		pe, ok := l.events[ev]
		if !ok {
			return badVirtual("event", ev)
		}
		if err := l.inner.EventDestroy(p, pe); err != nil {
			return err
		}
		delete(l.events, ev)
		delete(l.watch, ev)
		l.record(replay.Call{Kind: replay.CallEventDestroy, Event: ev})
		return nil
	})
}

// Launch launches a kernel with virtual buffer handles. See cuda.API.
func (l *Layer) Launch(p *vclock.Proc, lp cuda.LaunchParams, s cuda.Stream) error {
	return l.guard(p, "Launch", false, func() error {
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		phys := lp
		if len(lp.Bufs) > 0 {
			phys.Bufs = make([]cuda.Buf, len(lp.Bufs))
			for i, vb := range lp.Bufs {
				pb, ok := l.bufs[vb]
				if !ok {
					return badVirtual("buf", vb)
				}
				phys.Bufs[i] = pb
			}
		}
		if err := l.inner.Launch(p, phys, ps); err != nil {
			return err
		}
		if l.cfg.LogReplay && !l.ignoreMut {
			// The log outlives this call: capture the argument slices, which
			// callers are free to reuse for their next launch.
			lp.Bufs = append([]cuda.Buf(nil), lp.Bufs...)
			lp.IArgs = append([]int64(nil), lp.IArgs...)
			lp.FArgs = append([]float32(nil), lp.FArgs...)
			l.log.Record(replay.Call{Kind: replay.CallLaunch, Launch: lp, Stream: s})
		}
		return nil
	})
}

// DeviceSynchronize blocks until the device drains, watchdog-tracked. See
// cuda.API.
func (l *Layer) DeviceSynchronize(p *vclock.Proc) error {
	return l.guardRead(p, "DeviceSynchronize", true, func() error {
		return l.inner.DeviceSynchronize(p)
	})
}

// GetLastError passes through to the wrapped API. In transparent mode
// infrastructure errors are masked here too: the application never sees
// them. See cuda.API.
func (l *Layer) GetLastError(p *vclock.Proc) error {
	return l.guardRead(p, "GetLastError", false, func() error {
		return l.inner.GetLastError(p)
	})
}

// BufList reports the layer's virtual buffers (the application-visible
// truth, stable across recoveries). See cuda.API.
func (l *Layer) BufList(p *vclock.Proc) ([]cuda.BufInfo, error) {
	return l.VirtualBufs(), nil
}

// BufChecksum hashes a virtual buffer's contents. See cuda.API.
func (l *Layer) BufChecksum(p *vclock.Proc, b cuda.Buf) (uint64, error) {
	var sum uint64
	err := l.guardRead(p, "BufChecksum", true, func() error {
		pb, ok := l.bufs[b]
		if !ok {
			return badVirtual("buf", b)
		}
		s, err := l.inner.BufChecksum(p, pb)
		sum = s
		return err
	})
	return sum, err
}

// CommInit rendezvouses and returns a virtual communicator handle. It is
// deliberately not watchdog-tracked: rendezvous legitimately blocks until
// the last rank arrives. See cuda.API.
func (l *Layer) CommInit(p *vclock.Proc, key string, gen, nranks, rank int) (cuda.Comm, error) {
	var virt cuda.Comm
	err := l.guard(p, "CommInit", false, func() error {
		pc, err := l.inner.CommInit(p, key, gen, nranks, rank)
		if err != nil {
			return err
		}
		virt = l.nextCom
		l.nextCom++
		l.comms[virt] = pc
		l.record(replay.Call{Kind: replay.CallCommInit, Key: key, Gen: gen, NRanks: nranks, Rank: rank, RComm: virt})
		return nil
	})
	return virt, err
}

// CommDestroy destroys a virtual communicator. See cuda.API.
func (l *Layer) CommDestroy(p *vclock.Proc, c cuda.Comm) error {
	return l.guard(p, "CommDestroy", true, func() error {
		pc, ok := l.comms[c]
		if !ok {
			return badVirtual("comm", c)
		}
		if err := l.inner.CommDestroy(p, pc); err != nil {
			return err
		}
		delete(l.comms, c)
		l.record(replay.Call{Kind: replay.CallCommDestroy, Comm: c})
		return nil
	})
}

// collective is the shared path for all collective calls: it marks the
// stream as the NCCL stream (§3.1 stream discovery) and records the call.
func (l *Layer) collective(p *vclock.Proc, kind replay.Kind, name string, c cuda.Comm, b, b2 cuda.Buf, peer, root int, s cuda.Stream,
	issue func(pc cuda.Comm, pb, pb2 cuda.Buf, ps cuda.Stream) error) error {
	return l.guard(p, name, false, func() error {
		pc, ok := l.comms[c]
		if !ok {
			return badVirtual("comm", c)
		}
		var pb, pb2 cuda.Buf
		if b != 0 {
			var okB bool
			pb, okB = l.bufs[b]
			if !okB {
				return badVirtual("buf", b)
			}
		}
		if b2 != 0 {
			var okB bool
			pb2, okB = l.bufs[b2]
			if !okB {
				return badVirtual("buf", b2)
			}
		}
		ps, ok := l.streams[s]
		if !ok {
			return badVirtual("stream", s)
		}
		if err := issue(pc, pb, pb2, ps); err != nil {
			return err
		}
		l.ncclStreams[s] = true
		l.record(replay.Call{Kind: kind, Comm: c, Buf: b, Buf2: b2, Peer: peer, Root: root, Stream: s})
		return nil
	})
}

// AllReduce enqueues an allreduce on virtual handles. See cuda.API.
func (l *Layer) AllReduce(p *vclock.Proc, c cuda.Comm, b cuda.Buf, s cuda.Stream) error {
	return l.collective(p, replay.CallAllReduce, "AllReduce", c, b, 0, 0, 0, s,
		func(pc cuda.Comm, pb, _ cuda.Buf, ps cuda.Stream) error {
			return l.inner.AllReduce(p, pc, pb, ps)
		})
}

// Broadcast enqueues a broadcast on virtual handles. See cuda.API.
func (l *Layer) Broadcast(p *vclock.Proc, c cuda.Comm, b cuda.Buf, root int, s cuda.Stream) error {
	return l.collective(p, replay.CallBroadcast, "Broadcast", c, b, 0, 0, root, s,
		func(pc cuda.Comm, pb, _ cuda.Buf, ps cuda.Stream) error {
			return l.inner.Broadcast(p, pc, pb, root, ps)
		})
}

// AllGather enqueues an allgather on virtual handles. See cuda.API.
func (l *Layer) AllGather(p *vclock.Proc, c cuda.Comm, in, out cuda.Buf, s cuda.Stream) error {
	return l.collective(p, replay.CallAllGather, "AllGather", c, in, out, 0, 0, s,
		func(pc cuda.Comm, pin, pout cuda.Buf, ps cuda.Stream) error {
			return l.inner.AllGather(p, pc, pin, pout, ps)
		})
}

// ReduceScatter enqueues a reduce-scatter on virtual handles. See cuda.API.
func (l *Layer) ReduceScatter(p *vclock.Proc, c cuda.Comm, in, out cuda.Buf, s cuda.Stream) error {
	return l.collective(p, replay.CallReduceScatter, "ReduceScatter", c, in, out, 0, 0, s,
		func(pc cuda.Comm, pin, pout cuda.Buf, ps cuda.Stream) error {
			return l.inner.ReduceScatter(p, pc, pin, pout, ps)
		})
}

// Send enqueues a point-to-point send on virtual handles. See cuda.API.
func (l *Layer) Send(p *vclock.Proc, c cuda.Comm, b cuda.Buf, peer int, s cuda.Stream) error {
	return l.collective(p, replay.CallSend, "Send", c, b, 0, peer, 0, s,
		func(pc cuda.Comm, pb, _ cuda.Buf, ps cuda.Stream) error {
			return l.inner.Send(p, pc, pb, peer, ps)
		})
}

// Recv enqueues a point-to-point receive on virtual handles. See cuda.API.
func (l *Layer) Recv(p *vclock.Proc, c cuda.Comm, b cuda.Buf, peer int, s cuda.Stream) error {
	return l.collective(p, replay.CallRecv, "Recv", c, b, 0, peer, 0, s,
		func(pc cuda.Comm, pb, _ cuda.Buf, ps cuda.Stream) error {
			return l.inner.Recv(p, pc, pb, peer, ps)
		})
}

// Barrier enqueues a barrier on virtual handles. See cuda.API.
func (l *Layer) Barrier(p *vclock.Proc, c cuda.Comm, s cuda.Stream) error {
	return l.collective(p, replay.CallBarrier, "Barrier", c, 0, 0, 0, 0, s,
		func(pc cuda.Comm, _, _ cuda.Buf, ps cuda.Stream) error {
			return l.inner.Barrier(p, pc, ps)
		})
}
