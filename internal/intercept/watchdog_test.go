package intercept

import (
	"testing"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/vclock"
)

// slowPeer runs rank 1 on a raw driver, joining the rendezvous immediately
// but delaying its AllReduce by lag — a straggler, not a hang.
func (r *rig) slowPeer(t *testing.T, lag vclock.Time) {
	t.Helper()
	r.env.Go("peer", func(p *vclock.Proc) {
		dev := gpu.NewDevice(r.env, 0, 1, 1<<34)
		drv, err := cuda.NewDriver(dev, r.engine, defaultKernels(), cuda.DefaultParams())
		if err != nil {
			t.Error(err)
			return
		}
		comm, err := drv.CommInit(p, "dp", 0, 2, 1)
		if err != nil {
			t.Error(err)
			return
		}
		comms, _ := drv.StreamCreate(p)
		grads, _ := drv.Malloc(p, 1<<20, 2, "g")
		p.Sleep(lag)
		drv.AllReduce(p, comm, grads, comms)
		drv.StreamSynchronize(p, comms)
	})
}

// watchedAllReduce drives rank 0 through the layer: AllReduce on the comm
// stream, event recorded, StreamWaitEvent (arms the watchdog + watch-list),
// then StreamSynchronize so completion is observable.
func (r *rig) watchedAllReduce(t *testing.T, done *bool) {
	t.Helper()
	r.env.Go("worker", func(p *vclock.Proc) {
		comm, err := r.layer.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		compute, _ := r.layer.StreamCreate(p)
		comms, _ := r.layer.StreamCreate(p)
		grads, _ := r.layer.Malloc(p, 1<<20, 2, "g")
		r.layer.AllReduce(p, comm, grads, comms)
		ev, _ := r.layer.EventCreate(p)
		r.layer.EventRecord(p, ev, comms)
		r.layer.StreamWaitEvent(p, compute, ev)
		r.layer.StreamSynchronize(p, comms)
		if done != nil {
			*done = true
		}
	})
}

// TestAdaptiveWatchdogToleratesStraggler: a collective that finishes past
// HangTimeout but inside the doubled suspect window must not raise a hang.
// The completed suspect is counted as a false positive and the effective
// timeout escalates so the same straggler stops tripping the watchdog.
func TestAdaptiveWatchdogToleratesStraggler(t *testing.T) {
	cfg := Config{
		Mode:           ModeTransparent,
		HangTimeout:    vclock.Seconds(5),
		HangTimeoutMax: vclock.Seconds(40),
		WatchdogPoll:   vclock.Seconds(1),
		Adaptive:       true,
	}
	r := newRig(t, cfg)
	r.slowPeer(t, vclock.Seconds(7)) // > HangTimeout, < doubled window
	var done bool
	r.watchedAllReduce(t, &done)
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("straggler collective never completed")
	}
	if len(r.faults) != 0 {
		t.Fatalf("straggler misclassified as hang: %+v", r.faults)
	}
	stats := r.layer.Watchdog()
	if stats.Suspects < 1 || stats.FalsePositives < 1 {
		t.Errorf("stats = %+v, want at least one suspect and false positive", stats)
	}
	if stats.EffectiveTimeout <= cfg.HangTimeout {
		t.Errorf("effective timeout %v did not escalate past %v", stats.EffectiveTimeout, cfg.HangTimeout)
	}
	if stats.EffectiveTimeout > cfg.HangTimeoutMax {
		t.Errorf("effective timeout %v exceeds cap %v", stats.EffectiveTimeout, cfg.HangTimeoutMax)
	}
}

// TestFixedWatchdogTripsOnStraggler pins the behavior adaptive mode fixes:
// with Adaptive off, the same straggler is declared hung at HangTimeout.
func TestFixedWatchdogTripsOnStraggler(t *testing.T) {
	r := newRig(t, Config{
		Mode:         ModeTransparent,
		HangTimeout:  vclock.Seconds(5),
		WatchdogPoll: vclock.Seconds(1),
	})
	r.slowPeer(t, vclock.Seconds(7))
	r.watchedAllReduce(t, nil)
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.faults) != 1 || r.faults[0].Kind != FaultHang {
		t.Fatalf("faults = %+v, want one hang", r.faults)
	}
	stats := r.layer.Watchdog()
	if stats.Suspects != 0 || stats.FalsePositives != 0 {
		t.Errorf("fixed mode tracked adaptive stats: %+v", stats)
	}
}

// TestAdaptiveWatchdogStillDetectsTrueHang: a collective whose peer never
// arrives must be declared hung even in adaptive mode — the extension is
// bounded by HangTimeoutMax, not unlimited patience.
func TestAdaptiveWatchdogStillDetectsTrueHang(t *testing.T) {
	cfg := Config{
		Mode:           ModeTransparent,
		HangTimeout:    vclock.Seconds(5),
		HangTimeoutMax: vclock.Seconds(20),
		WatchdogPoll:   vclock.Seconds(1),
		Adaptive:       true,
	}
	r := newRig(t, cfg)
	r.env.Go("peer", func(p *vclock.Proc) {
		// Joins the rendezvous, never issues its collective: a true hang.
		r.engine.CommInitRank(p, "dp", 0, 2, 1, nil)
	})
	r.watchedAllReduce(t, nil)
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.faults) != 1 || r.faults[0].Kind != FaultHang {
		t.Fatalf("faults = %+v, want one hang", r.faults)
	}
	stats := r.layer.Watchdog()
	if stats.FalsePositives != 0 {
		t.Errorf("true hang counted as false positive: %+v", stats)
	}
}

// TestAdaptiveEscalationLearnsWorkload: repeated stragglers escalate the
// effective timeout until it absorbs them, capped at HangTimeoutMax.
func TestAdaptiveEscalationCappedAtMax(t *testing.T) {
	cfg := Config{
		Mode:           ModeTransparent,
		HangTimeout:    vclock.Seconds(4),
		HangTimeoutMax: vclock.Seconds(10),
		WatchdogPoll:   vclock.Seconds(1),
		Adaptive:       true,
	}
	r := newRig(t, cfg)
	// Force several false positives directly; the doubling must saturate
	// at the cap rather than grow without bound.
	for i := 0; i < 5; i++ {
		r.layer.noteFalsePositive()
	}
	stats := r.layer.Watchdog()
	if stats.EffectiveTimeout != cfg.HangTimeoutMax {
		t.Errorf("effective timeout %v, want saturation at %v", stats.EffectiveTimeout, cfg.HangTimeoutMax)
	}
	if stats.FalsePositives != 5 {
		t.Errorf("false positives = %d, want 5", stats.FalsePositives)
	}
}
