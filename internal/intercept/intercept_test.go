package intercept

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/proxy"
	"jitckpt/internal/replay"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

type rig struct {
	env    *vclock.Env
	dev    *gpu.Device
	engine *nccl.Engine
	drv    *cuda.Driver
	layer  *Layer
	faults []Fault
}

func defaultKernels() cuda.Registry {
	return cuda.Registry{
		"nop":  func(cuda.KernelArgs) error { return nil },
		"add1": func(a cuda.KernelArgs) error { a.Bufs[0].AXPY(1, a.Bufs[1]); return nil },
		"set": func(a cuda.KernelArgs) error {
			for i := range a.Bufs[0] {
				a.Bufs[0][i] = a.FArgs[0]
			}
			return nil
		},
	}
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	drv, err := cuda.NewDriver(dev, engine, defaultKernels(), cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env, dev: dev, engine: engine, drv: drv}
	if cfg.OnFault == nil {
		cfg.OnFault = func(_ *vclock.Proc, f Fault) { r.faults = append(r.faults, f) }
	}
	r.layer = New(env, drv, "rank0", cfg)
	return r
}

// run executes body bounded by a one-hour virtual horizon: the watchdog
// process never exits on its own, so unbounded Run would spin forever.
func (r *rig) run(t *testing.T, body func(p *vclock.Proc)) {
	t.Helper()
	r.env.Go("worker", body)
	if err := r.env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualHandleRoundTrip(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		b, err := r.layer.Malloc(p, 64, 2, "w")
		if err != nil {
			t.Error(err)
			return
		}
		r.layer.MemcpyH2D(p, b, []float32{4, 5}, cuda.DefaultStream)
		got, err := r.layer.MemcpyD2H(p, b, cuda.DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Vector(got).Equal(tensor.Vector{4, 5}) {
			t.Errorf("round trip = %v", got)
		}
	})
}

func TestLayerOwnsTagSequence(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		a, _ := r.layer.Malloc(p, 8, 1, "layer.w")
		b, _ := r.layer.Malloc(p, 8, 1, "layer.w")
		ma, _ := r.layer.BufMeta(a)
		mb, _ := r.layer.BufMeta(b)
		if ma.Seq != 0 || mb.Seq != 1 {
			t.Errorf("seqs = %d, %d", ma.Seq, mb.Seq)
		}
	})
}

func TestReplayLogRecordsAndRollsOver(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		r.layer.StartMinibatch(1)
		r.layer.MemcpyH2D(p, b, []float32{1, 2}, cuda.DefaultStream)
		r.layer.Launch(p, cuda.LaunchParams{Kernel: "nop", Dur: vclock.Millisecond}, cuda.DefaultStream)
		if got := len(r.layer.Log().Minibatch); got != 2 {
			t.Errorf("minibatch log = %d calls, want 2", got)
		}
		if got := len(r.layer.Log().Creation); got != 1 {
			t.Errorf("creation log = %d calls, want 1 (the Malloc)", got)
		}
		r.layer.StartMinibatch(2)
		if got := len(r.layer.Log().Minibatch); got != 0 {
			t.Errorf("minibatch log not cleared: %d", got)
		}
	})
}

// TestReplayLogImmuneToArgReuse pins a latent aliasing bug: the replay log
// outlives each Launch call, but it used to retain the caller's argument
// slices by reference. A worker reusing one LaunchParams value across
// iterations (mutating only the learning rate, say) would silently rewrite
// every previously recorded call, corrupting the minibatch log that
// transparent recovery replays. The intercept layer must capture the
// slices at record time.
func TestReplayLogImmuneToArgReuse(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		b2, _ := r.layer.Malloc(p, 64, 2, "w2")
		r.layer.StartMinibatch(1)
		lp := cuda.LaunchParams{
			Kernel: "set", Dur: vclock.Millisecond,
			Bufs:  []cuda.Buf{b},
			IArgs: []int64{1},
			FArgs: []float32{10},
		}
		if err := r.layer.Launch(p, lp, cuda.DefaultStream); err != nil {
			t.Fatal(err)
		}
		// The caller reuses its slices for the next launch.
		lp.IArgs[0] = 2
		lp.FArgs[0] = 20
		lp.Bufs[0] = b2
		if err := r.layer.Launch(p, lp, cuda.DefaultStream); err != nil {
			t.Fatal(err)
		}
		log := r.layer.Log().Minibatch
		if len(log) == 0 {
			t.Fatal("nothing recorded")
		}
		first := log[0].Launch
		if first.IArgs[0] != 1 || first.FArgs[0] != 10 || first.Bufs[0] != b {
			t.Errorf("recorded call mutated by caller slice reuse: IArgs=%v FArgs=%v Bufs=%v, want [1] [10] [%v]",
				first.IArgs, first.FArgs, first.Bufs, b)
		}
	})
}

func TestUserLevelModeDoesNotLog(t *testing.T) {
	r := newRig(t, Config{Mode: ModeUserLevel})
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		r.layer.MemcpyH2D(p, b, []float32{1, 2}, cuda.DefaultStream)
		if r.layer.Log().Len() != 0 {
			t.Errorf("user-level mode logged %d calls", r.layer.Log().Len())
		}
	})
}

func TestNCCLStreamDiscoveryAndWatchList(t *testing.T) {
	// Figure 3 wiring: the layer must identify the comm stream from the
	// AllReduce, then watch the event recorded on it once a
	// StreamWaitEvent waits for it.
	r := newRig(t, Config{Mode: ModeTransparent, HangTimeout: vclock.Minute})
	r.env.Go("peer", func(p *vclock.Proc) {
		r.engine.CommInitRank(p, "dp", 0, 2, 1, nil)
	})
	r.run(t, func(p *vclock.Proc) {
		comm, err := r.layer.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		compute, _ := r.layer.StreamCreate(p)
		comms, _ := r.layer.StreamCreate(p)
		grads, _ := r.layer.Malloc(p, 1<<20, 2, "g")

		r.layer.AllReduce(p, comm, grads, comms)
		if got := r.layer.NCCLStreams(); len(got) != 1 || got[0] != comms {
			t.Errorf("NCCL streams = %v, want [%v]", got, comms)
		}
		ev, _ := r.layer.EventCreate(p)
		r.layer.EventRecord(p, ev, comms)
		if len(r.layer.WatchedEvents()) != 0 {
			t.Error("event watched before any StreamWaitEvent")
		}
		r.layer.StreamWaitEvent(p, compute, ev)
		if got := r.layer.WatchedEvents(); len(got) != 1 || got[0] != ev {
			t.Errorf("watch list = %v, want [%v]", got, ev)
		}
		if !r.layer.WatchdogRunning() {
			t.Error("watchdog not started at first StreamWaitEvent")
		}
	})
}

func TestEventsOnComputeStreamNotWatched(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		s1, _ := r.layer.StreamCreate(p)
		s2, _ := r.layer.StreamCreate(p)
		ev, _ := r.layer.EventCreate(p)
		r.layer.Launch(p, cuda.LaunchParams{Kernel: "nop", Dur: vclock.Millisecond}, s1)
		r.layer.EventRecord(p, ev, s1)
		r.layer.StreamWaitEvent(p, s2, ev)
		if len(r.layer.WatchedEvents()) != 0 {
			t.Error("compute-stream event should not be watched")
		}
	})
}

func TestWatchdogDetectsCollectiveHang(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent, HangTimeout: vclock.Seconds(10), WatchdogPoll: vclock.Seconds(1)})
	r.env.Go("peer", func(p *vclock.Proc) {
		// Joins the rendezvous, never issues its collective.
		r.engine.CommInitRank(p, "dp", 0, 2, 1, nil)
	})
	r.env.Go("worker", func(p *vclock.Proc) {
		comm, err := r.layer.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		compute, _ := r.layer.StreamCreate(p)
		comms, _ := r.layer.StreamCreate(p)
		grads, _ := r.layer.Malloc(p, 1<<20, 2, "g")
		r.layer.AllReduce(p, comm, grads, comms)
		ev, _ := r.layer.EventCreate(p)
		r.layer.EventRecord(p, ev, comms)
		r.layer.StreamWaitEvent(p, compute, ev)
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.faults) != 1 || r.faults[0].Kind != FaultHang {
		t.Fatalf("faults = %+v, want one hang", r.faults)
	}
}

func TestWatchdogQuietWhenCollectivesComplete(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent, HangTimeout: vclock.Seconds(5), WatchdogPoll: vclock.Seconds(1)})
	var done [2]bool
	for rank := 0; rank < 2; rank++ {
		rank := rank
		r.env.Go(fmt.Sprintf("rank%d", rank), func(p *vclock.Proc) {
			var api cuda.API
			if rank == 0 {
				api = r.layer
			} else {
				dev := gpu.NewDevice(r.env, 0, 1, 1<<34)
				drv, err := cuda.NewDriver(dev, r.engine, defaultKernels(), cuda.DefaultParams())
				if err != nil {
					t.Error(err)
					return
				}
				api = drv
			}
			comm, err := api.CommInit(p, "dp", 0, 2, rank)
			if err != nil {
				t.Error(err)
				return
			}
			compute, _ := api.StreamCreate(p)
			comms, _ := api.StreamCreate(p)
			grads, _ := api.Malloc(p, 1<<20, 2, "g")
			for i := 0; i < 5; i++ {
				api.AllReduce(p, comm, grads, comms)
				ev, _ := api.EventCreate(p)
				api.EventRecord(p, ev, comms)
				api.StreamWaitEvent(p, compute, ev)
				api.StreamSynchronize(p, compute)
				p.Sleep(vclock.Seconds(2))
			}
			done[rank] = true
		})
	}
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if !done[0] || !done[1] {
		t.Fatalf("ranks did not finish: %v", done)
	}
	if len(r.faults) != 0 {
		t.Fatalf("spurious faults: %+v", r.faults)
	}
	if got := len(r.layer.WatchedEvents()); got != 0 {
		t.Fatalf("watch list should be drained, has %d", got)
	}
}

func TestWatchdogDetectsHungBlockingCall(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent, HangTimeout: vclock.Seconds(10), WatchdogPoll: vclock.Seconds(1)})
	r.env.Go("peer", func(p *vclock.Proc) {
		r.engine.CommInitRank(p, "dp", 0, 2, 1, nil)
	})
	r.env.Go("worker", func(p *vclock.Proc) {
		comm, _ := r.layer.CommInit(p, "dp", 0, 2, 0)
		comms, _ := r.layer.StreamCreate(p)
		grads, _ := r.layer.Malloc(p, 1<<20, 2, "g")
		r.layer.AllReduce(p, comm, grads, comms)
		// Hangs: rank 1 never arrives. Watchdog must notice even though
		// no StreamWaitEvent/watch-list entry exists.
		r.layer.StreamSynchronize(p, comms)
	})
	// The watchdog only starts at the first StreamWaitEvent; trigger it
	// from a second thread with an innocuous wait.
	r.env.Go("warmup", func(p *vclock.Proc) {
		s, _ := r.layer.StreamCreate(p)
		ev, _ := r.layer.EventCreate(p)
		r.layer.EventRecord(p, ev, s)
		r.layer.StreamWaitEvent(p, s, ev)
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.faults) != 1 || r.faults[0].Kind != FaultHang {
		t.Fatalf("faults = %+v, want one hang", r.faults)
	}
}

func TestTransparentModeMasksStickyError(t *testing.T) {
	// A sticky error must not surface: the calling thread parks, a
	// controller repairs the device, and the call retries successfully.
	r := newRig(t, Config{Mode: ModeTransparent})
	recoverDone := false
	r.layer.cfg.OnFault = func(_ *vclock.Proc, f Fault) {
		r.faults = append(r.faults, f)
		r.env.Go("controller", func(p *vclock.Proc) {
			r.layer.BeginRecovery()
			if err := r.dev.Reset(); err != nil {
				t.Error(err)
			}
			// Rebuild driver objects: re-create the default stream by
			// replaying the creation log onto a fresh driver.
			drv2, err := cuda.NewDriver(r.dev, r.engine, defaultKernels(), cuda.DefaultParams())
			if err != nil {
				t.Error(err)
				return
			}
			r.layer.inner = drv2
			tr := replay.NewTranslator()
			if err := replay.Apply(p, drv2, r.layer.Log().Creation, tr, replay.Options{}); err != nil {
				t.Error(err)
				return
			}
			if err := replay.Apply(p, drv2, r.layer.Log().Minibatch, tr, replay.Options{}); err != nil {
				t.Error(err)
				return
			}
			recoverDone = true
			r.layer.EndRecovery(tr)
		})
	}
	var got []float32
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		r.layer.StartMinibatch(1)
		r.layer.MemcpyH2D(p, b, []float32{1, 2}, cuda.DefaultStream)
		r.layer.StreamSynchronize(p, cuda.DefaultStream)
		r.dev.InjectSticky()
		// This call sees the sticky error, parks, and retries after the
		// controller's recovery. The application never sees an error.
		v, err := r.layer.MemcpyD2H(p, b, cuda.DefaultStream)
		if err != nil {
			t.Errorf("error leaked to application: %v", err)
			return
		}
		got = v
	})
	if !recoverDone {
		t.Fatal("recovery did not run")
	}
	if len(r.faults) != 1 || r.faults[0].Kind != FaultError {
		t.Fatalf("faults = %+v", r.faults)
	}
	if !tensor.Vector(got).Equal(tensor.Vector{1, 2}) {
		t.Fatalf("post-recovery read = %v, want [1 2]", got)
	}
}

func TestUserLevelModeSurfacesErrors(t *testing.T) {
	r := newRig(t, Config{Mode: ModeUserLevel})
	r.run(t, func(p *vclock.Proc) {
		r.dev.InjectSticky()
		if _, err := r.layer.Malloc(p, 64, 1, "x"); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("err = %v, want sticky to surface in user-level mode", err)
		}
	})
	if len(r.faults) != 1 {
		t.Fatalf("fault should still be reported: %+v", r.faults)
	}
}

func TestIgnoreMutationsUntilNextMinibatch(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		r.layer.MemcpyH2D(p, b, []float32{1, 1}, cuda.DefaultStream)
		r.layer.StreamSynchronize(p, cuda.DefaultStream)
		r.layer.StartMinibatch(1)
		r.layer.PreOptimizerStep()
		r.layer.IgnoreMutationsUntilNextMinibatch()
		// These mutations must be swallowed.
		if err := r.layer.MemcpyH2D(p, b, []float32{9, 9}, cuda.DefaultStream); err != nil {
			t.Error(err)
		}
		if err := r.layer.Launch(p, cuda.LaunchParams{Kernel: "set", Bufs: []cuda.Buf{b}, FArgs: []float32{7}}, cuda.DefaultStream); err != nil {
			t.Error(err)
		}
		r.layer.StartMinibatch(2)
		got, _ := r.layer.MemcpyD2H(p, b, cuda.DefaultStream)
		if !tensor.Vector(got).Equal(tensor.Vector{1, 1}) {
			t.Errorf("mutations leaked during ignore window: %v", got)
		}
		// After the boundary, mutations apply again.
		r.layer.MemcpyH2D(p, b, []float32{3, 3}, cuda.DefaultStream)
		got, _ = r.layer.MemcpyD2H(p, b, cuda.DefaultStream)
		if !tensor.Vector(got).Equal(tensor.Vector{3, 3}) {
			t.Errorf("post-window mutation missing: %v", got)
		}
	})
}

func TestCheckpointModeReroutesD2H(t *testing.T) {
	// Wedge the default stream behind an event that never fires, then
	// verify a checkpoint-mode D2H still completes (§3.2).
	r := newRig(t, Config{Mode: ModeUserLevel})
	r.env.Go("peer", func(p *vclock.Proc) {
		r.engine.CommInitRank(p, "dp", 0, 2, 1, nil)
	})
	var ckptData []float32
	r.env.Go("worker", func(p *vclock.Proc) {
		comm, _ := r.layer.CommInit(p, "dp", 0, 2, 0)
		comms, _ := r.layer.StreamCreate(p)
		params, _ := r.layer.Malloc(p, 64, 2, "params")
		grads, _ := r.layer.Malloc(p, 64, 2, "grads")
		r.layer.MemcpyH2D(p, params, []float32{8, 9}, cuda.DefaultStream)
		r.layer.StreamSynchronize(p, cuda.DefaultStream)

		r.layer.AllReduce(p, comm, grads, comms) // hangs: no peer
		ev, _ := r.layer.EventCreate(p)
		r.layer.EventRecord(p, ev, comms)
		r.layer.StreamWaitEvent(p, cuda.DefaultStream, ev) // wedges stream 0

		// Checkpoint thread: enter checkpoint mode, copy params out.
		if err := r.layer.EnterCheckpointMode(p); err != nil {
			t.Error(err)
			return
		}
		data, err := r.layer.MemcpyD2H(p, params, cuda.DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		ckptData = data
		r.layer.ExitCheckpointMode()
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if !tensor.Vector(ckptData).Equal(tensor.Vector{8, 9}) {
		t.Fatalf("checkpoint copy = %v, want [8 9]", ckptData)
	}
}

func TestValidateDetectsFaithfulLog(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		w, _ := r.layer.Malloc(p, 64, 3, "w")
		g, _ := r.layer.Malloc(p, 64, 3, "g")
		r.layer.MemcpyH2D(p, w, []float32{1, 2, 3}, cuda.DefaultStream)
		r.layer.StreamSynchronize(p, cuda.DefaultStream)
		r.layer.StartMinibatch(1)
		// Minibatch work: overwrite g then add it into... keep it
		// idempotent: g = 2.0; w unchanged by forward/backward analogue.
		r.layer.Launch(p, cuda.LaunchParams{Kernel: "set", Bufs: []cuda.Buf{g}, FArgs: []float32{2}}, cuda.DefaultStream)
		r.layer.StreamSynchronize(p, cuda.DefaultStream)
		res, err := r.layer.Validate(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !res.OK {
			t.Errorf("validation failed: %+v", res)
		}
		if res.Buffers != 2 || res.CallCount != 1 {
			t.Errorf("unexpected counts: %+v", res)
		}
	})
}

func TestValidateCatchesImplicitInput(t *testing.T) {
	// A kernel that reads mutable host state bypassing the logged inputs
	// is exactly the "implicit input" §4.1 warns about: replay diverges
	// and validation must catch it.
	hidden := float32(1)
	kernels := defaultKernels()
	kernels["leaky"] = func(a cuda.KernelArgs) error {
		a.Bufs[0][0] += hidden
		hidden++ // state not captured by the replay log
		return nil
	}
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	drv, err := cuda.NewDriver(dev, engine, kernels, cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	layer := New(env, drv, "rank0", Config{Mode: ModeTransparent})
	env.Go("worker", func(p *vclock.Proc) {
		b, _ := layer.Malloc(p, 64, 1, "x")
		layer.StartMinibatch(1)
		layer.Launch(p, cuda.LaunchParams{Kernel: "leaky", Bufs: []cuda.Buf{b}}, cuda.DefaultStream)
		layer.StreamSynchronize(p, cuda.DefaultStream)
		res, err := layer.Validate(p)
		if err != nil {
			t.Error(err)
			return
		}
		if res.OK {
			t.Error("validation passed despite implicit input")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEndRecoveryRemapsVirtualHandles(t *testing.T) {
	r := newRig(t, Config{Mode: ModeTransparent})
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.layer.Malloc(p, 64, 2, "w")
		oldPhys, _ := r.layer.PhysBuf(b)
		tr := replay.NewTranslator()
		tr.Bufs[b] = oldPhys + 100
		r.layer.BeginRecovery()
		r.layer.EndRecovery(tr)
		newPhys, _ := r.layer.PhysBuf(b)
		if newPhys != oldPhys+100 {
			t.Errorf("virtual %v maps to %v, want %v", b, newPhys, oldPhys+100)
		}
	})
}

func TestProxyBackedLayerSurvivesServerRestart(t *testing.T) {
	// Full transparent stack: layer -> proxy client -> server -> driver.
	// Inject driver corruption, restart the proxy, replay creation +
	// minibatch logs, remap; the application-level handle still works.
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	server, err := proxy.NewServer(env, dev, engine, defaultKernels(), cuda.DefaultParams(), proxy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	client := proxy.NewClient(env, server)
	var faults []Fault
	layer := New(env, client, "rank0", Config{Mode: ModeTransparent})
	layer.cfg.OnFault = func(_ *vclock.Proc, f Fault) { faults = append(faults, f) }

	env.Go("worker", func(p *vclock.Proc) {
		b, _ := layer.Malloc(p, 64, 2, "w")
		layer.StartMinibatch(1)
		layer.MemcpyH2D(p, b, []float32{6, 7}, cuda.DefaultStream)
		layer.StreamSynchronize(p, cuda.DefaultStream)

		// Recovery controller acting on driver corruption: restart the
		// proxy and rebuild state via replay.
		layer.BeginRecovery()
		dev.InjectDriverCorrupt()
		server.Stop()
		client.AbortPending()
		if err := server.Restart(); err != nil {
			t.Error(err)
			return
		}
		tr := replay.NewTranslator()
		if err := replay.Apply(p, client, layer.Log().Creation, tr, replay.Options{}); err != nil {
			t.Error(err)
			return
		}
		if err := replay.Apply(p, client, layer.Log().Minibatch, tr, replay.Options{}); err != nil {
			t.Error(err)
			return
		}
		layer.EndRecovery(tr)

		got, err := layer.MemcpyD2H(p, b, cuda.DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Vector(got).Equal(tensor.Vector{6, 7}) {
			t.Errorf("post-restart read = %v, want [6 7]", got)
		}
	})
	if err := env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterceptedLaunchOverhead(b *testing.B) {
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	drv, err := cuda.NewDriver(dev, engine, defaultKernels(), cuda.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	layer := New(env, drv, "rank0", Config{Mode: ModeTransparent})
	env.Go("worker", func(p *vclock.Proc) {
		buf, _ := layer.Malloc(p, 64, 2, "x")
		layer.StartMinibatch(0)
		for i := 0; i < b.N; i++ {
			layer.Launch(p, cuda.LaunchParams{Kernel: "nop", Dur: vclock.Microsecond, Bufs: []cuda.Buf{buf}}, cuda.DefaultStream)
			if i%1024 == 1023 {
				layer.StreamSynchronize(p, cuda.DefaultStream)
				layer.StartMinibatch(i)
			}
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// Property: for any alloc/free interleaving, the layer's virtual handle
// table stays consistent — live virtual buffers resolve to live physical
// buffers, BufList reflects exactly the live set, and tag sequence numbers
// never repeat.
func TestVirtualHandleTableProperty(t *testing.T) {
	f := func(ops []bool) bool {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		env := vclock.NewEnv(1)
		dev := gpu.NewDevice(env, 0, 0, 1<<34)
		engine := nccl.NewEngine(env, nccl.DefaultParams())
		drv, err := cuda.NewDriver(dev, engine, nil, cuda.DefaultParams())
		if err != nil {
			return false
		}
		layer := New(env, drv, "r", Config{Mode: ModeTransparent})
		ok := true
		env.Go("w", func(p *vclock.Proc) {
			var live []cuda.Buf
			seen := map[string]map[int]bool{}
			for i, alloc := range ops {
				if alloc || len(live) == 0 {
					tag := fmt.Sprintf("t%d", i%3)
					b, err := layer.Malloc(p, 64, 1, tag)
					if err != nil {
						ok = false
						return
					}
					meta, found := layer.BufMeta(b)
					if !found {
						ok = false
						return
					}
					if seen[tag] == nil {
						seen[tag] = map[int]bool{}
					}
					if seen[tag][meta.Seq] {
						ok = false // duplicate (tag, seq) name
						return
					}
					seen[tag][meta.Seq] = true
					live = append(live, b)
				} else {
					victim := live[0]
					live = live[1:]
					if err := layer.Free(p, victim); err != nil {
						ok = false
						return
					}
					if _, found := layer.BufMeta(victim); found {
						ok = false // metadata survived the free
						return
					}
				}
				infos, _ := layer.BufList(p)
				if len(infos) != len(live) {
					ok = false
					return
				}
				for _, b := range live {
					if _, found := layer.PhysBuf(b); !found {
						ok = false
						return
					}
				}
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
