package tracestream_test

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"jitckpt/internal/cluster"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
)

// streamedRun executes one small streamed training run and returns the
// stream and its server.
func streamedRun(t *testing.T) (*tracestream.Stream, *tracestream.Server) {
	t.Helper()
	st := tracestream.New(tracestream.Options{})
	wl := cluster.FleetWorkload()
	res, err := core.Run(core.JobConfig{
		WL: wl, Policy: core.PolicyUserJIT, Iters: 10, Seed: 1,
		HangTimeout: 2 * vclock.Second, SpareNodes: 2,
		IterFailures: []core.IterInjection{{Iter: 5, Frac: 0.5, Rank: 1, Kind: failure.GPUHard}},
		Stream:       st,
	})
	if err != nil || !res.Completed {
		t.Fatalf("run failed: %v", err)
	}
	return st, tracestream.NewServer(st)
}

func get(t *testing.T, srv *tracestream.Server, path string) (int, []byte) {
	t.Helper()
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.Bytes()
}

func TestServeMetrics(t *testing.T) {
	_, srv := streamedRun(t)
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: %d", code)
	}
	var m tracestream.MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode /metrics: %v\n%s", err, body)
	}
	if m.Jobs != 1 || m.JobsDone != 1 || m.JobsCompleted != 1 {
		t.Fatalf("jobs=%d done=%d completed=%d, want 1/1/1", m.Jobs, m.JobsDone, m.JobsCompleted)
	}
	if m.Events == 0 || m.Useful == 0 {
		t.Fatalf("empty rollup: %+v", m)
	}
	if m.RecoveryEpisodes == 0 {
		t.Fatal("injected failure but no recovery episodes at /metrics")
	}
	if m.GoodputEstimate <= 0 || m.GoodputEstimate > 1 {
		t.Fatalf("goodput estimate %v outside (0,1]", m.GoodputEstimate)
	}
}

func TestServeFleetAndIndex(t *testing.T) {
	_, srv := streamedRun(t)
	code, body := get(t, srv, "/fleet")
	if code != 200 {
		t.Fatalf("GET /fleet: %d", code)
	}
	var f tracestream.FleetResponse
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	if len(f.Jobs) != 1 || !f.Jobs[0].Done {
		t.Fatalf("fleet jobs %+v, want one finished job", f.Jobs)
	}
	if f.Jobs[0].Final.Useful == 0 {
		t.Fatal("job summary missing final accounting")
	}
	if code, _ := get(t, srv, "/"); code != 200 {
		t.Fatalf("GET /: %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Fatalf("GET /nope: %d, want 404", code)
	}
}

func TestServeTimeline(t *testing.T) {
	_, srv := streamedRun(t)
	code, body := get(t, srv, "/jobs/job/timeline")
	if code != 200 {
		t.Fatalf("GET timeline: %d", code)
	}
	var tl struct {
		Job         tracestream.JobSummary
		Dropped     uint64
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat,omitempty"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur,omitempty"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("decode timeline: %v", err)
	}
	if tl.Job.ID != "r1.job" {
		t.Fatalf("job id %q", tl.Job.ID)
	}
	meta, complete := 0, 0
	for _, ev := range tl.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Fatalf("negative duration on %q", ev.Name)
			}
		case "B": // in-progress
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta == 0 || complete == 0 {
		t.Fatalf("timeline has %d metadata and %d complete events", meta, complete)
	}

	// The ?n= limit truncates and accounts for it.
	code, body = get(t, srv, "/jobs/job/timeline?n=3")
	if code != 200 {
		t.Fatalf("GET limited timeline: %d", code)
	}
	var lim tracestream.TimelineResponse
	if err := json.Unmarshal(body, &lim); err != nil {
		t.Fatal(err)
	}
	if lim.Dropped == 0 {
		t.Fatal("n=3 on a busy job should report truncation")
	}

	if code, _ := get(t, srv, "/jobs/ghost/timeline"); code != 404 {
		t.Fatalf("unknown job: %d, want 404", code)
	}
	if code, _ := get(t, srv, "/jobs/job/timeline?n=bogus"); code != 400 {
		t.Fatalf("bad n: %d, want 400", code)
	}
	if code, _ := get(t, srv, "/jobs/timeline"); code != 404 {
		t.Fatalf("missing id: %d, want 404", code)
	}
}

// soakFleetConfig is a small multi-tenant fleet with enough churn
// (rack loss, repairs, a preempting arrival) to exercise every endpoint
// while it runs.
func soakFleetConfig(st *tracestream.Stream) cluster.Config {
	job := func(name string, pol core.Policy, pri, iters int) cluster.JobSpec {
		return cluster.JobSpec{
			Name: name, Priority: pri,
			Config: core.JobConfig{
				WL: cluster.FleetWorkload(), Policy: pol, Iters: iters,
				CkptInterval: vclock.Second, HangTimeout: 2 * vclock.Second,
			},
		}
	}
	plan := failure.NodePlan{Injections: []failure.NodeInjection{
		{At: 1500 * vclock.Millisecond, Node: 0, Kind: failure.RackDown},
	}}
	for i := 0; i < 4; i++ {
		plan.Injections = append(plan.Injections, failure.NodeInjection{
			At: 6*vclock.Second + vclock.Time(i)*vclock.Second, Node: i, Kind: failure.NodeRepaired,
		})
	}
	hi := job("hi", core.PolicyPCDisk, 5, 10)
	hi.StartAt = 500 * vclock.Millisecond
	return cluster.Config{
		Nodes: 6, PerNode: 2, RackSize: 4, Seed: 11, Horizon: 3 * vclock.Minute,
		Jobs: []cluster.JobSpec{
			job("d0", core.PolicyPCDisk, 0, 25),
			job("el", core.PolicyElasticJIT, 0, 120),
			job("d1", core.PolicyPCDisk, 0, 25),
			hi,
		},
		Failures: plan,
		Stream:   st,
	}
}

// TestServeRaceSoak hammers every endpoint from concurrent goroutines
// while a chaotic fleet run streams into the same Stream — the snapshot
// path must be race-free against live ingest (run under -race in CI's
// stream-soak job). The handlers are exercised through ServeHTTP
// directly: the race detector sees the same interleavings a TCP listener
// would produce, without the port.
func TestServeRaceSoak(t *testing.T) {
	st := tracestream.New(tracestream.Options{LaneCap: 64, SpanCap: 64})
	srv := tracestream.NewServer(st)

	done := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{
		"/metrics", "/fleet",
		"/jobs/d0/timeline", "/jobs/el/timeline?n=16",
		"/jobs/r1.d1/timeline", "/jobs/hi/timeline",
		"/jobs/ghost/timeline", "/",
	}
	for _, p := range paths {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rr := httptest.NewRecorder()
				srv.ServeHTTP(rr, httptest.NewRequest("GET", p, nil))
			}
		}()
	}

	res, err := cluster.Run(soakFleetConfig(st))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("fleet run under load: %v", err)
	}

	// The run under concurrent snapshotting must still be exact.
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	m := st.Metrics()
	if m.Fleet == nil {
		t.Fatal("no fleet final rollup after soak")
	}
	if m.Fleet.Goodput != res.Fleet.Goodput {
		t.Fatalf("soak perturbed the rollup: stream goodput %v, fleet %v", m.Fleet.Goodput, res.Fleet.Goodput)
	}
	if m.Jobs != len(res.Jobs) {
		t.Fatalf("stream saw %d jobs, fleet ran %d", m.Jobs, len(res.Jobs))
	}
}
