// Package tracestream is the live streaming layer over the trace
// recorder: where internal/trace is post-hoc (run to completion, then
// export), tracestream observes events as they are recorded and keeps
// bounded, incrementally-maintained state an HTTP server can snapshot
// while the simulation is still running.
//
// The pipeline (after datadog-agent's pkg/gpu shape — per-stream
// handlers feeding spans into an aggregator a stats generator flushes):
//
//	Recorder ──SetSink──▶ Stream.Event
//	   │ category filter (lock-free; narrative cats in, kernel noise out —
//	   │                  and a retention-free Recorder elides excluded
//	   │                  cats before formatting, via trace.FilteringSink)
//	   │ staging batch (amortizes the aggregator's cache footprint;
//	   │                drained by every snapshot, so reads see everything)
//	   │ per-lane Ring (bounded, drop-oldest, exact dropped count)
//	   │ span finalizer (open spans close as end events arrive;
//	   │                 long-running spans surface as in-progress)
//	   └ two-level aggregator
//	        per-job   : phase sums, windowed rates, and the authoritative
//	                    final rollup from the run's core/acct instant —
//	                    exactly metrics.Accounting, never recomputed
//	        per-fleet : spare-pool level (cluster/pool), recovery
//	                    episodes, and the final cluster/fleet-acct rollup
//	                    mirroring cluster.Result
//
// Memory is bounded on every axis: rings and span history are capped per
// lane and per job, and Options.RunWindow evicts whole runs' detail as a
// sweep streams run after run through one Stream — summaries and finals
// are kept forever, detail only for the recent window, and evicted
// buffers are recycled so a long-lived stream stops allocating.
//
// Two properties make it safe to leave on:
//
//   - Zero perturbation: the sink runs synchronously on the simulation
//     goroutine, never touches the environment, and drops (ring
//     eviction) rather than blocks when a consumer lags. A streamed run
//     is byte-identical to a plain one (the differential suite in core
//     and cluster pins this for every golden policy).
//
//   - Streaming is a view, never a second source of truth: live phase
//     sums are estimates for operators, but the final per-job and fleet
//     rollups are parsed from authoritative instants the harness and
//     cluster emit from the same variables their results are built from,
//     so the aggregator's finals equal the post-hoc numbers exactly.
//
// Snapshots are lock-brief: Stream holds one mutex during event ingest
// (nanoseconds: ring push + a few map updates) and during snapshot
// copies; JSON encoding happens outside the lock.
package tracestream

import (
	"sort"
	"strconv"
	"sync"

	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Options bound the stream's memory and set the rollup window.
type Options struct {
	// LaneCap is each per-lane ring's capacity (default 512).
	LaneCap int
	// SpanCap is each job's recent-finalized-span ring capacity
	// (default 512).
	SpanCap int
	// Window is the rollup window width in virtual time (default 1s):
	// rates are recomputed incrementally per window, not by rescanning.
	Window vclock.Time
	// Cats selects the event categories the stream ingests; nil selects
	// DefaultCats, and a single "*" entry ingests everything. Filtering
	// happens before the stream's mutex, so excluded events cost one map
	// probe — this is what keeps the live tap within its overhead budget:
	// per-kernel gpu/cuda/nccl noise is ~30× the narrative volume and
	// none of it feeds the rollups (the golden traces filter to the same
	// narrative for the same reason).
	Cats []string
	// RunWindow is how many recent runs keep full timeline detail (lane
	// rings and finalized-span history); default 2 — the streaming run and
	// the one before it — and negative keeps every run. When a sweep
	// streams hundreds of runs through one Stream, the window is what
	// keeps memory bounded: older runs' detail is evicted (counted in the
	// dropped totals, like any other truncation) while their job summaries
	// and authoritative finals are kept forever.
	RunWindow int
}

// DefaultCats is the narrative category set the stream ingests by
// default: run/recovery structure, training progress, checkpoint
// activity, failures, and the cluster timeline — everything the
// aggregator rolls up, nothing the per-kernel simulation spams.
// Per-rank peer-shelter transport ("peer") is excluded like the other
// transport noise: its outcome reaches the stream exactly through the
// final accounting instant, and runs that want the raw spans can opt in
// with Options.Cats.
func DefaultCats() []string {
	return []string{"core", "train", "ckpt", "fail", "phase", "elastic", "cluster"}
}

func (o Options) withDefaults() Options {
	if o.LaneCap <= 0 {
		o.LaneCap = 512
	}
	if o.SpanCap <= 0 {
		o.SpanCap = 512
	}
	if o.Window <= 0 {
		o.Window = vclock.Second
	}
	if o.RunWindow == 0 {
		o.RunWindow = 2
	}
	if len(o.Cats) == 0 {
		o.Cats = DefaultCats()
	}
	return o
}

type laneKey struct {
	run  int
	lane string
}

type jobKey struct {
	run   int
	label string
}

type phaseKey struct {
	cat, name string
}

type laneState struct {
	key  laneKey
	tid  int // per-run thread id, Chrome-exporter style
	ring *Ring
}

type openSpan struct {
	seq             uint64
	t               vclock.Time
	run             int
	cat, lane, name string
	args            []trace.Arg
	job             *jobState
}

// SpanView is one finalized (or in-progress) span as the stream saw it.
type SpanView struct {
	Run             int
	Cat, Lane, Name string
	Start, End      vclock.Time
	Open            bool
	BeginArgs       []trace.Arg
	EndArgs         []trace.Arg
}

// window accumulates one rollup window's counters; rolling past the
// window boundary snapshots it and resets, so rates never rescan.
type window struct {
	Start       vclock.Time
	Events      int
	SpansClosed int
	// Useful is train/iter span time closed in the window, summed across
	// ranks (i.e. GPU-time, not wall time).
	Useful vclock.Time
}

func (w *window) roll(t, width vclock.Time, last *window) {
	if t >= w.Start && t < w.Start+width {
		return
	}
	*last = *w
	*w = window{Start: t - t%width}
}

type jobState struct {
	key    jobKey
	id     string // "r<run>.<label>"
	policy string
	gpus   int
	iters  int

	done      bool
	completed bool
	haveFinal bool
	wall      vclock.Time
	final     metrics.Accounting

	openSpans    int
	spansClosed  int
	detections   int
	recoveries   int // closed core/recovery spans
	episodes     int // measured recovery-latency episodes (authoritative)
	incarnations int
	phases       map[phaseKey]*phaseAgg
	spans        spanRing
	win, lastWin window
}

// phaseAgg accumulates one (cat, name) phase's closed-span totals. The
// map holds pointers so the per-span update is a single probe and an
// in-place increment — the 'E' hot path hashes each phase key once.
type phaseAgg struct {
	dur vclock.Time
	n   int
}

func (j *jobState) liveUseful() vclock.Time {
	if pa := j.phases[phaseKey{"train", "iter"}]; pa != nil {
		return pa.dur
	}
	return 0
}

// PoolLevel is the spare-pool level at the last cluster/pool instant.
type PoolLevel struct {
	T                vclock.Time `json:"t"`
	Used, Idle, Down int
}

// FleetFinal mirrors cluster.FleetStats, parsed from the authoritative
// cluster/fleet-acct instant cluster.Run emits when the run completes.
type FleetFinal struct {
	Nodes, GPUs                          int
	Wall                                 vclock.Time
	Used, Idle, Down                     vclock.Time
	Goodput                              float64
	JobsCompleted, JobsTotal             int
	Preemptions, RecoveryEpisodes        int
	AppliedInjections, SkippedInjections int
	LatCount                             int
	LatMean, LatP50, LatP95, LatMax      vclock.Time
}

// Stream is the live aggregator; it implements trace.EventSink and is
// safe for concurrent snapshotting while the simulation ingests.
type Stream struct {
	mu  sync.Mutex
	opt Options
	// cats is the ingest filter, immutable after New — reads need no lock.
	cats map[string]bool
	all  bool // Cats contained "*": ingest everything

	// stage batches accepted events ahead of aggregation: Event appends
	// (one contiguous, cache-hot copy) and the map-heavy ingest work runs
	// when the batch fills, amortizing the aggregator's cache footprint
	// across the batch instead of paying cold misses on every simulated
	// event. Every snapshot drains the stage first, so reads always see
	// everything recorded before them — batching is invisible except in
	// the overhead benchmark.
	stage []trace.Ev

	events uint64
	lastT  vclock.Time

	// Run-detail window: runOrder lists the runs whose timeline detail is
	// still retained; evicted counts the events whose detail was dropped
	// when older runs aged out.
	runOrder []int
	curRun   int
	evicted  uint64

	lanes     map[laneKey]*laneState
	laneOrder []*laneState
	tidPerRun map[int]int

	open map[uint64]openSpan

	jobs        map[jobKey]*jobState
	jobOrder    []*jobState
	byID        map[string]*jobState
	soleJob     map[int]*jobState // run -> its only job; nil once a second registers
	runJobCount map[int]int

	// Recycled buffer storage from evicted runs: a long-lived Stream
	// reaches ring-buffer steady state after RunWindow runs instead of
	// re-growing (and garbage-collecting) every run's rings. The pools
	// only grow when runs are evicted, so they are bounded by the window.
	freeEv   [][]trace.Ev
	freeSpan [][]SpanView

	pool       PoolLevel
	havePool   bool
	fleetFinal *FleetFinal

	win, lastWin window
}

// New creates an empty Stream; attach it with Recorder.SetSink (or the
// Stream fields on core.JobConfig / cluster.Config, which do that and
// keep working when no post-hoc log is retained).
func New(opt Options) *Stream {
	s := &Stream{
		opt:         opt.withDefaults(),
		stage:       make([]trace.Ev, 0, stageCap),
		cats:        make(map[string]bool),
		lanes:       make(map[laneKey]*laneState),
		tidPerRun:   make(map[int]int),
		open:        make(map[uint64]openSpan),
		jobs:        make(map[jobKey]*jobState),
		byID:        make(map[string]*jobState),
		soleJob:     make(map[int]*jobState),
		runJobCount: make(map[int]int),
	}
	for _, c := range s.opt.Cats {
		if c == "*" {
			s.all = true
		}
		s.cats[c] = true
	}
	return s
}

// SinkCats implements trace.FilteringSink: a retention-free recorder
// uses the advertised set to elide excluded categories before arg
// formatting, so the per-kernel noise a live tap ignores costs the
// simulation almost nothing. The map is built in New and never mutated.
func (s *Stream) SinkCats() map[string]bool {
	if s.all {
		return nil
	}
	return s.cats
}

// stageCap is the staging batch size: small enough that the parked
// events (and the arg allocations they reference) are negligible, large
// enough to amortize the aggregator's cache footprint.
const stageCap = 256

// Event implements trace.EventSink. It runs on the simulation goroutine:
// bounded work, no blocking beyond the snapshot mutex, no allocation on
// the warm path (the AllocsPerRun budget test pins this).
func (s *Stream) Event(ev *trace.Ev) {
	// The category filter runs before the lock: an excluded event costs
	// one probe of an immutable map and touches no shared state.
	if !s.all && !s.cats[ev.Cat] {
		return
	}
	s.mu.Lock()
	s.stage = append(s.stage, *ev)
	if len(s.stage) == cap(s.stage) {
		s.drain()
	}
	s.mu.Unlock()
}

// drain aggregates the staged batch. Callers hold s.mu.
func (s *Stream) drain() {
	for i := range s.stage {
		s.ingest(&s.stage[i])
		s.stage[i] = trace.Ev{} // release arg references promptly
	}
	s.stage = s.stage[:0]
}

func (s *Stream) ingest(ev *trace.Ev) {
	s.events++
	if ev.Run != s.curRun {
		s.noteRun(ev.Run)
	}
	if ev.T > s.lastT {
		s.lastT = ev.T
	}
	s.win.roll(ev.T, s.opt.Window, &s.lastWin)
	s.win.Events++

	// The ring keeps the event envelope only: Cat/Lane/Name are static
	// callsite strings, but Args are per-event heap allocations the
	// recorder would otherwise let die immediately — retaining them across
	// ~10^5 ring slots is what turns a cheap tap into GC pressure. Span
	// args survive where they are served from (openSpan and the per-job
	// span ring).
	s.laneOf(ev.Run, ev.Lane).ring.PushStripped(ev)

	switch ev.Ph {
	case 'B':
		job := s.soleJob[ev.Run]
		if ev.Cat == "core" && ev.Name == "run" {
			job = s.registerJob(ev)
		}
		s.open[ev.Seq] = openSpan{
			seq: ev.Seq, t: ev.T, run: ev.Run,
			cat: ev.Cat, lane: ev.Lane, name: ev.Name, args: ev.Args, job: job,
		}
		if job != nil {
			job.openSpans++
			if ev.Cat == "core" && ev.Name == "incarnation" {
				job.incarnations++
			}
			s.rollJob(job, ev.T)
			job.win.Events++
		}
	case 'E':
		os, ok := s.open[ev.Ref]
		if !ok {
			return // duplicate end, or the begin predates sink attachment
		}
		delete(s.open, ev.Ref)
		s.win.SpansClosed++
		job := os.job
		if job == nil {
			job = s.soleJob[ev.Run]
		}
		if job == nil {
			return
		}
		dur := ev.T - os.t
		pk := phaseKey{os.cat, os.name}
		job.openSpans--
		job.spansClosed++
		pa := job.phases[pk]
		if pa == nil {
			pa = &phaseAgg{}
			job.phases[pk] = pa
		}
		pa.dur += dur
		pa.n++
		s.rollJob(job, ev.T)
		job.win.Events++
		job.win.SpansClosed++
		if pk == (phaseKey{"train", "iter"}) {
			job.win.Useful += dur
			s.win.Useful += dur
		}
		if pk == (phaseKey{"core", "recovery"}) {
			job.recoveries++
		}
		job.spans.push(SpanView{
			Run: os.run, Cat: os.cat, Lane: os.lane, Name: os.name,
			Start: os.t, End: ev.T, BeginArgs: os.args, EndArgs: ev.Args,
		})
	case 'i':
		switch {
		case ev.Cat == "core" && ev.Name == "acct":
			s.applyAcct(ev)
		case ev.Cat == "cluster" && ev.Name == "pool":
			s.pool = PoolLevel{
				T:    ev.T,
				Used: int(argInt(ev.Args, "used")),
				Idle: int(argInt(ev.Args, "idle")),
				Down: int(argInt(ev.Args, "down")),
			}
			s.havePool = true
		case ev.Cat == "cluster" && ev.Name == "fleet-acct":
			s.applyFleetAcct(ev)
		case ev.Cat == "fail" && ev.Name == "detected":
			if job := s.soleJob[ev.Run]; job != nil {
				job.detections++
			}
		}
	}
}

// noteRun opens detail tracking for a newly seen run and ages out the
// oldest runs beyond the RunWindow. The recorder numbers runs
// monotonically and records one at a time, so a changed run id marks a
// run boundary (a repeated id — fleet tenants all share run 1 — is
// caught by the membership scan and never re-appended).
func (s *Stream) noteRun(run int) {
	s.curRun = run
	for _, r := range s.runOrder {
		if r == run {
			return
		}
	}
	s.runOrder = append(s.runOrder, run)
	if s.opt.RunWindow < 0 {
		return
	}
	for len(s.runOrder) > s.opt.RunWindow {
		s.evictRun(s.runOrder[0])
		s.runOrder = s.runOrder[1:]
	}
}

// evictRun drops one run's timeline detail — lane rings, open spans, and
// finalized-span history — while keeping every job summary and
// authoritative final. Evicted events and spans stay counted in the
// dropped totals, so a consumer can tell truncated history from a quiet
// run.
func (s *Stream) evictRun(run int) {
	keep := s.laneOrder[:0]
	for _, ls := range s.laneOrder {
		if ls.key.run != run {
			keep = append(keep, ls)
			continue
		}
		s.evicted += ls.ring.Dropped() + uint64(ls.ring.Len())
		if buf := ls.ring.recycle(); buf != nil {
			s.freeEv = append(s.freeEv, buf)
		}
		delete(s.lanes, ls.key)
	}
	for i := len(keep); i < len(s.laneOrder); i++ {
		s.laneOrder[i] = nil // release the evicted laneStates
	}
	s.laneOrder = keep
	for seq, os := range s.open {
		if os.run != run {
			continue
		}
		delete(s.open, seq)
		if os.job != nil {
			os.job.openSpans--
		}
	}
	for _, j := range s.jobOrder {
		if j.key.run != run {
			continue
		}
		if buf := j.spans.seal(); buf != nil {
			s.freeSpan = append(s.freeSpan, buf)
		}
	}
}

func (s *Stream) rollJob(j *jobState, t vclock.Time) {
	j.win.roll(t, s.opt.Window, &j.lastWin)
}

func (s *Stream) laneOf(run int, lane string) *laneState {
	k := laneKey{run, lane}
	if ls := s.lanes[k]; ls != nil {
		return ls
	}
	s.tidPerRun[run]++
	ls := &laneState{key: k, tid: s.tidPerRun[run], ring: NewRing(s.opt.LaneCap)}
	if n := len(s.freeEv); n > 0 {
		ls.ring.adopt(s.freeEv[n-1])
		s.freeEv[n-1] = nil
		s.freeEv = s.freeEv[:n-1]
	}
	s.lanes[k] = ls
	s.laneOrder = append(s.laneOrder, ls)
	return ls
}

// registerJob creates (or returns) the job a core/run begin announces.
// Job identity is (run, "job" arg): in fleet mode every tenant shares
// run 1 and is told apart by label; in single-run sweeps every run has
// one job.
func (s *Stream) registerJob(ev *trace.Ev) *jobState {
	label := argStr(ev.Args, "job")
	if label == "" {
		label = "run" + strconv.Itoa(ev.Run)
	}
	k := jobKey{ev.Run, label}
	if j := s.jobs[k]; j != nil {
		return j
	}
	j := &jobState{
		key:    k,
		id:     "r" + strconv.Itoa(ev.Run) + "." + label,
		policy: argStr(ev.Args, "policy"),
		gpus:   int(argInt(ev.Args, "gpus")),
		iters:  int(argInt(ev.Args, "iters")),
		phases: make(map[phaseKey]*phaseAgg),
	}
	j.spans.cap = s.opt.SpanCap
	if n := len(s.freeSpan); n > 0 {
		j.spans.buf = s.freeSpan[n-1]
		s.freeSpan[n-1] = nil
		s.freeSpan = s.freeSpan[:n-1]
	}
	s.jobs[k] = j
	s.byID[j.id] = j
	s.jobOrder = append(s.jobOrder, j)
	s.runJobCount[ev.Run]++
	if s.runJobCount[ev.Run] == 1 {
		s.soleJob[ev.Run] = j
	} else {
		// Multiple tenants share this run (fleet mode): per-event job
		// attribution is no longer possible from lane alone; job-tagged
		// instants (acct) still land correctly.
		s.soleJob[ev.Run] = nil
	}
	return j
}

// applyAcct ingests the authoritative per-job accounting instant the
// harness emits as it finishes: the same variables RunResult is built
// from, so the stream's final rollup equals the post-hoc numbers
// exactly (the differential suite asserts bit-equality).
func (s *Stream) applyAcct(ev *trace.Ev) {
	label := argStr(ev.Args, "job")
	k := jobKey{ev.Run, label}
	j := s.jobs[k]
	if j == nil {
		// Sink attached mid-run: the run began before we were listening.
		j = s.registerJob(ev)
	}
	j.final = metrics.Accounting{
		N:                  int(argInt(ev.Args, "n")),
		Useful:             vclock.Time(argInt(ev.Args, "useful")),
		CkptStall:          vclock.Time(argInt(ev.Args, "ckpt_stall")),
		RecoveryFixed:      vclock.Time(argInt(ev.Args, "recovery_fixed")),
		RedoWork:           vclock.Time(argInt(ev.Args, "redo")),
		WaitingForCapacity: vclock.Time(argInt(ev.Args, "wait_capacity")),
		Recoveries:         int(argInt(ev.Args, "recoveries")),
		Checkpoints:        int(argInt(ev.Args, "checkpoints")),
		DegradedIters:      int(argInt(ev.Args, "degraded_iters")),
		DegradedUseful:     vclock.Time(argInt(ev.Args, "degraded_useful")),
	}
	if j.gpus == 0 {
		j.gpus = j.final.N
	}
	j.wall = vclock.Time(argInt(ev.Args, "wall"))
	j.completed = argStr(ev.Args, "completed") == "true"
	// The live counters track traced spans; the finals are authoritative
	// (transparent recovery, e.g., restarts nothing, so it closes zero
	// incarnation spans while the result reports one incarnation).
	j.incarnations = int(argInt(ev.Args, "incarnations"))
	j.episodes = int(argInt(ev.Args, "episodes"))
	j.haveFinal = true
	j.done = true
}

func (s *Stream) applyFleetAcct(ev *trace.Ev) {
	s.fleetFinal = &FleetFinal{
		Nodes:             int(argInt(ev.Args, "nodes")),
		GPUs:              int(argInt(ev.Args, "gpus")),
		Wall:              vclock.Time(argInt(ev.Args, "wall")),
		Used:              vclock.Time(argInt(ev.Args, "used")),
		Idle:              vclock.Time(argInt(ev.Args, "idle")),
		Down:              vclock.Time(argInt(ev.Args, "down")),
		Goodput:           argFloat(ev.Args, "goodput"),
		JobsCompleted:     int(argInt(ev.Args, "completed")),
		JobsTotal:         int(argInt(ev.Args, "total")),
		Preemptions:       int(argInt(ev.Args, "preemptions")),
		RecoveryEpisodes:  int(argInt(ev.Args, "episodes")),
		AppliedInjections: int(argInt(ev.Args, "applied")),
		SkippedInjections: int(argInt(ev.Args, "skipped")),
		LatCount:          int(argInt(ev.Args, "lat_count")),
		LatMean:           vclock.Time(argInt(ev.Args, "lat_mean")),
		LatP50:            vclock.Time(argInt(ev.Args, "lat_p50")),
		LatP95:            vclock.Time(argInt(ev.Args, "lat_p95")),
		LatMax:            vclock.Time(argInt(ev.Args, "lat_max")),
	}
}

// JobSummary is one job's snapshot row.
type JobSummary struct {
	ID        string
	Label     string
	Run       int
	Policy    string
	GPUs      int
	Iters     int
	Done      bool
	Completed bool
	// Wall and Final are authoritative once Done (parsed from the
	// core/acct instant); zero before that.
	Wall      vclock.Time
	HaveFinal bool
	Final     metrics.Accounting
	// Live counters, incrementally maintained.
	OpenSpans   int
	SpansClosed int
	Detections  int
	Recoveries  int
	// Episodes is the measured recovery-latency episode count; zero until
	// Done (it arrives with the final rollup), whereas Recoveries tracks
	// closed core/recovery spans live.
	Episodes     int
	Incarnations int
	// LiveUseful is closed train/iter span time summed across ranks
	// (GPU-time): an estimate until Done, when Final.Useful×N is exact.
	LiveUseful vclock.Time
}

func (j *jobState) summary() JobSummary {
	return JobSummary{
		ID: j.id, Label: j.key.label, Run: j.key.run,
		Policy: j.policy, GPUs: j.gpus, Iters: j.iters,
		Done: j.done, Completed: j.completed,
		Wall: j.wall, HaveFinal: j.haveFinal, Final: j.final,
		OpenSpans: j.openSpans, SpansClosed: j.spansClosed,
		Detections: j.detections, Recoveries: j.recoveries,
		Episodes: j.episodes, Incarnations: j.incarnations,
		LiveUseful: j.liveUseful(),
	}
}

// Jobs returns every known job in registration order.
func (s *Stream) Jobs() []JobSummary {
	s.mu.Lock()
	s.drain()
	defer s.mu.Unlock()
	out := make([]JobSummary, len(s.jobOrder))
	for i, j := range s.jobOrder {
		out[i] = j.summary()
	}
	return out
}

// lookup resolves a job by canonical ID ("r1.tenant"), or by bare label
// when that is unambiguous.
func (s *Stream) lookup(id string) *jobState {
	if j := s.byID[id]; j != nil {
		return j
	}
	var match *jobState
	for _, j := range s.jobOrder {
		if j.key.label == id {
			if match != nil {
				return nil // ambiguous
			}
			match = j
		}
	}
	return match
}

// Job returns one job's snapshot by ID or unique label.
func (s *Stream) Job(id string) (JobSummary, bool) {
	s.mu.Lock()
	s.drain()
	defer s.mu.Unlock()
	j := s.lookup(id)
	if j == nil {
		return JobSummary{}, false
	}
	return j.summary(), true
}

// TimelineSnapshot is a job's recent span history.
type TimelineSnapshot struct {
	Job JobSummary
	// Dropped counts finalized spans evicted from the job's bounded ring:
	// nonzero means Spans is a truncated suffix, not the full history.
	Dropped uint64
	// Spans holds recent finalized spans oldest-first, then in-progress
	// spans (Open=true) in begin order.
	Spans []SpanView
}

// Timeline snapshots a job's recent finalized spans plus its currently
// open (long-running or cut-off) spans. max limits the finalized count
// (≤0 = the whole ring).
func (s *Stream) Timeline(id string, max int) (TimelineSnapshot, bool) {
	s.mu.Lock()
	s.drain()
	defer s.mu.Unlock()
	j := s.lookup(id)
	if j == nil {
		return TimelineSnapshot{}, false
	}
	snap := TimelineSnapshot{Job: j.summary(), Dropped: j.spans.dropped}
	closed := j.spans.snapshot(nil)
	if max > 0 && len(closed) > max {
		snap.Dropped += uint64(len(closed) - max)
		closed = closed[len(closed)-max:]
	}
	snap.Spans = closed
	var inProg []openSpan
	for _, os := range s.open {
		if os.job == j {
			inProg = append(inProg, os)
		}
	}
	sort.Slice(inProg, func(a, b int) bool { return inProg[a].seq < inProg[b].seq })
	for _, os := range inProg {
		snap.Spans = append(snap.Spans, SpanView{
			Run: os.run, Cat: os.cat, Lane: os.lane, Name: os.name,
			Start: os.t, Open: true, BeginArgs: os.args,
		})
	}
	return snap, true
}

// MetricsSnapshot is the fleet-level live rollup.
type MetricsSnapshot struct {
	// Ingest counters.
	Events uint64
	// DroppedEvents counts timeline truncation: per-lane ring evictions
	// plus whole-run detail aged out past Options.RunWindow. Monotonic.
	DroppedEvents uint64
	Lanes         int
	OpenSpans     int
	LastT         vclock.Time
	// Job rollup.
	Jobs          int
	JobsDone      int
	JobsCompleted int
	// RecoveryEpisodes sums measured episode counts for done jobs and
	// live closed core/recovery spans for running ones; once every job
	// is done it equals cluster.FleetStats.RecoveryEpisodes exactly
	// (the Σ_jobs episodes identity Reconcile enforces).
	RecoveryEpisodes int
	// Waste breakdown summed over jobs with finals (exact per job).
	Useful             vclock.Time
	CkptStall          vclock.Time
	RecoveryFixed      vclock.Time
	RedoWork           vclock.Time
	WaitingForCapacity vclock.Time
	// LiveUsefulGPUTime is Σ closed train/iter span time across all jobs
	// and ranks; with GoodputEstimate = LiveUsefulGPUTime/(ΣGPUs×LastT)
	// it approximates fleet goodput while runs are in flight.
	LiveUsefulGPUTime vclock.Time
	GoodputEstimate   float64
	// Spare-pool level at the last cluster/pool transition.
	HavePool bool
	Pool     PoolLevel
	// Fleet is the authoritative final rollup (nil until cluster.Run
	// finishes).
	Fleet *FleetFinal
	// Window is the last completed rollup window; Current the one being
	// filled.
	WindowWidth     vclock.Time
	Window, Current window
}

// Metrics snapshots the fleet-level rollup.
func (s *Stream) Metrics() MetricsSnapshot {
	s.mu.Lock()
	s.drain()
	defer s.mu.Unlock()
	m := MetricsSnapshot{
		Events:      s.events,
		Lanes:       len(s.laneOrder),
		OpenSpans:   len(s.open),
		LastT:       s.lastT,
		Jobs:        len(s.jobOrder),
		HavePool:    s.havePool,
		Pool:        s.pool,
		Fleet:       s.fleetFinal,
		WindowWidth: s.opt.Window,
		Window:      s.lastWin,
		Current:     s.win,
	}
	m.DroppedEvents = s.evicted
	for _, ls := range s.laneOrder {
		m.DroppedEvents += ls.ring.Dropped()
	}
	totGPUs := 0
	for _, j := range s.jobOrder {
		totGPUs += j.gpus
		if j.done {
			m.JobsDone++
			if j.completed {
				m.JobsCompleted++
			}
		}
		if j.haveFinal {
			m.RecoveryEpisodes += j.episodes
			m.Useful += j.final.Useful
			m.CkptStall += j.final.CkptStall
			m.RecoveryFixed += j.final.RecoveryFixed
			m.RedoWork += j.final.RedoWork
			m.WaitingForCapacity += j.final.WaitingForCapacity
			m.LiveUsefulGPUTime += vclock.Time(j.final.N) * j.final.Useful
		} else {
			m.RecoveryEpisodes += j.recoveries
			m.LiveUsefulGPUTime += j.liveUseful()
		}
	}
	if totGPUs > 0 && s.lastT > 0 {
		m.GoodputEstimate = float64(m.LiveUsefulGPUTime) / (float64(totGPUs) * float64(s.lastT))
	}
	if s.fleetFinal != nil {
		m.GoodputEstimate = s.fleetFinal.Goodput
	}
	return m
}

// spanRing is Ring's shape for finalized SpanViews (one per job). A
// sealed ring (its run's detail was evicted) keeps no history and counts
// every span — retained or late-arriving — as dropped.
type spanRing struct {
	buf     []SpanView
	cap     int
	start   int
	dropped uint64
	sealed  bool
}

// seal drops the history (counting it) and returns the cleared buffer
// for recycling.
func (r *spanRing) seal() []SpanView {
	r.dropped += uint64(len(r.buf))
	buf := r.buf
	clear(buf) // release retained span args
	r.buf = nil
	r.start = 0
	r.sealed = true
	if cap(buf) == 0 {
		return nil
	}
	return buf[:0]
}

func (r *spanRing) push(sv SpanView) {
	if r.sealed {
		r.dropped++
		return
	}
	if r.cap < 1 {
		r.cap = 1
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, sv)
		return
	}
	r.buf[r.start] = sv
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.dropped++
}

func (r *spanRing) snapshot(dst []SpanView) []SpanView {
	if len(r.buf) < r.cap {
		return append(dst, r.buf...)
	}
	dst = append(dst, r.buf[r.start:]...)
	return append(dst, r.buf[:r.start]...)
}

func argStr(args []trace.Arg, key string) string {
	for _, a := range args {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

func argInt(args []trace.Arg, key string) int64 {
	v, _ := strconv.ParseInt(argStr(args, key), 10, 64)
	return v
}

func argFloat(args []trace.Arg, key string) float64 {
	v, _ := strconv.ParseFloat(argStr(args, key), 64)
	return v
}
