package tracestream

import "jitckpt/internal/trace"

// Ring is a bounded drop-oldest event buffer: the live pipeline's
// backpressure valve. Pushing into a full ring overwrites the oldest
// event and counts it in Dropped — ingestion never blocks and never
// grows, so a slow (or absent) HTTP consumer costs the simulation
// nothing but the ring's fixed memory. The exact dropped count lets a
// consumer distinguish "quiet lane" from "truncated history".
//
// Ring is not synchronized; Stream guards its rings with its own mutex.
type Ring struct {
	buf     []trace.Ev
	cap     int
	start   int // index of the oldest event when full
	dropped uint64
}

// NewRing creates a ring holding at most capacity events (minimum 1).
// The buffer grows lazily up to capacity, so short-lived lanes never pay
// for their bound.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity}
}

// Push appends ev, evicting the oldest event when full.
func (r *Ring) Push(ev trace.Ev) {
	*r.slot() = ev
}

// PushStripped stores *ev with its Args cleared, writing the slot in
// place — the ingest hot path's variant of Push, one copy instead of
// two, and no retained per-event arg allocations.
func (r *Ring) PushStripped(ev *trace.Ev) {
	slot := r.slot()
	*slot = *ev
	slot.Args = nil
}

// slot returns the buffer slot the next event lands in, evicting the
// oldest event when full.
func (r *Ring) slot() *trace.Ev {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, trace.Ev{})
		return &r.buf[len(r.buf)-1]
	}
	slot := &r.buf[r.start]
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.dropped++
	return slot
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return len(r.buf) }

// Cap returns the ring's capacity bound.
func (r *Ring) Cap() int { return r.cap }

// Dropped returns the exact number of events evicted so far.
func (r *Ring) Dropped() uint64 { return r.dropped }

// adopt points the ring at recycled backing storage (contents
// discarded); the ring still grows lazily past the recycled capacity up
// to its own bound.
func (r *Ring) adopt(buf []trace.Ev) {
	r.buf = buf[:0]
	r.start = 0
}

// recycle detaches and returns the ring's backing storage (nil if it
// never buffered anything), leaving the ring empty.
func (r *Ring) recycle() []trace.Ev {
	buf := r.buf
	r.buf = nil
	r.start = 0
	if cap(buf) == 0 {
		return nil
	}
	return buf[:0]
}

// Snapshot appends the buffered events, oldest first, to dst and returns
// the extended slice (pass nil for a fresh copy).
func (r *Ring) Snapshot(dst []trace.Ev) []trace.Ev {
	if len(r.buf) < r.cap {
		return append(dst, r.buf...)
	}
	dst = append(dst, r.buf[r.start:]...)
	return append(dst, r.buf[:r.start]...)
}
