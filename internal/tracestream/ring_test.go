package tracestream

import (
	"reflect"
	"testing"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// refModel is the plain-slice reference a Ring must behave like: keep
// everything, then report the last cap entries and the exact overflow.
type refModel struct {
	all []trace.Ev
	cap int
}

func (m *refModel) push(ev trace.Ev) { m.all = append(m.all, ev) }

func (m *refModel) dropped() uint64 {
	if len(m.all) <= m.cap {
		return 0
	}
	return uint64(len(m.all) - m.cap)
}

func (m *refModel) snapshot() []trace.Ev {
	if len(m.all) <= m.cap {
		return m.all
	}
	return m.all[len(m.all)-m.cap:]
}

func mkEv(i int) trace.Ev {
	return trace.Ev{T: vclock.Time(i), Seq: uint64(i), Run: 1, Ph: 'i', Cat: "t", Lane: "l", Name: "e"}
}

func checkAgainstModel(t *testing.T, r *Ring, m *refModel) {
	t.Helper()
	if r.Dropped() != m.dropped() {
		t.Fatalf("after %d pushes (cap %d): Dropped=%d, want %d", len(m.all), m.cap, r.Dropped(), m.dropped())
	}
	want := m.snapshot()
	if r.Len() != len(want) {
		t.Fatalf("after %d pushes (cap %d): Len=%d, want %d", len(m.all), m.cap, r.Len(), len(want))
	}
	got := r.Snapshot(nil)
	if len(want) == 0 {
		if len(got) != 0 {
			t.Fatalf("empty model but snapshot has %d events", len(got))
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot diverged from reference (cap %d, %d pushed):\ngot:  %v\nwant: %v",
			m.cap, len(m.all), got, want)
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	m := &refModel{cap: 3}
	checkAgainstModel(t, r, m) // empty
	for i := 0; i < 10; i++ {
		ev := mkEv(i)
		r.Push(ev)
		m.push(ev)
		checkAgainstModel(t, r, m)
	}
	if r.Cap() != 3 {
		t.Fatalf("Cap=%d, want 3", r.Cap())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	for _, c := range []int{-5, 0, 1} {
		r := NewRing(c)
		if r.Cap() != 1 {
			t.Fatalf("NewRing(%d).Cap()=%d, want 1", c, r.Cap())
		}
		r.Push(mkEv(1))
		r.Push(mkEv(2))
		got := r.Snapshot(nil)
		if len(got) != 1 || got[0].Seq != 2 {
			t.Fatalf("cap-1 ring holds %v, want just the newest event", got)
		}
		if r.Dropped() != 1 {
			t.Fatalf("cap-1 ring Dropped=%d, want 1", r.Dropped())
		}
	}
}

func TestRingSnapshotAppends(t *testing.T) {
	r := NewRing(2)
	r.Push(mkEv(1))
	r.Push(mkEv(2))
	r.Push(mkEv(3))
	prefix := []trace.Ev{mkEv(99)}
	got := r.Snapshot(prefix)
	if len(got) != 3 || got[0].Seq != 99 || got[1].Seq != 2 || got[2].Seq != 3 {
		t.Fatalf("Snapshot(dst) = %v, want prefix preserved then oldest-first", got)
	}
}

// FuzzRing drives a Ring with an arbitrary program of pushes and
// snapshots across fuzzed capacities, checking ordering, the capacity
// bound, and the exact dropped count against the plain-slice reference
// after every operation. Run the stored corpus in normal test runs, or
// explore with:
//
//	go test ./internal/tracestream -fuzz FuzzRing -fuzztime 30s
func FuzzRing(f *testing.F) {
	f.Add(3, []byte{5, 0, 2, 0, 9})
	f.Add(1, []byte{1, 1, 1, 0})
	f.Add(64, []byte{255, 255, 0})
	f.Add(0, []byte{7})
	f.Fuzz(func(t *testing.T, capacity int, program []byte) {
		if capacity < -8 || capacity > 4096 {
			t.Skip()
		}
		r := NewRing(capacity)
		m := &refModel{cap: r.Cap()}
		n := 0
		for _, op := range program {
			if op == 0 {
				// Snapshot mid-stream: must not disturb subsequent pushes.
				checkAgainstModel(t, r, m)
				continue
			}
			for i := 0; i < int(op); i++ {
				ev := mkEv(n)
				n++
				r.Push(ev)
				m.push(ev)
			}
			if r.Len() > r.Cap() {
				t.Fatalf("Len %d exceeds Cap %d", r.Len(), r.Cap())
			}
		}
		checkAgainstModel(t, r, m)
	})
}
