package tracestream

import (
	"testing"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// feed drives a Stream with hand-built events, tracking sequence numbers
// the way a Recorder would.
type feed struct {
	st  *Stream
	seq uint64
	run int
}

func newFeed(st *Stream) *feed { return &feed{st: st, run: 1} }

func (f *feed) begin(t vclock.Time, cat, lane, name string, args ...trace.Arg) uint64 {
	f.seq++
	ev := trace.Ev{T: t, Seq: f.seq, Run: f.run, Ph: 'B', Cat: cat, Lane: lane, Name: name, Args: args}
	f.st.Event(&ev)
	return f.seq
}

func (f *feed) end(t vclock.Time, ref uint64, cat, lane, name string, args ...trace.Arg) {
	f.seq++
	ev := trace.Ev{T: t, Seq: f.seq, Run: f.run, Ph: 'E', Cat: cat, Lane: lane, Name: name, Ref: ref, Args: args}
	f.st.Event(&ev)
}

func (f *feed) instant(t vclock.Time, cat, lane, name string, args ...trace.Arg) {
	f.seq++
	ev := trace.Ev{T: t, Seq: f.seq, Run: f.run, Ph: 'i', Cat: cat, Lane: lane, Name: name, Args: args}
	f.st.Event(&ev)
}

func runArgs(label string) []trace.Arg {
	return []trace.Arg{{K: "job", V: label}, {K: "policy", V: "UserJIT"}, {K: "gpus", V: "4"}, {K: "iters", V: "10"}}
}

func TestSpanFinalization(t *testing.T) {
	st := New(Options{})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	iter := f.begin(10, "train", "r0", "iter", trace.Arg{K: "it", V: "0"})
	hang := f.begin(15, "core", "sim", "recovery")

	// Mid-flight: one finalized nothing yet, two open (plus the run span).
	js, ok := st.Job("j")
	if !ok {
		t.Fatal("job not registered from run begin")
	}
	if js.OpenSpans != 3 || js.SpansClosed != 0 {
		t.Fatalf("open=%d closed=%d, want 3/0", js.OpenSpans, js.SpansClosed)
	}
	snap, _ := st.Timeline("j", 0)
	if len(snap.Spans) != 3 {
		t.Fatalf("timeline has %d spans, want 3 in-progress", len(snap.Spans))
	}
	for _, sv := range snap.Spans {
		if !sv.Open {
			t.Fatalf("expected only in-progress spans, got finalized %q", sv.Name)
		}
	}

	// Ends arrive: spans finalize incrementally, durations attribute to
	// phase sums, recovery count ticks.
	f.end(60, iter, "train", "r0", "iter")
	f.end(90, hang, "core", "sim", "recovery")
	js, _ = st.Job("j")
	if js.OpenSpans != 1 || js.SpansClosed != 2 {
		t.Fatalf("open=%d closed=%d, want 1/2", js.OpenSpans, js.SpansClosed)
	}
	if js.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", js.Recoveries)
	}
	if js.LiveUseful != 50 {
		t.Fatalf("live useful %d, want the iter span's 50ns", js.LiveUseful)
	}
	snap, _ = st.Timeline("j", 0)
	if len(snap.Spans) != 3 || snap.Spans[0].Open || snap.Spans[1].Open || !snap.Spans[2].Open {
		t.Fatalf("want [closed, closed, open run], got %+v", snap.Spans)
	}
	if d := snap.Spans[0].End - snap.Spans[0].Start; d != 50 {
		t.Fatalf("finalized iter duration %d, want 50", d)
	}
}

func TestTimelineTruncationCountsDropped(t *testing.T) {
	st := New(Options{SpanCap: 4})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	for i := 0; i < 10; i++ {
		ref := f.begin(vclock.Time(10*i), "train", "r0", "iter")
		f.end(vclock.Time(10*i+5), ref, "train", "r0", "iter")
	}
	snap, _ := st.Timeline("j", 0)
	// 10 closed spans through a cap-4 ring: 6 evicted, 4 retained (plus
	// the open run span).
	if snap.Dropped != 6 {
		t.Fatalf("Dropped=%d, want 6", snap.Dropped)
	}
	if len(snap.Spans) != 5 {
		t.Fatalf("spans=%d, want 4 closed + 1 open", len(snap.Spans))
	}
	if snap.Spans[0].Start != 60 {
		t.Fatalf("oldest retained span starts at %d, want 60", snap.Spans[0].Start)
	}
	// An explicit ?n= limit folds the extra truncation into Dropped.
	snap, _ = st.Timeline("j", 2)
	if snap.Dropped != 8 || len(snap.Spans) != 3 {
		t.Fatalf("limited: Dropped=%d spans=%d, want 8/3", snap.Dropped, len(snap.Spans))
	}
}

func TestDuplicateAndUnmatchedEnds(t *testing.T) {
	st := New(Options{})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	ref := f.begin(5, "train", "r0", "iter")
	f.end(10, ref, "train", "r0", "iter")
	f.end(11, ref, "train", "r0", "iter")  // duplicate end: ignored
	f.end(12, 9999, "train", "r0", "iter") // begin predates attachment: ignored
	js, _ := st.Job("j")
	if js.SpansClosed != 1 || js.OpenSpans != 1 {
		t.Fatalf("closed=%d open=%d, want 1/1", js.SpansClosed, js.OpenSpans)
	}
}

func TestWindowRollup(t *testing.T) {
	st := New(Options{Window: 100})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	ref := f.begin(10, "train", "r0", "iter")
	f.end(50, ref, "train", "r0", "iter")
	// Crossing the window boundary snapshots the completed window.
	ref = f.begin(120, "train", "r0", "iter")
	f.end(160, ref, "train", "r0", "iter")
	m := st.Metrics()
	if m.WindowWidth != 100 {
		t.Fatalf("window width %d, want 100", m.WindowWidth)
	}
	if m.Window.Start != 0 || m.Window.Useful != 40 || m.Window.SpansClosed != 1 {
		t.Fatalf("last window %+v, want start=0 useful=40 closed=1", m.Window)
	}
	if m.Current.Start != 100 || m.Current.Useful != 40 {
		t.Fatalf("current window %+v, want start=100 useful=40", m.Current)
	}
}

func TestLookupByLabelAndID(t *testing.T) {
	st := New(Options{})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("alpha")...)
	f.begin(1, "core", "sim", "run", runArgs("beta")...)
	if _, ok := st.Job("alpha"); !ok {
		t.Fatal("bare unique label should resolve")
	}
	if _, ok := st.Job("r1.beta"); !ok {
		t.Fatal("canonical ID should resolve")
	}
	if _, ok := st.Job("gamma"); ok {
		t.Fatal("unknown job resolved")
	}
	// A second job with the same label in another run makes the bare
	// label ambiguous; canonical IDs still work.
	f.run = 2
	f.begin(0, "core", "sim", "run", runArgs("alpha")...)
	if _, ok := st.Job("alpha"); ok {
		t.Fatal("ambiguous label should not resolve")
	}
	if _, ok := st.Job("r2.alpha"); !ok {
		t.Fatal("canonical ID should disambiguate")
	}
}

// TestRunWindowEviction pins the bounded-memory contract for multi-run
// streams: detail (lane rings, span history, open spans) survives only
// for the last RunWindow runs, evicted detail stays counted in the
// dropped totals, and job summaries with their authoritative finals are
// kept forever.
func TestRunWindowEviction(t *testing.T) {
	st := New(Options{RunWindow: 2})
	f := newFeed(st)
	const runs = 5
	for r := 1; r <= runs; r++ {
		f.run = r
		f.begin(0, "core", "sim", "run", runArgs("j")...)
		ref := f.begin(10, "train", "r0", "iter")
		f.end(20, ref, "train", "r0", "iter")
		f.begin(30, "core", "sim", "recovery") // left open across the run
	}
	m := st.Metrics()
	if m.Jobs != runs {
		t.Fatalf("jobs=%d, want all %d runs' summaries kept", m.Jobs, runs)
	}
	// Each evicted run buffered 4 events in its lanes; spans of retained
	// runs are still live.
	if m.DroppedEvents != 3*4 {
		t.Fatalf("DroppedEvents=%d, want 12 from 3 evicted runs", m.DroppedEvents)
	}
	if m.OpenSpans != 2*2 {
		t.Fatalf("OpenSpans=%d, want the last 2 runs' run+recovery spans", m.OpenSpans)
	}
	if m.Lanes != 2*2 {
		t.Fatalf("Lanes=%d, want sim+r0 for the last 2 runs", m.Lanes)
	}
	// Evicted run: summary intact, timeline empty but accounted.
	snap, ok := st.Timeline("r1.j", 0)
	if !ok {
		t.Fatal("evicted run's job summary should still resolve")
	}
	if len(snap.Spans) != 0 {
		t.Fatalf("evicted run still serves %d spans", len(snap.Spans))
	}
	if snap.Dropped != 1 {
		t.Fatalf("evicted run Dropped=%d, want its 1 finalized span counted", snap.Dropped)
	}
	// Retained run: full detail.
	snap, _ = st.Timeline("r5.j", 0)
	if len(snap.Spans) != 3 || snap.Dropped != 0 {
		t.Fatalf("retained run: %d spans, Dropped=%d, want 3/0", len(snap.Spans), snap.Dropped)
	}
	// Summed live useful survives eviction (aggregates are never evicted).
	js, _ := st.Job("r1.j")
	if js.LiveUseful != 10 {
		t.Fatalf("evicted run's live useful %d, want 10", js.LiveUseful)
	}
}

// TestRunWindowKeepAll verifies the negative (keep-everything) setting.
func TestRunWindowKeepAll(t *testing.T) {
	st := New(Options{RunWindow: -1})
	f := newFeed(st)
	for r := 1; r <= 6; r++ {
		f.run = r
		f.begin(0, "core", "sim", "run", runArgs("j")...)
	}
	if m := st.Metrics(); m.Lanes != 6 || m.DroppedEvents != 0 {
		t.Fatalf("lanes=%d dropped=%d, want 6/0 with eviction disabled", m.Lanes, m.DroppedEvents)
	}
}

// TestIngestAllocBudget pins the streaming hot path's allocation cost:
// once lanes, the job, and its phase keys are warm, ingesting a
// begin/end pair plus a window-advancing instant must not allocate.
// This is what makes leaving the sink attached free — the rings and
// maps reach steady state and every further event is overwrite-only.
func TestIngestAllocBudget(t *testing.T) {
	st := New(Options{LaneCap: 64, SpanCap: 64, Window: 1000})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	iterArgs := []trace.Arg{{K: "it", V: "0"}}

	var now vclock.Time
	pair := func() {
		now += 150
		ref := f.begin(now, "train", "r0", "iter", iterArgs...)
		now += 100
		f.end(now, ref, "train", "r0", "iter")
		f.instant(now, "fail", "sim", "detected", iterArgs...)
	}
	for i := 0; i < 200; i++ {
		pair() // warm: rings fill, maps size, windows roll
	}
	avg := testing.AllocsPerRun(500, pair)
	if avg > 0 {
		t.Errorf("warm ingest allocates %.2f allocs per begin/end/instant cycle, budget is 0", avg)
	}
}

func BenchmarkIngest(b *testing.B) {
	st := New(Options{})
	f := newFeed(st)
	f.begin(0, "core", "sim", "run", runArgs("j")...)
	b.ReportAllocs()
	b.ResetTimer()
	var now vclock.Time
	for i := 0; i < b.N; i++ {
		now += 150
		ref := f.begin(now, "train", "r0", "iter")
		now += 100
		f.end(now, ref, "train", "r0", "iter")
	}
}
