package tracestream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Server exposes a Stream over HTTP:
//
//	/metrics               fleet-level live rollup (MetricsSnapshot)
//	/fleet                 per-tenant summary table + spare-pool level
//	/jobs/{id}/timeline    recent spans as Chrome trace events
//	                       (?n=100 limits finalized spans)
//
// Handlers snapshot under the Stream's mutex (a copy of plain structs)
// and encode JSON outside it, so a slow client never holds the
// simulation's ingest path. Durations in JSON are integer virtual-time
// nanoseconds except the Chrome events' ts/dur, which follow the
// exporter's microsecond convention.
type Server struct {
	stream *Stream
	mux    *http.ServeMux
}

// NewServer wraps a Stream in an http.Handler.
func NewServer(s *Stream) *Server {
	srv := &Server{stream: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("/", srv.index)
	srv.mux.HandleFunc("/metrics", srv.metrics)
	srv.mux.HandleFunc("/fleet", srv.fleet)
	srv.mux.HandleFunc("/jobs/", srv.timeline)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ListenAndServe serves on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s)
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "jitckpt live observability\n\n"+
		"  /metrics               fleet-level live rollup\n"+
		"  /fleet                 per-tenant summary table\n"+
		"  /jobs/{id}/timeline    recent spans (Chrome trace-event schema)\n")
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.stream.Metrics())
}

// FleetResponse is /fleet's payload: every tenant plus the pool level
// and, once the run finished, the authoritative fleet rollup.
type FleetResponse struct {
	Jobs     []JobSummary
	HavePool bool
	Pool     PoolLevel
	Fleet    *FleetFinal
}

func (s *Server) fleet(w http.ResponseWriter, r *http.Request) {
	m := s.stream.Metrics()
	writeJSON(w, FleetResponse{
		Jobs:     s.stream.Jobs(),
		HavePool: m.HavePool,
		Pool:     m.Pool,
		Fleet:    m.Fleet,
	})
}

// TimelineResponse is /jobs/{id}/timeline's payload. TraceEvents uses
// the Chrome exporter's schema: finalized spans are complete "X" events,
// in-progress spans open-ended "B" events.
type TimelineResponse struct {
	Job         JobSummary
	Dropped     uint64
	TraceEvents []trace.ChromeEvent `json:"traceEvents"`
}

func (s *Server) timeline(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, ok := strings.CutSuffix(rest, "/timeline")
	if !ok || id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	max := 0
	if n := r.URL.Query().Get("n"); n != "" {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = v
	}
	snap, ok := s.stream.Timeline(id, max)
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, TimelineResponse{
		Job:         snap.Job,
		Dropped:     snap.Dropped,
		TraceEvents: chromeEvents(snap.Spans),
	})
}

// chromeEvents renders span views in the Chrome exporter's schema, with
// the same metadata convention: one process per run, one named thread
// per lane in order of first appearance.
func chromeEvents(spans []SpanView) []trace.ChromeEvent {
	tids := make(map[laneKey]int)
	runSeen := make(map[int]bool)
	var out []trace.ChromeEvent
	tid := func(run int, lane string) int {
		k := laneKey{run, lane}
		if id, ok := tids[k]; ok {
			return id
		}
		id := len(tids) + 1
		tids[k] = id
		if !runSeen[run] {
			runSeen[run] = true
			out = append(out, trace.ChromeEvent{
				Name: "process_name", Ph: "M", PID: run, TID: 0,
				Args: map[string]string{"name": fmt.Sprintf("run %d", run)},
			})
		}
		out = append(out, trace.ChromeEvent{
			Name: "thread_name", Ph: "M", PID: run, TID: id,
			Args: map[string]string{"name": lane},
		})
		return id
	}
	us := func(t vclock.Time) float64 { return float64(t) / 1e3 }
	for _, sv := range spans {
		ce := trace.ChromeEvent{
			Name: sv.Name, Cat: sv.Cat, PID: sv.Run, TID: tid(sv.Run, sv.Lane),
			TS: us(sv.Start), Args: spanArgs(sv),
		}
		if sv.Open {
			ce.Ph = "B"
		} else {
			ce.Ph = "X"
			ce.Dur = us(sv.End - sv.Start)
		}
		out = append(out, ce)
	}
	return out
}

func spanArgs(sv SpanView) map[string]string {
	if len(sv.BeginArgs) == 0 && len(sv.EndArgs) == 0 {
		return nil
	}
	m := make(map[string]string, len(sv.BeginArgs)+len(sv.EndArgs))
	for _, a := range sv.BeginArgs {
		m[a.K] = a.V
	}
	for _, a := range sv.EndArgs {
		m[a.K] = a.V
	}
	return m
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
