// Package elastic implements degraded-mode recovery for when spares run
// out: rather than burning bounded recovery attempts against a placement
// that can never succeed, the job shrinks to the largest viable topology,
// keeps training at reduced data-parallel width with gradient
// accumulation preserving the global batch, and re-expands to full width
// once the failure plan marks nodes repaired.
//
// Only data-parallel replicas are ever dropped. Pipeline stages and
// tensor partitions each hold a unique slice of model state, so removing
// one would lose state; a data-parallel replica is redundant by
// construction (§3.1 of the paper — the same redundancy JIT checkpointing
// itself recovers from). Shrinking D from its full width D_f to a divisor
// D' and raising the gradient-accumulation factor to D_f/D' keeps every
// iteration's global batch — and therefore the optimizer-step semantics
// and data-consumption order — identical to the full-width job.
package elastic

import (
	"fmt"

	"jitckpt/internal/train"
)

// Plan is one viable (possibly reduced) job shape.
type Plan struct {
	// Topo is the topology to run at (P and T always equal the full
	// topology's; only D changes).
	Topo train.Topology
	// Accum is the gradient-accumulation factor relative to the FULL
	// width: Accum = D_full / Topo.D, so iteration i consumes exactly the
	// same global batch at any width.
	Accum int
	// Nodes is how many nodes the plan occupies.
	Nodes int
}

// Shrink computes the largest viable topology strictly narrower than cur:
// the biggest divisor D' < cur.D such that D'·P·T ranks fit on freeNodes
// nodes of perNode devices each. minNodes forces the plan onto at least
// that many nodes (peer-shelter placement needs two distinct failure
// domains); FSDP additionally requires the shard group to survive intact
// (D' must remain a multiple of FSDPShard). Pipeline and tensor degrees
// are never reduced. Returns ok=false when no narrower viable shape
// exists — the genuinely terminal case. The returned Accum is relative to
// cur; Controller.Shrink rebases it to the full width.
func Shrink(cur train.Topology, perNode, freeNodes, minNodes int) (Plan, bool) {
	if perNode <= 0 || freeNodes <= 0 {
		return Plan{}, false
	}
	for dp := cur.D - 1; dp >= 1; dp-- {
		if cur.D%dp != 0 {
			continue
		}
		t := cur
		t.D = dp
		if t.FSDP() && dp%t.FSDPShard != 0 {
			continue
		}
		if err := t.Validate(); err != nil {
			continue
		}
		world := t.World()
		nodes := (world + perNode - 1) / perNode
		if nodes < minNodes {
			nodes = minNodes
		}
		if nodes > freeNodes {
			continue
		}
		return Plan{Topo: t, Accum: cur.D / dp, Nodes: nodes}, true
	}
	return Plan{}, false
}

// Controller is the elastic state machine one job carries:
//
//	full ──shrink──▶ degraded ──expand──▶ full
//	                    │  ▲
//	                    └──┘ shrink (deeper degradation)
//
// Shrinks may nest when failures strike an already-degraded job; a single
// expand always restores the full shape. The controller only decides
// shapes — the harness performs the actual teardown, restore and
// communicator re-initialization.
type Controller struct {
	full      train.Topology
	fullNodes int
	cur       Plan
	degraded  bool
	expandAt  int // iteration to stop at for a mid-run expand; -1 if none
	shrinks   int
	expands   int
}

// New creates a controller for a job whose full shape is topo on nodes
// nodes.
func New(topo train.Topology, nodes int) *Controller {
	return &Controller{
		full:      topo,
		fullNodes: nodes,
		cur:       Plan{Topo: topo, Accum: 1, Nodes: nodes},
		expandAt:  -1,
	}
}

// Degraded reports whether the job is currently below full width.
func (c *Controller) Degraded() bool { return c.degraded }

// Plan returns the shape the job should currently run at.
func (c *Controller) Plan() Plan { return c.cur }

// Full returns the job's full shape.
func (c *Controller) Full() Plan {
	return Plan{Topo: c.full, Accum: 1, Nodes: c.fullNodes}
}

// Shrink narrows the current shape to the largest viable one for the
// available capacity, rebasing Accum to the full width. It returns
// ok=false when no narrower viable shape exists.
func (c *Controller) Shrink(perNode, freeNodes, minNodes int) (Plan, bool) {
	p, ok := Shrink(c.cur.Topo, perNode, freeNodes, minNodes)
	if !ok {
		return Plan{}, false
	}
	p.Accum = c.full.D / p.Topo.D
	c.cur = p
	c.degraded = true
	c.expandAt = -1
	c.shrinks++
	return p, true
}

// Expand restores the full shape. Panics if called at full width — the
// harness must only expand a degraded job (trace invariant 6 enforces the
// same ordering on the recorded run).
func (c *Controller) Expand() Plan {
	if !c.degraded {
		panic("elastic: Expand at full width")
	}
	c.cur = c.Full()
	c.degraded = false
	c.expandAt = -1
	c.expands++
	return c.cur
}

// RequestExpand schedules a mid-run expand: degraded workers should stop
// at the start of iteration atIter (after checkpointing) so the job can
// restart at full width. No-op at full width.
func (c *Controller) RequestExpand(atIter int) {
	if c.degraded {
		c.expandAt = atIter
	}
}

// ExpandRequested returns the scheduled stop iteration, if any.
func (c *Controller) ExpandRequested() (int, bool) {
	if c.expandAt >= 0 {
		return c.expandAt, true
	}
	return 0, false
}

// CancelExpand drops a scheduled expand (e.g. the job finished, or
// capacity vanished again before the stop iteration).
func (c *Controller) CancelExpand() { c.expandAt = -1 }

// Transitions returns how many shrinks and expands have happened.
func (c *Controller) Transitions() (shrinks, expands int) { return c.shrinks, c.expands }

// String summarizes the controller state.
func (c *Controller) String() string {
	if !c.degraded {
		return fmt.Sprintf("elastic: full D=%d on %d nodes", c.full.D, c.fullNodes)
	}
	return fmt.Sprintf("elastic: degraded D=%d accum=%d on %d nodes (full D=%d)",
		c.cur.Topo.D, c.cur.Accum, c.cur.Nodes, c.full.D)
}
