package elastic

import (
	"testing"

	"jitckpt/internal/train"
)

func TestShrinkPicksLargestDivisor(t *testing.T) {
	cur := train.Topology{D: 4, P: 1, T: 1}
	p, ok := Shrink(cur, 2, 1, 0)
	if !ok {
		t.Fatal("expected a viable shrink")
	}
	if p.Topo.D != 2 || p.Accum != 2 || p.Nodes != 1 {
		t.Fatalf("got D=%d accum=%d nodes=%d, want D=2 accum=2 nodes=1", p.Topo.D, p.Accum, p.Nodes)
	}
}

func TestShrinkNeverDropsPipelineOrTensor(t *testing.T) {
	cur := train.Topology{D: 2, P: 2, T: 2}
	// 1 node x 4 GPUs: D'=1 needs P*T=4 ranks, which fits.
	p, ok := Shrink(cur, 4, 1, 0)
	if !ok {
		t.Fatal("expected a viable shrink")
	}
	if p.Topo.P != 2 || p.Topo.T != 2 || p.Topo.D != 1 {
		t.Fatalf("pipeline/tensor degrees changed: %+v", p.Topo)
	}
	// Too few devices for even one full P*T group: no viable shape.
	if _, ok := Shrink(cur, 2, 1, 0); ok {
		t.Fatal("shrink must refuse to drop pipeline/tensor ranks")
	}
}

func TestShrinkRespectsFSDPShardGroup(t *testing.T) {
	cur := train.Topology{D: 4, P: 1, T: 1, FSDPShard: 2}
	p, ok := Shrink(cur, 2, 1, 0)
	if !ok {
		t.Fatal("expected a viable shrink")
	}
	if p.Topo.D != 2 {
		t.Fatalf("got D=%d, want D=2 (the only divisor keeping the shard group)", p.Topo.D)
	}
	// D'=1 would break the shard group; with capacity for only 1 rank
	// there is no viable shape.
	if _, ok := Shrink(cur, 1, 1, 0); ok {
		t.Fatal("shrink must not break the FSDP shard group")
	}
}

func TestShrinkMinNodes(t *testing.T) {
	cur := train.Topology{D: 4, P: 1, T: 1}
	// Peer shelter needs two failure domains: the 2-rank plan must span 2
	// nodes even though it fits on one.
	p, ok := Shrink(cur, 2, 2, 2)
	if !ok {
		t.Fatal("expected a viable shrink")
	}
	if p.Nodes != 2 {
		t.Fatalf("got nodes=%d, want 2 (minNodes)", p.Nodes)
	}
	if _, ok := Shrink(cur, 2, 1, 2); ok {
		t.Fatal("minNodes=2 with one free node must fail")
	}
}

func TestShrinkNoCapacity(t *testing.T) {
	cur := train.Topology{D: 4, P: 1, T: 1}
	if _, ok := Shrink(cur, 0, 1, 0); ok {
		t.Fatal("perNode=0 must fail")
	}
	if _, ok := Shrink(cur, 2, 0, 0); ok {
		t.Fatal("freeNodes=0 must fail")
	}
	if _, ok := Shrink(train.Topology{D: 1, P: 1, T: 1}, 2, 4, 0); ok {
		t.Fatal("D=1 cannot shrink further")
	}
}

func TestControllerStateMachine(t *testing.T) {
	full := train.Topology{D: 8, P: 1, T: 1}
	c := New(full, 4)
	if c.Degraded() {
		t.Fatal("fresh controller must start at full width")
	}
	p, ok := c.Shrink(2, 2, 0)
	if !ok || p.Topo.D != 4 || p.Accum != 2 {
		t.Fatalf("first shrink: %+v ok=%v", p, ok)
	}
	// Deeper degradation: accum stays relative to the FULL width.
	p, ok = c.Shrink(2, 1, 0)
	if !ok || p.Topo.D != 2 || p.Accum != 4 {
		t.Fatalf("second shrink: %+v ok=%v, want D=2 accum=4", p, ok)
	}
	if !c.Degraded() {
		t.Fatal("controller must be degraded after shrinks")
	}
	c.RequestExpand(17)
	if at, ok := c.ExpandRequested(); !ok || at != 17 {
		t.Fatalf("expand request: at=%d ok=%v", at, ok)
	}
	got := c.Expand()
	if c.Degraded() || got.Topo.D != 8 || got.Accum != 1 || got.Nodes != 4 {
		t.Fatalf("expand must restore full shape, got %+v", got)
	}
	if _, ok := c.ExpandRequested(); ok {
		t.Fatal("expand must clear the pending request")
	}
	s, e := c.Transitions()
	if s != 2 || e != 1 {
		t.Fatalf("transitions: shrinks=%d expands=%d", s, e)
	}
}

func TestControllerExpandAtFullWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Expand at full width must panic")
		}
	}()
	New(train.Topology{D: 2, P: 1, T: 1}, 1).Expand()
}

func TestControllerRequestExpandAtFullWidthIsNoop(t *testing.T) {
	c := New(train.Topology{D: 2, P: 1, T: 1}, 1)
	c.RequestExpand(5)
	if _, ok := c.ExpandRequested(); ok {
		t.Fatal("RequestExpand at full width must be a no-op")
	}
}
