package failure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/vclock"
)

func TestPoissonPlanRateMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, f := 1000, 1.0 // the paper's "1000 GPU job averages ~1 error/day"
	horizon := 30 * vclock.Day
	plan := PoissonPlan(rng, n, f/1000*1000, horizon, DefaultMix())
	// Expected events: n*f/1000... with f per GPU per day = 0.001:
	plan2 := PoissonPlan(rng, n, 0.001, horizon, DefaultMix())
	if got := len(plan2.Injections); got < 15 || got > 50 {
		t.Fatalf("30 days at ~1/day gave %d failures, want ~30", got)
	}
	_ = plan
}

func TestPoissonPlanDeterministicPerSeed(t *testing.T) {
	a := PoissonPlan(rand.New(rand.NewSource(7)), 8, 0.5, 10*vclock.Day, DefaultMix())
	b := PoissonPlan(rand.New(rand.NewSource(7)), 8, 0.5, 10*vclock.Day, DefaultMix())
	if len(a.Injections) != len(b.Injections) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			t.Fatal("same seed produced different plans")
		}
	}
}

func TestPoissonPlanWithinHorizonAndRanks(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		plan := PoissonPlan(rand.New(rand.NewSource(seed)), n, 2, 5*vclock.Day, DefaultMix())
		for _, inj := range plan.Injections {
			if inj.At < 0 || inj.At >= 5*vclock.Day {
				return false
			}
			if inj.Rank < 0 || inj.Rank >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMTBFScalesInverselyWithN(t *testing.T) {
	// §5.1: failure rate scales O(N). The cited OPT job: 992 GPUs at
	// ~2/day ⇒ MTBF ≈ 12h.
	m := MTBF(992, 2.0/992)
	if m < 11*vclock.Hour || m > 13*vclock.Hour {
		t.Fatalf("OPT-like MTBF = %v, want ~12h", m)
	}
	if MTBF(2000, 0.001) >= MTBF(1000, 0.001) {
		t.Fatal("MTBF should shrink with more GPUs")
	}
	if MTBF(0, 1) != vclock.Time(math.MaxInt64) {
		t.Fatal("zero GPUs should never fail")
	}
}

func TestPlanSortIsStableByTime(t *testing.T) {
	pl := Plan{Injections: []Injection{
		{At: 5, Rank: 1}, {At: 2, Rank: 2}, {At: 5, Rank: 3},
	}}
	pl.Sort()
	if pl.Injections[0].Rank != 2 || pl.Injections[1].Rank != 1 || pl.Injections[2].Rank != 3 {
		t.Fatalf("sort wrong: %+v", pl.Injections)
	}
}

func TestInjectorAppliesAllKinds(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	devs := make([]*gpu.Device, 4)
	for i := range devs {
		devs[i] = gpu.NewDevice(env, 0, i, 1<<30)
	}
	var observed []Kind
	inj := &Injector{
		Env:       env,
		DeviceOf:  func(r int) *gpu.Device { return devs[r] },
		Engine:    engine,
		CommKeyOf: func(r int) string { return "dp" },
		GenOf:     func(key string) int { return 0 },
		OnInject:  func(i Injection) { observed = append(observed, i.Kind) },
	}
	inj.Start(Plan{Injections: []Injection{
		{At: vclock.Second, Rank: 0, Kind: GPUHard},
		{At: 2 * vclock.Second, Rank: 1, Kind: GPUSticky},
		{At: 3 * vclock.Second, Rank: 2, Kind: DriverCorrupt},
		{At: 4 * vclock.Second, Rank: 3, Kind: NetworkHang},
	}})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 4 {
		t.Fatalf("observed %d injections", len(observed))
	}
	if devs[0].Health() != gpu.Hard {
		t.Errorf("rank 0 health = %v", devs[0].Health())
	}
	if devs[1].Health() != gpu.Sticky {
		t.Errorf("rank 1 health = %v", devs[1].Health())
	}
	if devs[2].Health() != gpu.DriverCorrupt {
		t.Errorf("rank 2 health = %v", devs[2].Health())
	}
	if len(inj.Applied()) != 4 {
		t.Errorf("Applied = %d", len(inj.Applied()))
	}
}

func TestNetworkHangWedgesCollective(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	devs := [2]*gpu.Device{gpu.NewDevice(env, 0, 0, 1<<30), gpu.NewDevice(env, 0, 1, 1<<30)}
	inj := &Injector{
		Env:      env,
		DeviceOf: func(r int) *gpu.Device { return devs[r] },
		Engine:   engine,
		GenOf:    func(string) int { return 0 },
	}
	hung := [2]bool{}
	for r := 0; r < 2; r++ {
		r := r
		env.Go("rank", func(p *vclock.Proc) {
			comm, err := engine.CommInitRank(p, "dp", 0, 2, r, devs[r])
			if err != nil {
				t.Error(err)
				return
			}
			s, _ := devs[r].NewStream()
			buf, _ := devs[r].Alloc(64, 1, "g")
			if r == 0 {
				inj.Apply(Injection{Rank: 0, Kind: NetworkHang, CommKey: "dp"})
			}
			op, _ := comm.AllReduce(s, buf)
			hung[r] = !p.WaitTimeout(op.Done, vclock.Minute)
		})
	}
	if err := env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if !hung[0] || !hung[1] {
		t.Fatalf("collectives completed under network hang: %v", hung)
	}
}

func TestKindClassification(t *testing.T) {
	if GPUHard.IsTransient() {
		t.Fatal("hard failure is not transient")
	}
	for _, k := range []Kind{GPUSticky, DriverCorrupt, NetworkHang, NetworkError} {
		if !k.IsTransient() {
			t.Fatalf("%v should be transient", k)
		}
	}
	if GPUHard.String() != "gpu-hard" || NetworkHang.String() != "network-hang" {
		t.Fatal("Kind.String broken")
	}
}

func TestMixWeightsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mix := map[Kind]float64{GPUHard: 1} // only hard failures
	plan := PoissonPlan(rng, 100, 5, 10*vclock.Day, mix)
	for _, inj := range plan.Injections {
		if inj.Kind != GPUHard {
			t.Fatalf("unexpected kind %v with pure-hard mix", inj.Kind)
		}
	}
	if len(plan.Injections) == 0 {
		t.Fatal("no injections sampled")
	}
}
