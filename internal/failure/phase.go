package failure

import (
	"fmt"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Phase names a recovery-sensitive window of a rank's lifecycle. Steady
// training is not a phase: phase injections exist to land faults exactly
// where they hurt — while a rank checkpoints, restores, or re-initializes
// its communicators — the overlapping-failure cases SWIFT-style recovery
// must survive.
type Phase int

const (
	// PhaseCheckpoint is entered when a rank starts saving a checkpoint
	// (JIT flush or periodic).
	PhaseCheckpoint Phase = iota
	// PhaseRestore is entered when a rank starts loading checkpointed
	// state during recovery.
	PhaseRestore
	// PhaseCommInit is entered when a rank begins NCCL communicator
	// (re-)initialization.
	PhaseCommInit
	// PhaseEncode is entered when a rank starts Reed-Solomon encoding its
	// state into shelter fragments (the stripe is mid-flight: some hosts
	// may hold fragments of the new generation, others not yet).
	PhaseEncode
	// PhaseReconstruct is entered when a restoring rank starts rebuilding
	// a sheltered stripe from surviving fragments (parity decode).
	PhaseReconstruct
	// PhaseSliceWrite is entered when a rank's multi-step overlapped
	// checkpoint writer starts flushing a shard slice — the generation is
	// partial until the last slice commits.
	PhaseSliceWrite
	// PhaseReconcile is entered when a restoring rank starts replaying
	// retained gradient deltas to advance a multi-step generation's stale
	// slices to the target iteration.
	PhaseReconcile
	// PhaseStageRebuild is entered when a rank starts reconstructing a lost
	// pipeline stage from a neighbor's retained redundancy (checkpoint-free
	// recovery).
	PhaseStageRebuild
)

// String renders the phase.
func (ph Phase) String() string {
	switch ph {
	case PhaseCheckpoint:
		return "checkpoint"
	case PhaseRestore:
		return "restore"
	case PhaseCommInit:
		return "comm-init"
	case PhaseEncode:
		return "rs-encode"
	case PhaseReconstruct:
		return "rs-reconstruct"
	case PhaseSliceWrite:
		return "slice-write"
	case PhaseReconcile:
		return "reconcile"
	case PhaseStageRebuild:
		return "stage-rebuild"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// PhaseInjection arms a fault on a phase entry rather than at a wall-clock
// time: "the Nth time any rank (or rank R) begins restoring, fail rank T".
type PhaseInjection struct {
	// Phase is the lifecycle window that triggers the injection.
	Phase Phase
	// Rank filters which rank's phase entry triggers; -1 matches any rank.
	Rank int
	// Occurrence is the 1-based count of matching phase entries to wait
	// for before firing (0 behaves as 1 — fire on the first entry).
	Occurrence int
	// Delay postpones the fault past the phase entry, placing it inside
	// the phase's work rather than at its first instruction.
	Delay vclock.Time
	// Target is the rank the fault lands on; -1 targets the rank whose
	// phase entry triggered it.
	Target int
	// Kind and CommKey describe the fault, as in Injection.
	Kind    Kind
	CommKey string
}

// phaseState tracks one armed PhaseInjection.
type phaseState struct {
	inj   PhaseInjection
	count int
	fired bool
}

// ArmPhase registers phase-triggered injections. NotePhase consults them;
// each fires at most once.
func (in *Injector) ArmPhase(injs ...PhaseInjection) {
	for _, pi := range injs {
		in.phased = append(in.phased, &phaseState{inj: pi})
	}
}

// NotePhase records that rank is entering phase ph. Instrumented code
// (checkpoint save, restore, communicator init) calls it; any armed
// PhaseInjection whose trigger matches fires — after its Delay, in its own
// process, so the phase's own work proceeds and the fault arrives
// mid-phase. Safe to call on a nil injector.
func (in *Injector) NotePhase(rank int, ph Phase) {
	if in == nil {
		return
	}
	trace.Of(in.Env).Instant(in.Env.Now(), "fail", trace.Rank(rank), "phase-note", "phase", ph)
	for _, st := range in.phased {
		if st.fired || st.inj.Phase != ph {
			continue
		}
		if st.inj.Rank >= 0 && st.inj.Rank != rank {
			continue
		}
		st.count++
		want := st.inj.Occurrence
		if want < 1 {
			want = 1
		}
		if st.count < want {
			continue
		}
		st.fired = true
		target := st.inj.Target
		if target < 0 {
			target = rank
		}
		pi := st.inj
		in.Env.Go(fmt.Sprintf("phase-injector-%v", ph), func(p *vclock.Proc) {
			if pi.Delay > 0 {
				p.Sleep(pi.Delay)
			}
			in.Apply(Injection{At: p.Now(), Rank: target, Kind: pi.Kind, CommKey: pi.CommKey})
		})
	}
}
