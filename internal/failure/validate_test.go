package failure

import (
	"math/rand"
	"strings"
	"testing"

	"jitckpt/internal/vclock"
)

func TestPlanValidate(t *testing.T) {
	ok := Plan{Injections: []Injection{
		{At: vclock.Second, Rank: 0, Kind: GPUHard},
		{At: 2 * vclock.Second, Rank: 7, Kind: NetworkHang},
	}}
	if err := ok.Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, bad := range []Injection{
		{At: vclock.Second, Rank: 8, Kind: GPUHard},
		{At: vclock.Second, Rank: -1, Kind: NodeDown},
	} {
		pl := Plan{Injections: []Injection{bad}}
		err := pl.Validate(8)
		if err == nil {
			t.Fatalf("plan with rank %d accepted for world 8", bad.Rank)
		}
		if !strings.Contains(err.Error(), "outside world") {
			t.Fatalf("unhelpful error: %v", err)
		}
	}
}

func TestNodePlanValidate(t *testing.T) {
	ok := NodePlan{Injections: []NodeInjection{
		{At: vclock.Second, Node: 0, Kind: NodeDown},
		{At: 2 * vclock.Second, Node: 15, Kind: RackDown},
		{At: 3 * vclock.Second, Node: 3, Kind: NodeRepaired},
		{At: 4 * vclock.Second, Node: 9, Kind: GPUHard},
	}}
	if err := ok.Validate(16); err != nil {
		t.Fatalf("valid node plan rejected: %v", err)
	}
	if err := (NodePlan{Injections: []NodeInjection{{Node: 16, Kind: NodeDown}}}).Validate(16); err == nil {
		t.Fatal("out-of-cluster node accepted")
	}
	if err := (NodePlan{Injections: []NodeInjection{{Node: -1, Kind: NodeDown}}}).Validate(16); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := (NodePlan{Injections: []NodeInjection{{Node: 2, Kind: NetworkHang}}}).Validate(16); err == nil {
		t.Fatal("rank-level kind accepted in a node plan")
	}
}

func TestPoissonNodePlanDeterministicAndValid(t *testing.T) {
	gen := func() NodePlan {
		rng := rand.New(rand.NewSource(11))
		return PoissonNodePlan(rng, 32, 0.5, 10*vclock.Day, nil)
	}
	a, b := gen(), gen()
	if len(a.Injections) == 0 {
		t.Fatal("expected some injections at 16 node-failures/day over 10 days")
	}
	if len(a.Injections) != len(b.Injections) {
		t.Fatalf("nondeterministic plan: %d vs %d injections", len(a.Injections), len(b.Injections))
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			t.Fatalf("nondeterministic injection %d: %+v vs %+v", i, a.Injections[i], b.Injections[i])
		}
	}
	if err := a.Validate(32); err != nil {
		t.Fatalf("sampled plan invalid: %v", err)
	}
	repaired := a.WithRepairs(rand.New(rand.NewSource(12)), vclock.Hour, 2)
	if err := repaired.Validate(32); err != nil {
		t.Fatalf("repaired plan invalid: %v", err)
	}
	if len(repaired.Injections) <= len(a.Injections) {
		t.Fatal("WithRepairs added no repair events")
	}
	for i := 1; i < len(repaired.Injections); i++ {
		if repaired.Injections[i].At < repaired.Injections[i-1].At {
			t.Fatal("WithRepairs result not sorted")
		}
	}
}

func TestInjectorSkippedCount(t *testing.T) {
	env := vclock.NewEnv(1)
	in := &Injector{Env: env}
	// No storage hook armed: a StorageFault has no target and is skipped.
	env.Go("inject", func(p *vclock.Proc) {
		if in.Apply(Injection{At: p.Now(), Rank: 0, Kind: StorageFault}) {
			t.Error("targetless injection reported applied")
		}
	})
	if err := env.RunUntil(vclock.Second); err != nil {
		t.Fatal(err)
	}
	if in.SkippedCount() != 1 || len(in.Applied()) != 0 {
		t.Fatalf("skipped=%d applied=%d, want 1/0", in.SkippedCount(), len(in.Applied()))
	}
}
