// Package failure injects the fault classes the paper's recovery
// mechanisms handle (§1 "Failure types and frequencies", Table 1): hard
// GPU failures, sticky CUDA errors, driver-state corruption, and transient
// network faults that hang or error collectives.
//
// Failures arrive either on a deterministic schedule (to exercise each
// recovery path at an exact point in a minibatch) or as a Poisson process
// with a per-GPU rate f — the same parameter the §5 analytical model uses,
// e.g. the OPT-175B job's ~2 failures/day across 992 GPUs.
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Kind classifies an injected fault.
type Kind int

const (
	// GPUHard is an unrecoverable hardware failure: the device is lost
	// and the worker must migrate (§4.3).
	GPUHard Kind = iota
	// GPUSticky is a CUDA sticky error: the context is corrupt until the
	// device is reset (§4.2 strategy 3).
	GPUSticky
	// DriverCorrupt marks GPU/network driver state as suspect; clearing
	// it requires restarting the device proxy (§4.2 strategy 2).
	DriverCorrupt
	// NetworkHang is a transient interconnect fault that wedges
	// collectives on a communicator until it is re-initialized (§4.2
	// strategy 1).
	NetworkHang
	// NetworkError is a NCCL async error on a communicator.
	NetworkError
	// NodeDown is a whole-host failure: every GPU on the rank's node is
	// lost *and* the node's CPU memory — including any peer-sheltered
	// checkpoint entries it held — is gone. This is the failure class that
	// distinguishes the peer-shelter tier's survival guarantees from plain
	// GPU failures (where host RAM survives).
	NodeDown
	// StorageFault is a transient fault in the checkpoint storage tier
	// (flaky path to the store, throttled requests): the next store writes
	// fail or tear until the fault clears. Training itself is unaffected;
	// only checkpoint durability is at risk.
	StorageFault
	// RackDown is a failure-domain-correlated loss: a rack PDU or ToR
	// switch takes down every node in the target rank's failure domain at
	// once. It is the adversary the peer-shelter placement rule (replicate
	// outside your own failure domain) exists for.
	RackDown
	// NodeRepaired is not a fault but a repair event: a previously failed
	// node (or a node with a hard-failed GPU) has its hardware replaced and
	// rejoins the allocatable pool. It is what the elastic recovery path
	// waits for to re-expand a degraded job.
	NodeRepaired
)

// String renders the fault kind.
func (k Kind) String() string {
	switch k {
	case GPUHard:
		return "gpu-hard"
	case GPUSticky:
		return "gpu-sticky"
	case DriverCorrupt:
		return "driver-corrupt"
	case NetworkHang:
		return "network-hang"
	case NetworkError:
		return "network-error"
	case NodeDown:
		return "node-down"
	case StorageFault:
		return "storage-fault"
	case RackDown:
		return "rack-down"
	case NodeRepaired:
		return "node-repaired"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsTransient reports whether recovery can reuse the same GPU.
func (k Kind) IsTransient() bool {
	return k != GPUHard && k != NodeDown && k != RackDown
}

// KindByName resolves a fault-kind name as rendered by String. ok is
// false for unknown names.
func KindByName(name string) (Kind, bool) {
	for k := GPUHard; k <= NodeRepaired; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Injection is one scheduled fault.
type Injection struct {
	At   vclock.Time
	Rank int
	Kind Kind
	// CommKey targets network faults at a specific communicator; empty
	// means the injector picks the rank's gradient communicator via its
	// CommKeyOf hook.
	CommKey string
}

// Plan is a time-ordered set of injections.
type Plan struct {
	Injections []Injection
}

// Sort orders injections by time (stable on equal times).
func (pl *Plan) Sort() {
	sort.SliceStable(pl.Injections, func(i, j int) bool {
		return pl.Injections[i].At < pl.Injections[j].At
	})
}

// Validate rejects plans referencing ranks outside [0, world). Before
// this check an out-of-range rank resolved to no device and the injection
// silently never fired — a misconfigured chaos plan looked like a lucky
// run. Skips from *legitimate* races (target already destroyed by an
// earlier fault) remain runtime skips, counted by Injector.SkippedCount.
func (pl Plan) Validate(world int) error {
	for i, inj := range pl.Injections {
		if inj.Rank < 0 || inj.Rank >= world {
			return fmt.Errorf("failure: injection %d (%v at %v) targets rank %d outside world [0,%d)",
				i, inj.Kind, inj.At, inj.Rank, world)
		}
	}
	return nil
}

// DefaultMix reflects the paper's observed failure mix (Table 1's
// classes): mostly single-GPU or network faults, transient network issues
// the most common, with a small tail of whole-node losses (ECC/host
// crashes) and storage-tier faults. Rack-level correlated failures are rare
// enough that they are opt-in (chaos plans add them explicitly) rather
// than part of the steady mix.
func DefaultMix() map[Kind]float64 {
	return map[Kind]float64{
		GPUHard:       0.16,
		GPUSticky:     0.16,
		DriverCorrupt: 0.11,
		NetworkHang:   0.28,
		NetworkError:  0.09,
		NodeDown:      0.07,
		StorageFault:  0.05,
		// Repairs arrive at roughly the rate nodes are destroyed (hard GPU
		// board swaps plus host replacements): a standalone repair with
		// nothing failed is skipped harmlessly.
		NodeRepaired: 0.08,
	}
}

// ParseMix parses a "kind:weight,kind:weight" specification (e.g.
// "gpu-hard:0.2,network-hang:0.5,node-down:0.3") into a mix map. An empty
// spec returns DefaultMix. Weights must be positive; they need not sum
// to 1 (PoissonPlan normalizes).
func ParseMix(spec string) (map[Kind]float64, error) {
	if spec == "" {
		return DefaultMix(), nil
	}
	mix := make(map[Kind]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("failure: bad mix entry %q (want kind:weight)", part)
		}
		k, ok := KindByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("failure: unknown fault kind %q", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("failure: bad weight %q for %s", wstr, name)
		}
		mix[k] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("failure: empty mix %q", spec)
	}
	return mix, nil
}

// PoissonPlan samples failures over horizon for a job of n ranks with
// per-GPU failure rate fPerGPUPerDay, mixing kinds by weight. The job
// failure rate is n×f, as in §5.2.
func PoissonPlan(rng *rand.Rand, n int, fPerGPUPerDay float64, horizon vclock.Time, mix map[Kind]float64) Plan {
	var plan Plan
	rate := fPerGPUPerDay * float64(n) / float64(vclock.Day) // events per ns
	if rate <= 0 {
		return plan
	}
	kinds, weights := flattenMix(mix)
	t := vclock.Time(0)
	for {
		gap := vclock.Time(rng.ExpFloat64() / rate)
		t += gap
		if t >= horizon {
			break
		}
		plan.Injections = append(plan.Injections, Injection{
			At:   t,
			Rank: rng.Intn(n),
			Kind: pickKind(rng, kinds, weights),
		})
	}
	return plan
}

func flattenMix(mix map[Kind]float64) ([]Kind, []float64) {
	kinds := make([]Kind, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	weights := make([]float64, len(kinds))
	total := 0.0
	for i, k := range kinds {
		total += mix[k]
		weights[i] = total
	}
	for i := range weights {
		weights[i] /= total
	}
	return kinds, weights
}

func pickKind(rng *rand.Rand, kinds []Kind, cumWeights []float64) Kind {
	x := rng.Float64()
	for i, w := range cumWeights {
		if x <= w {
			return kinds[i]
		}
	}
	return kinds[len(kinds)-1]
}

// WithRepairs returns a copy of the plan with a NodeRepaired event
// appended after every node-destroying injection (GPUHard, NodeDown, and
// two for RackDown — a rack is two nodes in this harness), delayed by an
// exponentially distributed repair time with the given mean. This models
// hardware-replacement turnaround so elastic jobs that shrank under the
// failures can re-expand when capacity returns.
func (pl Plan) WithRepairs(rng *rand.Rand, meanDelay vclock.Time) Plan {
	out := Plan{Injections: append([]Injection(nil), pl.Injections...)}
	if meanDelay <= 0 {
		return out
	}
	for _, inj := range pl.Injections {
		repairs := 0
		switch inj.Kind {
		case GPUHard, NodeDown:
			repairs = 1
		case RackDown:
			repairs = 2
		}
		for i := 0; i < repairs; i++ {
			delay := vclock.Time(rng.ExpFloat64() * float64(meanDelay))
			out.Injections = append(out.Injections, Injection{
				At: inj.At + delay, Rank: inj.Rank, Kind: NodeRepaired,
			})
		}
	}
	out.Sort()
	return out
}

// NodeInjection is one cluster-scoped scheduled fault: it targets a node
// ID directly rather than a job rank, so one plan can hit spares, nodes
// leased by any tenant, or a whole failure domain shared across tenants.
type NodeInjection struct {
	At   vclock.Time
	Node int
	Kind Kind
}

// NodePlan is a time-ordered set of cluster-scoped injections. Only the
// node-granular kinds are meaningful here: GPUHard (one board on the node
// dies, taking the node out of the allocatable pool), NodeDown, RackDown
// (the whole failure domain containing Node), and NodeRepaired.
type NodePlan struct {
	Injections []NodeInjection
}

// Sort orders injections by time (stable on equal times).
func (pl *NodePlan) Sort() {
	sort.SliceStable(pl.Injections, func(i, j int) bool {
		return pl.Injections[i].At < pl.Injections[j].At
	})
}

// Validate rejects plans referencing node IDs outside [0, nodes) or kinds
// that are not node-granular (a rank-level kind like NetworkHang has no
// meaning without a job to target).
func (pl NodePlan) Validate(nodes int) error {
	for i, inj := range pl.Injections {
		switch inj.Kind {
		case GPUHard, NodeDown, RackDown, NodeRepaired:
		default:
			return fmt.Errorf("failure: node injection %d (at %v) has rank-level kind %v",
				i, inj.At, inj.Kind)
		}
		if inj.Node < 0 || inj.Node >= nodes {
			return fmt.Errorf("failure: node injection %d (%v at %v) targets node %d outside cluster [0,%d)",
				i, inj.Kind, inj.At, inj.Node, nodes)
		}
	}
	return nil
}

// DefaultNodeMix is the cluster-scoped analogue of DefaultMix: mostly
// single-board and single-host losses with a thin tail of rack-level
// correlated failures.
func DefaultNodeMix() map[Kind]float64 {
	return map[Kind]float64{
		GPUHard:  0.55,
		NodeDown: 0.35,
		RackDown: 0.10,
	}
}

// PoissonNodePlan samples cluster-scoped failures over horizon for a
// cluster of n nodes with per-node failure rate fPerNodePerDay, mixing
// node-granular kinds by weight (nil mix = DefaultNodeMix). The cluster
// failure rate is n×f — the fleet-level quantity an operator provisions
// spares against.
func PoissonNodePlan(rng *rand.Rand, n int, fPerNodePerDay float64, horizon vclock.Time, mix map[Kind]float64) NodePlan {
	var plan NodePlan
	rate := fPerNodePerDay * float64(n) / float64(vclock.Day) // events per ns
	if rate <= 0 {
		return plan
	}
	if mix == nil {
		mix = DefaultNodeMix()
	}
	kinds, weights := flattenMix(mix)
	t := vclock.Time(0)
	for {
		gap := vclock.Time(rng.ExpFloat64() / rate)
		t += gap
		if t >= horizon {
			break
		}
		plan.Injections = append(plan.Injections, NodeInjection{
			At:   t,
			Node: rng.Intn(n),
			Kind: pickKind(rng, kinds, weights),
		})
	}
	return plan
}

// WithRepairs returns a copy of the node plan with a NodeRepaired event
// appended after every node-destroying injection (one per node lost:
// rackSize for RackDown), delayed by an exponentially distributed repair
// time with the given mean — the hardware-replacement turnaround the
// cluster arbiter re-expands degraded tenants against.
func (pl NodePlan) WithRepairs(rng *rand.Rand, meanDelay vclock.Time, rackSize int) NodePlan {
	out := NodePlan{Injections: append([]NodeInjection(nil), pl.Injections...)}
	if meanDelay <= 0 {
		return out
	}
	if rackSize <= 0 {
		rackSize = 2
	}
	for _, inj := range pl.Injections {
		repairs := 0
		switch inj.Kind {
		case GPUHard, NodeDown:
			repairs = 1
		case RackDown:
			repairs = rackSize
		}
		for i := 0; i < repairs; i++ {
			delay := vclock.Time(rng.ExpFloat64() * float64(meanDelay))
			out.Injections = append(out.Injections, NodeInjection{
				At: inj.At + delay, Node: inj.Node, Kind: NodeRepaired,
			})
		}
	}
	out.Sort()
	return out
}

// MTBF returns the expected time between job failures for n GPUs at
// per-GPU rate f/day (the quantity reported as 3–30 h in the failure
// studies the paper cites).
func MTBF(n int, fPerGPUPerDay float64) vclock.Time {
	if n <= 0 || fPerGPUPerDay <= 0 {
		return vclock.Time(math.MaxInt64)
	}
	return vclock.Time(float64(vclock.Day) / (fPerGPUPerDay * float64(n)))
}

// Injector applies a plan to a running job.
type Injector struct {
	Env *vclock.Env
	// DeviceOf resolves the device currently serving a rank.
	DeviceOf func(rank int) *gpu.Device
	// Engine is the collective engine for network faults.
	Engine *nccl.Engine
	// CommKeyOf resolves the communicator key a rank's network fault
	// should target (typically its gradient-allreduce group).
	CommKeyOf func(rank int) string
	// GenOf resolves the current generation of a communicator key.
	GenOf func(key string) int
	// NodeOf resolves the node currently hosting a rank; required for
	// NodeDown injections (whole-host loss).
	NodeOf func(rank int) *gpu.Node
	// RackNodesOf resolves every node in the failure domain (rack/ToR
	// switch) of the rank's node; required for RackDown injections. Nil
	// degrades RackDown to NodeDown.
	RackNodesOf func(rank int) []*gpu.Node
	// OnStorageFault arms a storage-tier fault (the harness wires it to
	// the checkpoint store's chaos hook). Nil makes StorageFault
	// injections no-ops that are skipped, not applied.
	OnStorageFault func(inj Injection)
	// OnInject observes applied injections (metrics, test assertions).
	OnInject func(inj Injection)
	// AllNodes lists every node in the cluster; required for NodeRepaired
	// injections to find a repairable node when the FIFO of injected node
	// failures is empty (e.g. a node excluded for a hard GPU).
	AllNodes []*gpu.Node
	// OnRepair observes applied NodeRepaired injections with the node that
	// came back (the harness un-excludes it from the scheduler pool).
	OnRepair func(node *gpu.Node)

	applied        []Injection
	skipped        []Injection
	phased         []*phaseState
	failedNodes    []*gpu.Node // FIFO of injection-failed nodes awaiting repair
	pendingRepairs int
	repairWait     *vclock.Event
}

// RepairsPending reports whether any scheduled NodeRepaired events have
// not yet fired — capacity the elastic path may wait for instead of
// giving up.
func (in *Injector) RepairsPending() bool { return in.pendingRepairs > 0 }

// NotePlannedRepairs registers n future NodeRepaired events that arrive
// outside the Start plan (iteration- or phase-anchored repairs).
func (in *Injector) NotePlannedRepairs(n int) { in.pendingRepairs += n }

// AwaitRepair blocks until the next NodeRepaired injection is processed
// or the timeout elapses; it reports whether a repair arrived. Because
// the simulation is cooperative, a caller that checked RepairsPending and
// immediately awaits cannot miss a repair.
func (in *Injector) AwaitRepair(p *vclock.Proc, timeout vclock.Time) bool {
	if in.repairWait == nil {
		in.repairWait = in.Env.NewEvent("repair-wait")
	}
	return p.WaitTimeout(in.repairWait, timeout)
}

// repairable returns a node needing repair: the oldest injection-failed
// node still down, else any failed node, else any node holding a
// hard-failed device. Nil means nothing needs repair.
func (in *Injector) repairable() *gpu.Node {
	for _, n := range in.failedNodes {
		if n.Failed {
			return n
		}
	}
	for _, n := range in.AllNodes {
		if n.Failed {
			return n
		}
	}
	for _, n := range in.AllNodes {
		for _, d := range n.Devices {
			if d.Health() == gpu.Hard {
				return n
			}
		}
	}
	return nil
}

// repairNode brings a node back: hardware for every unhealthy device is
// replaced (blank, healthy) and the node rejoins service.
func (in *Injector) repairNode(node *gpu.Node) {
	node.Failed = false
	for _, d := range node.Devices {
		if d.Health() != gpu.Healthy {
			d.Repair()
		}
	}
	in.Env.Tracef("failure: node %d repaired", node.ID)
	if in.OnRepair != nil {
		in.OnRepair(node)
	}
}

// noteRepairProcessed accounts one NodeRepaired event (applied or
// skipped) and wakes any AwaitRepair waiter so it re-evaluates capacity.
func (in *Injector) noteRepairProcessed() {
	if in.pendingRepairs > 0 {
		in.pendingRepairs--
	}
	if in.repairWait != nil {
		in.repairWait.Trigger()
		in.repairWait = nil
	}
}

// Applied returns the injections performed so far.
func (in *Injector) Applied() []Injection { return in.applied }

// Skipped returns injections that were dropped because their target was
// already lost (device dead, node failed) when they came due.
func (in *Injector) Skipped() []Injection { return in.skipped }

// SkippedCount is the counted SkippedInjections stat: how many planned
// injections never fired because their target was already gone. A
// non-zero count on a supposedly failure-heavy run is the tell that the
// plan and the simulated cluster disagree.
func (in *Injector) SkippedCount() int { return len(in.skipped) }

// targetLost reports whether the injection's target has already been
// destroyed by an earlier fault, in which case re-injecting would
// double-fail a dead device and corrupt the applied accounting.
func (in *Injector) targetLost(inj Injection) bool {
	switch inj.Kind {
	case StorageFault:
		return in.OnStorageFault == nil
	case NetworkHang, NetworkError:
		return false // communicator faults do not target a device
	case NodeRepaired:
		// A repair with nothing failed has no target (skipped, like a
		// fault whose target is already gone).
		return in.repairable() == nil
	}
	if in.NodeOf != nil {
		if node := in.NodeOf(inj.Rank); node != nil && node.Failed {
			return true
		}
	}
	if in.DeviceOf != nil {
		dev := in.DeviceOf(inj.Rank)
		return dev == nil || !dev.Accessible()
	}
	return false
}

// Apply performs one injection immediately. It reports whether the
// injection landed: an injection whose target is already dead (its device
// lost or its node failed by an earlier fault) is skipped — recorded in
// Skipped, not Applied — so double-failing cannot corrupt accounting.
func (in *Injector) Apply(inj Injection) bool {
	if inj.Kind == NodeRepaired {
		defer in.noteRepairProcessed()
	}
	if in.targetLost(inj) {
		in.skipped = append(in.skipped, inj)
		in.Env.Tracef("failure: skipped %v on rank %d (target already lost)", inj.Kind, inj.Rank)
		trace.Of(in.Env).Instant(in.Env.Now(), "fail", trace.Rank(inj.Rank), "inject-skip",
			"kind", inj.Kind)
		return false
	}
	switch inj.Kind {
	case GPUHard:
		in.DeviceOf(inj.Rank).InjectHard()
	case NodeDown:
		if in.NodeOf == nil {
			// Degraded: without a node resolver only the rank's device is
			// lost.
			in.DeviceOf(inj.Rank).InjectHard()
			break
		}
		in.failNode(in.NodeOf(inj.Rank))
	case RackDown:
		if in.RackNodesOf == nil {
			// Degraded: without a rack resolver only the rank's node is
			// lost.
			return in.Apply(Injection{At: inj.At, Rank: inj.Rank, Kind: NodeDown})
		}
		for _, node := range in.RackNodesOf(inj.Rank) {
			in.failNode(node)
		}
	case GPUSticky:
		in.DeviceOf(inj.Rank).InjectSticky()
	case DriverCorrupt:
		in.DeviceOf(inj.Rank).InjectDriverCorrupt()
	case StorageFault:
		in.OnStorageFault(inj)
	case NodeRepaired:
		in.repairNode(in.repairable())
	case NetworkHang, NetworkError:
		key := inj.CommKey
		if key == "" && in.CommKeyOf != nil {
			key = in.CommKeyOf(inj.Rank)
		}
		gen := 0
		if in.GenOf != nil {
			gen = in.GenOf(key)
		}
		fk := nccl.FaultHang
		if inj.Kind == NetworkError {
			fk = nccl.FaultError
		}
		in.Engine.InjectFault(key, gen, fk)
	}
	in.applied = append(in.applied, inj)
	if in.OnInject != nil {
		in.OnInject(inj)
	}
	in.Env.Tracef("failure: injected %v on rank %d", inj.Kind, inj.Rank)
	trace.Of(in.Env).Instant(in.Env.Now(), "fail", trace.Rank(inj.Rank), "inject", "kind", inj.Kind)
	return true
}

// failNode marks a node failed and hard-fails every device on it,
// skipping nodes that are already down.
func (in *Injector) failNode(node *gpu.Node) {
	if node == nil || node.Failed {
		return
	}
	node.Failed = true
	in.failedNodes = append(in.failedNodes, node)
	for _, d := range node.Devices {
		d.InjectHard()
	}
}

// Start spawns a process that applies the plan on schedule.
func (in *Injector) Start(plan Plan) {
	plan.Sort()
	injections := plan.Injections
	for _, inj := range injections {
		if inj.Kind == NodeRepaired {
			in.pendingRepairs++
		}
	}
	in.Env.Go("failure-injector", func(p *vclock.Proc) {
		for _, inj := range injections {
			if d := inj.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			in.Apply(inj)
		}
	})
}
