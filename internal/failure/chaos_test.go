package failure

import (
	"math"
	"math/rand"
	"testing"

	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/vclock"
)

// TestPoissonStatisticsConverge checks the sampled process against its
// analytical parameters across seeds: the empirical mean inter-arrival
// time converges to MTBF(n, f), and the kind frequencies converge to the
// normalized mix weights.
func TestPoissonStatisticsConverge(t *testing.T) {
	const (
		n       = 50
		fPerDay = 2.0
	)
	horizon := 40 * vclock.Day
	want := MTBF(n, fPerDay)
	mix := DefaultMix()
	var total float64
	kindCounts := make(map[Kind]float64)
	var gapSum, gapN float64
	for seed := int64(1); seed <= 5; seed++ {
		plan := PoissonPlan(rand.New(rand.NewSource(seed)), n, fPerDay, horizon, mix)
		if len(plan.Injections) < 100 {
			t.Fatalf("seed %d: only %d events", seed, len(plan.Injections))
		}
		prev := vclock.Time(0)
		for _, inj := range plan.Injections {
			gapSum += float64(inj.At - prev)
			gapN++
			prev = inj.At
			kindCounts[inj.Kind]++
			total++
		}
	}
	mean := gapSum / gapN
	if ratio := mean / float64(want); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mean inter-arrival %.3g vs MTBF %.3g (ratio %.3f)", mean, float64(want), ratio)
	}
	var weightSum float64
	for _, w := range mix {
		weightSum += w
	}
	for k, w := range mix {
		wantFreq := w / weightSum
		gotFreq := kindCounts[k] / total
		if math.Abs(gotFreq-wantFreq) > 0.03 {
			t.Errorf("kind %v frequency %.3f, want %.3f±0.03", k, gotFreq, wantFreq)
		}
	}
}

func TestDefaultMixCoversNewClasses(t *testing.T) {
	mix := DefaultMix()
	if mix[NodeDown] <= 0 {
		t.Error("DefaultMix missing NodeDown")
	}
	if mix[StorageFault] <= 0 {
		t.Error("DefaultMix missing StorageFault")
	}
	// Paper-plausible shape: transient network issues dominate; whole-node
	// and storage-tier losses are a small tail.
	for k, w := range mix {
		if k == NetworkHang {
			continue
		}
		if w > mix[NetworkHang] {
			t.Errorf("%v weight %.2f exceeds network-hang %.2f", k, w, mix[NetworkHang])
		}
	}
	if mix[NodeDown] > 0.15 || mix[StorageFault] > 0.15 {
		t.Error("node-down/storage-fault should be tail classes")
	}
	var sum float64
	for _, w := range mix {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mix weights sum to %v, want 1", sum)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("gpu-hard:0.2, network-hang:0.5 ,node-down:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[GPUHard] != 0.2 || mix[NetworkHang] != 0.5 || mix[NodeDown] != 0.3 {
		t.Fatalf("mix = %v", mix)
	}
	if def, err := ParseMix(""); err != nil || len(def) != len(DefaultMix()) {
		t.Fatalf("empty spec: %v %v", def, err)
	}
	for _, bad := range []string{"nope:1", "gpu-hard", "gpu-hard:-1", "gpu-hard:zero", ","} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) did not fail", bad)
		}
	}
}

func TestKindByNameRoundTrip(t *testing.T) {
	for k := GPUHard; k <= RackDown; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("meteor-strike"); ok {
		t.Error("unknown kind resolved")
	}
}

// clusterInjector builds an injector over a small cluster with one rank
// per device and rack = node.ID/2.
func clusterInjector(env *vclock.Env, cluster *gpu.Cluster, perNode int) *Injector {
	devOf := func(rank int) *gpu.Device {
		return cluster.Nodes[rank/perNode].Devices[rank%perNode]
	}
	in := &Injector{
		Env:      env,
		DeviceOf: devOf,
		Engine:   nccl.NewEngine(env, nccl.DefaultParams()),
		GenOf:    func(string) int { return 0 },
		NodeOf:   func(rank int) *gpu.Node { return cluster.Nodes[rank/perNode] },
	}
	in.RackNodesOf = func(rank int) []*gpu.Node {
		rack := cluster.Nodes[rank/perNode].ID / 2
		var out []*gpu.Node
		for _, n := range cluster.Nodes {
			if n.ID/2 == rack {
				out = append(out, n)
			}
		}
		return out
	}
	return in
}

// TestInjectorSkipsAlreadyFailedTarget pins the double-fail fix: an
// injection whose target rank sits on an already-failed node (or dead
// device) is skipped and recorded separately, leaving Applied accounting
// intact.
func TestInjectorSkipsAlreadyFailedTarget(t *testing.T) {
	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 2, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	env.Go("test", func(p *vclock.Proc) {
		if !in.Apply(Injection{Rank: 0, Kind: NodeDown}) {
			t.Error("first node-down did not land")
		}
		// Rank 1 lives on the same (now failed) node: every further fault
		// aimed at it must be skipped, not double-applied.
		for _, k := range []Kind{GPUHard, GPUSticky, DriverCorrupt, NodeDown} {
			if in.Apply(Injection{Rank: 1, Kind: k}) {
				t.Errorf("%v on dead rank landed", k)
			}
		}
		// A rank on the surviving node still takes faults.
		if !in.Apply(Injection{Rank: 2, Kind: GPUSticky}) {
			t.Error("fault on healthy rank skipped")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(in.Applied()) != 2 {
		t.Errorf("Applied = %d, want 2", len(in.Applied()))
	}
	if len(in.Skipped()) != 4 {
		t.Errorf("Skipped = %d, want 4", len(in.Skipped()))
	}
}

func TestRackDownFailsWholeFailureDomain(t *testing.T) {
	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 4, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	env.Go("test", func(p *vclock.Proc) {
		if !in.Apply(Injection{Rank: 1, Kind: RackDown}) {
			t.Fatal("rack-down skipped")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Rank 1 is on node 0; rack 0 = nodes {0, 1}. Both nodes and all four
	// of their devices must be gone; nodes 2 and 3 untouched.
	for i, n := range cluster.Nodes {
		wantFailed := i < 2
		if n.Failed != wantFailed {
			t.Errorf("node %d Failed = %v, want %v", i, n.Failed, wantFailed)
		}
		for _, d := range n.Devices {
			if acc := d.Accessible(); acc == wantFailed {
				t.Errorf("node %d device accessible = %v", i, acc)
			}
		}
	}
}

func TestRackDownDegradesToNodeDownWithoutResolver(t *testing.T) {
	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 4, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	in.RackNodesOf = nil
	env.Go("test", func(p *vclock.Proc) {
		if !in.Apply(Injection{Rank: 1, Kind: RackDown}) {
			t.Fatal("degraded rack-down skipped")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !cluster.Nodes[0].Failed || cluster.Nodes[1].Failed {
		t.Errorf("degraded rack-down: node0 %v node1 %v, want only node0 down",
			cluster.Nodes[0].Failed, cluster.Nodes[1].Failed)
	}
}

func TestStorageFaultRouting(t *testing.T) {
	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 2, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	env.Go("test", func(p *vclock.Proc) {
		// Without a hook the injection is skipped (not silently "applied").
		if in.Apply(Injection{Rank: 0, Kind: StorageFault}) {
			t.Error("storage fault landed with no hook")
		}
		fired := 0
		in.OnStorageFault = func(Injection) { fired++ }
		if !in.Apply(Injection{Rank: 0, Kind: StorageFault}) || fired != 1 {
			t.Errorf("storage fault hook fired %d times", fired)
		}
		// Storage faults do not touch devices.
		if cluster.Nodes[0].Devices[0].Health() != gpu.Healthy {
			t.Error("storage fault damaged a device")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseInjectionFiresOnOccurrence: a phase-armed fault fires when the
// Nth matching phase entry is noted, once, optionally delayed, at either
// the triggering rank or an explicit target.
func TestPhaseInjectionFiresOnOccurrence(t *testing.T) {
	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 2, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	in.ArmPhase(PhaseInjection{
		Phase:      PhaseRestore,
		Rank:       -1, // any rank's restore counts
		Occurrence: 2,
		Delay:      10 * vclock.Millisecond,
		Target:     -1, // the rank whose note fired it
		Kind:       GPUSticky,
	})
	env.Go("test", func(p *vclock.Proc) {
		in.NotePhase(0, PhaseCheckpoint) // wrong phase: ignored
		in.NotePhase(0, PhaseRestore)    // occurrence 1
		in.NotePhase(1, PhaseRestore)    // occurrence 2: fires at rank 1
		in.NotePhase(2, PhaseRestore)    // already fired: ignored
		p.Sleep(vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Nodes[0].Devices[1].Health(); got != gpu.Sticky {
		t.Errorf("target device health = %v, want sticky", got)
	}
	if len(in.Applied()) != 1 {
		t.Errorf("Applied = %d, want exactly 1", len(in.Applied()))
	}
}

func TestPhaseInjectionRankFilterAndNilSafety(t *testing.T) {
	var nilInj *Injector
	nilInj.NotePhase(0, PhaseCheckpoint) // must not panic

	env := vclock.NewEnv(1)
	cluster := gpu.NewCluster(env, 2, 2, 1<<30)
	in := clusterInjector(env, cluster, 2)
	in.ArmPhase(PhaseInjection{
		Phase:      PhaseCheckpoint,
		Rank:       2, // only rank 2's checkpoints count
		Occurrence: 1,
		Target:     3, // but the fault lands on rank 3
		Kind:       GPUHard,
	})
	env.Go("test", func(p *vclock.Proc) {
		in.NotePhase(0, PhaseCheckpoint) // filtered out
		in.NotePhase(1, PhaseCheckpoint) // filtered out
		if cluster.Nodes[1].Devices[0].Health() != gpu.Healthy {
			t.Error("fault fired for filtered ranks")
		}
		in.NotePhase(2, PhaseCheckpoint) // matches
		p.Sleep(vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Nodes[1].Devices[1].Health(); got != gpu.Hard {
		t.Errorf("explicit target health = %v, want hard", got)
	}
}
