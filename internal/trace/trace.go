// Package trace is the simulation-wide structured event recorder: a
// deterministic, vclock-timestamped span/instant log with per-rank and
// per-device lanes, recorded by the hot layers (vclock, gpu, nccl,
// checkpoint, peerckpt, failure, intercept, train, core) when a Recorder
// is attached to the run's vclock.Env.
//
// Design constraints, in order:
//
//   - Off by default, nil-safe everywhere: every emit site goes through
//     trace.Of(env) (or a cached *Recorder), and every Recorder method is
//     a no-op on a nil receiver, so the layers carry permanent one-line
//     emit calls with zero configuration.
//
//   - Must not perturb the simulation: recording never sleeps, never
//     touches the environment's random source, and never blocks, so a
//     traced run is bit-identical (virtual times, RNG stream, loss
//     trajectory) to an untraced one.
//
//   - Deterministic: the simulation kernel runs exactly one process at a
//     time, so appends happen in a deterministic total order; each event
//     is stamped with (virtual time, append sequence), and both exporters
//     emit byte-identical output for identical runs.
//
// The taxonomy is small and stable — categories name the emitting layer
// ("sched", "gpu", "cuda", "nccl", "ckpt", "peer", "fail", "dog",
// "train", "phase", "core"), lanes name where the event happened
// ("rank3", "n1.g0", or "sim" for global events), and args are
// preformatted key=value string pairs.
//
// A Recorder can additionally stream: SetSink installs an EventSink that
// observes every event at record time (including events spliced in by
// Merge, after renumbering), and SetRetain(false) turns the recorder into
// a pure streaming tap that keeps no log — bounded memory for
// long-running serving, at the price of post-hoc export. The sink runs
// synchronously on the simulation goroutine and must never touch the
// environment, so streaming cannot perturb virtual time.
package trace

import (
	"fmt"
	"strconv"

	"jitckpt/internal/vclock"
)

// LaneSim is the lane for events not tied to a rank or device.
const LaneSim = "sim"

// Rank returns the lane name for a training rank.
func Rank(r int) string { return "rank" + strconv.Itoa(r) }

// Arg is one preformatted key/value annotation on an event.
type Arg struct {
	K, V string
}

// Ev is one recorded event. Ph follows the Chrome trace-event phase
// letters: 'B' span begin, 'E' span end, 'i' instant. An 'E' event
// repeats its begin's identity fields and carries Ref = the begin's Seq.
type Ev struct {
	T    vclock.Time
	Seq  uint64
	Run  int
	Ph   byte
	Cat  string
	Lane string
	Name string
	Args []Arg
	Ref  uint64 // for 'E': Seq of the matching 'B'
}

// EventSink observes events as they are recorded. The pointer is only
// valid for the duration of the call: implementations must copy the Ev
// (or the fields they need) and must not mutate it. Sinks are called on
// the goroutine doing the recording — inside a simulation that is the
// simulation goroutine itself — and must never touch the simulation
// environment (no sleeps, no RNG, no virtual time), so an attached sink
// leaves the run bit-identical.
type EventSink interface {
	Event(ev *Ev)
}

// FilteringSink is an EventSink that consumes only some event
// categories. A retention-free Recorder uses the advertised set to skip
// formatting and forwarding events no one will ever read — with a
// category-filtered live sink attached, excluded categories cost one map
// probe instead of an arg-formatting pass. The returned map must be
// treated as immutable once the sink is attached (the recorder probes it
// on every event); nil means the sink consumes everything.
type FilteringSink interface {
	EventSink
	SinkCats() map[string]bool
}

// Recorder accumulates events for one or more simulation runs. It is not
// safe for concurrent use from outside a simulation; inside one, the
// vclock kernel's one-process-at-a-time execution makes appends safe.
type Recorder struct {
	evs []Ev
	seq uint64
	run int

	sink     EventSink
	sinkCats map[string]bool // FilteringSink's category set (nil = all)
	sinkMay  [256]bool       // first bytes of sinkCats keys: pre-filter before hashing
	noRetain bool            // stream-only: count and forward events, keep no log
	nonEmpty bool            // at least one event recorded since New/Reset
	scratch  Ev              // stream-only staging slot, avoids per-event heap escapes
}

// New creates an empty Recorder.
func New() *Recorder { return &Recorder{run: 1} }

// SetSink installs (or, with nil, removes) a streaming sink that will see
// every subsequent event. Installing a sink does not change what is
// recorded, so a run with a sink attached stays byte-identical. A
// FilteringSink additionally lets a retention-free recorder elide events
// in categories the sink ignores (sequence numbering still advances
// identically, so the observable trace is unchanged).
func (r *Recorder) SetSink(s EventSink) {
	if r == nil {
		return
	}
	r.sink = s
	r.sinkCats = nil
	r.sinkMay = [256]bool{}
	if fs, ok := s.(FilteringSink); ok {
		r.sinkCats = fs.SinkCats()
		for c := range r.sinkCats {
			if len(c) > 0 {
				r.sinkMay[c[0]] = true
			}
		}
	}
}

// SetRetain toggles log retention (default on). With retention off the
// recorder becomes a pure streaming tap: sequence and run numbering
// advance exactly as usual, the sink sees every event, but Len stays 0
// and the exporters have nothing to export — bounded memory for
// long-running serving. A retain-off recorder is not a valid Merge
// source (it has no log to splice).
func (r *Recorder) SetRetain(on bool) {
	if r == nil {
		return
	}
	r.noRetain = !on
}

// BeginRun marks the start of a new simulation run sharing this recorder
// (virtual time restarts at zero per run; exporters keep runs apart).
// The first run is implicit, so single-run users never call this.
func (r *Recorder) BeginRun(label string) {
	if r == nil {
		return
	}
	if r.nonEmpty {
		r.run++
	}
	r.emit(0, 'i', "core", LaneSim, "run-begin", []Arg{{"label", label}})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.evs)
}

// Events returns the raw event log in record order.
func (r *Recorder) Events() []Ev {
	if r == nil {
		return nil
	}
	return r.evs
}

// Merge appends src's events to r, renumbering sequence numbers and run
// IDs exactly as if src's runs had been recorded into r directly (the
// first merged run advances r's run counter iff r already holds events,
// mirroring BeginRun). It lets a parallel sweep record each run into a
// private recorder and splice the results together in serial order,
// producing output byte-identical to a serial sweep.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil || len(src.evs) == 0 {
		return
	}
	runOff := 0
	if r.nonEmpty {
		// src's first run-begin would have found a non-empty log and
		// incremented the run counter.
		runOff = r.run
	}
	seqOff := r.seq
	for _, ev := range src.evs {
		ev.Seq += seqOff
		if ev.Ref != 0 {
			ev.Ref += seqOff
		}
		ev.Run += runOff
		r.record(ev)
	}
	r.seq += src.seq
	r.run = runOff + src.run
}

// Reset clears the log, keeping allocated capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.evs = r.evs[:0]
	r.seq = 0
	r.run = 1
	r.nonEmpty = false
}

// record is the single funnel for every event: appends (unless retention
// is off) and forwards to the sink. The sink is handed a pointer into the
// log (or the scratch slot) so the hot path stays allocation-free.
func (r *Recorder) record(ev Ev) {
	r.nonEmpty = true
	if !r.noRetain {
		r.evs = append(r.evs, ev)
		if r.sink != nil {
			r.sink.Event(&r.evs[len(r.evs)-1])
		}
		return
	}
	if r.sink != nil {
		if r.sinkCats != nil && !r.sinkCats[ev.Cat] {
			return
		}
		r.scratch = ev
		r.sink.Event(&r.scratch)
	}
}

// elides reports that an event in cat would go nowhere: retention is off
// and the attached sink filters the category out. Emitters then skip arg
// formatting and the record call entirely — the dominant cost of leaving
// a live tap on a chatty simulation — while still advancing seq and
// nonEmpty exactly as a recording emit would, so numbering (and with it
// every retained or streamed trace) is bit-identical whether or not the
// fast path ran. The first-byte table settles most probes without
// hashing: no consumed category starts with that byte, so the event
// cannot be in the set — on a per-kernel simulation that is the bulk of
// the traffic ("gpu", "nccl", "sched") deciding in one array load.
func (r *Recorder) elides(cat string) bool {
	if !r.noRetain || r.sinkCats == nil {
		return false
	}
	if len(cat) > 0 && !r.sinkMay[cat[0]] {
		return true
	}
	return !r.sinkCats[cat]
}

// skip is the elided-event counterpart of emit.
func (r *Recorder) skip() uint64 {
	r.seq++
	r.nonEmpty = true
	return r.seq
}

func (r *Recorder) emit(t vclock.Time, ph byte, cat, lane, name string, args []Arg) uint64 {
	r.seq++
	r.record(Ev{T: t, Seq: r.seq, Run: r.run, Ph: ph, Cat: cat, Lane: lane, Name: name, Args: args})
	return r.seq
}

// Span is a handle for an open span; End closes it. The zero Span (from a
// nil Recorder) is inert.
type Span struct {
	r   *Recorder
	ref uint64
	run int

	cat, lane, name string
}

// Begin opens a span at time t on the given lane. Args are alternating
// key, value pairs (values are formatted immediately).
func (r *Recorder) Begin(t vclock.Time, cat, lane, name string, kv ...interface{}) Span {
	if r == nil {
		return Span{}
	}
	if r.elides(cat) {
		return Span{r: r, ref: r.skip(), run: r.run, cat: cat, lane: lane, name: name}
	}
	ref := r.emit(t, 'B', cat, lane, name, fmtArgs(kv))
	return Span{r: r, ref: ref, run: r.run, cat: cat, lane: lane, name: name}
}

// End closes the span at time t. Ending a zero Span is a no-op; ending a
// span twice records a second (harmless, query-ignored) end event. The
// end event carries the run the span *began* in, not the recorder's
// current run counter: a destination-recorder span held open across a
// Merge (which advances the counter past the spliced runs) must still
// pair with its begin in the right run.
func (s Span) End(t vclock.Time, kv ...interface{}) {
	if s.r == nil {
		return
	}
	r := s.r
	if r.elides(s.cat) {
		r.skip()
		return
	}
	r.seq++
	r.record(Ev{T: t, Seq: r.seq, Run: s.run, Ph: 'E',
		Cat: s.cat, Lane: s.lane, Name: s.name, Args: fmtArgs(kv), Ref: s.ref})
}

// Instant records a point event at time t.
func (r *Recorder) Instant(t vclock.Time, cat, lane, name string, kv ...interface{}) {
	if r == nil {
		return
	}
	if r.elides(cat) {
		r.skip()
		return
	}
	r.emit(t, 'i', cat, lane, name, fmtArgs(kv))
}

// ProcStart implements vclock.ProcRecorder.
func (r *Recorder) ProcStart(t vclock.Time, id int, name string) {
	if r == nil {
		return
	}
	if r.elides("sched") {
		r.skip()
		return
	}
	r.emit(t, 'i', "sched", LaneSim, "proc-start", []Arg{{"id", strconv.Itoa(id)}, {"proc", name}})
}

// ProcEnd implements vclock.ProcRecorder.
func (r *Recorder) ProcEnd(t vclock.Time, id int, name string) {
	if r == nil {
		return
	}
	if r.elides("sched") {
		r.skip()
		return
	}
	r.emit(t, 'i', "sched", LaneSim, "proc-end", []Arg{{"id", strconv.Itoa(id)}, {"proc", name}})
}

// Of returns the Recorder attached to env, or nil (an inert recorder)
// when tracing is off or env is nil.
func Of(env *vclock.Env) *Recorder {
	if env == nil {
		return nil
	}
	r, _ := env.Recorder().(*Recorder)
	return r
}

// Attach installs r on env (a convenience wrapper so callers outside the
// vclock package need no type gymnastics). A nil r detaches.
func Attach(env *vclock.Env, r *Recorder) {
	if r == nil {
		env.SetRecorder(nil)
		return
	}
	env.SetRecorder(r)
}

// fmtArgs converts alternating key, value pairs into formatted Args.
func fmtArgs(kv []interface{}) []Arg {
	if len(kv) == 0 {
		return nil
	}
	args := make([]Arg, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		args = append(args, Arg{K: fmt.Sprint(kv[i]), V: fmt.Sprint(kv[i+1])})
	}
	if len(kv)%2 == 1 {
		args = append(args, Arg{K: fmt.Sprint(kv[len(kv)-1]), V: ""})
	}
	return args
}
