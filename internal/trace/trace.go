// Package trace is the simulation-wide structured event recorder: a
// deterministic, vclock-timestamped span/instant log with per-rank and
// per-device lanes, recorded by the hot layers (vclock, gpu, nccl,
// checkpoint, peerckpt, failure, intercept, train, core) when a Recorder
// is attached to the run's vclock.Env.
//
// Design constraints, in order:
//
//   - Off by default, nil-safe everywhere: every emit site goes through
//     trace.Of(env) (or a cached *Recorder), and every Recorder method is
//     a no-op on a nil receiver, so the layers carry permanent one-line
//     emit calls with zero configuration.
//
//   - Must not perturb the simulation: recording never sleeps, never
//     touches the environment's random source, and never blocks, so a
//     traced run is bit-identical (virtual times, RNG stream, loss
//     trajectory) to an untraced one.
//
//   - Deterministic: the simulation kernel runs exactly one process at a
//     time, so appends happen in a deterministic total order; each event
//     is stamped with (virtual time, append sequence), and both exporters
//     emit byte-identical output for identical runs.
//
// The taxonomy is small and stable — categories name the emitting layer
// ("sched", "gpu", "cuda", "nccl", "ckpt", "peer", "fail", "dog",
// "train", "phase", "core"), lanes name where the event happened
// ("rank3", "n1.g0", or "sim" for global events), and args are
// preformatted key=value string pairs.
package trace

import (
	"fmt"
	"strconv"

	"jitckpt/internal/vclock"
)

// LaneSim is the lane for events not tied to a rank or device.
const LaneSim = "sim"

// Rank returns the lane name for a training rank.
func Rank(r int) string { return "rank" + strconv.Itoa(r) }

// Arg is one preformatted key/value annotation on an event.
type Arg struct {
	K, V string
}

// Ev is one recorded event. Ph follows the Chrome trace-event phase
// letters: 'B' span begin, 'E' span end, 'i' instant. An 'E' event
// repeats its begin's identity fields and carries Ref = the begin's Seq.
type Ev struct {
	T    vclock.Time
	Seq  uint64
	Run  int
	Ph   byte
	Cat  string
	Lane string
	Name string
	Args []Arg
	Ref  uint64 // for 'E': Seq of the matching 'B'
}

// Recorder accumulates events for one or more simulation runs. It is not
// safe for concurrent use from outside a simulation; inside one, the
// vclock kernel's one-process-at-a-time execution makes appends safe.
type Recorder struct {
	evs []Ev
	seq uint64
	run int
}

// New creates an empty Recorder.
func New() *Recorder { return &Recorder{run: 1} }

// BeginRun marks the start of a new simulation run sharing this recorder
// (virtual time restarts at zero per run; exporters keep runs apart).
// The first run is implicit, so single-run users never call this.
func (r *Recorder) BeginRun(label string) {
	if r == nil {
		return
	}
	if len(r.evs) > 0 {
		r.run++
	}
	r.emit(0, 'i', "core", LaneSim, "run-begin", []Arg{{"label", label}})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.evs)
}

// Events returns the raw event log in record order.
func (r *Recorder) Events() []Ev {
	if r == nil {
		return nil
	}
	return r.evs
}

// Merge appends src's events to r, renumbering sequence numbers and run
// IDs exactly as if src's runs had been recorded into r directly (the
// first merged run advances r's run counter iff r already holds events,
// mirroring BeginRun). It lets a parallel sweep record each run into a
// private recorder and splice the results together in serial order,
// producing output byte-identical to a serial sweep.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil || len(src.evs) == 0 {
		return
	}
	runOff := 0
	if len(r.evs) > 0 {
		// src's first run-begin would have found a non-empty log and
		// incremented the run counter.
		runOff = r.run
	}
	seqOff := r.seq
	for _, ev := range src.evs {
		ev.Seq += seqOff
		if ev.Ref != 0 {
			ev.Ref += seqOff
		}
		ev.Run += runOff
		r.evs = append(r.evs, ev)
	}
	r.seq += src.seq
	r.run = runOff + src.run
}

// Reset clears the log, keeping allocated capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.evs = r.evs[:0]
	r.seq = 0
	r.run = 1
}

func (r *Recorder) emit(t vclock.Time, ph byte, cat, lane, name string, args []Arg) uint64 {
	r.seq++
	r.evs = append(r.evs, Ev{T: t, Seq: r.seq, Run: r.run, Ph: ph, Cat: cat, Lane: lane, Name: name, Args: args})
	return r.seq
}

// Span is a handle for an open span; End closes it. The zero Span (from a
// nil Recorder) is inert.
type Span struct {
	r   *Recorder
	ref uint64

	cat, lane, name string
}

// Begin opens a span at time t on the given lane. Args are alternating
// key, value pairs (values are formatted immediately).
func (r *Recorder) Begin(t vclock.Time, cat, lane, name string, kv ...interface{}) Span {
	if r == nil {
		return Span{}
	}
	ref := r.emit(t, 'B', cat, lane, name, fmtArgs(kv))
	return Span{r: r, ref: ref, cat: cat, lane: lane, name: name}
}

// End closes the span at time t. Ending a zero Span is a no-op; ending a
// span twice records a second (harmless, query-ignored) end event.
func (s Span) End(t vclock.Time, kv ...interface{}) {
	if s.r == nil {
		return
	}
	r := s.r
	r.seq++
	r.evs = append(r.evs, Ev{T: t, Seq: r.seq, Run: r.run, Ph: 'E',
		Cat: s.cat, Lane: s.lane, Name: s.name, Args: fmtArgs(kv), Ref: s.ref})
}

// Instant records a point event at time t.
func (r *Recorder) Instant(t vclock.Time, cat, lane, name string, kv ...interface{}) {
	if r == nil {
		return
	}
	r.emit(t, 'i', cat, lane, name, fmtArgs(kv))
}

// ProcStart implements vclock.ProcRecorder.
func (r *Recorder) ProcStart(t vclock.Time, id int, name string) {
	if r == nil {
		return
	}
	r.emit(t, 'i', "sched", LaneSim, "proc-start", []Arg{{"id", strconv.Itoa(id)}, {"proc", name}})
}

// ProcEnd implements vclock.ProcRecorder.
func (r *Recorder) ProcEnd(t vclock.Time, id int, name string) {
	if r == nil {
		return
	}
	r.emit(t, 'i', "sched", LaneSim, "proc-end", []Arg{{"id", strconv.Itoa(id)}, {"proc", name}})
}

// Of returns the Recorder attached to env, or nil (an inert recorder)
// when tracing is off or env is nil.
func Of(env *vclock.Env) *Recorder {
	if env == nil {
		return nil
	}
	r, _ := env.Recorder().(*Recorder)
	return r
}

// Attach installs r on env (a convenience wrapper so callers outside the
// vclock package need no type gymnastics). A nil r detaches.
func Attach(env *vclock.Env, r *Recorder) {
	if r == nil {
		env.SetRecorder(nil)
		return
	}
	env.SetRecorder(r)
}

// fmtArgs converts alternating key, value pairs into formatted Args.
func fmtArgs(kv []interface{}) []Arg {
	if len(kv) == 0 {
		return nil
	}
	args := make([]Arg, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		args = append(args, Arg{K: fmt.Sprint(kv[i]), V: fmt.Sprint(kv[i+1])})
	}
	if len(kv)%2 == 1 {
		args = append(args, Arg{K: fmt.Sprint(kv[len(kv)-1]), V: ""})
	}
	return args
}
