package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// captureSink copies every event it sees (the pointer is only valid for
// the duration of the call).
type captureSink struct {
	evs []Ev
}

func (c *captureSink) Event(ev *Ev) { c.evs = append(c.evs, *ev) }

func TestSinkSeesEveryEventInOrder(t *testing.T) {
	r := New()
	sink := &captureSink{}
	r.SetSink(sink)
	r.BeginRun("x")
	sp := r.Begin(1, "ckpt", Rank(0), "save", "iter", 3)
	r.Instant(2, "fail", LaneSim, "detected")
	sp.End(4, "ok", true)
	r.BeginRun("y")
	r.Begin(1, "train", Rank(1), "iter") // left open

	if !reflect.DeepEqual(sink.evs, r.Events()) {
		t.Fatalf("sink stream diverges from log:\nsink: %+v\nlog:  %+v", sink.evs, r.Events())
	}
	r.SetSink(nil)
	r.Instant(9, "c", LaneSim, "after-detach")
	if len(sink.evs) == r.Len() {
		t.Fatal("detached sink still receiving events")
	}
}

func TestSinkSeesMergedEventsRenumbered(t *testing.T) {
	dst := New()
	dst.Instant(1, "c", LaneSim, "pre")
	sink := &captureSink{}
	dst.SetSink(sink)

	src := New()
	src.BeginRun("private")
	s := src.Begin(1, "c", LaneSim, "work")
	s.End(2)
	src.Begin(3, "c", LaneSim, "open")
	dst.Merge(src)

	tail := dst.Events()[1:] // everything after the pre-sink instant
	if !reflect.DeepEqual(sink.evs, tail) {
		t.Fatalf("sink did not see renumbered merge tail:\nsink: %+v\ntail: %+v", sink.evs, tail)
	}
	for _, ev := range sink.evs {
		if ev.Run != 2 {
			t.Fatalf("merged event not renumbered to run 2: %+v", ev)
		}
	}
}

func TestRetainOffStreamsWithoutLog(t *testing.T) {
	r := New()
	sink := &captureSink{}
	r.SetSink(sink)
	r.SetRetain(false)

	r.BeginRun("serve")
	sp := r.Begin(1, "train", Rank(0), "iter")
	sp.End(2)
	r.BeginRun("serve-2") // run numbering must advance despite the empty log
	r.Instant(1, "c", LaneSim, "x")

	if r.Len() != 0 {
		t.Fatalf("retain-off recorder kept %d events", r.Len())
	}
	if len(sink.evs) != 5 {
		t.Fatalf("sink saw %d events, want 5", len(sink.evs))
	}
	last := sink.evs[len(sink.evs)-1]
	if last.Run != 2 {
		t.Fatalf("run numbering broke without a log: %+v", last)
	}
	if end := sink.evs[2]; end.Ph != 'E' || end.Ref != sink.evs[1].Seq {
		t.Fatalf("span pairing broke without a log: %+v vs begin %+v", end, sink.evs[1])
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, r, TextOptions{}); err != nil || buf.Len() != 0 {
		t.Fatalf("retain-off export should be empty, got %q err %v", buf.String(), err)
	}
}

func TestSinkAttachDoesNotChangeLog(t *testing.T) {
	build := func(s EventSink) *Recorder {
		r := New()
		r.SetSink(s)
		r.BeginRun("x")
		sp := r.Begin(1, "c", LaneSim, "work", "k", "v")
		r.Instant(2, "c", Rank(0), "tick")
		sp.End(3)
		return r
	}
	plain := build(nil)
	tapped := build(&captureSink{})
	if !reflect.DeepEqual(plain.Events(), tapped.Events()) {
		t.Fatal("attaching a sink changed the recorded log")
	}
}
