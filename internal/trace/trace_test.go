package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"jitckpt/internal/vclock"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.BeginRun("x")
	sp := r.Begin(1, "cat", LaneSim, "span")
	sp.End(2)
	r.Instant(3, "cat", LaneSim, "inst")
	r.ProcStart(0, 1, "p")
	r.ProcEnd(1, 1, "p")
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	if Of(nil) != nil {
		t.Fatal("Of(nil) should be nil")
	}
	env := vclock.NewEnv(1)
	if Of(env) != nil {
		t.Fatal("Of on a recorder-less env should be nil")
	}
}

func TestAttachAndOf(t *testing.T) {
	env := vclock.NewEnv(1)
	r := New()
	Attach(env, r)
	if Of(env) != r {
		t.Fatal("Of did not return the attached recorder")
	}
	Attach(env, nil)
	if Of(env) != nil {
		t.Fatal("detach did not clear the recorder")
	}
}

func TestSpanPairingAndArgs(t *testing.T) {
	r := New()
	sp := r.Begin(10, "ckpt", Rank(2), "save", "iter", 5)
	r.Instant(12, "fail", LaneSim, "detected", "by", "heartbeat")
	sp.End(20, "ok", true)
	open := r.Begin(15, "train", Rank(0), "iter")
	_ = open // never ended: stays open

	q := NewQuery(r)
	saves := q.Spans("ckpt", "save")
	if len(saves) != 1 {
		t.Fatalf("saves = %d", len(saves))
	}
	s := saves[0]
	if s.Open || s.Start != 10 || s.End != 20 || s.Dur() != 10 {
		t.Fatalf("bad span: %+v", s)
	}
	if s.Args["iter"] != "5" || s.Args["ok"] != "true" {
		t.Fatalf("args not layered: %+v", s.Args)
	}
	iters := q.Spans("train", "iter")
	if len(iters) != 1 || !iters[0].Open || iters[0].Dur() != 0 {
		t.Fatalf("open span mishandled: %+v", iters)
	}
	if got := q.Instants("fail", "detected"); len(got) != 1 || got[0].Args["by"] != "heartbeat" {
		t.Fatalf("instants: %+v", got)
	}
	if q.WallTime() != 20 {
		t.Fatalf("wall = %v", q.WallTime())
	}
}

func TestDoubleEndIsIgnoredByQuery(t *testing.T) {
	r := New()
	sp := r.Begin(1, "c", LaneSim, "s")
	sp.End(2)
	sp.End(3, "late", true)
	q := NewQuery(r)
	spans := q.Spans("c", "s")
	if len(spans) != 1 || spans[0].End != 2 || spans[0].Args["late"] != "" {
		t.Fatalf("double end leaked: %+v", spans)
	}
}

func TestBeginRunSeparatesRuns(t *testing.T) {
	r := New()
	r.BeginRun("first") // empty log: stays run 1
	r.Instant(5, "c", LaneSim, "a")
	r.BeginRun("second")
	r.Instant(3, "c", LaneSim, "b")
	q := NewQuery(r)
	if q.Runs() != 2 {
		t.Fatalf("runs = %d", q.Runs())
	}
	evs := r.Events()
	if evs[0].Run != 1 || evs[len(evs)-1].Run != 2 {
		t.Fatalf("run stamping wrong: %+v", evs)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset kept events")
	}
	r.Instant(1, "c", LaneSim, "x")
	if r.Events()[0].Run != 1 {
		t.Fatal("reset did not restart run numbering")
	}
}

func TestOddArgsGetEmptyValue(t *testing.T) {
	r := New()
	r.Instant(1, "c", LaneSim, "x", "k1", "v1", "dangling")
	ev := r.Events()[0]
	if len(ev.Args) != 2 || ev.Args[1].K != "dangling" || ev.Args[1].V != "" {
		t.Fatalf("args: %+v", ev.Args)
	}
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New()
		sp := r.Begin(1_000_000, "ckpt", Rank(0), "save", "iter", 1)
		sp.End(2_000_000)
		r.Instant(1_500_000, "fail", LaneSim, "detected")
		r.Begin(3_000_000, "train", Rank(1), "iter") // left open
		r.BeginRun("second")
		r.Instant(0, "core", LaneSim, "x")
		return r
	}
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome export not deterministic")
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	phases := map[string]int{}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		pids[ev["pid"].(float64)] = true
	}
	if phases["X"] != 1 {
		t.Fatalf("want 1 complete event, got %d", phases["X"])
	}
	if phases["B"] != 1 {
		t.Fatalf("want 1 open begin, got %d", phases["B"])
	}
	if phases["i"] != 3 { // detected + x + run-begin
		t.Fatalf("want 3 instants, got %d", phases["i"])
	}
	if phases["M"] == 0 {
		t.Fatal("no metadata events")
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("runs not split into pids: %v", pids)
	}
}

func TestWriteTextFilterAndMultiRunPrefix(t *testing.T) {
	r := New()
	r.Instant(vclock.Second, "ckpt", Rank(0), "commit", "gen", 1)
	r.Instant(vclock.Second, "gpu", "n0.g0", "kernel")
	var single bytes.Buffer
	if err := WriteText(&single, r, TextOptions{Cats: []string{"ckpt"}}); err != nil {
		t.Fatal(err)
	}
	want := "1.000000000 i ckpt  rank0  commit gen=1\n"
	if single.String() != want {
		t.Fatalf("got %q want %q", single.String(), want)
	}

	r.BeginRun("again")
	r.Instant(0, "ckpt", Rank(1), "commit")
	var multi bytes.Buffer
	if err := WriteText(&multi, r, TextOptions{Cats: []string{"ckpt", "core"}}); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(multi.Bytes(), "\n"), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), multi.String())
	}
	for _, ln := range lines {
		if !bytes.HasPrefix(ln, []byte("r1 ")) && !bytes.HasPrefix(ln, []byte("r2 ")) {
			t.Fatalf("multi-run line missing run prefix: %q", ln)
		}
	}
}

func TestLanesSorted(t *testing.T) {
	r := New()
	r.Instant(0, "c", "rank2", "x")
	r.Instant(0, "c", "n0.g1", "x")
	r.Instant(0, "c", LaneSim, "x")
	lanes := r.Lanes()
	if !sort.StringsAreSorted(lanes) || len(lanes) != 3 {
		t.Fatalf("lanes: %v", lanes)
	}
}

func TestSpanSums(t *testing.T) {
	r := New()
	r.Begin(0, "phase", Rank(1), "restore").End(5)
	r.Begin(10, "phase", Rank(1), "restore").End(12)
	r.Begin(0, "phase", Rank(1), "replay").End(3)
	r.Begin(0, "phase", Rank(2), "restore").End(100)
	r.Begin(200, "phase", Rank(1), "open") // open: excluded
	q := NewQuery(r)
	sums := q.SpanSums("phase", Rank(1))
	if sums["restore"] != 7 || sums["replay"] != 3 || len(sums) != 2 {
		t.Fatalf("sums: %v", sums)
	}
	all := q.SpanSums("phase", "")
	if all["restore"] != 107 {
		t.Fatalf("any-lane sums: %v", all)
	}
}
