package trace

import (
	"bytes"
	"testing"
)

// TestMergeRenumbersOpenSpans pins the in-progress-span case of Merge's
// seq renumbering: a parallel sweep may splice in a recorder whose runs
// were cut off at a horizon with spans still open. Open begins (Ref=0 on
// their eventual end) must stay open, closed src spans must keep pairing
// after the offset shift, and span handles into the destination recorder
// must still pair after a merge grew the log underneath them.
//
// This caught a real bug: Span.End stamped the recorder's *current* run
// counter, so a destination span ended after Merge advanced the counter
// was mis-attributed to the last spliced run.
func TestMergeRenumbersOpenSpans(t *testing.T) {
	dst := New()
	dst.BeginRun("dst")
	dst.Begin(1, "c", LaneSim, "closed-dst").End(2)
	openDst := dst.Begin(3, "c", LaneSim, "open-dst")

	src := New()
	src.BeginRun("src-a")
	sClosed := src.Begin(1, "c", LaneSim, "closed-src", "k", 1)
	src.Begin(2, "c", Rank(0), "open-src") // cut off: never ended
	sClosed.End(4, "ok", true)
	src.BeginRun("src-b")
	src.Begin(1, "c", LaneSim, "closed-src2").End(2)
	src.Begin(3, "c", Rank(1), "open-src2") // open in a later run

	dst.Merge(src)
	openDst.End(9) // dst handle must still resolve after the splice

	evs := dst.Events()
	seen := make(map[uint64]Ev, len(evs))
	for i, ev := range evs {
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		if ev.Ph == 'B' || ev.Ph == 'i' {
			seen[ev.Seq] = ev
		}
		if ev.Ph == 'E' {
			b, ok := seen[ev.Ref]
			if !ok {
				t.Fatalf("end %s/%s Ref=%d resolves to nothing", ev.Cat, ev.Name, ev.Ref)
			}
			if b.Ph != 'B' || b.Cat != ev.Cat || b.Lane != ev.Lane || b.Name != ev.Name || b.Run != ev.Run {
				t.Fatalf("end %s/%s Ref=%d resolves to mismatched begin %+v", ev.Cat, ev.Name, ev.Ref, b)
			}
		}
	}

	q := NewQuery(dst)
	type want struct {
		name string
		open bool
		run  int
		dur  int64
	}
	for _, w := range []want{
		{"closed-dst", false, 1, 1},
		{"open-dst", false, 1, 6},
		{"closed-src", false, 2, 3},
		{"open-src", true, 2, 0},
		{"closed-src2", false, 3, 1},
		{"open-src2", true, 3, 0},
	} {
		spans := q.Spans("c", w.name)
		if len(spans) != 1 {
			t.Fatalf("%s: %d spans", w.name, len(spans))
		}
		s := spans[0]
		if s.Open != w.open || s.Run != w.run || int64(s.Dur()) != w.dur {
			t.Fatalf("%s: got open=%v run=%d dur=%d, want %+v", w.name, s.Open, s.Run, int64(s.Dur()), w)
		}
	}
	if got := q.Spans("c", "closed-src")[0].Args; got["k"] != "1" || got["ok"] != "true" {
		t.Fatalf("closed-src args lost in merge: %v", got)
	}
}

// TestMergeWithOpenSpansMatchesSerial is the strongest form: performing
// the same operations serially into one recorder must produce a log
// byte-identical to recording them into two recorders and merging —
// including runs that end with spans still open.
func TestMergeWithOpenSpansMatchesSerial(t *testing.T) {
	first := func(r *Recorder) Span {
		r.BeginRun("a")
		r.Begin(1, "c", LaneSim, "done").End(2)
		return r.Begin(3, "c", LaneSim, "hang") // left open
	}
	second := func(r *Recorder) Span {
		r.BeginRun("b")
		s := r.Begin(1, "c", Rank(0), "slow")
		r.Instant(2, "fail", LaneSim, "detected")
		r.Begin(4, "c", Rank(1), "stuck") // left open
		return s
	}

	serial := New()
	first(serial)
	s := second(serial)
	s.End(9)

	merged := New()
	first(merged)
	priv := New()
	s2 := second(priv)
	s2.End(9)
	merged.Merge(priv)

	var a, b bytes.Buffer
	if err := WriteText(&a, serial, TextOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&b, merged, TextOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merge with open spans diverged from serial:\nserial:\n%s\nmerged:\n%s", a.String(), b.String())
	}
	if serial.seq != merged.seq || serial.run != merged.run {
		t.Fatalf("counters diverged: serial seq=%d run=%d, merged seq=%d run=%d",
			serial.seq, serial.run, merged.seq, merged.run)
	}
}
