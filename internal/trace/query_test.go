package trace

import (
	"strings"
	"testing"
)

// cleanLog builds a minimal log satisfying every invariant: detection,
// a jit-save after it, a successful recovery episode containing a valid
// restore, and a gen-1 incarnation that restores before training.
func cleanLog() *Recorder {
	r := New()
	run := r.Begin(0, "core", LaneSim, "run")
	inc0 := r.Begin(0, "core", LaneSim, "incarnation", "gen", 0)
	r.Begin(10, "train", Rank(0), "opt-step").End(20)
	r.Instant(25, "fail", Rank(1), "detected", "by", "heartbeat")
	r.Begin(30, "ckpt", Rank(0), "jit-save").End(40)
	inc0.End(45)
	inc1 := r.Begin(45, "core", LaneSim, "incarnation", "gen", 1)
	r.Instant(50, "ckpt", Rank(0), "restore-done", "valid", true)
	r.Begin(55, "train", Rank(0), "iter").End(60)
	inc1.End(60)
	run.End(60)
	return r
}

func TestCheckInvariantsClean(t *testing.T) {
	if err := CheckInvariants(NewQuery(cleanLog())); err != nil {
		t.Fatalf("clean log rejected: %v", err)
	}
}

func wantViolation(t *testing.T, r *Recorder, fragment string) {
	t.Helper()
	err := CheckInvariants(NewQuery(r))
	if err == nil {
		t.Fatalf("violation not detected (want %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestInvariantMutationSaveOverlap(t *testing.T) {
	r := New()
	r.Instant(5, "fail", Rank(1), "detected", "by", "watchdog")
	r.Begin(10, "train", Rank(0), "opt-step").End(30)
	r.Begin(20, "ckpt", Rank(0), "jit-save").End(40)
	wantViolation(t, r, "overlaps")
}

func TestInvariantOverlapExemptions(t *testing.T) {
	// Open optimizer step: the interrupted-mutation roll-forward case.
	r := New()
	r.Instant(5, "fail", Rank(1), "detected", "by", "watchdog")
	r.Begin(10, "train", Rank(0), "opt-step") // never ends
	r.Begin(20, "ckpt", Rank(0), "jit-save").End(40)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("open opt-step should be exempt: %v", err)
	}

	// Different lanes never conflict.
	r = New()
	r.Instant(5, "fail", Rank(1), "detected", "by", "watchdog")
	r.Begin(10, "train", Rank(0), "opt-step").End(30)
	r.Begin(20, "ckpt", Rank(1), "jit-save").End(40)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("cross-lane overlap should be allowed: %v", err)
	}

	// Touching endpoints do not overlap.
	r = New()
	r.Instant(5, "fail", Rank(1), "detected", "by", "watchdog")
	r.Begin(10, "train", Rank(0), "opt-step").End(20)
	r.Begin(20, "ckpt", Rank(0), "pc-save").End(30)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("adjacent intervals should be allowed: %v", err)
	}

	// A save quiesced inside a recovery episode may be bracketed by a
	// parked worker's optimizer step that only closes after resuming.
	r = New()
	r.Instant(12, "fail", Rank(1), "detected", "by", "watchdog")
	r.Begin(10, "train", Rank(0), "opt-step").End(100)
	ep := r.Begin(12, "core", LaneSim, "recovery")
	r.Begin(20, "ckpt", Rank(0), "jit-save").End(40)
	r.Instant(45, "ckpt", Rank(0), "restore-done", "valid", true)
	ep.End(60, "ok", true)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("quiesced in-episode save should be exempt: %v", err)
	}
}

func TestInvariantRecoveryWithoutRestore(t *testing.T) {
	r := New()
	r.Begin(10, "core", LaneSim, "recovery").End(20, "ok", true)
	wantViolation(t, r, "without a valid restore")
}

func TestInvariantFailedRecoveryNeedsNoRestore(t *testing.T) {
	r := New()
	r.Begin(10, "core", LaneSim, "recovery").End(20, "ok", false)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("failed episode should not require a restore: %v", err)
	}
}

func TestInvariantRestartWithoutRestore(t *testing.T) {
	r := New()
	inc := r.Begin(0, "core", LaneSim, "incarnation", "gen", 2)
	r.Begin(10, "train", Rank(0), "iter").End(15)
	inc.End(20)
	wantViolation(t, r, "resumed training")
}

func TestInvariantRestartFreshStartFallbackAllowed(t *testing.T) {
	r := New()
	inc := r.Begin(0, "core", LaneSim, "incarnation", "gen", 2)
	r.Begin(2, "ckpt", Rank(0), "restore").End(5, "err", "no usable generation")
	r.Begin(10, "train", Rank(0), "iter").End(15)
	inc.End(20)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("explicit fallback should satisfy the invariant: %v", err)
	}
}

func TestInvariantJITSaveBeforeDetection(t *testing.T) {
	r := New()
	r.Begin(10, "ckpt", Rank(0), "jit-save").End(20)
	wantViolation(t, r, "precedes every failure detection")
}

func TestInvariantSpanEndsBeforeStart(t *testing.T) {
	r := New()
	sp := r.Begin(10, "c", LaneSim, "s")
	sp.End(5)
	wantViolation(t, r, "ends before it starts")
}

func TestInvariantMultiStepRestoreNeedsCommit(t *testing.T) {
	// A restore claiming the multi-step tier without any committed
	// generation at that iteration: the partial-generation case.
	r := New()
	r.Instant(50, "ckpt", Rank(0), "restore-done",
		"valid", true, "iter", 8, "src", "multistep")
	wantViolation(t, r, "without a committed generation")

	// A commit at a different iteration does not satisfy it either: the
	// restore must come from the generation that actually committed.
	r = New()
	r.Instant(10, "ckpt", Rank(0), "ms-gen-commit", "iter", 4, "rank", 0)
	r.Instant(50, "ckpt", Rank(0), "restore-done",
		"valid", true, "iter", 8, "src", "multistep")
	wantViolation(t, r, "without a committed generation")
}

func TestInvariantMultiStepRestoreAfterCommitClean(t *testing.T) {
	r := New()
	r.Instant(10, "ckpt", Rank(0), "ms-gen-commit", "iter", 8, "rank", 0)
	r.Instant(50, "ckpt", Rank(0), "restore-done",
		"valid", true, "iter", 8, "src", "multistep")
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("committed-generation restore rejected: %v", err)
	}
	// Restores from other tiers never need a commit record.
	r = New()
	r.Instant(50, "ckpt", Rank(0), "restore-done",
		"valid", true, "iter", 8, "src", "shared")
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("non-multistep restore rejected: %v", err)
	}
}

func TestInvariantStageRebuildMustResolve(t *testing.T) {
	r := New()
	run := r.Begin(0, "core", LaneSim, "run")
	r.Begin(10, "pipe", Rank(2), "stage-rebuild").End(20)
	run.End(30)
	wantViolation(t, r, "never resolved")
}

func TestInvariantStageRebuildResolutions(t *testing.T) {
	// Resolved by a valid restore at or after the rebuild's start.
	r := New()
	run := r.Begin(0, "core", LaneSim, "run")
	r.Begin(10, "pipe", Rank(2), "stage-rebuild").End(20)
	r.Instant(20, "ckpt", Rank(2), "restore-done", "valid", true)
	run.End(30)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("restore-resolved rebuild rejected: %v", err)
	}

	// Resolved by an explicit fallback: the restore span fails loudly.
	r = New()
	run = r.Begin(0, "core", LaneSim, "run")
	r.Begin(10, "pipe", Rank(2), "stage-rebuild") // cut off mid-rebuild
	r.Begin(10, "ckpt", Rank(2), "restore").End(25, "err", "rank lost mid-rebuild")
	run.End(30)
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("fallback-resolved rebuild rejected: %v", err)
	}

	// A run cut at the horizon (open core/run span) is not checked.
	r = New()
	r.Begin(0, "core", LaneSim, "run")
	r.Begin(10, "pipe", Rank(2), "stage-rebuild")
	if err := CheckInvariants(NewQuery(r)); err != nil {
		t.Fatalf("horizon-cut rebuild should be tolerated: %v", err)
	}
}

func TestReconcileAccounting(t *testing.T) {
	r := New()
	r.Begin(0, "core", LaneSim, "run").End(100)
	q := NewQuery(r)
	if err := ReconcileAccounting(q, 70, 30, 100); err != nil {
		t.Fatalf("exact reconcile rejected: %v", err)
	}
	if err := ReconcileAccounting(q, 70, 29, 100); err == nil {
		t.Fatal("sum mismatch accepted")
	}
	if err := ReconcileAccounting(q, -1, 101, 100); err == nil {
		t.Fatal("negative useful accepted")
	}
	if err := ReconcileAccounting(q, 60, 30, 90); err == nil {
		t.Fatal("run-span/wall mismatch accepted")
	}
}
