package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU);
// Perfetto and chrome://tracing both load it. It is exported so the
// streaming timeline endpoint can serve the same schema.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the full log as Chrome trace-event JSON. Each
// simulation run becomes one "process" (runs restart virtual time at
// zero), each lane one named "thread"; paired spans become complete 'X'
// events, unclosed spans stay open-ended 'B' events, instants become 'i'.
func WriteChrome(w io.Writer, r *Recorder) error {
	evs := r.Events()

	// Stable lane -> tid assignment per run, in order of first appearance.
	type laneKey struct {
		run  int
		lane string
	}
	tids := make(map[laneKey]int)
	var out []ChromeEvent
	runSeen := make(map[int]bool)
	tid := func(run int, lane string) int {
		k := laneKey{run, lane}
		if id, ok := tids[k]; ok {
			return id
		}
		id := len(tids) + 1
		tids[k] = id
		if !runSeen[run] {
			runSeen[run] = true
			out = append(out, ChromeEvent{
				Name: "process_name", Ph: "M", PID: run, TID: 0,
				Args: map[string]string{"name": fmt.Sprintf("run %d", run)},
			})
		}
		out = append(out, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: run, TID: id,
			Args: map[string]string{"name": lane},
		})
		return id
	}

	// Pair span ends with their begins.
	endOf := make(map[uint64]*Ev, len(evs)/2)
	for i := range evs {
		ev := &evs[i]
		if ev.Ph == 'E' {
			if _, dup := endOf[ev.Ref]; !dup {
				endOf[ev.Ref] = ev
			}
		}
	}

	us := func(t int64) float64 { return float64(t) / 1e3 }
	for i := range evs {
		ev := &evs[i]
		ce := ChromeEvent{
			Name: ev.Name, Cat: ev.Cat, PID: ev.Run, TID: tid(ev.Run, ev.Lane),
			TS: us(int64(ev.T)), Args: argMap(ev.Args),
		}
		switch ev.Ph {
		case 'B':
			if end, ok := endOf[ev.Seq]; ok {
				ce.Ph = "X"
				ce.Dur = us(int64(end.T - ev.T))
				for _, a := range end.Args {
					if ce.Args == nil {
						ce.Args = make(map[string]string)
					}
					ce.Args[a.K] = a.V
				}
			} else {
				ce.Ph = "B"
			}
		case 'E':
			continue // folded into the begin's 'X' above
		case 'i':
			ce.Ph = "i"
			ce.S = "t"
		default:
			continue
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func argMap(args []Arg) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, a := range args {
		m[a.K] = a.V
	}
	return m
}

// TextOptions filter the compact text timeline.
type TextOptions struct {
	// Cats restricts output to the listed categories (nil = all).
	Cats []string
}

// WriteText writes the compact deterministic text timeline: one line per
// event, in record order, fixed-width virtual-time prefix. The format is
// stable — goldens and docs depend on it:
//
//	0.000000000 i core  sim    run label=x
//	1.250000000 B ckpt  rank0  pc-save iter=5
//	1.310000000 E ckpt  rank0  pc-save
func WriteText(w io.Writer, r *Recorder, opt TextOptions) error {
	var want map[string]bool
	if len(opt.Cats) > 0 {
		want = make(map[string]bool, len(opt.Cats))
		for _, c := range opt.Cats {
			want[c] = true
		}
	}
	multi := false
	evs := r.Events()
	for i := range evs {
		if evs[i].Run > 1 {
			multi = true
			break
		}
	}
	for i := range evs {
		ev := &evs[i]
		if want != nil && !want[ev.Cat] {
			continue
		}
		if multi {
			if _, err := fmt.Fprintf(w, "r%d ", ev.Run); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%.9f %c %-5s %-6s %s", ev.T.Sec(), ev.Ph, ev.Cat, ev.Lane, ev.Name); err != nil {
			return err
		}
		for _, a := range ev.Args {
			if _, err := fmt.Fprintf(w, " %s=%s", a.K, a.V); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Lanes returns every lane present in the log, sorted.
func (r *Recorder) Lanes() []string {
	seen := make(map[string]bool)
	for _, ev := range r.Events() {
		seen[ev.Lane] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
