package trace

import (
	"fmt"
	"sort"

	"jitckpt/internal/vclock"
)

// SpanRec is a paired (or still-open) span reconstructed from the log.
type SpanRec struct {
	Run        int
	Start, End vclock.Time
	Open       bool // no matching end event
	Cat        string
	Lane       string
	Name       string
	Args       map[string]string // begin args, end args layered on top
	Seq        uint64            // begin event's sequence number
}

// Dur returns the span's duration (0 for open spans).
func (s SpanRec) Dur() vclock.Time {
	if s.Open {
		return 0
	}
	return s.End - s.Start
}

// InstRec is an instant event.
type InstRec struct {
	Run  int
	T    vclock.Time
	Cat  string
	Lane string
	Name string
	Args map[string]string
	Seq  uint64
}

// Query is an indexed view over a Recorder's log, for assertions.
type Query struct {
	spans    []SpanRec
	instants []InstRec
	last     vclock.Time
	runs     int
}

// NewQuery pairs span begins/ends and indexes instants. It tolerates
// open spans (runs cut off at the horizon legitimately leave some).
func NewQuery(r *Recorder) *Query {
	q := &Query{runs: 1}
	evs := r.Events()
	open := make(map[uint64]int) // begin seq -> index in q.spans
	for i := range evs {
		ev := &evs[i]
		if ev.T > q.last {
			q.last = ev.T
		}
		if ev.Run > q.runs {
			q.runs = ev.Run
		}
		switch ev.Ph {
		case 'B':
			open[ev.Seq] = len(q.spans)
			q.spans = append(q.spans, SpanRec{
				Run: ev.Run, Start: ev.T, Open: true,
				Cat: ev.Cat, Lane: ev.Lane, Name: ev.Name,
				Args: argMap(ev.Args), Seq: ev.Seq,
			})
		case 'E':
			idx, ok := open[ev.Ref]
			if !ok {
				continue // duplicate end
			}
			delete(open, ev.Ref)
			sp := &q.spans[idx]
			sp.Open = false
			sp.End = ev.T
			for _, a := range ev.Args {
				if sp.Args == nil {
					sp.Args = make(map[string]string)
				}
				sp.Args[a.K] = a.V
			}
		case 'i':
			q.instants = append(q.instants, InstRec{
				Run: ev.Run, T: ev.T, Cat: ev.Cat, Lane: ev.Lane, Name: ev.Name,
				Args: argMap(ev.Args), Seq: ev.Seq,
			})
		}
	}
	return q
}

// Runs returns the number of simulation runs in the log.
func (q *Query) Runs() int { return q.runs }

// WallTime returns the latest event time in the log.
func (q *Query) WallTime() vclock.Time { return q.last }

// Spans returns spans matching category and name ("" matches any).
func (q *Query) Spans(cat, name string) []SpanRec {
	var out []SpanRec
	for _, s := range q.spans {
		if (cat == "" || s.Cat == cat) && (name == "" || s.Name == name) {
			out = append(out, s)
		}
	}
	return out
}

// Instants returns instants matching category and name ("" matches any).
func (q *Query) Instants(cat, name string) []InstRec {
	var out []InstRec
	for _, in := range q.instants {
		if (cat == "" || in.Cat == cat) && (name == "" || in.Name == name) {
			out = append(out, in)
		}
	}
	return out
}

// SpanSums sums closed-span durations by name for one category and lane
// ("" lane matches any).
func (q *Query) SpanSums(cat, lane string) map[string]vclock.Time {
	out := make(map[string]vclock.Time)
	for _, s := range q.spans {
		if s.Cat != cat || s.Open || (lane != "" && s.Lane != lane) {
			continue
		}
		out[s.Name] += s.Dur()
	}
	return out
}

// overlaps reports strict interval overlap (touching endpoints do not
// overlap: a checkpoint may begin exactly when an optimizer step ends).
func overlaps(a, b SpanRec) bool {
	return a.Start < b.End && b.Start < a.End
}

// CheckInvariants verifies the event-ordering guarantees the recovery
// mechanisms depend on (§3, §4 of the paper), per run:
//
//  1. Mutation/checkpoint exclusion: no completed optimizer step
//     (train/opt-step) overlaps an in-flight checkpoint serialization
//     (ckpt/pc-save or ckpt/jit-save) on the same rank. Open optimizer
//     steps are skipped: an interrupted step never completed its
//     mutation and is exactly the §4.2.2 roll-forward case. Saves fully
//     contained in a transparent-recovery episode (core/recovery span)
//     are also exempt: the coordinator quiesces all device work for the
//     episode's duration, while a parked healthy worker's optimizer-step
//     span stays open across it and only closes after resuming — the
//     worker-side span then brackets the save without any concurrent
//     device mutation. A save that leaks past the episode's end is still
//     a violation.
//
//  2. Every recovery episode ends in a restore from a valid generation:
//     (a) every successful transparent-recovery episode (core/recovery
//     span ending ok=true) contains at least one valid restore
//     (ckpt/restore-done with valid=true — from a checkpoint generation,
//     a host copy, or a peer replica); (b) every restarted incarnation
//     (core/incarnation span with gen > 0) that resumed training (a
//     train/iter span began inside it) first either completed a valid
//     restore or explicitly fell back to a fresh start (a ckpt/restore
//     span closed with an err annotation — the no-usable-generation
//     case).
//
//  3. JIT checkpoints are just-in-time: every ckpt/jit-save span begins
//     at or after a failure-detection instant of the same run.
//
//  4. Well-formedness: event times never exceed the log's wall time and
//     every closed span has End >= Start.
//
//  5. Elastic world-size changes happen only inside a recovery episode:
//     every elastic/shrink instant follows a failure detection of the
//     same run, every elastic/expand instant follows a node-repaired
//     injection, and adjacent core/incarnation spans whose "world" args
//     differ have an elastic shrink or expand instant between their
//     starts.
//
//  6. Elastic transitions are well-ordered per run: expand and
//     end-degraded require a preceding unmatched shrink (shrinks may
//     nest — deeper degradation — and one expand restores full width),
//     nothing follows end-degraded, and a run whose core/run span closed
//     while still degraded must have declared it with an explicit
//     elastic/end-degraded instant.
//
//  7. Multi-step restores come only from committed generations: every
//     ckpt/restore-done instant with valid=true and src=multistep at
//     iteration I is preceded by a ckpt/ms-gen-commit instant of the
//     same run with iter=I. A generation interrupted mid-slice-write
//     never writes its commit record, so a partial generation can never
//     satisfy this — restoring one is exactly the violation.
//
//  8. Checkpoint-free stage rebuilds resolve: once a pipe/stage-rebuild
//     span begins in a finished run, the run must later contain either a
//     valid restore (ckpt/restore-done with valid=true at or after the
//     rebuild's start) or an explicit fallback (a ckpt/restore span
//     closed with an err annotation) — a rebuild episode never ends in a
//     silent half-rebuilt stage.
//
// It returns nil when every invariant holds, or an error naming the
// first violation of each kind.
func CheckInvariants(q *Query) error {
	var errs []error

	// (4) well-formedness.
	for _, s := range q.spans {
		if !s.Open && s.End < s.Start {
			errs = append(errs, fmt.Errorf("span %s/%s on %s ends before it starts (%v < %v)",
				s.Cat, s.Name, s.Lane, s.End, s.Start))
			break
		}
	}

	// (1) mutation/checkpoint exclusion per (run, lane).
	type key struct {
		run  int
		lane string
	}
	episodes := q.Spans("core", "recovery")
	quiesced := func(s SpanRec) bool {
		for _, ep := range episodes {
			if ep.Run == s.Run && !ep.Open && s.Start >= ep.Start && s.End <= ep.End {
				return true
			}
		}
		return false
	}
	saves := make(map[key][]SpanRec)
	for _, name := range []string{"pc-save", "jit-save"} {
		for _, s := range q.Spans("ckpt", name) {
			if !s.Open && quiesced(s) {
				continue // device work is quiesced for the episode
			}
			saves[key{s.Run, s.Lane}] = append(saves[key{s.Run, s.Lane}], s)
		}
	}
	if len(saves) > 0 {
	overlap:
		for _, o := range q.Spans("train", "opt-step") {
			if o.Open {
				continue
			}
			for _, s := range saves[key{o.Run, o.Lane}] {
				if s.Open {
					continue
				}
				if overlaps(o, s) {
					errs = append(errs, fmt.Errorf(
						"run %d %s: optimizer step [%v,%v] overlaps %s [%v,%v]",
						o.Run, o.Lane, o.Start, o.End, s.Name, s.Start, s.End))
					break overlap
				}
			}
		}
	}

	// (2) every recovery episode ends in a restore from a valid generation.
	detections := q.Instants("fail", "detected")
	restores := q.Instants("ckpt", "restore-done")
	iters := q.Spans("train", "iter")
	// (2a) successful transparent-recovery episodes contain a valid restore.
	for _, ep := range q.Spans("core", "recovery") {
		if ep.Open || ep.Args["ok"] != "true" {
			continue
		}
		ok := false
		for _, r := range restores {
			if r.Run == ep.Run && r.T >= ep.Start && r.T <= ep.End && r.Args["valid"] == "true" {
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Errorf(
				"run %d: recovery episode [%v,%v] succeeded without a valid restore",
				ep.Run, ep.Start, ep.End))
			break
		}
	}
	// (2b) restarted incarnations restore (or acknowledge the fallback)
	// before resuming training.
	restoreSpans := q.Spans("ckpt", "restore")
incarnation:
	for _, inc := range q.Spans("core", "incarnation") {
		if inc.Args["gen"] == "" || inc.Args["gen"] == "0" {
			continue
		}
		incEnd := inc.End
		if inc.Open {
			incEnd = q.last
		}
		// First training iteration inside this incarnation.
		var firstIter vclock.Time = -1
		for _, it := range iters {
			if it.Run == inc.Run && it.Start >= inc.Start && it.Start <= incEnd &&
				(firstIter < 0 || it.Start < firstIter) {
				firstIter = it.Start
			}
		}
		if firstIter < 0 {
			continue // never resumed training: nothing to check
		}
		for _, r := range restores {
			if r.Run == inc.Run && r.T >= inc.Start && r.T <= firstIter && r.Args["valid"] == "true" {
				continue incarnation
			}
		}
		for _, rs := range restoreSpans {
			if rs.Run == inc.Run && !rs.Open && rs.End >= inc.Start && rs.End <= firstIter &&
				rs.Args["err"] != "" {
				continue incarnation // explicit fresh-start fallback
			}
		}
		errs = append(errs, fmt.Errorf(
			"run %d: incarnation gen=%s resumed training at %v without a restore",
			inc.Run, inc.Args["gen"], firstIter))
		break
	}

	// (3) JIT saves begin after detection.
	for _, s := range q.Spans("ckpt", "jit-save") {
		ok := false
		for _, d := range detections {
			if d.Run == s.Run && d.T <= s.Start {
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Errorf(
				"run %d %s: jit-save at %v precedes every failure detection",
				s.Run, s.Lane, s.Start))
			break
		}
	}

	// (5) elastic transitions happen only inside recovery episodes.
	shrinks := q.Instants("elastic", "shrink")
	expands := q.Instants("elastic", "expand")
	for _, s := range shrinks {
		ok := false
		for _, d := range detections {
			if d.Run == s.Run && d.T <= s.T {
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Errorf(
				"run %d: elastic shrink at %v precedes every failure detection", s.Run, s.T))
			break
		}
	}
	injects := q.Instants("fail", "inject")
	for _, e := range expands {
		ok := false
		for _, in := range injects {
			if in.Run == e.Run && in.T <= e.T && in.Args["kind"] == "node-repaired" {
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Errorf(
				"run %d: elastic expand at %v without a prior node-repaired injection", e.Run, e.T))
			break
		}
	}
	transitions := append(append([]InstRec(nil), shrinks...), expands...)
	incsByRun := make(map[int][]SpanRec)
	for _, inc := range q.Spans("core", "incarnation") {
		incsByRun[inc.Run] = append(incsByRun[inc.Run], inc)
	}
worlds:
	for run := 1; run <= q.runs; run++ {
		incs := incsByRun[run]
		for i := 1; i < len(incs); i++ {
			a, b := incs[i-1], incs[i]
			if a.Args["world"] == "" || b.Args["world"] == "" || a.Args["world"] == b.Args["world"] {
				continue
			}
			ok := false
			for _, t := range transitions {
				if t.Run == run && t.T >= a.Start && t.T <= b.Start {
					ok = true
					break
				}
			}
			if !ok {
				errs = append(errs, fmt.Errorf(
					"run %d: world size changed %s->%s between incarnations at %v and %v without an elastic transition",
					run, a.Args["world"], b.Args["world"], a.Start, b.Start))
				break worlds
			}
		}
	}

	// (6) elastic transitions alternate correctly per run.
	elastics := append(append([]InstRec(nil), transitions...), q.Instants("elastic", "end-degraded")...)
	sort.Slice(elastics, func(i, j int) bool { return elastics[i].Seq < elastics[j].Seq })
	closedRun := make(map[int]bool)
	for _, rs := range q.Spans("core", "run") {
		if !rs.Open {
			closedRun[rs.Run] = true
		}
	}
alternation:
	for run := 1; run <= q.runs; run++ {
		depth, ended := 0, false
		for _, ev := range elastics {
			if ev.Run != run {
				continue
			}
			if ended {
				errs = append(errs, fmt.Errorf(
					"run %d: elastic %s at %v after end-degraded", run, ev.Name, ev.T))
				break alternation
			}
			switch ev.Name {
			case "shrink":
				depth++
			case "expand":
				if depth == 0 {
					errs = append(errs, fmt.Errorf(
						"run %d: elastic expand at %v without a prior shrink", run, ev.T))
					break alternation
				}
				depth = 0
			case "end-degraded":
				if depth == 0 {
					errs = append(errs, fmt.Errorf(
						"run %d: end-degraded at %v while at full width", run, ev.T))
					break alternation
				}
				ended = true
			}
		}
		if depth > 0 && !ended && closedRun[run] {
			errs = append(errs, fmt.Errorf(
				"run %d: run finished degraded without an expand or end-degraded", run))
			break
		}
	}

	// (7) multi-step restores come only from committed generations.
	msCommits := q.Instants("ckpt", "ms-gen-commit")
	for _, r := range restores {
		if r.Args["valid"] != "true" || r.Args["src"] != "multistep" {
			continue
		}
		ok := false
		for _, c := range msCommits {
			if c.Run == r.Run && c.T <= r.T && c.Args["iter"] == r.Args["iter"] {
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Errorf(
				"run %d %s: multi-step restore of iter %s at %v without a committed generation",
				r.Run, r.Lane, r.Args["iter"], r.T))
			break
		}
	}

	// (8) stage-rebuild episodes end in a verified restore or an explicit
	// fallback (only enforced for runs whose core/run span closed — a log
	// cut at the horizon legitimately leaves rebuilds unresolved).
	closedRuns := make(map[int]bool)
	for _, rs := range q.Spans("core", "run") {
		if !rs.Open {
			closedRuns[rs.Run] = true
		}
	}
rebuilds:
	for _, rb := range q.Spans("pipe", "stage-rebuild") {
		if !closedRuns[rb.Run] {
			continue
		}
		for _, r := range restores {
			if r.Run == rb.Run && r.T >= rb.Start && r.Args["valid"] == "true" {
				continue rebuilds
			}
		}
		for _, rs := range restoreSpans {
			if rs.Run == rb.Run && !rs.Open && rs.End >= rb.Start && rs.Args["err"] != "" {
				continue rebuilds
			}
		}
		errs = append(errs, fmt.Errorf(
			"run %d %s: stage rebuild at %v never resolved into a restore or fallback",
			rb.Run, rb.Lane, rb.Start))
		break
	}

	if len(errs) == 0 {
		return nil
	}
	msg := "trace invariants violated:"
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// ReconcileAccounting checks that the scalar accounting a run reported
// agrees with the trace: useful + wasted must equal the traced wall time
// (the run's core/run span when present, else the last event time).
// Callers pass the values from metrics.Accounting; the signature takes
// plain times to keep trace free of a metrics dependency.
func ReconcileAccounting(q *Query, useful, wasted, wall vclock.Time) error {
	if useful < 0 || wasted < 0 {
		return fmt.Errorf("negative accounting: useful=%v wasted=%v", useful, wasted)
	}
	if got := useful + wasted; got != wall {
		return fmt.Errorf("accounting does not reconcile: useful %v + wasted %v = %v, wall %v",
			useful, wasted, got, wall)
	}
	if runs := q.Spans("core", "run"); len(runs) == 1 && !runs[0].Open {
		if runs[0].End-runs[0].Start != wall {
			return fmt.Errorf("traced run span %v disagrees with wall time %v",
				runs[0].End-runs[0].Start, wall)
		}
	}
	return nil
}
