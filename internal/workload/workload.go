// Package workload is the catalogue of the paper's experimental workloads
// (Table 2) plus the per-workload cost constants the simulator needs.
//
// Calibration: the simulator's free parameters (effective checkpoint
// bandwidth, NCCL bootstrap cost, CRIU snapshot time, fixed job-init time)
// are derived from the paper's own measurements in Tables 4–7, so the
// reproduction harness regenerates those tables mechanically rather than
// echoing constants: checkpoint time emerges from state size ÷ bandwidth,
// recovery time from teardown + rendezvous + replay, and so on. State
// sizes are computed from parameter counts at 16 bytes/parameter
// (fp16 weights + fp32 Adam moments + fp32 master copy, the Megatron
// mixed-precision layout), divided across pipeline/tensor/FSDP shards.
package workload

import (
	"fmt"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/cuda"
	"jitckpt/internal/nccl"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// BytesPerParam is the modelled training-state footprint per parameter.
const BytesPerParam = 16

// Workload is one Table 2 entry (or a GPU-type variant used by the
// transparent-recovery experiments of Tables 5–6).
type Workload struct {
	Name      string
	GPU       string // "V100-32GB" or "A100-80GB"
	ParamsB   float64
	Nodes     int
	PerNode   int
	Topo      train.Topology
	Framework string

	// Minibatch is the measured minibatch time (Tables 4–5).
	Minibatch vclock.Time

	// CkptTarget and RestoreTarget are the paper's measured per-rank
	// checkpoint and restore times (Table 4); the effective bandwidths
	// and fixed init times below are derived from them. Zero targets get
	// defaults.
	CkptTarget    vclock.Time
	RestoreTarget vclock.Time

	// NCCLInitBase/PerRank calibrate per-communicator bootstrap so that a
	// worker's total re-initialization (one world group plus its DP/TP/PP
	// or FSDP groups) matches Table 7's "recreate NCCL communicators"
	// step. Frameworks differ wildly: Megatron-DeepSpeed bootstrap is an
	// order of magnitude slower than HuggingFace/DDP.
	NCCLInitBase    vclock.Time
	NCCLInitPerRank vclock.Time

	// Teardown is Table 7's "delete communicators and GPU handles" step.
	Teardown vclock.Time

	// CRIU is the worker-process CPU checkpoint+restore time for hard
	// errors (§4.3, Table 6).
	CRIU vclock.Time

	// PeerLinkBW is the modelled point-to-point bandwidth (bytes/second)
	// from a rank to a peer node's CPU memory, used by the peer-shelter
	// replication tier. 0 selects the default (100 Gb/s-class datacenter
	// Ethernet/IB, ~12.5 GB/s — the link the gradient all-reduce already
	// crosses, which is what lets replication piggyback on it).
	PeerLinkBW float64

	// Logical model geometry for the real-math simulation.
	Layers, Hidden int
}

// GPUs returns the total GPU count.
func (w Workload) GPUs() int { return w.Nodes * w.PerNode }

// shardDivisor returns how many ways parameter state is divided per GPU.
func (w Workload) shardDivisor() int {
	div := w.Topo.P * w.Topo.T
	if w.Topo.FSDP() {
		div *= w.Topo.FSDPShard
	}
	return div
}

// StateBytesPerGPU is the parameter+optimizer footprint of one GPU.
func (w Workload) StateBytesPerGPU() int64 {
	return int64(w.ParamsB * 1e9 * BytesPerParam / float64(w.shardDivisor()))
}

// CkptBandwidth is the effective end-to-end checkpoint write bandwidth
// (GPU→host→store including serialization), derived from the Table 4
// measurement; ~1 GB/s default matches torch.save-class paths.
func (w Workload) CkptBandwidth() float64 {
	if w.CkptTarget <= 0 {
		return 1e9
	}
	return float64(w.StateBytesPerGPU()) / w.CkptTarget.Sec()
}

// RestoreBandwidth is the effective checkpoint read bandwidth (reads skip
// serialization, so ~2× the write path).
func (w Workload) RestoreBandwidth() float64 { return 2 * w.CkptBandwidth() }

// RestoreInit is the fixed job (re)initialization time inside the
// measured restore: everything that is not moving checkpoint bytes — the
// target minus the store read and the host-to-device copy.
func (w Workload) RestoreInit() vclock.Time {
	if w.RestoreTarget <= 0 {
		return 8 * vclock.Second
	}
	bytes := float64(w.StateBytesPerGPU())
	read := vclock.Time(bytes / w.RestoreBandwidth() * float64(vclock.Second))
	h2d := vclock.Time(bytes / w.CUDAParams().H2DBandwidth * float64(vclock.Second))
	init := w.RestoreTarget - read - h2d
	if init < 0 {
		init = 0
	}
	return init
}

// PeerLinkBandwidth returns the rank→peer-CPU-memory streaming bandwidth
// for the peer-shelter tier.
func (w Workload) PeerLinkBandwidth() float64 {
	if w.PeerLinkBW > 0 {
		return w.PeerLinkBW
	}
	return 12.5e9
}

// NCCLParams returns the interconnect parameters for this workload.
func (w Workload) NCCLParams() nccl.Params {
	p := nccl.DefaultParams()
	if w.NCCLInitBase > 0 {
		p.CommInitBase = w.NCCLInitBase
	}
	if w.NCCLInitPerRank > 0 {
		p.CommInitPerRank = w.NCCLInitPerRank
	}
	return p
}

// CUDAParams returns the device parameters (PCIe gen for the GPU type).
func (w Workload) CUDAParams() cuda.Params {
	p := cuda.DefaultParams()
	if w.GPU == "V100-32GB" {
		// PCIe gen3.
		p.H2DBandwidth = 12e9
		p.D2HBandwidth = 12e9
	}
	return p
}

// Checkpoint path decomposition: the calibrated end-to-end checkpoint
// bandwidth splits into three series legs — the PCIe D2H copy, CPU-side
// serialization (torch.save-class pickling), and the persistent-store
// write. Table 3 shows saving to tmpfs (which skips only the store write)
// shaves merely ~15% off PC_disk, so the store write gets a 0.15 share of
// the end-to-end time and serialization absorbs the rest after PCIe.
const storeWriteShare = 0.15

// SerializeBW returns the CPU serialization throughput in bytes/second.
func (w Workload) SerializeBW() float64 {
	bw := w.CkptBandwidth()
	pcie := w.CUDAParams().D2HBandwidth
	inv := (1-storeWriteShare)/bw - 1/pcie
	if inv <= 0 {
		return 1e15 // serialization negligible for this workload
	}
	return 1 / inv
}

// CkptStoreParams returns store parameters whose write path realizes the
// store-write share of the calibrated checkpoint bandwidth (PCIe and
// serialization are charged separately along the save path).
func (w Workload) CkptStoreParams() checkpoint.StoreParams {
	storeBW := w.CkptBandwidth() / storeWriteShare
	return checkpoint.StoreParams{WriteBW: storeBW, ReadBW: w.RestoreBandwidth(), Latency: vclock.Millisecond}
}

// TrainModel returns the logical training model with modelled state sizes
// attached (params:optimizer split 1:2, the Adam ratio).
func (w Workload) TrainModel() train.ModelSpec {
	state := w.StateBytesPerGPU()
	return train.ModelSpec{
		Layers:           w.Layers,
		Hidden:           w.Hidden,
		Seed:             42,
		ParamBytesPerGPU: state / 3,
		OptBytesPerGPU:   state * 2 / 3,
	}
}

// StepTime returns per-layer kernel durations matching the measured
// minibatch time.
func (w Workload) StepTime() train.StepTime {
	return train.Uniform(w.Minibatch, w.Layers)
}

// Optimizer returns the optimizer spec (Adam everywhere, as in the
// paper's jobs).
func (w Workload) Optimizer() train.OptimizerSpec { return train.DefaultOptimizer() }

const (
	sec = vclock.Second
	ms  = vclock.Millisecond
)

// Catalog returns every workload: the ten Table 2 entries plus the
// GPU-type variants Tables 5–6 measure.
func Catalog() []Workload {
	return []Workload{
		{
			Name: "GPT2-S", GPU: "A100-80GB", ParamsB: 0.124, Nodes: 1, PerNode: 4,
			Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "Megatron-DS",
			Minibatch: 629 * ms, CkptTarget: vclock.Seconds(3.8), RestoreTarget: vclock.Seconds(7.2),
			NCCLInitBase: vclock.Seconds(5.15), NCCLInitPerRank: 25 * ms, Teardown: 779 * ms,
			CRIU: 8 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "GPT2-S-3D", GPU: "V100-32GB", ParamsB: 0.124, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 2, P: 2, T: 2}, Framework: "Megatron-DS",
			Minibatch: 209 * ms, CkptTarget: vclock.Seconds(1.2), RestoreTarget: vclock.Seconds(6.5),
			NCCLInitBase: vclock.Seconds(3.80), NCCLInitPerRank: 25 * ms, Teardown: 831 * ms,
			CRIU: 6 * sec, Layers: 4, Hidden: 8,
		},
		{
			Name: "GPT2-XL", GPU: "V100-32GB", ParamsB: 1.5, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 2, P: 2, T: 2}, Framework: "Megatron-DS",
			Minibatch: 2632 * ms, CkptTarget: vclock.Seconds(6.7), RestoreTarget: vclock.Seconds(14.0),
			NCCLInitBase: vclock.Seconds(3.80), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 16 * sec, Layers: 4, Hidden: 8,
		},
		{
			Name: "GPT2-8B", GPU: "V100-32GB", ParamsB: 8.3, Nodes: 2, PerNode: 8,
			Topo: train.Topology{D: 2, P: 4, T: 2}, Framework: "Megatron-DS",
			Minibatch: 2953 * ms, CkptTarget: vclock.Seconds(18.8), RestoreTarget: vclock.Seconds(28.6),
			NCCLInitBase: vclock.Seconds(3.80), NCCLInitPerRank: 25 * ms, Teardown: 900 * ms,
			CRIU: 18 * sec, Layers: 4, Hidden: 8,
		},
		{
			Name: "GPT2-18B", GPU: "V100-32GB", ParamsB: 18, Nodes: 4, PerNode: 8,
			Topo: train.Topology{D: 2, P: 4, T: 4}, Framework: "Megatron-DS",
			Minibatch: 3474 * ms, CkptTarget: vclock.Seconds(20.5), RestoreTarget: vclock.Seconds(34.2),
			NCCLInitBase: vclock.Seconds(3.80), NCCLInitPerRank: 25 * ms, Teardown: 950 * ms,
			CRIU: 20 * sec, Layers: 4, Hidden: 8,
		},
		{
			Name: "BERT-L-PT", GPU: "V100-32GB", ParamsB: 0.334, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "Megatron",
			Minibatch: 418 * ms, CkptTarget: vclock.Seconds(5.0), RestoreTarget: vclock.Seconds(9.9),
			NCCLInitBase: vclock.Seconds(1.20), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 16 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "BERT-B-FT", GPU: "V100-32GB", ParamsB: 0.110, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "HuggingFace",
			Minibatch: 416 * ms, CkptTarget: vclock.Seconds(1.4), RestoreTarget: vclock.Seconds(8.8),
			NCCLInitBase: vclock.Seconds(0.33), NCCLInitPerRank: 25 * ms, Teardown: 1013 * ms,
			CRIU: 17 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "T5-3B", GPU: "A100-80GB", ParamsB: 3, Nodes: 2, PerNode: 4,
			Topo: train.Topology{D: 8, P: 1, T: 1, FSDPShard: 4}, Framework: "PyTorch-FSDP",
			Minibatch: 498 * ms, CkptTarget: vclock.Seconds(7.6), RestoreTarget: vclock.Seconds(35.25),
			NCCLInitBase: vclock.Seconds(1.00), NCCLInitPerRank: 25 * ms, Teardown: 900 * ms,
			CRIU: 12 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "ViT", GPU: "V100-32GB", ParamsB: 0.632, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "PyTorch",
			Minibatch: 292 * ms, CkptTarget: vclock.Seconds(4.6), RestoreTarget: vclock.Seconds(20.2),
			NCCLInitBase: vclock.Seconds(0.33), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 15 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "PyramidNet", GPU: "A100-80GB", ParamsB: 0.24, Nodes: 1, PerNode: 4,
			Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "PyTorch",
			Minibatch: 451 * ms, CkptTarget: vclock.Seconds(3.1), RestoreTarget: vclock.Seconds(12),
			NCCLInitBase: vclock.Seconds(0.45), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 10 * sec, Layers: 2, Hidden: 8,
		},

		// GPU-type variants used by Tables 5–6.
		{
			Name: "BERT-B-FT/V100x8", GPU: "V100-32GB", ParamsB: 0.110, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "HuggingFace",
			Minibatch: 279 * ms, CkptTarget: vclock.Seconds(1.4), RestoreTarget: vclock.Seconds(8.8),
			NCCLInitBase: vclock.Seconds(0.33), NCCLInitPerRank: 25 * ms, Teardown: 1013 * ms,
			CRIU: 22 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "GPT2-S/V100x8", GPU: "V100-32GB", ParamsB: 0.124, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "Megatron-DS",
			Minibatch: 270 * ms, CkptTarget: vclock.Seconds(3.8), RestoreTarget: vclock.Seconds(7.2),
			NCCLInitBase: vclock.Seconds(3.97), NCCLInitPerRank: 25 * ms, Teardown: 779 * ms,
			CRIU: 10 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "PyramidNet/V100x8", GPU: "V100-32GB", ParamsB: 0.24, Nodes: 1, PerNode: 8,
			Topo: train.Topology{D: 8, P: 1, T: 1}, Framework: "PyTorch",
			Minibatch: 315 * ms, CkptTarget: vclock.Seconds(3.1), RestoreTarget: vclock.Seconds(12),
			NCCLInitBase: vclock.Seconds(0.32), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 32 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "BERT-B-FT/A100x4", GPU: "A100-80GB", ParamsB: 0.110, Nodes: 1, PerNode: 4,
			Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "HuggingFace",
			Minibatch: 79 * ms, CkptTarget: vclock.Seconds(1.0), RestoreTarget: vclock.Seconds(6),
			NCCLInitBase: vclock.Seconds(0.75), NCCLInitPerRank: 25 * ms, Teardown: 900 * ms,
			CRIU: 14 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "GPT2-S/A100x4", GPU: "A100-80GB", ParamsB: 0.124, Nodes: 1, PerNode: 4,
			Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "Megatron-DS",
			Minibatch: 343 * ms, CkptTarget: vclock.Seconds(3.0), RestoreTarget: vclock.Seconds(6.5),
			NCCLInitBase: vclock.Seconds(5.15), NCCLInitPerRank: 25 * ms, Teardown: 800 * ms,
			CRIU: 2 * sec, Layers: 2, Hidden: 8,
		},
		{
			Name: "PyramidNet/A100x4", GPU: "A100-80GB", ParamsB: 0.24, Nodes: 1, PerNode: 4,
			Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "PyTorch",
			Minibatch: 451 * ms, CkptTarget: vclock.Seconds(3.1), RestoreTarget: vclock.Seconds(12),
			NCCLInitBase: vclock.Seconds(0.45), NCCLInitPerRank: 25 * ms, Teardown: 850 * ms,
			CRIU: 23 * sec, Layers: 2, Hidden: 8,
		},
	}
}

// ByName looks a workload up by name.
func ByName(name string) (Workload, error) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Table2Names returns the ten primary Table 2 workloads, in paper order.
func Table2Names() []string {
	return []string{
		"GPT2-S", "GPT2-S-3D", "GPT2-XL", "GPT2-8B", "GPT2-18B",
		"BERT-L-PT", "BERT-B-FT", "T5-3B", "ViT", "PyramidNet",
	}
}
