package workload

import (
	"testing"

	"jitckpt/internal/vclock"
)

func TestCatalogCoversTable2(t *testing.T) {
	for _, name := range Table2Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("missing Table 2 workload %s", name)
		}
		if err := w.Topo.Validate(); err != nil {
			t.Errorf("%s topology: %v", name, err)
		}
		if w.GPUs() != w.Topo.World() {
			t.Errorf("%s: %d GPUs but world %d", name, w.GPUs(), w.Topo.World())
		}
		if w.Minibatch <= 0 {
			t.Errorf("%s: no minibatch time", name)
		}
		if w.Layers%w.Topo.P != 0 {
			t.Errorf("%s: layers %d not divisible by P %d", name, w.Layers, w.Topo.P)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable2Geometry(t *testing.T) {
	// Spot-check against the paper's Table 2.
	w, _ := ByName("GPT2-18B")
	if w.GPUs() != 32 || w.Topo.D != 2 || w.Topo.P != 4 || w.Topo.T != 4 {
		t.Fatalf("GPT2-18B geometry wrong: %+v", w.Topo)
	}
	if w.Topo.String() != "2D-4P-4T" {
		t.Fatalf("notation = %s", w.Topo.String())
	}
	t5, _ := ByName("T5-3B")
	if !t5.Topo.FSDP() || t5.Topo.FSDPGroups() != 2 {
		t.Fatalf("T5-3B should be hybrid-sharded FSDP across 2 nodes: %+v", t5.Topo)
	}
}

func TestStateBytesScaleWithParams(t *testing.T) {
	small, _ := ByName("BERT-B-FT")
	big, _ := ByName("GPT2-18B")
	if small.StateBytesPerGPU() >= big.StateBytesPerGPU() {
		t.Fatal("per-GPU state should grow with model size")
	}
	// GPT2-18B: 18e9 params / (4P*4T) * 16 B = 18 GB per GPU.
	want := int64(18e9 / 16 * 16)
	got := big.StateBytesPerGPU()
	if got < want*9/10 || got > want*11/10 {
		t.Fatalf("GPT2-18B state = %d, want ~%d", got, want)
	}
}

func TestCalibrationRecoversCkptTargets(t *testing.T) {
	// Writing StateBytes at the derived bandwidth must take about the
	// paper's Table 4 checkpoint time.
	for _, name := range []string{"BERT-L-PT", "GPT2-XL", "GPT2-8B", "GPT2-18B"} {
		w, _ := ByName(name)
		simulated := vclock.Seconds(float64(w.StateBytesPerGPU()) / w.CkptBandwidth())
		if diff := simulated - w.CkptTarget; diff < -w.CkptTarget/10 || diff > w.CkptTarget/10 {
			t.Errorf("%s: calibrated ckpt %v vs target %v", name, simulated, w.CkptTarget)
		}
	}
}

func TestRestoreInitNonNegative(t *testing.T) {
	for _, w := range Catalog() {
		if w.RestoreInit() < 0 {
			t.Errorf("%s: negative restore init", w.Name)
		}
		read := vclock.Seconds(float64(w.StateBytesPerGPU()) / w.RestoreBandwidth())
		h2d := vclock.Seconds(float64(w.StateBytesPerGPU()) / w.CUDAParams().H2DBandwidth)
		total := read + h2d + w.RestoreInit()
		if w.RestoreTarget > 0 {
			if diff := total - w.RestoreTarget; diff < -vclock.Second || diff > vclock.Second {
				t.Errorf("%s: restore decomposition %v vs target %v", w.Name, total, w.RestoreTarget)
			}
		}
	}
}

func TestNCCLCalibrationOrdering(t *testing.T) {
	// Megatron-DS jobs re-create communicators much slower than
	// HF/PyTorch jobs (Table 7: 8.34 s vs ~1.0 s).
	gpt, _ := ByName("GPT2-S/V100x8")
	bert, _ := ByName("BERT-B-FT/V100x8")
	if gpt.NCCLParams().CommInitBase <= 3*bert.NCCLParams().CommInitBase {
		t.Fatal("Megatron-DS comm init should dwarf HuggingFace's")
	}
}

func TestCUDAParamsPerGPUKind(t *testing.T) {
	v100, _ := ByName("BERT-L-PT")
	a100, _ := ByName("GPT2-S")
	if v100.CUDAParams().D2HBandwidth >= a100.CUDAParams().D2HBandwidth {
		t.Fatal("V100 PCIe should be slower than A100")
	}
}

func TestVariantsExist(t *testing.T) {
	for _, name := range []string{"BERT-B-FT/V100x8", "GPT2-S/V100x8", "PyramidNet/V100x8",
		"BERT-B-FT/A100x4", "GPT2-S/A100x4", "PyramidNet/A100x4"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing variant %s", name)
		}
	}
}

func TestCkptStoreParamsSeriesComposition(t *testing.T) {
	// The end-to-end checkpoint path is PCIe D2H + serialization + store
	// write; the three legs must reconstruct the calibrated Table 4 time.
	w, _ := ByName("BERT-L-PT")
	sp := w.CkptStoreParams()
	pcie := w.CUDAParams().D2HBandwidth
	bytes := float64(w.StateBytesPerGPU())
	endToEnd := bytes/pcie + bytes/w.SerializeBW() + bytes/sp.WriteBW
	target := w.CkptTarget.Sec()
	if endToEnd < target*0.9 || endToEnd > target*1.1 {
		t.Fatalf("series composition gives %.2fs, target %.2fs", endToEnd, target)
	}
	// The store-write leg alone is the small share tmpfs saves (Table 3:
	// PC_mem ≈ 0.85 × PC_disk).
	if share := (bytes / sp.WriteBW) / target; share < 0.1 || share > 0.2 {
		t.Fatalf("store-write share = %.2f, want ~0.15", share)
	}
}
