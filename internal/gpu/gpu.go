// Package gpu models the GPU hardware that the simulated cluster exposes to
// the CUDA-like driver layer: devices with memory, ordered execution
// streams, and a health state machine covering the failure classes the
// paper's recovery mechanisms distinguish (§4.2, §4.3).
//
// Two deliberate modelling choices:
//
//   - Buffers carry both a modelled byte size (ModelBytes, used for transfer
//     and checkpoint timing at paper scale) and real float32 contents (Data,
//     used to verify recovery preserves training semantics bit for bit). A
//     simulated 1.5B-parameter model times its checkpoints as 18 GB while
//     its verifiable payload is a few thousand floats.
//
//   - Each stream is a virtual-time process executing enqueued operations
//     strictly in order. Kernel launches are therefore asynchronous with
//     respect to the issuing worker, hangs at collectives are real hangs
//     (the stream process blocks forever), and cudaStreamWaitEvent is an
//     operation that blocks the stream, not the host.
package gpu

import (
	"errors"
	"fmt"
	"sort"

	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Health is the device health state.
type Health int

// Device health states, ordered roughly by severity. They map onto the
// paper's recovery strategies: DriverCorrupt is cleared by restarting the
// device proxy, Sticky requires a device reset and replica state copy, and
// Hard requires migrating the worker to a different GPU.
const (
	Healthy       Health = iota
	DriverCorrupt        // device accessible, driver/network state suspect
	Sticky               // CUDA "sticky" error: every subsequent op fails
	Hard                 // unrecoverable hardware failure: device lost
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case DriverCorrupt:
		return "driver-corrupt"
	case Sticky:
		return "sticky-error"
	case Hard:
		return "hard-failure"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Errors returned by device operations.
var (
	ErrDeviceLost  = errors.New("gpu: device lost (hard failure)")
	ErrSticky      = errors.New("gpu: sticky error, context corrupted")
	ErrCorrupt     = errors.New("gpu: driver state corrupted")
	ErrOutOfMemory = errors.New("gpu: out of device memory")
	ErrNoSuchBuf   = errors.New("gpu: no such buffer")
	ErrNoSuchQueue = errors.New("gpu: no such stream")
)

// Buffer is a device memory allocation.
type Buffer struct {
	ID         int
	ModelBytes int64         // modelled size, drives transfer timing
	Data       tensor.Vector // real contents, drives correctness checks
	Tag        string        // allocation call-site tag (checkpoint naming, §4.3)
	Seq        int           // per-tag allocation sequence number
}

// Op is one unit of work on a stream. Run executes in the stream's process:
// it may sleep to model compute time and may block on events (collectives do
// both). When Run is nil, the stream sleeps Dur and then calls Exec — the
// common kernel/memcpy shape, expressible without a wrapper closure. Done
// triggers when the op completes (it stays nil for fire-and-forget ops
// enqueued with EnqueueAsync); Err carries the outcome.
type Op struct {
	Name string
	// NameFn lazily produces the op's trace name when Name is empty. It is
	// only invoked when a trace recorder is attached, so pooled hot-path
	// ops skip name formatting entirely on untraced runs.
	NameFn func() string
	Run    func(p *vclock.Proc, dev *Device) error
	// Dur and Exec are the declarative form of Run: sleep Dur, then apply
	// Exec (which may be nil) to the device at completion time.
	Dur  vclock.Time
	Exec func(dev *Device) error
	Done *vclock.Event
	Err  error
	// Free, when set, is called by the stream after the op fully completes;
	// pooled ops use it to return themselves to their owner's free list.
	// Ops with a Free hook must not be retained or re-read by the issuer.
	Free func()
}

// name resolves the op's display name for tracing.
func (op *Op) name() string {
	if op.Name != "" {
		return op.Name
	}
	if op.NameFn != nil {
		return op.NameFn()
	}
	return "op"
}

// Stream is an in-order execution queue on a device.
type Stream struct {
	ID      int
	dev     *Device
	q       *vclock.Queue[*Op]
	proc    *vclock.Proc
	pending int
	drain   *vclock.Event
	// asyncErr is the first error any op on this stream completed with.
	// Like NCCL's async communicator errors, it does not interrupt the
	// stream; it is surfaced when someone synchronizes with the stream
	// (or records an event on it) and sticks until the stream is
	// destroyed.
	asyncErr error
}

// AsyncErr returns the first error any op on this stream completed with,
// nil if all ops so far succeeded.
func (s *Stream) AsyncErr() error { return s.asyncErr }

// Device is a single simulated GPU.
type Device struct {
	env    *vclock.Env
	NodeID int
	Index  int

	health     Health
	buffers    map[int]*Buffer
	nextBufID  int
	tagSeq     map[string]int
	streams    map[int]*Stream
	nextStream int
	memUsed    int64
	memCap     int64
	lane       string
}

// NewDevice creates a healthy device with memCap bytes of modelled memory.
func NewDevice(env *vclock.Env, nodeID, index int, memCap int64) *Device {
	return &Device{
		env:     env,
		NodeID:  nodeID,
		Index:   index,
		health:  Healthy,
		buffers: make(map[int]*Buffer),
		tagSeq:  make(map[string]int),
		streams: make(map[int]*Stream),
		memCap:  memCap,
		lane:    fmt.Sprintf("n%d.g%d", nodeID, index),
	}
}

// Name returns a stable diagnostic identifier.
func (d *Device) Name() string { return fmt.Sprintf("gpu[n%d.g%d]", d.NodeID, d.Index) }

// Lane returns the device's trace-lane name ("n0.g1").
func (d *Device) Lane() string { return d.lane }

// Env returns the simulation environment.
func (d *Device) Env() *vclock.Env { return d.env }

// Health returns the current health state.
func (d *Device) Health() Health { return d.health }

// Accessible reports whether API calls can reach the device at all.
func (d *Device) Accessible() bool { return d.health != Hard }

// MemUsed returns the modelled bytes currently allocated.
func (d *Device) MemUsed() int64 { return d.memUsed }

// PendingOps returns the number of enqueued-but-incomplete operations
// across all streams. Zero on a healthy device means the GPU has executed
// everything the host issued — the recovery controller's signal that the
// device's state is at a minibatch boundary.
func (d *Device) PendingOps() int {
	n := 0
	for _, s := range d.streams {
		n += s.pending
	}
	return n
}

// MemCap returns the modelled memory capacity in bytes.
func (d *Device) MemCap() int64 { return d.memCap }

// healthErr maps the current health to the error API calls should return,
// or nil when the device accepts work.
func (d *Device) healthErr() error {
	switch d.health {
	case Hard:
		return ErrDeviceLost
	case Sticky:
		return ErrSticky
	default:
		return nil
	}
}

// Alloc allocates a buffer of modelBytes modelled size holding elems real
// float32 elements. tag identifies the allocation call-site; the (tag, seq,
// size) triple is the replica-consistent checkpoint name from §4.3.
func (d *Device) Alloc(modelBytes int64, elems int, tag string) (*Buffer, error) {
	if err := d.healthErr(); err != nil {
		return nil, err
	}
	if d.memUsed+modelBytes > d.memCap {
		return nil, fmt.Errorf("%w: want %d, used %d of %d", ErrOutOfMemory, modelBytes, d.memUsed, d.memCap)
	}
	b := &Buffer{
		ID:         d.nextBufID,
		ModelBytes: modelBytes,
		Data:       tensor.NewVector(elems),
		Tag:        tag,
		Seq:        d.tagSeq[tag],
	}
	d.nextBufID++
	d.tagSeq[tag]++
	d.buffers[b.ID] = b
	d.memUsed += modelBytes
	return b, nil
}

// Free releases a buffer.
func (d *Device) Free(id int) error {
	if d.health == Hard {
		return ErrDeviceLost
	}
	b, ok := d.buffers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchBuf, id)
	}
	d.memUsed -= b.ModelBytes
	delete(d.buffers, id)
	return nil
}

// Buf looks up a buffer by ID.
func (d *Device) Buf(id int) (*Buffer, error) {
	b, ok := d.buffers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchBuf, id)
	}
	return b, nil
}

// Buffers returns all live buffers sorted by ID (deterministic iteration).
func (d *Device) Buffers() []*Buffer {
	out := make([]*Buffer, 0, len(d.buffers))
	for _, b := range d.buffers {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FreeWhere frees every buffer for which pred returns true and returns the
// number freed. Recovery strategy 1 (§4.2) uses this to discard activation
// and gradient buffers while retaining parameter and optimizer state.
func (d *Device) FreeWhere(pred func(*Buffer) bool) int {
	n := 0
	for _, b := range d.Buffers() {
		if pred(b) {
			d.memUsed -= b.ModelBytes
			delete(d.buffers, b.ID)
			n++
		}
	}
	return n
}

// NewStream creates an execution stream and starts its process.
func (d *Device) NewStream() (*Stream, error) {
	if err := d.healthErr(); err != nil {
		return nil, err
	}
	s := &Stream{
		ID:  d.nextStream,
		dev: d,
		q:   vclock.NewQueue[*Op](d.env, fmt.Sprintf("%s.s%d.q", d.Name(), d.nextStream)),
	}
	d.nextStream++
	d.streams[s.ID] = s
	s.proc = d.env.Go(fmt.Sprintf("%s.s%d", d.Name(), s.ID), s.run)
	return s, nil
}

// Stream looks up a stream by ID.
func (d *Device) Stream(id int) (*Stream, error) {
	s, ok := d.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchQueue, id)
	}
	return s, nil
}

// DestroyStream kills a stream's process and forgets it.
func (d *Device) DestroyStream(id int) error {
	s, ok := d.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchQueue, id)
	}
	s.proc.Kill()
	delete(d.streams, id)
	return nil
}

// InjectHard makes the device fail hard: every stream process is killed so
// in-flight and queued operations never complete, and all subsequent API
// calls return ErrDeviceLost.
func (d *Device) InjectHard() {
	d.health = Hard
	for _, id := range d.streamIDs() {
		d.streams[id].proc.Kill()
	}
	d.env.Tracef("%s hard failure injected", d.Name())
	trace.Of(d.env).Instant(d.env.Now(), "gpu", d.lane, "inject-hard")
}

// InjectSticky puts the device in the CUDA sticky-error state: queued and
// future operations complete immediately with ErrSticky and API calls fail
// until the device is reset.
func (d *Device) InjectSticky() {
	if d.health == Hard {
		return
	}
	d.health = Sticky
	d.env.Tracef("%s sticky error injected", d.Name())
	trace.Of(d.env).Instant(d.env.Now(), "gpu", d.lane, "inject-sticky")
}

// InjectDriverCorrupt marks driver state as suspect: operations still
// execute, but the recovery layer is expected to restart the device proxy
// and reset the device before trusting it again.
func (d *Device) InjectDriverCorrupt() {
	if d.health == Hard {
		return
	}
	d.health = DriverCorrupt
	d.env.Tracef("%s driver corruption injected", d.Name())
	trace.Of(d.env).Instant(d.env.Now(), "gpu", d.lane, "inject-corrupt")
}

// Reset clears a non-hard device back to health: all streams are destroyed
// (queued work is dropped) and sticky/corrupt states are cleared. Buffers
// are NOT freed; callers choose what survives via Free/FreeWhere. Reset of
// a hard-failed device returns ErrDeviceLost — hardware does not come back.
func (d *Device) Reset() error {
	if d.health == Hard {
		return ErrDeviceLost
	}
	for _, id := range d.streamIDs() {
		d.streams[id].proc.Kill()
		delete(d.streams, id)
	}
	d.health = Healthy
	d.env.Tracef("%s reset", d.Name())
	trace.Of(d.env).Instant(d.env.Now(), "gpu", d.lane, "reset")
	return nil
}

// Repair models a hardware replacement: the failed board is swapped and
// the slot comes back as a blank healthy device. Unlike Reset it is legal
// on hard-failed devices — it is precisely how hardware "comes back" —
// and it clears everything: streams (killed), buffers, tag sequences and
// memory accounting. Callers restore state from checkpoints afterwards.
func (d *Device) Repair() {
	for _, id := range d.streamIDs() {
		d.streams[id].proc.Kill()
		delete(d.streams, id)
	}
	d.buffers = make(map[int]*Buffer)
	d.tagSeq = make(map[string]int)
	d.memUsed = 0
	d.health = Healthy
	d.env.Tracef("%s repaired (hardware replaced)", d.Name())
	trace.Of(d.env).Instant(d.env.Now(), "gpu", d.lane, "repair")
}

func (d *Device) streamIDs() []int {
	ids := make([]int, 0, len(d.streams))
	for id := range d.streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Enqueue appends an op to the stream. It returns the op's completion event.
// Enqueue never blocks the caller: launches are asynchronous, as on real
// hardware. Enqueueing onto a hard-failed device is permitted (the op will
// simply never complete), matching how an async launch into a dying context
// behaves.
func (s *Stream) Enqueue(op *Op) *vclock.Event {
	if op.Done == nil {
		op.Done = s.dev.env.NewEvent("op." + op.Name)
	}
	s.pending++
	s.q.Push(op)
	return op.Done
}

// EnqueueAsync appends a fire-and-forget op: no completion event is
// created, so callers that never wait on the op (kernel launches, async
// memcpys, collectives whose completion is observed via stream sync) pay
// no per-op event allocation. Completion is still observable through
// Pending, DrainEvent, and AsyncErr.
func (s *Stream) EnqueueAsync(op *Op) {
	s.pending++
	s.q.Push(op)
}

// Pending returns the number of enqueued-but-incomplete ops.
func (s *Stream) Pending() int { return s.pending }

// DrainEvent returns an event that triggers when every op enqueued so far
// has completed. On an idle stream it is already triggered.
func (s *Stream) DrainEvent() *vclock.Event {
	if s.pending == 0 {
		return s.dev.env.DoneEvent()
	}
	if s.drain == nil || s.drain.Triggered() {
		s.drain = s.dev.env.NewEvent(fmt.Sprintf("%s.s%d.drain", s.dev.Name(), s.ID))
	}
	return s.drain
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// run is the stream process body: execute ops strictly in order.
func (s *Stream) run(p *vclock.Proc) {
	for {
		op := s.q.Pop(p)
		rec := trace.Of(s.dev.env)
		switch s.dev.health {
		case Hard:
			// Unreachable in practice (hard failure kills this process),
			// but guard anyway: hang forever.
			p.Wait(s.dev.env.NewEvent("dead-device"))
		case Sticky:
			if rec != nil {
				rec.Instant(p.Now(), "gpu", s.dev.lane, "sticky-err", "op", op.name())
			}
			op.Err = ErrSticky
			s.finish(op)
			continue
		}
		var sp trace.Span
		if rec != nil {
			sp = rec.Begin(p.Now(), "gpu", s.dev.lane, op.name())
		}
		var err error
		if op.Run != nil {
			err = op.Run(p, s.dev)
		} else {
			p.Sleep(op.Dur)
			if op.Exec != nil {
				err = op.Exec(s.dev)
			}
		}
		sp.End(p.Now())
		if s.dev.health == Hard {
			// Device died while the op was executing: never complete.
			p.Wait(s.dev.env.NewEvent("died-mid-op"))
		}
		if err == nil && s.dev.health == Sticky {
			err = ErrSticky
		}
		op.Err = err
		if err != nil && s.asyncErr == nil {
			s.asyncErr = err
		}
		s.finish(op)
	}
}

// finish triggers the op's completion event (if any), updates stream
// accounting, and returns pooled ops to their owner.
func (s *Stream) finish(op *Op) {
	if op.Done != nil {
		op.Done.Trigger()
	}
	s.complete()
	if op.Free != nil {
		op.Free()
	}
}

func (s *Stream) complete() {
	s.pending--
	if s.pending == 0 && s.drain != nil && !s.drain.Triggered() {
		s.drain.Trigger()
	}
}

// SleepOp returns an op that models pure compute time.
func SleepOp(name string, dur vclock.Time) *Op {
	return &Op{Name: name, Dur: dur}
}

// FuncOp returns an op that sleeps dur then applies fn to the device. fn
// runs at op completion time, which is where kernels mutate buffer contents.
func FuncOp(name string, dur vclock.Time, fn func(dev *Device) error) *Op {
	return &Op{Name: name, Dur: dur, Exec: fn}
}

// Node is a host machine with attached devices.
type Node struct {
	ID      int
	Devices []*Device
	// Failed marks whole-host failures (rare per the paper's failure data,
	// but the control plane handles them by excluding the node).
	Failed bool
}

// Cluster is the set of nodes available to a job, plus spares.
type Cluster struct {
	env   *vclock.Env
	Nodes []*Node
}

// NewCluster builds nodes*gpus devices, each with memCap bytes.
func NewCluster(env *vclock.Env, nodes, gpusPerNode int, memCap int64) *Cluster {
	c := &Cluster{env: env}
	for n := 0; n < nodes; n++ {
		node := &Node{ID: n}
		for g := 0; g < gpusPerNode; g++ {
			node.Devices = append(node.Devices, NewDevice(env, n, g, memCap))
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Env returns the simulation environment.
func (c *Cluster) Env() *vclock.Env { return c.env }

// Device returns device g on node n.
func (c *Cluster) Device(n, g int) *Device { return c.Nodes[n].Devices[g] }

// AllDevices returns every device in node-major order.
func (c *Cluster) AllDevices() []*Device {
	var out []*Device
	for _, n := range c.Nodes {
		out = append(out, n.Devices...)
	}
	return out
}

// TransferTime returns the virtual time to move bytes at bw bytes/second,
// with a minimum of one microsecond for any non-empty transfer.
func TransferTime(bytes int64, bw float64) vclock.Time {
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	t := vclock.Time(float64(bytes) / bw * float64(vclock.Second))
	if t < vclock.Microsecond {
		t = vclock.Microsecond
	}
	return t
}
