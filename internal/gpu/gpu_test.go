package gpu

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"jitckpt/internal/vclock"
)

func newTestDevice(t *testing.T) (*vclock.Env, *Device) {
	t.Helper()
	env := vclock.NewEnv(1)
	return env, NewDevice(env, 0, 0, 1<<30)
}

func TestAllocFreeAccounting(t *testing.T) {
	_, d := newTestDevice(t)
	b, err := d.Alloc(1<<20, 16, "weights")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 1<<20 {
		t.Fatalf("MemUsed = %d, want 1MiB", d.MemUsed())
	}
	if len(b.Data) != 16 {
		t.Fatalf("Data len = %d, want 16", len(b.Data))
	}
	if err := d.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after free = %d", d.MemUsed())
	}
	if err := d.Free(b.ID); !errors.Is(err, ErrNoSuchBuf) {
		t.Fatalf("double free err = %v", err)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	env := vclock.NewEnv(1)
	d := NewDevice(env, 0, 0, 100)
	if _, err := d.Alloc(101, 0, "big"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
}

func TestAllocTagSequence(t *testing.T) {
	_, d := newTestDevice(t)
	a, _ := d.Alloc(8, 1, "layer1.w")
	b, _ := d.Alloc(8, 1, "layer1.w")
	c, _ := d.Alloc(8, 1, "layer2.w")
	if a.Seq != 0 || b.Seq != 1 || c.Seq != 0 {
		t.Fatalf("seqs = %d,%d,%d want 0,1,0", a.Seq, b.Seq, c.Seq)
	}
}

func TestStreamExecutesInOrder(t *testing.T) {
	env, d := newTestDevice(t)
	s, err := d.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var times []vclock.Time
	env.Go("issuer", func(p *vclock.Proc) {
		// Longer op first: in-order execution means the short op still
		// finishes second.
		e1 := s.Enqueue(FuncOp("long", vclock.Seconds(2), func(*Device) error {
			order = append(order, "long")
			return nil
		}))
		e2 := s.Enqueue(FuncOp("short", vclock.Millisecond, func(*Device) error {
			order = append(order, "short")
			return nil
		}))
		p.Wait(e1)
		times = append(times, p.Now())
		p.Wait(e2)
		times = append(times, p.Now())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "long" || order[1] != "short" {
		t.Fatalf("order = %v", order)
	}
	if times[0] != vclock.Seconds(2) || times[1] != vclock.Seconds(2)+vclock.Millisecond {
		t.Fatalf("completion times = %v", times)
	}
}

func TestParallelStreamsOverlap(t *testing.T) {
	env, d := newTestDevice(t)
	s1, _ := d.NewStream()
	s2, _ := d.NewStream()
	var finished vclock.Time
	env.Go("issuer", func(p *vclock.Proc) {
		e1 := s1.Enqueue(SleepOp("compute", vclock.Seconds(3)))
		e2 := s2.Enqueue(SleepOp("comm", vclock.Seconds(3)))
		p.Wait(e1)
		p.Wait(e2)
		finished = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != vclock.Seconds(3) {
		t.Fatalf("finished at %v, want 3s (parallel), not 6s (serial)", finished)
	}
}

func TestDrainEvent(t *testing.T) {
	env, d := newTestDevice(t)
	s, _ := d.NewStream()
	var syncAt vclock.Time
	env.Go("issuer", func(p *vclock.Proc) {
		s.Enqueue(SleepOp("a", vclock.Second))
		s.Enqueue(SleepOp("b", vclock.Second))
		p.Wait(s.DrainEvent())
		syncAt = p.Now()
		// Idle stream: drain returns immediately.
		p.Wait(s.DrainEvent())
		if p.Now() != syncAt {
			t.Error("drain on idle stream blocked")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if syncAt != vclock.Seconds(2) {
		t.Fatalf("drained at %v, want 2s", syncAt)
	}
}

func TestStickyErrorFailsQueuedOps(t *testing.T) {
	env, d := newTestDevice(t)
	s, _ := d.NewStream()
	inflight := SleepOp("inflight", vclock.Second)
	queued := SleepOp("queued", vclock.Second)
	var inflightErr, queuedErr error
	var queuedDoneAt vclock.Time
	env.Go("issuer", func(p *vclock.Proc) {
		ea := s.Enqueue(inflight)
		eb := s.Enqueue(queued)
		p.Sleep(vclock.Millisecond)
		d.InjectSticky() // strikes while "inflight" is executing
		p.Wait(ea)
		inflightErr = inflight.Err
		p.Wait(eb)
		queuedErr = queued.Err
		queuedDoneAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(inflightErr, ErrSticky) {
		t.Fatalf("in-flight op err = %v, want sticky", inflightErr)
	}
	if !errors.Is(queuedErr, ErrSticky) {
		t.Fatalf("queued op err = %v, want sticky", queuedErr)
	}
	// The queued op fails fast: it must not have slept its full second.
	if queuedDoneAt != vclock.Second {
		t.Fatalf("queued op completed at %v, want 1s (fail-fast after in-flight)", queuedDoneAt)
	}
	// API calls also fail until reset.
	if _, err := d.Alloc(1, 0, "x"); !errors.Is(err, ErrSticky) {
		t.Fatalf("Alloc under sticky err = %v", err)
	}
}

func TestHardFailureHangsOps(t *testing.T) {
	env, d := newTestDevice(t)
	s, _ := d.NewStream()
	completed := false
	detected := false
	env.Go("issuer", func(p *vclock.Proc) {
		done := s.Enqueue(SleepOp("kernel", vclock.Seconds(10)))
		if p.WaitTimeout(done, vclock.Seconds(30)) {
			completed = true
		} else {
			detected = true
		}
	})
	env.Go("injector", func(p *vclock.Proc) {
		p.Sleep(vclock.Second)
		d.InjectHard()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if completed || !detected {
		t.Fatalf("completed=%v detected=%v; hard failure must hang ops", completed, detected)
	}
	if _, err := d.Alloc(1, 0, "x"); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("Alloc on dead device err = %v", err)
	}
	if err := d.Reset(); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("Reset on dead device err = %v", err)
	}
}

func TestResetClearsStickyAndKeepsBuffers(t *testing.T) {
	env, d := newTestDevice(t)
	b, _ := d.Alloc(1<<10, 4, "params")
	b.Data[0] = 42
	env.Go("w", func(p *vclock.Proc) {
		d.InjectSticky()
		if err := d.Reset(); err != nil {
			t.Errorf("Reset: %v", err)
		}
		if d.Health() != Healthy {
			t.Errorf("health after reset = %v", d.Health())
		}
		got, err := d.Buf(b.ID)
		if err != nil || got.Data[0] != 42 {
			t.Errorf("buffer lost across reset: %v %v", got, err)
		}
		// New work executes after reset on a fresh stream.
		s, err := d.NewStream()
		if err != nil {
			t.Fatalf("NewStream after reset: %v", err)
		}
		op := SleepOp("post-reset", vclock.Second)
		p.Wait(s.Enqueue(op))
		if op.Err != nil {
			t.Errorf("post-reset op err = %v", op.Err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeWhere(t *testing.T) {
	_, d := newTestDevice(t)
	d.Alloc(100, 0, "param.w")
	d.Alloc(100, 0, "opt.m")
	d.Alloc(100, 0, "activation")
	d.Alloc(100, 0, "grad")
	n := d.FreeWhere(func(b *Buffer) bool { return b.Tag == "activation" || b.Tag == "grad" })
	if n != 2 {
		t.Fatalf("freed %d, want 2", n)
	}
	if d.MemUsed() != 200 {
		t.Fatalf("MemUsed = %d, want 200", d.MemUsed())
	}
	for _, b := range d.Buffers() {
		if b.Tag != "param.w" && b.Tag != "opt.m" {
			t.Fatalf("unexpected survivor %q", b.Tag)
		}
	}
}

func TestDestroyStreamDropsWork(t *testing.T) {
	env, d := newTestDevice(t)
	s, _ := d.NewStream()
	ran := false
	env.Go("w", func(p *vclock.Proc) {
		s.Enqueue(FuncOp("never", vclock.Seconds(10), func(*Device) error {
			ran = true
			return nil
		}))
		p.Sleep(vclock.Second)
		if err := d.DestroyStream(s.ID); err != nil {
			t.Errorf("DestroyStream: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("op completed on destroyed stream")
	}
}

func TestClusterTopology(t *testing.T) {
	env := vclock.NewEnv(1)
	c := NewCluster(env, 2, 8, 32<<30)
	if len(c.AllDevices()) != 16 {
		t.Fatalf("devices = %d, want 16", len(c.AllDevices()))
	}
	d := c.Device(1, 3)
	if d.NodeID != 1 || d.Index != 3 {
		t.Fatalf("Device(1,3) = %s", d.Name())
	}
}

func TestTransferTime(t *testing.T) {
	// 32 GB over PCIe gen4 at 32 GB/s ≈ 1 second.
	got := TransferTime(32<<30, 32*float64(1<<30))
	if got != vclock.Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if TransferTime(0, 1e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if TransferTime(1, 1e12) != vclock.Microsecond {
		t.Fatal("non-empty transfer must take at least 1µs")
	}
}

// Property: memory accounting never goes negative and Free always restores
// exactly what Alloc took, under arbitrary alloc/free interleavings.
func TestMemAccountingProperty(t *testing.T) {
	f := func(sizes []uint16, freeMask []bool) bool {
		env := vclock.NewEnv(1)
		d := NewDevice(env, 0, 0, 1<<40)
		var live []int
		var want int64
		for i, sz := range sizes {
			b, err := d.Alloc(int64(sz), 0, fmt.Sprintf("t%d", i%3))
			if err != nil {
				return false
			}
			live = append(live, b.ID)
			want += int64(sz)
			if i < len(freeMask) && freeMask[i] && len(live) > 0 {
				id := live[0]
				live = live[1:]
				buf, _ := d.Buf(id)
				want -= buf.ModelBytes
				if err := d.Free(id); err != nil {
					return false
				}
			}
			if d.MemUsed() != want || want < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any batch of op durations, a stream completes them in FIFO
// order at the prefix-sum times.
func TestStreamFIFOTimingProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 32 {
			durs = durs[:32]
		}
		env := vclock.NewEnv(1)
		d := NewDevice(env, 0, 0, 1<<30)
		s, _ := d.NewStream()
		times := make([]vclock.Time, len(durs))
		env.Go("issuer", func(p *vclock.Proc) {
			events := make([]*vclock.Event, len(durs))
			for i, dur := range durs {
				events[i] = s.Enqueue(SleepOp("op", vclock.Time(dur)*vclock.Millisecond))
			}
			for i, ev := range events {
				p.Wait(ev)
				times[i] = p.Now()
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		var sum vclock.Time
		for i, dur := range durs {
			sum += vclock.Time(dur) * vclock.Millisecond
			if times[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStreamOpThroughput(b *testing.B) {
	env := vclock.NewEnv(1)
	d := NewDevice(env, 0, 0, 1<<30)
	s, _ := d.NewStream()
	env.Go("issuer", func(p *vclock.Proc) {
		for i := 0; i < b.N; i++ {
			ev := s.Enqueue(SleepOp("op", vclock.Microsecond))
			p.Wait(ev)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
