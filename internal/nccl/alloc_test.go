package nccl

import (
	"testing"

	"jitckpt/internal/gpu"
	"jitckpt/internal/vclock"
)

// TestAllReduceAllocBudget pins the steady-state allocation budget of one
// collective. A finished Env cannot be resumed, so the marginal cost per
// 4-rank allreduce round comes from the difference between a long and a
// short complete run — the fixed setup (devices, comms, buffers) cancels.
// After warm-up the engine serves allreduces from its pooled collState and
// request objects, so a full round costs at most a handful of allocations
// (stream-op bookkeeping), not one per rank per phase.
func TestAllReduceAllocBudget(t *testing.T) {
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() {
			h := newHarness(t, 4)
			bufs := make([]*gpu.Buffer, 4)
			for r := range bufs {
				bufs[r] = mkBuf(t, h.devs[r], []float32{float32(r), 1, 2})
			}
			h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
				for i := 0; i < rounds; i++ {
					op, err := comm.AllReduce(h.streams[r], bufs[r])
					if err != nil {
						t.Errorf("rank %d: %v", r, err)
						return
					}
					p.Wait(op.Done)
					if op.Err != nil {
						t.Errorf("rank %d op err: %v", r, op.Err)
						return
					}
				}
			})
			if err := h.env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	const short, long = 20, 120
	perRound := (measure(long) - measure(short)) / (long - short)
	t.Logf("%.2f allocs per 4-rank allreduce round", perRound)
	// Measured ~24: per rank, one collReq, the op's Done event plus its
	// name, and the waiter registration — the synchronous Enqueue+Wait
	// style this test uses. The guard exists to catch regressions back
	// toward one-allocation-per-rank-per-phase, not to force zero.
	const budget = 32.0
	if perRound > budget {
		t.Errorf("one 4-rank allreduce round allocates %.2f objects, budget is %.0f", perRound, budget)
	}
}
