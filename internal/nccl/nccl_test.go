package nccl

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"jitckpt/internal/gpu"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

// harness builds n devices each with one stream, plus an engine.
type harness struct {
	env     *vclock.Env
	engine  *Engine
	devs    []*gpu.Device
	streams []*gpu.Stream
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	env := vclock.NewEnv(1)
	h := &harness{env: env, engine: NewEngine(env, DefaultParams())}
	for i := 0; i < n; i++ {
		d := gpu.NewDevice(env, i/8, i%8, 1<<34)
		s, err := d.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		h.devs = append(h.devs, d)
		h.streams = append(h.streams, s)
	}
	return h
}

// initComms spawns one worker per rank that rendezvouses, then calls body.
func (h *harness) eachRank(body func(p *vclock.Proc, rank int, comm *Comm)) {
	n := len(h.devs)
	for r := 0; r < n; r++ {
		r := r
		h.env.Go(fmt.Sprintf("rank%d", r), func(p *vclock.Proc) {
			comm, err := h.engine.CommInitRank(p, "world", 0, n, r, h.devs[r])
			if err != nil {
				panic(err)
			}
			body(p, r, comm)
		})
	}
}

func mkBuf(t *testing.T, d *gpu.Device, data []float32) *gpu.Buffer {
	t.Helper()
	b, err := d.Alloc(int64(4*len(data)), len(data), "buf")
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Data, data)
	return b
}

func TestAllReduceSums(t *testing.T) {
	h := newHarness(t, 4)
	bufs := make([]*gpu.Buffer, 4)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{float32(r), 1, 2})
	}
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		op, err := comm.AllReduce(h.streams[r], bufs[r])
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
			return
		}
		p.Wait(op.Done)
		if op.Err != nil {
			t.Errorf("rank %d op err: %v", r, op.Err)
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	want := tensor.Vector{0 + 1 + 2 + 3, 4, 8}
	for r, b := range bufs {
		if !b.Data.Equal(want) {
			t.Fatalf("rank %d data = %v, want %v", r, b.Data, want)
		}
	}
}

func TestAllReduceIsBarrier(t *testing.T) {
	// Rank 1 arrives 5 seconds late; ranks 0 and 2 must not complete early.
	h := newHarness(t, 3)
	done := make([]vclock.Time, 3)
	bufs := make([]*gpu.Buffer, 3)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{1})
	}
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 1 {
			p.Sleep(vclock.Seconds(5))
		}
		op, _ := comm.AllReduce(h.streams[r], bufs[r])
		p.Wait(op.Done)
		done[r] = p.Now()
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	for r, at := range done {
		if at < vclock.Seconds(5) {
			t.Fatalf("rank %d completed at %v, before the last arriver", r, at)
		}
	}
}

func TestAllReduceHangsOnDeadRank(t *testing.T) {
	h := newHarness(t, 3)
	bufs := make([]*gpu.Buffer, 3)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{1})
	}
	timedOut := make([]bool, 3)
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 2 {
			h.devs[2].InjectHard() // dies before issuing its collective
			return
		}
		op, _ := comm.AllReduce(h.streams[r], bufs[r])
		timedOut[r] = !p.WaitTimeout(op.Done, vclock.Seconds(30))
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut[0] || !timedOut[1] {
		t.Fatalf("healthy ranks should hang: %v", timedOut)
	}
	// Barrier property: the healthy ranks' buffers are untouched.
	for r := 0; r < 2; r++ {
		if bufs[r].Data[0] != 1 {
			t.Fatalf("rank %d buffer modified despite hang", r)
		}
	}
}

func TestBroadcast(t *testing.T) {
	h := newHarness(t, 4)
	bufs := make([]*gpu.Buffer, 4)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{float32(r), float32(r)})
	}
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		op, err := comm.Broadcast(h.streams[r], bufs[r], 2)
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
			return
		}
		p.Wait(op.Done)
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	for r, b := range bufs {
		if b.Data[0] != 2 || b.Data[1] != 2 {
			t.Fatalf("rank %d = %v, want root 2's data", r, b.Data)
		}
	}
}

func TestAllGatherAndReduceScatter(t *testing.T) {
	h := newHarness(t, 2)
	ins := make([]*gpu.Buffer, 2)
	outs := make([]*gpu.Buffer, 2)
	rsIns := make([]*gpu.Buffer, 2)
	rsOuts := make([]*gpu.Buffer, 2)
	for r := 0; r < 2; r++ {
		ins[r] = mkBuf(t, h.devs[r], []float32{float32(10 * (r + 1))})
		outs[r] = mkBuf(t, h.devs[r], []float32{0, 0})
		rsIns[r] = mkBuf(t, h.devs[r], []float32{float32(r), float32(r * 10)})
		rsOuts[r] = mkBuf(t, h.devs[r], []float32{0})
	}
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		ag, err := comm.AllGather(h.streams[r], ins[r], outs[r])
		if err != nil {
			t.Errorf("allgather rank %d: %v", r, err)
			return
		}
		p.Wait(ag.Done)
		rs, err := comm.ReduceScatter(h.streams[r], rsIns[r], rsOuts[r])
		if err != nil {
			t.Errorf("reducescatter rank %d: %v", r, err)
			return
		}
		p.Wait(rs.Done)
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if !outs[r].Data.Equal(tensor.Vector{10, 20}) {
			t.Fatalf("allgather rank %d out = %v", r, outs[r].Data)
		}
	}
	// sum = [0+1, 0+10] = [1, 10]; rank r gets chunk r.
	if rsOuts[0].Data[0] != 1 || rsOuts[1].Data[0] != 10 {
		t.Fatalf("reducescatter outs = %v, %v", rsOuts[0].Data, rsOuts[1].Data)
	}
}

func TestSendRecvPipeline(t *testing.T) {
	h := newHarness(t, 2)
	src := mkBuf(t, h.devs[0], []float32{7, 8, 9})
	dst := mkBuf(t, h.devs[1], []float32{0, 0, 0})
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 0 {
			op, err := comm.Send(h.streams[0], src, 1)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(op.Done)
		} else {
			op, err := comm.Recv(h.streams[1], dst, 0)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(op.Done)
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !dst.Data.Equal(tensor.Vector{7, 8, 9}) {
		t.Fatalf("recv data = %v", dst.Data)
	}
}

func TestSendRecvMatchInOrder(t *testing.T) {
	h := newHarness(t, 2)
	s1 := mkBuf(t, h.devs[0], []float32{1})
	s2 := mkBuf(t, h.devs[0], []float32{2})
	d1 := mkBuf(t, h.devs[1], []float32{0})
	d2 := mkBuf(t, h.devs[1], []float32{0})
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 0 {
			a, _ := comm.Send(h.streams[0], s1, 1)
			b, _ := comm.Send(h.streams[0], s2, 1)
			p.Wait(a.Done)
			p.Wait(b.Done)
		} else {
			a, _ := comm.Recv(h.streams[1], d1, 0)
			b, _ := comm.Recv(h.streams[1], d2, 0)
			p.Wait(a.Done)
			p.Wait(b.Done)
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if d1.Data[0] != 1 || d2.Data[0] != 2 {
		t.Fatalf("out-of-order match: %v %v", d1.Data, d2.Data)
	}
}

func TestCommInitHangsWithoutAllRanks(t *testing.T) {
	env := vclock.NewEnv(1)
	e := NewEngine(env, DefaultParams())
	d := gpu.NewDevice(env, 0, 0, 1<<30)
	got := false
	env.Go("lonely", func(p *vclock.Proc) {
		_, err := e.CommInitRank(p, "world", 0, 2, 0, d)
		got = err == nil
	})
	if err := env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("rendezvous completed without all ranks")
	}
}

func TestCommInitGenerationIsolation(t *testing.T) {
	// Stale arrivals from generation 0 must not satisfy generation 1.
	env := vclock.NewEnv(1)
	e := NewEngine(env, DefaultParams())
	devs := []*gpu.Device{gpu.NewDevice(env, 0, 0, 1<<30), gpu.NewDevice(env, 0, 1, 1<<30)}
	// Gen 0: only rank 0 arrives (simulating an aborted attempt).
	env.Go("stale", func(p *vclock.Proc) {
		e.CommInitRank(p, "world", 0, 2, 0, devs[0])
	})
	inited := 0
	for r := 0; r < 2; r++ {
		r := r
		env.Go(fmt.Sprintf("fresh%d", r), func(p *vclock.Proc) {
			p.Sleep(vclock.Second)
			if _, err := e.CommInitRank(p, "world", 1, 2, r, devs[r]); err == nil {
				inited++
			}
		})
	}
	if err := env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if inited != 2 {
		t.Fatalf("gen 1 init count = %d, want 2", inited)
	}
}

func TestInitCostScalesWithRanks(t *testing.T) {
	cost := func(n int) vclock.Time {
		env := vclock.NewEnv(1)
		e := NewEngine(env, DefaultParams())
		var at vclock.Time
		for r := 0; r < n; r++ {
			r := r
			env.Go(fmt.Sprintf("r%d", r), func(p *vclock.Proc) {
				d := gpu.NewDevice(env, 0, r, 1<<30)
				if _, err := e.CommInitRank(p, "w", 0, n, r, d); err != nil {
					t.Error(err)
				}
				at = p.Now()
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if c2, c16 := cost(2), cost(16); c16 <= c2 {
		t.Fatalf("init cost should grow with ranks: %v vs %v", c2, c16)
	}
}

func TestFaultHangThenNewGenerationRecovers(t *testing.T) {
	h := newHarness(t, 2)
	bufs := make([]*gpu.Buffer, 2)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{1})
	}
	recovered := make([]bool, 2)
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 0 {
			h.engine.InjectFault("world", 0, FaultHang)
		}
		op, _ := comm.AllReduce(h.streams[r], bufs[r])
		if p.WaitTimeout(op.Done, vclock.Seconds(10)) {
			t.Errorf("rank %d collective completed under hang fault", r)
			return
		}
		// Recovery: destroy the wedged stream and comm, re-init gen 1.
		comm.Destroy()
		h.devs[r].DestroyStream(h.streams[r].ID)
		ns, err := h.devs[r].NewStream()
		if err != nil {
			t.Error(err)
			return
		}
		c2, err := h.engine.CommInitRank(p, "world", 1, 2, r, h.devs[r])
		if err != nil {
			t.Error(err)
			return
		}
		op2, _ := c2.AllReduce(ns, bufs[r])
		if p.WaitTimeout(op2.Done, vclock.Minute) && op2.Err == nil {
			recovered[r] = true
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !recovered[0] || !recovered[1] {
		t.Fatalf("recovery after new generation failed: %v", recovered)
	}
	// First allreduce hung before mutating, second summed: 1+1 = 2.
	for r, b := range bufs {
		if b.Data[0] != 2 {
			t.Fatalf("rank %d = %v, want 2", r, b.Data)
		}
	}
}

func TestFaultError(t *testing.T) {
	h := newHarness(t, 2)
	bufs := make([]*gpu.Buffer, 2)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{1})
	}
	var errs [2]error
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		if r == 0 {
			h.engine.InjectFault("world", 0, FaultError)
		}
		op, _ := comm.AllReduce(h.streams[r], bufs[r])
		p.Wait(op.Done)
		errs[r] = op.Err
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if !errors.Is(e, ErrNetwork) {
			t.Fatalf("rank %d err = %v, want network error", r, e)
		}
	}
}

func TestMismatchedCollectiveKind(t *testing.T) {
	h := newHarness(t, 2)
	bufs := make([]*gpu.Buffer, 2)
	for r := range bufs {
		bufs[r] = mkBuf(t, h.devs[r], []float32{1})
	}
	var sawMismatch bool
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		var op *gpu.Op
		if r == 0 {
			op, _ = comm.AllReduce(h.streams[r], bufs[r])
		} else {
			op, _ = comm.Broadcast(h.streams[r], bufs[r], 0)
		}
		if p.WaitTimeout(op.Done, vclock.Minute) && errors.Is(op.Err, ErrMismatch) {
			sawMismatch = true
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawMismatch {
		t.Fatal("mismatched collectives not detected")
	}
}

func TestBufferSizeMismatch(t *testing.T) {
	h := newHarness(t, 2)
	a := mkBuf(t, h.devs[0], []float32{1, 2})
	b := mkBuf(t, h.devs[1], []float32{1})
	var sawErr bool
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		buf := a
		if r == 1 {
			buf = b
		}
		op, _ := comm.AllReduce(h.streams[r], buf)
		p.Wait(op.Done)
		if errors.Is(op.Err, ErrBufSizes) {
			sawErr = true
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawErr {
		t.Fatal("size mismatch not detected")
	}
}

func TestDeadCommRejectsCalls(t *testing.T) {
	h := newHarness(t, 1)
	buf := mkBuf(t, h.devs[0], []float32{1})
	h.eachRank(func(p *vclock.Proc, r int, comm *Comm) {
		comm.Destroy()
		if _, err := comm.AllReduce(h.streams[0], buf); !errors.Is(err, ErrCommDead) {
			t.Errorf("err = %v, want comm dead", err)
		}
		if _, err := comm.Send(h.streams[0], buf, 0); !errors.Is(err, ErrCommDead) {
			t.Errorf("send err = %v, want comm dead", err)
		}
	})
	if err := h.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	env := vclock.NewEnv(1)
	e := NewEngine(env, DefaultParams())
	env.Go("w", func(p *vclock.Proc) {
		if _, err := e.CommInitRank(p, "w", 0, 2, 5, nil); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("init err = %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: allreduce over arbitrary rank data equals the elementwise sum,
// on every rank, for any world size 1..6 and vector length 1..32.
func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%6) + 1
		length := int(lenRaw%32) + 1
		env := vclock.NewEnv(seed)
		e := NewEngine(env, DefaultParams())
		rng := tensor.NewRNG(uint64(seed) + 1)
		devs := make([]*gpu.Device, n)
		streams := make([]*gpu.Stream, n)
		bufs := make([]*gpu.Buffer, n)
		want := tensor.NewVector(length)
		for r := 0; r < n; r++ {
			devs[r] = gpu.NewDevice(env, 0, r, 1<<30)
			streams[r], _ = devs[r].NewStream()
			bufs[r], _ = devs[r].Alloc(int64(4*length), length, "x")
			rng.FillUniform(bufs[r].Data, 1)
		}
		// Expected sum in fixed rank order, mirroring the engine.
		copy(want, bufs[0].Data)
		for r := 1; r < n; r++ {
			want.Add(bufs[r].Data)
		}
		ok := true
		for r := 0; r < n; r++ {
			r := r
			env.Go(fmt.Sprintf("r%d", r), func(p *vclock.Proc) {
				comm, err := e.CommInitRank(p, "w", 0, n, r, devs[r])
				if err != nil {
					ok = false
					return
				}
				op, err := comm.AllReduce(streams[r], bufs[r])
				if err != nil {
					ok = false
					return
				}
				p.Wait(op.Done)
				if op.Err != nil {
					ok = false
				}
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		for r := 0; r < n; r++ {
			if !bufs[r].Data.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllReduce8Ranks(b *testing.B) {
	env := vclock.NewEnv(1)
	e := NewEngine(env, DefaultParams())
	const n = 8
	devs := make([]*gpu.Device, n)
	streams := make([]*gpu.Stream, n)
	bufs := make([]*gpu.Buffer, n)
	for r := 0; r < n; r++ {
		devs[r] = gpu.NewDevice(env, 0, r, 1<<34)
		streams[r], _ = devs[r].NewStream()
		bufs[r], _ = devs[r].Alloc(1<<20, 128, "g")
	}
	for r := 0; r < n; r++ {
		r := r
		env.Go(fmt.Sprintf("r%d", r), func(p *vclock.Proc) {
			comm, err := e.CommInitRank(p, "w", 0, n, r, devs[r])
			if err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < b.N; i++ {
				op, _ := comm.AllReduce(streams[r], bufs[r])
				p.Wait(op.Done)
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
