// Package nccl implements the collective-communication substrate the
// training framework runs on: communicators created through a rendezvous,
// and collectives (AllReduce, Broadcast, AllGather, ReduceScatter, Send,
// Recv) that execute as stream operations with barrier semantics.
//
// Two properties of real NCCL are load-bearing for the paper and are
// reproduced exactly:
//
//   - A collective is a barrier: no rank's operation completes until every
//     rank in the communicator has entered it. This is what guarantees that
//     when any rank fails before its optimizer step, every healthy replica
//     is still holding the unmodified parameter and optimizer state of the
//     current minibatch (§4.2).
//
//   - If a participant never arrives — because its GPU failed or the
//     network dropped — the collective hangs forever on every other rank.
//     Hangs, not errors, are the failure signal the watchdog detects (§3.1).
//
// Collectives do real arithmetic on buffer contents (summation in a fixed
// rank order for determinism), so recovered training runs can be compared
// bit for bit against failure-free runs.
package nccl

import (
	"errors"
	"fmt"

	"jitckpt/internal/gpu"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Errors returned by communicator operations.
var (
	ErrNetwork      = errors.New("nccl: network error")
	ErrCommDead     = errors.New("nccl: communicator destroyed")
	ErrMismatch     = errors.New("nccl: collective mismatch across ranks")
	ErrBufSizes     = errors.New("nccl: buffer sizes differ across ranks")
	ErrInvalidRank  = errors.New("nccl: invalid rank")
	ErrDeviceFailed = errors.New("nccl: device not usable")
)

// Params models the interconnect and bootstrap costs.
type Params struct {
	// BusBandwidth is the effective collective bandwidth in bytes/second
	// (NVLink within a node, InfiniBand across nodes; we use a single
	// effective figure per job, as ring-allreduce throughput is gated by
	// the slowest hop).
	BusBandwidth float64
	// BaseLatency is the fixed per-collective launch latency.
	BaseLatency vclock.Time
	// CommInitBase and CommInitPerRank model communicator bootstrap
	// (rendezvous, topology detection, channel setup). Table 7 shows this
	// dominates transparent recovery time, so it is modelled explicitly.
	CommInitBase    vclock.Time
	CommInitPerRank vclock.Time
}

// DefaultParams returns interconnect parameters roughly matching a single
// 8-GPU NVLink node with IB uplinks.
func DefaultParams() Params {
	return Params{
		BusBandwidth:    150e9, // 150 GB/s effective bus bandwidth
		BaseLatency:     20 * vclock.Microsecond,
		CommInitBase:    800 * vclock.Millisecond,
		CommInitPerRank: 30 * vclock.Millisecond,
	}
}

// FaultKind selects how an injected network fault manifests.
type FaultKind int

const (
	// FaultNone means the communicator is healthy.
	FaultNone FaultKind = iota
	// FaultHang makes collectives on the communicator hang forever: the
	// transient InfiniBand congestion / link-flap case. Cleared by
	// re-initializing the communicator (new generation).
	FaultHang
	// FaultError makes collectives complete with ErrNetwork: the NCCL
	// async-error case.
	FaultError
)

// Engine is the cluster-wide collective engine: it owns the rendezvous
// namespace and per-communicator match state.
type Engine struct {
	env        *vclock.Env
	params     Params
	inits      map[initKey]*initState
	groups     map[groupKey]*commGroup
	pending    map[groupKey]FaultKind
	observer   func(CollectiveDone)
	onCommInit func(key string, gen, rank int)
}

// CollectiveDone describes one completed collective operation. The
// peer-shelter tier observes these as its piggyback windows: a completed
// gradient all-reduce marks both the traffic replication can ride along
// with (Checkmate-style) and the instant all replicas hold identical
// reduced gradients.
type CollectiveDone struct {
	Key   string
	Gen   int
	Kind  string
	Bytes int64
	Ranks int
}

type initKey struct {
	key string
	gen int
}

type groupKey = initKey

type initState struct {
	arrived map[int]bool
	ready   *vclock.Event
}

// NewEngine creates a collective engine bound to env.
func NewEngine(env *vclock.Env, params Params) *Engine {
	return &Engine{
		env:     env,
		params:  params,
		inits:   make(map[initKey]*initState),
		groups:  make(map[groupKey]*commGroup),
		pending: make(map[groupKey]FaultKind),
	}
}

// Params returns the engine's interconnect parameters.
func (e *Engine) Params() Params { return e.params }

// SetObserver installs a callback invoked (in the last arriver's process,
// at completion time) for every successful collective. One observer at a
// time; nil uninstalls.
func (e *Engine) SetObserver(fn func(CollectiveDone)) { e.observer = fn }

// SetOnCommInit installs a callback invoked at every CommInitRank entry
// (in the arriving rank's process, before the rendezvous barrier). The
// chaos harness uses it to land faults inside the communicator
// re-initialization window. One at a time; nil uninstalls.
func (e *Engine) SetOnCommInit(fn func(key string, gen, rank int)) { e.onCommInit = fn }

// commGroup is the state shared by all ranks of one communicator
// generation.
type commGroup struct {
	engine *Engine
	key    string
	gen    int
	nranks int
	fault  FaultKind
	colls  map[int]*collState
	p2ps   map[p2pKey]*p2pState

	collFree *collState
	p2pFree  *p2pState
}

// collState is the match state for one in-flight collective. States are
// pooled per group: refs counts the ranks that have entered arriveColl and
// not yet returned, and the state recycles once every participant has left
// AND the last arriver has retired it from the match map (done). Ranks
// that never arrive (hung collectives) simply strand the state, which the
// garbage collector reclaims as before.
type collState struct {
	kind     string
	bytes    int64
	arrived  []collArrival // indexed by rank
	narrived int
	ready    *vclock.Event
	err      error
	root     int
	sum      []float32 // reduce-scatter scratch, reused across collectives
	refs     int
	done     bool
	next     *collState
}

type collArrival struct {
	in, out *gpu.Buffer
	present bool
}

func (g *commGroup) getColl() *collState {
	cs := g.collFree
	if cs == nil {
		cs = &collState{}
	} else {
		g.collFree = cs.next
		*cs = collState{arrived: cs.arrived, sum: cs.sum}
	}
	if cap(cs.arrived) < g.nranks {
		cs.arrived = make([]collArrival, g.nranks)
	} else {
		cs.arrived = cs.arrived[:g.nranks]
		for i := range cs.arrived {
			cs.arrived[i] = collArrival{}
		}
	}
	cs.ready = g.engine.env.NewEvent("nccl.coll")
	return cs
}

// leaveColl drops one participant reference, recycling the state when it is
// both retired and empty.
func (g *commGroup) leaveColl(cs *collState) {
	cs.refs--
	if cs.refs == 0 && cs.done {
		cs.ready = nil
		cs.next = g.collFree
		g.collFree = cs
	}
}

type p2pKey struct {
	src, dst, seq int
}

// p2pState is the match state for one send/recv pair, pooled like
// collState (refs counts the two endpoints).
type p2pState struct {
	srcBuf, dstBuf *gpu.Buffer
	ready          *vclock.Event
	bytes          int64
	failure        error
	refs           int
	done           bool
	next           *p2pState
}

func (g *commGroup) getP2P() *p2pState {
	st := g.p2pFree
	if st == nil {
		st = &p2pState{}
	} else {
		g.p2pFree = st.next
		*st = p2pState{}
	}
	st.ready = g.engine.env.NewEvent("nccl.p2p")
	return st
}

func (g *commGroup) leaveP2P(st *p2pState) {
	st.refs--
	if st.refs == 0 && st.done {
		st.ready = nil
		st.next = g.p2pFree
		g.p2pFree = st
	}
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	engine *Engine
	group  *commGroup
	Rank   int
	NRanks int
	dead   bool

	collSeq int
	sendSeq map[int]int
	recvSeq map[int]int
}

// CommInitRank performs the blocking rendezvous that creates one rank's
// communicator handle. All nranks ranks must call it with the same key and
// generation; the call blocks until the last rank arrives (hanging forever
// if a rank never does — the paper's "rendezvous synchronization point"),
// then charges the bootstrap cost. gen distinguishes re-initializations
// after recovery: stale arrivals from an aborted attempt can never satisfy
// a new generation's rendezvous.
func (e *Engine) CommInitRank(p *vclock.Proc, key string, gen, nranks, rank int, dev *gpu.Device) (*Comm, error) {
	if rank < 0 || rank >= nranks {
		return nil, fmt.Errorf("%w: %d of %d", ErrInvalidRank, rank, nranks)
	}
	if dev != nil && !dev.Accessible() {
		return nil, ErrDeviceFailed
	}
	if e.onCommInit != nil {
		e.onCommInit(key, gen, rank)
	}
	sp := trace.Of(e.env).Begin(p.Now(), "nccl", key, "comm-init", "gen", gen, "rank", rank)
	ik := initKey{key, gen}
	st, ok := e.inits[ik]
	if !ok {
		st = &initState{
			arrived: make(map[int]bool),
			ready:   e.env.NewEvent(fmt.Sprintf("nccl.init.%s.g%d", key, gen)),
		}
		e.inits[ik] = st
	}
	st.arrived[rank] = true
	if len(st.arrived) == nranks {
		st.ready.Trigger()
	} else {
		p.Wait(st.ready) // hangs if some rank never arrives
	}
	// Bootstrap cost: every rank pays it after the barrier.
	p.Sleep(e.params.CommInitBase + vclock.Time(nranks)*e.params.CommInitPerRank)
	sp.End(p.Now())

	gk := groupKey{key, gen}
	// A fault injected while this generation was still bootstrapping lands
	// here: a hang wedges the init (the rank never returns — the wedged
	// bootstrap the watchdog/heartbeat must detect), an async error fails
	// it. The generation is burned either way; re-initializing under a new
	// generation is unaffected.
	if fk, faulted := e.pending[gk]; faulted {
		trace.Of(e.env).Instant(p.Now(), "nccl", key, "init-fault", "gen", gen, "rank", rank, "kind", int(fk))
		if fk == FaultHang {
			p.Wait(e.env.NewEvent(fmt.Sprintf("nccl.init.hang.%s.g%d", key, gen)))
		}
		return nil, ErrNetwork
	}
	g, ok := e.groups[gk]
	if !ok {
		g = &commGroup{
			engine: e,
			key:    key,
			gen:    gen,
			nranks: nranks,
			colls:  make(map[int]*collState),
			p2ps:   make(map[p2pKey]*p2pState),
		}
		e.groups[gk] = g
	}
	return &Comm{
		engine:  e,
		group:   g,
		Rank:    rank,
		NRanks:  nranks,
		sendSeq: make(map[int]int),
		recvSeq: make(map[int]int),
	}, nil
}

// InjectFault sets the fault mode for the current generation of the
// communicator named key. A FaultHang makes in-flight and future
// collectives hang; re-initializing under a new generation clears it
// (transient faults resolve on reconnect).
func (e *Engine) InjectFault(key string, gen int, kind FaultKind) {
	gk := groupKey{key, gen}
	if g, ok := e.groups[gk]; ok {
		g.fault = kind
		e.env.Tracef("nccl: fault %d injected on %s.g%d", kind, key, gen)
		trace.Of(e.env).Instant(e.env.Now(), "nccl", key, "inject-fault", "gen", gen, "kind", int(kind))
		return
	}
	// The generation has not finished bootstrapping: record the fault so it
	// lands on the rendezvous itself (CommInitRank checks it after the
	// barrier). Faults during communicator (re-)initialization are exactly
	// the mid-recovery failures chaos testing needs to land.
	e.pending[gk] = kind
	e.env.Tracef("nccl: fault %d pending on bootstrapping %s.g%d", kind, key, gen)
}

// Destroy invalidates the handle. Pending collectives on other ranks are
// unaffected (they hang until their streams are destroyed), matching
// ncclCommDestroy semantics for a wedged communicator.
func (c *Comm) Destroy() { c.dead = true }

// Key returns the communicator's rendezvous key.
func (c *Comm) Key() string { return c.group.key }

// Generation returns the communicator's generation.
func (c *Comm) Generation() int { return c.group.gen }

// collReq bundles one rank's collective call into a single allocation: the
// stream op plus everything its Run and lazily-formatted trace name need.
// The op's name is only materialized when a trace recorder is attached.
type collReq struct {
	g         *commGroup
	kind      string
	seq, rank int
	root      int
	in, out   *gpu.Buffer
	op        gpu.Op
}

func (cr *collReq) run(p *vclock.Proc, dev *gpu.Device) error {
	return cr.g.arriveColl(p, cr.kind, cr.seq, cr.rank, cr.in, cr.out, cr.root)
}

func (cr *collReq) name() string {
	return fmt.Sprintf("nccl.%s.%s.g%d.#%d.r%d", cr.kind, cr.g.key, cr.g.gen, cr.seq, cr.rank)
}

// collCost returns the modelled wire traffic for one collective of b bytes
// across n ranks (ring algorithms throughout).
func collCost(kind string, b int64, n int) int64 {
	switch kind {
	case "allreduce":
		if n <= 1 {
			return 0
		}
		return 2 * b * int64(n-1) / int64(n)
	case "broadcast":
		return b
	case "allgather":
		if n <= 1 {
			return 0
		}
		return b * int64(n-1)
	case "reducescatter":
		if n <= 1 {
			return 0
		}
		return b * int64(n-1) / int64(n)
	default: // barrier
		return 0
	}
}

// collective enqueues a collective op on stream s. The returned op
// completes when all ranks have arrived and the transfer time has elapsed.
func (c *Comm) collective(s *gpu.Stream, kind string, in, out *gpu.Buffer, root int) (*gpu.Op, error) {
	if c.dead {
		return nil, ErrCommDead
	}
	cr := &collReq{g: c.group, kind: kind, seq: c.collSeq, rank: c.Rank, root: root, in: in, out: out}
	c.collSeq++
	cr.op.NameFn = cr.name
	cr.op.Run = cr.run
	s.Enqueue(&cr.op)
	return &cr.op, nil
}

func (g *commGroup) arriveColl(p *vclock.Proc, kind string, seq, rank int, in, out *gpu.Buffer, root int) error {
	cs, ok := g.colls[seq]
	if !ok {
		cs = g.getColl()
		cs.kind = kind
		cs.root = root
		g.colls[seq] = cs
	}
	cs.refs++
	if cs.kind != kind || cs.root != root {
		cs.err = fmt.Errorf("%w: rank %d issued %s(root=%d), group expects %s(root=%d)",
			ErrMismatch, rank, kind, root, cs.kind, cs.root)
		cs.ready.Trigger()
		err := cs.err
		g.leaveColl(cs)
		return err
	}
	if g.fault == FaultError {
		// Async network error: this rank fails immediately, and ranks
		// already blocked inside the collective are released with the
		// same error (NCCL async error propagation).
		if cs.err == nil {
			cs.err = ErrNetwork
		}
		cs.ready.Trigger()
		delete(g.colls, seq)
		cs.done = true
		g.leaveColl(cs)
		return ErrNetwork
	}
	a := &cs.arrived[rank]
	if a.present {
		g.leaveColl(cs)
		return fmt.Errorf("%w: rank %d arrived twice at %s #%d", ErrMismatch, rank, kind, seq)
	}
	a.in, a.out, a.present = in, out, true
	cs.narrived++
	if cs.narrived == g.nranks && g.fault != FaultHang {
		// Last arriver: validate, compute, charge the transfer, release.
		if err := cs.validateSizes(); err != nil {
			cs.err = err
		} else {
			cs.err = cs.apply(g.nranks)
		}
		bytes := cs.maxBytes()
		cost := g.engine.params.BaseLatency +
			gpu.TransferTime(collCost(kind, bytes, g.nranks), g.engine.params.BusBandwidth)
		p.Sleep(cost)
		err := cs.err
		if rec := trace.Of(g.engine.env); rec != nil {
			rec.Instant(p.Now(), "nccl", g.key, "collective",
				"kind", kind, "gen", g.gen, "seq", seq, "bytes", bytes, "nranks", g.nranks)
		}
		if err == nil && g.engine.observer != nil {
			g.engine.observer(CollectiveDone{Key: g.key, Gen: g.gen, Kind: kind, Bytes: bytes, Ranks: g.nranks})
		}
		cs.ready.Trigger()
		delete(g.colls, seq)
		cs.done = true
		g.leaveColl(cs)
		return err
	}
	p.Wait(cs.ready) // barrier: hangs if a rank never arrives or fault==hang
	err := cs.err
	g.leaveColl(cs)
	return err
}

func (cs *collState) maxBytes() int64 {
	var m int64
	for i := range cs.arrived {
		a := &cs.arrived[i]
		if a.present && a.in != nil && a.in.ModelBytes > m {
			m = a.in.ModelBytes
		}
	}
	return m
}

func (cs *collState) validateSizes() error {
	n := -1
	for i := range cs.arrived {
		a := &cs.arrived[i]
		if !a.present || a.in == nil {
			continue
		}
		if n == -1 {
			n = len(a.in.Data)
		} else if len(a.in.Data) != n {
			return ErrBufSizes
		}
	}
	return nil
}

// apply performs the collective's arithmetic on real buffer contents, in
// fixed rank order for determinism.
func (cs *collState) apply(nranks int) error {
	switch cs.kind {
	case "allreduce":
		// Sum over ranks, written back to every rank's buffer.
		var first *gpu.Buffer
		for r := 0; r < nranks; r++ {
			a := &cs.arrived[r]
			if !a.present || a.in == nil {
				continue
			}
			if first == nil {
				first = a.in
				continue
			}
			if len(a.in.Data) > 0 {
				first.Data.Add(a.in.Data)
			}
		}
		if first == nil {
			return nil
		}
		for r := 0; r < nranks; r++ {
			a := &cs.arrived[r]
			if !a.present || a.in == nil || a.in == first {
				continue
			}
			copy(a.in.Data, first.Data)
		}
	case "broadcast":
		rootArr := &cs.arrived[cs.root]
		if !rootArr.present || rootArr.in == nil {
			return fmt.Errorf("%w: broadcast root %d missing", ErrMismatch, cs.root)
		}
		for r := 0; r < nranks; r++ {
			a := &cs.arrived[r]
			if !a.present || a.in == nil || r == cs.root {
				continue
			}
			copy(a.in.Data, rootArr.in.Data)
		}
	case "allgather":
		// out = concat of in across ranks; each rank's out must hold
		// nranks*len(in) elements.
		for r := 0; r < nranks; r++ {
			src := &cs.arrived[r]
			if !src.present || src.in == nil {
				continue
			}
			chunk := len(src.in.Data)
			for q := 0; q < nranks; q++ {
				dst := &cs.arrived[q]
				if !dst.present || dst.out == nil || len(dst.out.Data) < (r+1)*chunk {
					continue
				}
				copy(dst.out.Data[r*chunk:(r+1)*chunk], src.in.Data)
			}
		}
	case "reducescatter":
		// Sum inputs elementwise into pooled scratch, then rank r receives
		// chunk r.
		sum := cs.sum[:0]
		for r := 0; r < nranks; r++ {
			a := &cs.arrived[r]
			if !a.present || a.in == nil {
				continue
			}
			if len(sum) == 0 {
				sum = append(sum, a.in.Data...)
			} else {
				for i := range sum {
					sum[i] += a.in.Data[i]
				}
			}
		}
		cs.sum = sum[:0]
		if len(sum) == 0 {
			return nil
		}
		chunk := len(sum) / nranks
		for r := 0; r < nranks; r++ {
			a := &cs.arrived[r]
			if !a.present || a.out == nil || chunk == 0 {
				continue
			}
			copy(a.out.Data, sum[r*chunk:(r+1)*chunk])
		}
	case "barrier":
		// No data movement.
	default:
		return fmt.Errorf("%w: unknown collective %q", ErrMismatch, cs.kind)
	}
	return nil
}

// AllReduce enqueues a sum-allreduce of buf across all ranks. Every rank's
// buffer ends up holding the elementwise sum.
func (c *Comm) AllReduce(s *gpu.Stream, buf *gpu.Buffer) (*gpu.Op, error) {
	return c.collective(s, "allreduce", buf, nil, 0)
}

// Broadcast enqueues a broadcast of root's buffer contents to all ranks.
func (c *Comm) Broadcast(s *gpu.Stream, buf *gpu.Buffer, root int) (*gpu.Op, error) {
	if root < 0 || root >= c.NRanks {
		return nil, fmt.Errorf("%w: broadcast root %d", ErrInvalidRank, root)
	}
	return c.collective(s, "broadcast", buf, nil, root)
}

// AllGather enqueues an allgather: every rank contributes in and receives
// the rank-ordered concatenation in out.
func (c *Comm) AllGather(s *gpu.Stream, in, out *gpu.Buffer) (*gpu.Op, error) {
	return c.collective(s, "allgather", in, out, 0)
}

// ReduceScatter enqueues a reduce-scatter: inputs are summed and rank r
// receives chunk r of the sum in out.
func (c *Comm) ReduceScatter(s *gpu.Stream, in, out *gpu.Buffer) (*gpu.Op, error) {
	return c.collective(s, "reducescatter", in, out, 0)
}

// Barrier enqueues a data-free synchronization across all ranks.
func (c *Comm) Barrier(s *gpu.Stream) (*gpu.Op, error) {
	return c.collective(s, "barrier", nil, nil, 0)
}

// Send enqueues a point-to-point send of buf to peer. It matches the
// peer's Recv with the same sequence number (per direction, in issue
// order), the scheme pipeline-parallel stages use.
func (c *Comm) Send(s *gpu.Stream, buf *gpu.Buffer, peer int) (*gpu.Op, error) {
	if c.dead {
		return nil, ErrCommDead
	}
	if peer < 0 || peer >= c.NRanks {
		return nil, fmt.Errorf("%w: send peer %d", ErrInvalidRank, peer)
	}
	pr := &p2pReq{g: c.group, src: c.Rank, dst: peer, seq: c.sendSeq[peer], buf: buf, isSend: true}
	c.sendSeq[peer]++
	pr.op.NameFn = pr.name
	pr.op.Run = pr.run
	s.Enqueue(&pr.op)
	return &pr.op, nil
}

// Recv enqueues a point-to-point receive into buf from peer.
func (c *Comm) Recv(s *gpu.Stream, buf *gpu.Buffer, peer int) (*gpu.Op, error) {
	if c.dead {
		return nil, ErrCommDead
	}
	if peer < 0 || peer >= c.NRanks {
		return nil, fmt.Errorf("%w: recv peer %d", ErrInvalidRank, peer)
	}
	pr := &p2pReq{g: c.group, src: peer, dst: c.Rank, seq: c.recvSeq[peer], buf: buf, isSend: false}
	c.recvSeq[peer]++
	pr.op.NameFn = pr.name
	pr.op.Run = pr.run
	s.Enqueue(&pr.op)
	return &pr.op, nil
}

// p2pReq bundles one endpoint's send/recv call into a single allocation,
// with a lazily-formatted trace name like collReq.
type p2pReq struct {
	g             *commGroup
	src, dst, seq int
	buf           *gpu.Buffer
	isSend        bool
	op            gpu.Op
}

func (pr *p2pReq) run(p *vclock.Proc, dev *gpu.Device) error {
	return pr.g.arriveP2P(p, pr.src, pr.dst, pr.seq, pr.buf, pr.isSend)
}

func (pr *p2pReq) name() string {
	if pr.isSend {
		return fmt.Sprintf("nccl.send.%s.%d->%d.#%d", pr.g.key, pr.src, pr.dst, pr.seq)
	}
	return fmt.Sprintf("nccl.recv.%s.%d<-%d.#%d", pr.g.key, pr.dst, pr.src, pr.seq)
}

func (g *commGroup) arriveP2P(p *vclock.Proc, src, dst, seq int, buf *gpu.Buffer, isSend bool) error {
	if g.fault == FaultError {
		return ErrNetwork
	}
	k := p2pKey{src, dst, seq}
	st, ok := g.p2ps[k]
	if !ok {
		st = g.getP2P()
		g.p2ps[k] = st
	}
	st.refs++
	if isSend {
		st.srcBuf = buf
	} else {
		st.dstBuf = buf
	}
	if buf != nil && buf.ModelBytes > st.bytes {
		st.bytes = buf.ModelBytes
	}
	if st.srcBuf != nil && st.dstBuf != nil && g.fault != FaultHang {
		if len(st.srcBuf.Data) > 0 && len(st.dstBuf.Data) > 0 {
			if len(st.srcBuf.Data) != len(st.dstBuf.Data) {
				st.failure = ErrBufSizes
			} else {
				copy(st.dstBuf.Data, st.srcBuf.Data)
			}
		}
		if st.failure == nil {
			p.Sleep(g.engine.params.BaseLatency + gpu.TransferTime(st.bytes, g.engine.params.BusBandwidth))
		}
		err := st.failure
		st.ready.Trigger()
		delete(g.p2ps, k)
		st.done = true
		g.leaveP2P(st)
		return err
	}
	p.Wait(st.ready) // hangs if the peer never shows up
	err := st.failure
	g.leaveP2P(st)
	return err
}
