package vclock

import (
	"container/heap"
	"sort"
	"testing"
)

// refEntry mirrors a timerQueue entry in the reference model.
type refEntry struct {
	deadline Time
	seq      uint64
	tok      *waitToken
}

// refModel is the obviously-correct reference the fuzzer compares the heap
// against: a plain slice re-sorted by (deadline, seq) before every pop.
type refModel struct {
	entries []refEntry
}

func (m *refModel) push(deadline Time, seq uint64, tok *waitToken) {
	m.entries = append(m.entries, refEntry{deadline, seq, tok})
}

func (m *refModel) popMin() refEntry {
	sort.Slice(m.entries, func(i, j int) bool {
		if m.entries[i].deadline != m.entries[j].deadline {
			return m.entries[i].deadline < m.entries[j].deadline
		}
		return m.entries[i].seq < m.entries[j].seq
	})
	e := m.entries[0]
	m.entries = m.entries[1:]
	return e
}

func (m *refModel) remove(tok *waitToken) bool {
	for i, e := range m.entries {
		if e.tok == tok {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return true
		}
	}
	return false
}

// checkIndexed verifies that every live token's heapIdx points back at its
// own entry — the invariant remove() depends on for O(log n) deletion.
func checkIndexed(t interface{ Errorf(string, ...interface{}) }, q *timerQueue) {
	for i := range q.a {
		if got := int(q.a[i].tok.heapIdx); got != i {
			t.Errorf("heapIdx broken: entry %d (seq %d) has heapIdx %d", i, q.a[i].seq, got)
		}
	}
}

// FuzzQueue drives timerQueue with a random push/pop/remove program and
// checks every observable against the sorted-slice reference model.
func FuzzQueue(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 0, 3, 2, 0, 1, 1, 1, 9})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 1, 2, 0, 1, 1})
	f.Add([]byte{0, 200, 0, 200, 0, 200, 1, 1, 1})
	f.Fuzz(func(t *testing.T, program []byte) {
		var q timerQueue
		var ref refModel
		var live []*waitToken
		var seq uint64
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%3, program[i+1]
			switch op {
			case 0: // push
				seq++
				// Few distinct deadlines on purpose: ties are where the
				// (deadline, seq) order can silently break.
				deadline := Time(arg % 8)
				tok := &waitToken{heapIdx: -1}
				q.push(deadline, seq, tok)
				ref.push(deadline, seq, tok)
				live = append(live, tok)
			case 1: // popMin
				if q.len() == 0 {
					continue
				}
				got, want := q.popMin(), ref.popMin()
				if got.deadline != want.deadline || got.seq != want.seq || got.tok != want.tok {
					t.Fatalf("popMin mismatch: got (%v, %d), want (%v, %d)",
						got.deadline, got.seq, want.deadline, want.seq)
				}
				if got.tok.heapIdx != -1 {
					t.Fatalf("popped token still has heapIdx %d", got.tok.heapIdx)
				}
			case 2: // remove an arbitrary live token
				if len(live) == 0 {
					continue
				}
				j := int(arg) % len(live)
				tok := live[j]
				live = append(live[:j], live[j+1:]...)
				if got, want := q.remove(tok), ref.remove(tok); got != want {
					t.Fatalf("remove reported %v, reference says %v", got, want)
				}
				if tok.heapIdx != -1 {
					t.Fatalf("removed token still has heapIdx %d", tok.heapIdx)
				}
			}
			if q.len() != len(ref.entries) {
				t.Fatalf("len mismatch: heap %d, reference %d", q.len(), len(ref.entries))
			}
			checkIndexed(t, &q)
		}
		// Drain: the remaining pop order must equal the reference's.
		for q.len() > 0 {
			got, want := q.popMin(), ref.popMin()
			if got.deadline != want.deadline || got.seq != want.seq {
				t.Fatalf("drain mismatch: got (%v, %d), want (%v, %d)",
					got.deadline, got.seq, want.deadline, want.seq)
			}
		}
	})
}

// TestStaleTimerRemovedEagerly pins the fix for the dead-entry leak: when an
// event wins the race against a WaitTimeout timer, the loser's heap entry is
// removed immediately instead of lingering until its deadline. Before the
// fix, each event-win cycle left one dead entry behind, so a hot
// signal-before-deadline loop grew the heap without bound.
func TestStaleTimerRemovedEagerly(t *testing.T) {
	env := NewEnv(1)
	const cycles = 1000
	evs := make([]*Event, cycles)
	for i := range evs {
		evs[i] = env.NewEvent("ping")
	}
	maxTimers := 0
	env.Go("waiter", func(p *Proc) {
		for i := 0; i < cycles; i++ {
			if !p.WaitTimeout(evs[i], Second) {
				t.Errorf("cycle %d: timer fired before the trigger", i)
				return
			}
			// At most the pinger's own sleep timer may be live here; the
			// waiter's timed-out token must have left the heap with it.
			if n := env.timers.len(); n > maxTimers {
				maxTimers = n
			}
		}
	})
	env.Go("pinger", func(p *Proc) {
		for i := 0; i < cycles; i++ {
			p.Sleep(Microsecond)
			evs[i].Trigger()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxTimers > 2 {
		t.Errorf("timer heap grew to %d entries over %d event-win cycles; stale timers are leaking", maxTimers, cycles)
	}
	if n := env.timers.len(); n != 0 {
		t.Errorf("%d timer entries left after the simulation drained", n)
	}
}

// legacyTimer and legacyHeap reconstruct the previous container/heap
// implementation — pointer entries, one allocation per push — as the
// baseline the benchmark below compares the indexed value heap against.
type legacyTimer struct {
	deadline Time
	seq      uint64
}

type legacyHeap []*legacyTimer

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x interface{}) { *h = append(*h, x.(*legacyTimer)) }
func (h *legacyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// benchDeadline spreads deadlines so pushes interleave with pops the way
// simulation timers do, rather than degenerate FIFO order.
func benchDeadline(i int) Time { return Time((i * 2654435761) % 4096) }

func BenchmarkTimerQueuePushPop(b *testing.B) {
	b.Run("indexed", func(b *testing.B) {
		var q timerQueue
		toks := make([]waitToken, 64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := &toks[i%len(toks)]
			tok.heapIdx = -1
			q.push(benchDeadline(i), uint64(i), tok)
			if q.len() >= len(toks) {
				q.popMin()
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		var h legacyHeap
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heap.Push(&h, &legacyTimer{deadline: benchDeadline(i), seq: uint64(i)})
			if h.Len() >= 64 {
				heap.Pop(&h)
			}
		}
	})
}

// BenchmarkSleepCycle measures one full kernel scheduling cycle: timer
// push, heap pop, clock advance, process dispatch.
func BenchmarkSleepCycle(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv(1)
	env.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestSleepCycleAllocFree pins the steady-state allocation budget of the
// kernel's hottest path. A finished Env cannot be resumed (RunUntil kills
// the remaining processes at its horizon), so the marginal cost per cycle
// is taken as the difference between a long and a short complete run: the
// fixed setup cost (Env, goroutine, token) cancels, and what remains is
// the per-cycle cost — which must be zero, because a sleep cycle reuses
// its wait token and heap slot.
func TestSleepCycleAllocFree(t *testing.T) {
	measure := func(cycles int) float64 {
		return testing.AllocsPerRun(10, func() {
			env := NewEnv(1)
			env.Go("sleeper", func(p *Proc) {
				for i := 0; i < cycles; i++ {
					p.Sleep(Microsecond)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	const short, long = 200, 1200
	perCycle := (measure(long) - measure(short)) / (long - short)
	t.Logf("%.4f allocs per sleep cycle", perCycle)
	if perCycle > 0.01 {
		t.Errorf("one sleep cycle allocates %.4f objects, want ~0", perCycle)
	}
}
