package vclock

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var done Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(Seconds(2.5))
		done = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != Seconds(2.5) {
		t.Fatalf("woke at %v, want 2.5s", done)
	}
	if env.Now() != Seconds(2.5) {
		t.Fatalf("clock at %v, want 2.5s", env.Now())
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		env := NewEnv(7)
		for i := 0; i < 5; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(Time(i+1) * Millisecond)
					fmt.Fprintf(&sb, "%s@%v ", p.Name(), p.Now())
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic trace:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("go")
	woke := []string{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		env.Go(name, func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, p.Name())
		})
	}
	env.Go("trigger", func(p *Proc) {
		p.Sleep(Second)
		ev.Trigger()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w0" || woke[1] != "w1" || woke[2] != "w2" {
		t.Fatalf("wake order %v, want [w0 w1 w2]", woke)
	}
}

func TestWaitOnTriggeredEventReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("done")
	ev.Trigger()
	var at Time = -1
	env.Go("w", func(p *Proc) {
		p.Wait(ev)
		at = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("waited until %v, want 0", at)
	}
}

func TestWaitTimeout(t *testing.T) {
	env := NewEnv(1)
	never := env.NewEvent("never")
	soon := env.NewEvent("soon")
	var timedOut, triggered bool
	var toAt, trAt Time
	env.Go("timeout", func(p *Proc) {
		timedOut = !p.WaitTimeout(never, Seconds(3))
		toAt = p.Now()
	})
	env.Go("triggered", func(p *Proc) {
		triggered = p.WaitTimeout(soon, Seconds(3))
		trAt = p.Now()
	})
	env.Go("firer", func(p *Proc) {
		p.Sleep(Second)
		soon.Trigger()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || toAt != Seconds(3) {
		t.Fatalf("timeout case: timedOut=%v at %v", timedOut, toAt)
	}
	if !triggered || trAt != Second {
		t.Fatalf("trigger case: triggered=%v at %v", triggered, trAt)
	}
}

func TestTimeoutThenTriggerDoesNotDoubleWake(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("late")
	wakes := 0
	env.Go("w", func(p *Proc) {
		p.WaitTimeout(ev, Second)
		wakes++
		p.Sleep(Seconds(5))
	})
	env.Go("firer", func(p *Proc) {
		p.Sleep(Seconds(2))
		ev.Trigger() // after the waiter already timed out
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 {
		t.Fatalf("woke %d times, want 1", wakes)
	}
}

func TestKillBlockedProcess(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("never")
	reached := false
	victim := env.Go("victim", func(p *Proc) {
		p.Wait(ev)
		reached = true
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(Second)
		victim.Kill()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process continued past Wait")
	}
}

func TestKillRunsDeferredCleanup(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("never")
	cleaned := false
	victim := env.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(ev)
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(Second)
		victim.Kill()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestHungProcessesKilledAtShutdown(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("never")
	env.Go("hung", func(p *Proc) { p.Wait(ev) })
	env.Go("worker", func(p *Proc) { p.Sleep(Second) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Second {
		t.Fatalf("clock at %v, want 1s", env.Now())
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	env := NewEnv(1)
	env.Go("bad", func(p *Proc) {
		p.Sleep(Second)
		panic("boom")
	})
	err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	if err := env.RunUntil(Seconds(10)); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv(1)
	var childAt Time = -1
	env.Go("parent", func(p *Proc) {
		p.Sleep(Second)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(Second)
			childAt = c.Now()
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != Seconds(2) {
		t.Fatalf("child finished at %v, want 2s", childAt)
	}
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Millisecond)
			q.Push(i)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO order", got)
		}
	}
}

func TestQueuePopTimeout(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, "q")
	var ok1, ok2 bool
	var v2 string
	env.Go("consumer", func(p *Proc) {
		_, ok1 = q.PopTimeout(p, Second)      // nothing arrives: timeout
		v2, ok2 = q.PopTimeout(p, Seconds(5)) // arrives at t=3s
	})
	env.Go("producer", func(p *Proc) {
		p.Sleep(Seconds(3))
		q.Push("hello")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Fatal("first pop should have timed out")
	}
	if !ok2 || v2 != "hello" {
		t.Fatalf("second pop = %q, %v", v2, ok2)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	total := 0
	for i := 0; i < 3; i++ {
		env.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			for j := 0; j < 2; j++ {
				total += q.Pop(p)
			}
		})
	}
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 6; i++ {
			p.Sleep(Millisecond)
			q.Push(i)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 21 {
		t.Fatalf("total = %d, want 21", total)
	}
}

func TestMutexExclusionAndFairness(t *testing.T) {
	env := NewEnv(1)
	m := NewMutex(env, "gil")
	var order []string
	hold := func(p *Proc, d Time) {
		m.Lock(p)
		order = append(order, p.Name()+"+")
		p.Sleep(d)
		order = append(order, p.Name()+"-")
		m.Unlock(p)
	}
	env.Go("a", func(p *Proc) { hold(p, Second) })
	env.Go("b", func(p *Proc) { hold(p, Second) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a+ a- b+ b-"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestMutexForceRelease(t *testing.T) {
	env := NewEnv(1)
	m := NewMutex(env, "gil")
	hung := env.NewEvent("hung-api")
	var stolen bool
	env.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Wait(hung) // hangs forever holding the lock
	})
	env.Go("watchdog", func(p *Proc) {
		p.Sleep(Second)
		prev := m.ForceRelease()
		if prev == nil || prev.Name() != "holder" {
			t.Errorf("ForceRelease returned %v", prev)
		}
		m.Lock(p)
		stolen = true
		m.Unlock(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !stolen {
		t.Fatal("watchdog failed to steal the lock")
	}
}

func TestTryLock(t *testing.T) {
	env := NewEnv(1)
	m := NewMutex(env, "m")
	env.Go("p", func(p *Proc) {
		if !m.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSleepOrderProperty: for any set of sleep durations, processes wake in
// nondecreasing deadline order, with FIFO tie-breaking.
func TestSleepOrderProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		env := NewEnv(1)
		type wake struct {
			at  Time
			idx int
		}
		var wakes []wake
		for i, d := range durs {
			i, d := i, d
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Time(d) * Microsecond)
				wakes = append(wakes, wake{p.Now(), i})
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i].at < wakes[i-1].at {
				return false
			}
			if wakes[i].at == wakes[i-1].at && durs[wakes[i].idx] == durs[wakes[i-1].idx] &&
				wakes[i].idx < wakes[i-1].idx {
				return false // same duration must preserve spawn order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClockMonotonicProperty: the clock never goes backwards no matter how
// sleeps, events and kills interleave.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		env := NewEnv(seed)
		count := int(n%8) + 2
		evs := make([]*Event, count)
		for i := range evs {
			evs[i] = env.NewEvent(fmt.Sprintf("e%d", i))
		}
		last := Time(0)
		mono := true
		for i := 0; i < count; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(Time(env.Rand().Intn(1000)+1) * Microsecond)
					if p.Now() < last {
						mono = false
					}
					last = p.Now()
					evs[i].Trigger()
					if i > 0 {
						p.WaitTimeout(evs[i-1], Millisecond)
					}
				}
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		return mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSleepWake(b *testing.B) {
	env := NewEnv(1)
	env.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueueThroughput(b *testing.B) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Pop(p)
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			if i%64 == 0 {
				p.Sleep(Microsecond)
			}
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// Property: under any interleaving of pushes and pops across two
// processes, the queue delivers every pushed value exactly once, in FIFO
// order.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(pushGaps []uint8) bool {
		if len(pushGaps) == 0 {
			return true
		}
		if len(pushGaps) > 64 {
			pushGaps = pushGaps[:64]
		}
		env := NewEnv(1)
		q := NewQueue[int](env, "q")
		var got []int
		env.Go("consumer", func(p *Proc) {
			for i := 0; i < len(pushGaps); i++ {
				got = append(got, q.Pop(p))
			}
		})
		env.Go("producer", func(p *Proc) {
			for i, g := range pushGaps {
				if g > 0 {
					p.Sleep(Time(g) * Microsecond)
				}
				q.Push(i)
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		if len(got) != len(pushGaps) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEventNameAndTriggerIdempotence covers the remaining Event surface.
func TestEventNameAndTriggerIdempotence(t *testing.T) {
	env := NewEnv(1)
	ev := env.NewEvent("named")
	if ev.Name() != "named" || ev.Triggered() {
		t.Fatal("fresh event state wrong")
	}
	wakes := 0
	env.Go("w", func(p *Proc) {
		p.Wait(ev)
		wakes++
	})
	env.Go("t", func(p *Proc) {
		p.Sleep(Second)
		ev.Trigger()
		ev.Trigger() // idempotent
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 || !ev.Triggered() {
		t.Fatalf("wakes=%d triggered=%v", wakes, ev.Triggered())
	}
}
