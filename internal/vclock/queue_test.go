package vclock

import (
	"testing"
)

// TestQueueEmptyNonBlockingOps pins the non-blocking accessors on an
// empty queue: TryPop fails without blocking, Drain returns nothing, and
// Len is zero — all callable without any running process.
func TestQueueEmptyNonBlockingOps(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryPop(); ok {
		t.Fatalf("TryPop on empty queue returned %v", v)
	}
	if items := q.Drain(); items != nil {
		t.Fatalf("Drain on empty queue returned %v", items)
	}
}

// TestQueueTryPopAndDrainOrder: TryPop and Drain preserve FIFO order and
// interact correctly with Len.
func TestQueueTryPopAndDrainOrder(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	for i := 1; i <= 4; i++ {
		q.Push(i)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = %v,%v", v, ok)
	}
	rest := q.Drain()
	if len(rest) != 3 || rest[0] != 2 || rest[2] != 4 {
		t.Fatalf("Drain = %v", rest)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

// TestQueueSimultaneousWakeupPopOrdering pins the determinism contract
// the trace goldens rely on: when several processes are blocked in Pop
// and items arrive while all of them wake at the same virtual instant,
// items are claimed in the blocked processes' wake order — which is
// their spawn order, every run.
func TestQueueSimultaneousWakeupPopOrdering(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		env := NewEnv(1)
		q := NewQueue[string](env, "q")
		got := make(map[string]string)
		for _, name := range []string{"c0", "c1", "c2"} {
			name := name
			env.Go(name, func(p *Proc) {
				got[name] = q.Pop(p)
			})
		}
		env.Go("producer", func(p *Proc) {
			p.Sleep(Second)
			// All three consumers are parked on the same wake event;
			// pushes at one instant must resolve deterministically.
			q.Push("a")
			q.Push("b")
			q.Push("c")
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		if got["c0"] != "a" || got["c1"] != "b" || got["c2"] != "c" {
			t.Fatalf("trial %d: wake order not deterministic: %v", trial, got)
		}
	}
}

// TestQueuePopTimeoutExpiresEmpty: PopTimeout on a queue that never
// fills returns ok=false exactly at the deadline.
func TestQueuePopTimeoutExpiresEmpty(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	env.Go("c", func(p *Proc) {
		start := p.Now()
		if _, ok := q.PopTimeout(p, 3*Second); ok {
			t.Error("PopTimeout succeeded on an empty queue")
		}
		if waited := p.Now() - start; waited != 3*Second {
			t.Errorf("waited %v, want 3s", waited)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePopTimeoutZeroDeadline: a non-positive deadline on an empty
// queue fails immediately, but an already-queued item is still taken.
func TestQueuePopTimeoutZeroDeadline(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	env.Go("c", func(p *Proc) {
		if _, ok := q.PopTimeout(p, 0); ok {
			t.Error("zero-deadline PopTimeout on empty queue succeeded")
		}
		q.Push(7)
		if v, ok := q.PopTimeout(p, 0); !ok || v != 7 {
			t.Errorf("queued item not taken: %v,%v", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePushWhileTimedOutConsumerWaits: an item pushed before the
// deadline is delivered and PopTimeout reports the true wait time.
func TestQueuePushWhileTimedOutConsumerWaits(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	env.Go("producer", func(p *Proc) {
		p.Sleep(Second)
		q.Push(42)
	})
	env.Go("c", func(p *Proc) {
		start := p.Now()
		v, ok := q.PopTimeout(p, 5*Second)
		if !ok || v != 42 {
			t.Errorf("PopTimeout = %v,%v", v, ok)
		}
		if waited := p.Now() - start; waited != Second {
			t.Errorf("waited %v, want 1s", waited)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueZeroValueClearedOnPop: popped slots are zeroed so drained
// backing arrays do not retain references (pointer payloads).
func TestQueueZeroValueClearedOnPop(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[*int](env, "q")
	x := new(int)
	q.Push(x)
	if v, ok := q.TryPop(); !ok || v != x {
		t.Fatalf("TryPop = %v,%v", v, ok)
	}
	// Push/pop again to confirm the queue still works after zeroing.
	q.Push(nil)
	if v, ok := q.TryPop(); !ok || v != nil {
		t.Fatalf("second TryPop = %v,%v", v, ok)
	}
}
