package vclock

// Queue is an unbounded FIFO queue usable from simulation processes. Pop
// blocks the calling process until an item is available. Queues are the
// building block for stream work queues and proxy IPC channels.
type Queue[T any] struct {
	env   *Env
	items []T
	wake  *Event
	name  string
}

// NewQueue creates an empty queue bound to env.
func NewQueue[T any](env *Env, name string) *Queue[T] {
	return &Queue[T]{env: env, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes any processes blocked in Pop.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if q.wake != nil && !q.wake.triggered {
		q.wake.Trigger()
	}
}

// Pop removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		p.Wait(q.waitEvent())
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// PopTimeout is Pop with a deadline; ok reports whether an item was
// obtained before d elapsed.
func (q *Queue[T]) PopTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := p.Now() + d
	for len(q.items) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 || !p.WaitTimeout(q.waitEvent(), remain) {
			if len(q.items) > 0 {
				break
			}
			return v, false
		}
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// TryPop removes the head item without blocking; ok reports success.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	out := q.items
	q.items = nil
	return out
}

func (q *Queue[T]) waitEvent() *Event {
	if q.wake == nil || q.wake.triggered {
		q.wake = q.env.NewEvent(q.name + ".wake")
	}
	return q.wake
}

// Mutex is a virtual-time mutual-exclusion lock with owner tracking. It
// models locks whose holder can block inside the lock (such as the Python
// GIL in the paper's §3.2), which is why it exposes the owner and a forced
// release: a watchdog can steal the lock from a process that is hung in a
// device call and will never release it.
type Mutex struct {
	env     *Env
	owner   *Proc
	waiters []*waitToken
	name    string
}

// NewMutex creates an unlocked mutex.
func NewMutex(env *Env, name string) *Mutex {
	return &Mutex{env: env, name: name}
}

// Lock acquires the mutex, blocking p until it is free. Lock panics if p
// already owns the mutex (the lock is not reentrant).
func (m *Mutex) Lock(p *Proc) {
	if m.owner == p {
		panic("vclock: recursive Mutex.Lock by " + p.name)
	}
	for m.owner != nil {
		tok := &waitToken{p: p}
		m.waiters = append(m.waiters, tok)
		p.yield()
	}
	m.owner = p
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	return true
}

// Unlock releases the mutex. It panics if p is not the owner.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("vclock: Mutex.Unlock by non-owner " + p.name)
	}
	m.release()
}

// ForceRelease releases the mutex regardless of owner, waking the next
// waiter. It models the paper's SIGUSR1 handler that releases the GIL held
// by a thread hung in a synchronization API. It returns the process that
// owned the lock, or nil if it was free.
func (m *Mutex) ForceRelease() *Proc {
	prev := m.owner
	if prev != nil {
		m.release()
	}
	return prev
}

// Owner returns the current owner, or nil if the mutex is free.
func (m *Mutex) Owner() *Proc { return m.owner }

func (m *Mutex) release() {
	m.owner = nil
	for len(m.waiters) > 0 {
		tok := m.waiters[0]
		m.waiters = m.waiters[1:]
		if tok.fired {
			continue
		}
		tok.fired = true
		tok.cause = wakeEvent
		tok.p.token = tok
		m.env.runq = append(m.env.runq, tok.p)
		break
	}
}
