package vclock

// Queue is an unbounded FIFO queue usable from simulation processes. Pop
// blocks the calling process until an item is available. Queues are the
// building block for stream work queues and proxy IPC channels.
//
// Blocked consumers park directly on the queue's waiter list (no
// intermediate Event), and the item slice is head-compacted rather than
// re-sliced, so a steady-state push/pop cycle allocates nothing.
type Queue[T any] struct {
	env   *Env
	items []T
	head  int
	name  string

	waiters []*waitToken
	whead   int
}

// NewQueue creates an empty queue bound to env.
func NewQueue[T any](env *Env, name string) *Queue[T] {
	return &Queue[T]{env: env, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes any processes blocked in Pop.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.wakeAll()
}

// wakeAll wakes every blocked consumer in registration order, exactly as
// triggering a shared wake event would.
func (q *Queue[T]) wakeAll() {
	if q.whead == len(q.waiters) {
		return
	}
	e := q.env
	for q.whead < len(q.waiters) {
		tok := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead++
		if tok.fired {
			e.releaseToken(tok)
			continue
		}
		tok.fired = true
		tok.cause = wakeEvent
		if tok.heapIdx >= 0 {
			e.timers.remove(tok)
			e.releaseToken(tok)
		}
		tok.p.token = tok
		e.runq.push(tok.p)
	}
	q.waiters = q.waiters[:0]
	q.whead = 0
}

// popHead removes and returns the head item. Call only when Len() > 0.
func (q *Queue[T]) popHead() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Pop removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.Len() == 0 {
		if p.killed {
			panic(killedSentinel{})
		}
		tok := q.env.newToken(p, 1)
		q.waiters = append(q.waiters, tok)
		p.yield()
	}
	return q.popHead()
}

// PopTimeout is Pop with a deadline; ok reports whether an item was
// obtained before d elapsed.
func (q *Queue[T]) PopTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := p.Now() + d
	for q.Len() == 0 {
		if p.killed {
			panic(killedSentinel{})
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			return v, false
		}
		tok := q.env.newToken(p, 2)
		q.waiters = append(q.waiters, tok)
		q.env.addTimer(p.Now()+remain, tok)
		if p.yield() != wakeEvent {
			if q.Len() > 0 {
				break
			}
			return v, false
		}
	}
	return q.popHead(), true
}

// TryPop removes the head item without blocking; ok reports success.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.popHead(), true
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	out := q.items[q.head:]
	q.items = nil
	q.head = 0
	return out
}

// Mutex is a virtual-time mutual-exclusion lock with owner tracking. It
// models locks whose holder can block inside the lock (such as the Python
// GIL in the paper's §3.2), which is why it exposes the owner and a forced
// release: a watchdog can steal the lock from a process that is hung in a
// device call and will never release it.
type Mutex struct {
	env     *Env
	owner   *Proc
	waiters []*waitToken
	whead   int
	name    string
}

// NewMutex creates an unlocked mutex.
func NewMutex(env *Env, name string) *Mutex {
	return &Mutex{env: env, name: name}
}

// Lock acquires the mutex, blocking p until it is free. Lock panics if p
// already owns the mutex (the lock is not reentrant).
func (m *Mutex) Lock(p *Proc) {
	if m.owner == p {
		panic("vclock: recursive Mutex.Lock by " + p.name)
	}
	for m.owner != nil {
		tok := m.env.newToken(p, 1)
		m.waiters = append(m.waiters, tok)
		p.yield()
	}
	m.owner = p
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	return true
}

// Unlock releases the mutex. It panics if p is not the owner.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("vclock: Mutex.Unlock by non-owner " + p.name)
	}
	m.release()
}

// ForceRelease releases the mutex regardless of owner, waking the next
// waiter. It models the paper's SIGUSR1 handler that releases the GIL held
// by a thread hung in a synchronization API. It returns the process that
// owned the lock, or nil if it was free.
func (m *Mutex) ForceRelease() *Proc {
	prev := m.owner
	if prev != nil {
		m.release()
	}
	return prev
}

// Owner returns the current owner, or nil if the mutex is free.
func (m *Mutex) Owner() *Proc { return m.owner }

func (m *Mutex) release() {
	m.owner = nil
	for m.whead < len(m.waiters) {
		tok := m.waiters[m.whead]
		m.waiters[m.whead] = nil
		m.whead++
		if m.whead == len(m.waiters) {
			m.waiters = m.waiters[:0]
			m.whead = 0
		}
		if tok.fired {
			m.env.releaseToken(tok)
			continue
		}
		tok.fired = true
		tok.cause = wakeEvent
		tok.p.token = tok
		m.env.runq.push(tok.p)
		break
	}
}
