// Package vclock implements a deterministic virtual-time simulation kernel.
//
// The kernel runs simulation processes (ordinary goroutines) cooperatively:
// exactly one process executes at a time, and the virtual clock advances only
// when every process is blocked in Sleep, Wait, or WaitTimeout. Given the
// same seed and the same program, a simulation produces a byte-identical
// event trace on every run, which is what makes the failure-recovery
// experiments in this repository reproducible.
//
// The design follows the classic process-interaction style (SimPy, OMNeT++):
//
//	env := vclock.NewEnv(seed)
//	env.Go("worker", func(p *vclock.Proc) {
//	    p.Sleep(vclock.Seconds(1.5))
//	    ev.Trigger()
//	})
//	err := env.Run()
//
// Blocking primitives must only be called from inside the owning process.
// Trigger may be called from any process (or from scheduler callbacks), but
// never from outside the simulation.
//
// The scheduler's hot path is allocation-free in steady state: timers live
// in a value-typed indexed heap (eventq.go), the run queue is a ring
// buffer, and wait tokens are recycled through a free list once every
// reference to them (timer heap, event waiter lists, the woken process)
// has been dropped.
package vclock

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration constants and conversion helpers. Virtual durations reuse the
// Time type: the zero point is simulation start.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// Seconds converts a floating-point second count to a virtual duration.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Millis converts a floating-point millisecond count to a virtual duration.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Micros converts a floating-point microsecond count to a virtual duration.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Sec reports t as floating-point seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateBlocked
	stateDead
)

// wakeCause reports why a blocked process was woken.
type wakeCause int

const (
	wakeRun wakeCause = iota // scheduled to run (new or yielded)
	wakeEvent
	wakeTimeout
	wakeKilled
)

// killedSentinel is panicked inside a killed process to unwind its stack.
type killedSentinel struct{}

// Proc is a simulation process. All blocking methods must be called from the
// goroutine executing the process body.
type Proc struct {
	env    *Env
	id     int
	name   string
	state  procState
	killed bool

	resume chan wakeCause
	body   func(*Proc)

	// token is the wait token for the current block, if any. It lets an
	// event trigger and a timeout race without double-waking the process.
	token *waitToken
}

// waitToken resolves the race between an event trigger and a timer for the
// same blocked process: whichever fires first claims the token. Tokens are
// pooled: refs counts live references (timer-heap entry, waiter-list
// entries, and the woken process's token slot), and a token returns to the
// environment's free list when the count hits zero.
type waitToken struct {
	p       *Proc
	fired   bool
	cause   wakeCause
	refs    int32
	heapIdx int32 // index in the timer heap, -1 when absent
}

// Event is a one-shot condition processes can wait on. Once triggered it
// stays triggered; waiting on a triggered event returns immediately.
type Event struct {
	env       *Env
	triggered bool
	waiters   []*waitToken
	name      string
}

// Stats counts the scheduling work a simulation performed. The bench
// harness divides these by wall time for its events/sec trajectory metric.
type Stats struct {
	// Dispatches is the number of process wakeups executed (every resume
	// of a process counts once, including the final kill).
	Dispatches uint64
	// TimerFires is the number of clock advances driven by timer expiry.
	TimerFires uint64
	// Triggers is the number of Event.Trigger calls that fired.
	Triggers uint64
	// Spawns is the number of processes created.
	Spawns uint64
}

// Events totals the scheduler events a run processed: dispatches, timer
// fires and event triggers (spawns are counted by their first dispatch).
func (s Stats) Events() uint64 { return s.Dispatches + s.TimerFires + s.Triggers }

// Add accumulates other into s (for aggregating stats across runs).
func (s *Stats) Add(other Stats) {
	s.Dispatches += other.Dispatches
	s.TimerFires += other.TimerFires
	s.Triggers += other.Triggers
	s.Spawns += other.Spawns
}

// Env is a simulation environment: a virtual clock plus the set of processes
// sharing it. An Env is not safe for concurrent use from outside the
// simulation; drive it with Run or RunUntil from a single goroutine.
type Env struct {
	now     Time
	seq     uint64
	timers  timerQueue
	runq    procRing
	procs   map[int]*Proc
	nextID  int
	rng     *rand.Rand
	yieldCh chan struct{}
	failure error
	running bool
	tracer  func(t Time, format string, args ...interface{})
	rec     interface{}

	tokFree []*waitToken
	doneEv  *Event
	stats   Stats
}

// ProcRecorder is implemented by recorders that want process-lifecycle
// notifications (see SetRecorder). It lives here so vclock needs no
// dependency on the trace package.
type ProcRecorder interface {
	ProcStart(t Time, id int, name string)
	ProcEnd(t Time, id int, name string)
}

// NewEnv creates an environment whose random source is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		procs:   make(map[int]*Proc),
		rng:     rand.New(rand.NewSource(seed)),
		yieldCh: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Stats returns the scheduling-work counters accumulated so far.
func (e *Env) Stats() Stats { return e.stats }

// Rand returns the environment's deterministic random source. It must only
// be used from inside simulation processes (or between Run calls).
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetTracer installs a trace sink invoked by Tracef. A nil tracer disables
// tracing.
func (e *Env) SetTracer(fn func(t Time, format string, args ...interface{})) {
	e.tracer = fn
}

// Tracef emits a trace line at the current virtual time if tracing is on.
func (e *Env) Tracef(format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer(e.now, format, args...)
	}
}

// SetRecorder attaches a structured event recorder to the environment.
// The slot is untyped so vclock stays dependency-free; the trace package
// owns the concrete type and retrieves it with trace.Of. A recorder that
// also implements ProcRecorder receives process start/end notifications.
func (e *Env) SetRecorder(r interface{}) { e.rec = r }

// Recorder returns the attached recorder slot (nil when tracing is off).
func (e *Env) Recorder() interface{} { return e.rec }

// newToken takes a token from the free list (or allocates one) with the
// given initial reference count.
func (e *Env) newToken(p *Proc, refs int32) *waitToken {
	if n := len(e.tokFree) - 1; n >= 0 {
		tok := e.tokFree[n]
		e.tokFree[n] = nil
		e.tokFree = e.tokFree[:n]
		tok.p, tok.fired, tok.cause, tok.refs, tok.heapIdx = p, false, 0, refs, -1
		return tok
	}
	return &waitToken{p: p, refs: refs, heapIdx: -1}
}

// releaseToken drops one reference; the token is recycled when none remain.
func (e *Env) releaseToken(tok *waitToken) {
	tok.refs--
	if tok.refs == 0 {
		tok.p = nil
		e.tokFree = append(e.tokFree, tok)
	}
}

// Go spawns a new simulation process. It may be called before Run or from
// inside a running process; the new process is appended to the run queue and
// will execute at the current virtual time.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		id:     e.nextID,
		name:   name,
		state:  stateNew,
		resume: make(chan wakeCause),
		body:   body,
	}
	e.nextID++
	e.procs[p.id] = p
	e.runq.push(p)
	e.stats.Spawns++
	if pr, ok := e.rec.(ProcRecorder); ok {
		pr.ProcStart(e.now, p.id, p.name)
	}
	return p
}

// NewEvent creates an untriggered event.
func (e *Env) NewEvent(name string) *Event {
	return &Event{env: e, name: name}
}

// DoneEvent returns a shared, permanently-triggered event. Waiting on it
// returns immediately; triggering it is a no-op. Callers that need an
// "already complete" completion handle (an idle stream's drain, for
// example) use it instead of allocating a fresh triggered event.
func (e *Env) DoneEvent() *Event {
	if e.doneEv == nil {
		e.doneEv = &Event{env: e, triggered: true, name: "done"}
	}
	return e.doneEv
}

// start launches the goroutine backing p. Called the first time p is
// scheduled.
func (e *Env) start(p *Proc) {
	go func() {
		cause := <-p.resume
		if cause == wakeKilled {
			p.state = stateDead
			delete(e.procs, p.id)
			if pr, ok := e.rec.(ProcRecorder); ok {
				pr.ProcEnd(e.now, p.id, p.name)
			}
			e.yieldCh <- struct{}{}
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSentinel); !ok && e.failure == nil {
					e.failure = fmt.Errorf("vclock: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.state = stateDead
			delete(e.procs, p.id)
			if pr, ok := e.rec.(ProcRecorder); ok {
				pr.ProcEnd(e.now, p.id, p.name)
			}
			e.yieldCh <- struct{}{}
		}()
		p.body(p)
	}()
}

// dispatch runs p until it blocks or exits, then returns control.
func (e *Env) dispatch(p *Proc, cause wakeCause) {
	if p.state == stateNew {
		p.state = stateRunnable
		e.start(p)
	}
	p.state = stateRunnable
	e.stats.Dispatches++
	p.resume <- cause
	<-e.yieldCh
}

// Run executes the simulation until no process is runnable and no timers are
// pending. Processes still blocked on untriggered events at that point (for
// example, workers hung at a failed collective) are killed so their
// goroutines do not leak. Run returns the first process panic, if any.
func (e *Env) Run() error { return e.RunUntil(-1) }

// RunUntil is Run with a horizon: the simulation stops once the clock would
// advance past limit (limit < 0 means no horizon). The clock is left at the
// last executed event time, never past the horizon.
func (e *Env) RunUntil(limit Time) error {
	if e.running {
		return fmt.Errorf("vclock: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for e.failure == nil {
		if e.runq.len() > 0 {
			p := e.runq.pop()
			if p.state == stateDead {
				// Stale wakeup of a process that already unwound.
				if p.token != nil {
					e.releaseToken(p.token)
					p.token = nil
				}
				continue
			}
			cause := wakeRun
			if p.token != nil {
				cause = p.token.cause
				e.releaseToken(p.token)
				p.token = nil
			}
			if p.killed {
				cause = wakeKilled
			}
			e.dispatch(p, cause)
			continue
		}
		// Nothing runnable: advance the clock to the next timer.
		fired := false
		for e.timers.len() > 0 {
			next := e.timers.min()
			if next.tok.fired {
				// Fired tokens are removed from the heap eagerly, so this
				// is defensive only.
				e.releaseToken(e.timers.popMin().tok)
				continue
			}
			if limit >= 0 && next.deadline > limit {
				e.shutdown()
				return e.failure
			}
			ent := e.timers.popMin()
			e.now = ent.deadline
			tok := ent.tok
			tok.fired = true
			tok.cause = wakeTimeout
			tok.p.token = tok // the heap's reference becomes the token slot's
			e.runq.push(tok.p)
			e.stats.TimerFires++
			fired = true
			break
		}
		if !fired {
			// No runnable processes and no timers: simulation is done.
			e.shutdown()
			return e.failure
		}
	}
	e.shutdown()
	return e.failure
}

// shutdown kills all remaining processes so their goroutines exit.
func (e *Env) shutdown() {
	ids := make([]int, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := e.procs[id]
		if p.state == stateDead {
			continue
		}
		p.killed = true
		e.dispatch(p, wakeKilled)
	}
	e.runq.clear()
}

// yield transfers control back to the scheduler and blocks until this
// process is woken; it returns the wake cause. If the process was killed
// while blocked, yield unwinds its stack.
func (p *Proc) yield() wakeCause {
	p.state = stateBlocked
	p.env.yieldCh <- struct{}{}
	cause := <-p.resume
	if cause == wakeKilled {
		panic(killedSentinel{})
	}
	p.state = stateRunnable
	return cause
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Sleep blocks the process for d of virtual time. Negative or zero durations
// yield to other runnable processes at the current time.
func (p *Proc) Sleep(d Time) {
	if p.killed {
		panic(killedSentinel{})
	}
	if d <= 0 {
		p.Yield()
		return
	}
	tok := p.env.newToken(p, 1)
	p.env.addTimer(p.env.now+d, tok)
	p.yield()
}

// Yield places the process at the back of the run queue at the current time,
// letting other runnable processes execute first.
func (p *Proc) Yield() {
	if p.killed {
		panic(killedSentinel{})
	}
	p.env.runq.push(p)
	p.yield()
}

// Wait blocks until ev is triggered. Waiting on an already-triggered event
// returns immediately.
func (p *Proc) Wait(ev *Event) {
	if p.killed {
		panic(killedSentinel{})
	}
	if ev.triggered {
		return
	}
	tok := p.env.newToken(p, 1)
	ev.waiters = append(ev.waiters, tok)
	p.yield()
}

// WaitTimeout blocks until ev triggers or d elapses. It reports whether the
// event triggered (true) or the wait timed out (false).
func (p *Proc) WaitTimeout(ev *Event, d Time) bool {
	if p.killed {
		panic(killedSentinel{})
	}
	if ev.triggered {
		return true
	}
	if d <= 0 {
		return false
	}
	tok := p.env.newToken(p, 2) // referenced by the waiter list and the timer heap
	ev.waiters = append(ev.waiters, tok)
	p.env.addTimer(p.env.now+d, tok)
	cause := p.yield()
	return cause == wakeEvent
}

// Kill marks the process for termination. A blocked or runnable process is
// unwound the next time it would run; a process killing itself unwinds
// immediately. Killing a dead process is a no-op.
func (p *Proc) Kill() {
	if p.state == stateDead {
		return
	}
	p.killed = true
	if p.token != nil {
		// Already queued for wake; the kill flag overrides the cause.
		return
	}
	if p.state == stateBlocked || p.state == stateNew {
		tok := p.env.newToken(p, 1)
		tok.fired = true
		tok.cause = wakeKilled
		p.token = tok
		p.env.runq.push(p)
	}
}

// Killed reports whether the process has been marked for termination.
func (p *Proc) Killed() bool { return p.killed }

func (e *Env) addTimer(deadline Time, tok *waitToken) {
	e.seq++
	e.timers.push(deadline, e.seq, tok)
}

// Trigger fires the event, waking all current waiters in registration order.
// Triggering an already-triggered event is a no-op.
func (ev *Event) Trigger() {
	if ev.triggered {
		return
	}
	ev.triggered = true
	e := ev.env
	e.stats.Triggers++
	for _, tok := range ev.waiters {
		if tok.fired {
			e.releaseToken(tok)
			continue
		}
		tok.fired = true
		tok.cause = wakeEvent
		if tok.heapIdx >= 0 {
			// The token also has a timeout pending; remove the now-dead
			// timer eagerly so the heap does not accumulate stale entries.
			e.timers.remove(tok)
			e.releaseToken(tok)
		}
		tok.p.token = tok // the waiter list's reference becomes the token slot's
		e.runq.push(tok.p)
	}
	ev.waiters = nil
}

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Name returns the event's diagnostic name.
func (ev *Event) Name() string { return ev.name }
