package vclock

// This file implements the kernel's two scheduling containers:
//
//   - timerQueue, an indexed 4-ary min-heap of pending virtual-time wakeups
//     ordered by (deadline, seq). Entries are stored by value, so pushing a
//     timer allocates nothing beyond amortized slice growth, and each wait
//     token records its heap index so a timer whose event won the race can
//     be removed eagerly in O(log n) instead of lingering as a dead entry.
//
//   - procRing, a power-of-two ring buffer holding runnable processes in
//     FIFO order. The previous []*Proc with head slicing re-allocated the
//     backing array on nearly every wake; the ring reuses it indefinitely.
//
// Both containers preserve the exact scheduling order of the original
// container/heap + slice implementation: (deadline, seq) is a strict total
// order (seq is unique), so min extraction is fully determined by the
// comparator regardless of heap shape, and the ring is FIFO by
// construction. Golden traces are therefore byte-identical across the
// swap.

// timerEntry is one pending wakeup, stored by value in the heap.
type timerEntry struct {
	deadline Time
	seq      uint64
	tok      *waitToken
}

// timerArity is the heap fan-out. A 4-ary heap halves the tree depth of a
// binary heap, which wins on the push-heavy workload here (most timers are
// removed eagerly or popped in near-FIFO order).
const timerArity = 4

type timerQueue struct {
	a []timerEntry
}

func (q *timerQueue) len() int { return len(q.a) }

func (q *timerQueue) push(deadline Time, seq uint64, tok *waitToken) {
	q.a = append(q.a, timerEntry{deadline: deadline, seq: seq, tok: tok})
	tok.heapIdx = int32(len(q.a) - 1)
	q.siftUp(len(q.a) - 1)
}

// min returns the earliest entry without removing it. Call only when
// len() > 0.
func (q *timerQueue) min() *timerEntry { return &q.a[0] }

// popMin removes and returns the earliest entry. Call only when len() > 0.
func (q *timerQueue) popMin() timerEntry {
	e := q.a[0]
	e.tok.heapIdx = -1
	last := len(q.a) - 1
	if last > 0 {
		q.a[0] = q.a[last]
		q.a[0].tok.heapIdx = 0
	}
	q.a[last] = timerEntry{}
	q.a = q.a[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return e
}

// remove deletes tok's entry, if it has one, without disturbing the
// relative order of the remaining entries. It reports whether an entry was
// removed.
func (q *timerQueue) remove(tok *waitToken) bool {
	i := int(tok.heapIdx)
	if i < 0 {
		return false
	}
	tok.heapIdx = -1
	last := len(q.a) - 1
	if i != last {
		q.a[i] = q.a[last]
		q.a[i].tok.heapIdx = int32(i)
	}
	q.a[last] = timerEntry{}
	q.a = q.a[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	return true
}

func (q *timerQueue) clear() {
	for i := range q.a {
		q.a[i].tok.heapIdx = -1
		q.a[i] = timerEntry{}
	}
	q.a = q.a[:0]
}

func (q *timerQueue) less(i, j int) bool {
	if q.a[i].deadline != q.a[j].deadline {
		return q.a[i].deadline < q.a[j].deadline
	}
	return q.a[i].seq < q.a[j].seq
}

func (q *timerQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / timerArity
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown restores heap order below i, reporting whether anything moved
// (remove uses this to decide whether to sift up instead).
func (q *timerQueue) siftDown(i int) bool {
	moved := false
	n := len(q.a)
	for {
		first := timerArity*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + timerArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			break
		}
		q.swap(i, best)
		i = best
		moved = true
	}
	return moved
}

func (q *timerQueue) swap(i, j int) {
	q.a[i], q.a[j] = q.a[j], q.a[i]
	q.a[i].tok.heapIdx = int32(i)
	q.a[j].tok.heapIdx = int32(j)
}

// procRing is a FIFO ring buffer of runnable processes. Capacity is always
// a power of two so indexing is a mask.
type procRing struct {
	buf  []*Proc
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

func (r *procRing) push(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *procRing) pop() *Proc {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *procRing) clear() {
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.head, r.n = 0, 0
}

func (r *procRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 16
	}
	nb := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}
