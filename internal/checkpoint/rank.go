package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// Meta is the metadata object written last, whose presence signals a
// complete and clean rank checkpoint (§3.2: "a metadata file is stored at
// the end, which signals a complete and clean checkpoint").
type Meta struct {
	Iter     int
	Rank     int
	Checksum uint64 // FNV-1a over the data object's bytes
	DataLen  int
}

// RankDir builds the rank-dependent checkpoint directory: each rank saves
// into its own directory so simultaneous JIT checkpoints cannot collide.
func RankDir(job, policy string, iter, rank int) string {
	return fmt.Sprintf("%s/ckpt/%s/iter%08d/rank%04d", job, policy, iter, rank)
}

// ParseRankDir extracts (iter, rank) from a RankDir path. The peer-shelter
// tier uses it to enumerate sheltered entries and prune old iterations.
func ParseRankDir(dir string) (iter, rank int, ok bool) {
	parts := strings.Split(dir, "/")
	if len(parts) < 2 {
		return 0, 0, false
	}
	it := parts[len(parts)-2]
	rk := parts[len(parts)-1]
	if !strings.HasPrefix(it, "iter") || !strings.HasPrefix(rk, "rank") {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(strings.TrimPrefix(it, "iter"))
	r, err2 := strconv.Atoi(strings.TrimPrefix(rk, "rank"))
	return i, r, err1 == nil && err2 == nil
}

func dataPath(dir string) string { return dir + "/model.bin" }
func metaPath(dir string) string { return dir + "/META" }

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// WriteRank writes one rank's checkpoint with the two-phase commit
// protocol: data first, META last — and each object is committed by
// atomic rename (write to a ".tmp" name, then rename into place), so a
// write that tears or fails mid-transfer never leaves a partial object at
// the final path. modelBytes is the modelled state size that drives write
// timing.
func WriteRank(p *vclock.Proc, st *Store, dir string, ms *train.ModelState, modelBytes int64) error {
	sp := trace.Of(p.Env()).Begin(p.Now(), "ckpt", trace.Rank(ms.Rank), "write-rank",
		"store", st.name, "iter", ms.Iter)
	data, err := ms.Encode()
	if err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	if err := writeAtomic(p, st, dataPath(dir), data, modelBytes); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	meta := Meta{Iter: ms.Iter, Rank: ms.Rank, Checksum: hashBytes(data), DataLen: len(data)}
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(meta); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	if err := writeAtomic(p, st, metaPath(dir), mb.Bytes(), 256); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	trace.Of(p.Env()).Instant(p.Now(), "ckpt", trace.Rank(ms.Rank), "commit",
		"store", st.name, "iter", ms.Iter)
	sp.End(p.Now())
	return nil
}

// writeAtomic writes data to path+".tmp" and renames it into place. On a
// write error the temporary object (possibly torn) is deleted so nothing
// partial ever becomes visible at path.
func writeAtomic(p *vclock.Proc, st *Store, path string, data []byte, modelBytes int64) error {
	tmp := path + ".tmp"
	if err := st.Write(p, tmp, data, modelBytes); err != nil {
		st.Delete(tmp)
		return err
	}
	return st.Rename(p, tmp, path)
}

// ReadMeta reads and decodes a rank checkpoint's metadata.
func ReadMeta(p *vclock.Proc, st *Store, dir string) (Meta, error) {
	raw, err := st.Read(p, metaPath(dir))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&m); err != nil {
		return Meta{}, fmt.Errorf("%w: bad META in %s: %v", ErrCorrupt, dir, err)
	}
	return m, nil
}

// Valid reports whether dir holds a complete rank checkpoint: META
// present (it is written last, so its existence certifies a clean save)
// and the data object present with the recorded length. This is the §3.3
// "discarding corrupted checkpoints" check at metadata cost; the content
// checksum is verified when the checkpoint is actually read (ReadRank).
func Valid(p *vclock.Proc, st *Store, dir string) bool {
	m, err := ReadMeta(p, st, dir)
	if err != nil {
		return false
	}
	length, ok := st.Stat(p, dataPath(dir))
	return ok && length == m.DataLen
}

// ValidDeep is Valid plus an end-to-end content check against the store's
// object checksum (ContentHash, the etag kept by the storage tier): it
// catches silent bit-flips that the metadata-only check cannot, at
// metadata cost rather than a full read. Restore-time assembly uses it so
// every rank deterministically skips a corrupted entry and the job falls
// back to the newest generation that is actually intact.
func ValidDeep(p *vclock.Proc, st *Store, dir string) bool {
	m, err := ReadMeta(p, st, dir)
	if err != nil {
		return false
	}
	length, ok := st.Stat(p, dataPath(dir))
	if !ok || length != m.DataLen {
		return false
	}
	sum, ok := st.ContentHash(p, dataPath(dir))
	return ok && sum == m.Checksum
}

// HasComplete reports whether dir holds a complete rank checkpoint using
// only zero-time metadata lookups (META written last certifies the commit,
// and the data object must exist). Scheduler-side coverage scans use it
// where charging store latency per probed entry would distort timing.
func HasComplete(st *Store, dir string) bool {
	if n, ok := st.Stat(nil, metaPath(dir)); !ok || n == 0 {
		return false
	}
	_, ok := st.Stat(nil, dataPath(dir))
	return ok
}

// ReadRank reads and validates one rank's checkpoint.
func ReadRank(p *vclock.Proc, st *Store, dir string) (*train.ModelState, error) {
	m, err := ReadMeta(p, st, dir)
	if err != nil {
		return nil, err
	}
	data, err := st.Read(p, dataPath(dir))
	if err != nil {
		return nil, err
	}
	if len(data) != m.DataLen || hashBytes(data) != m.Checksum {
		return nil, fmt.Errorf("%w: %s fails checksum", ErrCorrupt, dir)
	}
	return train.DecodeModelState(data)
}

// Assembly maps each rank of a job to the checkpoint directory it should
// restore from — its own if valid, otherwise any valid data-parallel
// replica's (§3.3, the jit_get_checkpoint_path mechanism).
type Assembly struct {
	Iter int
	// Dir maps rank -> checkpoint directory to load.
	Dir map[int]string
}

// Assemble scans the store for the job's checkpoints under policy and
// builds a consistent restore plan for all ranks. Candidate iterations are
// examined newest-first; an iteration is usable only if every position
// (p, t, shard-slot) has at least one valid rank checkpoint. Invalid or
// torn rank checkpoints are skipped, so a rank that died mid-save is
// simply ignored in favour of a replica.
func Assemble(p *vclock.Proc, st *Store, job, policy string, topo train.Topology) (*Assembly, error) {
	ma, err := AssembleSources(p, job, []Source{{Store: st, Policy: policy}}, topo)
	if err != nil {
		return nil, err
	}
	asm := &Assembly{Iter: ma.Iter, Dir: make(map[int]string, len(ma.From))}
	for r, loc := range ma.From {
		asm.Dir[r] = loc.Dir
	}
	return asm, nil
}

// Source pairs a checkpoint store with the policy namespace to scan inside
// it. Multi-tier restore paths (JIT disk checkpoints plus peer-sheltered
// CPU-memory entries) list one Source per tier.
type Source struct {
	Store  *Store
	Policy string
}

// Located identifies one rank checkpoint within a specific store.
type Located struct {
	Store *Store
	Dir   string
}

// MultiAssembly maps each rank of a job to the located checkpoint it
// should restore from, possibly spanning stores of different tiers.
type MultiAssembly struct {
	Iter int
	From map[int]Located
}

// AssembleSources builds a consistent restore plan across several
// checkpoint tiers. Because every tier records the same invariant —
// Iter = N means "state at the start of minibatch N" — entries from
// different tiers at the same iteration are interchangeable per position,
// and the newest iteration where every position is covered by *some*
// valid entry wins. Within an iteration, earlier sources take precedence
// (callers list the preferred tier first).
func AssembleSources(p *vclock.Proc, job string, srcs []Source, topo train.Topology) (*MultiAssembly, error) {
	return AssembleSourcesCross(p, job, srcs, topo, topo.World())
}

// AssembleSourcesCross is AssembleSources for elastic restores, where the
// checkpoints may have been written at a different data-parallel width
// than the topology now being restored. writerWorld bounds the writer
// ranks admitted as candidates (the largest world size any contributing
// era ran at). Position keys are width-invariant — (p, t, shard-slot)
// does not depend on D — so a rank-r checkpoint written at D=4 restores
// any reader rank at the same position under D=2, and vice versa.
func AssembleSourcesCross(p *vclock.Proc, job string, srcs []Source, topo train.Topology, writerWorld int) (*MultiAssembly, error) {
	plan, err := AssembleRestore(p, job, srcs, nil, topo, writerWorld)
	if err != nil {
		return nil, err
	}
	ma := &MultiAssembly{Iter: plan.Iter, From: make(map[int]Located, len(plan.For))}
	for r, c := range plan.For {
		if c.loc != nil {
			ma.From[r] = *c.loc
		}
	}
	return ma, nil
}

// Candidate is one restorable rank entry a checkpoint tier offers to the
// assembler: a writer (iter, rank) pair, a cheap validity probe, and a
// loader that charges its own I/O — including, for erasure-coded tiers,
// any parity-decode cost. The assembler treats plain store entries and
// reconstructable stripes uniformly through this surface.
type Candidate struct {
	Iter int
	Rank int
	// Probe validates the entry at metadata cost (checksums included);
	// assembly consults it before committing a position to this entry.
	Probe func(p *vclock.Proc) bool
	// Load reads, verifies and decodes the entry, charging read
	// bandwidth and any reconstruction latency to virtual time.
	Load func(p *vclock.Proc) (*train.ModelState, error)
	// Desc names the entry's source for traces and errors.
	Desc string

	// loc is set for plain store-backed candidates so the legacy Located
	// surface (AssembleSourcesCross) keeps working.
	loc *Located
}

// RestorePlan maps each reader rank to the candidate it should load.
type RestorePlan struct {
	Iter int
	For  map[int]Candidate
}

// sourceCandidates enumerates the complete rank entries of plain store
// sources as candidates, in source order (earlier sources win ties).
func sourceCandidates(job string, srcs []Source) []Candidate {
	var out []Candidate
	for si, src := range srcs {
		prefix := fmt.Sprintf("%s/ckpt/%s/", job, src.Policy)
		seen := make(map[string]bool)
		for _, path := range src.Store.List(prefix) {
			dir := path[:strings.LastIndex(path, "/")]
			key := fmt.Sprintf("%d|%s", si, dir)
			if seen[key] {
				continue
			}
			seen[key] = true
			iter, rank, ok := ParseRankDir(dir)
			if !ok {
				continue
			}
			st, d := src.Store, dir
			out = append(out, Candidate{
				Iter:  iter,
				Rank:  rank,
				Probe: func(p *vclock.Proc) bool { return ValidDeep(p, st, d) },
				Load:  func(p *vclock.Proc) (*train.ModelState, error) { return ReadRank(p, st, d) },
				Desc:  st.Name() + ":" + d,
				loc:   &Located{Store: st, Dir: d},
			})
		}
	}
	return out
}

// AssembleRestore builds a consistent restore plan from plain store
// sources plus extra candidates (reconstructable erasure stripes, or any
// other tier speaking the Candidate surface). Iterations are examined
// newest-first; within one, the first probing-valid candidate per
// position wins, source candidates before extras. The newest iteration
// where every position of the target topology is covered becomes the
// plan; writerWorld bounds admitted writer ranks as in
// AssembleSourcesCross.
func AssembleRestore(p *vclock.Proc, job string, srcs []Source, extra []Candidate, topo train.Topology, writerWorld int) (*RestorePlan, error) {
	byIter := make(map[int][]Candidate)
	for _, c := range sourceCandidates(job, srcs) {
		byIter[c.Iter] = append(byIter[c.Iter], c)
	}
	for _, c := range extra {
		byIter[c.Iter] = append(byIter[c.Iter], c)
	}
	iters := make([]int, 0, len(byIter))
	for it := range byIter {
		iters = append(iters, it)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))

	for _, it := range iters {
		plan, ok := tryAssembleCandidates(p, byIter[it], it, topo, writerWorld)
		if ok {
			trace.Of(p.Env()).Instant(p.Now(), "ckpt", trace.LaneSim, "assemble", "iter", it)
			return plan, nil
		}
		// A newer generation exists but is unusable (torn, corrupt, or
		// partial): the fallback the commit protocol is there to make safe.
		trace.Of(p.Env()).Instant(p.Now(), "ckpt", trace.LaneSim, "assemble-fallback", "iter", it)
	}
	return nil, ErrUnassembled
}

func tryAssembleCandidates(p *vclock.Proc, cands []Candidate, iter int, topo train.Topology, writerWorld int) (*RestorePlan, bool) {
	// First probing-valid candidate per position, in candidate order.
	havePos := make(map[string]Candidate)
	for _, c := range cands {
		if c.Rank >= writerWorld {
			continue
		}
		key := topo.PositionKey(c.Rank)
		if _, done := havePos[key]; done {
			continue
		}
		if c.Probe == nil || c.Probe(p) {
			havePos[key] = c
		}
	}
	// Every position must be covered.
	plan := &RestorePlan{Iter: iter, For: make(map[int]Candidate)}
	for r := 0; r < topo.World(); r++ {
		c, ok := havePos[topo.PositionKey(r)]
		if !ok {
			return nil, false
		}
		plan.For[r] = c
	}
	return plan, true
}
