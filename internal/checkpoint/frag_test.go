package checkpoint

import (
	"errors"
	"testing"

	"jitckpt/internal/vclock"
)

func TestFragCommitProtocol(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "peer", TmpfsParams())
	dir := RankDir("job", "peer", 5, 2)
	env.Go("w", func(p *vclock.Proc) {
		fm := FragMeta{Iter: 5, Rank: 2, Frag: 1, K: 2, M: 1, DataLen: 9, DataSum: 42}
		frag := []byte("abcd")
		if err := WriteFrag(p, st, dir, fm, frag, 1024); err != nil {
			t.Fatal(err)
		}
		if !HasFrag(st, dir, 1) {
			t.Error("committed fragment not visible to HasFrag")
		}
		if HasFrag(st, dir, 0) {
			t.Error("absent fragment visible to HasFrag")
		}
		if !ValidFragDeep(p, st, dir, 1) {
			t.Error("committed fragment fails deep validation")
		}
		got, data, err := ReadFrag(p, st, dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "abcd" || got.K != 2 || got.M != 1 || got.ShardLen != 4 || got.DataSum != 42 {
			t.Errorf("ReadFrag = %+v %q", got, data)
		}
		// A committed fragment must not make the dir look like a complete
		// replica entry (META-last protocol is separate).
		if HasComplete(st, dir) {
			t.Error("fragment-only dir reports HasComplete")
		}
		// In-place corruption must fail the deep check and the read —
		// that false answer is the decoder's erasure-list entry.
		st.Corrupt(FragPath(dir, 1))
		if ValidFragDeep(p, st, dir, 1) {
			t.Error("corrupted fragment passes deep validation")
		}
		if _, _, err := ReadFrag(p, st, dir, 1); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corrupted ReadFrag: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFragTornWriteNeverCommits(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "peer", TmpfsParams())
	dir := RankDir("job", "peer", 1, 0)
	torn := true
	st.SetChaos(func(path string) WriteOutcome {
		if torn {
			torn = false
			return WriteTorn
		}
		return WriteOK
	})
	env.Go("w", func(p *vclock.Proc) {
		err := WriteFrag(p, st, dir, FragMeta{Iter: 1, Frag: 0, K: 1, M: 0}, []byte("xyzw"), 64)
		if !errors.Is(err, ErrTransientIO) {
			t.Fatalf("torn write: %v", err)
		}
		if HasFrag(st, dir, 0) {
			t.Error("torn fragment looks committed")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
