package checkpoint

import "math/rand"

// RandomChaos returns a seeded write-fault hook for SetChaos that fails
// roughly a fraction p of store writes, split between transient I/O
// errors (which a RetryPolicy absorbs), torn writes (caught by the
// shallow completeness check or the retry that follows the error), and
// silent bit-flips (caught only by deep validation at restore). It never
// returns WriteFailNoSpace — exhaustion is a deterministic condition, not
// a chaos event. The hook draws from rng on every write, so with a
// deterministic simulation the same seed replays the same fault pattern.
func RandomChaos(rng *rand.Rand, p float64) func(path string) WriteOutcome {
	return func(path string) WriteOutcome {
		if rng.Float64() >= p {
			return WriteOK
		}
		switch rng.Intn(4) {
		case 0, 1:
			return WriteFailTransient
		case 2:
			return WriteTorn
		default:
			return WriteBitFlip
		}
	}
}
