package checkpoint

import (
	"strings"
	"testing"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

const msTestStateBytes = 3 << 20

func msTestWorker(t *testing.T, env *vclock.Env) *train.Worker {
	t.Helper()
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	drv, err := cuda.NewDriver(dev, engine, train.Kernels(), cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := train.NewWorker(train.Config{
		Name: "w0", JobKey: "job", Rank: 0,
		Topo:  train.Topology{D: 1, P: 1, T: 1},
		Model: train.ModelSpec{Layers: 4, Hidden: 8, Seed: 42, ParamBytesPerGPU: 1 << 20, OptBytesPerGPU: 1 << 21},
		Opt:   train.DefaultOptimizer(),
		Step:  train.Uniform(10*vclock.Millisecond, 4),
		API:   drv, DataSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func msTestParams() MultiStepParams {
	return MultiStepParams{Opt: train.DefaultOptimizer(), Scale: 1, ReconcileBW: 40e9}
}

// msTrainRun drives a worker for iters minibatches with a multi-step writer
// attached, returning the disk store.
func msTrainRun(t *testing.T, iters, slices int, interval vclock.Time) (*Store, *MultiStep) {
	t.Helper()
	env := vclock.NewEnv(1)
	disk := NewStore(env, "disk", DiskParams())
	w := msTestWorker(t, env)
	w.EnableGradRing(slices)
	msw := &MultiStep{
		Slices: slices, Interval: interval, Disk: disk, Job: "job",
		StateBytes: msTestStateBytes, SerializeBW: 2e9, D2HBandwidth: 16e9,
	}
	env.Go("rank0", func(p *vclock.Proc) {
		if err := w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := w.RunIter(p); err != nil {
				t.Error(err)
				return
			}
			if _, err := msw.Step(p, w); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return disk, msw
}

// oracleState trains an identical worker for iters minibatches and saves
// its state — the atomically-captured reference the reconciled multi-step
// restore must match bit for bit.
func oracleState(t *testing.T, iters int) *train.ModelState {
	t.Helper()
	env := vclock.NewEnv(1)
	w := msTestWorker(t, env)
	var ms *train.ModelState
	env.Go("oracle", func(p *vclock.Proc) {
		if err := w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		if err := w.RunIters(p, iters); err != nil {
			t.Error(err)
			return
		}
		var err error
		if ms, err = w.SaveModelState(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return ms
}

// committedGens returns the committed generation dirs (META present),
// oldest first.
func committedGens(st *Store, job string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, path := range st.List(job + "/ckpt/" + MultiStepNamespace + "/") {
		dir := path[:strings.LastIndex(path, "/")]
		if seen[dir] {
			continue
		}
		seen[dir] = true
		if _, ok := st.Stat(nil, msMetaPath(dir)); ok {
			out = append(out, dir)
		}
	}
	return out
}

func TestMultiStepCommitAndReconciledRestoreBitExact(t *testing.T) {
	const iters = 30
	disk, msw := msTrainRun(t, iters, 3, 40*vclock.Millisecond)
	if msw.Count() == 0 {
		t.Fatal("no generation committed")
	}
	gens := committedGens(disk, "job")
	if len(gens) == 0 {
		t.Fatal("no committed generation on disk")
	}
	newest := gens[len(gens)-1]
	target, rank, ok := parseMSGenDir(newest)
	if !ok || rank != 0 {
		t.Fatalf("bad gen dir %s", newest)
	}

	env := vclock.NewEnv(1)
	disk2 := cloneStoreInto(env, disk)
	want := oracleState(t, target)
	env.Go("restore", func(p *vclock.Proc) {
		cands := MultiStepCandidates(disk2, "job", msTestParams())
		plan, err := AssembleRestore(p, "job", nil, cands, train.Topology{D: 1, P: 1, T: 1}, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if plan.Iter != target {
			t.Errorf("plan iter = %d, want %d", plan.Iter, target)
		}
		got, err := plan.For[0].Load(p)
		if err != nil {
			t.Error(err)
			return
		}
		if got.Iter != target {
			t.Errorf("restored iter = %d, want %d", got.Iter, target)
		}
		if len(got.Tensors) != len(want.Tensors) {
			t.Errorf("restored %d tensors, want %d", len(got.Tensors), len(want.Tensors))
		}
		for name, wv := range want.Tensors {
			if !got.Tensors[name].Equal(wv) {
				t.Errorf("tensor %s not bit-exact vs oracle", name)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// cloneStoreInto copies a store's contents into a fresh env (restore runs
// in a new virtual world, like a restarted job).
func cloneStoreInto(env *vclock.Env, src *Store) *Store {
	dst := NewStore(env, src.name, src.params)
	for k, e := range src.files {
		dst.files[k] = e
	}
	return dst
}

func TestMultiStepPartialGenerationFallsBack(t *testing.T) {
	disk, _ := msTrainRun(t, 40, 3, 40*vclock.Millisecond)
	gens := committedGens(disk, "job")
	if len(gens) < 2 {
		t.Fatalf("want ≥2 committed generations, got %d", len(gens))
	}
	newest, older := gens[len(gens)-1], gens[len(gens)-2]
	newestTarget, _, _ := parseMSGenDir(newest)
	olderTarget, _, _ := parseMSGenDir(older)

	cases := map[string]func(st *Store){
		"missing-slice": func(st *Store) { st.Delete(newest + "/slice01.bin") },
		"corrupt-grad":  func(st *Store) { st.Corrupt(newest + "/grad00.bin") },
	}
	for name, breakIt := range cases {
		name, breakIt := name, breakIt
		t.Run(name, func(t *testing.T) {
			env := vclock.NewEnv(1)
			st := cloneStoreInto(env, disk)
			breakIt(st)
			env.Go("restore", func(p *vclock.Proc) {
				cands := MultiStepCandidates(st, "job", msTestParams())
				plan, err := AssembleRestore(p, "job", nil, cands, train.Topology{D: 1, P: 1, T: 1}, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if plan.Iter == newestTarget {
					t.Errorf("broken generation %d was restored", newestTarget)
				}
				if plan.Iter != olderTarget {
					t.Errorf("fell back to %d, want newest fully-valid %d", plan.Iter, olderTarget)
				}
				if _, err := plan.For[0].Load(p); err != nil {
					t.Errorf("fallback load: %v", err)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMultiStepStaleBeyondWindowRejected(t *testing.T) {
	disk, _ := msTrainRun(t, 30, 3, 40*vclock.Millisecond)
	gens := committedGens(disk, "job")
	newest := gens[len(gens)-1]
	env := vclock.NewEnv(1)
	st := cloneStoreInto(env, disk)
	// Forge a META whose slice is captured before the generation's gradient
	// window: deep validation must reject the whole generation.
	env.Go("forge", func(p *vclock.Proc) {
		m, err := readMSMeta(p, st, newest)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range m.Objects {
			if m.Objects[i].Layers != nil {
				m.Objects[i].Iter = m.BaseIter - 1
				break
			}
		}
		if msValidDeepForged(p, st, newest, m) {
			t.Error("stale-beyond-window slice passed deep validation")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// msValidDeepForged re-runs the deep-validation logic against a forged META
// (bypassing the store read, which would return the honest one).
func msValidDeepForged(p *vclock.Proc, st *Store, dir string, m MSMeta) bool {
	gradIters := make(map[int]bool)
	for _, o := range m.Objects {
		if o.Layers == nil {
			gradIters[o.Iter] = true
		}
	}
	for _, o := range m.Objects {
		if o.Layers == nil {
			continue
		}
		if o.Iter > m.TargetIter || o.Iter < m.BaseIter {
			return false
		}
		for tt := o.Iter; tt < m.TargetIter; tt++ {
			if !gradIters[tt] {
				return false
			}
		}
	}
	return true
}

// TestMultiStepStrictlyCheaperThanPCDisk is the steady-state overhead claim
// of the family: at the same checkpoint frequency over the same workload,
// the multi-step writer's accumulated critical-path stall must be strictly
// below single-shot PC_disk's.
func TestMultiStepStrictlyCheaperThanPCDisk(t *testing.T) {
	const iters = 30
	interval := 40 * vclock.Millisecond

	_, msw := msTrainRun(t, iters, 3, interval)
	if msw.Count() == 0 {
		t.Fatal("multi-step never committed")
	}

	env := vclock.NewEnv(1)
	disk := NewStore(env, "disk", DiskParams())
	w := msTestWorker(t, env)
	pc := &Periodic{
		Kind: PCDisk, Interval: interval, Disk: disk, Job: "job",
		SerializeBW: 2e9, StateBytes: msTestStateBytes,
	}
	env.Go("rank0", func(p *vclock.Proc) {
		if err := w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := w.RunIter(p); err != nil {
				t.Error(err)
				return
			}
			if pc.Due(p.Now()) {
				if _, err := pc.Run(p, w); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if pc.Count() == 0 {
		t.Fatal("PC_disk never ran")
	}
	msPer := float64(msw.StallTotal()) / float64(msw.Count())
	pcPer := float64(pc.StallTotal()) / float64(pc.Count())
	if !(msPer < pcPer) {
		t.Fatalf("multi-step stall/ckpt %.3fms not strictly below PC_disk %.3fms",
			msPer/1e6, pcPer/1e6)
	}
}

func TestMultiStepPruneKeepsRetain(t *testing.T) {
	disk, msw := msTrainRun(t, 80, 2, 30*vclock.Millisecond)
	if msw.Count() < 4 {
		t.Fatalf("want ≥4 committed generations, got %d", msw.Count())
	}
	gens := committedGens(disk, "job")
	if len(gens) > 2 {
		t.Fatalf("prune left %d generations, want ≤2 (default retain)", len(gens))
	}
}
