// Package checkpoint implements checkpoint storage and the checkpointing
// policies the paper compares: the shared checkpoint store, the
// rank-directory commit protocol (§3.2), checkpoint assembly across
// replicas (§3.3), and the periodic-checkpointing baselines of §6.3
// (PC_disk, PC_mem, CheckFreq-style overlapped snapshotting, and
// low-frequency PC_1/day).
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"jitckpt/internal/gpu"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Errors returned by the store and assembly.
var (
	ErrNotFound    = errors.New("checkpoint: not found")
	ErrCorrupt     = errors.New("checkpoint: corrupt or incomplete")
	ErrUnassembled = errors.New("checkpoint: no consistent checkpoint set")
	// ErrTransientIO is a retryable storage fault (flaky NIC to the store,
	// throttled object-store request, torn write).
	ErrTransientIO = errors.New("checkpoint: transient I/O error")
	// ErrNoSpace is a non-retryable out-of-capacity write failure.
	ErrNoSpace = errors.New("checkpoint: no space left on store")
)

// WriteOutcome is what a chaos hook decrees for one store write.
type WriteOutcome int

const (
	// WriteOK lets the write through untouched.
	WriteOK WriteOutcome = iota
	// WriteTorn stores only a prefix of the object and returns a transient
	// error — the multi-step overlapped-write hazard (a crash or fault
	// mid-PUT leaves partial state behind).
	WriteTorn
	// WriteBitFlip stores the full object with one byte flipped and
	// reports success — silent corruption only restore-time validation
	// can catch.
	WriteBitFlip
	// WriteFailTransient stores nothing and returns ErrTransientIO; a
	// bounded retry should succeed.
	WriteFailTransient
	// WriteFailNoSpace stores nothing and returns ErrNoSpace.
	WriteFailNoSpace
)

// String renders the outcome for traces and test failures.
func (o WriteOutcome) String() string {
	switch o {
	case WriteOK:
		return "ok"
	case WriteTorn:
		return "torn"
	case WriteBitFlip:
		return "bit-flip"
	case WriteFailTransient:
		return "transient"
	case WriteFailNoSpace:
		return "no-space"
	default:
		return fmt.Sprintf("WriteOutcome(%d)", int(o))
	}
}

// StoreParams model a storage tier's performance.
type StoreParams struct {
	// WriteBW and ReadBW are bytes/second for modelled payload sizes.
	WriteBW float64
	ReadBW  float64
	// Latency is the fixed per-operation cost.
	Latency vclock.Time
}

// DiskParams returns parameters for a shared NVMe-backed store.
func DiskParams() StoreParams {
	return StoreParams{WriteBW: 5e9, ReadBW: 8e9, Latency: 2 * vclock.Millisecond}
}

// TmpfsParams returns parameters for node-local CPU memory (the PC_mem
// tier: "a Linux tmpfs mount").
func TmpfsParams() StoreParams {
	return StoreParams{WriteBW: 60e9, ReadBW: 60e9, Latency: 50 * vclock.Microsecond}
}

// entry is one stored object: real bytes plus the modelled size that
// drives transfer timing.
type entry struct {
	data       []byte
	modelBytes int64
}

// Store is a simulated shared file/object store with virtual-time I/O
// costs. Contents are real bytes, so everything written can be read back
// and verified; timing follows the modelled payload size.
type Store struct {
	env       *vclock.Env
	name      string
	params    StoreParams
	files     map[string]entry
	chaos     func(path string) WriteOutcome
	readBytes int64
}

// NewStore creates an empty store.
func NewStore(env *vclock.Env, name string, params StoreParams) *Store {
	return &Store{env: env, name: name, params: params, files: make(map[string]entry)}
}

// Name returns the store's diagnostic name.
func (s *Store) Name() string { return s.name }

// SetChaos installs a write-fault hook consulted on every Write. A nil
// hook (the default) means every write succeeds cleanly.
func (s *Store) SetChaos(fn func(path string) WriteOutcome) { s.chaos = fn }

// Write stores data under path, charging modelBytes of write bandwidth.
// An installed chaos hook may tear, corrupt, or fail the write.
func (s *Store) Write(p *vclock.Proc, path string, data []byte, modelBytes int64) error {
	outcome := WriteOK
	if s.chaos != nil {
		outcome = s.chaos(path)
	}
	if outcome != WriteOK {
		trace.Of(s.env).Instant(p.Now(), "ckpt", s.name, "write-fault",
			"outcome", outcome, "path", path)
	}
	switch outcome {
	case WriteFailTransient:
		p.Sleep(s.params.Latency)
		return fmt.Errorf("%w: write %s on %s", ErrTransientIO, path, s.name)
	case WriteFailNoSpace:
		p.Sleep(s.params.Latency)
		return fmt.Errorf("%w: write %s on %s", ErrNoSpace, path, s.name)
	case WriteTorn:
		// The connection drops halfway: half the bandwidth is spent and a
		// partial object is left behind.
		p.Sleep(s.params.Latency + gpu.TransferTime(modelBytes/2, s.params.WriteBW))
		torn := append([]byte(nil), data[:len(data)/2]...)
		s.files[path] = entry{data: torn, modelBytes: modelBytes / 2}
		return fmt.Errorf("%w: torn write %s on %s", ErrTransientIO, path, s.name)
	}
	p.Sleep(s.params.Latency + gpu.TransferTime(modelBytes, s.params.WriteBW))
	stored := append([]byte(nil), data...)
	if outcome == WriteBitFlip && len(stored) > 0 {
		stored[len(stored)/2] ^= 0x01 // silent corruption: write "succeeds"
	}
	s.files[path] = entry{data: stored, modelBytes: modelBytes}
	return nil
}

// Rename moves the object at src to dst — the atomic commit step. It is a
// metadata operation (only fixed latency when p is non-nil): the bytes were
// already paid for when the temporary object was written.
func (s *Store) Rename(p *vclock.Proc, src, dst string) error {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	e, ok := s.files[src]
	if !ok {
		return fmt.Errorf("%w: rename %s", ErrNotFound, src)
	}
	delete(s.files, src)
	s.files[dst] = e
	return nil
}

// ContentHash returns the store-side FNV-1a checksum of the object at path
// (the etag an object store keeps alongside each object), and whether the
// object exists. It is a metadata operation: only the fixed latency is
// charged, and only when p is non-nil.
func (s *Store) ContentHash(p *vclock.Proc, path string) (uint64, bool) {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	e, ok := s.files[path]
	if !ok {
		return 0, false
	}
	return hashBytes(e.data), true
}

// Read returns the object at path, charging read bandwidth. Every read's
// modelled payload is added to the store's read-byte counter, which is how
// the harness accounts checkpoint-read traffic per recovery (the pipe-free
// family's "zero checkpoint reads" claim is audited against it).
func (s *Store) Read(p *vclock.Proc, path string) ([]byte, error) {
	e, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	p.Sleep(s.params.Latency + gpu.TransferTime(e.modelBytes, s.params.ReadBW))
	s.readBytes += e.modelBytes
	return append([]byte(nil), e.data...), nil
}

// ReadBytes returns the cumulative modelled bytes served by Read.
func (s *Store) ReadBytes() int64 { return s.readBytes }

// Stat returns the stored byte length of path (a metadata operation: only
// the fixed latency is charged when p is non-nil). ok reports existence.
func (s *Store) Stat(p *vclock.Proc, path string) (length int, ok bool) {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	e, found := s.files[path]
	if !found {
		return 0, false
	}
	return len(e.data), true
}

// Exists reports whether path is stored (a metadata operation: only the
// fixed latency is charged, and only when p is non-nil).
func (s *Store) Exists(p *vclock.Proc, path string) bool {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	_, ok := s.files[path]
	return ok
}

// List returns stored paths with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	var out []string
	for k := range s.files {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes an object; deleting a missing object is a no-op.
func (s *Store) Delete(path string) { delete(s.files, path) }

// Corrupt flips a byte of the object at path (failure injection for the
// metadata-validation tests). It reports whether the object existed.
func (s *Store) Corrupt(path string) bool {
	e, ok := s.files[path]
	if !ok || len(e.data) == 0 {
		return false
	}
	e.data[len(e.data)/2] ^= 0xFF
	s.files[path] = e
	return true
}

// ModelBytes returns the modelled size of the object at path (0 if
// missing).
func (s *Store) ModelBytes(path string) int64 { return s.files[path].modelBytes }

// CopyObject duplicates src to dst without timing (used by async drains
// that account their own time).
func (s *Store) CopyObject(src, dst string) error {
	e, ok := s.files[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	s.files[dst] = e
	return nil
}
