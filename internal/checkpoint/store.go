// Package checkpoint implements checkpoint storage and the checkpointing
// policies the paper compares: the shared checkpoint store, the
// rank-directory commit protocol (§3.2), checkpoint assembly across
// replicas (§3.3), and the periodic-checkpointing baselines of §6.3
// (PC_disk, PC_mem, CheckFreq-style overlapped snapshotting, and
// low-frequency PC_1/day).
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"jitckpt/internal/gpu"
	"jitckpt/internal/vclock"
)

// Errors returned by the store and assembly.
var (
	ErrNotFound    = errors.New("checkpoint: not found")
	ErrCorrupt     = errors.New("checkpoint: corrupt or incomplete")
	ErrUnassembled = errors.New("checkpoint: no consistent checkpoint set")
)

// StoreParams model a storage tier's performance.
type StoreParams struct {
	// WriteBW and ReadBW are bytes/second for modelled payload sizes.
	WriteBW float64
	ReadBW  float64
	// Latency is the fixed per-operation cost.
	Latency vclock.Time
}

// DiskParams returns parameters for a shared NVMe-backed store.
func DiskParams() StoreParams {
	return StoreParams{WriteBW: 5e9, ReadBW: 8e9, Latency: 2 * vclock.Millisecond}
}

// TmpfsParams returns parameters for node-local CPU memory (the PC_mem
// tier: "a Linux tmpfs mount").
func TmpfsParams() StoreParams {
	return StoreParams{WriteBW: 60e9, ReadBW: 60e9, Latency: 50 * vclock.Microsecond}
}

// entry is one stored object: real bytes plus the modelled size that
// drives transfer timing.
type entry struct {
	data       []byte
	modelBytes int64
}

// Store is a simulated shared file/object store with virtual-time I/O
// costs. Contents are real bytes, so everything written can be read back
// and verified; timing follows the modelled payload size.
type Store struct {
	env    *vclock.Env
	name   string
	params StoreParams
	files  map[string]entry
}

// NewStore creates an empty store.
func NewStore(env *vclock.Env, name string, params StoreParams) *Store {
	return &Store{env: env, name: name, params: params, files: make(map[string]entry)}
}

// Name returns the store's diagnostic name.
func (s *Store) Name() string { return s.name }

// Write stores data under path, charging modelBytes of write bandwidth.
func (s *Store) Write(p *vclock.Proc, path string, data []byte, modelBytes int64) error {
	p.Sleep(s.params.Latency + gpu.TransferTime(modelBytes, s.params.WriteBW))
	s.files[path] = entry{data: append([]byte(nil), data...), modelBytes: modelBytes}
	return nil
}

// Read returns the object at path, charging read bandwidth.
func (s *Store) Read(p *vclock.Proc, path string) ([]byte, error) {
	e, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	p.Sleep(s.params.Latency + gpu.TransferTime(e.modelBytes, s.params.ReadBW))
	return append([]byte(nil), e.data...), nil
}

// Stat returns the stored byte length of path (a metadata operation: only
// the fixed latency is charged when p is non-nil). ok reports existence.
func (s *Store) Stat(p *vclock.Proc, path string) (length int, ok bool) {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	e, found := s.files[path]
	if !found {
		return 0, false
	}
	return len(e.data), true
}

// Exists reports whether path is stored (a metadata operation: only the
// fixed latency is charged, and only when p is non-nil).
func (s *Store) Exists(p *vclock.Proc, path string) bool {
	if p != nil {
		p.Sleep(s.params.Latency)
	}
	_, ok := s.files[path]
	return ok
}

// List returns stored paths with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	var out []string
	for k := range s.files {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes an object; deleting a missing object is a no-op.
func (s *Store) Delete(path string) { delete(s.files, path) }

// Corrupt flips a byte of the object at path (failure injection for the
// metadata-validation tests). It reports whether the object existed.
func (s *Store) Corrupt(path string) bool {
	e, ok := s.files[path]
	if !ok || len(e.data) == 0 {
		return false
	}
	e.data[len(e.data)/2] ^= 0xFF
	s.files[path] = e
	return true
}

// ModelBytes returns the modelled size of the object at path (0 if
// missing).
func (s *Store) ModelBytes(path string) int64 { return s.files[path].modelBytes }

// CopyObject duplicates src to dst without timing (used by async drains
// that account their own time).
func (s *Store) CopyObject(src, dst string) error {
	e, ok := s.files[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	s.files[dst] = e
	return nil
}
