package checkpoint

import (
	"errors"
	"strings"
	"testing"

	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// runProc runs fn inside one simulated process and the env to completion.
func runProc(t *testing.T, env *vclock.Env, fn func(p *vclock.Proc)) {
	t.Helper()
	env.Go("test", fn)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChaosWriteOutcomes(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	runProc(t, env, func(p *vclock.Proc) {
		// Transient failure: error surfaces, nothing is stored.
		st.SetChaos(func(string) WriteOutcome { return WriteFailTransient })
		err := st.Write(p, "a", []byte("data"), 4)
		if !errors.Is(err, ErrTransientIO) {
			t.Errorf("transient write: %v", err)
		}
		if _, ok := st.Stat(p, "a"); ok {
			t.Error("transient-failed write left a file")
		}

		// Disk full: distinct error class (not retryable).
		st.SetChaos(func(string) WriteOutcome { return WriteFailNoSpace })
		err = st.Write(p, "b", []byte("data"), 4)
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("no-space write: %v", err)
		}
		if Retryable(err) {
			t.Error("ErrNoSpace must not be retryable")
		}

		// Torn write: error surfaces AND a half-length file is left behind
		// (the failure mode atomic commit-by-rename protects against).
		st.SetChaos(func(string) WriteOutcome { return WriteTorn })
		err = st.Write(p, "c", []byte("12345678"), 8)
		if !errors.Is(err, ErrTransientIO) {
			t.Errorf("torn write: %v", err)
		}
		if raw, rerr := st.Read(p, "c"); rerr != nil || len(raw) != 4 {
			t.Errorf("torn write stored %d bytes (err %v), want 4", len(raw), rerr)
		}

		// Bit-flip: silent success with corrupted contents.
		st.SetChaos(func(string) WriteOutcome { return WriteBitFlip })
		if err := st.Write(p, "d", []byte("12345678"), 8); err != nil {
			t.Errorf("bit-flip write must report success, got %v", err)
		}
		raw, err := st.Read(p, "d")
		if err != nil || string(raw) == "12345678" {
			t.Errorf("bit-flip write stored pristine data (%q, %v)", raw, err)
		}
		st.SetChaos(nil)
	})
}

func TestWriteRankAtomicCommitOnTornWrite(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	runProc(t, env, func(p *vclock.Proc) {
		st.SetChaos(func(string) WriteOutcome { return WriteTorn })
		dir := RankDir("job", "jit", 3, 0)
		if err := WriteRank(p, st, dir, testState(3, 0, 7), 32); err == nil {
			t.Fatal("torn write did not surface an error")
		}
		// The torn bytes landed in the ".tmp" staging file and were
		// cleaned up; the committed paths must not exist at all.
		if _, ok := st.Stat(p, dir+"/model.bin"); ok {
			t.Error("torn write left a committed model.bin")
		}
		if HasComplete(st, dir) {
			t.Error("torn write produced a complete-looking checkpoint")
		}
	})
}

func TestValidDeepDetectsSilentBitFlip(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	runProc(t, env, func(p *vclock.Proc) {
		// Flip a bit only in the data file; META commits pristine.
		st.SetChaos(func(path string) WriteOutcome {
			if strings.Contains(path, "model.bin") {
				return WriteBitFlip
			}
			return WriteOK
		})
		dir := RankDir("job", "jit", 3, 0)
		if err := WriteRank(p, st, dir, testState(3, 0, 7), 32); err != nil {
			t.Fatal(err)
		}
		st.SetChaos(nil)
		// Shallow validation (metadata-last protocol + length) passes;
		// only the checksum comparison catches the silent corruption.
		if !Valid(p, st, dir) {
			t.Error("shallow Valid should pass on a silently-corrupted file")
		}
		if ValidDeep(p, st, dir) {
			t.Error("ValidDeep missed the bit-flip")
		}
		if _, err := ReadRank(p, st, dir); err == nil {
			t.Error("ReadRank decoded corrupted data without error")
		}
	})
}

// TestAssembleFallsBackToOlderGeneration pins the acceptance criterion:
// when the newest checkpoint generation is corrupted — silently (bit-flip)
// or visibly (torn write) — restore falls back to the newest *valid*
// generation instead of failing or reading garbage.
func TestAssembleFallsBackToOlderGeneration(t *testing.T) {
	topo := train.Topology{D: 1, P: 1, T: 1}
	for _, mode := range []WriteOutcome{WriteBitFlip, WriteTorn} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			env := vclock.NewEnv(1)
			st := NewStore(env, "disk", TmpfsParams())
			runProc(t, env, func(p *vclock.Proc) {
				if err := WriteRank(p, st, RankDir("job", "jit", 5, 0), testState(5, 0, 1), 32); err != nil {
					t.Fatal(err)
				}
				st.SetChaos(func(path string) WriteOutcome {
					if strings.Contains(path, "iter00000008") && strings.Contains(path, "model.bin") {
						return mode
					}
					return WriteOK
				})
				WriteRank(p, st, RankDir("job", "jit", 8, 0), testState(8, 0, 2), 32)
				st.SetChaos(nil)

				asm, err := Assemble(p, st, "job", "jit", topo)
				if err != nil {
					t.Fatalf("no fallback assembly: %v", err)
				}
				if asm.Iter != 5 {
					t.Fatalf("assembled iter %d, want fallback to 5", asm.Iter)
				}
				ms, err := ReadRank(p, st, asm.Dir[0])
				if err != nil || ms.Iter != 5 {
					t.Fatalf("fallback read: iter %v err %v", ms, err)
				}
			})
		})
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	env := vclock.NewEnv(1)
	runProc(t, env, func(p *vclock.Proc) {
		rp := RetryPolicy{Attempts: 3, Backoff: 10 * vclock.Millisecond, Multiplier: 2}
		calls := 0
		t0 := p.Now()
		err := rp.Do(p, func() error {
			calls++
			if calls < 3 {
				return ErrTransientIO
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Fatalf("Do: err=%v calls=%d", err, calls)
		}
		// Two backoffs: 10ms then 20ms.
		if took := p.Now() - t0; took != 30*vclock.Millisecond {
			t.Errorf("backoff time %v, want 30ms", took)
		}

		// Non-retryable errors abort immediately.
		calls = 0
		err = rp.Do(p, func() error { calls++; return ErrNoSpace })
		if !errors.Is(err, ErrNoSpace) || calls != 1 {
			t.Errorf("no-space: err=%v calls=%d", err, calls)
		}

		// Attempts exhausted: the last transient error surfaces.
		calls = 0
		err = rp.Do(p, func() error { calls++; return ErrTransientIO })
		if !errors.Is(err, ErrTransientIO) || calls != 3 {
			t.Errorf("exhausted: err=%v calls=%d", err, calls)
		}
	})
}

func TestWriteRankRetryAbsorbsTransientFaults(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	runProc(t, env, func(p *vclock.Proc) {
		fails := 2
		st.SetChaos(func(string) WriteOutcome {
			if fails > 0 {
				fails--
				return WriteFailTransient
			}
			return WriteOK
		})
		dir := RankDir("job", "jit", 4, 1)
		if err := WriteRankRetry(p, st, dir, testState(4, 1, 9), 32, DefaultRetry()); err != nil {
			t.Fatalf("retry did not absorb transient faults: %v", err)
		}
		st.SetChaos(nil)
		if !ValidDeep(p, st, dir) {
			t.Error("retried checkpoint not deeply valid")
		}
	})
}
