package checkpoint

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/tensor"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func testState(iter, rank int, seed uint64) *train.ModelState {
	rng := tensor.NewRNG(seed)
	v := tensor.NewVector(32)
	rng.FillUniform(v, 1)
	return &train.ModelState{
		Iter: iter, Rank: rank,
		Tensors: map[string]tensor.Vector{"param.L0.w#0": v},
	}
}

func TestStoreWriteReadTimed(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", StoreParams{WriteBW: 1e9, ReadBW: 2e9, Latency: vclock.Millisecond})
	env.Go("w", func(p *vclock.Proc) {
		t0 := p.Now()
		if err := st.Write(p, "a/b", []byte("hello"), 1e9); err != nil {
			t.Error(err)
		}
		wrote := p.Now() - t0
		if wrote < vclock.Seconds(0.9) || wrote > vclock.Seconds(1.2) {
			t.Errorf("1GB at 1GB/s took %v", wrote)
		}
		t0 = p.Now()
		got, err := st.Read(p, "a/b")
		if err != nil || string(got) != "hello" {
			t.Errorf("read: %q %v", got, err)
		}
		readTook := p.Now() - t0
		if readTook < vclock.Seconds(0.4) || readTook > vclock.Seconds(0.7) {
			t.Errorf("1GB at 2GB/s took %v", readTook)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreListAndDelete(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	env.Go("w", func(p *vclock.Proc) {
		st.Write(p, "job/a", []byte("1"), 1)
		st.Write(p, "job/b", []byte("2"), 1)
		st.Write(p, "other/c", []byte("3"), 1)
		if got := st.List("job/"); len(got) != 2 || got[0] != "job/a" {
			t.Errorf("List = %v", got)
		}
		st.Delete("job/a")
		if st.Exists(p, "job/a") {
			t.Error("deleted object still exists")
		}
		if _, err := st.Read(p, "job/a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read deleted: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRankCheckpointRoundTrip(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	env.Go("w", func(p *vclock.Proc) {
		ms := testState(7, 3, 99)
		dir := RankDir("job", "jit", 7, 3)
		if err := WriteRank(p, st, dir, ms, 1<<20); err != nil {
			t.Error(err)
			return
		}
		if !Valid(p, st, dir) {
			t.Error("fresh checkpoint invalid")
		}
		got, err := ReadRank(p, st, dir)
		if err != nil {
			t.Error(err)
			return
		}
		if got.Checksum() != ms.Checksum() || got.Iter != 7 || got.Rank != 3 {
			t.Error("round trip lost content")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	env.Go("w", func(p *vclock.Proc) {
		dir := RankDir("job", "jit", 1, 0)
		WriteRank(p, st, dir, testState(1, 0, 5), 1<<20)
		// Content corruption (bit flip): caught by the checksum on read.
		if !st.Corrupt(dir + "/model.bin") {
			t.Error("corrupt failed")
		}
		if _, err := ReadRank(p, st, dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("ReadRank = %v, want corrupt", err)
		}
		// Truncation (torn write): caught by the metadata-level Valid.
		dir2 := RankDir("job", "jit", 2, 0)
		WriteRank(p, st, dir2, testState(2, 0, 5), 1<<20)
		raw, _ := st.Read(p, dir2+"/model.bin")
		st.Write(p, dir2+"/model.bin", raw[:len(raw)/2], 1<<19)
		if Valid(p, st, dir2) {
			t.Error("truncated checkpoint passed validation")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingMetaMeansIncomplete(t *testing.T) {
	// A rank that died mid-save never wrote META: the checkpoint must be
	// treated as incomplete (the commit protocol of §3.2).
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	env.Go("w", func(p *vclock.Proc) {
		dir := RankDir("job", "jit", 1, 0)
		data, _ := testState(1, 0, 5).Encode()
		st.Write(p, dir+"/model.bin", data, 1<<20)
		if Valid(p, st, dir) {
			t.Error("checkpoint without META passed validation")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAssemblePrefersReplicaWhenRankMissing(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	topo := train.Topology{D: 2, P: 2, T: 1} // 4 ranks, positions p0/p1
	env.Go("w", func(p *vclock.Proc) {
		// Only d=1 replicas checkpointed (ranks 2 and 3) — say d=0's node
		// failed entirely.
		for _, r := range []int{2, 3} {
			WriteRank(p, st, RankDir("job", "jit", 5, r), testState(5, r, uint64(r)), 1<<20)
		}
		asm, err := Assemble(p, st, "job", "jit", topo)
		if err != nil {
			t.Error(err)
			return
		}
		if asm.Iter != 5 {
			t.Errorf("iter = %d", asm.Iter)
		}
		// Rank 0 (d0,p0) must restore from rank 2's dir (d1,p0).
		if asm.Dir[0] != RankDir("job", "jit", 5, 2) {
			t.Errorf("rank 0 dir = %s", asm.Dir[0])
		}
		if asm.Dir[1] != RankDir("job", "jit", 5, 3) {
			t.Errorf("rank 1 dir = %s", asm.Dir[1])
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleSkipsCorruptAndUsesNewestComplete(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	topo := train.Topology{D: 2, P: 1, T: 1}
	env.Go("w", func(p *vclock.Proc) {
		// Iter 3: both ranks valid.
		WriteRank(p, st, RankDir("job", "jit", 3, 0), testState(3, 0, 1), 1<<20)
		WriteRank(p, st, RankDir("job", "jit", 3, 1), testState(3, 1, 2), 1<<20)
		// Iter 4: rank 0 died mid-save (no META), rank 1 valid -> position
		// still covered by rank 1, so iter 4 assembles with rank 1's copy
		// serving both ranks.
		WriteRank(p, st, RankDir("job", "jit", 4, 0), testState(4, 0, 3), 1<<20)
		WriteRank(p, st, RankDir("job", "jit", 4, 1), testState(4, 1, 4), 1<<20)
		st.Delete(RankDir("job", "jit", 4, 0) + "/META")
		asm, err := Assemble(p, st, "job", "jit", topo)
		if err != nil {
			t.Error(err)
			return
		}
		if asm.Iter != 4 {
			t.Errorf("iter = %d, want 4", asm.Iter)
		}
		if asm.Dir[0] != RankDir("job", "jit", 4, 1) {
			t.Errorf("rank 0 should use replica: %s", asm.Dir[0])
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleFailsWhenPositionUncovered(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	topo := train.Topology{D: 1, P: 2, T: 1}
	env.Go("w", func(p *vclock.Proc) {
		// Only stage 0 checkpointed; stage 1 missing entirely.
		WriteRank(p, st, RankDir("job", "jit", 2, 0), testState(2, 0, 1), 1<<20)
		if _, err := Assemble(p, st, "job", "jit", topo); !errors.Is(err, ErrUnassembled) {
			t.Errorf("err = %v, want unassembled", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleFSDPPositionsIncludeShardSlot(t *testing.T) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	topo := train.Topology{D: 4, P: 1, T: 1, FSDPShard: 2}
	env.Go("w", func(p *vclock.Proc) {
		// Only group 1 (ranks 2, 3) checkpointed.
		WriteRank(p, st, RankDir("job", "jit", 9, 2), testState(9, 2, 1), 1<<20)
		WriteRank(p, st, RankDir("job", "jit", 9, 3), testState(9, 3, 2), 1<<20)
		asm, err := Assemble(p, st, "job", "jit", topo)
		if err != nil {
			t.Error(err)
			return
		}
		// Rank 0 is shard slot 0 -> restore from rank 2 (same slot).
		if asm.Dir[0] != RankDir("job", "jit", 9, 2) {
			t.Errorf("rank 0 dir = %s", asm.Dir[0])
		}
		if asm.Dir[1] != RankDir("job", "jit", 9, 3) {
			t.Errorf("rank 1 dir = %s", asm.Dir[1])
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// periodicRig builds a one-rank training worker plus stores.
type periodicRig struct {
	env  *vclock.Env
	w    *train.Worker
	disk *Store
	mem  *Store
}

func newPeriodicRig(t *testing.T) *periodicRig {
	t.Helper()
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<36)
	drv, err := cuda.NewDriver(dev, engine, train.Kernels(), cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := train.NewWorker(train.Config{
		Name: "w0", JobKey: "job", Rank: 0,
		Topo:  train.Topology{D: 1, P: 1, T: 1},
		Model: train.ModelSpec{Layers: 2, Hidden: 8, Seed: 42, ParamBytesPerGPU: 10 << 30, OptBytesPerGPU: 20 << 30},
		Opt:   train.DefaultOptimizer(),
		Step:  train.Uniform(vclock.Seconds(0.5), 2),
		API:   drv, DataSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &periodicRig{
		env:  env,
		w:    w,
		disk: NewStore(env, "disk", DiskParams()),
		mem:  NewStore(env, "tmpfs", TmpfsParams()),
	}
}

func runPolicy(t *testing.T, kind PeriodicKind) (stall vclock.Time, wall vclock.Time) {
	t.Helper()
	r := newPeriodicRig(t)
	pc := &Periodic{
		Kind: kind, Interval: vclock.Seconds(1), Disk: r.disk, Mem: r.mem,
		HideFraction: 0.5, Job: "job",
	}
	r.env.Go("worker", func(p *vclock.Proc) {
		if err := r.w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < 6; i++ {
			if _, err := r.w.RunIter(p); err != nil {
				t.Error(err)
				return
			}
			if pc.Due(p.Now()) {
				if _, err := pc.Run(p, r.w); err != nil {
					t.Error(err)
					return
				}
			}
		}
		wall = p.Now() - start
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if pc.Count() == 0 {
		t.Fatal("no checkpoints taken")
	}
	return pc.StallTotal() / vclock.Time(pc.Count()), wall
}

func TestPeriodicPolicyStallOrdering(t *testing.T) {
	// 30 GB of state: PC_disk pays PCIe + disk write; PC_mem pays PCIe +
	// tmpfs; CheckFreq hides half the copy. Stalls must order
	// PC_disk > PC_mem > CheckFreq.
	disk, _ := runPolicy(t, PCDisk)
	mem, _ := runPolicy(t, PCMem)
	cf, _ := runPolicy(t, CheckFreq)
	if !(disk > mem && mem > cf && cf > 0) {
		t.Fatalf("stall ordering violated: disk=%v mem=%v checkfreq=%v", disk, mem, cf)
	}
}

func TestPCMemDrainsToDiskAsync(t *testing.T) {
	r := newPeriodicRig(t)
	pc := &Periodic{Kind: PCMem, Interval: vclock.Seconds(1), Disk: r.disk, Mem: r.mem, Job: "job"}
	r.env.Go("worker", func(p *vclock.Proc) {
		if err := r.w.Setup(p, 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			r.w.RunIter(p)
			if pc.Due(p.Now()) {
				pc.Run(p, r.w)
			}
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.disk.List("job/")) == 0 {
		t.Fatal("async drain never reached the persistent store")
	}
	// Drained copy must be valid.
	env2 := vclock.NewEnv(2)
	_ = env2
	dirs := r.disk.List("job/")
	if len(dirs)%2 != 0 {
		t.Fatalf("odd object count on disk: %v", dirs)
	}
}

func TestDueRespectsInterval(t *testing.T) {
	pc := &Periodic{Kind: PCDisk, Interval: vclock.Seconds(10)}
	if pc.Due(vclock.Seconds(5)) {
		t.Fatal("due too early")
	}
	if !pc.Due(vclock.Seconds(10)) {
		t.Fatal("not due at interval")
	}
	pc.everRan = true
	pc.last = vclock.Seconds(10)
	if pc.Due(vclock.Seconds(15)) || !pc.Due(vclock.Seconds(20)) {
		t.Fatal("interval tracking wrong after first checkpoint")
	}
	if (&Periodic{Kind: PCDisk}).Due(vclock.Hour) {
		t.Fatal("zero interval must never be due")
	}
}

// Property: RankDir/ParseRankDir round trip.
func TestRankDirRoundTripProperty(t *testing.T) {
	f := func(iterRaw, rankRaw uint16) bool {
		iter, rank := int(iterRaw), int(rankRaw)%10000
		dir := RankDir("some/job", "jit", iter, rank)
		gi, gr, ok := ParseRankDir(dir)
		return ok && gi == iter && gr == rank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of the data object is caught when
// the checkpoint is read.
func TestCorruptionAlwaysDetectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		env := vclock.NewEnv(int64(seed%1000) + 1)
		st := NewStore(env, "d", TmpfsParams())
		ok := true
		env.Go("w", func(p *vclock.Proc) {
			dir := RankDir("j", "jit", 0, 0)
			WriteRank(p, st, dir, testState(0, 0, seed), 1<<10)
			st.Corrupt(dir + "/model.bin")
			if _, err := ReadRank(p, st, dir); !errors.Is(err, ErrCorrupt) {
				ok = false
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicKindStrings(t *testing.T) {
	for k, want := range map[PeriodicKind]string{
		PCDisk: "PC_disk", PCMem: "PC_mem", CheckFreq: "CheckFreq", PCDaily: "PC_1/day",
	} {
		if k.String() != want {
			t.Errorf("%d String = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkWriteRank(b *testing.B) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	ms := testState(0, 0, 1)
	env.Go("w", func(p *vclock.Proc) {
		for i := 0; i < b.N; i++ {
			if err := WriteRank(p, st, RankDir("j", "jit", i, 0), ms, 1<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAssemble(b *testing.B) {
	env := vclock.NewEnv(1)
	st := NewStore(env, "disk", TmpfsParams())
	topo := train.Topology{D: 4, P: 2, T: 1}
	env.Go("seed", func(p *vclock.Proc) {
		for it := 0; it < 4; it++ {
			for r := 0; r < topo.World(); r++ {
				WriteRank(p, st, RankDir("j", "jit", it, r), testState(it, r, uint64(r)), 1<<10)
			}
		}
		for i := 0; i < b.N; i++ {
			if _, err := Assemble(p, st, "j", "jit", topo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

var _ = fmt.Sprintf
