package checkpoint

import (
	"errors"

	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// RetryPolicy bounds retries of storage operations that fail with a
// transient error. Backoff grows geometrically between attempts.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry).
	Attempts int
	// Backoff is the sleep before the first retry.
	Backoff vclock.Time
	// Multiplier scales the backoff after each retry (≥1).
	Multiplier float64
}

// DefaultRetry is the policy the JIT save, peer-shelter commit, and
// periodic-checkpoint paths use: three attempts with 10 ms → 20 ms
// backoff, enough to ride out a transient store fault without stretching
// the checkpoint-before-deadline window.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 10 * vclock.Millisecond, Multiplier: 2}
}

// Retryable reports whether err is worth retrying: transient I/O faults
// are; ErrNoSpace and everything else are not.
func Retryable(err error) bool { return errors.Is(err, ErrTransientIO) }

// Do runs op, retrying with backoff while it returns a retryable error.
// The last error (retryable or not) is returned when attempts run out.
func (rp RetryPolicy) Do(p *vclock.Proc, op func() error) error {
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := rp.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !Retryable(err) {
			return err
		}
		trace.Of(p.Env()).Instant(p.Now(), "ckpt", trace.LaneSim, "retry",
			"attempt", i+1, "of", attempts, "err", err)
		if i < attempts-1 && backoff > 0 {
			p.Sleep(backoff)
			if rp.Multiplier > 1 {
				backoff = vclock.Time(float64(backoff) * rp.Multiplier)
			}
		}
	}
	return err
}

// WriteRankRetry is WriteRank wrapped in a bounded retry: torn writes and
// transient store faults are retried (the atomic-rename commit guarantees
// a failed attempt leaves nothing at the final path), while hard failures
// surface immediately.
func WriteRankRetry(p *vclock.Proc, st *Store, dir string, ms *train.ModelState, modelBytes int64, rp RetryPolicy) error {
	return rp.Do(p, func() error { return WriteRank(p, st, dir, ms, modelBytes) })
}
