package checkpoint

// This file implements multi-step overlapped disk checkpointing (the
// GoCkpt family): one logical snapshot is split into per-iteration slices
// captured at consecutive minibatch boundaries and written to disk
// concurrently with compute, so the critical path only pays the un-hidden
// fraction of one slice's D2H staging per boundary — never a full-state
// serialize-and-write stall like PC_disk. Because slice s is captured at
// iteration base+s, the generation's slices disagree by up to Slices-1
// optimizer steps; every boundary also persists the just-synchronized
// minibatch gradient (from the worker's bounded gradient ring), and restore
// reconciles stale slices by replaying those gradients through the exact
// optimizer update — bit-exact against a run that checkpointed atomically
// at the target iteration.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"jitckpt/internal/gpu"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// MultiStepNamespace is the store-path component of the multi-step family.
// Its generation directories (gen%08d/rank%04d) deliberately do not parse
// as RankDirs, so the plain-source assembler never mistakes a slice object
// for a single-shot rank checkpoint.
const MultiStepNamespace = "multistep"

// MultiStepGenDir builds a generation's per-rank directory; the generation
// number is the target iteration every slice reconciles to.
func MultiStepGenDir(job string, target, rank int) string {
	return fmt.Sprintf("%s/ckpt/%s/gen%08d/rank%04d", job, MultiStepNamespace, target, rank)
}

// parseMSGenDir extracts (target, rank) from a MultiStepGenDir path.
func parseMSGenDir(dir string) (target, rank int, ok bool) {
	parts := strings.Split(dir, "/")
	if len(parts) < 2 {
		return 0, 0, false
	}
	g, r := parts[len(parts)-2], parts[len(parts)-1]
	if !strings.HasPrefix(g, "gen") || !strings.HasPrefix(r, "rank") {
		return 0, 0, false
	}
	gi, err1 := strconv.Atoi(strings.TrimPrefix(g, "gen"))
	ri, err2 := strconv.Atoi(strings.TrimPrefix(r, "rank"))
	return gi, ri, err1 == nil && err2 == nil
}

// MSObject records one committed object of a generation in its META:
// either a state slice (Layers non-empty, Iter = capture iteration) or a
// retained-gradient object (Layers nil, Iter = the minibatch the gradient
// belongs to).
type MSObject struct {
	Name     string // object file name within the generation dir
	Iter     int
	Layers   []int // global layer indices (slice objects only)
	Checksum uint64
	DataLen  int
}

// MSMeta is the generation's metadata, written last: its presence certifies
// that every slice and gradient object committed cleanly.
type MSMeta struct {
	BaseIter   int
	TargetIter int
	Slices     int
	Rank       int
	Objects    []MSObject
}

func msMetaPath(dir string) string { return dir + "/META" }

// msGen tracks one in-flight generation on the capture side.
type msGen struct {
	base     int
	layers   [][]int // layer partition, one entry per slice
	captured int     // slices captured so far
	objects  []MSObject
	failed   bool
}

func (g *msGen) target() int { return g.base + len(g.layers) - 1 }

// MultiStep drives one rank's multi-step overlapped disk checkpointing.
// The harness calls Step at every minibatch boundary; a new generation
// starts when Interval has elapsed and the previous generation's background
// writes have drained.
type MultiStep struct {
	// Slices is how many consecutive boundaries one snapshot spans.
	Slices int
	// Interval is the pacing between generation starts.
	Interval vclock.Time
	// Disk is the persistent store generations commit to.
	Disk *Store
	// Job names the checkpoint namespace.
	Job string
	// StateBytes is the rank's modelled full state size; each slice
	// stages StateBytes/Slices.
	StateBytes int64
	// SerializeBW and D2HBandwidth time the per-slice staging copy.
	SerializeBW  float64
	D2HBandwidth float64
	// HideFraction is the share of the staging copy hidden behind the
	// next minibatch's compute (CheckFreq-style); only the remainder
	// stalls the critical path. Zero means the default 0.5.
	HideFraction float64
	// Retain bounds committed generations kept per rank (default 2).
	Retain int
	// Retry bounds background write retries (zero value = DefaultRetry).
	Retry RetryPolicy
	// NoteSliceWrite, when set, fires on the background writer before
	// each slice write (phase-aware fault injection).
	NoteSliceWrite func(p *vclock.Proc)

	gen        *msGen
	chain      *vclock.Event
	pending    int
	last       vclock.Time
	everRan    bool
	count      int
	stallTotal vclock.Time
}

// Count returns how many generations have committed (META written).
func (msw *MultiStep) Count() int { return msw.count }

// StallTotal returns the accumulated critical-path stall attributed to
// slice staging — the steady-state overhead of the family.
func (msw *MultiStep) StallTotal() vclock.Time { return msw.stallTotal }

// Draining reports whether background slice writes are still in flight.
func (msw *MultiStep) Draining() bool { return msw.pending > 0 }

func (msw *MultiStep) due(now vclock.Time) bool {
	if msw.Interval <= 0 {
		return false
	}
	if !msw.everRan {
		return now >= msw.Interval
	}
	return now-msw.last >= msw.Interval
}

// sliceBytes returns the modelled staged size of one slice.
func (msw *MultiStep) sliceBytes() int64 {
	n := msw.Slices
	if n < 1 {
		n = 1
	}
	return msw.StateBytes / int64(n)
}

// Step runs the multi-step writer at a minibatch boundary, returning the
// critical-path stall charged (the un-hidden staging fraction; the disk
// write itself is never on the critical path). A restore that rewinds the
// iteration abandons the in-flight generation — its partial objects are
// left uncommitted (no META) and later pruned.
func (msw *MultiStep) Step(p *vclock.Proc, w *train.Worker) (vclock.Time, error) {
	if msw.gen != nil && w.Iter() != msw.gen.base+msw.gen.captured {
		// The boundary sequence broke (restore rewound the iteration, or a
		// gradient object interleaved differently): abandon the generation.
		msw.gen = nil
	}
	if msw.gen == nil {
		if !msw.due(p.Now()) || msw.pending > 0 {
			return 0, nil
		}
		msw.startGen(p, w)
	}
	return msw.captureSlice(p, w)
}

func (msw *MultiStep) startGen(p *vclock.Proc, w *train.Worker) {
	layers := w.LayerGlobals()
	n := msw.Slices
	if n < 1 {
		n = 1
	}
	if n > len(layers) {
		n = len(layers)
	}
	part := make([][]int, n)
	for i := range part {
		lo, hi := i*len(layers)/n, (i+1)*len(layers)/n
		part[i] = layers[lo:hi]
	}
	msw.gen = &msGen{base: w.Iter(), layers: part}
	msw.last = p.Now()
	msw.everRan = true
}

// captureSlice captures the next slice (and, from the second boundary on,
// the previous minibatch's gradient for all already-captured slices) and
// enqueues their background writes.
func (msw *MultiStep) captureSlice(p *vclock.Proc, w *train.Worker) (vclock.Time, error) {
	g := msw.gen
	s := g.captured
	boundary := w.Iter()
	full, err := w.PeekModelState()
	if err != nil {
		msw.gen = nil
		return 0, err
	}

	var objs []msPayload
	// Gradient of the minibatch that just retired, restricted to the
	// layers of slices captured at earlier boundaries.
	if s > 0 {
		ring := w.GradRing()
		if ring == nil {
			msw.gen = nil
			return 0, fmt.Errorf("checkpoint: multi-step writer needs the worker's gradient ring")
		}
		gm, ok := ring.GradAt(boundary - 1)
		if !ok {
			msw.gen = nil
			return 0, fmt.Errorf("checkpoint: gradient ring missing iter %d", boundary-1)
		}
		gs := &train.ModelState{Iter: boundary - 1, Rank: w.Rank(), Tensors: make(map[string]tensor.Vector)}
		covered := 0
		for i := 0; i < s; i++ {
			for _, l := range g.layers[i] {
				gv, ok := gm[train.ParamTensorName(l)]
				if !ok {
					msw.gen = nil
					return 0, fmt.Errorf("checkpoint: gradient ring iter %d missing layer %d", boundary-1, l)
				}
				gs.Tensors[train.ParamTensorName(l)] = gv
				covered++
			}
		}
		data, err := gs.Encode()
		if err != nil {
			msw.gen = nil
			return 0, err
		}
		// Gradients are parameter-sized: a third of the state share of the
		// covered layers (state = params + 2x optimizer moments).
		gradBytes := msw.StateBytes / 3 * int64(covered) / int64(len(w.LayerGlobals()))
		objs = append(objs, msPayload{
			obj:        MSObject{Name: fmt.Sprintf("grad%02d.bin", s-1), Iter: boundary - 1, Checksum: hashBytes(data), DataLen: len(data)},
			data:       data,
			modelBytes: gradBytes,
		})
	}

	// The slice itself: this boundary's post-optimizer state of its layers.
	ss := &train.ModelState{Iter: boundary, Rank: w.Rank(), Tensors: make(map[string]tensor.Vector)}
	for _, l := range g.layers[s] {
		for _, name := range []string{train.ParamTensorName(l), train.OptMTensorName(l), train.OptVTensorName(l)} {
			if v, ok := full.Tensors[name]; ok {
				ss.Tensors[name] = v.Clone() // device buffers mutate next iter
			}
		}
	}
	data, err := ss.Encode()
	if err != nil {
		msw.gen = nil
		return 0, err
	}
	layersCopy := append([]int(nil), g.layers[s]...)
	objs = append(objs, msPayload{
		obj:        MSObject{Name: fmt.Sprintf("slice%02d.bin", s), Iter: boundary, Layers: layersCopy, Checksum: hashBytes(data), DataLen: len(data)},
		data:       data,
		modelBytes: msw.sliceBytes(),
	})

	// Critical-path stall: the un-hidden fraction of one slice's staging
	// (D2H over PCIe plus serialization), CheckFreq-style.
	hide := msw.HideFraction
	if hide <= 0 {
		hide = 0.5
	}
	stage := gpu.TransferTime(msw.sliceBytes(), msw.D2HBandwidth)
	if msw.SerializeBW > 0 {
		stage += vclock.Time(float64(msw.sliceBytes()) / msw.SerializeBW * float64(vclock.Second))
	}
	stall := vclock.Time(float64(stage) * (1 - hide))
	if stall > 0 {
		p.Sleep(stall)
	}
	msw.stallTotal += stall

	g.captured++
	final := s == len(g.layers)-1
	msw.enqueue(g, w.Rank(), objs, final)
	if final {
		msw.gen = nil
	}
	return stall, nil
}

// msPayload is one captured object queued for background writing.
type msPayload struct {
	obj        MSObject
	data       []byte
	modelBytes int64
}

// enqueue chains the boundary's writes behind every earlier write of this
// rank (the disk link is sequential per rank), off the critical path. The
// final boundary's writer commits META last and prunes old generations.
func (msw *MultiStep) enqueue(g *msGen, rank int, objs []msPayload, final bool) {
	g.objects = append(g.objects, objsOf(objs)...)
	dir := MultiStepGenDir(msw.Job, g.target(), rank)
	prev := msw.chain
	env := procEnvOf(msw.Disk)
	done := env.NewEvent(fmt.Sprintf("ms-write.%s.%d", dir, len(g.objects)))
	msw.chain = done
	msw.pending++
	rp := msw.Retry
	if rp.Attempts == 0 {
		rp = DefaultRetry()
	}
	meta := MSMeta{BaseIter: g.base, TargetIter: g.target(), Slices: len(g.layers), Rank: rank}
	env.Go("ms-slice-write", func(wp *vclock.Proc) {
		defer func() {
			msw.pending--
			done.Trigger()
		}()
		if prev != nil {
			wp.Wait(prev)
		}
		sp := trace.Of(env).Begin(wp.Now(), "ckpt", trace.Rank(rank), "ms-slice-write",
			"dir", dir, "objs", len(objs))
		if msw.NoteSliceWrite != nil {
			msw.NoteSliceWrite(wp)
		}
		for _, o := range objs {
			o := o
			err := rp.Do(wp, func() error {
				return writeAtomic(wp, msw.Disk, dir+"/"+o.obj.Name, o.data, o.modelBytes)
			})
			if err != nil {
				g.failed = true
				sp.End(wp.Now(), "err", err)
				return
			}
		}
		sp.End(wp.Now())
		if !final {
			return
		}
		if g.failed {
			return // partial generation: no META, deep-validation rejects it
		}
		meta.Objects = g.objects
		var mb bytes.Buffer
		if err := gob.NewEncoder(&mb).Encode(meta); err != nil {
			return
		}
		err := rp.Do(wp, func() error {
			return writeAtomic(wp, msw.Disk, msMetaPath(dir), mb.Bytes(), 256)
		})
		if err != nil {
			return
		}
		msw.count++
		trace.Of(env).Instant(wp.Now(), "ckpt", trace.Rank(rank), "ms-gen-commit",
			"iter", meta.TargetIter, "rank", rank)
		msw.prune(rank)
	})
}

func objsOf(ps []msPayload) []MSObject {
	out := make([]MSObject, len(ps))
	for i, p := range ps {
		out[i] = p.obj
	}
	return out
}

// prune deletes this rank's oldest committed generations beyond Retain,
// plus any abandoned (uncommitted) generation older than the newest commit.
func (msw *MultiStep) prune(rank int) {
	retain := msw.Retain
	if retain < 1 {
		retain = 2
	}
	dirs := msw.rankGenDirs(rank)
	committed := 0
	newestCommit := -1
	for i := len(dirs) - 1; i >= 0; i-- {
		if _, ok := msw.Disk.Stat(nil, msMetaPath(dirs[i])); ok {
			committed++
			if newestCommit < 0 {
				newestCommit = i
			}
			if committed > retain {
				msw.deleteGen(dirs[i])
			}
		} else if newestCommit >= 0 {
			// Abandoned partial generation older than a commit: garbage.
			msw.deleteGen(dirs[i])
		}
	}
}

// rankGenDirs lists this rank's generation directories, oldest first.
func (msw *MultiStep) rankGenDirs(rank int) []string {
	prefix := fmt.Sprintf("%s/ckpt/%s/", msw.Job, MultiStepNamespace)
	seen := make(map[string]bool)
	var dirs []string
	for _, path := range msw.Disk.List(prefix) {
		dir := path[:strings.LastIndex(path, "/")]
		if seen[dir] {
			continue
		}
		seen[dir] = true
		if _, r, ok := parseMSGenDir(dir); ok && r == rank {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	return dirs
}

func (msw *MultiStep) deleteGen(dir string) {
	for _, path := range msw.Disk.List(dir + "/") {
		msw.Disk.Delete(path)
	}
}

// readMSMeta reads and decodes a generation's META.
func readMSMeta(p *vclock.Proc, st *Store, dir string) (MSMeta, error) {
	raw, err := st.Read(p, msMetaPath(dir))
	if err != nil {
		return MSMeta{}, err
	}
	var m MSMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&m); err != nil {
		return MSMeta{}, fmt.Errorf("%w: bad multi-step META in %s: %v", ErrCorrupt, dir, err)
	}
	return m, nil
}

// msValidDeep deep-validates a generation: META present and decodable,
// every recorded object present with matching length and content hash, and
// every slice reconcilable — each iteration between a slice's capture and
// the target must have a recorded gradient object. A generation missing a
// slice, holding a torn or bit-flipped object, or whose slices are stale
// beyond the retained gradient window is rejected as a unit, so restore
// falls back to the newest generation that is fully valid.
func msValidDeep(p *vclock.Proc, st *Store, dir string) bool {
	m, err := readMSMeta(p, st, dir)
	if err != nil {
		return false
	}
	gradIters := make(map[int]bool)
	slices := 0
	for _, o := range m.Objects {
		length, ok := st.Stat(p, dir+"/"+o.Name)
		if !ok || length != o.DataLen {
			return false
		}
		sum, ok := st.ContentHash(p, dir+"/"+o.Name)
		if !ok || sum != o.Checksum {
			return false
		}
		if o.Layers == nil {
			gradIters[o.Iter] = true
		} else {
			slices++
		}
	}
	if slices != m.Slices {
		return false
	}
	for _, o := range m.Objects {
		if o.Layers == nil {
			continue
		}
		if o.Iter > m.TargetIter || o.Iter < m.BaseIter {
			return false // stale beyond the generation's gradient window
		}
		for t := o.Iter; t < m.TargetIter; t++ {
			if !gradIters[t] {
				return false
			}
		}
	}
	return true
}

// MultiStepParams carries what restore-time reconciliation needs: the
// optimizer update to replay, the gradient scale the kernels applied, and
// the modelled host replay throughput (bytes of state advanced per second).
type MultiStepParams struct {
	Opt         train.OptimizerSpec
	Scale       float32
	ReconcileBW float64
	// NoteReconcile, when set, fires as reconciliation begins (phase-aware
	// fault injection).
	NoteReconcile func(p *vclock.Proc)
}

// MultiStepCandidates enumerates the store's multi-step generations as
// restore candidates. Each candidate deep-validates its whole generation in
// Probe and, in Load, reads every object (charging read bandwidth), then
// replays retained gradients to advance stale slices to the target
// iteration — charging the host replay to virtual time.
func MultiStepCandidates(st *Store, job string, mp MultiStepParams) []Candidate {
	prefix := fmt.Sprintf("%s/ckpt/%s/", job, MultiStepNamespace)
	seen := make(map[string]bool)
	var out []Candidate
	for _, path := range st.List(prefix) {
		dir := path[:strings.LastIndex(path, "/")]
		if seen[dir] {
			continue
		}
		seen[dir] = true
		target, rank, ok := parseMSGenDir(dir)
		if !ok {
			continue
		}
		d := dir
		out = append(out, Candidate{
			Iter:  target,
			Rank:  rank,
			Probe: func(p *vclock.Proc) bool { return msValidDeep(p, st, d) },
			Load:  func(p *vclock.Proc) (*train.ModelState, error) { return loadMultiStep(p, st, d, mp) },
			Desc:  MultiStepNamespace + ":" + d,
		})
	}
	return out
}

// loadMultiStep reads a generation and reconciles it to its target
// iteration.
func loadMultiStep(p *vclock.Proc, st *Store, dir string, mp MultiStepParams) (*train.ModelState, error) {
	m, err := readMSMeta(p, st, dir)
	if err != nil {
		return nil, err
	}
	out := &train.ModelState{Iter: m.TargetIter, Rank: m.Rank, Tensors: make(map[string]tensor.Vector)}
	grads := make(map[int]map[string]tensor.Vector)
	type staleSlice struct {
		layers []int
		from   int
	}
	var stale []staleSlice
	var staleBytes int64
	for _, o := range m.Objects {
		raw, err := st.Read(p, dir+"/"+o.Name)
		if err != nil {
			return nil, err
		}
		if len(raw) != o.DataLen || hashBytes(raw) != o.Checksum {
			return nil, fmt.Errorf("%w: %s/%s fails checksum", ErrCorrupt, dir, o.Name)
		}
		ms, err := train.DecodeModelState(raw)
		if err != nil {
			return nil, err
		}
		if o.Layers == nil {
			grads[o.Iter] = ms.Tensors
			continue
		}
		for n, v := range ms.Tensors {
			out.Tensors[n] = v
		}
		if o.Iter < m.TargetIter {
			stale = append(stale, staleSlice{layers: o.Layers, from: o.Iter})
			staleBytes += int64(m.TargetIter-o.Iter) * st.ModelBytes(dir+"/"+o.Name)
		}
	}
	if len(stale) > 0 {
		if mp.NoteReconcile != nil {
			mp.NoteReconcile(p)
		}
		sp := trace.Of(p.Env()).Begin(p.Now(), "ckpt", trace.Rank(m.Rank), "ms-reconcile",
			"dir", dir, "slices", len(stale))
		lookup := func(iter int) (map[string]tensor.Vector, bool) {
			gm, ok := grads[iter]
			return gm, ok
		}
		for _, ssl := range stale {
			if err := train.ReconcileTensors(out, ssl.layers, ssl.from, m.TargetIter,
				mp.Opt, mp.Scale, lookup); err != nil {
				sp.End(p.Now(), "err", err)
				return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, dir, err)
			}
		}
		if mp.ReconcileBW > 0 {
			p.Sleep(gpu.TransferTime(staleBytes, mp.ReconcileBW))
		}
		sp.End(p.Now())
	}
	return out, nil
}
