package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// FragMeta is the metadata object committed last for one erasure-coded
// fragment of a rank checkpoint. It carries enough to rebuild the whole
// stripe from any k surviving fragments: the stripe geometry (K data +
// M parity, ShardLen bytes each), the original payload length and
// checksum (verified after decode+join), and this fragment's own
// checksum — the per-fragment integrity signal that feeds the decoder's
// erasure list when storage chaos corrupts a fragment in place.
type FragMeta struct {
	Iter int
	Rank int
	// Frag is this fragment's index in the stripe: 0..K-1 are data
	// shards, K..K+M-1 parity.
	Frag     int
	K, M     int
	ShardLen int
	// DataLen and DataSum describe the original (pre-split) payload.
	DataLen int
	DataSum uint64
	// FragSum is the FNV-1a checksum of this fragment's bytes.
	FragSum uint64
}

// FragPath returns the object path of fragment idx inside a rank
// checkpoint directory.
func FragPath(dir string, idx int) string { return fmt.Sprintf("%s/frag%03d.bin", dir, idx) }

// FragMetaPath returns the metadata object path of fragment idx.
func FragMetaPath(dir string, idx int) string { return fmt.Sprintf("%s/FMETA%03d", dir, idx) }

// WriteFrag commits one fragment with the same two-phase protocol as
// WriteRank: fragment bytes first, FMETA last, each by atomic rename —
// so a torn transfer never leaves a fragment that looks committed.
// modelBytes is the modelled fragment size driving write timing
// (stateBytes/K for a striped state). fm.FragSum is computed here.
func WriteFrag(p *vclock.Proc, st *Store, dir string, fm FragMeta, frag []byte, modelBytes int64) error {
	sp := trace.Of(p.Env()).Begin(p.Now(), "ckpt", trace.Rank(fm.Rank), "write-frag",
		"store", st.name, "iter", fm.Iter, "frag", fm.Frag)
	fm.ShardLen = len(frag)
	fm.FragSum = hashBytes(frag)
	if err := writeAtomic(p, st, FragPath(dir, fm.Frag), frag, modelBytes); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(fm); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	if err := writeAtomic(p, st, FragMetaPath(dir, fm.Frag), mb.Bytes(), 256); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	sp.End(p.Now())
	return nil
}

// ReadFragMeta reads and decodes one fragment's metadata.
func ReadFragMeta(p *vclock.Proc, st *Store, dir string, idx int) (FragMeta, error) {
	raw, err := st.Read(p, FragMetaPath(dir, idx))
	if err != nil {
		return FragMeta{}, err
	}
	var fm FragMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&fm); err != nil {
		return FragMeta{}, fmt.Errorf("%w: bad FMETA%03d in %s: %v", ErrCorrupt, idx, dir, err)
	}
	return fm, nil
}

// HasFrag reports whether dir holds a committed fragment idx using only
// zero-time metadata lookups (FMETA written last certifies the commit).
// Coverage scans use it where charging latency per probe would distort
// timing.
func HasFrag(st *Store, dir string, idx int) bool {
	if n, ok := st.Stat(nil, FragMetaPath(dir, idx)); !ok || n == 0 {
		return false
	}
	_, ok := st.Stat(nil, FragPath(dir, idx))
	return ok
}

// ValidFragDeep checks fragment idx end-to-end at metadata cost: FMETA
// decodes, the fragment object exists with the recorded length, and the
// store-side content hash matches FragSum. A false answer is exactly an
// entry for the decoder's erasure list.
func ValidFragDeep(p *vclock.Proc, st *Store, dir string, idx int) bool {
	fm, err := ReadFragMeta(p, st, dir, idx)
	if err != nil {
		return false
	}
	length, ok := st.Stat(p, FragPath(dir, idx))
	if !ok || length != fm.ShardLen {
		return false
	}
	sum, ok := st.ContentHash(p, FragPath(dir, idx))
	return ok && sum == fm.FragSum
}

// ReadFrag reads and verifies fragment idx, charging read bandwidth.
func ReadFrag(p *vclock.Proc, st *Store, dir string, idx int) (FragMeta, []byte, error) {
	fm, err := ReadFragMeta(p, st, dir, idx)
	if err != nil {
		return FragMeta{}, nil, err
	}
	data, err := st.Read(p, FragPath(dir, idx))
	if err != nil {
		return FragMeta{}, nil, err
	}
	if len(data) != fm.ShardLen || hashBytes(data) != fm.FragSum {
		return FragMeta{}, nil, fmt.Errorf("%w: %s frag %d fails checksum", ErrCorrupt, dir, idx)
	}
	return fm, data, nil
}
