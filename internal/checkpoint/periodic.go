package checkpoint

import (
	"fmt"

	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// PeriodicKind selects a periodic checkpointing baseline from §6.3.
type PeriodicKind int

const (
	// PCDisk saves to the persistent store in the critical path
	// (torch.save-style).
	PCDisk PeriodicKind = iota
	// PCMem saves to node-local tmpfs in the critical path and drains to
	// the persistent store asynchronously (Nebula-style, [2]).
	PCMem
	// CheckFreq overlaps the GPU→CPU snapshot with the next minibatch's
	// compute, paying only the un-hidden fraction in the critical path
	// (CheckFreq [23]; its runtime profiling is modelled by the
	// HideFraction parameter).
	CheckFreq
	// PCDaily is PC_mem at a fixed once-per-day cadence — the optional
	// low-frequency safety net for catastrophic multi-node failures that
	// the paper suggests running alongside JIT checkpointing.
	PCDaily
)

// String renders the baseline name as the paper writes it.
func (k PeriodicKind) String() string {
	switch k {
	case PCDisk:
		return "PC_disk"
	case PCMem:
		return "PC_mem"
	case CheckFreq:
		return "CheckFreq"
	case PCDaily:
		return "PC_1/day"
	default:
		return fmt.Sprintf("PeriodicKind(%d)", int(k))
	}
}

// PolicyName returns the store-path component for a baseline.
func (k PeriodicKind) PolicyName() string {
	switch k {
	case PCDisk:
		return "pc_disk"
	case PCMem, PCDaily:
		return "pc_mem"
	case CheckFreq:
		return "checkfreq"
	default:
		return "unknown"
	}
}

// Periodic drives one rank's periodic checkpointing. The training harness
// calls Due at every minibatch boundary and Run when due.
type Periodic struct {
	Kind PeriodicKind
	// Interval is the wall time between checkpoints (1/c).
	Interval vclock.Time
	// Disk is the persistent shared store; Mem is the node-local tmpfs
	// tier (used by PCMem/PCDaily/CheckFreq for the critical-path copy).
	Disk *Store
	Mem  *Store
	// HideFraction is the share of the snapshot copy CheckFreq hides
	// behind compute (profile-tuned in the real system; default 0.5).
	HideFraction float64
	// SerializeBW models the CPU-side serialization throughput
	// (torch.save-class pickling) in bytes/second; it is paid in the
	// critical path by PC_disk and PC_mem alike — which is why saving to
	// tmpfs only shaves ~15% off PC_disk in the paper's Table 3 — and is
	// part of the hideable copy for CheckFreq. Zero disables it.
	SerializeBW float64
	// StateBytes is the modelled state size serialization applies to.
	StateBytes int64
	// Job names the checkpoint namespace.
	Job string
	// Retry bounds retries of store writes on transient faults; the zero
	// value means DefaultRetry.
	Retry RetryPolicy

	last       vclock.Time
	everRan    bool
	count      int
	stallTotal vclock.Time
}

// Due reports whether a checkpoint should be taken at virtual time now.
func (pc *Periodic) Due(now vclock.Time) bool {
	if pc.Interval <= 0 {
		return false
	}
	if !pc.everRan {
		return now >= pc.Interval
	}
	return now-pc.last >= pc.Interval
}

// Count returns how many checkpoints have been taken.
func (pc *Periodic) Count() int { return pc.count }

// StallTotal returns the accumulated critical-path stall attributed to
// checkpointing (the steady-state overhead Table 3 reports).
func (pc *Periodic) StallTotal() vclock.Time { return pc.stallTotal }

// Run takes one checkpoint of w, returning the critical-path stall
// attributed to it. The GPU→CPU copy inside SaveModelState is timed by the
// simulated PCIe link; the store write is timed by the tier. For
// CheckFreq, the call still advances the clock by the full copy time but
// only the un-hidden fraction is attributed as stall — matching how the
// real system hides the copy behind the next minibatch's compute.
func (pc *Periodic) Run(p *vclock.Proc, w *train.Worker) (vclock.Time, error) {
	start := p.Now()
	sp := trace.Of(p.Env()).Begin(start, "ckpt", trace.Rank(w.Rank()), "pc-save",
		"kind", pc.Kind)
	ms, err := w.SaveModelState(p) // D2H copies, PCIe-timed
	if err != nil {
		sp.End(p.Now(), "err", err)
		return 0, err
	}
	if pc.SerializeBW > 0 && pc.StateBytes > 0 {
		p.Sleep(vclock.Time(float64(pc.StateBytes) / pc.SerializeBW * float64(vclock.Second)))
	}
	copyTime := p.Now() - start
	bytes := w.ModelStateBytes()
	dir := RankDir(pc.Job, pc.Kind.PolicyName(), ms.Iter, ms.Rank)
	rp := pc.Retry
	if rp.Attempts == 0 {
		rp = DefaultRetry()
	}

	var stall vclock.Time
	switch pc.Kind {
	case PCDisk:
		if err := WriteRankRetry(p, pc.Disk, dir, ms, bytes, rp); err != nil {
			sp.End(p.Now(), "err", err)
			return 0, err
		}
		stall = p.Now() - start
	case PCMem, PCDaily:
		if err := WriteRankRetry(p, pc.Mem, dir, ms, bytes, rp); err != nil {
			sp.End(p.Now(), "err", err)
			return 0, err
		}
		stall = p.Now() - start
		pc.drainAsync(dir, bytes)
	case CheckFreq:
		if err := WriteRankRetry(p, pc.Mem, dir, ms, bytes, rp); err != nil {
			sp.End(p.Now(), "err", err)
			return 0, err
		}
		hidden := vclock.Time(float64(copyTime) * pc.HideFraction)
		stall = p.Now() - start - hidden
		if stall < 0 {
			stall = 0
		}
		pc.drainAsync(dir, bytes)
	default:
		sp.End(p.Now(), "err", "unknown-kind")
		return 0, fmt.Errorf("checkpoint: unknown periodic kind %v", pc.Kind)
	}
	pc.last = p.Now()
	pc.everRan = true
	pc.count++
	pc.stallTotal += stall
	sp.End(p.Now(), "iter", ms.Iter, "stall", stall)
	return stall, nil
}

// drainAsync copies a tmpfs checkpoint to the persistent store in the
// background, off the training critical path.
func (pc *Periodic) drainAsync(dir string, bytes int64) {
	if pc.Disk == nil || pc.Mem == nil {
		return
	}
	env := procEnvOf(pc.Mem)
	env.Go("ckpt-drain", func(dp *vclock.Proc) {
		dsp := trace.Of(env).Begin(dp.Now(), "ckpt", trace.LaneSim, "drain", "dir", dir)
		defer func() { dsp.End(dp.Now()) }()
		for _, suffix := range []string{"/model.bin", "/META"} {
			raw, err := pc.Mem.Read(dp, dir+suffix)
			if err != nil {
				return
			}
			mb := bytes
			if suffix == "/META" {
				mb = 256
			}
			if err := pc.Disk.Write(dp, dir+suffix, raw, mb); err != nil {
				return
			}
		}
	})
}

func procEnvOf(s *Store) *vclock.Env { return s.env }
