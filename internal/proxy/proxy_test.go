package proxy

import (
	"errors"
	"fmt"
	"testing"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

type rig struct {
	env    *vclock.Env
	dev    *gpu.Device
	engine *nccl.Engine
	server *Server
	client *Client
}

func newRig(t *testing.T, kernels cuda.Registry) *rig {
	t.Helper()
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	server, err := NewServer(env, dev, engine, kernels, cuda.DefaultParams(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, dev: dev, engine: engine, server: server, client: NewClient(env, server)}
}

func (r *rig) run(t *testing.T, body func(p *vclock.Proc)) {
	t.Helper()
	r.env.Go("worker", body)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProxyMemcpyRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *vclock.Proc) {
		b, err := r.client.Malloc(p, 1<<20, 3, "w")
		if err != nil {
			t.Error(err)
			return
		}
		r.client.MemcpyH2D(p, b, []float32{7, 8, 9}, cuda.DefaultStream)
		got, err := r.client.MemcpyD2H(p, b, cuda.DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Vector(got).Equal(tensor.Vector{7, 8, 9}) {
			t.Errorf("round trip = %v", got)
		}
	})
}

func TestProxyKernelLaunchByName(t *testing.T) {
	kernels := cuda.Registry{
		"add1": func(a cuda.KernelArgs) error {
			for i := range a.Bufs[0] {
				a.Bufs[0][i]++
			}
			return nil
		},
	}
	r := newRig(t, kernels)
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.client.Malloc(p, 64, 2, "x")
		r.client.MemcpyH2D(p, b, []float32{1, 2}, cuda.DefaultStream)
		r.client.Launch(p, cuda.LaunchParams{Kernel: "add1", Dur: vclock.Millisecond, Bufs: []cuda.Buf{b}}, cuda.DefaultStream)
		got, _ := r.client.MemcpyD2H(p, b, cuda.DefaultStream)
		if !tensor.Vector(got).Equal(tensor.Vector{2, 3}) {
			t.Errorf("result = %v", got)
		}
	})
}

func TestProxyAsyncCallsDoNotBlock(t *testing.T) {
	r := newRig(t, cuda.Registry{"slow": func(cuda.KernelArgs) error { return nil }})
	r.run(t, func(p *vclock.Proc) {
		t0 := p.Now()
		r.client.Launch(p, cuda.LaunchParams{Kernel: "slow", Dur: vclock.Seconds(100)}, cuda.DefaultStream)
		if p.Now()-t0 > vclock.Millisecond {
			t.Errorf("async launch blocked for %v", p.Now()-t0)
		}
	})
}

func TestProxyAsyncErrorViaGetLastError(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *vclock.Proc) {
		// Launch an unregistered kernel: error comes back asynchronously.
		r.client.Launch(p, cuda.LaunchParams{Kernel: "nope"}, cuda.DefaultStream)
		p.Sleep(vclock.Second) // let the response arrive
		if err := r.client.GetLastError(p); !errors.Is(err, cuda.ErrUnknownKernel) {
			t.Errorf("GetLastError = %v", err)
		}
		// Cleared after read.
		if err := r.client.GetLastError(p); err != nil {
			t.Errorf("second GetLastError = %v", err)
		}
	})
}

func TestProxyPerThreadOrdering(t *testing.T) {
	var order []string
	kernels := cuda.Registry{
		"k": func(a cuda.KernelArgs) error {
			order = append(order, fmt.Sprintf("%d", a.IArgs[0]))
			return nil
		},
	}
	r := newRig(t, kernels)
	r.run(t, func(p *vclock.Proc) {
		// Ten async launches from one thread must execute in issue order.
		for i := 0; i < 10; i++ {
			r.client.Launch(p, cuda.LaunchParams{
				Kernel: "k", Dur: vclock.Millisecond, IArgs: []int64{int64(i)},
			}, cuda.DefaultStream)
		}
		r.client.StreamSynchronize(p, cuda.DefaultStream)
	})
	want := "0123456789"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
}

func TestProxyThreadIsolation(t *testing.T) {
	// The main thread wedges in a StreamSynchronize on a hung collective;
	// the watchdog thread's EventQuery must stay responsive.
	r := newRig(t, nil)
	mainStuck := false
	watchdogOK := false
	r.env.Go("peer-rank", func(p *vclock.Proc) {
		// Rank 1 joins init then never issues its collective.
		if _, err := r.engine.CommInitRank(p, "dp", 0, 2, 1, nil); err != nil {
			t.Error(err)
		}
	})
	r.env.Go("main-thread", func(p *vclock.Proc) {
		comm, err := r.client.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		b, _ := r.client.Malloc(p, 1<<20, 1, "g")
		r.client.AllReduce(p, comm, b, cuda.DefaultStream)
		mainStuck = true
		r.client.StreamSynchronize(p, cuda.DefaultStream) // hangs forever
		mainStuck = false
	})
	r.env.Go("watchdog-thread", func(p *vclock.Proc) {
		p.Sleep(vclock.Seconds(10))
		ev, err := r.client.EventCreate(p)
		if err != nil {
			t.Error(err)
			return
		}
		done, err := r.client.EventQuery(p, ev)
		watchdogOK = done && err == nil
	})
	if err := r.env.RunUntil(vclock.Minute); err != nil {
		t.Fatal(err)
	}
	if !mainStuck {
		t.Fatal("main thread should be wedged at StreamSynchronize")
	}
	if !watchdogOK {
		t.Fatal("watchdog thread was starved by the wedged main thread")
	}
}

func TestProxyErrorIdentityAcrossWire(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *vclock.Proc) {
		if _, err := r.client.MemcpyD2H(p, cuda.Buf(99), cuda.DefaultStream); !errors.Is(err, cuda.ErrBadHandle) {
			t.Errorf("bad handle: %v", err)
		}
		r.dev.InjectSticky()
		if _, err := r.client.Malloc(p, 1, 0, "x"); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("sticky: %v", err)
		}
	})
}

func TestProxyRestartClearsStickyAndKeepsBuffers(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *vclock.Proc) {
		b, _ := r.client.Malloc(p, 1<<10, 2, "param.w")
		r.client.MemcpyH2D(p, b, []float32{3, 4}, cuda.DefaultStream)
		r.client.StreamSynchronize(p, cuda.DefaultStream)

		r.dev.InjectSticky()
		if _, err := r.client.Malloc(p, 1, 0, "x"); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("expected sticky, got %v", err)
		}

		// Restart the proxy: sticky cleared, device buffers survive.
		if err := r.server.Restart(); err != nil {
			t.Error(err)
			return
		}
		if r.dev.Health() != gpu.Healthy {
			t.Errorf("health after restart = %v", r.dev.Health())
		}
		bufs := r.dev.Buffers()
		if len(bufs) != 1 || bufs[0].Data[0] != 3 {
			t.Errorf("buffers after restart: %v", bufs)
		}
		// Old client still talks to the restarted server's fresh driver:
		// the new driver has no handle for the old buffer (that remapping
		// is the interception layer's virtual-handle job).
		if _, err := r.client.MemcpyD2H(p, b, cuda.DefaultStream); err == nil {
			t.Error("old physical handle should be invalid after restart")
		}
		// New allocations work.
		if _, err := r.client.Malloc(p, 64, 1, "y"); err != nil {
			t.Errorf("Malloc after restart: %v", err)
		}
	})
}

func TestProxyRestartDropsInFlightCalls(t *testing.T) {
	r := newRig(t, nil)
	hung := false
	released := false
	r.env.Go("victim", func(p *vclock.Proc) {
		b, _ := r.client.Malloc(p, 1<<30, 1, "big")
		// Block the default stream behind a wedged event wait so D2H hangs.
		peerEv := r.env.NewEvent("never")
		r.server.Driver().Device() // touch
		r.client.Launch(p, cuda.LaunchParams{Kernel: "missing"}, cuda.DefaultStream)
		_ = peerEv
		// Sync call that will be in flight during restart: use a stream
		// sync on a stream wedged by a hung collective.
		r.env.Go("peer", func(pp *vclock.Proc) {
			r.engine.CommInitRank(pp, "dp", 0, 2, 1, nil)
		})
		comm, err := r.client.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		r.client.AllReduce(p, comm, b, cuda.DefaultStream)
		hung = true
		err = r.client.StreamSynchronize(p, cuda.DefaultStream)
		if errors.Is(err, ErrProxyDown) {
			released = true
		}
	})
	r.env.Go("recovery", func(p *vclock.Proc) {
		p.Sleep(vclock.Seconds(30))
		r.server.Stop()
		r.client.AbortPending()
		if err := r.server.Restart(); err != nil {
			t.Error(err)
		}
	})
	if err := r.env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if !hung || !released {
		t.Fatalf("hung=%v released=%v; AbortPending must release in-flight callers", hung, released)
	}
}

func TestProxyGenerationCounts(t *testing.T) {
	r := newRig(t, nil)
	if r.server.Generation() != 0 {
		t.Fatalf("gen = %d", r.server.Generation())
	}
	r.run(t, func(p *vclock.Proc) {
		r.server.Restart()
		r.server.Restart()
	})
	if r.server.Generation() != 2 {
		t.Fatalf("gen after two restarts = %d", r.server.Generation())
	}
}

func TestProxyCollectivesAcrossTwoProxiedRanks(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	var clients [2]*Client
	var devs [2]*gpu.Device
	for i := 0; i < 2; i++ {
		devs[i] = gpu.NewDevice(env, 0, i, 1<<34)
		srv, err := NewServer(env, devs[i], engine, nil, cuda.DefaultParams(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewClient(env, srv)
	}
	results := [2][]float32{}
	for rank := 0; rank < 2; rank++ {
		rank := rank
		env.Go(fmt.Sprintf("rank%d", rank), func(p *vclock.Proc) {
			cl := clients[rank]
			comm, err := cl.CommInit(p, "dp", 0, 2, rank)
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := cl.Malloc(p, 64, 2, "g")
			cl.MemcpyH2D(p, b, []float32{float32(rank + 1), 10}, cuda.DefaultStream)
			cl.AllReduce(p, comm, b, cuda.DefaultStream)
			got, err := cl.MemcpyD2H(p, b, cuda.DefaultStream)
			if err != nil {
				t.Error(err)
				return
			}
			results[rank] = got
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, got := range results {
		if !tensor.Vector(got).Equal(tensor.Vector{3, 20}) {
			t.Fatalf("rank %d allreduce = %v, want [3 20]", rank, got)
		}
	}
}

func TestMethodStringAndAsyncClassification(t *testing.T) {
	if MLaunch.String() != "Launch" || Method(999).String() == "" {
		t.Fatal("Method.String broken")
	}
	if !MLaunch.IsAsync() || MMemcpyD2H.IsAsync() || MCommInit.IsAsync() {
		t.Fatal("async classification wrong")
	}
}

func TestWireErrorCodec(t *testing.T) {
	for _, sentinel := range wireErrors {
		code, msg := encodeErr(sentinel)
		if got := decodeErr(code, msg); !errors.Is(got, sentinel) {
			t.Fatalf("codec lost identity of %v", sentinel)
		}
	}
	wrapped := fmt.Errorf("context: %w", gpu.ErrOutOfMemory)
	code, msg := encodeErr(wrapped)
	got := decodeErr(code, msg)
	if !errors.Is(got, gpu.ErrOutOfMemory) {
		t.Fatalf("wrapped error lost identity: %v", got)
	}
	if decodeErr(0, "") != nil {
		t.Fatal("nil should round trip")
	}
	opaque := decodeErr(encodeErr(errors.New("weird")))
	if opaque == nil || opaque.Error() != "weird" {
		t.Fatalf("opaque error = %v", opaque)
	}
}

func BenchmarkProxySyncCall(b *testing.B) {
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	server, err := NewServer(env, dev, engine, nil, cuda.DefaultParams(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	client := NewClient(env, server)
	env.Go("worker", func(p *vclock.Proc) {
		ev, _ := client.EventCreate(p)
		for i := 0; i < b.N; i++ {
			client.EventQuery(p, ev)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
