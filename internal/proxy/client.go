package proxy

import (
	"bytes"
	"encoding/gob"

	"jitckpt/internal/cuda"
	"jitckpt/internal/vclock"
)

// Client is the worker-side half of the device proxy. It implements
// cuda.API by serializing calls onto the proxy wire. Asynchronous methods
// return as soon as the request is queued; synchronous methods block the
// calling process until the server responds (or forever, if the server is
// wedged or restarted — recovering those callers is the interception
// layer's job).
//
// Each calling process is treated as a distinct worker thread: its calls
// execute on the server in issue order, independently of other threads.
type Client struct {
	env    *vclock.Env
	server *Server
	ipc    Params

	nextID     uint64
	threads    map[*vclock.Proc]int
	nextThread int
	pending    map[uint64]*pendingCall
	asyncErr   error
}

type pendingCall struct {
	done *vclock.Event
	resp Response
}

var _ cuda.API = (*Client)(nil)

// NewClient creates a client for server and starts its response
// dispatcher.
func NewClient(env *vclock.Env, server *Server) *Client {
	c := &Client{
		env:     env,
		server:  server,
		ipc:     server.ipc,
		threads: make(map[*vclock.Proc]int),
		pending: make(map[uint64]*pendingCall),
	}
	env.Go("proxy.client.dispatch", func(p *vclock.Proc) {
		for {
			raw := server.respQ.Pop(p)
			var resp Response
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&resp); err != nil {
				env.Tracef("proxy client: undecodable response: %v", err)
				continue
			}
			pc, ok := c.pending[resp.ID]
			if !ok {
				// Response to a fire-and-forget call: remember failures.
				if err := decodeErr(resp.ErrCode, resp.ErrMsg); err != nil && c.asyncErr == nil {
					c.asyncErr = err
				}
				continue
			}
			delete(c.pending, resp.ID)
			pc.resp = resp
			pc.done.Trigger()
		}
	})
	return c
}

// AbortPending releases every caller blocked on an in-flight request with
// ErrProxyDown. The recovery controller uses it when it restarts the proxy
// server, so worker threads return to the interception layer instead of
// hanging on responses that will never arrive.
func (c *Client) AbortPending() int {
	n := 0
	for id, pc := range c.pending {
		pc.resp = Response{ID: id}
		pc.resp.ErrCode, pc.resp.ErrMsg = encodeErr(ErrProxyDown)
		pc.done.Trigger()
		delete(c.pending, id)
		n++
	}
	return n
}

// Server returns the proxy server this client is connected to.
func (c *Client) Server() *Server { return c.server }

func (c *Client) threadID(p *vclock.Proc) int {
	id, ok := c.threads[p]
	if !ok {
		id = c.nextThread
		c.nextThread++
		c.threads[p] = id
	}
	return id
}

// send serializes req and pushes it to the server.
func (c *Client) send(p *vclock.Proc, req *Request) {
	req.ID = c.nextID
	c.nextID++
	req.Thread = c.threadID(p)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		panic("proxy: request encode: " + err.Error())
	}
	p.Sleep(c.ipc.SendLatency)
	c.server.reqQ.Push(buf.Bytes())
}

// callAsync sends a fire-and-forget request.
func (c *Client) callAsync(p *vclock.Proc, req *Request) error {
	c.send(p, req)
	return nil
}

// callSync sends a request and blocks until its response arrives.
func (c *Client) callSync(p *vclock.Proc, req *Request) (Response, error) {
	c.send(p, req)
	pc := &pendingCall{done: c.env.NewEvent("proxy.call." + req.Method.String())}
	c.pending[req.ID] = pc
	p.Wait(pc.done)
	return pc.resp, decodeErr(pc.resp.ErrCode, pc.resp.ErrMsg)
}

// Malloc allocates device memory via the proxy. See cuda.API.
func (c *Client) Malloc(p *vclock.Proc, bytes int64, elems int, tag string) (cuda.Buf, error) {
	resp, err := c.callSync(p, &Request{Method: MMalloc, Bytes: bytes, Elems: elems, Tag: tag})
	return resp.Buf, err
}

// Free releases device memory via the proxy. See cuda.API.
func (c *Client) Free(p *vclock.Proc, b cuda.Buf) error {
	_, err := c.callSync(p, &Request{Method: MFree, Buf: b})
	return err
}

// MemcpyH2D is fire-and-forget on the client. See cuda.API.
func (c *Client) MemcpyH2D(p *vclock.Proc, dst cuda.Buf, src []float32, s cuda.Stream) error {
	data := append([]float32(nil), src...)
	return c.callAsync(p, &Request{Method: MMemcpyH2D, Buf: dst, Data: data, Stream: s})
}

// MemcpyD2H blocks until the copied data arrives. See cuda.API.
func (c *Client) MemcpyD2H(p *vclock.Proc, src cuda.Buf, s cuda.Stream) ([]float32, error) {
	resp, err := c.callSync(p, &Request{Method: MMemcpyD2H, Buf: src, Stream: s})
	return resp.Data, err
}

// MemcpyD2D is fire-and-forget on the client. See cuda.API.
func (c *Client) MemcpyD2D(p *vclock.Proc, dst, src cuda.Buf, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MMemcpyD2D, Buf: dst, Buf2: src, Stream: s})
}

// StreamCreate creates a stream via the proxy. See cuda.API.
func (c *Client) StreamCreate(p *vclock.Proc) (cuda.Stream, error) {
	resp, err := c.callSync(p, &Request{Method: MStreamCreate})
	return resp.Stream, err
}

// StreamDestroy destroys a stream via the proxy. See cuda.API.
func (c *Client) StreamDestroy(p *vclock.Proc, s cuda.Stream) error {
	_, err := c.callSync(p, &Request{Method: MStreamDestroy, Stream: s})
	return err
}

// StreamSynchronize blocks until the stream drains server-side. See
// cuda.API.
func (c *Client) StreamSynchronize(p *vclock.Proc, s cuda.Stream) error {
	_, err := c.callSync(p, &Request{Method: MStreamSynchronize, Stream: s})
	return err
}

// StreamWaitEvent is fire-and-forget on the client. See cuda.API.
func (c *Client) StreamWaitEvent(p *vclock.Proc, s cuda.Stream, ev cuda.Event) error {
	return c.callAsync(p, &Request{Method: MStreamWaitEvent, Stream: s, Event: ev})
}

// EventCreate creates an event via the proxy. See cuda.API.
func (c *Client) EventCreate(p *vclock.Proc) (cuda.Event, error) {
	resp, err := c.callSync(p, &Request{Method: MEventCreate})
	return resp.Event, err
}

// EventRecord is fire-and-forget on the client. See cuda.API.
func (c *Client) EventRecord(p *vclock.Proc, ev cuda.Event, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MEventRecord, Event: ev, Stream: s})
}

// EventQuery asks the server whether the event completed. See cuda.API.
func (c *Client) EventQuery(p *vclock.Proc, ev cuda.Event) (bool, error) {
	resp, err := c.callSync(p, &Request{Method: MEventQuery, Event: ev})
	return resp.Bool, err
}

// EventSynchronize blocks until the event completes server-side. See
// cuda.API.
func (c *Client) EventSynchronize(p *vclock.Proc, ev cuda.Event) error {
	_, err := c.callSync(p, &Request{Method: MEventSynchronize, Event: ev})
	return err
}

// EventDestroy destroys an event via the proxy. See cuda.API.
func (c *Client) EventDestroy(p *vclock.Proc, ev cuda.Event) error {
	_, err := c.callSync(p, &Request{Method: MEventDestroy, Event: ev})
	return err
}

// Launch is fire-and-forget on the client. The server dequeues the request
// later, so the argument slices are captured here — callers may reuse them
// for their next launch. See cuda.API.
func (c *Client) Launch(p *vclock.Proc, lp cuda.LaunchParams, s cuda.Stream) error {
	lp.Bufs = append([]cuda.Buf(nil), lp.Bufs...)
	lp.IArgs = append([]int64(nil), lp.IArgs...)
	lp.FArgs = append([]float32(nil), lp.FArgs...)
	return c.callAsync(p, &Request{Method: MLaunch, Launch: lp, Stream: s})
}

// DeviceSynchronize blocks until every stream drains server-side. See
// cuda.API.
func (c *Client) DeviceSynchronize(p *vclock.Proc) error {
	_, err := c.callSync(p, &Request{Method: MDeviceSynchronize})
	return err
}

// GetLastError returns the first failure among fire-and-forget calls, or
// the server's last error. See cuda.API.
func (c *Client) GetLastError(p *vclock.Proc) error {
	if c.asyncErr != nil {
		err := c.asyncErr
		c.asyncErr = nil
		return err
	}
	_, err := c.callSync(p, &Request{Method: MGetLastError})
	return err
}

// BufList enumerates live buffers server-side. See cuda.API.
func (c *Client) BufList(p *vclock.Proc) ([]cuda.BufInfo, error) {
	resp, err := c.callSync(p, &Request{Method: MBufList})
	return resp.Infos, err
}

// BufChecksum hashes a buffer server-side. See cuda.API.
func (c *Client) BufChecksum(p *vclock.Proc, b cuda.Buf) (uint64, error) {
	resp, err := c.callSync(p, &Request{Method: MBufChecksum, Buf: b})
	return resp.U64, err
}

// CommInit rendezvouses via the proxy; it blocks until all ranks arrive.
// See cuda.API.
func (c *Client) CommInit(p *vclock.Proc, key string, gen, nranks, rank int) (cuda.Comm, error) {
	resp, err := c.callSync(p, &Request{Method: MCommInit, Key: key, Gen: gen, NRanks: nranks, Rank: rank})
	return resp.Comm, err
}

// CommDestroy destroys a communicator via the proxy. See cuda.API.
func (c *Client) CommDestroy(p *vclock.Proc, comm cuda.Comm) error {
	_, err := c.callSync(p, &Request{Method: MCommDestroy, Comm: comm})
	return err
}

// AllReduce is fire-and-forget on the client. See cuda.API.
func (c *Client) AllReduce(p *vclock.Proc, comm cuda.Comm, b cuda.Buf, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MAllReduce, Comm: comm, Buf: b, Stream: s})
}

// Broadcast is fire-and-forget on the client. See cuda.API.
func (c *Client) Broadcast(p *vclock.Proc, comm cuda.Comm, b cuda.Buf, root int, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MBroadcast, Comm: comm, Buf: b, Root: root, Stream: s})
}

// AllGather is fire-and-forget on the client. See cuda.API.
func (c *Client) AllGather(p *vclock.Proc, comm cuda.Comm, in, out cuda.Buf, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MAllGather, Comm: comm, Buf: in, Buf2: out, Stream: s})
}

// ReduceScatter is fire-and-forget on the client. See cuda.API.
func (c *Client) ReduceScatter(p *vclock.Proc, comm cuda.Comm, in, out cuda.Buf, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MReduceScatter, Comm: comm, Buf: in, Buf2: out, Stream: s})
}

// Send is fire-and-forget on the client. See cuda.API.
func (c *Client) Send(p *vclock.Proc, comm cuda.Comm, b cuda.Buf, peer int, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MSend, Comm: comm, Buf: b, Peer: peer, Stream: s})
}

// Recv is fire-and-forget on the client. See cuda.API.
func (c *Client) Recv(p *vclock.Proc, comm cuda.Comm, b cuda.Buf, peer int, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MRecv, Comm: comm, Buf: b, Peer: peer, Stream: s})
}

// Barrier is fire-and-forget on the client. See cuda.API.
func (c *Client) Barrier(p *vclock.Proc, comm cuda.Comm, s cuda.Stream) error {
	return c.callAsync(p, &Request{Method: MBarrier, Comm: comm, Stream: s})
}
