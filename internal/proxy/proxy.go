// Package proxy implements the device proxy of the paper's Figure 2: a
// separate server process owns all GPU and network driver state, and the
// worker talks to it through a byte-level wire protocol.
//
// The proxy exists for one reason (§2, §4.2): corrupted GPU or network
// driver state can be cleared by restarting the proxy server process
// without touching the worker process, whose CPU state then stays intact
// for CRIU-style checkpointing. Restart kills the server's handler
// processes and resets the device; in-flight requests are never answered
// (their callers are recovered by the interception layer's watchdog), and
// device buffers survive, because device memory outlives a driver context
// reset in this model just as parameters survive a proxy restart in the
// paper's strategy 2.
//
// Requests from one worker thread are executed in issue order by a
// dedicated handler process per thread; different threads proceed
// independently — which is what keeps the watchdog thread's EventQuery
// calls responsive while the main thread is wedged in a hung collective.
//
// Asynchronous device APIs (kernel launches, async memcpys, collective
// enqueues) are fire-and-forget on the client: the call returns as soon as
// the request is queued, and any error surfaces later via GetLastError.
// This is the paper's "device APIs executed asynchronously with respect to
// the CPU worker thread", and it is why steady-state logging overhead
// measures near zero (§6.3).
package proxy

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/vclock"
)

// ErrProxyDown is returned for calls that raced a proxy server restart.
var ErrProxyDown = errors.New("proxy: server restarted, call dropped")

// Method identifies an API method on the wire.
type Method int

// Wire method codes, one per cuda.API method.
const (
	MMalloc Method = iota
	MFree
	MMemcpyH2D
	MMemcpyD2H
	MMemcpyD2D
	MStreamCreate
	MStreamDestroy
	MStreamSynchronize
	MStreamWaitEvent
	MEventCreate
	MEventRecord
	MEventQuery
	MEventSynchronize
	MEventDestroy
	MLaunch
	MDeviceSynchronize
	MGetLastError
	MBufList
	MBufChecksum
	MCommInit
	MCommDestroy
	MAllReduce
	MBroadcast
	MAllGather
	MReduceScatter
	MSend
	MRecv
	MBarrier
)

// methodNames maps wire codes to readable names for traces and logs.
var methodNames = map[Method]string{
	MMalloc: "Malloc", MFree: "Free", MMemcpyH2D: "MemcpyH2D",
	MMemcpyD2H: "MemcpyD2H", MMemcpyD2D: "MemcpyD2D",
	MStreamCreate: "StreamCreate", MStreamDestroy: "StreamDestroy",
	MStreamSynchronize: "StreamSynchronize", MStreamWaitEvent: "StreamWaitEvent",
	MEventCreate: "EventCreate", MEventRecord: "EventRecord",
	MEventQuery: "EventQuery", MEventSynchronize: "EventSynchronize",
	MEventDestroy: "EventDestroy", MLaunch: "Launch",
	MDeviceSynchronize: "DeviceSynchronize", MGetLastError: "GetLastError",
	MBufList: "BufList", MBufChecksum: "BufChecksum",
	MCommInit: "CommInit", MCommDestroy: "CommDestroy",
	MAllReduce: "AllReduce", MBroadcast: "Broadcast", MAllGather: "AllGather",
	MReduceScatter: "ReduceScatter", MSend: "Send", MRecv: "Recv",
	MBarrier: "Barrier",
}

// String renders the method name.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// IsAsync reports whether the method is fire-and-forget on the client.
func (m Method) IsAsync() bool {
	switch m {
	case MMemcpyH2D, MMemcpyD2D, MStreamWaitEvent, MEventRecord, MLaunch,
		MAllReduce, MBroadcast, MAllGather, MReduceScatter, MSend, MRecv, MBarrier:
		return true
	}
	return false
}

// Request is one API call on the wire. Fields are a union across methods;
// unused fields are zero.
type Request struct {
	ID     uint64
	Thread int
	Method Method

	Bytes  int64
	Elems  int
	Tag    string
	Buf    cuda.Buf
	Buf2   cuda.Buf
	Stream cuda.Stream
	Event  cuda.Event
	Comm   cuda.Comm
	Data   []float32
	Launch cuda.LaunchParams
	Key    string
	Gen    int
	NRanks int
	Rank   int
	Peer   int
	Root   int
}

// Response is one API result on the wire.
type Response struct {
	ID      uint64
	ErrCode int // 0 = nil, -1 = opaque, >0 = wireErrors index+1
	ErrMsg  string
	Buf     cuda.Buf
	Stream  cuda.Stream
	Event   cuda.Event
	Comm    cuda.Comm
	Data    []float32
	Bool    bool
	U64     uint64
	Infos   []cuda.BufInfo
}

// wireErrors are sentinel errors whose identity survives the wire, so
// errors.Is works on the client exactly as it does against a local driver.
var wireErrors = []error{
	gpu.ErrDeviceLost, gpu.ErrSticky, gpu.ErrCorrupt, gpu.ErrOutOfMemory,
	gpu.ErrNoSuchBuf, gpu.ErrNoSuchQueue,
	cuda.ErrBadHandle, cuda.ErrUnknownKernel,
	nccl.ErrNetwork, nccl.ErrCommDead, nccl.ErrMismatch, nccl.ErrBufSizes,
	nccl.ErrInvalidRank, nccl.ErrDeviceFailed,
	ErrProxyDown,
}

func encodeErr(err error) (int, string) {
	if err == nil {
		return 0, ""
	}
	for i, sentinel := range wireErrors {
		if errors.Is(err, sentinel) {
			return i + 1, err.Error()
		}
	}
	return -1, err.Error()
}

func decodeErr(code int, msg string) error {
	switch {
	case code == 0:
		return nil
	case code > 0 && code <= len(wireErrors):
		sentinel := wireErrors[code-1]
		if msg == sentinel.Error() {
			return sentinel
		}
		return fmt.Errorf("%w: %s", sentinel, msg)
	default:
		return errors.New(msg)
	}
}

// Params models IPC costs of the proxy transport.
type Params struct {
	// SendLatency is charged to the sender per message.
	SendLatency vclock.Time
	// HandleLatency is charged by the server per request.
	HandleLatency vclock.Time
}

// DefaultParams returns shared-memory-ring IPC costs.
func DefaultParams() Params {
	return Params{SendLatency: vclock.Microsecond, HandleLatency: vclock.Microsecond}
}

// Server is the device proxy server: it owns the driver (all GPU and
// network driver state) and executes requests.
type Server struct {
	env        *vclock.Env
	dev        *gpu.Device
	engine     *nccl.Engine
	kernels    cuda.Registry
	cudaParams cuda.Params
	ipc        Params

	drv         *cuda.Driver
	reqQ        *vclock.Queue[[]byte]
	respQ       *vclock.Queue[[]byte]
	threadQs    map[int]*vclock.Queue[Request]
	threadProcs map[int]*vclock.Proc
	dispatcher  *vclock.Proc
	generation  int
	down        bool
}

// NewServer creates a proxy server for dev and starts its dispatcher.
func NewServer(env *vclock.Env, dev *gpu.Device, engine *nccl.Engine, kernels cuda.Registry, cudaParams cuda.Params, ipc Params) (*Server, error) {
	s := &Server{
		env:        env,
		dev:        dev,
		engine:     engine,
		kernels:    kernels,
		cudaParams: cudaParams,
		ipc:        ipc,
		reqQ:       vclock.NewQueue[[]byte](env, "proxy.req"),
		respQ:      vclock.NewQueue[[]byte](env, "proxy.resp"),
	}
	if err := s.startDriver(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) startDriver() error {
	drv, err := cuda.NewDriver(s.dev, s.engine, s.kernels, s.cudaParams)
	if err != nil {
		return err
	}
	s.drv = drv
	s.threadQs = make(map[int]*vclock.Queue[Request])
	s.threadProcs = make(map[int]*vclock.Proc)
	s.down = false
	gen := s.generation
	s.dispatcher = s.env.Go(fmt.Sprintf("%s.proxy.dispatch.g%d", s.dev.Name(), gen), func(p *vclock.Proc) {
		for {
			raw := s.reqQ.Pop(p)
			var req Request
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&req); err != nil {
				s.env.Tracef("proxy: dropping undecodable request: %v", err)
				continue
			}
			tq, ok := s.threadQs[req.Thread]
			if !ok {
				tq = vclock.NewQueue[Request](s.env, fmt.Sprintf("proxy.t%d", req.Thread))
				s.threadQs[req.Thread] = tq
				s.startHandler(req.Thread, tq)
			}
			tq.Push(req)
		}
	})
	return nil
}

func (s *Server) startHandler(thread int, tq *vclock.Queue[Request]) {
	handler := s.env.Go(fmt.Sprintf("%s.proxy.t%d.g%d", s.dev.Name(), thread, s.generation), func(hp *vclock.Proc) {
		for {
			r := tq.Pop(hp)
			hp.Sleep(s.ipc.HandleLatency)
			resp := s.execute(hp, r)
			s.send(hp, resp)
		}
	})
	s.threadProcs[thread] = handler
}

// ResetThreads aborts all in-flight request handling: every per-thread
// handler process is killed (releasing handlers wedged inside hung device
// calls) and queued requests are dropped. Fresh handlers spawn on demand.
// This is the §4.2 "watchdog thread aborts all in-flight operations" for
// recoveries that keep the proxy server (and device memory) alive.
func (s *Server) ResetThreads() {
	// Kill in thread order: map iteration order would make the kill (and
	// the traced proc-end) sequence nondeterministic.
	threads := make([]int, 0, len(s.threadProcs))
	for t := range s.threadProcs {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		s.threadProcs[t].Kill()
		delete(s.threadProcs, t)
		delete(s.threadQs, t)
	}
	s.env.Tracef("proxy server for %s reset handler threads", s.dev.Name())
}

func (s *Server) send(p *vclock.Proc, resp Response) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		panic(fmt.Sprintf("proxy: response encode: %v", err))
	}
	p.Sleep(s.ipc.SendLatency)
	s.respQ.Push(buf.Bytes())
}

// Driver exposes the server-side driver to infrastructure code (the
// transparent recovery controller operates here, next to the device).
func (s *Server) Driver() *cuda.Driver { return s.drv }

// Device returns the device this proxy fronts.
func (s *Server) Device() *gpu.Device { return s.dev }

// Generation returns how many times the server has been (re)started.
func (s *Server) Generation() int { return s.generation }

// Down reports whether the server is stopped (between Stop and Restart).
func (s *Server) Down() bool { return s.down }

// Stop kills the server: handler processes die, in-flight requests are
// never answered, queued requests are dropped. Driver state (handle
// tables, streams, events, comms) is lost; device buffers survive.
func (s *Server) Stop() {
	s.ResetThreads()
	if s.dispatcher != nil {
		s.dispatcher.Kill()
		s.dispatcher = nil
	}
	s.reqQ.Drain()
	s.down = true
	s.env.Tracef("proxy server for %s stopped", s.dev.Name())
}

// Restart models killing and relaunching the proxy server process to clear
// corrupted driver state (§4.2 strategy 2/3): the device context is reset
// (clearing sticky errors and driver corruption) and a fresh driver starts.
// Restart fails if the device has a hard hardware failure.
func (s *Server) Restart() error {
	if !s.down {
		s.Stop()
	}
	if err := s.dev.Reset(); err != nil {
		return err
	}
	s.generation++
	if err := s.startDriver(); err != nil {
		return err
	}
	s.env.Tracef("proxy server for %s restarted (gen %d)", s.dev.Name(), s.generation)
	return nil
}

// execute runs one request against the driver.
func (s *Server) execute(p *vclock.Proc, req Request) Response {
	resp := Response{ID: req.ID}
	var err error
	switch req.Method {
	case MMalloc:
		resp.Buf, err = s.drv.Malloc(p, req.Bytes, req.Elems, req.Tag)
	case MFree:
		err = s.drv.Free(p, req.Buf)
	case MMemcpyH2D:
		err = s.drv.MemcpyH2D(p, req.Buf, req.Data, req.Stream)
	case MMemcpyD2H:
		resp.Data, err = s.drv.MemcpyD2H(p, req.Buf, req.Stream)
	case MMemcpyD2D:
		err = s.drv.MemcpyD2D(p, req.Buf, req.Buf2, req.Stream)
	case MStreamCreate:
		resp.Stream, err = s.drv.StreamCreate(p)
	case MStreamDestroy:
		err = s.drv.StreamDestroy(p, req.Stream)
	case MStreamSynchronize:
		err = s.drv.StreamSynchronize(p, req.Stream)
	case MStreamWaitEvent:
		err = s.drv.StreamWaitEvent(p, req.Stream, req.Event)
	case MEventCreate:
		resp.Event, err = s.drv.EventCreate(p)
	case MEventRecord:
		err = s.drv.EventRecord(p, req.Event, req.Stream)
	case MEventQuery:
		resp.Bool, err = s.drv.EventQuery(p, req.Event)
	case MEventSynchronize:
		err = s.drv.EventSynchronize(p, req.Event)
	case MEventDestroy:
		err = s.drv.EventDestroy(p, req.Event)
	case MLaunch:
		err = s.drv.Launch(p, req.Launch, req.Stream)
	case MDeviceSynchronize:
		err = s.drv.DeviceSynchronize(p)
	case MGetLastError:
		err = s.drv.GetLastError(p)
	case MBufList:
		resp.Infos, err = s.drv.BufList(p)
	case MBufChecksum:
		resp.U64, err = s.drv.BufChecksum(p, req.Buf)
	case MCommInit:
		resp.Comm, err = s.drv.CommInit(p, req.Key, req.Gen, req.NRanks, req.Rank)
	case MCommDestroy:
		err = s.drv.CommDestroy(p, req.Comm)
	case MAllReduce:
		err = s.drv.AllReduce(p, req.Comm, req.Buf, req.Stream)
	case MBroadcast:
		err = s.drv.Broadcast(p, req.Comm, req.Buf, req.Root, req.Stream)
	case MAllGather:
		err = s.drv.AllGather(p, req.Comm, req.Buf, req.Buf2, req.Stream)
	case MReduceScatter:
		err = s.drv.ReduceScatter(p, req.Comm, req.Buf, req.Buf2, req.Stream)
	case MSend:
		err = s.drv.Send(p, req.Comm, req.Buf, req.Peer, req.Stream)
	case MRecv:
		err = s.drv.Recv(p, req.Comm, req.Buf, req.Peer, req.Stream)
	case MBarrier:
		err = s.drv.Barrier(p, req.Comm, req.Stream)
	default:
		err = fmt.Errorf("proxy: unknown method %v", req.Method)
	}
	resp.ErrCode, resp.ErrMsg = encodeErr(err)
	return resp
}
