// Package tensor provides the minimal dense float32 linear algebra used by
// the simulated training framework: vectors, row-major matrices, a
// deterministic pseudo-random initializer, and content checksums.
//
// The point of doing real arithmetic (rather than only modelling durations)
// is that it lets the recovery protocols be validated end to end: after a
// failure and a just-in-time recovery, the training loss trajectory must
// match a failure-free run bit for bit, exactly as the paper claims for its
// deterministic validation mode (§6.2).
package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Vector is a dense float32 vector.
type Vector []float32

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element to x.
func (v Vector) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// AXPY computes v += a*x elementwise. It panics if lengths differ.
func (v Vector) AXPY(a float32, x Vector) {
	if len(v) != len(x) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(v), len(x)))
	}
	for i := range v {
		v[i] += a * x[i]
	}
}

// Scale multiplies every element by a.
func (v Vector) Scale(a float32) {
	for i := range v {
		v[i] *= a
	}
}

// Add computes v += x elementwise.
func (v Vector) Add(x Vector) { v.AXPY(1, x) }

// Dot returns the inner product of v and x.
func (v Vector) Dot(x Vector) float32 {
	if len(v) != len(x) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(x)))
	}
	var s float32
	for i := range v {
		s += v[i] * x[i]
	}
	return s
}

// Norm2 returns the squared L2 norm.
func (v Vector) Norm2() float32 { return v.Dot(v) }

// Equal reports exact elementwise equality (bitwise, so NaN != NaN).
func (v Vector) Equal(x Vector) bool {
	if len(v) != len(x) {
		return false
	}
	for i := range v {
		if math.Float32bits(v[i]) != math.Float32bits(x[i]) {
			return false
		}
	}
	return true
}

// HasNonFinite reports whether v contains a NaN or Inf. The paper notes
// that silent data corruption is usually caught by underflow/overflow
// checks; this is that check.
func (v Vector) HasNonFinite() bool {
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
	}
	return false
}

// Checksum returns an FNV-1a hash of the exact bit pattern of v. It is the
// buffer checksum used by the replay-log validation (§4.1).
func (v Vector) Checksum() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Bytes serializes v as little-endian float32 bits.
func (v Vector) Bytes() []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// FromBytes deserializes a vector written by Bytes.
func FromBytes(b []byte) (Vector, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("tensor: byte length %d not a multiple of 4", len(b))
	}
	v := make(Vector, len(b)/4)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v, nil
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       Vector
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, x float32) { m.Data[r*m.Cols+c] = x }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec computes out = m * x. It panics on shape mismatch.
func (m *Matrix) MulVec(x, out Vector) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec shape mismatch (%dx%d)*%d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float32
		for c, xc := range x {
			s += row[c] * xc
		}
		out[r] = s
	}
}

// MulVecT computes out = mᵀ * x. It panics on shape mismatch.
func (m *Matrix) MulVecT(x, out Vector) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT shape mismatch (%dx%d)ᵀ*%d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	out.Fill(0)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		for c := range out {
			out[c] += row[c] * xr
		}
	}
}

// AddOuter accumulates the outer product m += a * (x ⊗ y), the weight
// gradient of a linear layer.
func (m *Matrix) AddOuter(a float32, x, y Vector) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch (%dx%d) vs %d⊗%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ax := a * x[r]
		for c := range row {
			row[c] += ax * y[c]
		}
	}
}

// RNG is a deterministic xorshift64* pseudo-random generator. It is
// intentionally independent of math/rand so checkpointed RNG state is a
// single word, mirroring how training scripts checkpoint their RNG state.
type RNG struct {
	State uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{State: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.State
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.State = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns an approximately standard-normal float32 (Irwin–Hall sum
// of 12 uniforms; plenty for weight initialization).
func (r *RNG) Normal() float32 {
	var s float32
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return s - 6
}

// FillUniform fills v with uniforms in [-scale, scale).
func (r *RNG) FillUniform(v Vector, scale float32) {
	for i := range v {
		v[i] = (2*r.Float32() - 1) * scale
	}
}

// Tanh is the activation used by the toy models; math.Tanh is deterministic
// across runs on the same platform, which is all the validation needs.
func Tanh(x float32) float32 { return float32(math.Tanh(float64(x))) }

// TanhPrime is the derivative of Tanh expressed via the activation value.
func TanhPrime(y float32) float32 { return 1 - y*y }
