package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAXPYAndScale(t *testing.T) {
	v := Vector{1, 2, 3}
	x := Vector{10, 20, 30}
	v.AXPY(0.5, x)
	want := Vector{6, 12, 18}
	if !v.Equal(want) {
		t.Fatalf("AXPY: got %v want %v", v, want)
	}
	v.Scale(2)
	want = Vector{12, 24, 36}
	if !v.Equal(want) {
		t.Fatalf("Scale: got %v want %v", v, want)
	}
}

func TestDotAndNorm(t *testing.T) {
	v := Vector{1, 2, 3}
	x := Vector{4, 5, 6}
	if got := v.Dot(x); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Norm2(); got != 14 {
		t.Fatalf("Norm2 = %v, want 14", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.AXPY(1, Vector{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestRoundTripBytes(t *testing.T) {
	v := Vector{0, 1, -1, math.MaxFloat32, float32(math.Inf(1)), 1e-40}
	got, err := FromBytes(v.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %v want %v", got, v)
	}
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for ragged byte slice")
	}
}

func TestChecksumDetectsSingleBitChange(t *testing.T) {
	rng := NewRNG(42)
	v := NewVector(1024)
	rng.FillUniform(v, 1)
	before := v.Checksum()
	bits := math.Float32bits(v[512]) ^ 1
	v[512] = math.Float32frombits(bits)
	if v.Checksum() == before {
		t.Fatal("checksum unchanged after bit flip")
	}
}

func TestHasNonFinite(t *testing.T) {
	if (Vector{1, 2, 3}).HasNonFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if !(Vector{1, float32(math.NaN())}).HasNonFinite() {
		t.Fatal("NaN not detected")
	}
	if !(Vector{float32(math.Inf(-1))}).HasNonFinite() {
		t.Fatal("-Inf not detected")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i := 0; i < 6; i++ {
		m.Data[i] = float32(i + 1)
	}
	out := NewVector(2)
	m.MulVec(Vector{1, 1, 1}, out)
	if !out.Equal(Vector{6, 15}) {
		t.Fatalf("MulVec = %v, want [6 15]", out)
	}
	outT := NewVector(3)
	m.MulVecT(Vector{1, 1}, outT)
	if !outT.Equal(Vector{5, 7, 9}) {
		t.Fatalf("MulVecT = %v, want [5 7 9]", outT)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := Vector{6, 8, 12, 16}
	if !m.Data.Equal(want) {
		t.Fatalf("AddOuter = %v, want %v", m.Data, want)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds produced identical first value")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGStateIsCheckpointable(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	saved := r.State
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	restored := &RNG{State: saved}
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("restored RNG diverged at draw %d: %d vs %d", i, got, w)
		}
	}
}

func TestRNGFloat32Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(r.Normal())
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

// Property: checksum is a pure function of content.
func TestChecksumPureProperty(t *testing.T) {
	f := func(data []float32) bool {
		v := Vector(data)
		return v.Checksum() == v.Clone().Checksum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialize/deserialize is the identity on bit patterns.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(data []float32) bool {
		v := Vector(data)
		got, err := FromBytes(v.Bytes())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x, y := Vector(a[:n]), Vector(b[:n])
		d1, d2 := x.Dot(y), y.Dot(x)
		return math.Float32bits(d1) == math.Float32bits(d2) ||
			(math.IsNaN(float64(d1)) && math.IsNaN(float64(d2)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	m := NewMatrix(256, 256)
	NewRNG(1).FillUniform(m.Data, 1)
	x, out := NewVector(256), NewVector(256)
	NewRNG(2).FillUniform(x, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, out)
	}
}

func BenchmarkChecksum(b *testing.B) {
	v := NewVector(1 << 16)
	NewRNG(1).FillUniform(v, 1)
	b.SetBytes(int64(4 * len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Checksum()
	}
}
