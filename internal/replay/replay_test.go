package replay

import (
	"testing"
	"testing/quick"

	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

func TestStartMinibatchFoldsCreations(t *testing.T) {
	l := NewLog()
	l.Record(Call{Kind: CallMalloc, Bytes: 64, RBuf: 1})
	l.Record(Call{Kind: CallStreamCreate, RStream: 2})
	l.Record(Call{Kind: CallLaunch, Launch: cuda.LaunchParams{Kernel: "k"}})
	l.StartMinibatch(1)
	if len(l.Minibatch) != 0 {
		t.Fatalf("minibatch log not cleared: %d", len(l.Minibatch))
	}
	if len(l.Creation) != 2 {
		t.Fatalf("creation log = %d entries, want 2", len(l.Creation))
	}
	// A destruction inside the next minibatch removes the creation record.
	l.Record(Call{Kind: CallFree, Buf: 1})
	l.StartMinibatch(2)
	if len(l.Creation) != 1 || l.Creation[0].Kind != CallStreamCreate {
		t.Fatalf("creation log after free = %+v", l.Creation)
	}
}

func TestRecordStampsIteration(t *testing.T) {
	l := NewLog()
	l.StartMinibatch(7)
	l.Record(Call{Kind: CallLaunch})
	if l.Minibatch[0].Iter != 7 {
		t.Fatalf("iter = %d", l.Minibatch[0].Iter)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	l := NewLog()
	l.Record(Call{Kind: CallMalloc, Bytes: 128, Elems: 4, Tag: "w", RBuf: 3})
	l.StartMinibatch(1)
	l.Record(Call{Kind: CallMemcpyH2D, Buf: 3, Data: []float32{1, 2}, Stream: 0})
	l.Record(Call{Kind: CallLaunch, Launch: cuda.LaunchParams{
		Kernel: "fwd", Dur: vclock.Millisecond, Bufs: []cuda.Buf{3}, FArgs: []float32{0.5},
	}})
	raw, err := l.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 1 || len(got.Creation) != 1 || len(got.Minibatch) != 2 {
		t.Fatalf("round trip shape: %+v", got)
	}
	if got.Minibatch[1].Launch.Kernel != "fwd" || got.Minibatch[1].Launch.FArgs[0] != 0.5 {
		t.Fatalf("launch params lost: %+v", got.Minibatch[1].Launch)
	}
}

func TestTranslatorDefaults(t *testing.T) {
	tr := NewTranslator()
	if tr.Stream(cuda.DefaultStream) != cuda.DefaultStream {
		t.Fatal("default stream must map to itself")
	}
	if tr.Buf(5) != 5 || tr.EventH(9) != 9 || tr.CommH(2) != 2 {
		t.Fatal("unmapped handles must pass through")
	}
	tr.Bufs[5] = 12
	if tr.Buf(5) != 12 {
		t.Fatal("mapped handle not translated")
	}
}

// recordingDriver drives a real local Driver while recording, then replays
// onto a fresh driver and compares buffer contents.
func TestReplayReproducesState(t *testing.T) {
	kernels := cuda.Registry{
		"axpy": func(a cuda.KernelArgs) error {
			a.Bufs[0].AXPY(a.FArgs[0], a.Bufs[1])
			return nil
		},
	}
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	drv, err := cuda.NewDriver(dev, engine, kernels, cuda.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	log := NewLog()
	var origSum, replaySum uint64
	env.Go("record-and-replay", func(p *vclock.Proc) {
		// --- Original execution, recorded. ---
		w, _ := drv.Malloc(p, 64, 3, "w")
		log.Record(Call{Kind: CallMalloc, Bytes: 64, Elems: 3, Tag: "w", RBuf: w})
		g, _ := drv.Malloc(p, 64, 3, "g")
		log.Record(Call{Kind: CallMalloc, Bytes: 64, Elems: 3, Tag: "g", RBuf: g})
		log.StartMinibatch(1)

		drv.MemcpyH2D(p, w, []float32{1, 2, 3}, cuda.DefaultStream)
		log.Record(Call{Kind: CallMemcpyH2D, Buf: w, Data: []float32{1, 2, 3}})
		drv.MemcpyH2D(p, g, []float32{10, 10, 10}, cuda.DefaultStream)
		log.Record(Call{Kind: CallMemcpyH2D, Buf: g, Data: []float32{10, 10, 10}})
		lp := cuda.LaunchParams{Kernel: "axpy", Dur: vclock.Millisecond, Bufs: []cuda.Buf{w, g}, FArgs: []float32{0.5}}
		drv.Launch(p, lp, cuda.DefaultStream)
		log.Record(Call{Kind: CallLaunch, Launch: lp})
		drv.StreamSynchronize(p, cuda.DefaultStream)
		origSum, _ = drv.BufChecksum(p, w)

		// --- Replay onto a fresh driver on a fresh device. ---
		dev2 := gpu.NewDevice(env, 0, 1, 1<<30)
		drv2, err := cuda.NewDriver(dev2, engine, kernels, cuda.DefaultParams())
		if err != nil {
			t.Error(err)
			return
		}
		tr := NewTranslator()
		if err := Apply(p, drv2, log.Creation, tr, Options{}); err != nil {
			t.Error(err)
			return
		}
		if err := Apply(p, drv2, log.Minibatch, tr, Options{}); err != nil {
			t.Error(err)
			return
		}
		drv2.StreamSynchronize(p, cuda.DefaultStream)
		replaySum, _ = drv2.BufChecksum(p, tr.Buf(w))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if origSum == 0 || origSum != replaySum {
		t.Fatalf("replayed checksum %#x != original %#x", replaySum, origSum)
	}
}

func TestReplayTranslatesStreamsAndEvents(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	kernels := cuda.Registry{"nop": func(cuda.KernelArgs) error { return nil }}
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	drv, _ := cuda.NewDriver(dev, engine, kernels, cuda.DefaultParams())
	env.Go("w", func(p *vclock.Proc) {
		// Record a creation log with a stream and event, plus a minibatch
		// using them; replay must rewire handles.
		log := NewLog()
		s, _ := drv.StreamCreate(p)
		log.Record(Call{Kind: CallStreamCreate, RStream: s})
		ev, _ := drv.EventCreate(p)
		log.Record(Call{Kind: CallEventCreate, REvent: ev})
		log.StartMinibatch(1)
		log.Record(Call{Kind: CallLaunch, Launch: cuda.LaunchParams{Kernel: "nop", Dur: vclock.Millisecond}, Stream: s})
		log.Record(Call{Kind: CallEventRecord, Event: ev, Stream: s})
		log.Record(Call{Kind: CallStreamWaitEvent, Stream: cuda.DefaultStream, Event: ev})

		dev2 := gpu.NewDevice(env, 0, 1, 1<<30)
		drv2, _ := cuda.NewDriver(dev2, engine, kernels, cuda.DefaultParams())
		tr := NewTranslator()
		if err := Apply(p, drv2, log.Creation, tr, Options{}); err != nil {
			t.Error(err)
			return
		}
		if err := Apply(p, drv2, log.Minibatch, tr, Options{}); err != nil {
			t.Error(err)
			return
		}
		if _, ok := tr.Streams[s]; !ok {
			t.Error("stream handle mapping missing after replay")
		}
		if _, ok := tr.Events[ev]; !ok {
			t.Error("event handle mapping missing after replay")
		}
		if err := drv2.DeviceSynchronize(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaySkipData(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	drv, _ := cuda.NewDriver(dev, engine, nil, cuda.DefaultParams())
	env.Go("w", func(p *vclock.Proc) {
		b, _ := drv.Malloc(p, 64, 2, "w")
		calls := []Call{{Kind: CallMemcpyH2D, Buf: b, Data: []float32{9, 9}}}
		tr := NewTranslator()
		if err := Apply(p, drv, calls, tr, Options{SkipData: true}); err != nil {
			t.Error(err)
			return
		}
		drv.StreamSynchronize(p, cuda.DefaultStream)
		got, _ := drv.MemcpyD2H(p, b, cuda.DefaultStream)
		if !tensor.Vector(got).Equal(tensor.Vector{0, 0}) {
			t.Errorf("SkipData leaked payload: %v", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayGenOverrideForCommInit(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	drv, _ := cuda.NewDriver(dev, engine, nil, cuda.DefaultParams())
	env.Go("w", func(p *vclock.Proc) {
		calls := []Call{{Kind: CallCommInit, Key: "dp", Gen: 0, NRanks: 1, Rank: 0, RComm: 1}}
		tr := NewTranslator()
		err := Apply(p, drv, calls, tr, Options{
			GenFor: func(key string, recorded int) int { return recorded + 5 },
		})
		if err != nil {
			t.Error(err)
		}
		if tr.CommH(1) == 0 {
			t.Error("comm handle not mapped")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyStopsAtFirstError(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<30)
	drv, _ := cuda.NewDriver(dev, engine, nil, cuda.DefaultParams())
	env.Go("w", func(p *vclock.Proc) {
		calls := []Call{
			{Kind: CallFree, Buf: 99}, // bad handle
			{Kind: CallMalloc, Bytes: 64, RBuf: 1},
		}
		tr := NewTranslator()
		if err := Apply(p, drv, calls, tr, Options{}); err == nil {
			t.Error("expected error from bad free")
		}
		if _, ok := tr.Bufs[1]; ok {
			t.Error("apply continued past failing call")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: folding semantics — after any sequence of create/destroy pairs
// within minibatches, the creation log contains exactly the live objects.
func TestCreationLogTracksLiveObjectsProperty(t *testing.T) {
	f := func(ops []bool) bool {
		l := NewLog()
		live := map[cuda.Buf]bool{}
		next := cuda.Buf(1)
		var order []cuda.Buf
		for i, create := range ops {
			if create || len(order) == 0 {
				l.Record(Call{Kind: CallMalloc, RBuf: next})
				live[next] = true
				order = append(order, next)
				next++
			} else {
				victim := order[0]
				order = order[1:]
				l.Record(Call{Kind: CallFree, Buf: victim})
				delete(live, victim)
			}
			if i%3 == 2 {
				l.StartMinibatch(i)
			}
		}
		l.StartMinibatch(len(ops))
		if len(l.Creation) != len(live) {
			return false
		}
		for _, c := range l.Creation {
			if !live[c.RBuf] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	l := NewLog()
	c := Call{Kind: CallLaunch, Launch: cuda.LaunchParams{Kernel: "fwd", Bufs: []cuda.Buf{1, 2, 3}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(c)
		if i%1024 == 1023 {
			l.StartMinibatch(i)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	l := NewLog()
	for i := 0; i < 512; i++ {
		l.Record(Call{Kind: CallLaunch, Launch: cuda.LaunchParams{Kernel: "fwd", Bufs: []cuda.Buf{1, 2}}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}
