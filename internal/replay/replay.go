// Package replay implements the device-API replay log of §4.1: during
// steady state, every state-mutating device call is recorded with its full
// inputs; on recovery, the log is re-executed to bring a reset GPU back to
// the exact point in the minibatch where the error struck.
//
// The log has two parts:
//
//   - The creation log: Malloc / StreamCreate / EventCreate / CommInit
//     calls for every GPU object alive at the start of the current
//     minibatch. Replaying it after a device reset re-creates those objects
//     (with new physical handles — the Translator records the mapping the
//     interception layer uses to back its virtual handles).
//
//   - The minibatch log: every mutating call issued since the start of the
//     current minibatch. It is cleared at each minibatch boundary and
//     replayed after the creation log to redo the forward/backward work.
//
// Object creations and destructions that happen inside a minibatch are
// folded into the creation log at the next minibatch boundary, which is the
// "undoing the creation or destruction of GPU objects after start of the
// minibatch" step of the paper's correctness validation.
package replay

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"jitckpt/internal/cuda"
	"jitckpt/internal/vclock"
)

// Kind identifies a recorded call.
type Kind int

// Recorded call kinds. Only state-mutating calls are recorded; queries
// (EventQuery, BufList, checksums, synchronizes, D2H reads) do not change
// device state and are not needed to reproduce it.
const (
	CallMalloc Kind = iota
	CallFree
	CallMemcpyH2D
	CallMemcpyD2D
	CallStreamCreate
	CallStreamDestroy
	CallStreamWaitEvent
	CallEventCreate
	CallEventRecord
	CallEventDestroy
	CallLaunch
	CallCommInit
	CallCommDestroy
	CallAllReduce
	CallBroadcast
	CallAllGather
	CallReduceScatter
	CallSend
	CallRecv
	CallBarrier
)

var kindNames = map[Kind]string{
	CallMalloc: "Malloc", CallFree: "Free", CallMemcpyH2D: "MemcpyH2D",
	CallMemcpyD2D: "MemcpyD2D", CallStreamCreate: "StreamCreate",
	CallStreamDestroy: "StreamDestroy", CallStreamWaitEvent: "StreamWaitEvent",
	CallEventCreate: "EventCreate", CallEventRecord: "EventRecord",
	CallEventDestroy: "EventDestroy", CallLaunch: "Launch",
	CallCommInit: "CommInit", CallCommDestroy: "CommDestroy",
	CallAllReduce: "AllReduce", CallBroadcast: "Broadcast",
	CallAllGather: "AllGather", CallReduceScatter: "ReduceScatter",
	CallSend: "Send", CallRecv: "Recv", CallBarrier: "Barrier",
}

// String renders the call kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsCreation reports whether the call creates a GPU object.
func (k Kind) IsCreation() bool {
	switch k {
	case CallMalloc, CallStreamCreate, CallEventCreate, CallCommInit:
		return true
	}
	return false
}

// IsDestruction reports whether the call destroys a GPU object.
func (k Kind) IsDestruction() bool {
	switch k {
	case CallFree, CallStreamDestroy, CallEventDestroy, CallCommDestroy:
		return true
	}
	return false
}

// Call is one recorded device API invocation: its inputs plus, for
// creation calls, the handle it returned (needed to map old handles to new
// ones on replay).
type Call struct {
	Kind Kind
	Iter int // minibatch iteration when recorded

	Bytes  int64
	Elems  int
	Tag    string
	Buf    cuda.Buf
	Buf2   cuda.Buf
	Stream cuda.Stream
	Event  cuda.Event
	Comm   cuda.Comm
	Data   []float32
	Launch cuda.LaunchParams
	Key    string
	Gen    int
	NRanks int
	Rank   int
	Peer   int
	Root   int

	RBuf    cuda.Buf
	RStream cuda.Stream
	REvent  cuda.Event
	RComm   cuda.Comm
}

// Log is a device-API replay log for one worker rank.
type Log struct {
	// Creation holds creation calls for objects alive at the start of the
	// current minibatch, in creation order.
	Creation []Call
	// Minibatch holds all mutating calls since the current minibatch began.
	Minibatch []Call
	// Iter is the current minibatch iteration number.
	Iter int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// StartMinibatch marks a minibatch boundary: intra-minibatch object
// creations and destructions are folded into the creation log, and the
// minibatch log is cleared.
func (l *Log) StartMinibatch(iter int) {
	for _, c := range l.Minibatch {
		switch {
		case c.Kind.IsCreation():
			l.Creation = append(l.Creation, c)
		case c.Kind.IsDestruction():
			l.removeCreation(c)
		}
	}
	l.Minibatch = l.Minibatch[:0]
	l.Iter = iter
}

// removeCreation deletes the creation record matching a destruction call.
func (l *Log) removeCreation(d Call) {
	match := func(c Call) bool {
		switch d.Kind {
		case CallFree:
			return c.Kind == CallMalloc && c.RBuf == d.Buf
		case CallStreamDestroy:
			return c.Kind == CallStreamCreate && c.RStream == d.Stream
		case CallEventDestroy:
			return c.Kind == CallEventCreate && c.REvent == d.Event
		case CallCommDestroy:
			return c.Kind == CallCommInit && c.RComm == d.Comm
		}
		return false
	}
	for i, c := range l.Creation {
		if match(c) {
			l.Creation = append(l.Creation[:i], l.Creation[i+1:]...)
			return
		}
	}
}

// Record appends a call to the minibatch log.
func (l *Log) Record(c Call) {
	c.Iter = l.Iter
	l.Minibatch = append(l.Minibatch, c)
}

// Len returns the total number of recorded calls.
func (l *Log) Len() int { return len(l.Creation) + len(l.Minibatch) }

// Bytes serializes the log (for CRIU-style worker snapshots).
func (l *Log) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(l); err != nil {
		return nil, fmt.Errorf("replay: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// FromBytes deserializes a log written by Bytes.
func FromBytes(b []byte) (*Log, error) {
	var l Log
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&l); err != nil {
		return nil, fmt.Errorf("replay: decode: %w", err)
	}
	return &l, nil
}

// Translator maps pre-recovery handles to post-recovery handles. The
// interception layer keeps one per recovery and resolves its virtual
// handles through it.
type Translator struct {
	Bufs    map[cuda.Buf]cuda.Buf
	Streams map[cuda.Stream]cuda.Stream
	Events  map[cuda.Event]cuda.Event
	Comms   map[cuda.Comm]cuda.Comm
}

// NewTranslator returns an identity-defaulting translator: the default
// stream always maps to itself.
func NewTranslator() *Translator {
	return &Translator{
		Bufs:    make(map[cuda.Buf]cuda.Buf),
		Streams: map[cuda.Stream]cuda.Stream{cuda.DefaultStream: cuda.DefaultStream},
		Events:  make(map[cuda.Event]cuda.Event),
		Comms:   make(map[cuda.Comm]cuda.Comm),
	}
}

// Buf translates a buffer handle; unmapped handles pass through.
func (t *Translator) Buf(b cuda.Buf) cuda.Buf {
	if n, ok := t.Bufs[b]; ok {
		return n
	}
	return b
}

// Stream translates a stream handle; unmapped handles pass through.
func (t *Translator) Stream(s cuda.Stream) cuda.Stream {
	if n, ok := t.Streams[s]; ok {
		return n
	}
	return s
}

// EventH translates an event handle; unmapped handles pass through.
func (t *Translator) EventH(e cuda.Event) cuda.Event {
	if n, ok := t.Events[e]; ok {
		return n
	}
	return e
}

// CommH translates a communicator handle; unmapped handles pass through.
func (t *Translator) CommH(c cuda.Comm) cuda.Comm {
	if n, ok := t.Comms[c]; ok {
		return n
	}
	return c
}

// Options configure a replay.
type Options struct {
	// GenFor overrides the generation used when replaying CommInit: after
	// a failure, communicators must re-rendezvous under a fresh generation.
	// nil keeps the recorded generation.
	GenFor func(key string, recorded int) int
	// SkipData, when true, skips MemcpyH2D payload replay (used when
	// buffer contents are restored from a replica instead).
	SkipData bool
}

// Apply re-executes calls against api, translating handles through tr and
// recording new creation handles into it. It stops at the first error.
func Apply(p *vclock.Proc, api cuda.API, calls []Call, tr *Translator, opts Options) error {
	for i := range calls {
		if err := applyOne(p, api, &calls[i], tr, opts); err != nil {
			return fmt.Errorf("replay: call %d (%v): %w", i, calls[i].Kind, err)
		}
	}
	return nil
}

func applyOne(p *vclock.Proc, api cuda.API, c *Call, tr *Translator, opts Options) error {
	switch c.Kind {
	case CallMalloc:
		nb, err := api.Malloc(p, c.Bytes, c.Elems, c.Tag)
		if err != nil {
			return err
		}
		tr.Bufs[c.RBuf] = nb
	case CallFree:
		return api.Free(p, tr.Buf(c.Buf))
	case CallMemcpyH2D:
		if opts.SkipData {
			return nil
		}
		return api.MemcpyH2D(p, tr.Buf(c.Buf), c.Data, tr.Stream(c.Stream))
	case CallMemcpyD2D:
		return api.MemcpyD2D(p, tr.Buf(c.Buf), tr.Buf(c.Buf2), tr.Stream(c.Stream))
	case CallStreamCreate:
		ns, err := api.StreamCreate(p)
		if err != nil {
			return err
		}
		tr.Streams[c.RStream] = ns
	case CallStreamDestroy:
		return api.StreamDestroy(p, tr.Stream(c.Stream))
	case CallStreamWaitEvent:
		return api.StreamWaitEvent(p, tr.Stream(c.Stream), tr.EventH(c.Event))
	case CallEventCreate:
		ne, err := api.EventCreate(p)
		if err != nil {
			return err
		}
		tr.Events[c.REvent] = ne
	case CallEventRecord:
		return api.EventRecord(p, tr.EventH(c.Event), tr.Stream(c.Stream))
	case CallEventDestroy:
		return api.EventDestroy(p, tr.EventH(c.Event))
	case CallLaunch:
		lp := c.Launch
		if len(lp.Bufs) > 0 {
			nb := make([]cuda.Buf, len(lp.Bufs))
			for i, b := range lp.Bufs {
				nb[i] = tr.Buf(b)
			}
			lp.Bufs = nb
		}
		return api.Launch(p, lp, tr.Stream(c.Stream))
	case CallCommInit:
		gen := c.Gen
		if opts.GenFor != nil {
			gen = opts.GenFor(c.Key, c.Gen)
		}
		nc, err := api.CommInit(p, c.Key, gen, c.NRanks, c.Rank)
		if err != nil {
			return err
		}
		tr.Comms[c.RComm] = nc
	case CallCommDestroy:
		return api.CommDestroy(p, tr.CommH(c.Comm))
	case CallAllReduce:
		return api.AllReduce(p, tr.CommH(c.Comm), tr.Buf(c.Buf), tr.Stream(c.Stream))
	case CallBroadcast:
		return api.Broadcast(p, tr.CommH(c.Comm), tr.Buf(c.Buf), c.Root, tr.Stream(c.Stream))
	case CallAllGather:
		return api.AllGather(p, tr.CommH(c.Comm), tr.Buf(c.Buf), tr.Buf(c.Buf2), tr.Stream(c.Stream))
	case CallReduceScatter:
		return api.ReduceScatter(p, tr.CommH(c.Comm), tr.Buf(c.Buf), tr.Buf(c.Buf2), tr.Stream(c.Stream))
	case CallSend:
		return api.Send(p, tr.CommH(c.Comm), tr.Buf(c.Buf), c.Peer, tr.Stream(c.Stream))
	case CallRecv:
		return api.Recv(p, tr.CommH(c.Comm), tr.Buf(c.Buf), c.Peer, tr.Stream(c.Stream))
	case CallBarrier:
		return api.Barrier(p, tr.CommH(c.Comm), tr.Stream(c.Stream))
	default:
		return fmt.Errorf("unknown call kind %v", c.Kind)
	}
	return nil
}
