package cuda

import (
	"errors"
	"fmt"
	"testing"

	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/tensor"
	"jitckpt/internal/vclock"
)

// testRig is a single-device driver harness.
type testRig struct {
	env *vclock.Env
	dev *gpu.Device
	drv *Driver
}

func newRig(t *testing.T, kernels Registry) *testRig {
	t.Helper()
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	drv, err := NewDriver(dev, engine, kernels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{env: env, dev: dev, drv: drv}
}

// inProc runs body as a single worker process and fails the test on error.
func (r *testRig) inProc(t *testing.T, body func(p *vclock.Proc)) {
	t.Helper()
	r.env.Go("worker", body)
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b, err := r.drv.Malloc(p, 1<<20, 4, "x")
		if err != nil {
			t.Error(err)
			return
		}
		if err := r.drv.MemcpyH2D(p, b, []float32{1, 2, 3, 4}, DefaultStream); err != nil {
			t.Error(err)
			return
		}
		got, err := r.drv.MemcpyD2H(p, b, DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Vector(got).Equal(tensor.Vector{1, 2, 3, 4}) {
			t.Errorf("round trip = %v", got)
		}
	})
}

func TestMemcpyH2DCapturesSourceAtCallTime(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b, _ := r.drv.Malloc(p, 1<<20, 2, "x")
		src := []float32{10, 20}
		r.drv.MemcpyH2D(p, b, src, DefaultStream)
		src[0] = 999 // mutation after the call must not be visible
		got, _ := r.drv.MemcpyD2H(p, b, DefaultStream)
		if got[0] != 10 {
			t.Errorf("H2D did not capture source: %v", got)
		}
	})
}

func TestMemcpyTimingScalesWithModelBytes(t *testing.T) {
	r := newRig(t, nil)
	var small, large vclock.Time
	r.inProc(t, func(p *vclock.Proc) {
		bs, _ := r.drv.Malloc(p, 1<<20, 1, "small")
		bl, _ := r.drv.Malloc(p, 1<<30, 1, "large")
		t0 := p.Now()
		r.drv.MemcpyD2H(p, bs, DefaultStream)
		small = p.Now() - t0
		t0 = p.Now()
		r.drv.MemcpyD2H(p, bl, DefaultStream)
		large = p.Now() - t0
	})
	if large < 100*small {
		t.Fatalf("1 GiB copy (%v) should be ~1024x the 1 MiB copy (%v)", large, small)
	}
}

func TestLaunchRunsRegisteredKernel(t *testing.T) {
	kernels := Registry{
		"scale": func(a KernelArgs) error {
			a.Bufs[0].Scale(a.FArgs[0])
			return nil
		},
	}
	r := newRig(t, kernels)
	r.inProc(t, func(p *vclock.Proc) {
		b, _ := r.drv.Malloc(p, 64, 3, "x")
		r.drv.MemcpyH2D(p, b, []float32{1, 2, 3}, DefaultStream)
		err := r.drv.Launch(p, LaunchParams{
			Kernel: "scale",
			Dur:    vclock.Millisecond,
			Bufs:   []Buf{b},
			FArgs:  []float32{10},
		}, DefaultStream)
		if err != nil {
			t.Error(err)
			return
		}
		got, _ := r.drv.MemcpyD2H(p, b, DefaultStream)
		if !tensor.Vector(got).Equal(tensor.Vector{10, 20, 30}) {
			t.Errorf("kernel result = %v", got)
		}
	})
}

func TestLaunchUnknownKernel(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		if err := r.drv.Launch(p, LaunchParams{Kernel: "nope"}, DefaultStream); !errors.Is(err, ErrUnknownKernel) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestLaunchIsAsync(t *testing.T) {
	r := newRig(t, nil)
	kernels := Registry{"slow": func(KernelArgs) error { return nil }}
	r.drv.kernels = kernels
	r.inProc(t, func(p *vclock.Proc) {
		t0 := p.Now()
		r.drv.Launch(p, LaunchParams{Kernel: "slow", Dur: vclock.Seconds(10)}, DefaultStream)
		if p.Now()-t0 > vclock.Millisecond {
			t.Error("Launch blocked the host")
		}
		r.drv.StreamSynchronize(p, DefaultStream)
		if p.Now()-t0 < vclock.Seconds(10) {
			t.Error("StreamSynchronize returned before kernel finished")
		}
	})
}

// TestFigure3Pattern reproduces the computation/communication
// synchronization from the paper's Figure 3: all-reduce on the comm stream,
// EventRecord after it, StreamWaitEvent on the compute stream, then the
// optimizer kernel. The optimizer must not run before the all-reduce
// completes.
func TestFigure3Pattern(t *testing.T) {
	var optRanAt vclock.Time
	var arDone bool
	kernels := Registry{
		"opt": func(a KernelArgs) error {
			if !arDone {
				return fmt.Errorf("optimizer ran before all-reduce")
			}
			return nil
		},
	}
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	devs := [2]*gpu.Device{}
	drvs := [2]*Driver{}
	for i := range devs {
		devs[i] = gpu.NewDevice(env, 0, i, 1<<34)
		d, err := NewDriver(devs[i], engine, kernels, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		drvs[i] = d
	}
	for rank := 0; rank < 2; rank++ {
		rank := rank
		env.Go(fmt.Sprintf("rank%d", rank), func(p *vclock.Proc) {
			drv := drvs[rank]
			comm, err := drv.CommInit(p, "dp", 0, 2, rank)
			if err != nil {
				t.Error(err)
				return
			}
			compute, _ := drv.StreamCreate(p)
			comms, _ := drv.StreamCreate(p)
			grads, _ := drv.Malloc(p, 1<<26, 4, "grads")
			drv.MemcpyH2D(p, grads, []float32{1, 1, 1, 1}, compute)
			drv.StreamSynchronize(p, compute)

			// Figure 3: AR on comm stream; E after it; SWE on compute; OPT.
			if rank == 1 {
				p.Sleep(vclock.Seconds(2)) // skew rank 1's arrival
			}
			drv.AllReduce(p, comm, grads, comms)
			ev, _ := drv.EventCreate(p)
			drv.EventRecord(p, ev, comms)
			drv.StreamWaitEvent(p, compute, ev)
			drv.Launch(p, LaunchParams{Kernel: "opt", Dur: vclock.Millisecond, Bufs: []Buf{grads}}, compute)
			drv.StreamSynchronize(p, compute)
			if rank == 0 {
				optRanAt = p.Now()
			}
		})
	}
	// Mark all-reduce completion via a monitor on rank 0's comm stream.
	env.Go("observer", func(p *vclock.Proc) {
		p.Sleep(vclock.Seconds(2)) // after rank 1 issues; AR roughly completes
		arDone = true
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if optRanAt < vclock.Seconds(2) {
		t.Fatalf("optimizer at %v ran before the skewed all-reduce completed", optRanAt)
	}
}

func TestEventQuerySemantics(t *testing.T) {
	r := newRig(t, Registry{"nop": func(KernelArgs) error { return nil }})
	r.inProc(t, func(p *vclock.Proc) {
		ev, _ := r.drv.EventCreate(p)
		// Unrecorded event: complete.
		if done, err := r.drv.EventQuery(p, ev); !done || err != nil {
			t.Errorf("unrecorded query = %v, %v", done, err)
		}
		s, _ := r.drv.StreamCreate(p)
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Seconds(5)}, s)
		r.drv.EventRecord(p, ev, s)
		if done, _ := r.drv.EventQuery(p, ev); done {
			t.Error("event reported complete while kernel pending")
		}
		p.Sleep(vclock.Seconds(6))
		if done, err := r.drv.EventQuery(p, ev); !done || err != nil {
			t.Errorf("query after completion = %v, %v", done, err)
		}
	})
	_ = r
}

func TestEventSynchronize(t *testing.T) {
	r := newRig(t, Registry{"nop": func(KernelArgs) error { return nil }})
	r.inProc(t, func(p *vclock.Proc) {
		s, _ := r.drv.StreamCreate(p)
		ev, _ := r.drv.EventCreate(p)
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Seconds(3)}, s)
		r.drv.EventRecord(p, ev, s)
		t0 := p.Now()
		if err := r.drv.EventSynchronize(p, ev); err != nil {
			t.Error(err)
		}
		if waited := p.Now() - t0; waited < vclock.Seconds(2.9) || waited > vclock.Seconds(3.1) {
			t.Errorf("EventSynchronize waited %v, want ~3s", waited)
		}
	})
}

func TestStreamWaitEventOrdersAcrossStreams(t *testing.T) {
	order := []string{}
	kernels := Registry{
		"a": func(KernelArgs) error { order = append(order, "a"); return nil },
		"b": func(KernelArgs) error { order = append(order, "b"); return nil },
	}
	r := newRig(t, kernels)
	r.inProc(t, func(p *vclock.Proc) {
		s1, _ := r.drv.StreamCreate(p)
		s2, _ := r.drv.StreamCreate(p)
		ev, _ := r.drv.EventCreate(p)
		r.drv.Launch(p, LaunchParams{Kernel: "a", Dur: vclock.Seconds(5)}, s1)
		r.drv.EventRecord(p, ev, s1)
		r.drv.StreamWaitEvent(p, s2, ev)
		r.drv.Launch(p, LaunchParams{Kernel: "b", Dur: vclock.Millisecond}, s2)
		r.drv.StreamSynchronize(p, s2)
	})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestStickyErrorSurfacesOnAPICalls(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b, _ := r.drv.Malloc(p, 64, 1, "x")
		r.dev.InjectSticky()
		if _, err := r.drv.Malloc(p, 64, 1, "y"); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("Malloc err = %v", err)
		}
		if _, err := r.drv.MemcpyD2H(p, b, DefaultStream); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("MemcpyD2H err = %v", err)
		}
		if err := r.drv.GetLastError(p); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("GetLastError = %v", err)
		}
	})
}

func TestDeviceSynchronizeDrainsAllStreams(t *testing.T) {
	r := newRig(t, Registry{"nop": func(KernelArgs) error { return nil }})
	r.inProc(t, func(p *vclock.Proc) {
		s1, _ := r.drv.StreamCreate(p)
		s2, _ := r.drv.StreamCreate(p)
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Seconds(2)}, s1)
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Seconds(4)}, s2)
		t0 := p.Now()
		if err := r.drv.DeviceSynchronize(p); err != nil {
			t.Error(err)
		}
		if p.Now()-t0 < vclock.Seconds(4) {
			t.Errorf("DeviceSynchronize returned after %v", p.Now()-t0)
		}
	})
}

func TestBufListAndChecksum(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b1, _ := r.drv.Malloc(p, 128, 2, "param.w")
		b2, _ := r.drv.Malloc(p, 256, 2, "param.w")
		r.drv.Malloc(p, 64, 1, "act")
		infos, err := r.drv.BufList(p)
		if err != nil {
			t.Error(err)
			return
		}
		if len(infos) != 3 {
			t.Errorf("BufList len = %d", len(infos))
		}
		if infos[0].Tag != "param.w" || infos[0].Seq != 0 || infos[1].Seq != 1 {
			t.Errorf("tag/seq wrong: %+v", infos[:2])
		}
		r.drv.MemcpyH2D(p, b1, []float32{1, 2}, DefaultStream)
		r.drv.MemcpyH2D(p, b2, []float32{1, 2}, DefaultStream)
		r.drv.StreamSynchronize(p, DefaultStream)
		c1, _ := r.drv.BufChecksum(p, b1)
		c2, _ := r.drv.BufChecksum(p, b2)
		if c1 != c2 {
			t.Error("identical contents produced different checksums")
		}
	})
}

func TestFreeInvalidatesHandle(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b, _ := r.drv.Malloc(p, 64, 1, "x")
		if err := r.drv.Free(p, b); err != nil {
			t.Error(err)
		}
		if err := r.drv.Free(p, b); !errors.Is(err, ErrBadHandle) {
			t.Errorf("double free = %v", err)
		}
		if _, err := r.drv.MemcpyD2H(p, b, DefaultStream); !errors.Is(err, ErrBadHandle) {
			t.Errorf("use after free = %v", err)
		}
	})
}

func TestBadHandles(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		if err := r.drv.StreamSynchronize(p, Stream(99)); !errors.Is(err, ErrBadHandle) {
			t.Errorf("stream: %v", err)
		}
		if _, err := r.drv.EventQuery(p, Event(99)); !errors.Is(err, ErrBadHandle) {
			t.Errorf("event: %v", err)
		}
		if err := r.drv.AllReduce(p, Comm(99), 0, DefaultStream); !errors.Is(err, ErrBadHandle) {
			t.Errorf("comm: %v", err)
		}
	})
}

func TestCheckpointDeadlockScenario(t *testing.T) {
	// §3.2: the default stream is blocked by a StreamWaitEvent on a hung
	// collective. A D2H memcpy on the default stream deadlocks; the same
	// copy on a fresh stream completes. This is the behaviour the
	// user-level library's cudaMemcpy interception relies on.
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	drv, err := NewDriver(dev, engine, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 joins the rendezvous so CommInit completes, then never issues
	// its side of the all-reduce: rank 0's collective hangs forever.
	env.Go("rank1", func(p *vclock.Proc) {
		if _, err := engine.CommInitRank(p, "dp", 0, 2, 1, nil); err != nil {
			t.Error(err)
		}
	})
	var defaultHung, freshWorked bool
	env.Go("rank0", func(p *vclock.Proc) {
		comm, err := drv.CommInit(p, "dp", 0, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		commStream, _ := drv.StreamCreate(p)
		grads, _ := drv.Malloc(p, 1<<20, 2, "grads")
		params, _ := drv.Malloc(p, 1<<20, 2, "params")
		drv.MemcpyH2D(p, params, []float32{5, 6}, DefaultStream)
		drv.StreamSynchronize(p, DefaultStream)

		// Figure 3 wiring: AR on comm stream, event after it, default
		// stream waits on the event. Rank 1 never joins → hang.
		drv.AllReduce(p, comm, grads, commStream)
		ev, _ := drv.EventCreate(p)
		drv.EventRecord(p, ev, commStream)
		drv.StreamWaitEvent(p, DefaultStream, ev)

		// Checkpoint attempt on the default stream: deadlocks.
		sub := p.Env().Go("ckpt-default", func(cp *vclock.Proc) {
			drv.MemcpyD2H(cp, params, DefaultStream)
			defaultHung = false
		})
		defaultHung = true
		p.Sleep(vclock.Seconds(30))
		sub.Kill()

		// Checkpoint on a fresh stream: completes (the interception fix).
		fresh, _ := drv.StreamCreate(p)
		data, err := drv.MemcpyD2H(p, params, fresh)
		if err == nil && len(data) == 2 && data[0] == 5 {
			freshWorked = true
		}
	})
	if err := env.RunUntil(vclock.Hour); err != nil {
		t.Fatal(err)
	}
	if !defaultHung {
		t.Fatal("memcpy on blocked default stream should deadlock")
	}
	if !freshWorked {
		t.Fatal("memcpy on fresh stream should complete during the hang")
	}
}

func BenchmarkKernelLaunch(b *testing.B) {
	env := vclock.NewEnv(1)
	dev := gpu.NewDevice(env, 0, 0, 1<<34)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	drv, err := NewDriver(dev, engine, Registry{"nop": func(KernelArgs) error { return nil }}, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	env.Go("worker", func(p *vclock.Proc) {
		for i := 0; i < b.N; i++ {
			drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Microsecond}, DefaultStream)
			if i%256 == 0 {
				drv.StreamSynchronize(p, DefaultStream)
			}
		}
		drv.StreamSynchronize(p, DefaultStream)
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestDriverCollectiveSurface drives the remaining collective entry points
// (Broadcast, AllGather, ReduceScatter, Barrier, Send/Recv) through the
// driver API across two ranks.
func TestDriverCollectiveSurface(t *testing.T) {
	env := vclock.NewEnv(1)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	var drvs [2]*Driver
	for i := 0; i < 2; i++ {
		dev := gpu.NewDevice(env, 0, i, 1<<34)
		d, err := NewDriver(dev, engine, nil, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		drvs[i] = d
	}
	results := make([][]float32, 2)
	for rank := 0; rank < 2; rank++ {
		rank := rank
		env.Go(fmt.Sprintf("rank%d", rank), func(p *vclock.Proc) {
			drv := drvs[rank]
			comm, err := drv.CommInit(p, "all", 0, 2, rank)
			if err != nil {
				t.Error(err)
				return
			}
			// Broadcast root 0's data.
			b, _ := drv.Malloc(p, 64, 2, "b")
			if rank == 0 {
				drv.MemcpyH2D(p, b, []float32{5, 6}, DefaultStream)
			}
			if err := drv.Broadcast(p, comm, b, 0, DefaultStream); err != nil {
				t.Error(err)
			}
			// AllGather both ranks' scalars.
			in, _ := drv.Malloc(p, 32, 1, "in")
			out, _ := drv.Malloc(p, 64, 2, "out")
			drv.MemcpyH2D(p, in, []float32{float32(rank + 1)}, DefaultStream)
			if err := drv.AllGather(p, comm, in, out, DefaultStream); err != nil {
				t.Error(err)
			}
			// ReduceScatter a 2-vector.
			rsIn, _ := drv.Malloc(p, 64, 2, "rsin")
			rsOut, _ := drv.Malloc(p, 32, 1, "rsout")
			drv.MemcpyH2D(p, rsIn, []float32{1, 10}, DefaultStream)
			if err := drv.ReduceScatter(p, comm, rsIn, rsOut, DefaultStream); err != nil {
				t.Error(err)
			}
			// Barrier.
			if err := drv.Barrier(p, comm, DefaultStream); err != nil {
				t.Error(err)
			}
			// P2P ping: rank 0 sends, rank 1 receives.
			pp, _ := drv.Malloc(p, 32, 1, "p2p")
			if rank == 0 {
				drv.MemcpyH2D(p, pp, []float32{42}, DefaultStream)
				if err := drv.Send(p, comm, pp, 1, DefaultStream); err != nil {
					t.Error(err)
				}
			} else {
				if err := drv.Recv(p, comm, pp, 0, DefaultStream); err != nil {
					t.Error(err)
				}
			}
			bd, _ := drv.MemcpyD2H(p, b, DefaultStream)
			og, _ := drv.MemcpyD2H(p, out, DefaultStream)
			rs, _ := drv.MemcpyD2H(p, rsOut, DefaultStream)
			p2, _ := drv.MemcpyD2H(p, pp, DefaultStream)
			results[rank] = append(append(append(append([]float32{}, bd...), og...), rs...), p2...)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// rank 1: broadcast [5 6], gather [1 2], reduce-scatter chunk1 = 20, p2p 42.
	want1 := tensor.Vector{5, 6, 1, 2, 20, 42}
	if !tensor.Vector(results[1]).Equal(want1) {
		t.Fatalf("rank 1 results = %v, want %v", results[1], want1)
	}
	// rank 0: reduce-scatter chunk0 = 2, p2p buffer holds its own 42.
	want0 := tensor.Vector{5, 6, 1, 2, 2, 42}
	if !tensor.Vector(results[0]).Equal(want0) {
		t.Fatalf("rank 0 results = %v, want %v", results[0], want0)
	}
}

// TestDriverBufDataPrivilegedRead covers the infrastructure-side read path
// the recovery controller uses.
func TestDriverBufDataPrivilegedRead(t *testing.T) {
	r := newRig(t, nil)
	r.inProc(t, func(p *vclock.Proc) {
		b, _ := r.drv.Malloc(p, 64, 2, "w")
		r.drv.MemcpyH2D(p, b, []float32{3, 4}, DefaultStream)
		r.drv.StreamSynchronize(p, DefaultStream)

		// Healthy: readable.
		data, err := r.drv.BufData(b)
		if err != nil || !data.Equal(tensor.Vector{3, 4}) {
			t.Errorf("healthy BufData = %v, %v", data, err)
		}
		// Corrupt driver: API calls fail, BufData still works (§4.2
		// strategy 2's "GPU is still accessible").
		r.dev.InjectDriverCorrupt()
		if _, err := r.drv.Malloc(p, 1, 0, "x"); !errors.Is(err, gpu.ErrCorrupt) {
			t.Errorf("Malloc under corruption = %v", err)
		}
		if _, err := r.drv.BufData(b); err != nil {
			t.Errorf("BufData under corruption = %v", err)
		}
		// Sticky: state not accessible (strategy 3).
		r.dev.InjectSticky()
		if _, err := r.drv.BufData(b); !errors.Is(err, gpu.ErrSticky) {
			t.Errorf("BufData under sticky = %v", err)
		}
	})
}

// TestAsyncErrorPropagation pins the NCCL-watchdog-style error plumbing:
// an op that fails asynchronously poisons its stream, an event recorded
// after it carries the poison, a stream that waits on that event is
// poisoned in turn, and StreamSynchronize on either stream surfaces the
// error instead of reporting a clean drain.
func TestAsyncErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	r := newRig(t, Registry{
		"boom": func(KernelArgs) error { return boom },
		"nop":  func(KernelArgs) error { return nil },
	})
	r.inProc(t, func(p *vclock.Proc) {
		sA, _ := r.drv.StreamCreate(p)
		sB, _ := r.drv.StreamCreate(p)
		sC, _ := r.drv.StreamCreate(p)
		if err := r.drv.Launch(p, LaunchParams{Kernel: "boom", Dur: vclock.Millisecond}, sA); err != nil {
			t.Fatalf("launch is async, must not fail inline: %v", err)
		}
		ev, _ := r.drv.EventCreate(p)
		r.drv.EventRecord(p, ev, sA)
		r.drv.StreamWaitEvent(p, sB, ev)
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Millisecond}, sB)

		if err := r.drv.StreamSynchronize(p, sA); !errors.Is(err, boom) {
			t.Errorf("sync of failed stream = %v, want boom", err)
		}
		if err := r.drv.EventSynchronize(p, ev); !errors.Is(err, boom) {
			t.Errorf("sync of poisoned event = %v, want boom", err)
		}
		if err := r.drv.StreamSynchronize(p, sB); !errors.Is(err, boom) {
			t.Errorf("sync of event-poisoned stream = %v, want boom", err)
		}
		// An uninvolved stream stays clean.
		r.drv.Launch(p, LaunchParams{Kernel: "nop", Dur: vclock.Millisecond}, sC)
		if err := r.drv.StreamSynchronize(p, sC); err != nil {
			t.Errorf("clean stream sync = %v", err)
		}
	})
}
